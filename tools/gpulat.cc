/**
 * @file
 * The `gpulat` binary: one scriptable entry point for the whole
 * experiment matrix (preset x workload x overrides). All logic
 * lives in the library (api/cli.hh) so tests run the same path.
 */

#include <iostream>

#include "api/cli.hh"

int
main(int argc, char **argv)
{
    return gpulat::runCli(argc, argv, std::cout, std::cerr);
}
