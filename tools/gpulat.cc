/**
 * @file
 * The `gpulat` binary: one scriptable entry point for the whole
 * experiment matrix (preset x workload x overrides). All logic
 * lives in the library (api/cli.hh) so tests run the same path.
 *
 * Parallelism knobs compose: `--jobs N` runs N sweep cells
 * concurrently, `--tick-jobs N` additionally ticks independent
 * partition groups of each simulation on N workers — both are
 * execution-only, so every combination emits byte-identical
 * JSON/CSV records (CI's determinism gate diffs them).
 */

#include <iostream>

#include "api/cli.hh"

int
main(int argc, char **argv)
{
    return gpulat::runCli(argc, argv, std::cout, std::cerr);
}
