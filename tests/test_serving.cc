/**
 * @file
 * Serving-subsystem tests: launch-queue policy picks on toy queues
 * (admission order, head-of-line rules, fair-share starvation
 * freedom), `seed`/`serving.*` override round-trips, arrival-stream
 * determinism and closed-loop re-arming, the per-launch golden
 * `queue + execution == end-to-end` latency decomposition on a real
 * serving run, and byte-identity of a serving sweep across
 * `--tick-jobs` and `--jobs`.
 */

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/cli.hh"
#include "api/config_override.hh"
#include "api/experiment.hh"
#include "common/log.hh"
#include "serving/arrival.hh"
#include "serving/scheduler.hh"
#include "serving/serving.hh"

namespace gpulat {
namespace {

QueuedLaunch
queued(unsigned tenant, std::uint64_t seq, double est_cost,
       bool admissible = true)
{
    QueuedLaunch q;
    q.tenant = tenant;
    q.seq = seq;
    q.arrival = seq; // arrival order == seq order in these toys
    q.estCost = est_cost;
    q.admissible = admissible;
    return q;
}

TEST(PickPolicy, FifoTakesHeadAndBlocksBehindIt)
{
    const std::vector<TenantSchedState> tenants(2);
    std::vector<QueuedLaunch> q = {queued(0, 0, 5.0),
                                   queued(1, 1, 1.0)};
    EXPECT_EQ(pickNextLaunch(ServePolicy::Fifo, q, tenants, 0), 0u);

    // An inadmissible head blocks the whole line, even though a
    // later entry could run.
    q[0].admissible = false;
    EXPECT_EQ(pickNextLaunch(ServePolicy::Fifo, q, tenants, 0),
              kNoPick);
    EXPECT_EQ(pickNextLaunch(ServePolicy::Fifo, {}, tenants, 0),
              kNoPick);
}

TEST(PickPolicy, RrHonoursCursorAndSkipsEmptyTenants)
{
    const std::vector<TenantSchedState> tenants(3);
    const std::vector<QueuedLaunch> q = {
        queued(0, 0, 1.0), queued(1, 1, 1.0), queued(0, 2, 1.0),
        queued(2, 3, 1.0)};
    // Cursor at tenant 1: its head wins over the earlier tenant 0.
    EXPECT_EQ(pickNextLaunch(ServePolicy::Rr, q, tenants, 1), 1u);
    // Cursor at tenant 1, tenant 1 inadmissible: work-conserving
    // scan moves on to tenant 2 instead of stalling.
    std::vector<QueuedLaunch> q2 = q;
    q2[1].admissible = false;
    EXPECT_EQ(pickNextLaunch(ServePolicy::Rr, q2, tenants, 1), 3u);
    // Per-tenant FIFO: tenant 0's second entry never jumps its
    // inadmissible head.
    std::vector<QueuedLaunch> q3 = q;
    q3[0].admissible = false;
    q3[1].admissible = false;
    q3[3].admissible = false;
    EXPECT_EQ(pickNextLaunch(ServePolicy::Rr, q3, tenants, 0),
              kNoPick);
}

TEST(PickPolicy, SjfPicksCheapestAndKeepsEarliestOnTies)
{
    const std::vector<TenantSchedState> tenants(2);
    std::vector<QueuedLaunch> q = {queued(0, 0, 9.0),
                                   queued(1, 1, 2.0),
                                   queued(0, 2, 2.0)};
    // Cheapest wins; the tie at cost 2 resolves to the earlier seq.
    EXPECT_EQ(pickNextLaunch(ServePolicy::SjfEst, q, tenants, 0), 1u);
    // sjf-est may reorder within a tenant: tenant 0's cheap second
    // entry is eligible even while its expensive head waits.
    q[1].admissible = false;
    EXPECT_EQ(pickNextLaunch(ServePolicy::SjfEst, q, tenants, 0), 2u);
}

TEST(PickPolicy, FairSharePicksLeastAttainedPerWeight)
{
    std::vector<TenantSchedState> tenants(2);
    tenants[0].attained = 100.0;
    tenants[1].attained = 50.0;
    const std::vector<QueuedLaunch> q = {queued(0, 0, 1.0),
                                         queued(1, 1, 1.0)};
    EXPECT_EQ(pickNextLaunch(ServePolicy::FairShare, q, tenants, 0),
              1u);
    // A weight of 4 divides tenant 0's attained service: 100/4 = 25
    // beats tenant 1's 50/1.
    tenants[0].weight = 4.0;
    EXPECT_EQ(pickNextLaunch(ServePolicy::FairShare, q, tenants, 0),
              0u);
}

TEST(PickPolicy, FairShareRotatesUnderEqualCosts)
{
    // Always-backlogged tenants with equal costs: fair share must
    // degenerate to a perfect rotation.
    std::vector<TenantSchedState> tenants(3);
    std::vector<unsigned> served(3, 0);
    for (int round = 0; round < 30; ++round) {
        std::vector<QueuedLaunch> q;
        for (unsigned t = 0; t < 3; ++t)
            q.push_back(queued(t, static_cast<std::uint64_t>(t), 1.0));
        const std::size_t pick =
            pickNextLaunch(ServePolicy::FairShare, q, tenants, 0);
        ASSERT_NE(pick, kNoPick);
        tenants[q[pick].tenant].attained += q[pick].estCost;
        ++served[q[pick].tenant];
    }
    EXPECT_EQ(served[0], 10u);
    EXPECT_EQ(served[1], 10u);
    EXPECT_EQ(served[2], 10u);
}

TEST(PickPolicy, FairShareIsStarvationFreeUnderSkewedCosts)
{
    // Tenant costs differ by 10x; every tenant must still be served
    // repeatedly, because each service raises the served tenant's
    // attained/weight key above the starved tenants'.
    std::vector<TenantSchedState> tenants(3);
    const double cost[3] = {10.0, 1.0, 5.0};
    std::vector<unsigned> served(3, 0);
    for (int round = 0; round < 60; ++round) {
        std::vector<QueuedLaunch> q;
        for (unsigned t = 0; t < 3; ++t)
            q.push_back(
                queued(t, static_cast<std::uint64_t>(t), cost[t]));
        const std::size_t pick =
            pickNextLaunch(ServePolicy::FairShare, q, tenants, 0);
        ASSERT_NE(pick, kNoPick);
        tenants[q[pick].tenant].attained += q[pick].estCost;
        ++served[q[pick].tenant];
    }
    EXPECT_GE(served[0], 3u);
    EXPECT_GE(served[1], 3u);
    EXPECT_GE(served[2], 3u);
    // The cheap tenant gets proportionally more turns.
    EXPECT_GT(served[1], served[0]);
}

TEST(Overrides, SeedKeyRoundTrips)
{
    GpuConfig cfg = makeConfig("gf106");
    EXPECT_EQ(readOverride(cfg, "seed"), "1");
    applyOverride(cfg, "seed=42");
    EXPECT_EQ(cfg.seed, 42u);
    EXPECT_EQ(readOverride(cfg, "seed"), "42");
}

TEST(Overrides, ServingKeysRoundTrip)
{
    GpuConfig cfg = makeConfig("gf106");
    for (const std::string policy :
         {"fifo", "rr", "sjf-est", "fair-share"}) {
        applyOverride(cfg, "serving.policy=" + policy);
        EXPECT_EQ(readOverride(cfg, "serving.policy"), policy);
    }
    for (const std::string part : {"static", "dynamic"}) {
        applyOverride(cfg, "serving.partition=" + part);
        EXPECT_EQ(readOverride(cfg, "serving.partition"), part);
    }
    applyOverride(cfg, "serving.maxConcurrent=7");
    EXPECT_EQ(cfg.serving.maxConcurrent, 7u);
    EXPECT_EQ(readOverride(cfg, "serving.maxConcurrent"), "7");
    applyOverride(cfg, "serving.smsPerLaunch=2");
    EXPECT_EQ(readOverride(cfg, "serving.smsPerLaunch"), "2");

    EXPECT_THROW(applyOverride(cfg, "serving.policy=lifo"),
                 FatalError);
}

TEST(Overrides, SeedAndServingKeysAreListed)
{
    std::vector<std::string> paths;
    for (const ConfigKey &key : configKeys())
        paths.push_back(key.path);
    for (const std::string want :
         {"seed", "serving.policy", "serving.partition",
          "serving.maxConcurrent", "serving.smsPerLaunch"}) {
        EXPECT_NE(std::find(paths.begin(), paths.end(), want),
                  paths.end())
            << "missing config key " << want;
    }
}

TEST(Arrival, OpenLoopSchedulesAreSeedAndTenantDeterministic)
{
    TenantTraffic traffic;
    traffic.kind = ArrivalKind::Poisson;
    traffic.meanGapCycles = 500.0;
    traffic.launches = 16;

    ArrivalStream a(traffic, 7, 0);
    ArrivalStream b(traffic, 7, 0);
    ArrivalStream other_tenant(traffic, 7, 1);
    ArrivalStream other_seed(traffic, 8, 0);
    bool tenant_differs = false;
    bool seed_differs = false;
    Cycle prev = 0;
    for (unsigned i = 0; i < traffic.launches; ++i) {
        const Cycle at = a.pop();
        EXPECT_EQ(at, b.pop()); // same seed+tenant: identical
        EXPECT_GT(at, prev);    // strictly increasing arrivals
        prev = at;
        tenant_differs |= at != other_tenant.pop();
        seed_differs |= at != other_seed.pop();
    }
    EXPECT_TRUE(a.exhausted());
    EXPECT_EQ(a.nextArrivalAt(), kNoCycle);
    EXPECT_TRUE(tenant_differs);
    EXPECT_TRUE(seed_differs);
}

TEST(Arrival, ClosedLoopReArmsOnCompletion)
{
    TenantTraffic traffic;
    traffic.kind = ArrivalKind::ClosedLoop;
    traffic.thinkCycles = 100.0;
    traffic.launches = 2;

    ArrivalStream s(traffic, 1, 3);
    // First arrival is staggered by tenant index.
    EXPECT_EQ(s.nextArrivalAt(), 4u);
    EXPECT_EQ(s.pop(), 4u);
    // Nothing pending until a completion re-arms the stream.
    EXPECT_EQ(s.nextArrivalAt(), kNoCycle);
    EXPECT_FALSE(s.exhausted());
    s.onCompletion(500);
    EXPECT_EQ(s.nextArrivalAt(), 600u);
    EXPECT_EQ(s.pop(), 600u);
    EXPECT_TRUE(s.exhausted());
    // Completions past the launch budget are ignored.
    s.onCompletion(900);
    EXPECT_EQ(s.nextArrivalAt(), kNoCycle);
}

/** Small two-tenant session on the 4-SM gf106 preset. */
std::vector<ServingSession::TenantSpec>
smallSpecs()
{
    std::vector<ServingSession::TenantSpec> specs(2);
    for (unsigned t = 0; t < 2; ++t) {
        specs[t].n = 512;
        specs[t].fmaDepth = 4;
        specs[t].threadsPerBlock = 64;
        specs[t].buffers = 2;
        specs[t].traffic.kind = ArrivalKind::Fixed;
        specs[t].traffic.meanGapCycles = 1500.0;
        specs[t].traffic.launches = 4;
    }
    return specs;
}

TEST(Serving, GoldenLatencyDecomposition)
{
    Gpu gpu(makeConfig("gf106"));
    ServingSession session(gpu, smallSpecs());
    const WorkloadResult result = session.run();
    EXPECT_TRUE(result.correct);
    EXPECT_EQ(result.launches, 8u);

    const auto &records = session.metrics().records();
    ASSERT_EQ(records.size(), 8u);
    for (const LaunchRecord &r : records) {
        // Queueing + execution must equal end-to-end latency on
        // every launch, with the phases in causal order.
        EXPECT_LE(r.arrival, r.admit);
        EXPECT_LT(r.admit, r.done);
        EXPECT_EQ((r.admit - r.arrival) + (r.done - r.admit),
                  r.done - r.arrival);
        EXPECT_GT(r.smCount, 0u);
    }

    // The collapsed metrics agree with the same decomposition.
    const auto &m = result.metrics;
    ASSERT_EQ(m.count("serving.launches"), 1u);
    EXPECT_DOUBLE_EQ(m.at("serving.launches"), 8.0);
    EXPECT_NEAR(m.at("serving.mean_queue_cycles") +
                    m.at("serving.mean_exec_cycles"),
                m.at("serving.mean_e2e_cycles"), 1e-6);
    EXPECT_LE(m.at("serving.p50_latency"),
              m.at("serving.p99_latency"));
    EXPECT_LE(m.at("serving.p99_latency"),
              m.at("serving.p999_latency"));
    EXPECT_GT(m.at("serving.throughput_lpmc"), 0.0);
    EXPECT_GT(m.at("serving.fairness_jain"), 0.0);
    EXPECT_LE(m.at("serving.fairness_jain"), 1.0 + 1e-9);
}

TEST(Serving, StaticPartitionRunsCorrect)
{
    ExperimentSpec spec;
    spec.gpu = "gf106";
    spec.workload = "serve.uniform";
    spec.params = {"tenants=2", "launches=3"};
    spec.overrides = {"serving.partition=static"};
    const ExperimentRecord rec = runExperiment(spec);
    EXPECT_TRUE(rec.correct);
    EXPECT_EQ(rec.launches, 6u);
}

std::string
sweepOutput(std::vector<const char *> extra)
{
    std::vector<const char *> argv = {
        "gpulat",     "sweep",       "serve.uniform",
        "--gpu",      "gf106",       "tenants=2",
        "launches=3", "load=4",      "--set",
        "serving.policy=fifo,rr",    "--json",
        "-"};
    argv.insert(argv.end(), extra.begin(), extra.end());
    std::ostringstream out, err;
    const int rc = runCli(static_cast<int>(argv.size()), argv.data(),
                          out, err);
    EXPECT_EQ(rc, 0) << err.str();
    return out.str();
}

TEST(Serving, ByteIdenticalAcrossTickJobsAndJobs)
{
    const std::string serial = sweepOutput({});
    EXPECT_NE(serial.find("serving.p99_latency"), std::string::npos);
    EXPECT_EQ(serial, sweepOutput({"--tick-jobs", "8"}));
    EXPECT_EQ(serial, sweepOutput({"--jobs", "4"}));
}

TEST(Serving, SeedChangesArrivalsButStaysCorrect)
{
    ExperimentSpec spec;
    spec.gpu = "gf106";
    spec.workload = "serve.mixed";
    spec.params = {"launches=3", "load=4"};
    const ExperimentRecord base = runExperiment(spec);
    spec.overrides = {"seed=99"};
    const ExperimentRecord reseeded = runExperiment(spec);
    EXPECT_TRUE(base.correct);
    EXPECT_TRUE(reseeded.correct);
    // A different seed reshapes the Poisson arrivals, so the run
    // length moves while verification still passes.
    EXPECT_NE(base.cycles, reseeded.cycles);
}

} // namespace
} // namespace gpulat
