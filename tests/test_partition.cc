/**
 * @file
 * Unit tests for the memory partition: L2 hit/miss paths, MSHR
 * merging, writes, no-L2 (Tesla) bypass, and trace stamping.
 */

#include <gtest/gtest.h>

#include "mem/partition.hh"

namespace gpulat {
namespace {

PartitionParams
testParams()
{
    PartitionParams p;
    p.ropQueueSize = 8;
    p.ropLatency = 4;
    p.l2Enabled = true;
    p.l2Cache.capacityBytes = 4 * 1024;
    p.l2Cache.lineBytes = 128;
    p.l2Cache.ways = 4;
    p.l2Cache.write = WritePolicy::WriteBack;
    p.l2QueueSize = 8;
    p.l2QueueLatency = 1;
    p.l2HitLatency = 10;
    p.l2MissLatency = 3;
    p.dramQueueSize = 16;
    p.dram.banks = 4;
    p.dram.rowBytes = 1024;
    p.dram.timing = DramTiming{5, 5, 5, 2, 0};
    p.dramCmdInterval = 1;
    p.returnQueueSize = 16;
    p.returnQueueLatency = 1;
    return p;
}

MemRequest
readReq(Addr line, std::uint64_t id = 1)
{
    MemRequest r;
    r.id = id;
    r.lineAddr = line;
    r.smId = 3;
    r.trace.issue = 0;
    r.trace.l1Access = 0;
    r.trace.icntInject = 0;
    return r;
}

/** Drive the partition until a response pops (or cycles run out). */
std::optional<MemRequest>
runUntilResponse(MemPartition &part, Cycle &now, Cycle limit = 1000)
{
    for (; now < limit; ++now) {
        part.tick(now);
        if (part.responseReady(now))
            return part.popResponse();
    }
    return std::nullopt;
}

TEST(Partition, ReadMissGoesToDramAndReturns)
{
    StatRegistry stats;
    MemPartition part(0, testParams(), &stats);
    Cycle now = 0;
    part.accept(now, readReq(0));
    const auto resp = runUntilResponse(part, now);
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->trace.hitLevel, HitLevel::Dram);
    EXPECT_EQ(resp->smId, 3u);
    EXPECT_NE(resp->trace.dramSched, kNoCycle);
    EXPECT_NE(resp->trace.dramData, kNoCycle);
    EXPECT_TRUE(part.drained());
}

TEST(Partition, SecondReadHitsL2AfterFill)
{
    StatRegistry stats;
    MemPartition part(0, testParams(), &stats);
    Cycle now = 0;
    part.accept(now, readReq(0, 1));
    ASSERT_TRUE(runUntilResponse(part, now).has_value());

    ++now;
    part.accept(now, readReq(0, 2));
    const auto resp = runUntilResponse(part, now, now + 1000);
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->trace.hitLevel, HitLevel::L2);
    EXPECT_NE(resp->trace.l2Done, kNoCycle);
    EXPECT_EQ(resp->trace.dramSched, kNoCycle);
}

TEST(Partition, L2HitIsFasterThanMiss)
{
    StatRegistry stats;
    MemPartition part(0, testParams(), &stats);
    Cycle now = 0;
    const Cycle start_miss = now;
    part.accept(now, readReq(0, 1));
    runUntilResponse(part, now);
    const Cycle miss_latency = now - start_miss;

    ++now;
    const Cycle start_hit = now;
    part.accept(now, readReq(0, 2));
    runUntilResponse(part, now);
    EXPECT_LT(now - start_hit, miss_latency);
}

TEST(Partition, ConcurrentMissesToSameLineMerge)
{
    StatRegistry stats;
    MemPartition part(0, testParams(), &stats);
    Cycle now = 0;
    part.accept(now, readReq(0, 1));
    part.accept(now, readReq(0, 2));

    std::vector<MemRequest> responses;
    for (; now < 1000 && responses.size() < 2; ++now) {
        part.tick(now);
        while (part.responseReady(now))
            responses.push_back(part.popResponse());
    }
    ASSERT_EQ(responses.size(), 2u);
    // Only one DRAM read happened.
    EXPECT_EQ(stats.counterValue("part0.dram_reads"), 1u);
    // Merged response shares the primary's DRAM timestamps.
    EXPECT_EQ(responses[0].trace.dramData,
              responses[1].trace.dramData);
}

TEST(Partition, WritesProduceNoResponse)
{
    StatRegistry stats;
    MemPartition part(0, testParams(), &stats);
    Cycle now = 0;
    MemRequest w = readReq(0);
    w.isWrite = true;
    part.accept(now, std::move(w));
    const auto resp = runUntilResponse(part, now, 500);
    EXPECT_FALSE(resp.has_value());
    EXPECT_TRUE(part.drained());
    EXPECT_EQ(stats.counterValue("part0.dram_writes"), 1u);
}

TEST(Partition, WriteHitIsAbsorbedByL2)
{
    StatRegistry stats;
    MemPartition part(0, testParams(), &stats);
    Cycle now = 0;
    part.accept(now, readReq(0, 1)); // brings the line in
    runUntilResponse(part, now);

    ++now;
    MemRequest w = readReq(0, 2);
    w.isWrite = true;
    part.accept(now, std::move(w));
    for (Cycle end = now + 200; now < end; ++now)
        part.tick(now);
    EXPECT_TRUE(part.drained());
    // Still only the one original DRAM write... none, and 1 read.
    EXPECT_EQ(stats.counterValue("part0.dram_writes"), 0u);
}

TEST(Partition, DirtyEvictionGeneratesWriteback)
{
    StatRegistry stats;
    PartitionParams p = testParams();
    p.l2Cache.ways = 1;
    p.l2Cache.capacityBytes = 512; // 4 lines, direct mapped
    MemPartition part(0, p, &stats);
    Cycle now = 0;

    part.accept(now, readReq(0, 1));
    runUntilResponse(part, now);
    ++now;
    MemRequest w = readReq(0, 2);
    w.isWrite = true;
    part.accept(now, std::move(w)); // dirties line 0
    for (Cycle end = now + 100; now < end; ++now)
        part.tick(now);

    // Read the conflicting line (same set): evicts dirty line 0.
    part.accept(now, readReq(512, 3));
    runUntilResponse(part, now);
    for (Cycle end = now + 500; now < end; ++now)
        part.tick(now);
    EXPECT_EQ(stats.counterValue("part0.l2_writebacks"), 1u);
    EXPECT_EQ(stats.counterValue("part0.dram_writes"), 1u);
}

TEST(Partition, NoL2ConfigBypassesToDram)
{
    StatRegistry stats;
    PartitionParams p = testParams();
    p.l2Enabled = false;
    MemPartition part(0, p, &stats);
    Cycle now = 0;
    part.accept(now, readReq(0));
    const auto resp = runUntilResponse(part, now);
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->trace.hitLevel, HitLevel::Dram);
    // The L2 stage collapses: l2Enq == dramEnq.
    EXPECT_EQ(resp->trace.l2Enq, resp->trace.dramEnq);
}

TEST(Partition, TraceTimestampsAreMonotonic)
{
    StatRegistry stats;
    MemPartition part(0, testParams(), &stats);
    Cycle now = 0;
    part.accept(now, readReq(0));
    const auto resp = runUntilResponse(part, now);
    ASSERT_TRUE(resp.has_value());
    const LatencyTrace &t = resp->trace;
    EXPECT_LE(t.ropEnq, t.l2Enq);
    EXPECT_LE(t.l2Enq, t.dramEnq);
    EXPECT_LE(t.dramEnq, t.dramSched);
    EXPECT_LE(t.dramSched, t.dramData);
}

TEST(Partition, BackpressuresWhenRopFull)
{
    StatRegistry stats;
    PartitionParams p = testParams();
    p.ropQueueSize = 2;
    MemPartition part(0, p, &stats);
    EXPECT_TRUE(part.canAccept());
    part.accept(0, readReq(0, 1));
    part.accept(0, readReq(128, 2));
    EXPECT_FALSE(part.canAccept());
}

} // namespace
} // namespace gpulat
