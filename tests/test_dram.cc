/**
 * @file
 * Unit + property tests for the DRAM channel timing model and the
 * FCFS / FR-FCFS schedulers.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "mem/dram.hh"
#include "mem/dram_sched.hh"

namespace gpulat {
namespace {

DramParams
testParams()
{
    DramParams p;
    p.banks = 4;
    p.rowBytes = 1024;
    p.timing.tRCD = 20;
    p.timing.tRP = 15;
    p.timing.tCAS = 10;
    p.timing.tBurst = 4;
    p.timing.tExtra = 0;
    return p;
}

MemRequest
req(Addr line)
{
    MemRequest r;
    r.lineAddr = line;
    return r;
}

TEST(DramChannel, ClosedBankPaysActivate)
{
    StatRegistry stats;
    DramChannel ch("d", testParams(), &stats);
    // closed: tRCD + tCAS + burst
    EXPECT_EQ(ch.schedule(0, false, 100), 100u + 20 + 10 + 4);
    EXPECT_EQ(stats.counterValue("d.row_closed"), 1u);
}

TEST(DramChannel, RowHitSkipsActivate)
{
    StatRegistry stats;
    DramChannel ch("d", testParams(), &stats);
    const Cycle first = ch.schedule(0, false, 100);
    // Same row (within 1KB), bank now open.
    EXPECT_TRUE(ch.rowHit(128));
    const Cycle second = ch.schedule(128, false, first);
    EXPECT_EQ(second, first + 10 + 4);
    EXPECT_EQ(stats.counterValue("d.row_hits"), 1u);
}

TEST(DramChannel, RowConflictPaysPrechargePlusActivate)
{
    StatRegistry stats;
    DramParams p = testParams();
    DramChannel ch("d", p, &stats);
    ch.schedule(0, false, 0);
    // Same bank, different row: bank stride is banks*rowBytes.
    const Addr conflict = p.banks * p.rowBytes;
    EXPECT_FALSE(ch.rowHit(conflict));
    const Cycle start = 1000; // bank long idle
    EXPECT_EQ(ch.schedule(conflict, false, start),
              start + 15 + 20 + 10 + 4);
    EXPECT_EQ(stats.counterValue("d.row_misses"), 1u);
}

TEST(DramChannel, BanksMapRowsRoundRobin)
{
    StatRegistry stats;
    DramParams p = testParams();
    DramChannel ch("d", p, &stats);
    EXPECT_EQ(ch.bankOf(0), 0u);
    EXPECT_EQ(ch.bankOf(p.rowBytes), 1u);
    EXPECT_EQ(ch.bankOf(3 * p.rowBytes), 3u);
    EXPECT_EQ(ch.bankOf(4 * p.rowBytes), 0u);
    EXPECT_EQ(ch.rowOf(0), ch.rowOf(512));
    EXPECT_NE(ch.rowOf(0), ch.rowOf(4 * p.rowBytes));
}

TEST(DramChannel, DataBusSerializesBursts)
{
    StatRegistry stats;
    DramChannel ch("d", testParams(), &stats);
    // Two different banks issued back to back: both pay activate,
    // but their bursts must not overlap on the shared bus.
    const Cycle a = ch.schedule(0, false, 0);
    const Cycle b = ch.schedule(1024, false, 0);
    EXPECT_GE(b, a + 4); // at least one burst apart
}

TEST(DramChannel, CompletionsAreMonotonicInScheduleOrder)
{
    StatRegistry stats;
    DramChannel ch("d", testParams(), &stats);
    Rng rng(5);
    Cycle prev = 0;
    Cycle now = 0;
    for (int i = 0; i < 1000; ++i) {
        const Addr line = rng.below(1 << 14) * 128;
        const Cycle done = ch.schedule(line, rng.below(2), now);
        EXPECT_GE(done, prev);
        prev = done;
        now += rng.below(30);
    }
}

TEST(DramChannel, ResetClosesRows)
{
    StatRegistry stats;
    DramChannel ch("d", testParams(), &stats);
    ch.schedule(0, false, 0);
    EXPECT_TRUE(ch.rowHit(0));
    ch.reset();
    EXPECT_FALSE(ch.rowHit(0));
}

TEST(DramSched, FcfsPicksHeadOnly)
{
    StatRegistry stats;
    DramChannel ch("d", testParams(), &stats);
    std::deque<MemRequest> q{req(0), req(128)};
    const auto pick =
        pickDramRequest(DramSchedPolicy::FCFS, q, ch, 10);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(*pick, 0u);
}

TEST(DramSched, FcfsWaitsForBusyBank)
{
    StatRegistry stats;
    DramChannel ch("d", testParams(), &stats);
    ch.schedule(0, false, 0); // bank 0 busy until ~34
    std::deque<MemRequest> q{req(128)};
    EXPECT_FALSE(
        pickDramRequest(DramSchedPolicy::FCFS, q, ch, 5).has_value());
    EXPECT_TRUE(
        pickDramRequest(DramSchedPolicy::FCFS, q, ch, 100)
            .has_value());
}

TEST(DramSched, FrFcfsPrefersRowHitOverOlder)
{
    StatRegistry stats;
    DramParams p = testParams();
    DramChannel ch("d", p, &stats);
    ch.schedule(0, false, 0); // opens row 0 of bank 0
    const Cycle ready = 100;

    // Head is a row conflict (bank 0, other row); second entry is a
    // row hit in bank 0.
    std::deque<MemRequest> q{req(p.banks * p.rowBytes), req(256)};
    const auto pick =
        pickDramRequest(DramSchedPolicy::FRFCFS, q, ch, ready);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(*pick, 1u);
}

TEST(DramSched, FrFcfsFallsBackToOldestReady)
{
    StatRegistry stats;
    DramParams p = testParams();
    DramChannel ch("d", p, &stats);
    // No open rows anywhere: oldest wins.
    std::deque<MemRequest> q{req(512), req(0)};
    const auto pick =
        pickDramRequest(DramSchedPolicy::FRFCFS, q, ch, 0);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(*pick, 0u);
}

TEST(DramSched, EmptyQueueYieldsNothing)
{
    StatRegistry stats;
    DramChannel ch("d", testParams(), &stats);
    std::deque<MemRequest> q;
    EXPECT_FALSE(pickDramRequest(DramSchedPolicy::FRFCFS, q, ch, 0)
                     .has_value());
}

/** Property: FR-FCFS achieves >= the row-hit count of FCFS on the
 *  same random request stream. */
TEST(DramSchedProperty, FrFcfsRowHitRateDominatesFcfs)
{
    for (std::uint64_t seed : {1u, 2u, 3u}) {
        std::uint64_t hits[2];
        int idx = 0;
        for (auto policy :
             {DramSchedPolicy::FCFS, DramSchedPolicy::FRFCFS}) {
            StatRegistry stats;
            DramChannel ch("d", testParams(), &stats);
            Rng rng(seed);
            std::deque<MemRequest> q;
            Cycle now = 0;
            int completed = 0;
            while (completed < 500) {
                // Keep the queue pressurized with hot-row traffic.
                while (q.size() < 16) {
                    const Addr line =
                        rng.below(8) * 1024 * 4 + rng.below(8) * 128;
                    q.push_back(req(line));
                }
                if (auto pick =
                        pickDramRequest(policy, q, ch, now)) {
                    ch.schedule(q[*pick].lineAddr, false, now);
                    q.erase(q.begin() +
                            static_cast<std::ptrdiff_t>(*pick));
                    ++completed;
                }
                ++now;
            }
            hits[idx++] = stats.counterValue("d.row_hits");
        }
        EXPECT_GE(hits[1], hits[0]) << "seed " << seed;
    }
}

} // namespace
} // namespace gpulat
