/**
 * @file
 * Unit + property tests for the DRAM channel timing model and the
 * FCFS / FR-FCFS schedulers.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "mem/dram.hh"
#include "mem/dram_sched.hh"

namespace gpulat {
namespace {

DramParams
testParams()
{
    DramParams p;
    p.banks = 4;
    p.rowBytes = 1024;
    p.timing.tRCD = 20;
    p.timing.tRP = 15;
    p.timing.tCAS = 10;
    p.timing.tBurst = 4;
    p.timing.tExtra = 0;
    return p;
}

MemRequest
req(Addr line, Cycle enq = 0)
{
    MemRequest r;
    r.lineAddr = line;
    // The scheduler asserts every request carries its enqueue cycle
    // (anti-starvation aging would otherwise be silently disabled).
    r.trace.dramEnq = enq;
    return r;
}

TEST(DramChannel, ClosedBankPaysActivate)
{
    StatRegistry stats;
    DramChannel ch("d", testParams(), &stats);
    // closed: tRCD + tCAS + burst
    EXPECT_EQ(ch.schedule(0, false, 100), 100u + 20 + 10 + 4);
    EXPECT_EQ(stats.counterValue("d.row_closed"), 1u);
}

TEST(DramChannel, RowHitSkipsActivate)
{
    StatRegistry stats;
    DramChannel ch("d", testParams(), &stats);
    const Cycle first = ch.schedule(0, false, 100);
    // Same row (within 1KB), bank now open.
    EXPECT_TRUE(ch.rowHit(128));
    const Cycle second = ch.schedule(128, false, first);
    EXPECT_EQ(second, first + 10 + 4);
    EXPECT_EQ(stats.counterValue("d.row_hits"), 1u);
}

TEST(DramChannel, RowConflictPaysPrechargePlusActivate)
{
    StatRegistry stats;
    DramParams p = testParams();
    DramChannel ch("d", p, &stats);
    ch.schedule(0, false, 0);
    // Same bank, different row: bank stride is banks*rowBytes.
    const Addr conflict = p.banks * p.rowBytes;
    EXPECT_FALSE(ch.rowHit(conflict));
    const Cycle start = 1000; // bank long idle
    EXPECT_EQ(ch.schedule(conflict, false, start),
              start + 15 + 20 + 10 + 4);
    EXPECT_EQ(stats.counterValue("d.row_misses"), 1u);
}

TEST(DramChannel, BanksMapRowsRoundRobin)
{
    StatRegistry stats;
    DramParams p = testParams();
    DramChannel ch("d", p, &stats);
    EXPECT_EQ(ch.bankOf(0), 0u);
    EXPECT_EQ(ch.bankOf(p.rowBytes), 1u);
    EXPECT_EQ(ch.bankOf(3 * p.rowBytes), 3u);
    EXPECT_EQ(ch.bankOf(4 * p.rowBytes), 0u);
    EXPECT_EQ(ch.rowOf(0), ch.rowOf(512));
    EXPECT_NE(ch.rowOf(0), ch.rowOf(4 * p.rowBytes));
}

TEST(DramChannel, DataBusSerializesBursts)
{
    StatRegistry stats;
    DramChannel ch("d", testParams(), &stats);
    // Two different banks issued back to back: both pay activate,
    // but their bursts must not overlap on the shared bus.
    const Cycle a = ch.schedule(0, false, 0);
    const Cycle b = ch.schedule(1024, false, 0);
    EXPECT_GE(b, a + 4); // at least one burst apart
}

TEST(DramChannel, CompletionsAreMonotonicInScheduleOrder)
{
    StatRegistry stats;
    DramChannel ch("d", testParams(), &stats);
    Rng rng(5);
    Cycle prev = 0;
    Cycle now = 0;
    for (int i = 0; i < 1000; ++i) {
        const Addr line = rng.below(1 << 14) * 128;
        const Cycle done = ch.schedule(line, rng.below(2), now);
        EXPECT_GE(done, prev);
        prev = done;
        now += rng.below(30);
    }
}

TEST(DramChannel, ResetClosesRows)
{
    StatRegistry stats;
    DramChannel ch("d", testParams(), &stats);
    ch.schedule(0, false, 0);
    EXPECT_TRUE(ch.rowHit(0));
    ch.reset();
    EXPECT_FALSE(ch.rowHit(0));
}

TEST(DramSched, FcfsPicksHeadOnly)
{
    StatRegistry stats;
    DramChannel ch("d", testParams(), &stats);
    std::deque<MemRequest> q{req(0), req(128)};
    const auto pick =
        pickDramRequest(DramSchedPolicy::FCFS, q, ch, 10);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(*pick, 0u);
}

TEST(DramSched, FcfsWaitsForBusyBank)
{
    StatRegistry stats;
    DramChannel ch("d", testParams(), &stats);
    ch.schedule(0, false, 0); // bank 0 busy until ~34
    std::deque<MemRequest> q{req(128)};
    EXPECT_FALSE(
        pickDramRequest(DramSchedPolicy::FCFS, q, ch, 5).has_value());
    EXPECT_TRUE(
        pickDramRequest(DramSchedPolicy::FCFS, q, ch, 100)
            .has_value());
}

TEST(DramSched, FrFcfsPrefersRowHitOverOlder)
{
    StatRegistry stats;
    DramParams p = testParams();
    DramChannel ch("d", p, &stats);
    ch.schedule(0, false, 0); // opens row 0 of bank 0
    const Cycle ready = 100;

    // Head is a row conflict (bank 0, other row); second entry is a
    // row hit in bank 0.
    std::deque<MemRequest> q{req(p.banks * p.rowBytes), req(256)};
    const auto pick =
        pickDramRequest(DramSchedPolicy::FRFCFS, q, ch, ready);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(*pick, 1u);
}

TEST(DramSched, FrFcfsFallsBackToOldestReady)
{
    StatRegistry stats;
    DramParams p = testParams();
    DramChannel ch("d", p, &stats);
    // No open rows anywhere: oldest wins.
    std::deque<MemRequest> q{req(512), req(0)};
    const auto pick =
        pickDramRequest(DramSchedPolicy::FRFCFS, q, ch, 0);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(*pick, 0u);
}

TEST(DramSched, EmptyQueueYieldsNothing)
{
    StatRegistry stats;
    DramChannel ch("d", testParams(), &stats);
    std::deque<MemRequest> q;
    EXPECT_FALSE(pickDramRequest(DramSchedPolicy::FRFCFS, q, ch, 0)
                     .has_value());
}

// ---------------------------------------------------------------
// Address mapper.

TEST(DramMap, RowMapMatchesLegacyArithmetic)
{
    DramGeometry g;
    g.banks = 4;
    g.bankGroups = 2;
    g.rowBytes = 1024;
    for (Addr a : {Addr{0}, Addr{512}, Addr{1024}, Addr{3 * 1024},
                   Addr{4 * 1024}, Addr{129 * 1024}}) {
        const DramCoord c = mapDramAddress(g, a);
        EXPECT_EQ(c.flatBank, (a / 1024) % 4) << "addr " << a;
        EXPECT_EQ(c.row, a / 1024 / 4) << "addr " << a;
        EXPECT_EQ(c.rank, 0u);
    }
}

TEST(DramMap, BankGroupMapRenumbersGroupsOnly)
{
    DramGeometry g;
    g.banks = 4;
    g.bankGroups = 2;
    g.rowBytes = 1024;
    // Row map: contiguous runs {0,1} and {2,3}.
    g.map = DramAddrMap::Row;
    EXPECT_EQ(mapDramAddress(g, 0).group, 0u);
    EXPECT_EQ(mapDramAddress(g, 1024).group, 0u);
    EXPECT_EQ(mapDramAddress(g, 2 * 1024).group, 1u);
    // BankGroup map: alternate, same flat bank.
    g.map = DramAddrMap::BankGroup;
    EXPECT_EQ(mapDramAddress(g, 1024).flatBank, 1u);
    EXPECT_EQ(mapDramAddress(g, 0).group, 0u);
    EXPECT_EQ(mapDramAddress(g, 1024).group, 1u);
    EXPECT_EQ(mapDramAddress(g, 2 * 1024).group, 0u);
}

TEST(DramMap, XorMapPermutesBanksPerRow)
{
    DramGeometry g;
    g.banks = 4;
    g.bankGroups = 2;
    g.rowBytes = 1024;
    g.map = DramAddrMap::Xor;
    // A stride of banks*rowBytes pins one bank under the Row map but
    // walks all banks under the hash.
    std::vector<bool> seen(4, false);
    for (unsigned i = 0; i < 4; ++i)
        seen[mapDramAddress(g, Addr{i} * 4 * 1024).flatBank] = true;
    for (unsigned b = 0; b < 4; ++b)
        EXPECT_TRUE(seen[b]) << "bank " << b << " never hit";
    // Still bijective inside one row.
    std::vector<bool> row_seen(4, false);
    for (unsigned i = 0; i < 4; ++i)
        row_seen[mapDramAddress(g, Addr{i} * 1024).flatBank] = true;
    for (unsigned b = 0; b < 4; ++b)
        EXPECT_TRUE(row_seen[b]);
}

TEST(DramMap, RanksExtendFlatBankSpace)
{
    DramGeometry g;
    g.banks = 4;
    g.bankGroups = 2;
    g.ranks = 2;
    g.rowBytes = 1024;
    const DramCoord c = mapDramAddress(g, 4 * 1024);
    EXPECT_EQ(c.flatBank, 4u);
    EXPECT_EQ(c.rank, 1u);
    EXPECT_EQ(c.bankInRank, 0u);
    EXPECT_EQ(mapDramAddress(g, 8 * 1024).flatBank, 0u);
    EXPECT_EQ(mapDramAddress(g, 8 * 1024).row, 1u);
}

// ---------------------------------------------------------------
// DDR command state machine. Small hand-computable timings:
// tRCD=20 tRP=15 tCAS=10 tBurst=4 plus the ddr constraints below.

DramParams
ddrParams()
{
    DramParams p = testParams();
    p.model = DramModel::Ddr;
    p.bankGroups = 2;
    p.ddr.tRAS = 50;
    p.ddr.tRRDS = 6;
    p.ddr.tRRDL = 12;
    p.ddr.tFAW = 60;
    p.ddr.tWTR = 30;
    p.ddr.tRTW = 25;
    p.ddr.tREFI = 1000;
    p.ddr.tRFC = 120;
    return p;
}

TEST(DramDdr, ColdAccessMatchesSimpleModel)
{
    StatRegistry stats;
    DramChannel ch("d", ddrParams(), &stats);
    // No prior activity: only ACT + CAS + burst, like `simple`.
    EXPECT_EQ(ch.schedule(0, false, 100), 100u + 20 + 10 + 4);
    EXPECT_EQ(stats.counterValue("d.row_closed"), 1u);
    EXPECT_EQ(stats.counterValue("d.rd_row_closed"), 1u);
    EXPECT_EQ(stats.counterValue("d.bg0.row_closed"), 1u);
}

TEST(DramDdr, TRasDelaysPrechargeOnRowConflict)
{
    StatRegistry stats;
    DramParams p = ddrParams();
    DramChannel ch("d", p, &stats);
    ch.schedule(0, false, 0); // ACT bank 0 at cycle 0
    // Conflict in bank 0 at cycle 40: PRE must wait for tRAS (ACT
    // 0 + 50), then pay tRP + tRCD + tCAS.
    const Addr conflict = p.banks * p.rowBytes;
    EXPECT_EQ(ch.schedule(conflict, false, 40),
              50u + 15 + 20 + 10 + 4);
}

TEST(DramDdr, SameGroupActivatePairSlowerThanCrossGroup)
{
    // banks {0,1} share group 0, {2,3} group 1 under the Row map.
    Cycle done[2];
    int i = 0;
    for (Addr second : {Addr{1024}, Addr{2 * 1024}}) {
        StatRegistry stats;
        DramChannel ch("d", ddrParams(), &stats);
        ch.schedule(0, false, 0);
        done[i++] = ch.schedule(second, false, 0);
    }
    // Same group: ACT held tRRD_L(12) -> data at 12+30, done 46.
    EXPECT_EQ(done[0], 46u);
    // Cross group: ACT held tRRD_S(6) -> data at 36, done 40.
    EXPECT_EQ(done[1], 40u);
}

TEST(DramDdr, TFawCapsFifthActivate)
{
    StatRegistry stats;
    DramParams p = ddrParams();
    p.banks = 8;
    p.bankGroups = 4;
    DramChannel ch("d", p, &stats);
    // Five activates to distinct banks at cycle 0. ACT times run
    // 0, 12, 18, 30 (tRRD_S/L alternating as the bank walk crosses
    // the two-bank groups); the fifth must wait for the first + tFAW.
    Cycle done = 0;
    for (unsigned b = 0; b <= 4; ++b)
        done = ch.schedule(Addr{b} * p.rowBytes, false, 0);
    // ACT at max(36, 0 + tFAW=60) = 60 -> data 90 -> done 94.
    EXPECT_EQ(done, 94u);
}

TEST(DramDdr, ReadWriteTurnaroundChargesBusSwitch)
{
    StatRegistry stats;
    DramChannel ch("d", ddrParams(), &stats);
    const Cycle rd = ch.schedule(0, false, 0);
    EXPECT_EQ(rd, 34u); // burst ends 34
    // Write hit at 40 would burst at 50, but tRTW holds the bus
    // until read-end 34 + 25 = 59.
    EXPECT_EQ(ch.schedule(128, true, 40), 59u + 4);
    // Read hit at 63 would burst at 73, but tWTR holds it until
    // write-end 63 + 30 = 93.
    EXPECT_EQ(ch.schedule(256, false, 63), 93u + 4);
    EXPECT_EQ(stats.counterValue("d.wr_row_hits"), 1u);
    EXPECT_EQ(stats.counterValue("d.rd_row_hits"), 1u);
}

TEST(DramDdr, RefreshClosesRowsAndStallsRank)
{
    StatRegistry stats;
    DramChannel ch("d", ddrParams(), &stats);
    ch.schedule(0, false, 0); // open bank 0 row 0
    EXPECT_TRUE(ch.rowHit(0));

    // Epoch 1 occupies [1000, 1120): an access at 1005 waits it out
    // and finds its row closed.
    EXPECT_EQ(ch.schedule(0, false, 1005), 1120u + 20 + 10 + 4);
    EXPECT_EQ(stats.counterValue("d.refreshes"), 1u);
    EXPECT_EQ(stats.counterValue("d.refresh_stall_cycles"), 115u);
    EXPECT_EQ(stats.counterValue("d.row_closed"), 2u);
    EXPECT_EQ(ch.refreshStallCycles(), 115u);
}

TEST(DramDdr, RefreshCatchUpAfterLongIdleCountsEveryEpoch)
{
    StatRegistry stats;
    DramChannel ch("d", ddrParams(), &stats);
    ch.schedule(0, false, 0);
    // Jump over three epochs: rows are closed exactly once per
    // epoch, and only the last epoch's window can still stall.
    ch.schedule(0, false, 3500);
    EXPECT_EQ(stats.counterValue("d.refreshes"), 3u);
    EXPECT_EQ(stats.counterValue("d.refresh_stall_cycles"), 0u);
}

TEST(DramDdr, ClosedPagePolicyAutoPrecharges)
{
    StatRegistry stats;
    DramParams p = ddrParams();
    p.page = DramPagePolicy::Closed;
    DramChannel ch("d", p, &stats);
    ch.schedule(0, false, 0);
    EXPECT_FALSE(ch.rowHit(0));
    ch.schedule(0, false, 200);
    EXPECT_EQ(stats.counterValue("d.row_closed"), 2u);
    EXPECT_EQ(stats.counterValue("d.row_hits"), 0u);
}

TEST(DramDdr, ResetClearsDdrState)
{
    StatRegistry stats;
    DramChannel ch("d", ddrParams(), &stats);
    ch.schedule(0, false, 0);
    ch.schedule(1024, true, 10);
    ch.reset();
    // A cold access after reset pays exactly the cold-start cost:
    // no leftover bus, turnaround, tRRD or refresh state.
    EXPECT_EQ(ch.schedule(2 * 1024, false, 0), 0u + 20 + 10 + 4);
}

TEST(DramDdr, CompletionsMonotonicUnderRandomTraffic)
{
    StatRegistry stats;
    DramParams p = ddrParams();
    p.ranks = 2;
    p.map = DramAddrMap::Xor;
    DramChannel ch("d", p, &stats);
    Rng rng(7);
    Cycle prev = 0;
    Cycle now = 0;
    for (int i = 0; i < 2000; ++i) {
        const Addr line = rng.below(1 << 14) * 128;
        const Cycle done = ch.schedule(line, rng.below(2), now);
        EXPECT_GE(done, prev);
        prev = done;
        now += rng.below(50);
    }
}

// ---------------------------------------------------------------
// Anti-starvation.

TEST(DramSched, FrFcfsStarvationBypassesRowHits)
{
    StatRegistry stats;
    DramParams p = testParams();
    DramChannel ch("d", p, &stats);
    ch.schedule(0, false, 0); // opens row 0 of bank 0

    // Head: row conflict enqueued at 0. Behind it: a fresh row hit.
    std::deque<MemRequest> q{req(p.banks * p.rowBytes, 0),
                             req(256, 95)};
    // Young head: the row hit still wins.
    auto pick = pickDramRequest(DramSchedPolicy::FRFCFS, q, ch, 100,
                                /*starvation_limit=*/200);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(*pick, 1u);
    // Head aged past the limit: strict oldest-ready.
    pick = pickDramRequest(DramSchedPolicy::FRFCFS, q, ch, 300,
                           /*starvation_limit=*/200);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(*pick, 0u);
}

TEST(DramSched, UnstampedRequestPanics)
{
    StatRegistry stats;
    DramChannel ch("d", testParams(), &stats);
    MemRequest r;
    r.lineAddr = 0; // trace.dramEnq left as kNoCycle
    std::deque<MemRequest> q{r};
    EXPECT_THROW(
        pickDramRequest(DramSchedPolicy::FRFCFS, q, ch, 1000),
        PanicError);
}

/** Property: FR-FCFS achieves >= the row-hit count of FCFS on the
 *  same random request stream. */
TEST(DramSchedProperty, FrFcfsRowHitRateDominatesFcfs)
{
    for (std::uint64_t seed : {1u, 2u, 3u}) {
        std::uint64_t hits[2];
        int idx = 0;
        for (auto policy :
             {DramSchedPolicy::FCFS, DramSchedPolicy::FRFCFS}) {
            StatRegistry stats;
            DramChannel ch("d", testParams(), &stats);
            Rng rng(seed);
            std::deque<MemRequest> q;
            Cycle now = 0;
            int completed = 0;
            while (completed < 500) {
                // Keep the queue pressurized with hot-row traffic.
                while (q.size() < 16) {
                    const Addr line =
                        rng.below(8) * 1024 * 4 + rng.below(8) * 128;
                    q.push_back(req(line));
                }
                if (auto pick =
                        pickDramRequest(policy, q, ch, now)) {
                    ch.schedule(q[*pick].lineAddr, false, now);
                    q.erase(q.begin() +
                            static_cast<std::ptrdiff_t>(*pick));
                    ++completed;
                }
                ++now;
            }
            hits[idx++] = stats.counterValue("d.row_hits");
        }
        EXPECT_GE(hits[1], hits[0]) << "seed " << seed;
    }
}

} // namespace
} // namespace gpulat
