/**
 * @file
 * Tests for the experiment API front-end: ParamMap parsing, the
 * config-override layer (round-trips, ClockRatio, error paths),
 * the workload registry, sweep expansion, sinks, and a golden
 * check that the `gpulat` CLI reports bit-identical cycles to the
 * same run driven through the direct C++ API.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <regex>
#include <sstream>

#include <gtest/gtest.h>

#include "api/cli.hh"
#include "api/config_override.hh"
#include "api/experiment.hh"
#include "api/param_map.hh"
#include "api/workload_registry.hh"
#include "common/log.hh"
#include "common/stats.hh"
#include "gpu/gpu.hh"
#include "workloads/bfs.hh"
#include "workloads/vecadd.hh"

namespace gpulat {
namespace {

// ------------------------------------------------------------ ParamMap

TEST(ParamMap, ParsesTypedValues)
{
    const ParamMap map =
        ParamMap::parse({"n=4096", "alpha=0.5", "deep=true",
                         "name=bfs"});
    EXPECT_EQ(map.getU64("n", 0), 4096u);
    EXPECT_DOUBLE_EQ(map.getDouble("alpha", 0.0), 0.5);
    EXPECT_TRUE(map.getBool("deep", false));
    EXPECT_EQ(map.getString("name", ""), "bfs");
    EXPECT_EQ(map.getU64("absent", 7), 7u);
    EXPECT_TRUE(map.unconsumedKeys().empty());
}

TEST(ParamMap, TracksUnconsumedKeys)
{
    const ParamMap map = ParamMap::parse({"n=1", "typo=2"});
    (void)map.getU64("n", 0);
    const auto unconsumed = map.unconsumedKeys();
    ASSERT_EQ(unconsumed.size(), 1u);
    EXPECT_EQ(unconsumed[0], "typo");
}

TEST(ParamMap, RejectsMalformedInput)
{
    EXPECT_THROW(ParamMap::parse({"novalue"}), FatalError);
    EXPECT_THROW(ParamMap::parse({"=x"}), FatalError);
    const ParamMap map = ParamMap::parse({"n=abc", "b=maybe"});
    EXPECT_THROW((void)map.getU64("n", 0), FatalError);
    EXPECT_THROW((void)map.getBool("b", false), FatalError);
}

TEST(ParamMap, RejectsNegativeIntegers)
{
    // strtoull would happily wrap "-1" to 2^64-1.
    const ParamMap map = ParamMap::parse({"n=-1"});
    EXPECT_THROW((void)map.getU64("n", 0), FatalError);
}

// ----------------------------------------------------- config overrides

TEST(ConfigOverride, AppliesDottedPaths)
{
    GpuConfig cfg = makeConfig("gf100-sim");
    applyOverrides(cfg, {"sm.warpSlots=16", "numPartitions=3",
                         "partition.sched=fcfs",
                         "sm.schedPolicy=lrr",
                         "partition.dram.timing.tRCD=99",
                         "idleFastForward=off"});
    EXPECT_EQ(cfg.sm.warpSlots, 16u);
    EXPECT_EQ(cfg.numPartitions, 3u);
    EXPECT_EQ(cfg.partition.sched, DramSchedPolicy::FCFS);
    EXPECT_EQ(cfg.sm.schedPolicy, SchedPolicy::LRR);
    EXPECT_EQ(cfg.partition.dram.timing.tRCD, 99u);
    EXPECT_EQ(cfg.idleFastForward, IdleFastForward::Off);
}

TEST(ConfigOverride, IdleFastForwardForms)
{
    GpuConfig cfg = makeConfig("gf106");
    EXPECT_EQ(cfg.idleFastForward, IdleFastForward::PerDomain);
    applyOverride(cfg, "idleFastForward=full");
    EXPECT_EQ(cfg.idleFastForward, IdleFastForward::Full);
    applyOverride(cfg, "idleFastForward=perDomain");
    EXPECT_EQ(cfg.idleFastForward, IdleFastForward::PerDomain);
    EXPECT_EQ(readOverride(cfg, "idleFastForward"), "perDomain");
    applyOverride(cfg, "idleFastForward=off");
    EXPECT_EQ(readOverride(cfg, "idleFastForward"), "off");

    // Legacy boolean spellings: "on"/true was the whole-pipeline
    // skip, which is now called full.
    for (const char *legacy_on : {"on", "true", "1"}) {
        applyOverride(cfg, std::string("idleFastForward=") +
                               legacy_on);
        EXPECT_EQ(cfg.idleFastForward, IdleFastForward::Full)
            << legacy_on;
    }
    for (const char *legacy_off : {"false", "0"}) {
        applyOverride(cfg, std::string("idleFastForward=") +
                               legacy_off);
        EXPECT_EQ(cfg.idleFastForward, IdleFastForward::Off)
            << legacy_off;
    }
    EXPECT_THROW(applyOverride(cfg, "idleFastForward=perCore"),
                 FatalError);
}

TEST(ConfigOverride, ClockRatioForms)
{
    GpuConfig cfg = makeConfig("gf106");
    applyOverride(cfg, "dramClock=1/2");
    EXPECT_EQ(cfg.dramClock.mul, 1u);
    EXPECT_EQ(cfg.dramClock.div, 2u);
    applyOverride(cfg, "icntClock=2:3");
    EXPECT_EQ(cfg.icntClock.mul, 2u);
    EXPECT_EQ(cfg.icntClock.div, 3u);
    applyOverride(cfg, "l2Clock=2");
    EXPECT_EQ(cfg.l2Clock.mul, 2u);
    EXPECT_EQ(cfg.l2Clock.div, 1u);
    EXPECT_EQ(readOverride(cfg, "dramClock"), "1/2");

    EXPECT_THROW(applyOverride(cfg, "dramClock=0/2"), FatalError);
    EXPECT_THROW(applyOverride(cfg, "dramClock=fast"), FatalError);
    EXPECT_THROW(applyOverride(cfg, "dramClock=-1"), FatalError);
    EXPECT_THROW(applyOverride(cfg, "dramClock=1/-2"), FatalError);
    EXPECT_THROW(applyOverride(cfg, "deviceMemBytes=-5"),
                 FatalError);
}

TEST(ConfigOverride, ClockRatioNormalizesOnParse)
{
    // "2/4" and "1/2" are the same frequency, so they must parse
    // to the same canonical ratio and format identically —
    // otherwise an override round-trip (read, reapply, compare)
    // spuriously fails on any non-reduced user input.
    GpuConfig cfg = makeConfig("gf106");
    applyOverride(cfg, "dramClock=2/4");
    EXPECT_EQ(cfg.dramClock.mul, 1u);
    EXPECT_EQ(cfg.dramClock.div, 2u);
    EXPECT_EQ(readOverride(cfg, "dramClock"), "1/2");

    applyOverride(cfg, "icntClock=6:4");
    EXPECT_EQ(readOverride(cfg, "icntClock"), "3/2");
    applyOverride(cfg, "l2Clock=8");
    EXPECT_EQ(readOverride(cfg, "l2Clock"), "8/1");

    // Round-trip identity on a non-reduced spelling: the formatted
    // value reapplies to the same machine.
    GpuConfig again = makeConfig("gf106");
    applyOverride(again, "dramClock=" +
                             readOverride(cfg, "dramClock"));
    EXPECT_EQ(again.dramClock.mul, cfg.dramClock.mul);
    EXPECT_EQ(again.dramClock.div, cfg.dramClock.div);

    // Normalization happens before range validation, so a reduced
    // in-range ratio with large raw terms is accepted.
    applyOverride(cfg, "dramClock=128/256");
    EXPECT_EQ(readOverride(cfg, "dramClock"), "1/2");
    Gpu gpu(cfg); // validateRatio sees {1,2}: in range
    EXPECT_EQ(gpu.config().dramClock.div, 2u);
}

TEST(Experiment, TickJobsIsSurfacedButNotSerialized)
{
    // engine.tickJobs is an execution knob: the resolved value is
    // surfaced on the record for programmatic consumers, but the
    // override is filtered from the serialized fields so output is
    // byte-identical across tick-jobs values (CI diffs it).
    ExperimentSpec serial;
    serial.gpu = "gf106";
    serial.workload = "vecadd";
    serial.params = {"n=2048"};
    serial.overrides = {"numPartitions=4"};
    ExperimentSpec parallel = serial;
    parallel.overrides.push_back("engine.tickJobs=4");

    const ExperimentRecord a = runExperiment(serial);
    const ExperimentRecord b = runExperiment(parallel);
    EXPECT_EQ(a.tickJobs, 1u);
    EXPECT_EQ(b.tickJobs, 4u);
    EXPECT_EQ(b.overrides.count("engine.tickJobs"), 0u);
    EXPECT_EQ(a.overrides, b.overrides);
    EXPECT_EQ(a.cycles, b.cycles);

    // Per-group tick counters ride along and are identical. The
    // default smGroupSize of 1 names one group per SM core.
    EXPECT_GT(b.counters.at("engine.group.sm0.ticks_run"), 0u);
    EXPECT_EQ(a.counters.at("engine.group.part0.ticks_run"),
              b.counters.at("engine.group.part0.ticks_run"));

    auto render = [](const ExperimentRecord &rec) {
        std::ostringstream os;
        JsonSink sink(os);
        sink.write(rec);
        sink.finish();
        return os.str();
    };
    EXPECT_EQ(render(a), render(b));
}

TEST(ConfigOverride, EveryKeyRoundTrips)
{
    // Reading a key and applying the formatted value back must be
    // an identity for every registered key, on every preset.
    for (const std::string &preset : configNames()) {
        const GpuConfig original = makeConfig(preset);
        for (const ConfigKey &key : configKeys()) {
            const std::string value = key.get(original);
            GpuConfig copy = makeConfig(preset);
            applyOverride(copy, key.path + "=" + value);
            EXPECT_EQ(key.get(copy), value)
                << preset << ": " << key.path;
        }
    }
}

TEST(ConfigOverride, RejectsBadInput)
{
    GpuConfig cfg = makeConfig("gf106");
    EXPECT_THROW(applyOverride(cfg, "sm.noSuchKnob=1"), FatalError);
    EXPECT_THROW(applyOverride(cfg, "warpSlots=48"), FatalError);
    EXPECT_THROW(applyOverride(cfg, "sm.warpSlots"), FatalError);
    EXPECT_THROW(applyOverride(cfg, "sm.warpSlots=lots"),
                 FatalError);
    EXPECT_THROW(applyOverride(cfg, "sm.l1Enabled=maybe"),
                 FatalError);
    EXPECT_THROW((void)readOverride(cfg, "sm.noSuchKnob"),
                 FatalError);
}

// ----------------------------------------------------------- registry

TEST(WorkloadRegistry, ConstructsEveryRegisteredName)
{
    const WorkloadRegistry &reg = WorkloadRegistry::instance();
    const auto names = reg.names();
    ASSERT_FALSE(names.empty());
    for (const std::string &name : names) {
        auto workload = reg.create(name, ParamMap{});
        ASSERT_NE(workload, nullptr) << name;
        EXPECT_EQ(workload->name(), name);
    }
}

TEST(WorkloadRegistry, MatchesMakeAllWorkloads)
{
    // makeAllWorkloads() is implemented on the registry; the
    // bench-suite set must be exactly the registered names flagged
    // benchSuite, in registration order.
    const WorkloadRegistry &reg = WorkloadRegistry::instance();
    const auto workloads = makeAllWorkloads(0.05);
    std::vector<std::string> names;
    for (const std::string &name : reg.names()) {
        if (reg.find(name)->benchSuite)
            names.push_back(name);
    }
    ASSERT_EQ(workloads.size(), names.size());
    for (std::size_t i = 0; i < names.size(); ++i)
        EXPECT_EQ(workloads[i]->name(), names[i]);
}

TEST(WorkloadRegistry, PChaseIsAddressableButNotBenchSuite)
{
    // The microbench registers benchSuite=false: sweepable by name
    // through the CLI, absent from the kernel-pattern suite.
    const WorkloadRegistry &reg = WorkloadRegistry::instance();
    const WorkloadEntry *entry = reg.find("pchase");
    ASSERT_NE(entry, nullptr);
    EXPECT_FALSE(entry->benchSuite);
    for (const auto &w : makeAllWorkloads(0.05))
        EXPECT_NE(w->name(), "pchase");

    ExperimentSpec spec;
    spec.gpu = "gf106";
    spec.workload = "pchase";
    spec.params = {"footprintBytes=16384", "timedAccesses=64"};
    const ExperimentRecord rec = runExperiment(spec);
    EXPECT_TRUE(rec.correct);
    EXPECT_GT(rec.metric("pchase_cycles_per_access"), 1.0);
}

TEST(WorkloadRegistry, RejectsUnknownNamesAndParams)
{
    const WorkloadRegistry &reg = WorkloadRegistry::instance();
    EXPECT_THROW(reg.create("warp_drive", ParamMap{}), FatalError);
    EXPECT_THROW(
        reg.create("vecadd", ParamMap::parse({"ndoes=4096"})),
        FatalError);
}

TEST(WorkloadRegistry, BfsNodesImpliesUniform)
{
    // The CLI shorthand `bfs nodes=4096` must construct a uniform
    // graph of that size rather than silently ignoring `nodes`.
    const WorkloadRegistry &reg = WorkloadRegistry::instance();
    auto workload =
        reg.create("bfs", ParamMap::parse({"nodes=512"}));
    EXPECT_EQ(workload->name(), "bfs");
    Gpu gpu(makeConfig("gf106"));
    const WorkloadResult result = workload->run(gpu);
    EXPECT_TRUE(result.correct);
}

TEST(WorkloadRegistry, BfsNodesShorthandSurvivesRunExperiment)
{
    // The shorthand must also hold through runExperiment's
    // merging of scaled defaults under user params — a scaled
    // default kind=rmat would silently win over `nodes=`.
    ExperimentSpec spec;
    spec.gpu = "gf106";
    spec.workload = "bfs";
    spec.params = {"nodes=512"};
    const ExperimentRecord rec = runExperiment(spec);
    EXPECT_TRUE(rec.correct);
    EXPECT_EQ(rec.params.count("kind"), 0u);

    // Bit-identical to the direct uniform-graph run (degree comes
    // from the scaled defaults, everything else factory-default).
    Gpu gpu(makeConfig("gf106"));
    Bfs::Options opts;
    opts.kind = Bfs::GraphKind::Uniform;
    opts.nodes = 512;
    opts.degree = 8;
    Bfs bfs(opts);
    EXPECT_EQ(rec.cycles, bfs.run(gpu).cycles);
}

TEST(WorkloadRegistry, EveryPresetWorkloadCellIsConstructible)
{
    // The acceptance bar for the CLI: every preset x workload cell
    // must at least resolve and build (running all 55 cells is the
    // bench suite's job, not a unit test's).
    const WorkloadRegistry &reg = WorkloadRegistry::instance();
    for (const std::string &preset : configNames()) {
        ExperimentSpec spec;
        spec.gpu = preset;
        const GpuConfig cfg = buildConfig(spec);
        EXPECT_EQ(cfg.name, preset);
        for (const std::string &name : reg.names())
            EXPECT_NE(reg.create(name, ParamMap{}), nullptr)
                << preset << " x " << name;
    }
}

TEST(Config, PresetNameAliases)
{
    EXPECT_EQ(makeConfig("gf100sim").name, "gf100-sim");
    EXPECT_EQ(makeConfig("GF100-Sim").name, "gf100-sim");
    EXPECT_EQ(makeConfig("gt_200").name, "gt200");
    EXPECT_THROW(makeConfig("gp100"), FatalError);
}

// -------------------------------------------------------------- sweeps

TEST(Experiment, ExpandSweepCartesianProduct)
{
    ExperimentSpec spec;
    spec.workload = "vecadd";
    spec.params = {"n=1024,2048"};
    spec.overrides = {"sm.warpSlots=1,2,4", "icntLatency=32"};
    const auto runs = expandSweep(spec);
    ASSERT_EQ(runs.size(), 6u);
    // First axis (params) varies slowest, last axis fastest.
    EXPECT_EQ(runs[0].params[0], "n=1024");
    EXPECT_EQ(runs[0].overrides[0], "sm.warpSlots=1");
    EXPECT_EQ(runs[1].overrides[0], "sm.warpSlots=2");
    EXPECT_EQ(runs[2].overrides[0], "sm.warpSlots=4");
    EXPECT_EQ(runs[3].params[0], "n=2048");
    EXPECT_EQ(runs[3].overrides[0], "sm.warpSlots=1");
    for (const auto &run : runs)
        EXPECT_EQ(run.overrides[1], "icntLatency=32");
}

TEST(Experiment, SingleSpecPassesThrough)
{
    ExperimentSpec spec;
    spec.workload = "vecadd";
    spec.params = {"n=1024"};
    const auto runs = expandSweep(spec);
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_EQ(runs[0].params[0], "n=1024");
}

TEST(Experiment, ScalarStatsRespectEpochs)
{
    // markEpoch() must fence scalars too, or a second experiment
    // on the same Gpu inherits the first one's queue-wait samples.
    StatRegistry stats;
    stats.scalar("part0.dram_queue_wait").sample(100.0);
    stats.scalar("part0.dram_queue_wait").sample(200.0);
    stats.markEpoch();
    stats.scalar("part0.dram_queue_wait").sample(30.0);
    const auto delta =
        stats.scalarSinceEpoch("part0.dram_queue_wait");
    EXPECT_EQ(delta.count, 1u);
    EXPECT_DOUBLE_EQ(delta.sum, 30.0);
    EXPECT_DOUBLE_EQ(delta.mean(), 30.0);
    EXPECT_EQ(stats.scalarSinceEpoch("absent").count, 0u);
}

// ------------------------------------------------ records and sinks

TEST(Experiment, RecordCarriesStableMetrics)
{
    ExperimentSpec spec;
    spec.gpu = "gf106";
    spec.workload = "vecadd";
    spec.params = {"n=2048"};
    const ExperimentRecord rec = runExperiment(spec);
    EXPECT_TRUE(rec.correct);
    EXPECT_GT(rec.cycles, 0u);
    EXPECT_EQ(rec.gpu, "gf106");
    for (const char *metric :
         {"ipc", "requests", "mean_load_latency", "exposed_pct",
          "l1_hit_pct", "dram_row_hit_pct", "mean_dram_queue_wait",
          "stage_pct.sm_base", "stage_pct.dram_qtosch"}) {
        EXPECT_TRUE(rec.metrics.count(metric)) << metric;
    }
    EXPECT_GT(rec.metric("requests"), 0.0);
    // Effective parameters are reported, defaults included.
    EXPECT_EQ(rec.params.at("n"), "2048");
}

/**
 * Minimal RFC-4180 reader: split one CSV document into rows of
 * unescaped fields (quoted fields may contain delimiters, doubled
 * quotes and line breaks).
 */
std::vector<std::vector<std::string>>
parseCsv(const std::string &text)
{
    std::vector<std::vector<std::string>> rows;
    std::vector<std::string> row;
    std::string field;
    bool quoted = false;
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (quoted) {
            if (c == '"' && i + 1 < text.size() &&
                text[i + 1] == '"') {
                field += '"';
                ++i;
            } else if (c == '"') {
                quoted = false;
            } else {
                field += c;
            }
        } else if (c == '"') {
            quoted = true;
        } else if (c == ',') {
            row.push_back(std::move(field));
            field.clear();
        } else if (c == '\n') {
            row.push_back(std::move(field));
            field.clear();
            rows.push_back(std::move(row));
            row.clear();
        } else {
            field += c;
        }
    }
    return rows;
}

TEST(StatSinks, CsvQuotesHostileFieldsRoundTrip)
{
    // A param value carrying the delimiter, quotes and a newline
    // must survive write -> RFC-4180 parse intact instead of
    // shearing the row apart (which silently broke the CI
    // serial-vs-parallel CSV byte-diff gate's coverage).
    ExperimentRecord rec;
    rec.gpu = "gf106";
    rec.workload = "vecadd";
    rec.params["label"] = "a,b\"c\"\nd";
    rec.overrides["name"] = "x,y";
    rec.correct = true;
    rec.cycles = 42;
    rec.metrics["ipc"] = 1.5;

    std::ostringstream csv;
    CsvSink sink(csv);
    sink.write(rec);
    sink.finish();

    const auto rows = parseCsv(csv.str());
    ASSERT_EQ(rows.size(), 2u);
    ASSERT_EQ(rows[0].size(), rows[1].size());
    EXPECT_EQ(rows[1][0], "gf106");
    EXPECT_EQ(rows[1][2], "label=a,b\"c\"\nd");
    EXPECT_EQ(rows[1][3], "name=x,y");
    EXPECT_EQ(rows[1][5], "42");
    EXPECT_EQ(rows[1][8], "1.5000");
}

TEST(StatSinks, NonFiniteMetricsRenderAsNullCells)
{
    // Missing or NaN/inf metrics must not leak locale-dependent
    // "nan"/"inf" tokens (or a fabricated 0.0) into the outputs:
    // empty cell in CSV, "-" in the table, null in JSON.
    ExperimentRecord rec;
    rec.gpu = "gf106";
    rec.workload = "vecadd";
    rec.correct = true;
    rec.cycles = 7;
    rec.metrics["ipc"] = std::nan("");
    rec.metrics["mean_load_latency"] =
        std::numeric_limits<double>::infinity();
    // exposed_pct intentionally absent.

    std::ostringstream csv;
    CsvSink csink(csv);
    csink.write(rec);
    csink.finish();
    const auto rows = parseCsv(csv.str());
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[1][8], "");  // ipc: NaN
    EXPECT_EQ(rows[1][10], ""); // mean_load_latency: inf
    EXPECT_EQ(rows[1][11], ""); // exposed_pct: missing
    EXPECT_EQ(csv.str().find("nan"), std::string::npos);
    EXPECT_EQ(csv.str().find("inf"), std::string::npos);

    std::ostringstream table;
    TextTableSink tsink(table);
    tsink.write(rec);
    tsink.finish();
    EXPECT_NE(table.str().find('-'), std::string::npos);
    EXPECT_EQ(table.str().find("nan"), std::string::npos);
    EXPECT_EQ(table.str().find("inf"), std::string::npos);

    std::ostringstream json;
    JsonSink jsink(json);
    jsink.write(rec);
    jsink.finish();
    EXPECT_NE(json.str().find("\"ipc\": null"), std::string::npos);
}

TEST(Experiment, RecordCarriesFastForwardSkipMetrics)
{
    ExperimentSpec spec;
    spec.gpu = "gf106";
    spec.workload = "vecadd";
    spec.params = {"n=2048"};
    const ExperimentRecord rec = runExperiment(spec);
    for (const char *domain : {"core", "icnt", "l2", "dram"}) {
        const std::string metric =
            std::string("ff_skip_pct.") + domain;
        ASSERT_TRUE(rec.metrics.count(metric)) << metric;
        EXPECT_GE(rec.metric(metric), 0.0) << metric;
        EXPECT_LE(rec.metric(metric), 100.0) << metric;
        EXPECT_TRUE(rec.counters.count("engine." +
                                       std::string(domain) +
                                       ".ticks_run"))
            << domain;
    }
    // The default perDomain policy skips real work on any run with
    // memory waits.
    EXPECT_GT(rec.metric("ff_skip_pct.dram"), 0.0);
}

TEST(StatSinks, JsonAndCsvRender)
{
    ExperimentSpec spec;
    spec.gpu = "gf106";
    spec.workload = "vecadd";
    spec.params = {"n=2048"};
    const ExperimentRecord rec = runExperiment(spec);

    std::ostringstream json;
    JsonSink jsink(json);
    jsink.write(rec);
    jsink.finish();
    EXPECT_NE(json.str().find("\"schema\": \"gpulat.run.v1\""),
              std::string::npos);
    EXPECT_NE(json.str().find("\"workload\": \"vecadd\""),
              std::string::npos);
    EXPECT_NE(json.str().find("\"cycles\": " +
                              std::to_string(rec.cycles)),
              std::string::npos);

    std::ostringstream csv;
    CsvSink csink(csv);
    csink.write(rec);
    csink.finish();
    EXPECT_NE(csv.str().find("gpu,workload,params"),
              std::string::npos);
    EXPECT_NE(csv.str().find("gf106,vecadd,"), std::string::npos);
}

// ------------------------------------------------------ golden cycles

Cycle
directApiCycles()
{
    // The reference run: direct C++ API, no registry, no CLI.
    Gpu gpu(makeGF106());
    VecAdd::Options opts;
    opts.n = 4096;
    VecAdd workload(opts);
    const WorkloadResult result = workload.run(gpu);
    EXPECT_TRUE(result.correct);
    return result.cycles;
}

TEST(Golden, RunExperimentMatchesDirectApi)
{
    ExperimentSpec spec;
    spec.gpu = "gf106";
    spec.workload = "vecadd";
    spec.params = {"n=4096"};
    const ExperimentRecord rec = runExperiment(spec);
    EXPECT_TRUE(rec.correct);
    EXPECT_EQ(rec.cycles, directApiCycles());
}

Cycle
cyclesFromJson(const std::string &json)
{
    const std::regex pattern("\"cycles\": ([0-9]+)");
    std::smatch match;
    EXPECT_TRUE(std::regex_search(json, match, pattern)) << json;
    return match.empty() ? 0 : std::stoull(match[1].str());
}

TEST(Cli, RunRefusesCommaListsSweepExpandsThem)
{
    const char *run_argv[] = {"gpulat", "run", "--workload",
                              "vecadd", "n=1024",
                              "--set", "sm.warpSlots=8,16"};
    std::ostringstream out;
    std::ostringstream err;
    EXPECT_EQ(runCli(static_cast<int>(std::size(run_argv)),
                     run_argv, out, err),
              2);
    EXPECT_NE(err.str().find("gpulat sweep"), std::string::npos);

    const char *bad_scale[] = {"gpulat", "run", "--workload",
                               "vecadd", "--scale", "abc"};
    std::ostringstream out2;
    std::ostringstream err2;
    EXPECT_EQ(runCli(static_cast<int>(std::size(bad_scale)),
                     bad_scale, out2, err2),
              2);
}

TEST(Golden, InProcessCliMatchesDirectApi)
{
    const char *argv[] = {"gpulat", "run", "--gpu", "gf106",
                          "--workload", "vecadd", "n=4096",
                          "--json", "-"};
    std::ostringstream out;
    std::ostringstream err;
    const int rc = runCli(static_cast<int>(std::size(argv)), argv,
                          out, err);
    EXPECT_EQ(rc, 0) << err.str();
    EXPECT_EQ(cyclesFromJson(out.str()), directApiCycles());
}

TEST(Golden, CliBinaryMatchesDirectApi)
{
    // Drive the real shipped binary (path provided by CTest); the
    // CLI-reported cycle count must be bit-identical to the direct
    // C++ API run of the same preset x workload pair.
    const char *cli = std::getenv("GPULAT_CLI");
    if (!cli || !*cli)
        GTEST_SKIP() << "GPULAT_CLI not set (run under ctest)";

    const std::string cmd = std::string(cli) +
        " run --gpu gf106 --workload vecadd n=4096 --json - 2>&1";
    FILE *pipe = popen(cmd.c_str(), "r");
    ASSERT_NE(pipe, nullptr);
    std::string output;
    char buf[4096];
    while (std::fgets(buf, sizeof(buf), pipe))
        output += buf;
    const int status = pclose(pipe);
    EXPECT_EQ(status, 0) << output;
    EXPECT_EQ(cyclesFromJson(output), directApiCycles());
}

TEST(Golden, OverridesChangeTheMachine)
{
    // A --set override must actually reach the simulated hardware:
    // starving the SM of warp slots slows vecadd down.
    ExperimentSpec narrow;
    narrow.gpu = "gf106";
    narrow.workload = "vecadd";
    narrow.params = {"n=2048"};
    narrow.overrides = {"sm.warpSlots=8", "sm.maxBlocksPerSm=1"};
    ExperimentSpec wide = narrow;
    wide.overrides = {"sm.warpSlots=48"};
    const Cycle slow = runExperiment(narrow).cycles;
    const Cycle fast = runExperiment(wide).cycles;
    EXPECT_GT(slow, fast);
}

} // namespace
} // namespace gpulat
