/**
 * @file
 * Workload correctness tests: every workload must match its CPU
 * reference on the simulated GPU, across parameter sweeps
 * (TEST_P property style).
 */

#include <gtest/gtest.h>

#include "workloads/bfs.hh"
#include "workloads/compute_stream.hh"
#include "workloads/gemm.hh"
#include "workloads/graph.hh"
#include "workloads/reduction.hh"
#include "workloads/scan.hh"
#include "workloads/spmv.hh"
#include "workloads/stencil.hh"
#include "workloads/transpose.hh"
#include "workloads/vecadd.hh"

namespace gpulat {
namespace {

GpuConfig
testConfig()
{
    GpuConfig cfg = makeGF100Sim();
    cfg.numSms = 4;
    cfg.numPartitions = 2;
    cfg.deviceMemBytes = 64 * 1024 * 1024;
    return cfg;
}

TEST(Graph, UniformGraphIsWellFormedCsr)
{
    const CsrGraph g = makeUniformGraph(1000, 8, 1);
    EXPECT_EQ(g.numNodes, 1000u);
    EXPECT_EQ(g.rowOffsets.size(), 1001u);
    EXPECT_EQ(g.rowOffsets.back(), g.numEdges());
    for (std::size_t v = 0; v < g.numNodes; ++v)
        EXPECT_LE(g.rowOffsets[v], g.rowOffsets[v + 1]);
    for (const auto c : g.columns)
        EXPECT_LT(c, g.numNodes);
}

TEST(Graph, RmatDegreesAreSkewed)
{
    const CsrGraph g = makeRmatGraph(12, 8, 7);
    std::uint64_t max_deg = 0;
    for (std::size_t v = 0; v < g.numNodes; ++v)
        max_deg = std::max(max_deg,
                           g.rowOffsets[v + 1] - g.rowOffsets[v]);
    const double mean_deg = static_cast<double>(g.numEdges()) /
                            static_cast<double>(g.numNodes);
    EXPECT_GT(static_cast<double>(max_deg), mean_deg * 5);
}

TEST(Graph, GeneratorsAreDeterministic)
{
    const CsrGraph a = makeRmatGraph(10, 4, 3);
    const CsrGraph b = makeRmatGraph(10, 4, 3);
    EXPECT_EQ(a.columns, b.columns);
    EXPECT_EQ(a.rowOffsets, b.rowOffsets);
}

TEST(Graph, CpuBfsProducesValidLevels)
{
    const CsrGraph g = makeUniformGraph(500, 6, 2);
    const auto levels = cpuBfs(g, 0);
    EXPECT_EQ(levels[0], 0);
    // Every reachable node's level is 1 + min over in-neighbors on
    // the BFS tree; weaker sanity: a neighbor differs by <= 1 when
    // both reached.
    for (std::uint64_t v = 0; v < g.numNodes; ++v) {
        if (levels[v] < 0)
            continue;
        for (std::uint64_t e = g.rowOffsets[v];
             e < g.rowOffsets[v + 1]; ++e) {
            const auto u = g.columns[e];
            ASSERT_GE(levels[u], 0);
            EXPECT_LE(levels[u], levels[v] + 1);
        }
    }
}

class BfsSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(BfsSeeds, MatchesCpuReferenceOnUniformGraphs)
{
    Gpu gpu(testConfig());
    Bfs::Options opts;
    opts.kind = Bfs::GraphKind::Uniform;
    opts.nodes = 2000;
    opts.degree = 6;
    opts.seed = GetParam();
    Bfs bfs(opts);
    const WorkloadResult r = bfs.run(gpu);
    EXPECT_TRUE(r.correct) << "seed " << GetParam();
    EXPECT_GT(r.launches, 1u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BfsSeeds,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(BfsWorkload, RmatGraphMatchesReference)
{
    Gpu gpu(testConfig());
    Bfs::Options opts;
    opts.kind = Bfs::GraphKind::Rmat;
    opts.scale = 11;
    opts.degree = 8;
    Bfs bfs(opts);
    EXPECT_TRUE(bfs.run(gpu).correct);
}

class VecAddSizes : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(VecAddSizes, MatchesReference)
{
    Gpu gpu(testConfig());
    VecAdd::Options opts;
    opts.n = GetParam();
    VecAdd workload(opts);
    EXPECT_TRUE(workload.run(gpu).correct) << "n = " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sweep, VecAddSizes,
                         ::testing::Values(1, 31, 32, 255, 4096,
                                           100000));

class ReductionSizes
    : public ::testing::TestWithParam<std::pair<std::uint64_t,
                                                unsigned>>
{
};

TEST_P(ReductionSizes, MatchesReference)
{
    Gpu gpu(testConfig());
    Reduction::Options opts;
    opts.n = GetParam().first;
    opts.threadsPerBlock = GetParam().second;
    Reduction workload(opts);
    EXPECT_TRUE(workload.run(gpu).correct)
        << "n=" << opts.n << " tpb=" << opts.threadsPerBlock;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReductionSizes,
    ::testing::Values(std::pair<std::uint64_t, unsigned>{1000, 64},
                      std::pair<std::uint64_t, unsigned>{4096, 256},
                      std::pair<std::uint64_t, unsigned>{10000, 128},
                      std::pair<std::uint64_t, unsigned>{65536, 512}));

TEST(StencilWorkload, MatchesReference)
{
    Gpu gpu(testConfig());
    Stencil2D::Options opts;
    opts.width = 64;
    opts.height = 48;
    opts.iterations = 3;
    Stencil2D workload(opts);
    EXPECT_TRUE(workload.run(gpu).correct);
}

TEST(SpmvWorkload, MatchesReference)
{
    Gpu gpu(testConfig());
    SpMV::Options opts;
    opts.rows = 1024;
    opts.nnzPerRow = 12;
    SpMV workload(opts);
    EXPECT_TRUE(workload.run(gpu).correct);
}

TEST(TransposeWorkload, NaiveMatchesReference)
{
    Gpu gpu(testConfig());
    Transpose::Options opts;
    opts.n = 64;
    opts.tiled = false;
    Transpose workload(opts);
    EXPECT_TRUE(workload.run(gpu).correct);
}

TEST(TransposeWorkload, TiledMatchesReference)
{
    Gpu gpu(testConfig());
    Transpose::Options opts;
    opts.n = 64;
    opts.tiled = true;
    Transpose workload(opts);
    EXPECT_TRUE(workload.run(gpu).correct);
}

TEST(TransposeWorkload, TiledIsFasterThanNaive)
{
    Transpose::Options naive_opts;
    naive_opts.n = 128;
    naive_opts.tiled = false;
    Transpose naive(naive_opts);

    Transpose::Options tiled_opts = naive_opts;
    tiled_opts.tiled = true;
    Transpose tiled(tiled_opts);

    Gpu gpu_naive(testConfig());
    Gpu gpu_tiled(testConfig());
    const auto rn = naive.run(gpu_naive);
    const auto rt = tiled.run(gpu_tiled);
    ASSERT_TRUE(rn.correct);
    ASSERT_TRUE(rt.correct);
    // Coalescing pays: tiled needs fewer cycles.
    EXPECT_LT(rt.cycles, rn.cycles);
}

class ScanSizes
    : public ::testing::TestWithParam<std::pair<std::uint64_t,
                                                unsigned>>
{
};

TEST_P(ScanSizes, MatchesReference)
{
    Gpu gpu(testConfig());
    Scan::Options opts;
    opts.n = GetParam().first;
    opts.blockElems = GetParam().second;
    Scan workload(opts);
    const WorkloadResult r = workload.run(gpu);
    EXPECT_TRUE(r.correct)
        << "n=" << opts.n << " block=" << opts.blockElems;
    EXPECT_EQ(r.launches, 2u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ScanSizes,
    ::testing::Values(std::pair<std::uint64_t, unsigned>{100, 64},
                      std::pair<std::uint64_t, unsigned>{256, 256},
                      std::pair<std::uint64_t, unsigned>{5000, 128},
                      std::pair<std::uint64_t, unsigned>{16384, 512}));

TEST(GemmWorkload, MatchesReference)
{
    Gpu gpu(testConfig());
    Gemm::Options opts;
    opts.n = 32;
    Gemm workload(opts);
    EXPECT_TRUE(workload.run(gpu).correct);
}

TEST(GemmWorkload, LargerMatrixStillExact)
{
    Gpu gpu(testConfig());
    Gemm::Options opts;
    opts.n = 64;
    Gemm workload(opts);
    EXPECT_TRUE(workload.run(gpu).correct);
}

class ComputeStreamDepths : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ComputeStreamDepths, MatchesReference)
{
    Gpu gpu(testConfig());
    ComputeStream::Options opts;
    opts.n = 4096;
    opts.fmaDepth = GetParam();
    ComputeStream workload(opts);
    EXPECT_TRUE(workload.run(gpu).correct)
        << "depth " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sweep, ComputeStreamDepths,
                         ::testing::Values(0, 1, 16, 64));

TEST(AllWorkloads, FactoryProducesRunnableSet)
{
    const auto workloads = makeAllWorkloads(0.05);
    EXPECT_GE(workloads.size(), 10u);
    for (const auto &w : workloads) {
        Gpu gpu(testConfig());
        EXPECT_TRUE(w->run(gpu).correct) << w->name();
    }
}

} // namespace
} // namespace gpulat
