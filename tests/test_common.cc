/**
 * @file
 * Unit tests for the common infrastructure: timed queues, stats,
 * RNG determinism and table/chart rendering.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "common/percentile.hh"
#include "common/queue.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/table.hh"

namespace gpulat {
namespace {

TEST(TimedQueue, RespectsMinLatency)
{
    TimedQueue<int> q(4, 10);
    EXPECT_TRUE(q.push(100, 7));
    EXPECT_FALSE(q.headReady(100));
    EXPECT_FALSE(q.headReady(109));
    EXPECT_TRUE(q.headReady(110));
    EXPECT_EQ(q.pop(), 7);
    EXPECT_TRUE(q.empty());
}

TEST(TimedQueue, ZeroLatencyIsImmediatelyReady)
{
    TimedQueue<int> q(2, 0);
    ASSERT_TRUE(q.push(5, 1));
    EXPECT_TRUE(q.headReady(5));
}

TEST(TimedQueue, EnforcesCapacity)
{
    TimedQueue<int> q(2, 1);
    EXPECT_TRUE(q.push(0, 1));
    EXPECT_TRUE(q.push(0, 2));
    EXPECT_TRUE(q.full());
    EXPECT_FALSE(q.push(0, 3));
    EXPECT_EQ(q.size(), 2u);
}

TEST(TimedQueue, FifoOrder)
{
    TimedQueue<int> q(8, 1);
    for (int i = 0; i < 8; ++i)
        ASSERT_TRUE(q.push(0, i));
    for (int i = 0; i < 8; ++i) {
        ASSERT_TRUE(q.headReady(1));
        EXPECT_EQ(q.pop(), i);
    }
}

TEST(TimedQueue, HeadReadyAtReportsCycle)
{
    TimedQueue<int> q(2, 25);
    EXPECT_EQ(q.headReadyAt(), kNoCycle);
    q.push(100, 1);
    EXPECT_EQ(q.headReadyAt(), 125u);
}

TEST(TimedQueue, OccupancyStats)
{
    TimedQueue<int> q(4, 1);
    q.push(0, 1);
    q.push(0, 2);
    EXPECT_EQ(q.maxOccupancy(), 2u);
    EXPECT_DOUBLE_EQ(q.meanOccupancy(), 1.5);
}

TEST(TimedQueue, LaterPushesKeepOrderEvenWhenReadyEarlier)
{
    // FIFO: the head blocks younger entries even if they were
    // pushed with lower latency... (same latency per queue, so the
    // ready times are monotonic by construction).
    TimedQueue<int> q(4, 5);
    q.push(0, 1);
    q.push(3, 2);
    EXPECT_TRUE(q.headReady(5));
    EXPECT_EQ(q.pop(), 1);
    EXPECT_FALSE(q.headReady(6));
    EXPECT_TRUE(q.headReady(8));
}

TEST(Counter, IncrementAndReset)
{
    Counter c;
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(ScalarStat, TracksMoments)
{
    ScalarStat s;
    s.sample(1.0);
    s.sample(3.0);
    s.sample(2.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(Histogram, BucketsLinearly)
{
    Histogram h(0.0, 100.0, 10);
    h.sample(5.0);
    h.sample(15.0);
    h.sample(15.5);
    h.sample(99.9);
    h.sample(1000.0); // clamps to last bucket
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 2u);
    EXPECT_EQ(h.bucketCount(9), 2u);
    EXPECT_DOUBLE_EQ(h.bucketLo(1), 10.0);
    EXPECT_DOUBLE_EQ(h.bucketHi(1), 20.0);
}

TEST(StatRegistry, NamedCountersAreSingletons)
{
    StatRegistry reg;
    reg.counter("a.b").inc(3);
    reg.counter("a.b").inc(4);
    EXPECT_EQ(reg.counterValue("a.b"), 7u);
    EXPECT_EQ(reg.counterValue("missing"), 0u);
}

TEST(StatRegistry, DumpContainsAllNames)
{
    StatRegistry reg;
    reg.counter("x.count").inc();
    reg.scalar("y.wait").sample(2.0);
    std::ostringstream oss;
    reg.dump(oss);
    EXPECT_NE(oss.str().find("x.count"), std::string::npos);
    EXPECT_NE(oss.str().find("y.wait"), std::string::npos);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(13), 13u);
}

TEST(Rng, UniformIsInUnitInterval)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    EXPECT_NE(a.next(), b.next());
}

TEST(TextTable, AlignsAndCountsRows)
{
    TextTable t({"col", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "2"});
    EXPECT_EQ(t.rows(), 2u);
    std::ostringstream oss;
    t.print(oss);
    EXPECT_NE(oss.str().find("longer"), std::string::npos);
}

TEST(TextTable, CsvQuotesCommas)
{
    TextTable t({"a"});
    t.addRow({"x,y"});
    std::ostringstream oss;
    t.printCsv(oss);
    EXPECT_NE(oss.str().find("\"x,y\""), std::string::npos);
}

TEST(StackedBarChart, RendersLegendAndBars)
{
    StackedBarChart chart({"alpha", "beta"}, 20);
    chart.addBar("0-10", {75.0, 25.0});
    std::ostringstream oss;
    chart.print(oss);
    EXPECT_NE(oss.str().find("alpha"), std::string::npos);
    EXPECT_NE(oss.str().find("0-10"), std::string::npos);
}

TEST(Percentile, EmptySampleReturnsValueInitialized)
{
    EXPECT_EQ(percentileSorted(std::vector<int>{}, 0.5), 0);
    EXPECT_EQ(percentileSorted(std::vector<double>{}, 0.99), 0.0);
}

TEST(Percentile, SingleElementIsEveryPercentile)
{
    const std::vector<int> one = {42};
    EXPECT_EQ(percentileSorted(one, 0.0), 42);
    EXPECT_EQ(percentileSorted(one, 0.5), 42);
    EXPECT_EQ(percentileSorted(one, 0.99), 42);
    EXPECT_EQ(percentileSorted(one, 1.0), 42);
}

TEST(Percentile, UsesTheLatencySummaryIndexConvention)
{
    // index = floor(p * (n - 1)) on the sorted sample — the exact
    // formula the latency summary has always used.
    const std::vector<int> v = {10, 20, 30, 40, 50};
    EXPECT_EQ(percentileSorted(v, 0.5), 30);  // floor(0.5 * 4) = 2
    EXPECT_EQ(percentileSorted(v, 0.99), 40); // floor(0.99 * 4) = 3
    EXPECT_EQ(percentileSorted(v, 0.25), 20); // floor(0.25 * 4) = 1
    EXPECT_EQ(percentileSorted(v, 1.0), 50);
    // Out-of-range p clamps to the extremes.
    EXPECT_EQ(percentileSorted(v, -0.5), 10);
    EXPECT_EQ(percentileSorted(v, 2.0), 50);
}

TEST(Percentile, TiesAndUnsortedInput)
{
    const std::vector<int> ties = {7, 7, 7, 7};
    EXPECT_EQ(percentileSorted(ties, 0.5), 7);
    EXPECT_EQ(percentileSorted(ties, 0.99), 7);
    // percentile() sorts a copy first.
    EXPECT_EQ(percentile(std::vector<int>{50, 10, 40, 20, 30}, 0.5),
              30);
}

TEST(Log, PanicAndFatalThrowDistinctTypes)
{
    EXPECT_THROW(panic("boom"), PanicError);
    EXPECT_THROW(fatal("bad input"), FatalError);
}

TEST(Log, AssertMacroFiresOnFalse)
{
    EXPECT_THROW(GPULAT_ASSERT(false, "nope"), PanicError);
    EXPECT_NO_THROW(GPULAT_ASSERT(true, "fine"));
}

} // namespace
} // namespace gpulat
