/**
 * @file
 * End-to-end GPU tests: kernels run to completion with correct
 * functional results and sane timing behaviour.
 */

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "common/log.hh"
#include "gpu/gpu.hh"
#include "isa/assembler.hh"

namespace gpulat {
namespace {

/** Small config so tests are fast but still multi-SM/partition. */
GpuConfig
testConfig()
{
    GpuConfig cfg = makeGF106();
    cfg.numSms = 2;
    cfg.numPartitions = 2;
    cfg.deviceMemBytes = 16 * 1024 * 1024;
    return cfg;
}

TEST(Gpu, StoreConstantKernel)
{
    Gpu gpu(testConfig());
    const Kernel k = assemble(R"(
        s2r r0, tid
        s2r r1, ctaid
        s2r r2, ntid
        imad r0, r1, r2, r0
        shl r3, r0, 3
        mov r4, param0
        iadd r4, r4, r3
        mov r5, 12345
        st.global [r4], r5
        exit
    )");
    const std::uint64_t n = 256;
    const Addr buf = gpu.alloc(n * 8);
    gpu.launch(k, 2, 128, {buf});
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint64_t v = 0;
        gpu.copyFromDevice(&v, buf + i * 8, 8);
        EXPECT_EQ(v, 12345u) << "thread " << i;
    }
}

TEST(Gpu, SpecialRegistersAreCorrect)
{
    Gpu gpu(testConfig());
    // out[gid*4 .. +3] = {tid, ctaid, ntid, nctaid}
    const Kernel k = assemble(R"(
        s2r r0, tid
        s2r r1, ctaid
        s2r r2, ntid
        s2r r3, nctaid
        imad r4, r1, r2, r0
        shl r5, r4, 5         ; gid * 32 bytes
        mov r6, param0
        iadd r6, r6, r5
        st.global [r6], r0
        st.global [r6+8], r1
        st.global [r6+16], r2
        st.global [r6+24], r3
        exit
    )");
    const unsigned blocks = 3;
    const unsigned tpb = 64;
    const Addr buf = gpu.alloc(blocks * tpb * 32);
    gpu.launch(k, blocks, tpb, {buf});
    for (unsigned b = 0; b < blocks; ++b) {
        for (unsigned t = 0; t < tpb; ++t) {
            std::uint64_t vals[4];
            gpu.copyFromDevice(vals, buf + (b * tpb + t) * 32, 32);
            EXPECT_EQ(vals[0], t);
            EXPECT_EQ(vals[1], b);
            EXPECT_EQ(vals[2], tpb);
            EXPECT_EQ(vals[3], blocks);
        }
    }
}

TEST(Gpu, DivergentKernelComputesBothPaths)
{
    Gpu gpu(testConfig());
    // Even threads write 2*i, odd threads write 3*i.
    const Kernel k = assemble(R"(
        s2r r0, tid
        and r1, r0, 1
        setp.eq p0, r1, 0
        mov r2, param0
        shl r3, r0, 3
        iadd r2, r2, r3
        @p0 bra even_path
        imul r4, r0, 3
        bra join
        even_path:
        imul r4, r0, 2
        join:
        st.global [r2], r4
        exit
    )");
    const Addr buf = gpu.alloc(32 * 8);
    gpu.launch(k, 1, 32, {buf});
    for (std::uint64_t i = 0; i < 32; ++i) {
        std::uint64_t v = 0;
        gpu.copyFromDevice(&v, buf + i * 8, 8);
        EXPECT_EQ(v, i % 2 == 0 ? 2 * i : 3 * i) << "lane " << i;
    }
}

TEST(Gpu, DataDependentLoopTripCounts)
{
    Gpu gpu(testConfig());
    // Each thread loops tid times accumulating 1.
    const Kernel k = assemble(R"(
        s2r r0, tid
        mov r1, 0
        mov r2, 0
        loop:
        setp.ge p0, r2, r0
        @p0 bra out
        iadd r1, r1, 1
        iadd r2, r2, 1
        bra loop
        out:
        mov r3, param0
        shl r4, r0, 3
        iadd r3, r3, r4
        st.global [r3], r1
        exit
    )");
    const Addr buf = gpu.alloc(32 * 8);
    gpu.launch(k, 1, 32, {buf});
    for (std::uint64_t i = 0; i < 32; ++i) {
        std::uint64_t v = 0;
        gpu.copyFromDevice(&v, buf + i * 8, 8);
        EXPECT_EQ(v, i) << "lane " << i;
    }
}

TEST(Gpu, SharedMemoryBarrierExchange)
{
    Gpu gpu(testConfig());
    // Thread t writes t to shared, reads neighbor (t+1)%ntid.
    const Kernel k = assemble(R"(
        .shared 1024
        s2r r0, tid
        s2r r2, ntid
        shl r1, r0, 3
        st.shared [r1], r0
        bar
        iadd r3, r0, 1
        setp.ge p0, r3, r2
        @p0 mov r3, 0
        shl r4, r3, 3
        ld.shared r5, [r4]
        mov r6, param0
        iadd r6, r6, r1
        st.global [r6], r5
        exit
    )");
    const unsigned tpb = 128; // 4 warps: real barrier needed
    const Addr buf = gpu.alloc(tpb * 8);
    gpu.launch(k, 1, tpb, {buf});
    for (std::uint64_t i = 0; i < tpb; ++i) {
        std::uint64_t v = 0;
        gpu.copyFromDevice(&v, buf + i * 8, 8);
        EXPECT_EQ(v, (i + 1) % tpb) << "lane " << i;
    }
}

TEST(Gpu, LocalMemoryIsPerThread)
{
    GpuConfig cfg = testConfig();
    cfg.localBytesPerThread = 256;
    Gpu gpu(cfg);
    // Each thread stores tid*7 to local[8] and reads it back.
    const Kernel k = assemble(R"(
        s2r r0, tid
        s2r r1, ctaid
        s2r r2, ntid
        imad r0, r1, r2, r0
        imul r3, r0, 7
        mov r4, 8
        st.local [r4], r3
        ld.local r5, [r4]
        mov r6, param0
        shl r7, r0, 3
        iadd r6, r6, r7
        st.global [r6], r5
        exit
    )");
    const unsigned total = 128;
    const Addr buf = gpu.alloc(total * 8);
    gpu.launch(k, 2, 64, {buf});
    for (std::uint64_t i = 0; i < total; ++i) {
        std::uint64_t v = 0;
        gpu.copyFromDevice(&v, buf + i * 8, 8);
        EXPECT_EQ(v, i * 7) << "thread " << i;
    }
}

TEST(Gpu, FloatingPointOps)
{
    Gpu gpu(testConfig());
    const Kernel k = assemble(R"(
        mov r1, param0
        ld.global r2, [r1]      ; a
        ld.global r3, [r1+8]    ; b
        fadd r4, r2, r3
        fmul r5, r2, r3
        ffma r6, r2, r3, r4
        st.global [r1+16], r4
        st.global [r1+24], r5
        st.global [r1+32], r6
        exit
    )");
    const Addr buf = gpu.alloc(64);
    const double a = 1.5;
    const double b = -2.25;
    gpu.copyToDevice(buf, &a, 8);
    gpu.copyToDevice(buf + 8, &b, 8);
    gpu.launch(k, 1, 1, {buf});
    double add = 0;
    double mul = 0;
    double fma = 0;
    gpu.copyFromDevice(&add, buf + 16, 8);
    gpu.copyFromDevice(&mul, buf + 24, 8);
    gpu.copyFromDevice(&fma, buf + 32, 8);
    EXPECT_DOUBLE_EQ(add, a + b);
    EXPECT_DOUBLE_EQ(mul, a * b);
    EXPECT_DOUBLE_EQ(fma, a * b + (a + b));
}

TEST(Gpu, ClockAdvancesMonotonically)
{
    Gpu gpu(testConfig());
    const Kernel k = assemble(R"(
        clock r1
        mov r2, param0
        ld.global r3, [r2]
        clock r4, r3
        isub r5, r4, r1
        st.global [r2+8], r5
        exit
    )");
    const Addr buf = gpu.alloc(16);
    gpu.launch(k, 1, 1, {buf});
    std::uint64_t delta = 0;
    gpu.copyFromDevice(&delta, buf + 8, 8);
    // A dependent load must take at least the L1 path latency.
    EXPECT_GT(delta, 10u);
    EXPECT_LT(delta, 10000u);
}

TEST(Gpu, MoreBlocksThanSmSlotsDrainInWaves)
{
    Gpu gpu(testConfig());
    const Kernel k = assemble(R"(
        s2r r0, ctaid
        shl r1, r0, 3
        mov r2, param0
        iadd r2, r2, r1
        mov r3, 1
        st.global [r2], r3
        exit
    )");
    const unsigned blocks = 64; // >> resident capacity
    const Addr buf = gpu.alloc(blocks * 8);
    gpu.launch(k, blocks, 32, {buf});
    for (unsigned b = 0; b < blocks; ++b) {
        std::uint64_t v = 0;
        gpu.copyFromDevice(&v, buf + b * 8, 8);
        EXPECT_EQ(v, 1u) << "block " << b;
    }
}

TEST(Gpu, BackToBackLaunchesShareState)
{
    Gpu gpu(testConfig());
    const Kernel incr = assemble(R"(
        mov r1, param0
        ld.global r2, [r1]
        iadd r2, r2, 1
        st.global [r1], r2
        exit
    )");
    const Addr buf = gpu.alloc(8);
    for (int i = 0; i < 5; ++i)
        gpu.launch(incr, 1, 1, {buf});
    std::uint64_t v = 0;
    gpu.copyFromDevice(&v, buf, 8);
    EXPECT_EQ(v, 5u);
}

// ------------------------------------------------ stall watchdog

/**
 * A config whose L2 MSHR can merge more same-line misses than the
 * return queue can ever fan out to at once: the DRAM fill needs
 * `peekCount` free return slots in a single cycle, so 4 merged
 * loads against a 2-deep return queue wedge the partition forever
 * — a genuine, deterministic hang for watchdog tests.
 */
GpuConfig
deadlockConfig()
{
    GpuConfig cfg = makeGF106();
    cfg.numSms = 1;
    cfg.numPartitions = 1;
    cfg.deviceMemBytes = 16 * 1024 * 1024;
    cfg.sm.l1Enabled = false; // every warp's load reaches the L2
    cfg.partition.returnQueueSize = 2;
    cfg.partition.l2MshrEntries = 8;
    cfg.partition.l2MshrMaxMerge = 8;
    cfg.engine.watchdogStallSteps = 20000; // fast tests
    return cfg;
}

/** All 4 warps load the same line (1 primary + 3 merged misses)
 *  and *consume* the value, so they stay resident, stalled on the
 *  register dependency, while the fill is wedged. */
Kernel
sameLineLoadKernel()
{
    return assemble(R"(
        mov r1, param0
        ld.global r2, [r1]
        iadd r3, r2, 1
        exit
    )");
}

/** First integer following @p key in @p text (-1 if absent). */
long long
numberAfter(const std::string &text, const std::string &key)
{
    const auto pos = text.find(key);
    if (pos == std::string::npos)
        return -1;
    return std::atoll(text.c_str() + pos + key.size());
}

TEST(Gpu, WatchdogPanicReportIsSettled)
{
    // Under perDomain fast-forward the SM sleeps through the whole
    // wedged wait with an *open* lazy idle-accounting window; the
    // stall report must settle() before reading statistics, or it
    // shows the idle total from the moment the SM fell asleep
    // (a few hundred cycles) instead of the stall-time truth
    // (roughly the full simulated timeline).
    GpuConfig cfg = deadlockConfig();
    cfg.idleFastForward = IdleFastForward::PerDomain;
    Gpu gpu(std::move(cfg));
    const Kernel k = sameLineLoadKernel();
    const Addr buf = gpu.alloc(256);

    std::string report;
    try {
        gpu.launch(k, 1, 128, {buf});
        FAIL() << "wedged launch must panic";
    } catch (const PanicError &e) {
        report = e.what();
    }

    EXPECT_NE(report.find("no forward progress"), std::string::npos)
        << report;
    EXPECT_NE(report.find("[not drained]"), std::string::npos)
        << report;

    const long long now = numberAfter(report, "now=");
    const long long idle = numberAfter(report, "idle=");
    ASSERT_GT(now, 20000) << report;
    // Settled: the SM's idle cycles track the stalled timeline, not
    // the moment its accounting window was last closed.
    EXPECT_GT(idle, now / 2) << report;
}

TEST(Gpu, WatchdogStillCatchesRealHangInOffMode)
{
    // No fast-forward, no promises: the naive reference must still
    // detect the wedge (steps and cycles coincide in Off mode).
    GpuConfig cfg = deadlockConfig();
    cfg.idleFastForward = IdleFastForward::Off;
    Gpu gpu(std::move(cfg));
    const Addr buf = gpu.alloc(256);
    EXPECT_THROW(gpu.launch(sameLineLoadKernel(), 1, 128, {buf}),
                 PanicError);
}

TEST(Gpu, WatchdogCountsStepsNotCycles)
{
    // The no-progress window is measured in performed engine steps
    // (TickEngine::steps()), never core cycles: with a per-access
    // DRAM latency far above the whole stall threshold, every wait
    // is one fast-forward jump, so a healthy latency-bound run
    // whose *cycle* count dwarfs the threshold must complete
    // without tripping the watchdog.
    GpuConfig cfg = makeGF106();
    cfg.numSms = 1;
    cfg.numPartitions = 1;
    cfg.deviceMemBytes = 16 * 1024 * 1024;
    cfg.idleFastForward = IdleFastForward::PerDomain;
    cfg.engine.watchdogStallSteps = 20000;
    cfg.partition.dram.timing.tExtra = 60000; // >> stall threshold
    Gpu gpu(std::move(cfg));

    // A dependent-load chain: every access is a fresh >60k-cycle
    // idle window with zero signature change inside it.
    const Kernel chase = assemble(R"(
        mov r1, param0
        ld.global r2, [r1]
        ld.global r3, [r2]
        ld.global r4, [r3]
        st.global [r1+8], r4
        exit
    )");
    const Addr buf = gpu.alloc(4096);
    // Pointer chain across distinct lines, so every dependent load
    // is a fresh DRAM access (no cache reuse shortcuts the waits).
    for (std::uint64_t i = 0; i < 3; ++i) {
        const std::uint64_t next = buf + (i + 1) * 512;
        gpu.copyToDevice(buf + i * 512, &next, 8);
    }

    const LaunchResult result = gpu.launch(chase, 1, 1, {buf});
    // The run legitimately spans many multiples of the stall
    // threshold in *cycles*; in *steps* it stays far below it.
    EXPECT_GT(result.cycles, 3u * 20000u);
    EXPECT_LT(gpu.engine().steps(), 20000u);
}

TEST(Gpu, RejectsOversizedBlock)
{
    Gpu gpu(testConfig());
    const Kernel k = assemble("exit\n");
    EXPECT_THROW(gpu.launch(k, 1, 1 << 20, {}), FatalError);
}

TEST(Gpu, RejectsEmptyGrid)
{
    Gpu gpu(testConfig());
    const Kernel k = assemble("exit\n");
    EXPECT_THROW(gpu.launch(k, 0, 32, {}), FatalError);
}

TEST(Gpu, PartialWarpAndPartialBlock)
{
    Gpu gpu(testConfig());
    const Kernel k = assemble(R"(
        s2r r0, tid
        s2r r1, ctaid
        s2r r2, ntid
        imad r0, r1, r2, r0
        mov r3, param1
        setp.ge p0, r0, r3
        @p0 bra done
        mov r4, param0
        shl r5, r0, 3
        iadd r4, r4, r5
        mov r6, 7
        st.global [r4], r6
        done:
        exit
    )");
    const std::uint64_t n = 50; // 1 block of 50 threads: 2 warps
    const Addr buf = gpu.alloc(64 * 8);
    gpu.launch(k, 1, 50, {buf, n});
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint64_t v = 0;
        gpu.copyFromDevice(&v, buf + i * 8, 8);
        EXPECT_EQ(v, 7u) << i;
    }
}

TEST(Gpu, DeterministicAcrossRuns)
{
    auto run = [] {
        Gpu gpu(testConfig());
        const Kernel k = assemble(R"(
            s2r r0, tid
            s2r r1, ctaid
            s2r r2, ntid
            imad r0, r1, r2, r0
            shl r3, r0, 3
            mov r4, param0
            iadd r4, r4, r3
            ld.global r5, [r4]
            iadd r5, r5, 1
            st.global [r4], r5
            exit
        )");
        const Addr buf = gpu.alloc(1024 * 8);
        const LaunchResult lr = gpu.launch(k, 8, 128, {buf});
        return lr.cycles;
    };
    EXPECT_EQ(run(), run());
}

} // namespace
} // namespace gpulat
