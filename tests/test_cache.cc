/**
 * @file
 * Unit + property tests for the cache tag array and MSHR table.
 */

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "cache/mshr.hh"
#include "common/random.hh"

namespace gpulat {
namespace {

CacheParams
smallParams()
{
    CacheParams p;
    p.capacityBytes = 4 * 1024; // 32 lines
    p.lineBytes = 128;
    p.ways = 4;
    return p;
}

TEST(Cache, MissThenFillThenHit)
{
    StatRegistry stats;
    Cache cache("c", smallParams(), &stats);
    EXPECT_EQ(cache.access(0, false, 0), CacheOutcome::Miss);
    EXPECT_FALSE(cache.contains(0));
    cache.fill(0, 1);
    EXPECT_TRUE(cache.contains(0));
    EXPECT_EQ(cache.access(0, false, 2), CacheOutcome::Hit);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(Cache, RejectsUnalignedAddress)
{
    StatRegistry stats;
    Cache cache("c", smallParams(), &stats);
    EXPECT_THROW(cache.access(4, false, 0), PanicError);
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    StatRegistry stats;
    CacheParams p = smallParams(); // 8 sets, 4 ways
    Cache cache("c", p, &stats);
    const Addr set_stride = 8 * 128; // same set every 1KB

    // Fill one set's 4 ways at increasing times.
    for (Addr i = 0; i < 4; ++i)
        cache.fill(i * set_stride, i);
    // Touch line 0 so line 1 becomes LRU.
    EXPECT_EQ(cache.access(0, false, 10), CacheOutcome::Hit);
    // New fill in the same set evicts line 1.
    cache.fill(4 * set_stride, 11);
    EXPECT_TRUE(cache.contains(0));
    EXPECT_FALSE(cache.contains(1 * set_stride));
    EXPECT_TRUE(cache.contains(4 * set_stride));
}

TEST(Cache, WriteThroughDoesNotAllocateOnWriteMiss)
{
    StatRegistry stats;
    CacheParams p = smallParams();
    p.write = WritePolicy::WriteThrough;
    Cache cache("c", p, &stats);
    EXPECT_EQ(cache.access(0, true, 0), CacheOutcome::WriteNoAllocate);
    EXPECT_FALSE(cache.contains(0));
    EXPECT_EQ(cache.misses(), 0u); // nothing waits on a write miss
}

TEST(Cache, WriteBackMarksDirtyAndEvictsDirty)
{
    StatRegistry stats;
    CacheParams p = smallParams();
    p.write = WritePolicy::WriteBack;
    p.ways = 1; // direct-mapped for deterministic eviction
    Cache cache("c", p, &stats);
    const Addr conflict = p.capacityBytes; // same set as addr 0

    cache.fill(0, 0);
    EXPECT_EQ(cache.access(0, true, 1), CacheOutcome::Hit);
    const auto victim = cache.fill(conflict, 2);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(*victim, 0u);
}

TEST(Cache, CleanEvictionYieldsNoWriteback)
{
    StatRegistry stats;
    CacheParams p = smallParams();
    p.write = WritePolicy::WriteBack;
    p.ways = 1;
    Cache cache("c", p, &stats);
    cache.fill(0, 0);
    EXPECT_FALSE(cache.fill(p.capacityBytes, 1).has_value());
}

TEST(Cache, FillIsIdempotentForPresentLine)
{
    StatRegistry stats;
    Cache cache("c", smallParams(), &stats);
    cache.fill(128, 0);
    EXPECT_FALSE(cache.fill(128, 1).has_value());
    EXPECT_TRUE(cache.contains(128));
}

TEST(Cache, InvalidateAllEmptiesTheArray)
{
    StatRegistry stats;
    Cache cache("c", smallParams(), &stats);
    cache.fill(0, 0);
    cache.fill(128, 0);
    cache.invalidateAll();
    EXPECT_FALSE(cache.contains(0));
    EXPECT_FALSE(cache.contains(128));
}

TEST(Cache, CapacityWorkingSetFitsExactly)
{
    StatRegistry stats;
    CacheParams p = smallParams();
    Cache cache("c", p, &stats);
    const Addr lines = p.capacityBytes / p.lineBytes;
    for (Addr i = 0; i < lines; ++i)
        cache.fill(i * 128, i);
    // The whole working set must still be resident.
    for (Addr i = 0; i < lines; ++i)
        EXPECT_TRUE(cache.contains(i * 128)) << "line " << i;
}

/**
 * Property: against a reference model (map of sets to LRU lists),
 * the cache gives identical hit/miss answers on random traffic.
 */
TEST(CacheProperty, MatchesReferenceLruModel)
{
    StatRegistry stats;
    CacheParams p = smallParams();
    Cache cache("c", p, &stats);

    const std::size_t sets = p.sets();
    std::map<std::size_t, std::vector<Addr>> ref; // MRU front

    Rng rng(99);
    for (int step = 0; step < 20000; ++step) {
        const Addr line = rng.below(256) * 128;
        const std::size_t set = (line / 128) % sets;
        auto &lru = ref[set];
        const auto it = std::find(lru.begin(), lru.end(), line);
        const bool ref_hit = it != lru.end();

        const auto outcome = cache.access(
            line, false, static_cast<Cycle>(step));
        EXPECT_EQ(outcome == CacheOutcome::Hit, ref_hit)
            << "step " << step;

        if (ref_hit) {
            lru.erase(it);
            lru.insert(lru.begin(), line);
        } else {
            cache.fill(line, static_cast<Cycle>(step));
            lru.insert(lru.begin(), line);
            if (lru.size() > p.ways)
                lru.pop_back();
        }
    }
}

/** Geometry sweep: the reference-model equivalence must hold for
 *  every (capacity, ways) shape, including direct-mapped and
 *  fully-associative corners. */
class CacheGeometries
    : public ::testing::TestWithParam<std::pair<std::uint64_t,
                                                std::uint32_t>>
{
};

TEST_P(CacheGeometries, MatchesReferenceLruModel)
{
    StatRegistry stats;
    CacheParams p;
    p.capacityBytes = GetParam().first;
    p.lineBytes = 128;
    p.ways = GetParam().second;
    Cache cache("c", p, &stats);

    const std::size_t sets = p.sets();
    std::map<std::size_t, std::vector<Addr>> ref;

    Rng rng(GetParam().first + GetParam().second);
    for (int step = 0; step < 5000; ++step) {
        const Addr line = rng.below(512) * 128;
        const std::size_t set = (line / 128) % sets;
        auto &lru = ref[set];
        const auto it = std::find(lru.begin(), lru.end(), line);
        const bool ref_hit = it != lru.end();
        const auto outcome =
            cache.access(line, false, static_cast<Cycle>(step));
        ASSERT_EQ(outcome == CacheOutcome::Hit, ref_hit)
            << "step " << step;
        if (ref_hit) {
            lru.erase(it);
            lru.insert(lru.begin(), line);
        } else {
            cache.fill(line, static_cast<Cycle>(step));
            lru.insert(lru.begin(), line);
            if (lru.size() > p.ways)
                lru.pop_back();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CacheGeometries,
    ::testing::Values(
        std::pair<std::uint64_t, std::uint32_t>{2048, 1},
        std::pair<std::uint64_t, std::uint32_t>{4096, 2},
        std::pair<std::uint64_t, std::uint32_t>{4096, 32},
        std::pair<std::uint64_t, std::uint32_t>{16384, 4},
        std::pair<std::uint64_t, std::uint32_t>{16384, 8},
        std::pair<std::uint64_t, std::uint32_t>{65536, 16}));

TEST(Mshr, PrimaryThenMergesThenRelease)
{
    MshrTable<int> mshr(4, 4);
    EXPECT_EQ(mshr.allocate(128, 1), MshrOutcome::NewEntry);
    EXPECT_EQ(mshr.allocate(128, 2), MshrOutcome::Merged);
    EXPECT_EQ(mshr.allocate(128, 3), MshrOutcome::Merged);
    EXPECT_TRUE(mshr.pending(128));
    EXPECT_EQ(mshr.peekCount(128), 3u);
    const auto payloads = mshr.release(128);
    EXPECT_EQ(payloads, (std::vector<int>{1, 2, 3}));
    EXPECT_FALSE(mshr.pending(128));
}

TEST(Mshr, EntryCapacityStalls)
{
    MshrTable<int> mshr(2, 8);
    EXPECT_EQ(mshr.allocate(0, 1), MshrOutcome::NewEntry);
    EXPECT_EQ(mshr.allocate(128, 2), MshrOutcome::NewEntry);
    EXPECT_EQ(mshr.allocate(256, 3), MshrOutcome::FullEntries);
    mshr.release(0);
    EXPECT_EQ(mshr.allocate(256, 3), MshrOutcome::NewEntry);
}

TEST(Mshr, MergeCapacityStalls)
{
    MshrTable<int> mshr(4, 2);
    EXPECT_EQ(mshr.allocate(0, 1), MshrOutcome::NewEntry);
    EXPECT_EQ(mshr.allocate(0, 2), MshrOutcome::Merged);
    EXPECT_EQ(mshr.allocate(0, 3), MshrOutcome::FullMerges);
}

TEST(Mshr, ReleaseOfUntrackedLinePanics)
{
    MshrTable<int> mshr(2, 2);
    EXPECT_THROW(mshr.release(512), PanicError);
}

} // namespace
} // namespace gpulat
