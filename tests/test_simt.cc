/**
 * @file
 * Unit + property tests for the SIMT building blocks: warp stack,
 * coalescer, bank conflicts and warp schedulers.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "simt/coalescer.hh"
#include "simt/scheduler.hh"
#include "simt/warp.hh"

namespace gpulat {
namespace {

Warp
freshWarp(LaneMask live = kFullMask)
{
    Warp w;
    w.init(0, 0, 0, live, 16, 0);
    return w;
}

TEST(Warp, InitialStateIsFullStack)
{
    Warp w = freshWarp();
    EXPECT_EQ(w.pc(), 0u);
    EXPECT_EQ(w.activeMask(), kFullMask);
    EXPECT_EQ(w.stackDepth(), 1u);
    EXPECT_EQ(w.state(), WarpState::Ready);
}

TEST(Warp, DivergeExecutesTakenThenFallThenReconverges)
{
    Warp w = freshWarp();
    // branch at pc 0: taken lanes 0..15 -> pc 10, fall -> 1,
    // reconverge at 20.
    const LaneMask taken = 0x0000ffff;
    const LaneMask fall = 0xffff0000;
    w.diverge(10, 20, taken, fall);

    EXPECT_EQ(w.pc(), 10u);
    EXPECT_EQ(w.activeMask(), taken);
    // Taken path runs to the reconvergence point.
    w.jump(20);
    EXPECT_EQ(w.pc(), 1u);
    EXPECT_EQ(w.activeMask(), fall);
    w.jump(20);
    EXPECT_EQ(w.pc(), 20u);
    EXPECT_EQ(w.activeMask(), kFullMask);
    EXPECT_EQ(w.stackDepth(), 1u);
}

TEST(Warp, DivergeWhereTakenTargetIsReconv)
{
    // if-then with no else: taken lanes jump straight to the join.
    Warp w = freshWarp();
    w.diverge(5, 5, 0x0000ffff, 0xffff0000);
    // Only the fall-through entry is pushed.
    EXPECT_EQ(w.pc(), 1u);
    EXPECT_EQ(w.activeMask(), 0xffff0000u);
    w.jump(5);
    EXPECT_EQ(w.pc(), 5u);
    EXPECT_EQ(w.activeMask(), kFullMask);
}

TEST(Warp, ExitLanesRemovesFromAllEntries)
{
    Warp w = freshWarp();
    w.diverge(10, 20, 0x0000ffff, 0xffff0000);
    EXPECT_FALSE(w.exitLanes(0x000000ff)); // part of taken path
    EXPECT_EQ(w.activeMask(), 0x0000ff00u);
    w.jump(20); // taken path done
    w.jump(20); // fall path done
    EXPECT_EQ(w.activeMask(), 0xffffff00u);
}

TEST(Warp, FullExitFinishesWarp)
{
    Warp w = freshWarp();
    EXPECT_TRUE(w.exitLanes(kFullMask));
    EXPECT_EQ(w.state(), WarpState::Done);
}

TEST(Warp, PartialLastWarpMask)
{
    Warp w = freshWarp(0x7); // 3 threads
    EXPECT_EQ(w.activeMask(), 0x7u);
    EXPECT_FALSE(w.exitLanes(0x3));
    EXPECT_TRUE(w.exitLanes(0x4));
}

TEST(Warp, GuardMaskHonorsPredicateAndNegation)
{
    Warp w = freshWarp();
    w.setPredBit(0, 2, true);
    w.setPredBit(5, 2, true);
    EXPECT_EQ(w.guardMask(kFullMask, 2, false), (1u << 0) | (1u << 5));
    EXPECT_EQ(w.guardMask(kFullMask, 2, true),
              ~((1u << 0) | (1u << 5)));
    EXPECT_EQ(w.guardMask(kFullMask, kNoReg, false), kFullMask);
}

TEST(Warp, ScoreboardTracksRegsAndPreds)
{
    Warp w = freshWarp();
    EXPECT_FALSE(w.anyPending());
    w.markRegPending(7);
    w.markPredPending(1);
    EXPECT_TRUE(w.regPending(7));
    EXPECT_TRUE(w.predPending(1));
    w.clearRegPending(7);
    w.clearPredPending(1);
    EXPECT_FALSE(w.anyPending());
}

TEST(Warp, RegisterFileIsPerLane)
{
    Warp w = freshWarp();
    w.setReg(3, 5, 42);
    w.setReg(4, 5, 43);
    EXPECT_EQ(w.reg(3, 5), 42u);
    EXPECT_EQ(w.reg(4, 5), 43u);
}

/** Property: nested random divergence always reconverges. */
TEST(WarpProperty, RandomNestedDivergenceReconverges)
{
    Rng rng(11);
    for (int trial = 0; trial < 200; ++trial) {
        Warp w = freshWarp();
        // Random if-then-else at three nesting levels.
        const LaneMask m1 =
            static_cast<LaneMask>(rng.next()) | 1; // nonempty
        if (m1 != kFullMask) {
            w.diverge(10, 30, m1, ~m1);
            const LaneMask active = w.activeMask();
            const LaneMask m2 =
                active & static_cast<LaneMask>(rng.next());
            if (m2 != 0 && m2 != active)
                w.diverge(15, 25, m2, active & ~m2);
            // Drive every path to its reconvergence point.
            int guard = 0;
            while (w.stackDepth() > 1 && ++guard < 100) {
                const std::uint32_t pc = w.pc();
                w.jump(pc == 15 || pc == 11 ? 25
                       : pc == 25           ? 30
                                            : 30);
            }
            EXPECT_EQ(w.activeMask(), kFullMask) << "trial " << trial;
        }
    }
}

TEST(Coalescer, FullyCoalescedWarpIsOneTransaction)
{
    std::array<Addr, kWarpSize> addrs{};
    for (unsigned lane = 0; lane < kWarpSize; ++lane)
        addrs[lane] = 0x1000 + lane * 4;
    const auto txns = coalesce(addrs, kFullMask, 128);
    ASSERT_EQ(txns.size(), 1u);
    EXPECT_EQ(txns[0].lineAddr, 0x1000u);
    EXPECT_EQ(txns[0].lanes, kFullMask);
}

TEST(Coalescer, EightByteAccessesSpanTwoLines)
{
    std::array<Addr, kWarpSize> addrs{};
    for (unsigned lane = 0; lane < kWarpSize; ++lane)
        addrs[lane] = lane * 8;
    const auto txns = coalesce(addrs, kFullMask, 128);
    ASSERT_EQ(txns.size(), 2u);
    EXPECT_EQ(txns[0].lineAddr, 0u);
    EXPECT_EQ(txns[1].lineAddr, 128u);
}

TEST(Coalescer, FullyScatteredWarpIs32Transactions)
{
    std::array<Addr, kWarpSize> addrs{};
    for (unsigned lane = 0; lane < kWarpSize; ++lane)
        addrs[lane] = lane * 4096;
    EXPECT_EQ(coalesce(addrs, kFullMask, 128).size(), kWarpSize);
}

TEST(Coalescer, InactiveLanesAreIgnored)
{
    std::array<Addr, kWarpSize> addrs{};
    addrs[0] = 0;
    addrs[7] = 4096;
    const auto txns = coalesce(addrs, (1u << 0) | (1u << 7), 128);
    ASSERT_EQ(txns.size(), 2u);
    EXPECT_EQ(txns[0].lanes, 1u);
    EXPECT_EQ(txns[1].lanes, 1u << 7);
}

TEST(Coalescer, BroadcastIsOneTransaction)
{
    std::array<Addr, kWarpSize> addrs{};
    addrs.fill(0x2000);
    EXPECT_EQ(coalesce(addrs, kFullMask, 128).size(), 1u);
}

/** Property: transactions partition the active lanes exactly. */
TEST(CoalescerProperty, TransactionsPartitionActiveLanes)
{
    Rng rng(13);
    for (int trial = 0; trial < 500; ++trial) {
        std::array<Addr, kWarpSize> addrs{};
        for (auto &a : addrs)
            a = rng.below(1 << 16) * 8;
        const auto active = static_cast<LaneMask>(rng.next());
        const auto txns = coalesce(addrs, active, 128);
        LaneMask seen = 0;
        for (const auto &t : txns) {
            EXPECT_EQ(seen & t.lanes, 0u); // disjoint
            seen |= t.lanes;
            for (unsigned lane = 0; lane < kWarpSize; ++lane) {
                if (t.lanes >> lane & 1) {
                    EXPECT_EQ(addrs[lane] & ~Addr{127}, t.lineAddr);
                }
            }
        }
        EXPECT_EQ(seen, active);
        EXPECT_LE(txns.size(), kWarpSize);
    }
}

TEST(BankConflicts, ConflictFreeUnitStride)
{
    std::array<Addr, kWarpSize> addrs{};
    for (unsigned lane = 0; lane < kWarpSize; ++lane)
        addrs[lane] = lane * 8;
    EXPECT_EQ(bankConflictDegree(addrs, kFullMask, 32), 1u);
}

TEST(BankConflicts, BroadcastDoesNotConflict)
{
    std::array<Addr, kWarpSize> addrs{};
    addrs.fill(64);
    EXPECT_EQ(bankConflictDegree(addrs, kFullMask, 32), 1u);
}

TEST(BankConflicts, StrideOfBanksIsWorstCase)
{
    std::array<Addr, kWarpSize> addrs{};
    for (unsigned lane = 0; lane < kWarpSize; ++lane)
        addrs[lane] = lane * 32 * 8; // all map to bank 0
    EXPECT_EQ(bankConflictDegree(addrs, kFullMask, 32), kWarpSize);
}

TEST(BankConflicts, PaddedTransposeColumnIsConflictFree)
{
    // The tiled-transpose read pattern: word index lane*33 + i.
    std::array<Addr, kWarpSize> addrs{};
    for (unsigned lane = 0; lane < kWarpSize; ++lane)
        addrs[lane] = (lane * 33 + 5) * 8;
    EXPECT_EQ(bankConflictDegree(addrs, kFullMask, 32), 1u);
}

TEST(Scheduler, LrrRotatesThroughReadyWarps)
{
    WarpScheduler sched(SchedPolicy::LRR, {0, 1, 2, 3});
    auto always = [](unsigned) { return true; };
    auto age = [](unsigned s) { return std::uint64_t{s}; };
    EXPECT_EQ(sched.pick(always, age), 0);
    EXPECT_EQ(sched.pick(always, age), 1);
    EXPECT_EQ(sched.pick(always, age), 2);
    EXPECT_EQ(sched.pick(always, age), 3);
    EXPECT_EQ(sched.pick(always, age), 0);
}

TEST(Scheduler, LrrSkipsStalledWarps)
{
    WarpScheduler sched(SchedPolicy::LRR, {0, 1, 2});
    auto only2 = [](unsigned s) { return s == 2; };
    auto age = [](unsigned s) { return std::uint64_t{s}; };
    EXPECT_EQ(sched.pick(only2, age), 2);
    EXPECT_EQ(sched.pick(only2, age), 2);
}

TEST(Scheduler, NoneReadyReturnsMinusOne)
{
    WarpScheduler sched(SchedPolicy::GTO, {0, 1});
    auto never = [](unsigned) { return false; };
    auto age = [](unsigned s) { return std::uint64_t{s}; };
    EXPECT_EQ(sched.pick(never, age), -1);
}

TEST(Scheduler, GtoSticksWithGreedyWarp)
{
    WarpScheduler sched(SchedPolicy::GTO, {0, 1, 2});
    auto always = [](unsigned) { return true; };
    auto age = [](unsigned s) { return std::uint64_t{10 - s}; };
    // Oldest = largest slot here (age 10-s): slot 2 first...
    const int first = sched.pick(always, age);
    EXPECT_EQ(first, 2);
    // ...and greedy keeps it while it stays ready.
    EXPECT_EQ(sched.pick(always, age), 2);
    EXPECT_EQ(sched.pick(always, age), 2);
}

TEST(Scheduler, GtoFallsBackToOldestOnStall)
{
    WarpScheduler sched(SchedPolicy::GTO, {0, 1, 2});
    auto age = [](unsigned s) { return std::uint64_t{s}; };
    auto always = [](unsigned) { return true; };
    EXPECT_EQ(sched.pick(always, age), 0);
    auto not0 = [](unsigned s) { return s != 0; };
    EXPECT_EQ(sched.pick(not0, age), 1); // oldest ready
    EXPECT_EQ(sched.pick(not0, age), 1); // new greedy warp
}

} // namespace
} // namespace gpulat
