/**
 * @file
 * Direct unit tests for the MSHR table: outcome paths, release
 * ordering, and the banked front-end.
 */

#include <gtest/gtest.h>

#include "cache/mshr.hh"

namespace gpulat {
namespace {

TEST(Mshr, PrimaryThenMergesThenFullMerges)
{
    MshrTable<int> mshr(4, 3);
    EXPECT_EQ(mshr.allocate(0x100, 1), MshrOutcome::NewEntry);
    EXPECT_EQ(mshr.allocate(0x100, 2), MshrOutcome::Merged);
    EXPECT_EQ(mshr.allocate(0x100, 3), MshrOutcome::Merged);
    // Merge cap counts the primary: the fourth payload bounces.
    EXPECT_EQ(mshr.allocate(0x100, 4), MshrOutcome::FullMerges);
    EXPECT_EQ(mshr.inFlight(), 1u);
    EXPECT_EQ(mshr.peekCount(0x100), 3u);
}

TEST(Mshr, FullEntriesWhenTableExhausted)
{
    MshrTable<int> mshr(2, 4);
    EXPECT_EQ(mshr.allocate(0x000, 0), MshrOutcome::NewEntry);
    EXPECT_EQ(mshr.allocate(0x100, 1), MshrOutcome::NewEntry);
    EXPECT_FALSE(mshr.canAllocate(0x200));
    EXPECT_EQ(mshr.allocate(0x200, 2), MshrOutcome::FullEntries);
    // A full table still merges onto tracked lines.
    EXPECT_EQ(mshr.allocate(0x100, 3), MshrOutcome::Merged);
}

TEST(Mshr, ReleaseReturnsPayloadsPrimaryFirst)
{
    MshrTable<int> mshr(4, 8);
    mshr.allocate(0x100, 10);
    mshr.allocate(0x100, 20);
    mshr.allocate(0x100, 30);
    const std::vector<int> payloads = mshr.release(0x100);
    ASSERT_EQ(payloads.size(), 3u);
    EXPECT_EQ(payloads[0], 10);
    EXPECT_EQ(payloads[1], 20);
    EXPECT_EQ(payloads[2], 30);
    EXPECT_TRUE(mshr.empty());
    EXPECT_FALSE(mshr.pending(0x100));
}

TEST(Mshr, PendingAndPeekCountEdgeCases)
{
    MshrTable<int> mshr(4, 2);
    EXPECT_FALSE(mshr.pending(0x100));
    EXPECT_EQ(mshr.peekCount(0x100), 0u);
    mshr.allocate(0x100, 1);
    EXPECT_TRUE(mshr.pending(0x100));
    EXPECT_EQ(mshr.peekCount(0x100), 1u);
    // A bounced merge leaves the count untouched.
    mshr.allocate(0x100, 2);
    EXPECT_EQ(mshr.allocate(0x100, 3), MshrOutcome::FullMerges);
    EXPECT_EQ(mshr.peekCount(0x100), 2u);
    // Freed entry is reusable.
    mshr.release(0x100);
    EXPECT_EQ(mshr.allocate(0x100, 4), MshrOutcome::NewEntry);
}

TEST(Mshr, ReleaseOfUntrackedLinePanics)
{
    MshrTable<int> mshr(4, 2);
    EXPECT_THROW(mshr.release(0x100), PanicError);
}

// ---------------------------------------------------------------
// Banked front-end.

TEST(MshrBanked, LineHashSplitsBanks)
{
    // 8 entries over 4 banks, 128-byte lines: line -> bank cycles
    // with the line number.
    MshrTable<int> mshr(8, 4, 4, 0, 0, 128);
    EXPECT_EQ(mshr.banks(), 4u);
    EXPECT_EQ(mshr.bankCapacity(), 2u);
    EXPECT_EQ(mshr.bankOf(0), 0u);
    EXPECT_EQ(mshr.bankOf(128), 1u);
    EXPECT_EQ(mshr.bankOf(4 * 128), 0u);
}

TEST(MshrBanked, BankFullWhileTableHasRoom)
{
    MshrTable<int> mshr(8, 4, 4, 0, 0, 128);
    // Fill bank 0's two entries (lines 0 and 4).
    EXPECT_EQ(mshr.allocate(0, 1), MshrOutcome::NewEntry);
    EXPECT_EQ(mshr.allocate(4 * 128, 2), MshrOutcome::NewEntry);
    EXPECT_EQ(mshr.bankInFlight(0), 2u);
    // Bank 0 is the conflict: table-wide there are 6 free entries.
    EXPECT_FALSE(mshr.canAllocate(8 * 128));
    EXPECT_LT(mshr.inFlight(), mshr.capacity());
    EXPECT_EQ(mshr.allocate(8 * 128, 3), MshrOutcome::FullEntries);
    // Other banks are unaffected...
    EXPECT_TRUE(mshr.canAllocate(128));
    EXPECT_EQ(mshr.allocate(128, 4), MshrOutcome::NewEntry);
    // ...and merges on bank 0 lines still work.
    EXPECT_EQ(mshr.allocate(0, 5), MshrOutcome::Merged);
    // Releasing frees the bank slot.
    mshr.release(0);
    EXPECT_TRUE(mshr.canAllocate(8 * 128));
}

TEST(MshrBanked, ExplicitBankBudgetsOverrideDefaults)
{
    // Per-bank budget above entries/banks: bank skew is allowed
    // until the whole table fills.
    MshrTable<int> mshr(4, 8, 2, 3, 2, 128);
    EXPECT_EQ(mshr.bankCapacity(), 3u);
    EXPECT_EQ(mshr.allocate(0, 1), MshrOutcome::NewEntry);
    EXPECT_EQ(mshr.allocate(2 * 128, 2), MshrOutcome::NewEntry);
    EXPECT_EQ(mshr.allocate(4 * 128, 3), MshrOutcome::NewEntry);
    EXPECT_FALSE(mshr.canAllocate(6 * 128)); // bank 0 budget
    // bankMerges=2 overrides the per-line merge cap.
    EXPECT_EQ(mshr.allocate(0, 4), MshrOutcome::Merged);
    EXPECT_EQ(mshr.allocate(0, 5), MshrOutcome::FullMerges);
}

TEST(MshrBanked, SingleBankMatchesFlatTable)
{
    MshrTable<int> banked(4, 2, 1, 0, 0, 128);
    MshrTable<int> flat(4, 2);
    for (Addr line : {Addr{0}, Addr{128}, Addr{256}, Addr{384}}) {
        EXPECT_EQ(banked.canAllocate(line), flat.canAllocate(line));
        EXPECT_EQ(banked.allocate(line, 0), flat.allocate(line, 0));
    }
    // Both are now structurally full in the same way.
    EXPECT_EQ(banked.allocate(512, 0), MshrOutcome::FullEntries);
    EXPECT_EQ(flat.allocate(512, 0), MshrOutcome::FullEntries);
    EXPECT_EQ(banked.allocate(0, 0), MshrOutcome::Merged);
    EXPECT_EQ(flat.allocate(0, 0), MshrOutcome::Merged);
    EXPECT_EQ(banked.allocate(0, 0), MshrOutcome::FullMerges);
    EXPECT_EQ(flat.allocate(0, 0), MshrOutcome::FullMerges);
}

} // namespace
} // namespace gpulat
