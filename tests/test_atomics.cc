/**
 * @file
 * Tests for global atomics: correctness under full contention,
 * per-op semantics, return values, and their L2 path behaviour.
 */

#include <gtest/gtest.h>

#include "gpu/gpu.hh"
#include "isa/assembler.hh"
#include "workloads/histogram.hh"

namespace gpulat {
namespace {

GpuConfig
testConfig()
{
    GpuConfig cfg = makeGF100Sim();
    cfg.numSms = 4;
    cfg.numPartitions = 2;
    cfg.deviceMemBytes = 32 * 1024 * 1024;
    return cfg;
}

TEST(Atomics, ContendedAddCountsEveryThread)
{
    Gpu gpu(testConfig());
    const Kernel k = assemble(R"(
        mov r1, param0
        mov r2, 1
        atom.add r3, [r1], r2
        exit
    )");
    const Addr counter = gpu.alloc(8);
    const std::uint64_t zero = 0;
    gpu.copyToDevice(counter, &zero, 8);
    gpu.launch(k, 16, 128, {counter});
    std::uint64_t v = 0;
    gpu.copyFromDevice(&v, counter, 8);
    EXPECT_EQ(v, 16u * 128u);
}

TEST(Atomics, AddReturnsUniqueOldValues)
{
    Gpu gpu(testConfig());
    // Every thread grabs a unique slot via atom.add and writes its
    // gid there: afterwards slots must be a permutation of gids.
    const Kernel k = assemble(R"(
        s2r r0, tid
        s2r r1, ctaid
        s2r r2, ntid
        imad r0, r1, r2, r0
        mov r3, param0           ; counter
        mov r4, 1
        atom.add r5, [r3], r4    ; my slot
        shl r6, r5, 3
        mov r7, param1
        iadd r7, r7, r6
        st.global [r7], r0
        exit
    )");
    const unsigned total = 8 * 64;
    const Addr counter = gpu.alloc(8);
    const Addr slots = gpu.alloc(total * 8);
    const std::uint64_t zero = 0;
    gpu.copyToDevice(counter, &zero, 8);
    gpu.launch(k, 8, 64, {counter, slots});

    std::vector<std::uint64_t> values(total);
    gpu.copyFromDevice(values.data(), slots, total * 8);
    std::sort(values.begin(), values.end());
    for (std::uint64_t i = 0; i < total; ++i)
        EXPECT_EQ(values[i], i);
}

TEST(Atomics, MaxKeepsLargest)
{
    Gpu gpu(testConfig());
    const Kernel k = assemble(R"(
        s2r r0, tid
        s2r r1, ctaid
        s2r r2, ntid
        imad r0, r1, r2, r0
        mov r1, param0
        atom.max r3, [r1], r0
        exit
    )");
    const Addr cell = gpu.alloc(8);
    const std::uint64_t zero = 0;
    gpu.copyToDevice(cell, &zero, 8);
    gpu.launch(k, 4, 96, {cell});
    std::uint64_t v = 0;
    gpu.copyFromDevice(&v, cell, 8);
    EXPECT_EQ(v, 4u * 96u - 1);
}

TEST(Atomics, ExchStoresSomeThreadsValue)
{
    Gpu gpu(testConfig());
    const Kernel k = assemble(R"(
        s2r r0, tid
        iadd r0, r0, 100
        mov r1, param0
        atom.exch r3, [r1], r0
        exit
    )");
    const Addr cell = gpu.alloc(8);
    const std::uint64_t zero = 0;
    gpu.copyToDevice(cell, &zero, 8);
    gpu.launch(k, 1, 32, {cell});
    std::uint64_t v = 0;
    gpu.copyFromDevice(&v, cell, 8);
    EXPECT_GE(v, 100u);
    EXPECT_LT(v, 132u);
}

TEST(Atomics, AtomicsBypassTheL1)
{
    Gpu gpu(testConfig());
    const Kernel k = assemble(R"(
        mov r1, param0
        mov r2, 1
        atom.add r3, [r1], r2
        exit
    )");
    const Addr counter = gpu.alloc(8);
    const std::uint64_t zero = 0;
    gpu.copyToDevice(counter, &zero, 8);
    gpu.launch(k, 1, 32, {counter});
    // Fermi L1 caches global loads, but atomics must not hit in it.
    EXPECT_EQ(gpu.sm(0).l1()->hits(), 0u);
}

TEST(Atomics, SerializedOldValuesAreMonotoneInLaneOrder)
{
    Gpu gpu(testConfig());
    // Within one warp, lanes RMW the same address in lane order.
    const Kernel k = assemble(R"(
        s2r r0, laneid
        mov r1, param0
        mov r2, 1
        atom.add r3, [r1], r2
        shl r4, r0, 3
        mov r5, param1
        iadd r5, r5, r4
        st.global [r5], r3
        exit
    )");
    const Addr counter = gpu.alloc(8);
    const Addr out = gpu.alloc(32 * 8);
    const std::uint64_t zero = 0;
    gpu.copyToDevice(counter, &zero, 8);
    gpu.launch(k, 1, 32, {counter, out});
    std::vector<std::uint64_t> olds(32);
    gpu.copyFromDevice(olds.data(), out, 32 * 8);
    for (unsigned lane = 0; lane < 32; ++lane)
        EXPECT_EQ(olds[lane], lane);
}

TEST(AtomicHistogramWorkload, MatchesReference)
{
    Gpu gpu(testConfig());
    AtomicHistogram::Options opts;
    opts.n = 4096;
    opts.bins = 64;
    AtomicHistogram workload(opts);
    EXPECT_TRUE(workload.run(gpu).correct);
}

TEST(AtomicHistogramWorkload, HotBinContentionStillCorrect)
{
    Gpu gpu(testConfig());
    AtomicHistogram::Options opts;
    opts.n = 4096;
    opts.bins = 2; // two hot lines, maximal serialization
    AtomicHistogram workload(opts);
    EXPECT_TRUE(workload.run(gpu).correct);
}

TEST(AtomicHistogramWorkload, FewerBinsIsSlower)
{
    AtomicHistogram::Options hot;
    hot.n = 4096;
    hot.bins = 2;
    AtomicHistogram hot_wl(hot);

    AtomicHistogram::Options spread = hot;
    spread.bins = 1024;
    AtomicHistogram spread_wl(spread);

    Gpu gpu_hot(testConfig());
    Gpu gpu_spread(testConfig());
    const auto r_hot = hot_wl.run(gpu_hot);
    const auto r_spread = spread_wl.run(gpu_spread);
    ASSERT_TRUE(r_hot.correct);
    ASSERT_TRUE(r_spread.correct);
    // Hot bins serialize at the L2 banks: more cycles.
    EXPECT_GT(r_hot.cycles, r_spread.cycles);
}

TEST(Atomics, AssemblerRejectsBadAtomSuffix)
{
    EXPECT_THROW(assemble("atom.sub r1, [r2], r3\nexit\n"),
                 FatalError);
}

TEST(Atomics, DisassemblesWithSuffix)
{
    const Kernel k = assemble("atom.add r1, [r2+8], r3\nexit\n");
    EXPECT_EQ(disassemble(k.code[0]), "atom.add r1, [r2+8], r3");
}

} // namespace
} // namespace gpulat
