/**
 * @file
 * Unit tests for the crossbar interconnect: latency, backpressure,
 * round-robin arbitration fairness and drain behaviour.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "icnt/crossbar.hh"

namespace gpulat {
namespace {

struct Pkt
{
    int id;
};

TEST(Crossbar, DeliversAfterFixedLatency)
{
    StatRegistry stats;
    Crossbar<Pkt> xbar("x", 2, 2, 10, 4, 4, &stats);
    ASSERT_TRUE(xbar.inject(0, 0, 1, Pkt{7}));
    for (Cycle c = 0; c < 10; ++c) {
        xbar.tick(c);
        EXPECT_FALSE(xbar.deliverable(1, c)) << "cycle " << c;
    }
    xbar.tick(10);
    ASSERT_TRUE(xbar.deliverable(1, 10));
    EXPECT_EQ(xbar.eject(1).id, 7);
    EXPECT_TRUE(xbar.empty());
}

TEST(Crossbar, InputQueueBackpressure)
{
    StatRegistry stats;
    Crossbar<Pkt> xbar("x", 1, 1, 1, 2, 2, &stats);
    EXPECT_TRUE(xbar.canInject(0));
    EXPECT_TRUE(xbar.inject(0, 0, 0, Pkt{1}));
    EXPECT_TRUE(xbar.inject(0, 0, 0, Pkt{2}));
    EXPECT_FALSE(xbar.canInject(0));
    EXPECT_FALSE(xbar.inject(0, 0, 0, Pkt{3}));
}

TEST(Crossbar, OnePacketPerDestinationPerCycle)
{
    StatRegistry stats;
    Crossbar<Pkt> xbar("x", 2, 1, 0, 4, 4, &stats);
    ASSERT_TRUE(xbar.inject(0, 0, 0, Pkt{1}));
    ASSERT_TRUE(xbar.inject(0, 1, 0, Pkt{2}));
    xbar.tick(0);
    ASSERT_TRUE(xbar.deliverable(0, 0));
    xbar.eject(0);
    // Second packet needs a second cycle.
    EXPECT_FALSE(xbar.deliverable(0, 0));
    xbar.tick(1);
    EXPECT_TRUE(xbar.deliverable(0, 1));
}

TEST(Crossbar, RoundRobinAlternatesContendingSources)
{
    StatRegistry stats;
    Crossbar<Pkt> xbar("x", 2, 1, 0, 8, 8, &stats);
    // Both sources keep 2 packets queued for dst 0.
    ASSERT_TRUE(xbar.inject(0, 0, 0, Pkt{10}));
    ASSERT_TRUE(xbar.inject(0, 0, 0, Pkt{11}));
    ASSERT_TRUE(xbar.inject(0, 1, 0, Pkt{20}));
    ASSERT_TRUE(xbar.inject(0, 1, 0, Pkt{21}));

    std::vector<int> order;
    for (Cycle c = 0; c < 4; ++c) {
        xbar.tick(c);
        ASSERT_TRUE(xbar.deliverable(0, c));
        order.push_back(xbar.eject(0).id);
    }
    // RR: src0, src1, src0, src1 (starting pointer at 0).
    EXPECT_EQ(order, (std::vector<int>{10, 20, 11, 21}));
}

TEST(Crossbar, ArbitrationLossesAreCounted)
{
    StatRegistry stats;
    Crossbar<Pkt> xbar("x", 2, 1, 0, 4, 4, &stats);
    xbar.inject(0, 0, 0, Pkt{1});
    xbar.inject(0, 1, 0, Pkt{2});
    xbar.tick(0);
    EXPECT_EQ(stats.counterValue("x.arb_stalls"), 1u);
}

TEST(Crossbar, OutputBackpressureStallsTransfer)
{
    StatRegistry stats;
    Crossbar<Pkt> xbar("x", 1, 1, 0, 4, 1, &stats);
    xbar.inject(0, 0, 0, Pkt{1});
    xbar.inject(0, 0, 0, Pkt{2});
    xbar.tick(0); // moves pkt 1 into the single-entry output
    xbar.tick(1); // output full: pkt 2 must wait
    ASSERT_TRUE(xbar.deliverable(0, 1));
    EXPECT_EQ(xbar.eject(0).id, 1);
    xbar.tick(2);
    ASSERT_TRUE(xbar.deliverable(0, 2));
    EXPECT_EQ(xbar.eject(0).id, 2);
}

TEST(Crossbar, IndependentDestinationsTransferInParallel)
{
    StatRegistry stats;
    Crossbar<Pkt> xbar("x", 2, 2, 0, 4, 4, &stats);
    xbar.inject(0, 0, 0, Pkt{1});
    xbar.inject(0, 1, 1, Pkt{2});
    xbar.tick(0);
    EXPECT_TRUE(xbar.deliverable(0, 0));
    EXPECT_TRUE(xbar.deliverable(1, 0));
}

TEST(Crossbar, SourcePopsAtMostOncePerCycle)
{
    StatRegistry stats;
    // One source with packets for two different destinations: only
    // the head may move in a given cycle.
    Crossbar<Pkt> xbar("x", 1, 2, 0, 4, 4, &stats);
    xbar.inject(0, 0, 0, Pkt{1});
    xbar.inject(0, 0, 1, Pkt{2});
    xbar.tick(0);
    EXPECT_TRUE(xbar.deliverable(0, 0));
    EXPECT_FALSE(xbar.deliverable(1, 0));
    xbar.tick(1);
    EXPECT_TRUE(xbar.deliverable(1, 1));
}

/** Property: random traffic is conserved and per-source order to
 *  each destination is preserved, across crossbar shapes. */
class CrossbarShapes
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>>
{
};

TEST_P(CrossbarShapes, ConservesAndOrdersRandomTraffic)
{
    const unsigned nsrc = GetParam().first;
    const unsigned ndst = GetParam().second;
    StatRegistry stats;
    Crossbar<Pkt> xbar("x", nsrc, ndst, 3, 4, 4, &stats);

    Rng rng(nsrc * 100 + ndst);
    // id encodes (src, dst, seq) so order can be checked on eject.
    std::vector<unsigned> sent_per_pair(nsrc * ndst, 0);
    std::vector<unsigned> seen_per_pair(nsrc * ndst, 0);
    int sent = 0;
    int received = 0;
    const int target = 300;

    for (Cycle now = 0; now < 20000 && received < target; ++now) {
        if (sent < target) {
            const auto src = static_cast<unsigned>(rng.below(nsrc));
            const auto dst = static_cast<unsigned>(rng.below(ndst));
            if (xbar.canInject(src)) {
                const unsigned pair = src * ndst + dst;
                const int id = static_cast<int>(
                    pair * 100000 + sent_per_pair[pair]);
                ASSERT_TRUE(xbar.inject(now, src, dst, Pkt{id}));
                ++sent_per_pair[pair];
                ++sent;
            }
        }
        xbar.tick(now);
        for (unsigned d = 0; d < ndst; ++d) {
            if (!xbar.deliverable(d, now))
                continue;
            const Pkt pkt = xbar.eject(d);
            const unsigned pair =
                static_cast<unsigned>(pkt.id) / 100000;
            const unsigned seq =
                static_cast<unsigned>(pkt.id) % 100000;
            // Packets from one src to one dst arrive in order.
            ASSERT_EQ(seq, seen_per_pair[pair]);
            ++seen_per_pair[pair];
            ASSERT_EQ(pair % ndst, d) << "misrouted packet";
            ++received;
        }
    }
    EXPECT_EQ(received, sent);
    EXPECT_TRUE(xbar.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CrossbarShapes,
    ::testing::Values(std::pair<unsigned, unsigned>{1, 1},
                      std::pair<unsigned, unsigned>{2, 6},
                      std::pair<unsigned, unsigned>{6, 2},
                      std::pair<unsigned, unsigned>{15, 6},
                      std::pair<unsigned, unsigned>{6, 15}));

TEST(Crossbar, ClearDrainsEverything)
{
    StatRegistry stats;
    Crossbar<Pkt> xbar("x", 1, 1, 5, 4, 4, &stats);
    xbar.inject(0, 0, 0, Pkt{1});
    EXPECT_FALSE(xbar.empty());
    xbar.clear();
    EXPECT_TRUE(xbar.empty());
}

} // namespace
} // namespace gpulat
