/**
 * @file
 * Tests for the parallel experiment runner: the serial == parallel
 * golden (byte-identical records for a 2x2 sweep), deterministic
 * spec-order commits from the caller's thread, exception isolation
 * between jobs, and `--jobs` parsing edge cases.
 */

#include <cctype>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/cli.hh"
#include "api/parallel_runner.hh"
#include "common/log.hh"

namespace gpulat {
namespace {

/** The canonical 2x2 sweep used by the goldens. */
std::vector<ExperimentSpec>
sweep2x2()
{
    ExperimentSpec spec;
    spec.gpu = "gf106";
    spec.workload = "vecadd";
    spec.params = {"n=1024,2048"};
    spec.overrides = {"sm.warpSlots=8,16"};
    return expandSweep(spec);
}

/** Render records through the JSON sink: covers every field, so
 *  equality here is the bit-identical guarantee. */
std::string
renderJson(const std::vector<JobOutcome> &outcomes)
{
    std::ostringstream os;
    JsonSink sink(os);
    for (const JobOutcome &outcome : outcomes) {
        EXPECT_FALSE(outcome.failed) << outcome.error;
        sink.write(outcome.record);
    }
    sink.finish();
    return os.str();
}

TEST(ParallelRunner, SerialEqualsParallelGolden)
{
    const auto specs = sweep2x2();
    ASSERT_EQ(specs.size(), 4u);
    const auto serial = ParallelRunner(1).run(specs);
    const auto parallel = ParallelRunner(4).run(specs);
    EXPECT_EQ(renderJson(serial), renderJson(parallel));
}

TEST(ParallelRunner, CommitsInSpecOrderOnCallerThread)
{
    const auto specs = sweep2x2();
    const auto caller = std::this_thread::get_id();
    std::vector<std::size_t> order;
    ParallelRunner(4).run(
        specs, {},
        [&](std::size_t index, const JobOutcome &outcome) {
            EXPECT_EQ(std::this_thread::get_id(), caller);
            EXPECT_FALSE(outcome.failed);
            order.push_back(index);
        });
    ASSERT_EQ(order.size(), specs.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ParallelRunner, InspectSeesLiveGpuPerIndex)
{
    const auto specs = sweep2x2();
    std::vector<Cycle> inspected(specs.size(), 0);
    const auto outcomes = ParallelRunner(2).run(
        specs,
        [&](std::size_t index, Gpu &gpu,
            const ExperimentRecord &rec) {
            // Index-private slot; the live Gpu agrees with the
            // record it just produced.
            EXPECT_GE(gpu.now(), rec.cycles);
            inspected[index] = rec.cycles;
        });
    for (std::size_t i = 0; i < specs.size(); ++i)
        EXPECT_EQ(inspected[i], outcomes[i].record.cycles);
}

TEST(ParallelRunner, ExceptionInOneJobDoesNotPoisonSiblings)
{
    auto specs = sweep2x2();
    specs[1].overrides = {"sm.noSuchKnob=1"}; // fatal() in-job
    const auto outcomes = ParallelRunner(4).run(specs);
    ASSERT_EQ(outcomes.size(), 4u);
    EXPECT_TRUE(outcomes[1].failed);
    EXPECT_NE(outcomes[1].error.find("noSuchKnob"),
              std::string::npos);
    for (const std::size_t i : {std::size_t{0}, std::size_t{2},
                                std::size_t{3}}) {
        EXPECT_FALSE(outcomes[i].failed) << i;
        EXPECT_TRUE(outcomes[i].record.correct) << i;
        EXPECT_GT(outcomes[i].record.cycles, 0u) << i;
    }

    // Same isolation with one worker: --jobs 1 goes through the
    // identical per-cell capture, not a different code path.
    const auto serial = ParallelRunner(1).run(specs);
    EXPECT_TRUE(serial[1].failed);
    EXPECT_EQ(renderJson({serial[0], serial[2], serial[3]}),
              renderJson({outcomes[0], outcomes[2], outcomes[3]}));
}

TEST(ParallelRunner, JobsParsing)
{
    EXPECT_EQ(parseJobs("0"), 0u);
    EXPECT_EQ(parseJobs("1"), 1u);
    EXPECT_EQ(parseJobs("4"), 4u);
    // More jobs than cores (or cells) is allowed, not an error.
    EXPECT_EQ(parseJobs("999"), 999u);
    EXPECT_THROW(parseJobs(""), FatalError);
    EXPECT_THROW(parseJobs("abc"), FatalError);
    EXPECT_THROW(parseJobs("-1"), FatalError);
    EXPECT_THROW(parseJobs("+2"), FatalError);
    EXPECT_THROW(parseJobs("1.5"), FatalError);
    EXPECT_THROW(parseJobs("4x"), FatalError);

    EXPECT_GE(resolveJobs(0), 1u); // hardware concurrency, >= 1
    EXPECT_EQ(resolveJobs(1), 1u);
    EXPECT_EQ(resolveJobs(7), 7u);

    // hardware_concurrency() may return 0 ("unknown"): both the
    // runner and its constructor must clamp to one worker, never
    // zero (a zero-worker pool would run nothing forever).
    EXPECT_EQ(ParallelRunner(0).jobs(), 1u);
    EXPECT_EQ(ParallelRunner(resolveJobs(0)).jobs(), resolveJobs(0));
}

TEST(ParallelRunner, MoreWorkersThanSpecs)
{
    ExperimentSpec spec;
    spec.gpu = "gf106";
    spec.workload = "vecadd";
    spec.params = {"n=1024"};
    const auto outcomes = ParallelRunner(16).run({spec});
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_TRUE(outcomes[0].record.correct);
}

/** Drive the full in-process CLI with a given --jobs value. */
std::string
cliSweepJson(const char *jobs, int *rc = nullptr)
{
    const char *argv[] = {"gpulat",  "sweep",        "--gpu",
                          "gf106",   "--workload",   "vecadd",
                          "n=1024,2048",
                          "--set",   "sm.warpSlots=8,16",
                          "--jobs",  jobs,
                          "--json",  "-"};
    std::ostringstream out;
    std::ostringstream err;
    const int code = runCli(static_cast<int>(std::size(argv)), argv,
                            out, err);
    if (rc)
        *rc = code;
    EXPECT_EQ(code, 0) << err.str();
    return out.str();
}

TEST(Cli, ParallelSweepOutputIsByteIdentical)
{
    // The CLI-level determinism gate: stdout (JSON records) must be
    // byte-for-byte identical across --jobs values; wall-clock goes
    // to stderr only.
    const std::string serial = cliSweepJson("1");
    EXPECT_EQ(serial, cliSweepJson("4"));
    EXPECT_EQ(serial, cliSweepJson("0")); // hardware concurrency
}

/** The same sweep with an explicit fast-forward policy. */
std::string
cliSweepJsonWithMode(const char *jobs, const char *mode)
{
    const std::string set_ff =
        std::string("idleFastForward=") + mode;
    const char *argv[] = {"gpulat",  "sweep",      "--gpu",
                          "gf106",   "--workload", "vecadd",
                          "n=1024,2048",
                          "--set",   "sm.warpSlots=8,16",
                          "--set",   set_ff.c_str(),
                          "--jobs",  jobs,
                          "--json",  "-"};
    std::ostringstream out;
    std::ostringstream err;
    const int code = runCli(static_cast<int>(std::size(argv)), argv,
                            out, err);
    EXPECT_EQ(code, 0) << err.str();
    return out.str();
}

TEST(Cli, PerDomainSweepIsByteIdenticalAcrossJobs)
{
    // The event-scheduled stepper must stay deterministic under
    // parallel execution: --jobs 1 and --jobs 4 with
    // idleFastForward=perDomain produce byte-identical documents.
    const std::string serial = cliSweepJsonWithMode("1", "perDomain");
    EXPECT_EQ(serial, cliSweepJsonWithMode("4", "perDomain"));

    // And the event-scheduled stepper reports the same simulated
    // cycles as the naive reference on every cell.
    auto cycles = [](const std::string &json) {
        std::vector<std::string> out;
        const std::string needle = "\"cycles\": ";
        for (std::size_t pos = json.find(needle);
             pos != std::string::npos;
             pos = json.find(needle, pos + 1)) {
            std::size_t end = pos + needle.size();
            while (end < json.size() && std::isdigit(
                       static_cast<unsigned char>(json[end])))
                ++end;
            out.push_back(
                json.substr(pos + needle.size(),
                            end - pos - needle.size()));
        }
        return out;
    };
    const auto per_cycles = cycles(serial);
    const auto off_cycles =
        cycles(cliSweepJsonWithMode("1", "off"));
    EXPECT_EQ(per_cycles.size(), 4u);
    EXPECT_EQ(per_cycles, off_cycles);
}

/** The same sweep with an intra-sim tick-jobs value. */
std::string
cliSweepJsonWithTickJobs(const char *tick_jobs)
{
    const char *argv[] = {"gpulat", "sweep",      "--gpu",
                          "gf106",   "--workload", "vecadd",
                          "n=1024,2048",
                          "--set",   "sm.warpSlots=8,16",
                          "--tick-jobs", tick_jobs,
                          "--json",  "-"};
    std::ostringstream out;
    std::ostringstream err;
    const int code = runCli(static_cast<int>(std::size(argv)), argv,
                            out, err);
    EXPECT_EQ(code, 0) << err.str();
    return out.str();
}

TEST(Cli, TickJobsSweepOutputIsByteIdentical)
{
    // --tick-jobs parallelizes ticking *inside* each simulation;
    // like --jobs it is execution-only, so the streamed documents
    // must be byte-for-byte identical across values (the CI
    // determinism gate diffs exactly this).
    const std::string serial = cliSweepJsonWithTickJobs("1");
    EXPECT_EQ(serial, cliSweepJsonWithTickJobs("4"));
    EXPECT_EQ(serial, cliSweepJsonWithTickJobs("0"));
    // And identical to not passing the flag at all.
    EXPECT_EQ(serial, cliSweepJson("1"));
}

TEST(Cli, RejectsGarbageJobs)
{
    const char *argv[] = {"gpulat", "sweep", "--workload", "vecadd",
                          "--jobs", "lots"};
    std::ostringstream out;
    std::ostringstream err;
    EXPECT_EQ(runCli(static_cast<int>(std::size(argv)), argv, out,
                     err),
              2);
    EXPECT_NE(err.str().find("--jobs"), std::string::npos);

    // The shared parser must blame the flag the user passed, not
    // hardcode --jobs.
    const char *tick_argv[] = {"gpulat", "sweep", "--workload",
                               "vecadd", "--tick-jobs", "many"};
    std::ostringstream out2;
    std::ostringstream err2;
    EXPECT_EQ(runCli(static_cast<int>(std::size(tick_argv)),
                     tick_argv, out2, err2),
              2);
    EXPECT_NE(err2.str().find("--tick-jobs"), std::string::npos);
}

TEST(Cli, FailedCellReportsButSiblingsComplete)
{
    const char *argv[] = {"gpulat", "sweep", "--gpu", "gf106",
                          "--workload", "vecadd", "n=1024,2048",
                          "--set", "sm.warpSlots=8,0",
                          "--jobs", "4", "--json", "-"};
    std::ostringstream out;
    std::ostringstream err;
    const int rc = runCli(static_cast<int>(std::size(argv)), argv,
                          out, err);
    EXPECT_EQ(rc, 2);
    // The two good cells still streamed their records.
    EXPECT_NE(out.str().find("\"n\": \"1024\""),
              std::string::npos);
    EXPECT_NE(err.str().find("run "), std::string::npos);
}

} // namespace
} // namespace gpulat
