/**
 * @file
 * Unit + property tests for the latency analysis core: stage
 * attribution, breakdown bucketization, exposure accounting and
 * plateau detection.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "common/random.hh"
#include "latency/breakdown.hh"
#include "latency/exposure.hh"
#include "latency/stages.hh"
#include "latency/static_analyzer.hh"
#include "latency/summary.hh"

namespace gpulat {
namespace {

LatencyTrace
dramTrace(Cycle issue = 100)
{
    LatencyTrace t;
    t.issue = issue;
    t.l1Access = issue + 15;
    t.icntInject = issue + 25;
    t.ropEnq = issue + 70;
    t.l2Enq = issue + 95;
    t.dramEnq = issue + 130;
    t.dramSched = issue + 180;
    t.dramData = issue + 500;
    t.complete = issue + 560;
    t.hitLevel = HitLevel::Dram;
    return t;
}

TEST(Stages, L1HitAttributesEverythingToSmBase)
{
    LatencyTrace t;
    t.issue = 10;
    t.l1Access = 25;
    t.complete = 55;
    t.hitLevel = HitLevel::L1;
    const auto stages = t.stageCycles();
    EXPECT_EQ(stages[static_cast<std::size_t>(Stage::SmBase)], 45u);
    Cycle sum = 0;
    for (auto v : stages)
        sum += v;
    EXPECT_EQ(sum, t.total());
}

TEST(Stages, L2HitSplitsAcrossFiveStages)
{
    LatencyTrace t;
    t.issue = 0;
    t.l1Access = 15;
    t.icntInject = 20;
    t.ropEnq = 60;
    t.l2Enq = 85;
    t.l2Done = 200;
    t.complete = 260;
    t.hitLevel = HitLevel::L2;
    const auto stages = t.stageCycles();
    EXPECT_EQ(stages[static_cast<std::size_t>(Stage::SmBase)], 15u);
    EXPECT_EQ(stages[static_cast<std::size_t>(Stage::L1ToIcnt)], 5u);
    EXPECT_EQ(stages[static_cast<std::size_t>(Stage::IcntToRop)], 40u);
    EXPECT_EQ(stages[static_cast<std::size_t>(Stage::RopToL2Q)], 25u);
    EXPECT_EQ(stages[static_cast<std::size_t>(Stage::L2QToDramQ)],
              115u);
    EXPECT_EQ(stages[static_cast<std::size_t>(Stage::FetchToSm)], 60u);
    EXPECT_EQ(stages[static_cast<std::size_t>(Stage::DramQToSched)],
              0u);
}

TEST(Stages, DramTraceSumsToTotal)
{
    const LatencyTrace t = dramTrace();
    Cycle sum = 0;
    for (auto v : t.stageCycles())
        sum += v;
    EXPECT_EQ(sum, t.total());
    EXPECT_EQ(t.total(), 560u);
}

/** Property: random monotone traces always sum to their total. */
TEST(StagesProperty, StageDecompositionAlwaysSumsToTotal)
{
    Rng rng(3);
    for (int trial = 0; trial < 1000; ++trial) {
        LatencyTrace t;
        Cycle c = rng.below(1000);
        t.issue = c;
        c += 1 + rng.below(50);
        t.l1Access = c;
        const int kind = static_cast<int>(rng.below(3));
        if (kind == 0) {
            t.hitLevel = HitLevel::L1;
            c += 1 + rng.below(100);
            t.complete = c;
        } else {
            c += 1 + rng.below(50);
            t.icntInject = c;
            c += 1 + rng.below(50);
            t.ropEnq = c;
            c += 1 + rng.below(50);
            t.l2Enq = c;
            if (kind == 1) {
                t.hitLevel = HitLevel::L2;
                c += 1 + rng.below(200);
                t.l2Done = c;
            } else {
                t.hitLevel = HitLevel::Dram;
                c += 1 + rng.below(100);
                t.dramEnq = c;
                c += 1 + rng.below(300);
                t.dramSched = c;
                c += 1 + rng.below(400);
                t.dramData = c;
            }
            c += 1 + rng.below(100);
            t.complete = c;
        }
        Cycle sum = 0;
        for (auto v : t.stageCycles())
            sum += v;
        EXPECT_EQ(sum, t.total()) << "trial " << trial;
    }
}

TEST(Breakdown, EmptyInputYieldsEmptyBreakdown)
{
    const Breakdown bd = computeBreakdown({}, 48);
    EXPECT_EQ(bd.requests, 0u);
    EXPECT_TRUE(bd.buckets.empty());
}

TEST(Breakdown, SingleTraceLandsInLastBucket)
{
    const Breakdown bd = computeBreakdown({dramTrace()}, 8);
    EXPECT_EQ(bd.requests, 1u);
    std::uint64_t count = 0;
    for (const auto &bucket : bd.buckets)
        count += bucket.count;
    EXPECT_EQ(count, 1u);
}

TEST(Breakdown, BucketsSpanObservedRange)
{
    std::vector<LatencyTrace> traces;
    for (Cycle issue : {0u, 100u, 200u}) {
        LatencyTrace t = dramTrace(issue);
        t.complete = t.issue + 560 + issue; // totals 560, 660, 760
        traces.push_back(t);
    }
    const Breakdown bd = computeBreakdown(traces, 10);
    EXPECT_EQ(bd.minLatency, 560u);
    EXPECT_EQ(bd.maxLatency, 760u);
    EXPECT_EQ(bd.buckets.front().lo, 560u);
    EXPECT_EQ(bd.buckets.back().hi, 760u);
}

TEST(Breakdown, CountsAreConserved)
{
    Rng rng(7);
    std::vector<LatencyTrace> traces;
    for (int i = 0; i < 500; ++i) {
        LatencyTrace t = dramTrace();
        t.complete = t.issue + 300 + rng.below(1000);
        // keep monotonicity: dramData must stay below complete
        t.dramData = std::min(t.dramData, t.complete - 1);
        t.dramSched = std::min(t.dramSched, t.dramData);
        traces.push_back(t);
    }
    const Breakdown bd = computeBreakdown(traces, 48);
    std::uint64_t count = 0;
    for (const auto &bucket : bd.buckets)
        count += bucket.count;
    EXPECT_EQ(count, traces.size());
}

TEST(Breakdown, StagePercentagesSumTo100PerNonEmptyBucket)
{
    std::vector<LatencyTrace> traces{dramTrace(0), dramTrace(50)};
    const Breakdown bd = computeBreakdown(traces, 4);
    for (const auto &bucket : bd.buckets) {
        if (bucket.count == 0)
            continue;
        double sum = 0.0;
        for (std::size_t s = 0; s < kNumStages; ++s)
            sum += bucket.stagePct(static_cast<Stage>(s));
        EXPECT_NEAR(sum, 100.0, 1e-9);
    }
}

TEST(Breakdown, RankedStagesOrderedByContribution)
{
    const Breakdown bd = computeBreakdown({dramTrace()}, 4);
    const auto ranked = bd.rankedStages();
    for (std::size_t i = 1; i < ranked.size(); ++i) {
        EXPECT_GE(
            bd.totalByStage[static_cast<std::size_t>(ranked[i - 1])],
            bd.totalByStage[static_cast<std::size_t>(ranked[i])]);
    }
    // For this trace DRAM(SchToA) = 320 dominates.
    EXPECT_EQ(ranked[0], Stage::DramSchedToData);
}

TEST(Exposure, PercentagesPartition)
{
    std::vector<ExposureRecord> records{{100, 30}, {100, 70}};
    const ExposureBreakdown eb = computeExposure(records, 1);
    EXPECT_NEAR(eb.buckets[0].exposedPct(), 50.0, 1e-9);
    EXPECT_NEAR(eb.buckets[0].hiddenPct(), 50.0, 1e-9);
}

TEST(Exposure, OverallExposedWeightsByCycles)
{
    std::vector<ExposureRecord> records{{100, 100}, {300, 0}};
    const ExposureBreakdown eb = computeExposure(records, 4);
    EXPECT_NEAR(eb.overallExposedPct(), 25.0, 1e-9);
}

TEST(Exposure, MostlyExposedFraction)
{
    // Two well-separated buckets: one fully exposed, one hidden.
    std::vector<ExposureRecord> records{{100, 100}, {1000, 0}};
    const ExposureBreakdown eb = computeExposure(records, 2);
    EXPECT_NEAR(eb.fractionOfLoadsMostlyExposed(), 0.5, 1e-9);
}

TEST(Exposure, EmptyInput)
{
    const ExposureBreakdown eb = computeExposure({}, 48);
    EXPECT_EQ(eb.loads, 0u);
    EXPECT_EQ(eb.overallExposedPct(), 0.0);
}

TEST(Plateaus, SingleFlatCurveIsOneLevel)
{
    std::vector<LatencyCurvePoint> curve{
        {1024, 440.0}, {2048, 441.0}, {4096, 440.5}};
    const auto levels = detectPlateaus(curve);
    ASSERT_EQ(levels.size(), 1u);
    EXPECT_NEAR(levels[0].latency, 440.5, 1.0);
}

TEST(Plateaus, ThreeLevelHierarchyDetected)
{
    std::vector<LatencyCurvePoint> curve{
        {4096, 45.0},    {8192, 45.2},    {16384, 45.1},
        {32768, 310.0},  {65536, 310.4},  {131072, 309.8},
        {262144, 684.0}, {524288, 685.0}, {1048576, 685.5},
    };
    const auto levels = detectPlateaus(curve);
    ASSERT_EQ(levels.size(), 3u);
    EXPECT_NEAR(levels[0].latency, 45.1, 0.5);
    EXPECT_NEAR(levels[1].latency, 310.0, 1.0);
    EXPECT_NEAR(levels[2].latency, 685.0, 1.0);
    EXPECT_EQ(levels[0].maxFootprint, 16384u);
    EXPECT_EQ(levels[1].maxFootprint, 131072u);
}

TEST(Plateaus, NoiseBelowThresholdIsAbsorbed)
{
    std::vector<LatencyCurvePoint> curve{
        {1024, 100.0}, {2048, 108.0}, {4096, 95.0}, {8192, 104.0}};
    EXPECT_EQ(detectPlateaus(curve, 0.15).size(), 1u);
}

TEST(Plateaus, RejectsUnsortedCurve)
{
    std::vector<LatencyCurvePoint> curve{{2048, 1.0}, {1024, 2.0}};
    EXPECT_THROW(detectPlateaus(curve), PanicError);
}

TEST(Plateaus, EmptyCurveYieldsNoLevels)
{
    EXPECT_TRUE(detectPlateaus({}).empty());
}

TEST(Summary, SplitsByHitLevel)
{
    std::vector<LatencyTrace> traces;
    for (int i = 0; i < 10; ++i) {
        LatencyTrace t;
        t.issue = 0;
        t.l1Access = 15;
        t.complete = 40 + static_cast<Cycle>(i);
        t.hitLevel = HitLevel::L1;
        traces.push_back(t);
    }
    traces.push_back(dramTrace());
    const LatencySummary s = computeSummary(traces);
    EXPECT_EQ(s.at(HitLevel::L1).count, 10u);
    EXPECT_EQ(s.at(HitLevel::L1).min, 40u);
    EXPECT_EQ(s.at(HitLevel::L1).max, 49u);
    EXPECT_NEAR(s.at(HitLevel::L1).mean, 44.5, 1e-9);
    EXPECT_EQ(s.at(HitLevel::Dram).count, 1u);
    EXPECT_EQ(s.at(HitLevel::L2).count, 0u);
}

TEST(Summary, PercentilesAreOrdered)
{
    std::vector<LatencyTrace> traces;
    for (int i = 0; i < 100; ++i) {
        LatencyTrace t = dramTrace();
        t.complete = t.issue + 500 + static_cast<Cycle>(i * 13);
        t.dramData = std::min(t.dramData, t.complete - 1);
        traces.push_back(t);
    }
    const LatencySummary s = computeSummary(traces);
    const LevelSummary &d = s.at(HitLevel::Dram);
    EXPECT_LE(d.min, d.p50);
    EXPECT_LE(d.p50, d.p90);
    EXPECT_LE(d.p90, d.p99);
    EXPECT_LE(d.p99, d.max);
}

TEST(LineSize, RecoversSaturationPoint)
{
    // stride/line miss mixing: latency = hit + (s/128)*(miss-hit).
    std::vector<StrideCurvePoint> curve;
    for (std::uint64_t s = 8; s <= 512; s *= 2) {
        const double frac = std::min(1.0, static_cast<double>(s) / 128.0);
        curve.push_back(StrideCurvePoint{s, 45.0 + frac * (685.0 - 45.0)});
    }
    EXPECT_EQ(detectLineSize(curve), 128u);
}

TEST(LineSize, FlatCurveMeansNoCache)
{
    std::vector<StrideCurvePoint> curve{
        {8, 440.0}, {64, 441.0}, {128, 440.2}, {512, 440.9}};
    EXPECT_EQ(detectLineSize(curve), 0u);
}

TEST(LineSize, RejectsUnsortedCurve)
{
    std::vector<StrideCurvePoint> curve{{64, 1.0}, {8, 2.0}};
    EXPECT_THROW(detectLineSize(curve), PanicError);
}

/** Property: synthetic staircases of random height/width are
 *  recovered exactly. */
TEST(PlateausProperty, RecoversRandomStaircases)
{
    Rng rng(21);
    for (int trial = 0; trial < 100; ++trial) {
        const std::size_t nlevels = 1 + rng.below(4);
        std::vector<LatencyCurvePoint> curve;
        std::vector<double> lats;
        double lat = 30.0 + static_cast<double>(rng.below(50));
        std::uint64_t fp = 1024;
        for (std::size_t l = 0; l < nlevels; ++l) {
            lats.push_back(lat);
            const std::size_t pts = 2 + rng.below(3);
            for (std::size_t i = 0; i < pts; ++i) {
                curve.push_back(LatencyCurvePoint{
                    fp, lat + rng.uniform() * lat * 0.02});
                fp *= 2;
            }
            lat *= 1.5 + rng.uniform(); // clear jump
        }
        const auto levels = detectPlateaus(curve);
        ASSERT_EQ(levels.size(), nlevels) << "trial " << trial;
        for (std::size_t l = 0; l < nlevels; ++l)
            EXPECT_NEAR(levels[l].latency, lats[l], lats[l] * 0.05);
    }
}

} // namespace
} // namespace gpulat
