/**
 * @file
 * Config-level sanity tests: partition interleaving, preset
 * invariants, and launch-time validation.
 */

#include <gtest/gtest.h>

#include "gpu/gpu.hh"
#include "isa/assembler.hh"

namespace gpulat {
namespace {

TEST(Config, PartitionMapRoundRobinsLines)
{
    GpuConfig cfg = makeGF100Sim();
    ASSERT_EQ(cfg.numPartitions, 6u);
    for (Addr line = 0; line < 64; ++line) {
        EXPECT_EQ(cfg.partitionOf(line * 128),
                  static_cast<unsigned>(line % 6));
        // All addresses within one line map to the same partition.
        EXPECT_EQ(cfg.partitionOf(line * 128),
                  cfg.partitionOf(line * 128 + 127));
    }
}

TEST(Config, TotalL2AggregatesSlices)
{
    const GpuConfig gf106 = makeGF106();
    EXPECT_EQ(gf106.totalL2Bytes(),
              gf106.partition.l2Cache.capacityBytes *
                  gf106.numPartitions);
    EXPECT_EQ(makeGT200().totalL2Bytes(), 0u);
}

TEST(Config, PresetsHaveConsistentLineSizes)
{
    for (const char *name :
         {"gt200", "gf106", "gk104", "gm107", "gf100-sim"}) {
        const GpuConfig cfg = makeConfig(name);
        EXPECT_EQ(cfg.sm.lineBytes, cfg.partition.lineBytes) << name;
        EXPECT_EQ(cfg.sm.l1Cache.lineBytes, cfg.sm.lineBytes) << name;
        EXPECT_EQ(cfg.partition.l2Cache.lineBytes, cfg.sm.lineBytes)
            << name;
    }
}

TEST(Config, Gf100MatchesThePapersMachine)
{
    const GpuConfig cfg = makeGF100Sim();
    EXPECT_EQ(cfg.numSms, 15u);
    EXPECT_EQ(cfg.numPartitions, 6u);
    EXPECT_EQ(cfg.sm.warpSlots, 48u);
    EXPECT_EQ(cfg.partition.sched, DramSchedPolicy::FRFCFS);
}

TEST(Config, L2WritePolicyIsWriteBackEverywhere)
{
    for (const char *name :
         {"gf106", "gk104", "gm107", "gf100-sim"}) {
        const GpuConfig cfg = makeConfig(name);
        EXPECT_EQ(cfg.partition.l2Cache.write, WritePolicy::WriteBack)
            << name;
        EXPECT_EQ(cfg.sm.l1Cache.write, WritePolicy::WriteThrough)
            << name;
    }
}

TEST(LaunchValidation, TooManyParamsIsFatal)
{
    Gpu gpu(makeGF106());
    const Kernel k = assemble("exit\n");
    const std::vector<RegValue> params(kMaxParams + 1, 0);
    EXPECT_THROW(gpu.launch(k, 1, 32, params), FatalError);
}

TEST(LaunchValidation, DeviceMemoryExhaustionIsFatal)
{
    GpuConfig cfg = makeGF106();
    cfg.deviceMemBytes = 1024 * 1024;
    Gpu gpu(cfg);
    gpu.alloc(512 * 1024);
    EXPECT_THROW(gpu.alloc(1024 * 1024), FatalError);
}

TEST(LaunchValidation, OutOfRangeAccessIsFatal)
{
    Gpu gpu(makeGF106());
    const Kernel k = assemble(R"(
        mov r1, 0x40000000
        ld.global r2, [r1]
        st.global [r1], r2
        exit
    )");
    EXPECT_THROW(gpu.launch(k, 1, 1, {}), FatalError);
}

TEST(LaunchValidation, LocalOverflowIsFatal)
{
    GpuConfig cfg = makeGF106();
    cfg.localBytesPerThread = 64;
    Gpu gpu(cfg);
    const Kernel k = assemble(R"(
        mov r1, 128
        st.local [r1], r1
        exit
    )");
    EXPECT_THROW(gpu.launch(k, 1, 1, {}), FatalError);
}

TEST(LaunchValidation, SharedOverflowIsFatal)
{
    Gpu gpu(makeGF106());
    const Kernel k = assemble(R"(
        .shared 64
        mov r1, 128
        st.shared [r1], r1
        exit
    )");
    EXPECT_THROW(gpu.launch(k, 1, 1, {}), FatalError);
}

TEST(LaunchValidation, AllPresetsRunAKernel)
{
    for (const char *name :
         {"gt200", "gf106", "gk104", "gm107", "gf100-sim"}) {
        GpuConfig cfg = makeConfig(name);
        cfg.deviceMemBytes = 8 * 1024 * 1024;
        Gpu gpu(cfg);
        const Kernel k = assemble(R"(
            s2r r0, tid
            shl r1, r0, 3
            mov r2, param0
            iadd r2, r2, r1
            st.global [r2], r0
            exit
        )");
        const Addr buf = gpu.alloc(64 * 8);
        gpu.launch(k, 2, 32, {buf});
        std::uint64_t v = 0;
        gpu.copyFromDevice(&v, buf + 5 * 8, 8);
        EXPECT_EQ(v, 5u) << name;
    }
}

} // namespace
} // namespace gpulat
