/**
 * @file
 * SM microarchitecture behaviour tests: scheduler policies, MSHR
 * merging, occupancy limits, shared-memory bank conflicts and
 * exposure accounting, all observed through end-to-end runs.
 */

#include <gtest/gtest.h>

#include "gpu/gpu.hh"
#include "isa/assembler.hh"
#include "latency/exposure.hh"

namespace gpulat {
namespace {

GpuConfig
testConfig()
{
    GpuConfig cfg = makeGF106();
    cfg.numSms = 1;
    cfg.numPartitions = 1;
    cfg.deviceMemBytes = 16 * 1024 * 1024;
    return cfg;
}

const char *kStridedSum = R"(
    s2r r0, tid
    s2r r1, ctaid
    s2r r2, ntid
    imad r0, r1, r2, r0
    shl r3, r0, 3
    mov r4, param0
    iadd r4, r4, r3
    ld.global r5, [r4]
    iadd r5, r5, 1
    st.global [r4], r5
    exit
)";

TEST(SmBehavior, BothSchedulerPoliciesProduceCorrectResults)
{
    for (auto policy : {SchedPolicy::LRR, SchedPolicy::GTO}) {
        GpuConfig cfg = testConfig();
        cfg.sm.schedPolicy = policy;
        Gpu gpu(cfg);
        const Kernel k = assemble(kStridedSum);
        const Addr buf = gpu.alloc(512 * 8);
        gpu.launch(k, 4, 128, {buf});
        for (std::uint64_t i = 0; i < 512; ++i) {
            std::uint64_t v = 0;
            gpu.copyFromDevice(&v, buf + i * 8, 8);
            EXPECT_EQ(v, 1u) << toString(policy) << " thread " << i;
        }
    }
}

TEST(SmBehavior, PolicyChoiceChangesTimingDeterministically)
{
    auto cycles_with = [](SchedPolicy policy) {
        GpuConfig cfg = testConfig();
        cfg.sm.schedPolicy = policy;
        Gpu gpu(cfg);
        const Kernel k = assemble(kStridedSum);
        const Addr buf = gpu.alloc(4096 * 8);
        return gpu.launch(k, 16, 256, {buf}).cycles;
    };
    // Each policy is self-deterministic.
    EXPECT_EQ(cycles_with(SchedPolicy::LRR),
              cycles_with(SchedPolicy::LRR));
    EXPECT_EQ(cycles_with(SchedPolicy::GTO),
              cycles_with(SchedPolicy::GTO));
}

TEST(SmBehavior, SameLineLoadsMergeInMshr)
{
    Gpu gpu(testConfig());
    // Every thread in every warp loads the same address.
    const Kernel k = assemble(R"(
        mov r1, param0
        ld.global r2, [r1]
        st.global [r1+128], r2
        exit
    )");
    const Addr buf = gpu.alloc(4096, 128);
    gpu.launch(k, 1, 256, {buf});
    // 8 warps x 1 transaction, same line: at most the first goes to
    // DRAM; the L1 MSHR merges in-flight duplicates and later warps
    // hit the filled line.
    EXPECT_EQ(gpu.stats().counterValue("part0.dram_reads"), 1u);
}

TEST(SmBehavior, RegisterPressureLimitsResidency)
{
    // A kernel claiming all SM registers forces blocks to run one
    // at a time; with few registers they overlap and finish faster.
    auto cycles_with_regs = [](int regs) {
        GpuConfig cfg = testConfig();
        cfg.sm.regsPerSm = 16 * 1024;
        Gpu gpu(cfg);
        Kernel k = assemble(kStridedSum);
        k.numRegs = regs;
        const Addr buf = gpu.alloc(4096 * 8);
        return gpu.launch(k, 8, 512, {buf}).cycles;
    };
    // 512 threads * 32 regs = 16K: exactly one block resident.
    const Cycle serialized = cycles_with_regs(32);
    // 512 threads * 8 regs = 4K: four blocks resident.
    const Cycle overlapped = cycles_with_regs(8);
    EXPECT_GT(serialized, overlapped);
}

TEST(SmBehavior, SharedMemoryLimitsResidency)
{
    auto cycles_with_smem = [](std::uint32_t bytes) {
        GpuConfig cfg = testConfig();
        Gpu gpu(cfg);
        Kernel k = assemble(kStridedSum);
        k.sharedBytes = bytes;
        const Addr buf = gpu.alloc(4096 * 8);
        return gpu.launch(k, 8, 128, {buf}).cycles;
    };
    const Cycle serialized = cycles_with_smem(48 * 1024);
    const Cycle overlapped = cycles_with_smem(1024);
    EXPECT_GT(serialized, overlapped);
}

TEST(SmBehavior, OversizedSharedMemoryIsFatal)
{
    Gpu gpu(testConfig());
    Kernel k = assemble("exit\n");
    k.sharedBytes = 1024 * 1024;
    EXPECT_THROW(gpu.launch(k, 1, 32, {}), FatalError);
}

TEST(SmBehavior, UnderdeclaredRegisterCountIsFatal)
{
    Gpu gpu(testConfig());
    Kernel k = assemble("mov r7, 1\nexit\n");
    k.numRegs = 4; // code uses r7
    EXPECT_THROW(gpu.launch(k, 1, 32, {}), FatalError);
}

TEST(SmBehavior, BankConflictsSlowSharedLoads)
{
    // Conflict-free: word index = tid. 32-way conflict: tid * 32.
    auto cycles_for = [](const char *index_expr) {
        GpuConfig cfg = testConfig();
        Gpu gpu(cfg);
        std::string src = R"(
            .shared 16384
            s2r r0, tid
        )";
        src += index_expr;
        src += R"(
            shl r2, r1, 3
            st.shared [r2], r0
            ld.shared r3, [r2]
            ld.shared r4, [r2]
            ld.shared r5, [r2]
            mov r6, param0
            shl r7, r0, 3
            iadd r6, r6, r7
            st.global [r6], r3
            exit
        )";
        const Kernel k = assemble(src);
        const Addr buf = gpu.alloc(64 * 8);
        return gpu.launch(k, 1, 32, {buf}).cycles;
    };
    const Cycle clean = cycles_for("mov r1, r0\n");
    const Cycle conflicted = cycles_for("shl r1, r0, 5\n");
    EXPECT_GT(conflicted, clean);
}

TEST(SmBehavior, SingleWarpDependentLoadsAreFullyExposed)
{
    GpuConfig cfg = testConfig();
    cfg.sm.warpSlots = 1;
    Gpu gpu(cfg);
    // One warp, one lane, dependent chain: nothing can hide it.
    const Kernel k = assemble(R"(
        mov r1, param0
        ld.global r1, [r1]
        ld.global r1, [r1]
        ld.global r1, [r1]
        ld.global r1, [r1]
        st.global [r1], r1
        exit
    )");
    const Addr buf = gpu.alloc(1024, 128);
    // Self-loop chain: *buf = buf.
    const std::uint64_t self = buf;
    gpu.copyToDevice(buf, &self, 8);
    gpu.launch(k, 1, 1, {buf});
    const auto eb = computeExposure(gpu.exposure().records(), 4);
    EXPECT_GT(eb.overallExposedPct(), 95.0);
}

TEST(SmBehavior, L1HitRateReflectsReuse)
{
    Gpu gpu(testConfig());
    // Two passes over a small array: second pass hits.
    const Kernel k = assemble(R"(
        s2r r0, tid
        shl r1, r0, 3
        mov r2, param0
        iadd r2, r2, r1
        ld.global r3, [r2]
        ld.global r4, [r2]
        iadd r5, r3, r4
        st.global [r2], r5
        exit
    )");
    const Addr buf = gpu.alloc(32 * 8, 128);
    gpu.launch(k, 1, 32, {buf});
    EXPECT_GT(gpu.sm(0).l1()->hits(), 0u);
}

TEST(SmBehavior, StoresCreateDownstreamTrafficButNoTraces)
{
    Gpu gpu(testConfig());
    const Kernel k = assemble(R"(
        s2r r0, tid
        shl r1, r0, 3
        mov r2, param0
        iadd r2, r2, r1
        mov r3, 7
        st.global [r2], r3
        exit
    )");
    const Addr buf = gpu.alloc(32 * 8, 128);
    gpu.launch(k, 1, 32, {buf});
    // No loads -> no latency traces...
    EXPECT_EQ(gpu.latencies().count(), 0u);
    // ...but the writes did reach DRAM (write-through L1, miss L2):
    // 32 threads x 8 B = 256 B = two 128 B lines.
    EXPECT_EQ(gpu.stats().counterValue("part0.dram_writes"), 2u);
}

TEST(SmBehavior, IdleCyclesAreAttributedToMemory)
{
    GpuConfig cfg = testConfig();
    cfg.sm.warpSlots = 1;
    Gpu gpu(cfg);
    const Kernel k = assemble(R"(
        mov r1, param0
        ld.global r1, [r1]
        ld.global r1, [r1]
        ld.global r1, [r1]
        st.global [r1], r1
        exit
    )");
    const Addr buf = gpu.alloc(1024, 128);
    const std::uint64_t self = buf;
    gpu.copyToDevice(buf, &self, 8);
    gpu.launch(k, 1, 1, {buf});
    const auto mem = gpu.stats().counterValue("sm0.idle_on_memory");
    const auto alu = gpu.stats().counterValue("sm0.idle_on_alu");
    EXPECT_GT(mem, 100u);
    EXPECT_GT(mem, alu * 10);
}

TEST(SmBehavior, IdleCyclesAreAttributedToBarriers)
{
    Gpu gpu(testConfig());
    // Warp 0 spins; the others wait at the barrier meanwhile.
    const Kernel k = assemble(R"(
        s2r r0, warpid
        imul r1, r0, 0
        setp.ne p0, r0, 0
        @p0 bra wait
        mov r2, 0
        spin:
        setp.ge p1, r2, 50
        @p1 bra wait
        iadd r2, r2, 1
        bra spin
        wait:
        bar
        exit
    )");
    gpu.launch(k, 1, 128, {});
    EXPECT_GT(gpu.stats().counterValue("sm0.idle_on_barrier"), 0u);
}

TEST(SmBehavior, MultipleSchedulersIssueInParallel)
{
    auto cycles_with_scheds = [](unsigned n) {
        GpuConfig cfg = testConfig();
        cfg.sm.numSchedulers = n;
        Gpu gpu(cfg);
        // Pure ALU kernel: issue-limited.
        const Kernel k = assemble(R"(
            s2r r0, tid
            mov r1, 0
            mov r2, 0
            loop:
            setp.ge p0, r2, 200
            @p0 bra done
            iadd r1, r1, 3
            iadd r2, r2, 1
            bra loop
            done:
            mov r3, param0
            shl r4, r0, 3
            iadd r3, r3, r4
            st.global [r3], r1
            exit
        )");
        const Addr buf = gpu.alloc(1024 * 8);
        return gpu.launch(k, 4, 256, {buf}).cycles;
    };
    EXPECT_LT(cycles_with_scheds(4), cycles_with_scheds(1));
}

} // namespace
} // namespace gpulat
