/**
 * @file
 * Tests for the pointer-chase microbenchmark machinery: chain
 * construction, kernel generation, and that measurements respond to
 * cache capacity the way the methodology assumes.
 */

#include <gtest/gtest.h>

#include "microbench/pchase.hh"
#include "microbench/sweep.hh"

namespace gpulat {
namespace {

GpuConfig
smallFermi()
{
    GpuConfig cfg = makeGF106();
    cfg.numSms = 1;
    cfg.numPartitions = 1;
    cfg.deviceMemBytes = 64 * 1024 * 1024;
    return cfg;
}

TEST(PChase, ChaseKernelHasExpectedShape)
{
    const Kernel k = buildChaseKernel(MemSpace::Global, 4, 16);
    // 2 movs + 4 warmup + clock + 16 timed + clock + 1 trailing
    // (untimed, anti-vacuous-verification) + isub + mov + 2 st +
    // exit
    EXPECT_EQ(k.size(), 2u + 4 + 1 + 16 + 1 + 1 + 1 + 1 + 2 + 1);
    unsigned loads = 0;
    for (const auto &inst : k.code)
        if (inst.isLoad())
            ++loads;
    EXPECT_EQ(loads, 21u);
}

TEST(PChase, L1ResidentChaseIsFastAndUniform)
{
    Gpu gpu(smallFermi());
    PChaseConfig pc;
    pc.footprintBytes = 4 * 1024; // well inside 16KB L1
    pc.strideBytes = 128;
    pc.timedAccesses = 256;
    const PChaseResult r = runPointerChase(gpu, pc);
    // L1-hit territory: tens of cycles, far below L2 latency.
    EXPECT_GT(r.cyclesPerAccess, 10.0);
    EXPECT_LT(r.cyclesPerAccess, 100.0);
}

TEST(PChase, BeyondL1FootprintIsSlower)
{
    GpuConfig cfg = smallFermi();
    const std::uint64_t l1 = cfg.sm.l1Cache.capacityBytes;

    Gpu inside(cfg);
    PChaseConfig pc;
    pc.footprintBytes = l1 / 2;
    pc.timedAccesses = 256;
    const double fast = runPointerChase(inside, pc).cyclesPerAccess;

    Gpu outside(cfg);
    pc.footprintBytes = l1 * 4;
    const double slow = runPointerChase(outside, pc).cyclesPerAccess;
    EXPECT_GT(slow, fast * 2.0);
}

TEST(PChase, BeyondL2FootprintIsSlowest)
{
    GpuConfig cfg = smallFermi();
    const std::uint64_t l2 = cfg.totalL2Bytes();

    Gpu at_l2(cfg);
    PChaseConfig pc;
    pc.footprintBytes = l2 / 2;
    pc.timedAccesses = 256;
    const double l2_lat = runPointerChase(at_l2, pc).cyclesPerAccess;

    Gpu beyond(cfg);
    pc.footprintBytes = l2 * 2;
    const double dram_lat =
        runPointerChase(beyond, pc).cyclesPerAccess;
    EXPECT_GT(dram_lat, l2_lat * 1.5);
}

TEST(PChase, LocalChaseUsesL1OnKepler)
{
    GpuConfig cfg = makeGK104();
    cfg.numSms = 1;
    cfg.numPartitions = 1;
    cfg.localBytesPerThread = 8 * 1024;

    Gpu gpu(cfg);
    PChaseConfig pc;
    pc.space = MemSpace::Local;
    pc.footprintBytes = 4 * 1024;
    pc.timedAccesses = 256;
    const double local_lat =
        runPointerChase(gpu, pc).cyclesPerAccess;

    Gpu gpu2(cfg);
    pc.space = MemSpace::Global;
    const double global_lat =
        runPointerChase(gpu2, pc).cyclesPerAccess;

    // Kepler: local hits the L1, global can't (L2 at best).
    EXPECT_LT(local_lat, global_lat * 0.5);
}

TEST(PChase, MeasurementIsDeterministic)
{
    auto measure = [] {
        Gpu gpu(smallFermi());
        PChaseConfig pc;
        pc.footprintBytes = 8 * 1024;
        pc.timedAccesses = 128;
        return runPointerChase(gpu, pc).cyclesPerAccess;
    };
    EXPECT_DOUBLE_EQ(measure(), measure());
}

TEST(PChase, RejectsBadStride)
{
    Gpu gpu(smallFermi());
    PChaseConfig pc;
    pc.strideBytes = 12; // not a multiple of 8
    EXPECT_THROW(runPointerChase(gpu, pc), PanicError);
}

TEST(Sweep, LadderIsSortedAndCoversRange)
{
    const auto ladder = footprintLadder(1024, 16 * 1024);
    EXPECT_EQ(ladder.front(), 1024u);
    EXPECT_GE(ladder.back(), 16 * 1024u / 2);
    for (std::size_t i = 1; i < ladder.size(); ++i)
        EXPECT_GT(ladder[i], ladder[i - 1]);
}

TEST(Sweep, StrideSweepRecoversLineSize)
{
    GpuConfig cfg = smallFermi();
    SweepOptions opts;
    opts.timedAccesses = 192;
    // Footprint far beyond the L1 so every line transition misses.
    const std::uint64_t fp = cfg.sm.l1Cache.capacityBytes * 8;
    const auto curve =
        sweepStrides(cfg, fp, {8, 16, 32, 64, 128, 256}, opts);
    EXPECT_EQ(detectLineSize(curve), cfg.sm.lineBytes);
}

TEST(Sweep, StrideSweepLatencyIsMonotone)
{
    GpuConfig cfg = smallFermi();
    SweepOptions opts;
    opts.timedAccesses = 192;
    const std::uint64_t fp = cfg.sm.l1Cache.capacityBytes * 8;
    const auto curve = sweepStrides(cfg, fp, {8, 32, 128}, opts);
    ASSERT_EQ(curve.size(), 3u);
    EXPECT_LT(curve[0].latency, curve[1].latency);
    EXPECT_LT(curve[1].latency, curve[2].latency);
}

TEST(Sweep, CurveIsMonotoneAcrossCapacityBoundary)
{
    GpuConfig cfg = smallFermi();
    SweepOptions opts;
    opts.timedAccesses = 128;
    const std::uint64_t l1 = cfg.sm.l1Cache.capacityBytes;
    const auto curve =
        sweepFootprints(cfg, {l1 / 2, l1, l1 * 4}, opts);
    ASSERT_EQ(curve.size(), 3u);
    EXPECT_NEAR(curve[0].latency, curve[1].latency,
                curve[0].latency * 0.05);
    EXPECT_GT(curve[2].latency, curve[1].latency);
}

} // namespace
} // namespace gpulat
