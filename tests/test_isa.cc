/**
 * @file
 * Unit tests for the ISA: assembler syntax, builder validation,
 * CFG/reconvergence analysis and the disassembler.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "isa/assembler.hh"
#include "isa/kernel.hh"

namespace gpulat {
namespace {

TEST(Assembler, ParsesBasicAlu)
{
    const Kernel k = assemble(R"(
        mov r1, 5
        iadd r2, r1, 10
        exit
    )");
    ASSERT_EQ(k.size(), 3u);
    EXPECT_EQ(k.code[0].op, Opcode::MOV);
    EXPECT_TRUE(k.code[0].useImm);
    EXPECT_EQ(k.code[0].imm, 5);
    EXPECT_EQ(k.code[1].op, Opcode::IADD);
    EXPECT_EQ(k.code[1].srcA, 1);
    EXPECT_EQ(k.code[1].imm, 10);
    EXPECT_EQ(k.code[2].op, Opcode::EXIT);
}

TEST(Assembler, KernelDirectiveSetsName)
{
    const Kernel k = assemble(".kernel foo\nexit\n");
    EXPECT_EQ(k.name, "foo");
}

TEST(Assembler, RegsAndSharedDirectives)
{
    const Kernel k = assemble(R"(
        .regs 24
        .shared 4096
        exit
    )");
    EXPECT_EQ(k.numRegs, 24);
    EXPECT_EQ(k.sharedBytes, 4096u);
}

TEST(Assembler, DefaultRegCountIsMaxUsedPlusOne)
{
    const Kernel k = assemble("mov r9, 1\nexit\n");
    EXPECT_EQ(k.numRegs, 10);
}

TEST(Assembler, ParsesHexAndNegativeImmediates)
{
    const Kernel k = assemble(R"(
        mov r1, 0x10
        mov r2, -5
        exit
    )");
    EXPECT_EQ(k.code[0].imm, 16);
    EXPECT_EQ(k.code[1].imm, -5);
}

TEST(Assembler, ParsesLoadStoreAddressing)
{
    const Kernel k = assemble(R"(
        ld.global r1, [r2+16]
        ld.local  r3, [r4]
        st.shared [r5-8], r6
        exit
    )");
    EXPECT_EQ(k.code[0].space, MemSpace::Global);
    EXPECT_EQ(k.code[0].imm, 16);
    EXPECT_EQ(k.code[1].space, MemSpace::Local);
    EXPECT_EQ(k.code[1].imm, 0);
    EXPECT_EQ(k.code[2].space, MemSpace::Shared);
    EXPECT_EQ(k.code[2].imm, -8);
    EXPECT_EQ(k.code[2].srcB, 6);
}

TEST(Assembler, ParsesParamsAndSpecialRegs)
{
    const Kernel k = assemble(R"(
        mov r1, param3
        s2r r2, ctaid
        exit
    )");
    EXPECT_EQ(k.code[0].param, 3);
    EXPECT_EQ(k.code[1].sreg, SpecialReg::Ctaid);
}

TEST(Assembler, ParsesGuards)
{
    const Kernel k = assemble(R"(
        setp.lt p1, r1, 4
        @p1 iadd r2, r2, 1
        @!p1 iadd r2, r2, 2
        exit
    )");
    EXPECT_EQ(k.code[1].pred, 1);
    EXPECT_FALSE(k.code[1].predNeg);
    EXPECT_EQ(k.code[2].pred, 1);
    EXPECT_TRUE(k.code[2].predNeg);
}

TEST(Assembler, ResolvesForwardAndBackwardLabels)
{
    const Kernel k = assemble(R"(
        top:
        iadd r1, r1, 1
        setp.lt p0, r1, 10
        @p0 bra top
        bra end
        iadd r1, r1, 100
        end:
        exit
    )");
    EXPECT_EQ(k.code[2].target, 0u);
    EXPECT_EQ(k.code[3].target, 5u);
}

TEST(Assembler, LabelOnSameLineAsInstruction)
{
    const Kernel k = assemble("start: exit\n");
    ASSERT_EQ(k.size(), 1u);
    EXPECT_EQ(k.code[0].op, Opcode::EXIT);
}

TEST(Assembler, CommentsAreIgnored)
{
    const Kernel k = assemble(R"(
        ; full line comment
        # hash comment
        mov r1, 1   // trailing comment
        exit        ; done
    )");
    EXPECT_EQ(k.size(), 2u);
}

TEST(Assembler, RejectsUnknownMnemonic)
{
    EXPECT_THROW(assemble("frobnicate r1, r2\nexit\n"), FatalError);
}

TEST(Assembler, RejectsUndefinedLabel)
{
    EXPECT_THROW(assemble("bra nowhere\nexit\n"), FatalError);
}

TEST(Assembler, RejectsMissingExit)
{
    EXPECT_THROW(assemble("mov r1, 1\n"), FatalError);
}

TEST(Assembler, RejectsBadRegister)
{
    EXPECT_THROW(assemble("mov r99, 1\nexit\n"), FatalError);
}

TEST(Assembler, RejectsSetpWithoutCondition)
{
    EXPECT_THROW(assemble("setp p0, r1, r2\nexit\n"), FatalError);
}

TEST(Reconvergence, IfThenReconvergesAtJoin)
{
    // @p0 bra skip jumps over one instruction; reconvergence is the
    // branch target itself.
    const Kernel k = assemble(R"(
        setp.lt p0, r1, 4
        @p0 bra skip
        iadd r2, r2, 1
        skip:
        exit
    )");
    EXPECT_EQ(k.code[1].reconv, 3u);
}

TEST(Reconvergence, IfElseReconvergesAfterBothArms)
{
    const Kernel k = assemble(R"(
        setp.lt p0, r1, 4
        @p0 bra else_arm
        iadd r2, r2, 1
        bra join
        else_arm:
        iadd r2, r2, 2
        join:
        exit
    )");
    EXPECT_EQ(k.code[1].reconv, 5u);
}

TEST(Reconvergence, LoopBranchReconvergesAtExitBlock)
{
    const Kernel k = assemble(R"(
        loop:
        iadd r1, r1, 1
        setp.lt p0, r1, 8
        @p0 bra loop
        exit
    )");
    // Backward divergent branch: paths meet at the fall-through.
    EXPECT_EQ(k.code[2].reconv, 3u);
}

TEST(Reconvergence, NestedIfsHaveNestedReconvergence)
{
    const Kernel k = assemble(R"(
        setp.lt p0, r1, 4
        @p0 bra outer_skip
        setp.lt p1, r2, 4
        @p1 bra inner_skip
        iadd r3, r3, 1
        inner_skip:
        iadd r3, r3, 2
        outer_skip:
        exit
    )");
    EXPECT_EQ(k.code[1].reconv, 6u); // outer joins at outer_skip
    EXPECT_EQ(k.code[3].reconv, 5u); // inner joins at inner_skip
}

TEST(Builder, PcTracksEmittedInstructions)
{
    KernelBuilder b("t");
    EXPECT_EQ(b.pc(), 0u);
    b.movImm(1, 0);
    EXPECT_EQ(b.pc(), 1u);
    b.exit();
    EXPECT_EQ(b.pc(), 2u);
}

TEST(Builder, DuplicateLabelIsAnError)
{
    KernelBuilder b("t");
    b.label("x");
    EXPECT_THROW(b.label("x"), PanicError);
}

TEST(Builder, RejectsDoubleFinalize)
{
    KernelBuilder b("t");
    b.exit();
    b.finalize();
    EXPECT_THROW(b.finalize(), PanicError);
}

TEST(Disassembler, RoundTripsRepresentativeInstructions)
{
    const Kernel k = assemble(R"(
        mov r1, param0
        ld.global r2, [r1+8]
        setp.ge p0, r2, 10
        @p0 bra out
        st.local [r1], r2
        out:
        exit
    )");
    EXPECT_EQ(disassemble(k.code[0]), "mov r1, param0");
    EXPECT_EQ(disassemble(k.code[1]), "ld.global r2, [r1+8]");
    EXPECT_NE(disassemble(k.code[2]).find("setp.ge p0"),
              std::string::npos);
    EXPECT_NE(disassemble(k.code[3]).find("@p0 bra 5"),
              std::string::npos);
    EXPECT_EQ(disassemble(k.code[4]), "st.local [r1], r2");
}

TEST(Instruction, ClassificationHelpers)
{
    const Kernel k = assemble(R"(
        ld.global r1, [r2]
        st.global [r2], r1
        fadd r3, r1, r1
        bar
        exit
    )");
    EXPECT_TRUE(k.code[0].isLoad());
    EXPECT_TRUE(k.code[0].isMemory());
    EXPECT_TRUE(k.code[1].isStore());
    EXPECT_TRUE(k.code[2].isFloat());
    EXPECT_TRUE(k.code[3].isBarrier());
    EXPECT_TRUE(k.code[4].isExit());
}

} // namespace
} // namespace gpulat
