/**
 * @file
 * Clocked-component engine tests: ratio-correct domain
 * interleaving, idle fast-forward cycle-exactness, and regression
 * against the pre-engine (hand-orchestrated tick) simulator on the
 * paper's workloads.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "engine/tick_engine.hh"
#include "gpu/gpu.hh"
#include "isa/assembler.hh"
#include "latency/breakdown.hh"
#include "microbench/pchase.hh"
#include "workloads/bfs.hh"
#include "workloads/vecadd.hh"

namespace gpulat {
namespace {

// ------------------------------------------------------- ClockDomain

TEST(ClockDomain, UnityTicksEveryCycle)
{
    ClockDomain d("core", ClockRatio{1, 1});
    for (Cycle c = 0; c < 5; ++c) {
        EXPECT_EQ(d.dueTicks(c), 1u) << "cycle " << c;
        d.retire(1);
    }
    EXPECT_EQ(d.localCycles(), 5u);
}

TEST(ClockDomain, HalfRateTicksEveryOtherCycle)
{
    ClockDomain d("dram", ClockRatio{1, 2});
    std::vector<unsigned> due;
    for (Cycle c = 0; c < 6; ++c) {
        due.push_back(d.dueTicks(c));
        d.retire(due.back());
    }
    EXPECT_EQ(due, (std::vector<unsigned>{1, 0, 1, 0, 1, 0}));
}

TEST(ClockDomain, DoubleRateTicksTwicePerCycle)
{
    ClockDomain d("icnt", ClockRatio{2, 1});
    unsigned total = 0;
    for (Cycle c = 0; c < 4; ++c) {
        total += d.dueTicks(c);
        d.retire(d.dueTicks(c));
    }
    // 2x frequency: ticksThrough(c) = 2c + 1, so 7 ticks over 4
    // core cycles (a single tick at cycle 0, where every domain
    // aligns, then two per cycle).
    EXPECT_EQ(total, 7u);
}

TEST(ClockDomain, FractionalRatioKeepsLongRunRate)
{
    ClockDomain d("l2", ClockRatio{2, 3});
    unsigned total = 0;
    for (Cycle c = 0; c < 300; ++c) {
        const unsigned due = d.dueTicks(c);
        EXPECT_LE(due, 1u);
        total += due;
        d.retire(due);
    }
    // floor(299 * 2/3) + 1 ticks over 300 cycles.
    EXPECT_EQ(total, 200u);
}

TEST(ClockDomain, NextTickAlignsEventsToTheGrid)
{
    ClockDomain d("dram", ClockRatio{1, 2}); // ticks on even cycles
    d.retire(d.dueTicks(0));
    EXPECT_EQ(d.nextTickAtOrAfter(1), 2u);
    EXPECT_EQ(d.nextTickAtOrAfter(2), 2u);
    EXPECT_EQ(d.nextTickAtOrAfter(101), 102u);
    d.skipTo(101); // window [*, 101) dead: schedule caught up
    EXPECT_EQ(d.dueTicks(101), 0u);
    EXPECT_EQ(d.dueTicks(102), 1u);
}

TEST(ClockDomain, NextTickNeverOvershootsFractionalGrids)
{
    // {2,3} ticks at ceil(3k/2) = 0, 2, 3, 5, 6, 8, ...; an event
    // at 5 must land on the scheduled tick at 5, not on 6.
    ClockDomain a("l2", ClockRatio{2, 3});
    EXPECT_EQ(a.nextTickAtOrAfter(5), 5u);
    EXPECT_EQ(a.nextTickAtOrAfter(4), 5u);
    EXPECT_EQ(a.nextTickAtOrAfter(1), 2u);

    // Exhaustive cross-check against the schedule for odd ratios.
    for (const ClockRatio r :
         {ClockRatio{2, 3}, ClockRatio{3, 2}, ClockRatio{3, 7},
          ClockRatio{7, 3}}) {
        ClockDomain d("x", r);
        for (Cycle e = 0; e < 50; ++e) {
            const Cycle t = d.nextTickAtOrAfter(e);
            // t is on the grid...
            const Cycle k = ClockDomain::firstTickAtOrAfter(t, r);
            EXPECT_EQ(ClockDomain::tickCycle(k, r), t)
                << r.mul << ":" << r.div << " e=" << e;
            // ...and no scheduled tick lies in [e, t) (e >= 1 when
            // the loop runs, since e = 0 yields t = 0).
            for (Cycle c = e; c < t; ++c) {
                EXPECT_EQ(ClockDomain::ticksThrough(c, r),
                          ClockDomain::ticksThrough(c - 1, r))
                    << r.mul << ":" << r.div << " e=" << e
                    << " c=" << c;
            }
        }
    }
}

// -------------------------------------------------------- TickEngine

/** Records every tick as (name, core-cycle); never idle. */
struct RecordingComponent : Clocked
{
    RecordingComponent(std::string n,
                       std::vector<std::pair<std::string, Cycle>> *l)
        : name(std::move(n)), log(l)
    {
    }
    void tick(Cycle now) override { log->emplace_back(name, now); }
    Cycle nextEventAt(Cycle now) const override { return now; }

    std::string name;
    std::vector<std::pair<std::string, Cycle>> *log;
};

TEST(TickEngine, RatioCorrectInterleaving)
{
    std::vector<std::pair<std::string, Cycle>> log;
    TickEngine engine;
    ClockDomain &core = engine.addDomain("core", ClockRatio{1, 1});
    ClockDomain &half = engine.addDomain("half", ClockRatio{1, 2});
    ClockDomain &dbl = engine.addDomain("dbl", ClockRatio{2, 1});

    RecordingComponent a("A", &log);
    RecordingComponent h("H", &log);
    RecordingComponent d("D", &log);
    engine.add(core, a);
    engine.add(half, h);
    engine.add(dbl, d);

    for (int i = 0; i < 4; ++i)
        engine.step();

    // Registration order within a cycle; due counts per ratio.
    const std::vector<std::pair<std::string, Cycle>> expected{
        {"A", 0}, {"H", 0}, {"D", 0},           // all domains align
        {"A", 1}, {"D", 1}, {"D", 1},           // dbl owes two
        {"A", 2}, {"H", 2}, {"D", 2}, {"D", 2}, // half on evens
        {"A", 3}, {"D", 3}, {"D", 3},
    };
    EXPECT_EQ(log, expected);

    unsigned a_ticks = 0;
    unsigned h_ticks = 0;
    unsigned d_ticks = 0;
    for (const auto &[name, cycle] : log) {
        a_ticks += name == "A";
        h_ticks += name == "H";
        d_ticks += name == "D";
    }
    EXPECT_EQ(a_ticks, 4u);
    EXPECT_EQ(h_ticks, 2u); // half rate
    EXPECT_EQ(d_ticks, 7u); // double rate (1 + 2 + 2 + 2)
}

/** Idle until a fixed wake cycle; logs fast-forward windows. */
struct SleepyComponent : Clocked
{
    explicit SleepyComponent(Cycle w) : wake(w) {}
    void
    tick(Cycle now) override
    {
        if (now >= wake)
            ++ticksAwake;
    }
    Cycle
    nextEventAt(Cycle now) const override
    {
        return std::max(now, wake);
    }
    void
    fastForward(Cycle from, Cycle to) override
    {
        windows.emplace_back(from, to);
    }

    Cycle wake;
    unsigned ticksAwake = 0;
    std::vector<std::pair<Cycle, Cycle>> windows;
};

TEST(TickEngine, FastForwardJumpsToNextEvent)
{
    TickEngine engine;
    ClockDomain &core = engine.addDomain("core", ClockRatio{1, 1});
    SleepyComponent sleepy(100);
    engine.add(core, sleepy);

    engine.step(); // tick at cycle 0 (asleep)
    EXPECT_EQ(engine.fastForward(), 99u);
    EXPECT_EQ(engine.now(), 100u);
    ASSERT_EQ(sleepy.windows.size(), 1u);
    EXPECT_EQ(sleepy.windows[0], std::make_pair(Cycle{1}, Cycle{100}));

    engine.step();
    EXPECT_EQ(sleepy.ticksAwake, 1u);
    EXPECT_EQ(engine.skippedCycles(), 99u);
    EXPECT_EQ(engine.fastForwardWindows(), 1u);
}

TEST(TickEngine, FastForwardAlignsToDomainGrid)
{
    TickEngine engine;
    ClockDomain &half = engine.addDomain("half", ClockRatio{1, 2});
    SleepyComponent sleepy(101); // odd: half domain ticks on evens
    engine.add(half, sleepy);

    engine.step();
    EXPECT_GT(engine.fastForward(), 0u);
    EXPECT_EQ(engine.now(), 102u); // first even cycle >= 101
    engine.step();
    EXPECT_EQ(sleepy.ticksAwake, 1u);
}

TEST(TickEngine, ActiveComponentBlocksFastForward)
{
    TickEngine engine;
    ClockDomain &core = engine.addDomain("core", ClockRatio{1, 1});
    std::vector<std::pair<std::string, Cycle>> log;
    RecordingComponent busy("B", &log);
    SleepyComponent sleepy(100);
    engine.add(core, busy);
    engine.add(core, sleepy);

    engine.step();
    EXPECT_EQ(engine.fastForward(), 0u);
    EXPECT_EQ(engine.now(), 1u);
}

// ---------------------------------------- per-domain event stepping

/**
 * Counts ticks and promise consultations, and asserts the event
 * cache's regression contract: the promise is never consulted
 * twice without an intervening tick (of this component — no wake
 * edges point at it in these tests).
 */
struct CountingComponent : Clocked
{
    explicit CountingComponent(Cycle w) : wake(w) {}

    void
    tick(Cycle now) override
    {
        ++ticks;
        tickedSinceQuery = true;
        if (now >= wake)
            ++ticksAwake;
    }

    Cycle
    nextEventAt(Cycle now) const override
    {
        EXPECT_TRUE(tickedSinceQuery)
            << "promise consulted twice without an intervening tick";
        tickedSinceQuery = false;
        ++queries;
        return std::max(now, wake);
    }

    Cycle wake;
    unsigned ticks = 0;
    unsigned ticksAwake = 0;
    mutable unsigned queries = 0;
    mutable bool tickedSinceQuery = true;
};

TEST(TickEngine, PerDomainSleepsComponentsIndependently)
{
    // One always-busy component pins the engine to per-cycle
    // stepping; the sleeper must not be ticked (or its promise
    // re-consulted) until its own event comes due.
    TickEngine engine;
    engine.setMode(IdleFastForward::PerDomain);
    ClockDomain &core = engine.addDomain("core", ClockRatio{1, 1});
    CountingComponent busy(0);    // wake 0: active every cycle
    CountingComponent sleepy(50);
    engine.add(core, busy);
    engine.add(core, sleepy);

    while (engine.now() < 50) {
        engine.step();
        engine.fastForward();
    }
    // The busy component blocked every jump...
    EXPECT_EQ(engine.skippedCycles(), 0u);
    EXPECT_EQ(busy.ticks, 50u);
    // ...while the sleeper was ticked once (cycle 0, to obtain its
    // first promise) and its promise consulted exactly once.
    EXPECT_EQ(sleepy.ticks, 1u);
    EXPECT_EQ(sleepy.queries, 1u);

    engine.step();
    EXPECT_EQ(sleepy.ticks, 2u);
    EXPECT_EQ(sleepy.ticksAwake, 1u); // woke exactly on cycle 50
    EXPECT_EQ(sleepy.queries, 2u);    // re-queried after its tick
}

TEST(TickEngine, PerDomainAccountsSleptWindowsLazily)
{
    TickEngine engine;
    engine.setMode(IdleFastForward::PerDomain);
    ClockDomain &core = engine.addDomain("core", ClockRatio{1, 1});
    ClockDomain &half = engine.addDomain("half", ClockRatio{1, 2});
    CountingComponent busy(0);
    SleepyComponent sleepy(101); // half grid: due tick at 102
    engine.add(core, busy);
    engine.add(half, sleepy);

    while (engine.now() < 102) {
        engine.step();
        engine.fastForward();
    }
    engine.settle();

    // Slept windows cover exactly the schedule between the tick at
    // cycle 0 and the wake at 102 — 50 half-rate ticks — and the
    // per-domain counters agree.
    Cycle accounted = 0;
    for (const auto &[from, to] : sleepy.windows)
        accounted += ClockDomain::ticksThrough(to - 1, {1, 2}) -
            ClockDomain::ticksThrough(from - 1, {1, 2});
    EXPECT_EQ(accounted, 50u);
    EXPECT_EQ(half.componentTicksSkipped(), 50u);
    EXPECT_EQ(half.componentTicksRun() + half.componentTicksSkipped(),
              half.localCycles());
    EXPECT_EQ(core.componentTicksSkipped(), 0u);
}

/** Sleeps until an event another component delivers. */
struct PokeTarget : Clocked
{
    void
    tick(Cycle now) override
    {
        if (pending != kNoCycle && now >= pending) {
            ++work;
            pending = kNoCycle;
        }
    }
    Cycle
    nextEventAt(Cycle now) const override
    {
        return pending == kNoCycle ? kNoCycle
                                   : std::max(now, pending);
    }

    Cycle pending = kNoCycle;
    unsigned work = 0;
};

/** Delivers a future event into a PokeTarget at a fixed cycle. */
struct Poker : Clocked
{
    Poker(PokeTarget *t, Cycle w) : target(t), when(w) {}
    void
    tick(Cycle now) override
    {
        if (!done && now >= when) {
            target->pending = now + 7;
            done = true;
        }
    }
    Cycle
    nextEventAt(Cycle now) const override
    {
        return done ? kNoCycle : std::max(now, when);
    }

    PokeTarget *target;
    Cycle when;
    bool done = false;
};

TEST(TickEngine, WakeEdgeRevealsDeliveredEvents)
{
    // Event-scheduled stepping end to end: the engine must visit
    // only cycles 0 (initial promises), 5 (the poke) and 12 (the
    // delivered event), jumping every dead window in between.
    TickEngine engine;
    engine.setMode(IdleFastForward::PerDomain);
    ClockDomain &core = engine.addDomain("core", ClockRatio{1, 1});
    PokeTarget target;
    Poker poker(&target, 5);
    engine.add(core, target);
    engine.add(core, poker);
    engine.link(poker, target);

    while (engine.now() < 13 && engine.steps() < 64) {
        engine.step();
        engine.fastForward();
    }
    EXPECT_EQ(target.work, 1u);
    EXPECT_EQ(engine.steps(), 3u);
    EXPECT_EQ(engine.now(), 13u);
    EXPECT_EQ(engine.skippedCycles(), 10u); // [1,5) and [6,12)
}

// ------------------------------------- drained-engine fast-forward

TEST(TickEngine, FastForwardOnDrainedEngineReturnsZero)
{
    // Every promise kNoCycle: there is no event to aim at, so
    // fastForward() must return 0 instead of doing arithmetic on
    // kNoCycle (which would overflow the tick-grid math).
    TickEngine engine;
    engine.setMode(IdleFastForward::PerDomain);
    ClockDomain &core = engine.addDomain("core", ClockRatio{1, 1});
    ClockDomain &dram = engine.addDomain("dram", ClockRatio{1, 3});
    PokeTarget drained_a; // promises kNoCycle while nothing pending
    PokeTarget drained_b;
    engine.add(core, drained_a);
    engine.add(dram, drained_b);

    engine.step(); // obtain the (drained) promises
    const Cycle before = engine.now();
    EXPECT_EQ(engine.fastForward(), 0u);
    EXPECT_EQ(engine.fastForward(), 0u);
    EXPECT_EQ(engine.now(), before);
    EXPECT_EQ(engine.skippedCycles(), 0u);

    // Same in Full mode, which re-queries promises fresh.
    TickEngine full;
    full.setMode(IdleFastForward::Full);
    ClockDomain &fcore = full.addDomain("core", ClockRatio{1, 1});
    PokeTarget drained_c;
    full.add(fcore, drained_c);
    full.step();
    EXPECT_EQ(full.fastForward(), 0u);
}

TEST(TickEngine, FastForwardSaturatesOverflowingPromises)
{
    // A promise one off from kNoCycle on a {1,3} grid rounds up to
    // a tick at exactly 2^64, which used to wrap to 0 and propose
    // a *past* jump target; the saturating grid math must read it
    // as "never" so the other component's real event still wins.
    struct HugePromise : Clocked
    {
        void tick(Cycle) override {}
        Cycle
        nextEventAt(Cycle) const override
        {
            return kNoCycle - 1;
        }
    };
    TickEngine engine;
    engine.setMode(IdleFastForward::PerDomain);
    ClockDomain &slow = engine.addDomain("slow", ClockRatio{1, 3});
    ClockDomain &core = engine.addDomain("core", ClockRatio{1, 1});
    HugePromise huge;
    SleepyComponent sleepy(100);
    engine.add(slow, huge);
    engine.add(core, sleepy);

    engine.step();
    EXPECT_GT(engine.fastForward(), 0u);
    EXPECT_EQ(engine.now(), 100u);

    // Fast grids are the other overflow shape: the saturated tick
    // index must not be divided back into a finite bogus target
    // (tickCycle(kNoCycle, {2,1}) would read as 2^63, jumping the
    // engine half the representable timeline).
    TickEngine fast_engine;
    fast_engine.setMode(IdleFastForward::PerDomain);
    ClockDomain &fast =
        fast_engine.addDomain("fast", ClockRatio{2, 1});
    ClockDomain &fcore =
        fast_engine.addDomain("core", ClockRatio{1, 1});
    HugePromise huge2;
    SleepyComponent sleepy2(100);
    fast_engine.add(fast, huge2);
    fast_engine.add(fcore, sleepy2);

    fast_engine.step();
    EXPECT_GT(fast_engine.fastForward(), 0u);
    EXPECT_EQ(fast_engine.now(), 100u);
    EXPECT_EQ(ClockDomain::tickCycle(kNoCycle, ClockRatio{2, 1}),
              kNoCycle);
}

// --------------------------------------- parallel tick-group units

TEST(TickEngine, ResolveTickJobsClampsToOne)
{
    // hardware_concurrency() may return 0 ("unknown"); a zero
    // worker count must mean serial, never none.
    EXPECT_GE(TickEngine::resolveTickJobs(0), 1u);
    EXPECT_EQ(TickEngine::resolveTickJobs(1), 1u);
    EXPECT_EQ(TickEngine::resolveTickJobs(7), 7u);

    TickEngine engine;
    engine.setTickJobs(0);
    EXPECT_GE(engine.tickJobs(), 1u);
    engine.setTickJobs(3);
    EXPECT_EQ(engine.tickJobs(), 3u);
}

/** Ticks into component-private state only (group-parallel safe). */
struct PrivateLogComponent : Clocked
{
    void tick(Cycle now) override { log.push_back(now); }
    Cycle nextEventAt(Cycle now) const override { return now; }
    std::vector<Cycle> log;
};

TEST(TickEngine, TickGroupsMatchSerialTicking)
{
    // Two non-coordinator groups plus coordinator components, run
    // serially and with a worker pool: every component must see
    // exactly the same tick sequence, and the per-group counters
    // must agree (they are mirrored into experiment records, so
    // they may not depend on the execution mode).
    auto run = [](std::size_t tick_jobs) {
        TickEngine engine;
        engine.setMode(IdleFastForward::PerDomain);
        engine.setTickJobs(tick_jobs);
        ClockDomain &core =
            engine.addDomain("core", ClockRatio{1, 1});
        ClockDomain &half =
            engine.addDomain("half", ClockRatio{1, 2});
        const unsigned g1 = engine.addGroup("g1");
        const unsigned g2 = engine.addGroup("g2");

        PrivateLogComponent hub; // coordinator barrier
        PrivateLogComponent a1;
        PrivateLogComponent a2;
        PrivateLogComponent b1;
        engine.add(core, hub);
        engine.add(core, a1, g1);
        engine.add(half, a2, g1);
        engine.add(core, b1, g2);

        for (int i = 0; i < 32; ++i)
            engine.step();

        std::vector<std::vector<Cycle>> logs{hub.log, a1.log,
                                             a2.log, b1.log};
        std::vector<std::uint64_t> ticks;
        for (unsigned g = 0; g < engine.numGroups(); ++g)
            ticks.push_back(engine.groupTicksRun(g));
        return std::make_pair(logs, ticks);
    };

    const auto serial = run(1);
    const auto parallel = run(4);
    EXPECT_EQ(serial.first, parallel.first);
    EXPECT_EQ(serial.second, parallel.second);
    EXPECT_EQ(serial.second[1], 48u); // g1: 32 core + 16 half ticks
    EXPECT_EQ(serial.second[2], 32u); // g2
}

/** Appends to a log shared with other components: only safe when
 *  the engine serializes every appender on one thread. */
struct SharedLogComponent : Clocked
{
    SharedLogComponent(int n, std::vector<int> *l) : id(n), log(l) {}
    void tick(Cycle) override { log->push_back(id); }
    Cycle nextEventAt(Cycle now) const override { return now; }
    int id;
    std::vector<int> *log;
};

TEST(TickEngine, CrossGroupEdgeDemotesBothEndpointsToCoordinator)
{
    // A wake edge between two different non-zero groups means the
    // endpoints interact, so the engine must tick them in
    // registration order on the coordinating thread — the shared
    // log would race (and interleave nondeterministically) if
    // either endpoint kept running on the pool. A third,
    // independent group stays parallel-eligible alongside.
    TickEngine engine;
    engine.setMode(IdleFastForward::PerDomain);
    engine.setTickJobs(4);
    ClockDomain &core = engine.addDomain("core", ClockRatio{1, 1});
    const unsigned g1 = engine.addGroup("g1");
    const unsigned g2 = engine.addGroup("g2");
    const unsigned g3 = engine.addGroup("g3");

    std::vector<int> shared_log;
    SharedLogComponent a(1, &shared_log);
    SharedLogComponent b(2, &shared_log);
    PrivateLogComponent c;
    PrivateLogComponent d;
    engine.add(core, a, g1);
    engine.add(core, b, g2);
    engine.add(core, c, g3);
    engine.add(core, d, g1); // same group as a: stays ordered too
    engine.link(a, b); // cross-group edge: demotes a and b

    const int cycles = 64;
    for (int i = 0; i < cycles; ++i)
        engine.step();

    ASSERT_EQ(shared_log.size(),
              static_cast<std::size_t>(2 * cycles));
    for (int i = 0; i < cycles; ++i) {
        EXPECT_EQ(shared_log[2 * i], 1) << i;     // registration
        EXPECT_EQ(shared_log[2 * i + 1], 2) << i; // order, per cycle
    }
    EXPECT_EQ(c.log.size(), static_cast<std::size_t>(cycles));
    EXPECT_EQ(d.log.size(), static_cast<std::size_t>(cycles));
}

// ------------------------------------------- cycle-exact equivalence

/** Small config so tests are fast but still multi-SM/partition. */
GpuConfig
smallGF106()
{
    GpuConfig cfg = makeGF106();
    cfg.numSms = 2;
    cfg.numPartitions = 2;
    cfg.deviceMemBytes = 32 * 1024 * 1024;
    return cfg;
}

struct RunCapture
{
    bool correct = false;
    Cycle cycles = 0;
    std::uint64_t instructions = 0;
    std::vector<LatencyTrace> traces;
    std::vector<ExposureRecord> exposure;
    std::uint64_t idleCycles = 0;
    Cycle skipped = 0;
    std::uint64_t steps = 0;
    Cycle endCycle = 0;
    /** Every simulation counter. The engine.* skip-effectiveness
     *  meta counters are excluded: they measure how much simulator
     *  work each mode avoided, so they differ across modes by
     *  design while everything the simulation *models* must not. */
    std::map<std::string, std::uint64_t> counters;
    std::uint64_t compSkipped = 0;
};

RunCapture
runWorkload(Workload &wl, GpuConfig cfg)
{
    Gpu gpu(std::move(cfg));
    const WorkloadResult r = wl.run(gpu);
    RunCapture cap;
    cap.correct = r.correct;
    cap.cycles = r.cycles;
    cap.instructions = r.instructions;
    cap.traces = gpu.latencies().traces();
    cap.exposure = gpu.exposure().records();
    for (unsigned s = 0; s < gpu.config().numSms; ++s)
        cap.idleCycles += gpu.stats().counterValue(
            "sm" + std::to_string(s) + ".idle_cycles");
    cap.skipped = gpu.engine().skippedCycles();
    cap.steps = gpu.engine().steps();
    cap.endCycle = gpu.now();
    for (const auto &[name, counter] : gpu.stats().counters()) {
        (void)counter;
        if (name.rfind("engine.", 0) == 0)
            continue;
        cap.counters[name] = gpu.stats().counterValue(name);
    }
    cap.compSkipped = gpu.engine().componentTicksSkipped();
    return cap;
}

void
expectIdenticalTraces(const std::vector<LatencyTrace> &a,
                      const std::vector<LatencyTrace> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].issue, b[i].issue) << i;
        EXPECT_EQ(a[i].l1Access, b[i].l1Access) << i;
        EXPECT_EQ(a[i].icntInject, b[i].icntInject) << i;
        EXPECT_EQ(a[i].ropEnq, b[i].ropEnq) << i;
        EXPECT_EQ(a[i].l2Enq, b[i].l2Enq) << i;
        EXPECT_EQ(a[i].l2Done, b[i].l2Done) << i;
        EXPECT_EQ(a[i].dramEnq, b[i].dramEnq) << i;
        EXPECT_EQ(a[i].dramSched, b[i].dramSched) << i;
        EXPECT_EQ(a[i].dramData, b[i].dramData) << i;
        EXPECT_EQ(a[i].complete, b[i].complete) << i;
        EXPECT_EQ(a[i].hitLevel, b[i].hitLevel) << i;
    }
}

void
expectIdenticalRuns(const RunCapture &a, const RunCapture &b)
{
    EXPECT_TRUE(a.correct);
    EXPECT_TRUE(b.correct);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.idleCycles, b.idleCycles);
    expectIdenticalTraces(a.traces, b.traces);
    ASSERT_EQ(a.exposure.size(), b.exposure.size());
    for (std::size_t i = 0; i < a.exposure.size(); ++i) {
        EXPECT_EQ(a.exposure[i].total, b.exposure[i].total) << i;
        EXPECT_EQ(a.exposure[i].exposed, b.exposure[i].exposed) << i;
    }
    EXPECT_EQ(a.counters, b.counters);
}

TEST(Engine, FastForwardIsCycleExactOnVecAdd)
{
    VecAdd::Options o;
    o.n = 1 << 12;
    VecAdd wl_ff(o);
    VecAdd wl_naive(o);

    GpuConfig on = smallGF106();
    on.idleFastForward = IdleFastForward::Full;
    GpuConfig off = smallGF106();
    off.idleFastForward = IdleFastForward::Off;

    const RunCapture ff = runWorkload(wl_ff, on);
    const RunCapture naive = runWorkload(wl_naive, off);

    EXPECT_TRUE(ff.correct);
    EXPECT_TRUE(naive.correct);
    EXPECT_EQ(ff.cycles, naive.cycles);
    EXPECT_EQ(ff.instructions, naive.instructions);
    EXPECT_EQ(ff.idleCycles, naive.idleCycles);
    expectIdenticalTraces(ff.traces, naive.traces);
    ASSERT_EQ(ff.exposure.size(), naive.exposure.size());
    for (std::size_t i = 0; i < ff.exposure.size(); ++i) {
        EXPECT_EQ(ff.exposure[i].total, naive.exposure[i].total) << i;
        EXPECT_EQ(ff.exposure[i].exposed, naive.exposure[i].exposed)
            << i;
    }

    // Fast-forward actually skipped work: fewer loop steps, and
    // steps + skipped add up to the simulated timeline.
    EXPECT_GT(ff.skipped, 0u);
    EXPECT_LT(ff.steps, naive.steps);
    EXPECT_EQ(ff.steps + ff.skipped, ff.endCycle);
    EXPECT_EQ(naive.skipped, 0u);
}

TEST(Engine, FastForwardIsCycleExactOnBfs)
{
    Bfs::Options o;
    o.kind = Bfs::GraphKind::Rmat;
    o.scale = 10;
    o.degree = 8;
    Bfs wl_ff(o);
    Bfs wl_naive(o);

    GpuConfig on = smallGF106();
    on.idleFastForward = IdleFastForward::Full;
    GpuConfig off = smallGF106();
    off.idleFastForward = IdleFastForward::Off;

    const RunCapture ff = runWorkload(wl_ff, on);
    const RunCapture naive = runWorkload(wl_naive, off);

    EXPECT_TRUE(ff.correct);
    EXPECT_TRUE(naive.correct);
    EXPECT_EQ(ff.cycles, naive.cycles);
    EXPECT_EQ(ff.idleCycles, naive.idleCycles);
    expectIdenticalTraces(ff.traces, naive.traces);
    EXPECT_GT(ff.skipped, 0u);
}

// --------------------------------------- pre-refactor golden numbers

// Captured from the seed simulator (hand-orchestrated Gpu::tick(),
// commit c180f0e) with this exact config and workload. The engine
// at default 1:1:1:1 ratios must reproduce them bit-for-bit.

TEST(Engine, SeedRegressionVecAddGF106)
{
    VecAdd::Options o;
    o.n = 1 << 12;
    VecAdd wl(o);
    const RunCapture cap = runWorkload(wl, smallGF106());

    EXPECT_TRUE(cap.correct);
    EXPECT_EQ(cap.cycles, 15490u);
    EXPECT_EQ(cap.instructions, 2432u);
    EXPECT_EQ(cap.traces.size(), 512u);
    EXPECT_EQ(cap.exposure.size(), 256u);
    EXPECT_EQ(cap.idleCycles, 26058u);

    const Breakdown bd = computeBreakdown(cap.traces, 16);
    const std::array<std::uint64_t, kNumStages> expected{
        260804, 4328, 20489, 12288, 18316, 402617, 314406, 21523};
    EXPECT_EQ(bd.totalByStage, expected);
}

TEST(Engine, SeedRegressionBfsGF106)
{
    Bfs::Options o;
    o.kind = Bfs::GraphKind::Rmat;
    o.scale = 10;
    o.degree = 8;
    Bfs wl(o);
    const RunCapture cap = runWorkload(wl, smallGF106());

    EXPECT_TRUE(cap.correct);
    EXPECT_EQ(cap.cycles, 146849u);
    EXPECT_EQ(cap.instructions, 29515u);
    EXPECT_EQ(cap.traces.size(), 11484u);
    EXPECT_EQ(cap.exposure.size(), 4220u);
    EXPECT_EQ(cap.idleCycles, 174744u);

    const Breakdown bd = computeBreakdown(cap.traces, 16);
    const std::array<std::uint64_t, kNumStages> expected{
        729071, 10826, 55102, 33024, 191599, 100083, 306492, 58052};
    EXPECT_EQ(bd.totalByStage, expected);
}

TEST(Engine, SeedRegressionVecAddGK104)
{
    VecAdd::Options o;
    o.n = 1 << 12;
    VecAdd wl(o);
    const RunCapture cap = runWorkload(wl, makeGK104());

    EXPECT_TRUE(cap.correct);
    EXPECT_EQ(cap.cycles, 1982u);
    EXPECT_EQ(cap.instructions, 2432u);
    EXPECT_EQ(cap.traces.size(), 512u);
    EXPECT_EQ(cap.idleCycles, 11251u);

    const Breakdown bd = computeBreakdown(cap.traces, 16);
    const std::array<std::uint64_t, kNumStages> expected{
        22208, 32567, 42568, 26798, 157791, 50632, 104936, 13374};
    EXPECT_EQ(bd.totalByStage, expected);
}

// ----------------------------------- three-mode equivalence goldens

/** Run one fresh workload instance under a given policy. */
template <typename WorkloadT, typename Options>
RunCapture
runMode(const Options &options, GpuConfig cfg, IdleFastForward mode)
{
    WorkloadT wl(options);
    cfg.idleFastForward = mode;
    return runWorkload(wl, std::move(cfg));
}

TEST(Engine, PerDomainMatchesFullAndOffOnVecAdd)
{
    VecAdd::Options o;
    o.n = 1 << 12;
    const RunCapture off = runMode<VecAdd>(o, smallGF106(),
                                           IdleFastForward::Off);
    const RunCapture full = runMode<VecAdd>(o, smallGF106(),
                                            IdleFastForward::Full);
    const RunCapture per = runMode<VecAdd>(
        o, smallGF106(), IdleFastForward::PerDomain);

    expectIdenticalRuns(off, full);
    expectIdenticalRuns(off, per);
    EXPECT_EQ(off.compSkipped, 0u);
    EXPECT_GT(per.compSkipped, full.compSkipped);
}

TEST(Engine, PerDomainMatchesUnderNonUnityRatios)
{
    // A 1 : 2 : 1 : 1/3 core:icnt:l2:dram machine — double-rate
    // icnt exercises multi-tick cycles, the slow DRAM grid
    // exercises skipped-window alignment on a sparse schedule.
    GpuConfig cfg = smallGF106();
    cfg.icntClock = ClockRatio{2, 1};
    cfg.dramClock = ClockRatio{1, 3};

    Bfs::Options o;
    o.kind = Bfs::GraphKind::Rmat;
    o.scale = 9;
    o.degree = 8;
    const RunCapture off = runMode<Bfs>(o, cfg, IdleFastForward::Off);
    const RunCapture full =
        runMode<Bfs>(o, cfg, IdleFastForward::Full);
    const RunCapture per =
        runMode<Bfs>(o, cfg, IdleFastForward::PerDomain);

    expectIdenticalRuns(off, full);
    expectIdenticalRuns(off, per);
    EXPECT_GT(per.compSkipped, full.compSkipped);
}

TEST(Engine, PerDomainMatchesOnPchaseLadderAndSkipsMore)
{
    // The Table-I style idle-latency ladder: one footprint per
    // cache level. Latency-bound single-warp chases are where
    // per-domain skipping must shine — every level must be
    // cycle/counter-identical across modes, and the per-domain
    // stepper must provably skip more component ticks than the
    // all-idle-only policy.
    std::uint64_t full_skipped = 0;
    std::uint64_t per_skipped = 0;
    for (const std::uint64_t footprint :
         {std::uint64_t{16} * 1024, std::uint64_t{256} * 1024,
          std::uint64_t{4} * 1024 * 1024}) {
        std::map<IdleFastForward, Cycle> cycles;
        std::map<IdleFastForward, std::uint64_t> skipped;
        for (const IdleFastForward mode :
             {IdleFastForward::Off, IdleFastForward::Full,
              IdleFastForward::PerDomain}) {
            GpuConfig cfg = smallGF106();
            cfg.idleFastForward = mode;
            Gpu gpu(std::move(cfg));
            PChaseConfig pc;
            pc.space = MemSpace::Global;
            pc.footprintBytes = footprint;
            pc.strideBytes = 512;
            pc.timedAccesses = 128;
            const PChaseResult r = runPointerChase(gpu, pc);
            cycles[mode] = r.timedCycles;
            skipped[mode] = gpu.engine().componentTicksSkipped();
        }
        EXPECT_EQ(cycles[IdleFastForward::Off],
                  cycles[IdleFastForward::Full])
            << footprint;
        EXPECT_EQ(cycles[IdleFastForward::Off],
                  cycles[IdleFastForward::PerDomain])
            << footprint;
        EXPECT_GT(skipped[IdleFastForward::PerDomain],
                  skipped[IdleFastForward::Full])
            << footprint;
        full_skipped += skipped[IdleFastForward::Full];
        per_skipped += skipped[IdleFastForward::PerDomain];
    }
    EXPECT_GT(per_skipped, full_skipped);
}

// --------------------------------- intra-sim parallel tick goldens

TEST(Engine, ParallelTickingMatchesSerialOnVecAdd)
{
    VecAdd::Options o;
    o.n = 1 << 12;
    GpuConfig serial_cfg = smallGF106();
    GpuConfig par_cfg = smallGF106();
    par_cfg.engine.tickJobs = 4;

    VecAdd wl_serial(o);
    VecAdd wl_par(o);
    const RunCapture serial = runWorkload(wl_serial, serial_cfg);
    const RunCapture parallel = runWorkload(wl_par, par_cfg);
    expectIdenticalRuns(serial, parallel);
}

TEST(Engine, ParallelTickingMatchesSerialOnBfsNonUnityRatios)
{
    // Worker-parallel partition ticking composed with multi-rate
    // grids and per-domain sleeping — the full stack at once.
    GpuConfig cfg = smallGF106();
    cfg.numPartitions = 4;
    cfg.icntClock = ClockRatio{2, 1};
    cfg.l2Clock = ClockRatio{2, 3};
    cfg.dramClock = ClockRatio{1, 3};

    Bfs::Options o;
    o.kind = Bfs::GraphKind::Rmat;
    o.scale = 9;
    o.degree = 8;

    for (const IdleFastForward mode :
         {IdleFastForward::Off, IdleFastForward::PerDomain}) {
        GpuConfig serial_cfg = cfg;
        serial_cfg.idleFastForward = mode;
        GpuConfig par_cfg = serial_cfg;
        par_cfg.engine.tickJobs = 4;

        Bfs wl_serial(o);
        Bfs wl_par(o);
        const RunCapture serial = runWorkload(wl_serial, serial_cfg);
        const RunCapture parallel = runWorkload(wl_par, par_cfg);
        expectIdenticalRuns(serial, parallel);
    }
}

TEST(Engine, ParallelTickingMatchesOnPchaseLadder)
{
    // The Table-I style idle-latency ladder must be bit-identical
    // under worker-parallel ticking: latency-bound single-warp
    // chases are where a reordered partition tick would shift a
    // measured cycle immediately.
    for (const std::uint64_t footprint :
         {std::uint64_t{16} * 1024, std::uint64_t{4} * 1024 * 1024}) {
        std::map<std::size_t, Cycle> cycles;
        for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
            GpuConfig cfg = smallGF106();
            cfg.engine.tickJobs = jobs;
            Gpu gpu(std::move(cfg));
            PChaseConfig pc;
            pc.space = MemSpace::Global;
            pc.footprintBytes = footprint;
            pc.strideBytes = 512;
            pc.timedAccesses = 128;
            cycles[jobs] = runPointerChase(gpu, pc).timedCycles;
        }
        EXPECT_EQ(cycles[1], cycles[4]) << footprint;
    }
}

// -------------------------------------------------- non-unity ratios

/**
 * Idle DRAM-resident pointer-chase latency under a config: a single
 * warp chasing dependent pointers cannot hide any latency, so a
 * slower domain on the fetch path must strictly cost cycles (loaded
 * throughput workloads can react non-monotonically — a slower DRAM
 * cadence deepens the queue FR-FCFS reorders over, which can *help*).
 */
Cycle
chaseLatency(GpuConfig cfg)
{
    Gpu gpu(std::move(cfg));
    PChaseConfig pc;
    pc.space = MemSpace::Global;
    pc.footprintBytes = 2 * 1024 * 1024; // >> total L2: DRAM-resident
    pc.strideBytes = 512;
    pc.timedAccesses = 128;
    const PChaseResult r = runPointerChase(gpu, pc);
    return r.timedCycles;
}

TEST(Engine, SlowerDramClockRaisesChaseLatency)
{
    const Cycle base = chaseLatency(smallGF106());
    GpuConfig slow = smallGF106();
    slow.dramClock = ClockRatio{1, 2};
    EXPECT_GT(chaseLatency(slow), base);
}

TEST(Engine, SlowerIcntClockRaisesChaseLatency)
{
    const Cycle base = chaseLatency(smallGF106());
    GpuConfig slow = smallGF106();
    slow.icntClock = ClockRatio{1, 2};
    EXPECT_GT(chaseLatency(slow), base);
}

TEST(Engine, MultiRateIsDeterministic)
{
    auto run = [] {
        GpuConfig cfg = smallGF106();
        cfg.icntClock = ClockRatio{1, 2};
        cfg.l2Clock = ClockRatio{2, 3};
        cfg.dramClock = ClockRatio{1, 3};
        Bfs::Options o;
        o.kind = Bfs::GraphKind::Rmat;
        o.scale = 9;
        Bfs wl(o);
        const RunCapture cap = runWorkload(wl, cfg);
        EXPECT_TRUE(cap.correct);
        return cap.cycles;
    };
    EXPECT_EQ(run(), run());
}

TEST(Engine, MultiRateFastForwardStaysCycleExact)
{
    Bfs::Options o;
    o.kind = Bfs::GraphKind::Rmat;
    o.scale = 9;

    // Fractional ratios (mul > 1 and div > 1) exercise the
    // irregular tick grids where naive event alignment once
    // overshot scheduled ticks.
    GpuConfig on = smallGF106();
    on.icntClock = ClockRatio{1, 2};
    on.l2Clock = ClockRatio{2, 3};
    on.dramClock = ClockRatio{3, 7};
    GpuConfig off = on;
    off.idleFastForward = IdleFastForward::Off;

    Bfs wl_ff(o);
    Bfs wl_naive(o);
    const RunCapture ff = runWorkload(wl_ff, on);
    const RunCapture naive = runWorkload(wl_naive, off);

    EXPECT_TRUE(ff.correct);
    EXPECT_EQ(ff.cycles, naive.cycles);
    expectIdenticalTraces(ff.traces, naive.traces);
    EXPECT_GT(ff.skipped, 0u);
}

TEST(Engine, RejectsDegenerateRatios)
{
    // Every domain knob, both degenerate shapes: the icnt ratio in
    // particular is consumed in the Gpu member-initializer list, so
    // validation must fire before any arithmetic touches it.
    for (auto knob : {&GpuConfig::icntClock, &GpuConfig::l2Clock,
                      &GpuConfig::dramClock}) {
        for (const ClockRatio bad :
             {ClockRatio{0, 1}, ClockRatio{1, 0}, ClockRatio{1, 65},
              ClockRatio{65, 1}}) {
            GpuConfig cfg = smallGF106();
            cfg.*knob = bad;
            EXPECT_THROW(Gpu{cfg}, FatalError)
                << bad.mul << ":" << bad.div;
        }
    }
}

// ------------------------------------------------- experiment reset

TEST(Engine, ExperimentResetClearsCollectorsAndEpochs)
{
    Gpu gpu(smallGF106());
    const Kernel k = assemble(R"(
        s2r r0, tid
        shl r1, r0, 3
        mov r2, param0
        iadd r2, r2, r1
        ld.global r3, [r2]
        iadd r3, r3, 1
        st.global [r2], r3
        exit
    )");
    const Addr buf = gpu.alloc(256 * 8);
    gpu.launch(k, 2, 128, {buf});

    EXPECT_GT(gpu.latencies().count(), 0u);
    EXPECT_GT(gpu.exposure().count(), 0u);
    EXPECT_GT(gpu.stats().counterValue("sm0.issued"), 0u);

    gpu.invalidateCaches();

    EXPECT_EQ(gpu.latencies().count(), 0u);
    EXPECT_EQ(gpu.exposure().count(), 0u);
    // Monotonic counters keep their totals; the epoch view resets.
    EXPECT_GT(gpu.stats().counterValue("sm0.issued"), 0u);
    EXPECT_EQ(gpu.stats().counterSinceEpoch("sm0.issued"), 0u);

    const LaunchResult second = gpu.launch(k, 2, 128, {buf});
    EXPECT_GT(gpu.latencies().count(), 0u);
    std::uint64_t issued_epoch = 0;
    for (unsigned s = 0; s < gpu.config().numSms; ++s)
        issued_epoch += gpu.stats().counterSinceEpoch(
            "sm" + std::to_string(s) + ".issued");
    EXPECT_EQ(issued_epoch, second.instructions);
}

} // namespace
} // namespace gpulat
