/**
 * @file
 * Whole-GPU tests for the memory-fidelity axes: the ddr DRAM model
 * must be deterministic across engine execution knobs (fast-forward
 * modes, tick jobs, SM grouping), the default simple model must be
 * unaffected by the new knobs' defaults, and the new counters must
 * actually move under load.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/experiment.hh"

namespace gpulat {
namespace {

/** A short but DRAM-heavy run: streaming vecadd on the calibrated
 *  sim preset, small enough for unit-test latency. */
ExperimentSpec
baseSpec(std::vector<std::string> overrides)
{
    ExperimentSpec spec;
    spec.gpu = "gf100-sim";
    spec.workload = "vecadd";
    spec.params = {"n=8192"};
    spec.overrides = std::move(overrides);
    return spec;
}

/** Overrides that exercise every ddr mechanism quickly: frequent
 *  refresh plus the full command FSM at its defaults. */
std::vector<std::string>
ddrOverrides()
{
    return {"mem.dram.model=ddr", "mem.dram.tREFI=2000",
            "mem.dram.tRFC=200"};
}

/** Simulated-outcome equality: cycles + metrics + unit counters,
 *  ignoring engine execution-shape telemetry (tick/skip counts and
 *  ff_skip_pct legitimately differ across engine knobs). */
void
expectSameOutcome(const ExperimentRecord &a, const ExperimentRecord &b,
                  const std::string &label)
{
    EXPECT_EQ(a.cycles, b.cycles) << label;
    EXPECT_EQ(a.instructions, b.instructions) << label;
    for (const auto &[k, v] : a.metrics) {
        if (k.rfind("ff_skip_pct.", 0) == 0)
            continue;
        ASSERT_TRUE(b.metrics.count(k)) << label << ": " << k;
        EXPECT_DOUBLE_EQ(v, b.metrics.at(k)) << label << ": " << k;
    }
    for (const auto &[k, v] : a.counters) {
        if (k.rfind("engine.", 0) == 0)
            continue;
        ASSERT_TRUE(b.counters.count(k)) << label << ": " << k;
        EXPECT_EQ(v, b.counters.at(k)) << label << ": " << k;
    }
}

TEST(DramFidelity, DdrIdenticalAcrossFastForwardModes)
{
    std::vector<ExperimentRecord> recs;
    for (const char *mode : {"off", "full", "perDomain"}) {
        auto ov = ddrOverrides();
        ov.push_back(std::string("idleFastForward=") + mode);
        recs.push_back(runExperiment(baseSpec(std::move(ov))));
    }
    // Refresh must actually fire in the window this test covers,
    // otherwise fast-forward correctness is vacuous here.
    EXPECT_GT(recs[0].counters.at("dram.refreshes"), 0u);
    expectSameOutcome(recs[0], recs[1], "off vs full");
    expectSameOutcome(recs[0], recs[2], "off vs perDomain");
}

TEST(DramFidelity, DdrIdenticalAcrossTickJobsAndGrouping)
{
    std::vector<ExperimentRecord> recs;
    for (const char *knob :
         {"engine.tickJobs=1", "engine.tickJobs=4",
          "engine.smGroupSize=1"}) {
        auto ov = ddrOverrides();
        ov.push_back(knob);
        recs.push_back(runExperiment(baseSpec(std::move(ov))));
    }
    expectSameOutcome(recs[0], recs[1], "tickJobs 1 vs 4");
    expectSameOutcome(recs[0], recs[2], "fused vs per-SM groups");
}

TEST(DramFidelity, SimpleModelUntouchedByNewKnobDefaults)
{
    const ExperimentRecord base = runExperiment(baseSpec({}));
    const ExperimentRecord spelled = runExperiment(baseSpec(
        {"mem.dram.model=simple", "mem.dram.map=row",
         "mem.dram.pagePolicy=open", "mem.dram.ranks=1",
         "mem.mshr.banks=1"}));
    expectSameOutcome(base, spelled, "default vs spelled-out");
    // The rd/wr split is live even on the simple model and
    // partitions the aggregate exactly.
    EXPECT_EQ(base.counters.at("dram.rd_row_hits") +
                  base.counters.at("dram.wr_row_hits"),
              base.counters.at("dram.row_hits"));
    EXPECT_EQ(base.metrics.at("dram_refresh_stall_cycles"), 0.0);
}

TEST(DramFidelity, DdrRefreshAndConflictsMoveTheBreakdown)
{
    const ExperimentRecord rec =
        runExperiment(baseSpec(ddrOverrides()));
    EXPECT_GT(rec.metrics.at("dram_refresh_stall_cycles"), 0.0);
    EXPECT_GT(rec.metrics.at("dram_row_conflict_pct"), 0.0);
    // Per-bank-group counters partition the aggregate outcomes.
    std::uint64_t bg_total = 0;
    for (const auto &[k, v] : rec.counters) {
        if (k.rfind("dram.bg", 0) == 0)
            bg_total += v;
    }
    EXPECT_EQ(bg_total, rec.counters.at("dram.row_hits") +
                            rec.counters.at("dram.row_misses") +
                            rec.counters.at("dram.row_closed"));
    // And the ddr constraints cost latency vs the simple model.
    const ExperimentRecord simple = runExperiment(baseSpec({}));
    EXPECT_GT(rec.metrics.at("mean_load_latency"),
              simple.metrics.at("mean_load_latency"));
}

TEST(DramFidelity, AddressMapIsALiveAblationAxis)
{
    double mean[2];
    int i = 0;
    for (const char *map : {"mem.dram.map=row", "mem.dram.map=bg"}) {
        auto ov = ddrOverrides();
        ov.push_back(map);
        mean[i++] = runExperiment(baseSpec(std::move(ov)))
                        .metrics.at("mean_load_latency");
    }
    EXPECT_NE(mean[0], mean[1])
        << "bank-group interleave should shift activate spacing "
           "costs on a streaming sweep";
}

TEST(DramFidelity, MshrBankingIsALiveAblationAxis)
{
    // Squeeze the banked front-end: 8 entries over 8 banks leaves
    // one entry per bank, so hot banks conflict while the table
    // still has room.
    auto ov = ddrOverrides();
    ov.push_back("partition.l2MshrEntries=8");
    ov.push_back("mem.mshr.banks=8");
    const ExperimentRecord banked =
        runExperiment(baseSpec(std::move(ov)));
    EXPECT_GT(banked.metrics.at("mshr_bank_conflicts"), 0.0);

    auto flat_ov = ddrOverrides();
    flat_ov.push_back("partition.l2MshrEntries=8");
    const ExperimentRecord flat =
        runExperiment(baseSpec(std::move(flat_ov)));
    EXPECT_EQ(flat.metrics.at("mshr_bank_conflicts"), 0.0);
    EXPECT_NE(banked.metrics.at("mean_load_latency"),
              flat.metrics.at("mean_load_latency"));
}

} // namespace
} // namespace gpulat
