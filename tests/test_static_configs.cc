/**
 * @file
 * Table-I calibration tests: the measured pointer-chase latencies on
 * each per-generation config must reproduce the paper's values
 * (within a small tolerance), and the structural properties the
 * paper highlights must hold (Kepler L1 is local-only, Maxwell has
 * no L1, Tesla has no caches, latencies grew after Kepler).
 */

#include <gtest/gtest.h>

#include "microbench/table1.hh"

namespace gpulat {
namespace {

/** Measure the full table once for all tests in this file. */
const std::vector<Table1Column> &
measured()
{
    static const std::vector<Table1Column> table = [] {
        Table1Options opts;
        opts.timedAccesses = 512;
        opts.fullLadder = false;
        return measureTable1(opts);
    }();
    return table;
}

constexpr double kTolerance = 0.03; // 3 %

void
expectNear(const std::optional<double> &measured_value, double paper)
{
    ASSERT_TRUE(measured_value.has_value());
    EXPECT_NEAR(*measured_value, paper, paper * kTolerance);
}

TEST(Table1, ColumnsAreTheFourGenerations)
{
    const auto &t = measured();
    ASSERT_EQ(t.size(), 4u);
    EXPECT_EQ(t[0].gpu, "gt200");
    EXPECT_EQ(t[1].gpu, "gf106");
    EXPECT_EQ(t[2].gpu, "gk104");
    EXPECT_EQ(t[3].gpu, "gm107");
}

TEST(Table1, TeslaHasNoCachesAndDram440)
{
    const Table1Column &gt200 = measured()[0];
    EXPECT_FALSE(gt200.l1.has_value());
    EXPECT_FALSE(gt200.l2.has_value());
    expectNear(gt200.dram, 440.0);
}

TEST(Table1, FermiMatchesPaper)
{
    const Table1Column &gf106 = measured()[1];
    expectNear(gf106.l1, 45.0);
    expectNear(gf106.l2, 310.0);
    expectNear(gf106.dram, 685.0);
}

TEST(Table1, KeplerMatchesPaper)
{
    const Table1Column &gk104 = measured()[2];
    expectNear(gk104.l1, 30.0); // via local space
    expectNear(gk104.l2, 175.0);
    expectNear(gk104.dram, 300.0);
}

TEST(Table1, MaxwellMatchesPaper)
{
    const Table1Column &gm107 = measured()[3];
    EXPECT_FALSE(gm107.l1.has_value());
    expectNear(gm107.l2, 194.0);
    expectNear(gm107.dram, 350.0);
}

TEST(Table1, MaxwellSlowerThanKeplerEverywhere)
{
    // The paper: "effectively making Maxwell's global/local memory
    // pipeline slower than Kepler's on every level".
    const Table1Column &gk104 = measured()[2];
    const Table1Column &gm107 = measured()[3];
    EXPECT_GT(*gm107.l2, *gk104.l2);
    EXPECT_GT(*gm107.dram, *gk104.dram);
}

TEST(Table1, FermiDramIsTheLargestLatency)
{
    const auto &t = measured();
    for (const auto &col : t) {
        if (col.gpu != "gf106") {
            EXPECT_GT(*t[1].dram, *col.dram);
        }
    }
}

TEST(Table1, StructuralFlagsMatchThePaper)
{
    // Kepler: L1 must not serve global accesses.
    const GpuConfig gk104 = makeGK104();
    EXPECT_TRUE(gk104.sm.l1Enabled);
    EXPECT_FALSE(gk104.sm.l1CachesGlobal);
    EXPECT_TRUE(gk104.sm.l1CachesLocal);

    // Maxwell: no L1 at all.
    EXPECT_FALSE(makeGM107().sm.l1Enabled);

    // Tesla: neither L1 nor L2.
    const GpuConfig gt200 = makeGT200();
    EXPECT_FALSE(gt200.sm.l1Enabled);
    EXPECT_FALSE(gt200.partition.l2Enabled);

    // Fermi: both, with global caching.
    const GpuConfig gf106 = makeGF106();
    EXPECT_TRUE(gf106.sm.l1Enabled);
    EXPECT_TRUE(gf106.sm.l1CachesGlobal);
}

TEST(Table1, ConfigLookupByName)
{
    EXPECT_EQ(makeConfig("gf106").name, "gf106");
    EXPECT_EQ(makeConfig("gf100-sim").name, "gf100-sim");
    EXPECT_THROW(makeConfig("gp100"), FatalError);
}

} // namespace
} // namespace gpulat
