/**
 * @file
 * Verdict goldens for the loop-aware SM-parallel footprint
 * analysis: every registry workload (including the serving
 * streams) pins its expected verdict and reason, and the abstract
 * domain's edge cases — negative strides, zero-trip loops, the
 * widening convergence bound, stride-interval join soundness and
 * the checked max-grid footprint math — are exercised directly.
 */

#include <array>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/experiment.hh"
#include "gpu/gpu.hh"
#include "gpu/kernel_analysis.hh"
#include "isa/kernel.hh"

namespace gpulat {
namespace {

std::array<RegValue, kMaxParams>
makeParams(std::initializer_list<RegValue> vals)
{
    std::array<RegValue, kMaxParams> params{};
    std::size_t i = 0;
    for (RegValue v : vals)
        params[i++] = v;
    return params;
}

// ---------------------------------------------- registry goldens

struct VerdictGolden
{
    const char *workload;
    std::vector<std::string> params;
    double scale;
    bool safe;
    /** Substring of SmParallelVerdict::reason (stable vocabulary). */
    const char *reason;
};

/** Run the workload and capture the final launch's verdict. */
SmParallelVerdict
verdictOf(const VerdictGolden &g)
{
    ExperimentSpec spec;
    spec.gpu = "gf106";
    spec.workload = g.workload;
    spec.params = g.params;
    spec.scale = g.scale;
    SmParallelVerdict verdict;
    runExperiment(spec, [&](Gpu &gpu, const ExperimentRecord &) {
        verdict = gpu.lastVerdict();
    });
    return verdict;
}

class RegistryVerdicts
    : public ::testing::TestWithParam<VerdictGolden>
{
};

TEST_P(RegistryVerdicts, MatchesGolden)
{
    const VerdictGolden &g = GetParam();
    const SmParallelVerdict v = verdictOf(g);
    EXPECT_EQ(v.safe, g.safe)
        << g.workload << ": " << v.reason;
    EXPECT_NE(v.reason.find(g.reason), std::string::npos)
        << g.workload << ": " << v.reason;
    // Every verdict must rest on a converged fixpoint (or never
    // reach one because an earlier structural answer decided it) —
    // a diverged chain would make the reason untrustworthy.
    for (const std::string &step : v.reasonChain)
        EXPECT_EQ(step.find("DIVERGED"), std::string::npos) << step;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, RegistryVerdicts,
    ::testing::Values(
        // The flagship loop kernels the abstract interpreter
        // newly proves safe: reduction's guarded tree, gemm's
        // tiled inner product, scan's two-phase prefix.
        VerdictGolden{"reduction", {"n=16384"}, 1.0, true,
                      "affine cross-block-disjoint"},
        VerdictGolden{"gemm", {"n=64"}, 1.0, true,
                      "affine cross-block-disjoint"},
        VerdictGolden{"scan", {"n=4096"}, 1.0, true,
                      "affine cross-block-disjoint"},
        // Forwarded atomics: histogram's RMW sites are excluded
        // from the footprint, the remaining accesses are loads.
        VerdictGolden{"histogram", {"n=4096"}, 1.0, true,
                      "store-free"},
        // Straight-line affine kernels stay safe.
        VerdictGolden{"vecadd", {"n=4096"}, 1.0, true,
                      "affine cross-block-disjoint"},
        VerdictGolden{"compute_stream", {"n=4096"}, 1.0, true,
                      "affine cross-block-disjoint"},
        VerdictGolden{"transpose_naive", {"n=64"}, 1.0, true,
                      "affine cross-block-disjoint"},
        VerdictGolden{"transpose_tiled", {"n=64"}, 1.0, true,
                      "affine cross-block-disjoint"},
        // Single-thread probe: one block, trivially safe.
        VerdictGolden{"pchase", {"footprintBytes=16384"}, 1.0, true,
                      "single block"},
        // Genuinely data-dependent addressing must keep failing.
        VerdictGolden{"bfs", {"nodes=1024"}, 1.0, false,
                      "non-affine"},
        VerdictGolden{"spmv", {"rows=512"}, 1.0, false,
                      "non-affine"},
        // The stencil's halo reads genuinely overlap neighbour
        // blocks' stores — correctly serialized, not a precision
        // gap.
        VerdictGolden{"stencil2d",
                      {"width=64", "height=64", "iterations=1"},
                      1.0, false, "cross-block overlap"},
        // Serving streams: every tenant kernel is an affine
        // streaming shape, so the partitioned launches compose.
        VerdictGolden{"serve.mixed", {}, 0.05, true,
                      "affine cross-block-disjoint"},
        VerdictGolden{"serve.uniform", {}, 0.05, true,
                      "affine cross-block-disjoint"},
        VerdictGolden{"serve.closed", {}, 0.05, true,
                      "affine cross-block-disjoint"}),
    [](const ::testing::TestParamInfo<VerdictGolden> &info) {
        std::string name = info.param.workload;
        for (char &c : name)
            if (c == '.')
                c = '_';
        return name;
    });

// ------------------------------------------------- domain edge cases

TEST(AnalysisDomain, NegativeStrideStoresAreDisjoint)
{
    // out[ntid-1-tid + ntid*ctaid]: the tid coefficient is -8 after
    // the subtraction, so the digit argument must reason with
    // magnitudes. Still injective, still cross-block disjoint.
    KernelBuilder b("revstore");
    b.s2r(0, SpecialReg::Tid)
        .s2r(1, SpecialReg::Ctaid)
        .s2r(2, SpecialReg::Ntid)
        .aluImm(Opcode::ISUB, 3, 2, 1) // ntid-1
        .alu(Opcode::ISUB, 3, 3, 0)    // ntid-1-tid
        .imad(4, 1, 2, 3)              // ctaid*ntid + (ntid-1-tid)
        .aluImm(Opcode::SHL, 4, 4, 3)  // *8 bytes
        .movParam(5, 0)
        .alu(Opcode::IADD, 5, 5, 4)
        .movImm(6, 7)
        .st(MemSpace::Global, 5, 6)
        .exit();
    const SmParallelVerdict v = analyzeSmParallelSafety(
        b.finalize(), 16, 64, makeParams({0x10000}));
    EXPECT_TRUE(v.safe) << v.reason;
    EXPECT_TRUE(v.footprintKnown);
}

TEST(AnalysisDomain, ZeroTripLoopBodyStoreIsDead)
{
    // for (i = 0; i < 0; ++i) st ... — edge refinement proves the
    // body unreachable, so its (otherwise non-affine) store cannot
    // block the verdict.
    KernelBuilder b("zerotrip");
    b.movImm(1, 0)          // i = 0
        .movParam(0, 0)
        .label("head")
        .setpImm(CmpOp::GE, 0, 1, 0) // i >= 0: exit loop
        .pred(0)
        .bra("done")
        .ld(MemSpace::Global, 0, 0)  // loop-carried pointer
        .st(MemSpace::Global, 0, 1)
        .aluImm(Opcode::IADD, 1, 1, 1)
        .bra("head")
        .label("done")
        .exit();
    const SmParallelVerdict v = analyzeSmParallelSafety(
        b.finalize(), 8, 32, makeParams({0x1000}));
    EXPECT_TRUE(v.safe) << v.reason;
    EXPECT_FALSE(v.hasStore);
}

TEST(AnalysisDomain, WideningConvergesWithinBound)
{
    // A loop whose trip count comes from a parameter the domain
    // cannot see through: the induction variable must widen to the
    // unbounded interval in a handful of passes, not iterate until
    // the transfer cap trips.
    KernelBuilder b("widen");
    b.movImm(1, 0)
        .movParam(2, 0)
        .movParam(3, 1)
        .label("head")
        .ld(MemSpace::Global, 4, 2)
        .aluImm(Opcode::IADD, 1, 1, 3)  // i += 3
        .aluImm(Opcode::IADD, 2, 2, 8)  // p += 8
        .setp(CmpOp::LT, 0, 1, 3)
        .pred(0)
        .bra("head")
        .exit();
    const Kernel k = b.finalize();
    const SmParallelVerdict v = analyzeSmParallelSafety(
        k, 8, 32, makeParams({0x1000, 999999}));
    EXPECT_TRUE(v.safe) << v.reason; // store-free
    // The fixpoint bound is 1000 + 50 * cfgBlocks; convergence must
    // land far below it or widening is not doing its job.
    EXPECT_LT(v.fixpointIterations, 100u);
    bool converged = false;
    for (const std::string &step : v.reasonChain)
        converged |= step.find("converged") != std::string::npos;
    EXPECT_TRUE(converged);
}

TEST(AnalysisDomain, StrideIntervalJoinIsSound)
{
    // join must produce a superset of both inputs, with the stride
    // the gcd of both strides and the anchor distance.
    const StrideInterval a{0, 16, 8};
    const StrideInterval b{4, 20, 8};
    const StrideInterval j = StrideInterval::join(a, b);
    EXPECT_EQ(j.lo, 0);
    EXPECT_EQ(j.hi, 20);
    EXPECT_EQ(j.stride, 4u);

    // Singletons join onto the distance grid.
    const StrideInterval s = StrideInterval::join(
        StrideInterval::constant(8), StrideInterval::constant(32));
    EXPECT_EQ(s.lo, 8);
    EXPECT_EQ(s.hi, 32);
    EXPECT_EQ(s.stride, 24u);

    // Joining with the unbounded interval stays unbounded.
    const StrideInterval t =
        StrideInterval::join(a, StrideInterval::full());
    EXPECT_EQ(t.lo, kNegInf);
    EXPECT_EQ(t.hi, kPosInf);
}

TEST(AnalysisDomain, SaturatingHelpersPinSentinels)
{
    EXPECT_EQ(satAdd(kPosInf, -5), kPosInf);  // sentinel propagates
    EXPECT_EQ(satAdd(kNegInf, 100), kNegInf);
    EXPECT_EQ(satAdd(INT64_MAX - 1, 10), kPosInf); // fresh overflow
    EXPECT_EQ(satSub(INT64_MIN + 1, 10), kNegInf);
    EXPECT_EQ(satMul(INT64_MAX / 2, 4), kPosInf);
    EXPECT_EQ(satMul(kNegInf, 1), kNegInf);
    EXPECT_EQ(satAdd(40, 2), 42); // finite math is exact
    EXPECT_EQ(satMul(-6, 7), -42);
}

TEST(AnalysisDomain, MaxGridFootprintMathDoesNotWrap)
{
    // The max-grid regression: a store whose per-block stride times
    // the grid size overflows int64. The checked math must degrade
    // the footprint to unbounded — refusing to "prove" disjointness
    // by wrapping — instead of crashing or corrupting the verdict.
    KernelBuilder b("huge");
    b.s2r(0, SpecialReg::Tid)
        .s2r(1, SpecialReg::Ctaid)
        .movImm(2, std::int64_t{1} << 42)
        .alu(Opcode::IMUL, 1, 1, 2)    // ctaid << 42
        .aluImm(Opcode::SHL, 0, 0, 3)  // tid * 8
        .alu(Opcode::IADD, 0, 0, 1)
        .movParam(3, 0)
        .alu(Opcode::IADD, 3, 3, 0)
        .movImm(4, 1)
        .st(MemSpace::Global, 3, 4)
        .exit();
    const SmParallelVerdict v = analyzeSmParallelSafety(
        b.finalize(), 0x7fffffffu, 1024,
        makeParams({std::uint64_t{1} << 62}));
    // Whatever the verdict, it must be reached without UB and with
    // a converged fixpoint; the footprint cannot claim tight
    // bounds that only wrapping could produce.
    for (const std::string &step : v.reasonChain)
        EXPECT_EQ(step.find("DIVERGED"), std::string::npos) << step;
    if (v.footprintKnown) {
        for (const FootprintRange &r : v.footprint)
            EXPECT_LE(r.lo, r.hi);
    }
}

TEST(AnalysisDomain, GridStrideLoopStoresAreSafe)
{
    // The canonical grid-stride loop:
    //   for (i = gtid; i < n; i += ntid * nctaid) out[i] = 7;
    // Injective across the whole grid; the loop-carried induction
    // variable must stay affine through the widen/join cycle.
    KernelBuilder b("gridstride");
    b.s2r(0, SpecialReg::Tid)
        .s2r(1, SpecialReg::Ctaid)
        .s2r(2, SpecialReg::Ntid)
        .s2r(3, SpecialReg::Nctaid)
        .imad(4, 1, 2, 0)   // gtid = ctaid*ntid + tid
        .alu(Opcode::IMUL, 5, 2, 3) // grid step
        .movParam(6, 0)
        .movParam(7, 1)     // n
        .movImm(8, 7)
        .label("head")
        .setp(CmpOp::GE, 0, 4, 7)
        .pred(0)
        .bra("done")
        .aluImm(Opcode::SHL, 9, 4, 3)
        .alu(Opcode::IADD, 9, 9, 6)
        .st(MemSpace::Global, 9, 8)
        .alu(Opcode::IADD, 4, 4, 5)
        .bra("head")
        .label("done")
        .exit();
    const SmParallelVerdict v = analyzeSmParallelSafety(
        b.finalize(), 8, 64, makeParams({0x20000, 4096}));
    EXPECT_TRUE(v.safe) << v.reason;
    EXPECT_GE(v.loopHeads, 1u);
}

} // namespace
} // namespace gpulat
