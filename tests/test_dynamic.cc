/**
 * @file
 * Dynamic latency analysis tests (Figures 1 and 2): trace
 * well-formedness on real runs, the paper's qualitative claims
 * about BFS (queueing/arbitration dominate long latencies; a large
 * exposed fraction), and the latency-hiding contrast with vecadd.
 */

#include <gtest/gtest.h>

#include "gpu/gpu.hh"
#include "latency/breakdown.hh"
#include "latency/exposure.hh"
#include "workloads/bfs.hh"
#include "workloads/compute_stream.hh"
#include "workloads/vecadd.hh"

namespace gpulat {
namespace {

GpuConfig
dynConfig()
{
    GpuConfig cfg = makeGF100Sim();
    cfg.numSms = 6;
    cfg.numPartitions = 3;
    cfg.deviceMemBytes = 64 * 1024 * 1024;
    return cfg;
}

struct BfsRun
{
    std::vector<LatencyTrace> traces;
    std::vector<ExposureRecord> exposure;
    bool correct;
};

const BfsRun &
bfsRun()
{
    static const BfsRun run = [] {
        Gpu gpu(dynConfig());
        Bfs::Options opts;
        opts.kind = Bfs::GraphKind::Rmat;
        opts.scale = 12;
        opts.degree = 8;
        Bfs bfs(opts);
        BfsRun r;
        r.correct = bfs.run(gpu).correct;
        r.traces = gpu.latencies().traces();
        r.exposure = gpu.exposure().records();
        return r;
    }();
    return run;
}

TEST(DynamicBfs, RunsCorrectlyAndProducesTraces)
{
    EXPECT_TRUE(bfsRun().correct);
    EXPECT_GT(bfsRun().traces.size(), 10000u);
    EXPECT_GT(bfsRun().exposure.size(), 1000u);
}

TEST(DynamicBfs, EveryTraceIsWellFormed)
{
    for (const auto &t : bfsRun().traces) {
        ASSERT_NE(t.issue, kNoCycle);
        ASSERT_NE(t.complete, kNoCycle);
        ASSERT_LE(t.issue, t.complete);
        Cycle sum = 0;
        for (auto v : t.stageCycles())
            sum += v;
        ASSERT_EQ(sum, t.total());
    }
}

TEST(DynamicBfs, AllThreeHitLevelsAppear)
{
    std::array<std::uint64_t, 3> counts{};
    for (const auto &t : bfsRun().traces)
        ++counts[static_cast<std::size_t>(t.hitLevel)];
    EXPECT_GT(counts[0], 0u) << "no L1 hits";
    EXPECT_GT(counts[1], 0u) << "no L2 hits";
    EXPECT_GT(counts[2], 0u) << "no DRAM accesses";
}

TEST(DynamicBfs, ShortBucketsArePureSmBase)
{
    // The paper: "several latency buckets on the left are entirely
    // filled with SM base time" (L1 hits). Fine buckets so the
    // first one stays below the L2 round trip even under load.
    const Breakdown bd = computeBreakdown(bfsRun().traces, 256);
    const BreakdownBucket *first = nullptr;
    for (const auto &bucket : bd.buckets) {
        if (bucket.count > 0) {
            first = &bucket;
            break;
        }
    }
    ASSERT_NE(first, nullptr);
    EXPECT_GT(first->stagePct(Stage::SmBase), 99.0);
}

TEST(DynamicBfs, LongBucketsContainAllStages)
{
    const Breakdown bd = computeBreakdown(bfsRun().traces, 48);
    // Find the last reasonably-populated bucket.
    const BreakdownBucket *longest = nullptr;
    for (const auto &bucket : bd.buckets)
        if (bucket.count >= 10)
            longest = &bucket;
    ASSERT_NE(longest, nullptr);
    EXPECT_GT(longest->stagePct(Stage::DramQToSched) +
                  longest->stagePct(Stage::DramSchedToData),
              10.0);
    EXPECT_GT(longest->stagePct(Stage::L1ToIcnt) +
                  longest->stagePct(Stage::IcntToRop), 0.0);
}

TEST(DynamicBfs, QueueingAndArbitrationDominateLongLatencies)
{
    // The paper's key finding: long-latency requests spend their
    // time in queues (L1->ICNT, L2->DRAM backpressure, DRAM queue)
    // and arbitration (ICNT, DRAM scheduling) rather than in the
    // fixed-latency pipeline stages.
    std::array<std::uint64_t, kNumStages> dram_stage_sum{};
    for (const auto &t : bfsRun().traces) {
        if (t.hitLevel != HitLevel::Dram)
            continue;
        const auto stages = t.stageCycles();
        for (std::size_t s = 0; s < kNumStages; ++s)
            dram_stage_sum[s] += stages[s];
    }
    auto sum_of = [&](std::initializer_list<Stage> list) {
        std::uint64_t v = 0;
        for (Stage s : list)
            v += dram_stage_sum[static_cast<std::size_t>(s)];
        return v;
    };
    const std::uint64_t queueing =
        sum_of({Stage::L1ToIcnt, Stage::IcntToRop,
                Stage::L2QToDramQ, Stage::DramQToSched});
    const std::uint64_t total =
        sum_of({Stage::SmBase, Stage::L1ToIcnt, Stage::IcntToRop,
                Stage::RopToL2Q, Stage::L2QToDramQ,
                Stage::DramQToSched, Stage::DramSchedToData,
                Stage::FetchToSm});
    ASSERT_GT(total, 0u);
    EXPECT_GT(static_cast<double>(queueing) /
                  static_cast<double>(total),
              0.35);
}

TEST(DynamicBfs, SignificantExposedLatency)
{
    // The paper: exposure "sometimes close to 100% and more than
    // 50% for most of the global memory load instructions".
    const ExposureBreakdown eb =
        computeExposure(bfsRun().exposure, 48);
    EXPECT_GT(eb.overallExposedPct(), 30.0);
    EXPECT_GT(eb.fractionOfLoadsMostlyExposed(), 0.3);
}

TEST(DynamicBfs, ExposureNeverExceedsTotal)
{
    for (const auto &r : bfsRun().exposure)
        ASSERT_LE(r.exposed, r.total);
}

TEST(DynamicComputeStream, HidesLatencyWellAtFullOccupancy)
{
    // A streaming workload with real arithmetic behind each load:
    // at full occupancy the FMA chains of other warps hide most of
    // the load latency — the contrast to BFS.
    Gpu gpu(dynConfig());
    ComputeStream::Options opts;
    opts.n = 1 << 15;
    opts.fmaDepth = 48;
    ComputeStream workload(opts);
    ASSERT_TRUE(workload.run(gpu).correct);
    const ExposureBreakdown eb =
        computeExposure(gpu.exposure().records(), 48);
    const ExposureBreakdown bfs_eb =
        computeExposure(bfsRun().exposure, 48);
    EXPECT_LT(eb.overallExposedPct(),
              bfs_eb.overallExposedPct() - 10.0);
}

TEST(DynamicVecadd, FewerWarpsExposeMoreLatency)
{
    auto exposed_with_warps = [](unsigned warps) {
        GpuConfig cfg = dynConfig();
        cfg.sm.warpSlots = warps;
        cfg.sm.maxBlocksPerSm = std::max(1u, warps);
        Gpu gpu(cfg);
        VecAdd::Options opts;
        opts.n = 1 << 14;
        opts.threadsPerBlock = std::min(256u, warps * kWarpSize);
        VecAdd workload(opts);
        EXPECT_TRUE(workload.run(gpu).correct);
        return computeExposure(gpu.exposure().records(), 48)
            .overallExposedPct();
    };
    const double exposed1 = exposed_with_warps(1);
    const double exposed32 = exposed_with_warps(32);
    EXPECT_GT(exposed1, exposed32);
    EXPECT_GT(exposed1, 80.0); // a single warp can't hide anything
}

TEST(DynamicLoad, LatencyGrowsUnderLoad)
{
    // Idle single-warp latency vs heavily loaded latency.
    auto mean_latency = [](unsigned blocks) {
        Gpu gpu(dynConfig());
        VecAdd::Options opts;
        opts.n = static_cast<std::uint64_t>(blocks) * 256;
        opts.threadsPerBlock = 256;
        VecAdd workload(opts);
        EXPECT_TRUE(workload.run(gpu).correct);
        double sum = 0;
        for (const auto &t : gpu.latencies().traces())
            sum += static_cast<double>(t.total());
        return sum / static_cast<double>(gpu.latencies().count());
    };
    EXPECT_GT(mean_latency(96), mean_latency(1) * 1.2);
}

TEST(DynamicSched, FrFcfsNotSlowerThanFcfsOnStreaming)
{
    auto run_cycles = [](DramSchedPolicy policy) {
        GpuConfig cfg = dynConfig();
        cfg.partition.sched = policy;
        Gpu gpu(cfg);
        VecAdd::Options opts;
        opts.n = 1 << 14;
        VecAdd workload(opts);
        const auto r = workload.run(gpu);
        EXPECT_TRUE(r.correct);
        return r.cycles;
    };
    EXPECT_LE(run_cycles(DramSchedPolicy::FRFCFS),
              run_cycles(DramSchedPolicy::FCFS) * 1.05);
}

} // namespace
} // namespace gpulat
