/**
 * @file
 * Property tests over random programs.
 *
 * 1. RandomPrograms: random straight-line ALU programs executed on
 *    the simulated GPU must match an independent host-side
 *    interpreter. This cross-checks the functional semantics of
 *    every ALU opcode, operand form and predicate interaction
 *    against a second implementation.
 *
 * 2. VerdictSoundness: random multi-block programs (random ALU
 *    body, optional backward-branch loop, randomly chosen global
 *    store/atomic pattern) are analyzed by the SM-parallel
 *    footprint pass and then executed under `engine.tickJobs = 1`
 *    and `8` with per-SM tick groups. Output memory must be
 *    byte-identical — for kernels the analysis proves safe this is
 *    exactly the soundness claim (SM-parallel ticking cannot
 *    change results); for serialized kernels it checks the
 *    fallback. The safe/serialized split is reported after the
 *    suite so a precision regression is visible in the log.
 */

#include <atomic>
#include <bit>
#include <cstring>
#include <iostream>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.hh"
#include "gpu/gpu.hh"
#include "gpu/kernel_analysis.hh"
#include "isa/kernel.hh"

namespace gpulat {
namespace {

/** Host-side reference state for one thread. */
struct RefThread
{
    std::array<RegValue, kNumRegs> regs{};
    std::array<bool, kNumPreds> preds{};
};

/** Independent interpreter for the ALU subset. */
void
interpret(const Instruction &inst, RefThread &t)
{
    if (inst.pred != kNoReg &&
        t.preds[static_cast<std::size_t>(inst.pred)] == inst.predNeg)
        return; // guarded off

    auto b = [&]() -> RegValue {
        return inst.useImm ? static_cast<RegValue>(inst.imm)
                           : t.regs[static_cast<std::size_t>(
                                 inst.srcB)];
    };
    auto a = [&]() -> RegValue {
        return t.regs[static_cast<std::size_t>(inst.srcA)];
    };
    auto set = [&](RegValue v) {
        t.regs[static_cast<std::size_t>(inst.dst)] = v;
    };
    auto sa = [&] { return static_cast<std::int64_t>(a()); };
    auto sb = [&] { return static_cast<std::int64_t>(b()); };

    switch (inst.op) {
      case Opcode::MOV: set(b()); break;
      case Opcode::IADD: set(a() + b()); break;
      case Opcode::ISUB: set(a() - b()); break;
      case Opcode::IMUL: set(a() * b()); break;
      case Opcode::IMAD:
        set(a() * t.regs[static_cast<std::size_t>(inst.srcB)] +
            t.regs[static_cast<std::size_t>(inst.srcC)]);
        break;
      case Opcode::SHL: set(a() << (b() & 63)); break;
      case Opcode::SHR: set(a() >> (b() & 63)); break;
      case Opcode::AND: set(a() & b()); break;
      case Opcode::OR: set(a() | b()); break;
      case Opcode::XOR: set(a() ^ b()); break;
      case Opcode::IMIN:
        set(static_cast<RegValue>(std::min(sa(), sb())));
        break;
      case Opcode::IMAX:
        set(static_cast<RegValue>(std::max(sa(), sb())));
        break;
      case Opcode::FADD:
        set(std::bit_cast<RegValue>(std::bit_cast<double>(a()) +
                                    std::bit_cast<double>(b())));
        break;
      case Opcode::FMUL:
        set(std::bit_cast<RegValue>(std::bit_cast<double>(a()) *
                                    std::bit_cast<double>(b())));
        break;
      case Opcode::FFMA:
        set(std::bit_cast<RegValue>(
            std::bit_cast<double>(a()) *
                std::bit_cast<double>(t.regs[static_cast<std::size_t>(
                    inst.srcB)]) +
            std::bit_cast<double>(t.regs[static_cast<std::size_t>(
                inst.srcC)])));
        break;
      case Opcode::I2F:
        set(std::bit_cast<RegValue>(static_cast<double>(sa())));
        break;
      case Opcode::F2I:
        set(static_cast<RegValue>(static_cast<std::int64_t>(
            std::bit_cast<double>(a()))));
        break;
      case Opcode::SETP: {
        const std::int64_t x = sa();
        const std::int64_t y = sb();
        bool v = false;
        switch (inst.cmp) {
          case CmpOp::EQ: v = x == y; break;
          case CmpOp::NE: v = x != y; break;
          case CmpOp::LT: v = x < y; break;
          case CmpOp::LE: v = x <= y; break;
          case CmpOp::GT: v = x > y; break;
          case CmpOp::GE: v = x >= y; break;
        }
        t.preds[static_cast<std::size_t>(inst.predDst)] = v;
        break;
      }
      default:
        FAIL() << "unexpected opcode in random program";
    }
}

/** Emit one random ALU instruction into the builder and the
 *  reference program. Registers r0..r7, preds p0..p3. */
Instruction
randomInstruction(Rng &rng, KernelBuilder &builder)
{
    constexpr int kRegs = 8;
    const auto reg = [&] { return static_cast<int>(rng.below(kRegs)); };

    // Occasionally guard the instruction.
    const bool guarded = rng.below(4) == 0;
    const int guard_pred = static_cast<int>(rng.below(4));
    const bool guard_neg = rng.below(2) == 0;
    if (guarded)
        builder.pred(guard_pred, guard_neg);

    static const Opcode kAluOps[] = {
        Opcode::MOV, Opcode::IADD, Opcode::ISUB, Opcode::IMUL,
        Opcode::SHL, Opcode::SHR, Opcode::AND, Opcode::OR,
        Opcode::XOR, Opcode::IMIN, Opcode::IMAX,
    };

    Instruction inst;
    inst.pred = guarded ? guard_pred : kNoReg;
    inst.predNeg = guarded && guard_neg;

    switch (rng.below(5)) {
      case 0: { // setp
        const int pd = static_cast<int>(rng.below(4));
        const auto cmp = static_cast<CmpOp>(rng.below(6));
        const int ra = reg();
        if (rng.below(2)) {
            const auto imm = static_cast<std::int64_t>(
                rng.below(1000)) - 500;
            builder.setpImm(cmp, pd, ra, imm);
            inst.op = Opcode::SETP;
            inst.cmp = cmp;
            inst.predDst = pd;
            inst.srcA = ra;
            inst.imm = imm;
            inst.useImm = true;
        } else {
            const int rb = reg();
            builder.setp(cmp, pd, ra, rb);
            inst.op = Opcode::SETP;
            inst.cmp = cmp;
            inst.predDst = pd;
            inst.srcA = ra;
            inst.srcB = rb;
        }
        break;
      }
      case 1: { // imad / ffma
        const int rd = reg();
        const int ra = reg();
        const int rb = reg();
        const int rc = reg();
        if (rng.below(2)) {
            builder.imad(rd, ra, rb, rc);
            inst.op = Opcode::IMAD;
        } else {
            builder.ffma(rd, ra, rb, rc);
            inst.op = Opcode::FFMA;
        }
        inst.dst = rd;
        inst.srcA = ra;
        inst.srcB = rb;
        inst.srcC = rc;
        break;
      }
      case 2: { // cvt
        const int rd = reg();
        const int ra = reg();
        const Opcode op =
            rng.below(2) ? Opcode::I2F : Opcode::F2I;
        builder.cvt(op, rd, ra);
        inst.op = op;
        inst.dst = rd;
        inst.srcA = ra;
        break;
      }
      default: { // two-operand ALU
        const Opcode op = kAluOps[rng.below(std::size(kAluOps))];
        const int rd = reg();
        if (op == Opcode::MOV) {
            const auto imm = static_cast<std::int64_t>(rng.next() &
                                                       0xffffff);
            builder.movImm(rd, imm);
            inst.op = Opcode::MOV;
            inst.dst = rd;
            inst.imm = imm;
            inst.useImm = true;
            break;
        }
        const int ra = reg();
        if (rng.below(2)) {
            const auto imm = static_cast<std::int64_t>(
                rng.below(1 << 20));
            builder.aluImm(op, rd, ra, imm);
            inst.op = op;
            inst.dst = rd;
            inst.srcA = ra;
            inst.imm = imm;
            inst.useImm = true;
        } else {
            const int rb = reg();
            builder.alu(op, rd, ra, rb);
            inst.op = op;
            inst.dst = rd;
            inst.srcA = ra;
            inst.srcB = rb;
        }
        break;
      }
    }
    return inst;
}

class RandomPrograms : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RandomPrograms, GpuMatchesReferenceInterpreter)
{
    Rng rng(GetParam());
    const unsigned length = 30 + static_cast<unsigned>(rng.below(40));

    KernelBuilder builder("random");
    std::vector<Instruction> reference_program;

    // Seed registers with lane-dependent values.
    builder.s2r(0, SpecialReg::Tid);
    for (int r = 1; r < 8; ++r)
        builder.aluImm(Opcode::IMUL, r, 0,
                       static_cast<std::int64_t>(r * 1234567 + 1));

    for (unsigned i = 0; i < length; ++i)
        reference_program.push_back(randomInstruction(rng, builder));

    // Store all 8 registers to out[tid*8 + r].
    builder.s2r(8, SpecialReg::Tid);
    builder.aluImm(Opcode::SHL, 9, 8, 6); // tid * 64 bytes
    builder.movParam(10, 0);
    builder.alu(Opcode::IADD, 10, 10, 9);
    for (int r = 0; r < 8; ++r)
        builder.st(MemSpace::Global, 10, r,
                   static_cast<std::int64_t>(r * 8));
    builder.exit();

    GpuConfig cfg = makeGF106();
    cfg.numSms = 1;
    cfg.numPartitions = 1;
    cfg.deviceMemBytes = 4 * 1024 * 1024;
    Gpu gpu(cfg);
    const Addr out = gpu.alloc(32 * 64);
    gpu.launch(builder.finalize(), 1, 32, {out});

    for (unsigned lane = 0; lane < 32; ++lane) {
        RefThread t;
        t.regs[0] = lane;
        for (int r = 1; r < 8; ++r)
            t.regs[static_cast<std::size_t>(r)] =
                lane * static_cast<RegValue>(r * 1234567 + 1);
        for (const auto &inst : reference_program)
            interpret(inst, t);

        for (int r = 0; r < 8; ++r) {
            std::uint64_t gpu_value = 0;
            gpu.copyFromDevice(&gpu_value, out + lane * 64 +
                               static_cast<Addr>(r) * 8, 8);
            ASSERT_EQ(gpu_value, t.regs[static_cast<std::size_t>(r)])
                << "seed " << GetParam() << " lane " << lane
                << " r" << r;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms,
                         ::testing::Range<std::uint64_t>(1, 21));

// ------------------------------------------ verdict soundness

/** Safe/serialized tally, reported once after the suite. */
struct SoundnessTally
{
    std::atomic<int> safe{0};
    std::atomic<int> serialized{0};
};

SoundnessTally &
tally()
{
    static SoundnessTally t;
    return t;
}

class SoundnessReport : public ::testing::Environment
{
    void TearDown() override
    {
        const int s = tally().safe.load();
        const int z = tally().serialized.load();
        if (s + z > 0)
            std::cout << "[ verdicts ] VerdictSoundness split: "
                      << s << " safe / " << z << " serialized ("
                      << s + z << " programs)\n";
    }
};

const auto *const kSoundnessReport =
    ::testing::AddGlobalTestEnvironment(new SoundnessReport);

constexpr unsigned kSoundBlocks = 4;
constexpr unsigned kSoundThreads = 32;
constexpr std::size_t kSoundOutBytes =
    kSoundBlocks * kSoundThreads * 8;

/**
 * Build a random multi-block program: random ALU body (optionally
 * wrapped in a short counted loop on p7/r12, which the body never
 * touches), then one of four global access patterns addressed by
 * gtid. Returns the finished kernel.
 */
Kernel
buildRandomMultiBlockKernel(Rng &rng)
{
    KernelBuilder builder("soundness");

    // Lane-and-block-dependent register seed.
    builder.s2r(0, SpecialReg::Tid);
    builder.s2r(1, SpecialReg::Ctaid);
    builder.s2r(2, SpecialReg::Ntid);
    builder.imad(0, 1, 2, 0); // gtid
    for (int r = 1; r < 8; ++r)
        builder.aluImm(Opcode::IMUL, r, 0,
                       static_cast<std::int64_t>(r * 987654 + 3));

    // Random ALU body, optionally looped. The loop uses r12/p7,
    // outside the body's r0..r7 / p0..p3 universe, so a random
    // setp can never clobber the trip count.
    const unsigned length = 8 + static_cast<unsigned>(rng.below(16));
    const bool looped = rng.below(2) == 0;
    if (looped) {
        const auto trips =
            static_cast<std::int64_t>(1 + rng.below(4));
        builder.movImm(12, trips);
        builder.label("body");
    }
    for (unsigned i = 0; i < length; ++i)
        randomInstruction(rng, builder);
    if (looped) {
        builder.aluImm(Opcode::ISUB, 12, 12, 1);
        builder.setpImm(CmpOp::GT, 7, 12, 0);
        builder.pred(7).bra("body");
    }

    // Address registers, rebuilt after the body clobbered r0..r7.
    builder.s2r(8, SpecialReg::Tid);
    builder.s2r(9, SpecialReg::Ctaid);
    builder.s2r(10, SpecialReg::Ntid);
    builder.imad(8, 9, 10, 8);            // gtid
    builder.movParam(10, 0);              // out base

    switch (rng.below(4)) {
      case 0: // injective store: out[gtid] — provably disjoint
        builder.aluImm(Opcode::SHL, 9, 8, 3);
        builder.alu(Opcode::IADD, 10, 10, 9);
        builder.st(MemSpace::Global, 10, 0);
        break;
      case 1: // aliasing store: out[gtid & 3] — blocks collide
        builder.aluImm(Opcode::AND, 9, 8, 3);
        builder.aluImm(Opcode::SHL, 9, 9, 3);
        builder.alu(Opcode::IADD, 10, 10, 9);
        builder.st(MemSpace::Global, 10, 8);
        break;
      case 2: // forwarded atomic onto shared slots
        builder.aluImm(Opcode::AND, 9, 8, 7);
        builder.aluImm(Opcode::SHL, 9, 9, 3);
        builder.alu(Opcode::IADD, 10, 10, 9);
        builder.movImm(11, 1);
        builder.atom(AtomOp::Add, 13, 10, 11);
        break;
      default: // guarded injective store: first half of the grid
        builder.setpImm(CmpOp::LT, 6, 8,
                        kSoundBlocks * kSoundThreads / 2);
        builder.aluImm(Opcode::SHL, 9, 8, 3);
        builder.alu(Opcode::IADD, 10, 10, 9);
        builder.pred(6).st(MemSpace::Global, 10, 8);
        break;
    }
    builder.exit();
    return builder.finalize();
}

/** Run the kernel and return (verdict, output image). */
std::pair<SmParallelVerdict, std::vector<std::uint8_t>>
runSound(const Kernel &kernel, std::size_t tick_jobs)
{
    GpuConfig cfg = makeGF106();
    cfg.numSms = 4;
    cfg.numPartitions = 2;
    cfg.deviceMemBytes = 4 * 1024 * 1024;
    cfg.engine.smGroupSize = 1;
    cfg.engine.tickJobs = tick_jobs;
    Gpu gpu(cfg);

    const Addr out = gpu.alloc(kSoundOutBytes);
    const std::vector<std::uint8_t> zero(kSoundOutBytes, 0);
    gpu.copyToDevice(out, zero.data(), kSoundOutBytes);
    gpu.launch(kernel, kSoundBlocks, kSoundThreads, {out});

    std::vector<std::uint8_t> image(kSoundOutBytes);
    gpu.copyFromDevice(image.data(), out, kSoundOutBytes);
    return {gpu.lastVerdict(), image};
}

class VerdictSoundness
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(VerdictSoundness, TickJobsCannotChangeResults)
{
    Rng rng(GetParam() * 2654435761u + 17);
    const Kernel kernel = buildRandomMultiBlockKernel(rng);

    const auto [verdict_serial, image_serial] = runSound(kernel, 1);
    const auto [verdict_parallel, image_parallel] =
        runSound(kernel, 8);

    // The verdict itself must be schedule-invariant...
    EXPECT_EQ(verdict_serial.safe, verdict_parallel.safe);
    EXPECT_EQ(verdict_serial.reason, verdict_parallel.reason);

    // ...and so must every byte the program wrote. For safe
    // kernels this is the soundness claim; for serialized kernels
    // it checks the coordinator fallback.
    ASSERT_EQ(image_serial.size(), image_parallel.size());
    EXPECT_EQ(0, std::memcmp(image_serial.data(),
                             image_parallel.data(),
                             image_serial.size()))
        << "seed " << GetParam() << " (" << verdict_serial.reason
        << ") diverged across tickJobs";

    (verdict_serial.safe ? tally().safe : tally().serialized)
        .fetch_add(1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerdictSoundness,
                         ::testing::Range<std::uint64_t>(1, 25));

} // namespace
} // namespace gpulat
