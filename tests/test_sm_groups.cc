/**
 * @file
 * Per-SM tick groups: the launch-time SM-parallel kernel safety
 * analysis, the sharded collectors' deterministic merge, byte
 * identity of experiment output across tick-jobs values and SM
 * groupings, the per-SM request-id pools behind the launch
 * activity signature, and the engine's work-stealing worker pool
 * under deliberately uneven group sizes.
 */

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/experiment.hh"
#include "api/stat_sink.hh"
#include "engine/tick_engine.hh"
#include "gpu/gpu.hh"
#include "gpu/kernel_analysis.hh"
#include "isa/kernel.hh"
#include "latency/collector.hh"

namespace gpulat {
namespace {

// ------------------------------------------ kernel safety analysis

std::array<RegValue, kMaxParams>
makeParams(std::initializer_list<RegValue> vals)
{
    std::array<RegValue, kMaxParams> params{};
    std::size_t i = 0;
    for (RegValue v : vals)
        params[i++] = v;
    return params;
}

/** The vecadd idiom: guarded c[i] = a[i] + b[i] over disjoint
 *  arrays, gtid = ctaid * ntid + tid. */
Kernel
streamKernel(bool alias_output_with_input)
{
    KernelBuilder b("stream");
    b.s2r(0, SpecialReg::Tid)
        .s2r(1, SpecialReg::Ctaid)
        .s2r(2, SpecialReg::Ntid)
        .imad(0, 1, 2, 0)
        .movParam(3, 3)
        .setp(CmpOp::GE, 0, 0, 3)
        .pred(0)
        .bra("done")
        .aluImm(Opcode::SHL, 4, 0, 3)
        .movParam(5, 0)
        .alu(Opcode::IADD, 5, 5, 4)
        .ld(MemSpace::Global, 6, 5)
        .movParam(7, 1)
        .alu(Opcode::IADD, 7, 7, 4)
        .ld(MemSpace::Global, 8, 7)
        .alu(Opcode::FADD, 9, 6, 8)
        .movParam(10, alias_output_with_input ? 0 : 2)
        .alu(Opcode::IADD, 10, 10, 4)
        .st(MemSpace::Global, 10, 9)
        .label("done")
        .exit();
    return b.finalize();
}

TEST(SmParallelSafety, StreamingStoresAreSafe)
{
    // a at 0x1000, b at 0x41000, c at 0x81000, n = 8192: affine,
    // block stride 8 * ntid, disjoint arrays -> parallel-safe.
    const auto params =
        makeParams({0x1000, 0x41000, 0x81000, 8192});
    const SmParallelVerdict v = analyzeSmParallelSafety(
        streamKernel(false), 32, 256, params);
    EXPECT_TRUE(v.safe) << v.reason;
}

TEST(SmParallelSafety, InPlaceUpdateIsSafe)
{
    // a[i] = a[i] + b[i]: the store and the aliasing load have the
    // identical affine form, so every thread touches only its own
    // element — still cross-block disjoint.
    const auto params = makeParams({0x1000, 0x41000, 0, 8192});
    const SmParallelVerdict v = analyzeSmParallelSafety(
        streamKernel(true), 32, 256, params);
    EXPECT_TRUE(v.safe) << v.reason;
}

TEST(SmParallelSafety, SingleBlockIsAlwaysSafe)
{
    // One block lives on one SM; nothing can race across SMs, even
    // with an atomic in the kernel.
    KernelBuilder b("atom1");
    b.movParam(0, 0).movImm(1, 1)
        .atom(AtomOp::Add, 2, 0, 1).exit();
    const SmParallelVerdict v = analyzeSmParallelSafety(
        b.finalize(), 1, 256, makeParams({0x1000}));
    EXPECT_TRUE(v.safe) << v.reason;
}

TEST(SmParallelSafety, AtomicsArePartitionForwardedAndSafe)
{
    // Atomics no longer serialize: their functional RMW is forwarded
    // to the owning partition's accept hook, which runs under the
    // coordinator barrier in schedule-invariant arrival order.
    KernelBuilder b("atom");
    b.movParam(0, 0).movImm(1, 1)
        .atom(AtomOp::Add, 2, 0, 1).exit();
    const SmParallelVerdict v = analyzeSmParallelSafety(
        b.finalize(), 8, 256, makeParams({0x1000}));
    EXPECT_TRUE(v.safe) << v.reason;
    EXPECT_TRUE(v.atomicsForwarded);
    EXPECT_FALSE(v.hasStore); // atomics are not plain stores
}

TEST(SmParallelSafety, StoreFreeLoopIsSafe)
{
    // A pointer-chase style loop. The fixpoint walks the backward
    // edge instead of bailing on it; with no stores the launch is
    // safe no matter what the loop-carried addresses do.
    KernelBuilder b("loop");
    b.movParam(0, 0)
        .movImm(1, 8)
        .label("again")
        .ld(MemSpace::Global, 0, 0)
        .aluImm(Opcode::ISUB, 1, 1, 1)
        .setpImm(CmpOp::GT, 0, 1, 0)
        .pred(0)
        .bra("again")
        .exit();
    const SmParallelVerdict v = analyzeSmParallelSafety(
        b.finalize(), 8, 32, makeParams({0x1000}));
    EXPECT_TRUE(v.safe) << v.reason;
    EXPECT_FALSE(v.hasStore);
    EXPECT_GE(v.loopHeads, 1u);
}

TEST(SmParallelSafety, LoopCarriedStoreSerializes)
{
    // Same loop shape, but now it stores through the loop-carried
    // pointer: the domain cannot bound it, so the launch serializes.
    KernelBuilder b("loopst");
    b.movParam(0, 0)
        .movImm(1, 8)
        .label("again")
        .ld(MemSpace::Global, 0, 0)
        .st(MemSpace::Global, 0, 1)
        .aluImm(Opcode::ISUB, 1, 1, 1)
        .setpImm(CmpOp::GT, 0, 1, 0)
        .pred(0)
        .bra("again")
        .exit();
    const SmParallelVerdict v = analyzeSmParallelSafety(
        b.finalize(), 8, 32, makeParams({0x1000}));
    EXPECT_FALSE(v.safe);
    EXPECT_NE(v.reason.find("non-affine"), std::string::npos);
}

TEST(SmParallelSafety, StoreFreeKernelIsSafe)
{
    // Data-dependent loads (a pointer chase) are fine without
    // stores: reads of immutable memory commute.
    KernelBuilder b("chase");
    b.movParam(0, 0)
        .ld(MemSpace::Global, 0, 0)
        .ld(MemSpace::Global, 0, 0)
        .ld(MemSpace::Global, 0, 0)
        .exit();
    const SmParallelVerdict v = analyzeSmParallelSafety(
        b.finalize(), 8, 32, makeParams({0x1000}));
    EXPECT_TRUE(v.safe) << v.reason;
}

TEST(SmParallelSafety, DataDependentStoreSerializes)
{
    // Store address loaded from memory: not affine.
    KernelBuilder b("scatter");
    b.movParam(0, 0)
        .ld(MemSpace::Global, 1, 0)
        .movImm(2, 7)
        .st(MemSpace::Global, 1, 2)
        .exit();
    const SmParallelVerdict v = analyzeSmParallelSafety(
        b.finalize(), 8, 32, makeParams({0x1000}));
    EXPECT_FALSE(v.safe);
    EXPECT_NE(v.reason.find("non-affine"), std::string::npos);
}

TEST(SmParallelSafety, BlockSharedStoreTargetSerializes)
{
    // Every thread of every block stores to the same flag word:
    // affine but not injective across blocks.
    KernelBuilder b("flag");
    b.movParam(0, 0).movImm(1, 1)
        .st(MemSpace::Global, 0, 1).exit();
    const SmParallelVerdict v = analyzeSmParallelSafety(
        b.finalize(), 8, 32, makeParams({0x1000}));
    EXPECT_FALSE(v.safe);
    EXPECT_NE(v.reason.find("overlap"), std::string::npos);
}

TEST(SmParallelSafety, StoreAfterReconvergenceSerializes)
{
    // The store sits at/after the branch target, where register
    // state depends on which lanes took the branch.
    KernelBuilder b("join");
    b.s2r(0, SpecialReg::Tid)
        .movParam(1, 0)
        .setpImm(CmpOp::GE, 0, 0, 16)
        .pred(0)
        .bra("join")
        .aluImm(Opcode::SHL, 2, 0, 3)
        .alu(Opcode::IADD, 1, 1, 2)
        .label("join")
        .st(MemSpace::Global, 1, 0)
        .exit();
    const SmParallelVerdict v = analyzeSmParallelSafety(
        b.finalize(), 8, 32, makeParams({0x1000}));
    // Lane 0 of every block stores to params[0]: a genuine
    // cross-block race, surfaced as a non-affine store (the join of
    // the two paths' register states is unbounded).
    EXPECT_FALSE(v.safe);
    EXPECT_NE(v.reason.find("non-affine"), std::string::npos);
}

TEST(SmParallelSafety, SharedAndLocalAccessesStaySafe)
{
    // Shared memory is per-SM, local memory per-thread: neither
    // constrains cross-SM ticking, even with data-dependent
    // addressing.
    KernelBuilder b("smem");
    b.shared(1024)
        .s2r(0, SpecialReg::Tid)
        .aluImm(Opcode::SHL, 1, 0, 3)
        .st(MemSpace::Shared, 1, 0)
        .ld(MemSpace::Shared, 2, 1)
        .st(MemSpace::Local, 1, 2)
        .exit();
    const SmParallelVerdict v = analyzeSmParallelSafety(
        b.finalize(), 8, 32, makeParams({}));
    EXPECT_TRUE(v.safe) << v.reason;
}

// ------------------------------------------- collector shard merge

LatencyTrace
traceStamp(Cycle issue)
{
    LatencyTrace t;
    t.issue = issue;
    t.complete = issue + 100;
    return t;
}

TEST(ShardedCollectors, MergeReproducesSerialAppendOrder)
{
    // Serial shared-collector order within one core cycle: all
    // phase-0 records (return-port deliveries) in ascending smId
    // order, then all phase-1 records (SM ticks) in ascending smId
    // order; FIFO within a shard. The merged view must interleave
    // the shards exactly that way regardless of wall-clock append
    // interleaving (here: shard 1 fully appended before shard 0).
    LatencyCollector col;
    col.resize(2);
    col.shard(1).record(5, 0, traceStamp(10)); // cycle 5, delivery
    col.shard(1).record(5, 1, traceStamp(11)); // cycle 5, own tick
    col.shard(1).record(7, 1, traceStamp(12));
    col.shard(0).record(5, 1, traceStamp(20));
    col.shard(0).record(6, 0, traceStamp(21));
    col.shard(0).record(7, 1, traceStamp(22));

    const auto &traces = col.traces();
    ASSERT_EQ(traces.size(), 6u);
    const std::vector<Cycle> expect{10, 20, 11, 21, 22, 12};
    for (std::size_t i = 0; i < expect.size(); ++i)
        EXPECT_EQ(traces[i].issue, expect[i]) << i;

    // The merged view refreshes after further appends...
    col.shard(0).record(8, 1, traceStamp(23));
    EXPECT_EQ(col.traces().size(), 7u);
    EXPECT_EQ(col.traces().back().issue, 23u);

    // ...and clear() drops shards and view together.
    col.clear();
    EXPECT_EQ(col.count(), 0u);
    EXPECT_TRUE(col.traces().empty());
}

TEST(ShardedCollectors, ExposureMergesLikewise)
{
    ExposureCollector col;
    col.resize(3);
    col.shard(2).record(4, 1, 40, 4);
    col.shard(0).record(4, 1, 10, 1);
    col.shard(1).record(3, 1, 30, 3);
    const auto &recs = col.records();
    ASSERT_EQ(recs.size(), 3u);
    EXPECT_EQ(recs[0].total, 30u);
    EXPECT_EQ(recs[1].total, 10u);
    EXPECT_EQ(recs[2].total, 40u);
}

// ------------------------------- record identity across schedules

std::string
renderRecord(const ExperimentRecord &rec)
{
    std::ostringstream os;
    JsonSink sink(os);
    sink.write(rec);
    sink.finish();
    return os.str();
}

ExperimentRecord
runWith(const std::string &workload,
        const std::vector<std::string> &params,
        const std::vector<std::string> &overrides)
{
    ExperimentSpec spec;
    spec.gpu = "gf106";
    spec.workload = workload;
    spec.params = params;
    spec.overrides = overrides;
    return runExperiment(spec);
}

TEST(SmGroupDeterminism, ComputeHeavyOutputIsByteIdentical)
{
    // The ISSUE-6 gate, in-process: a compute-heavy, SM-parallel
    // workload must produce byte-identical records at tick-jobs 1
    // and 8 (warp-scheduler stress via high warp occupancy).
    const std::vector<std::string> params{"n=32768", "fmaDepth=48"};
    const auto a = runWith("compute_stream", params,
                           {"sm.warpSlots=48"});
    const auto b = runWith(
        "compute_stream", params,
        {"sm.warpSlots=48", "engine.tickJobs=8"});
    EXPECT_EQ(renderRecord(a), renderRecord(b));
    EXPECT_GT(a.cycles, 0u);
}

TEST(SmGroupDeterminism, NonUnityClockRatiosStayByteIdentical)
{
    const std::vector<std::string> ratios{"dramClock=1/2",
                                          "icntClock=2/3",
                                          "l2Clock=3/4"};
    auto with_jobs = ratios;
    with_jobs.push_back("engine.tickJobs=8");
    const auto a = runWith("vecadd", {"n=16384"}, ratios);
    const auto b = runWith("vecadd", {"n=16384"}, with_jobs);
    EXPECT_EQ(renderRecord(a), renderRecord(b));
}

TEST(SmGroupDeterminism, GroupingChangesOnlyGroupCounterNames)
{
    // smGroupSize reshapes the tick groups (and therefore the
    // engine.group.* counter names) but may not move a single
    // simulated cycle or trace-derived value.
    std::vector<ExperimentRecord> recs;
    for (const char *gs : {"0", "1", "2"})
        recs.push_back(runWith(
            "vecadd", {"n=16384"},
            {std::string("engine.smGroupSize=") + gs,
             "engine.tickJobs=8"}));
    auto nonGroup = [](const ExperimentRecord &rec) {
        std::map<std::string, std::uint64_t> filtered;
        for (const auto &[key, value] : rec.counters)
            if (key.rfind("engine.group.", 0) != 0)
                filtered.emplace(key, value);
        return filtered;
    };
    for (std::size_t i = 1; i < recs.size(); ++i) {
        EXPECT_EQ(recs[i].cycles, recs[0].cycles) << i;
        EXPECT_EQ(nonGroup(recs[i]), nonGroup(recs[0])) << i;
    }
    // The fused shape reports the legacy single group name.
    EXPECT_GT(recs[0].counters.at("engine.group.sm.ticks_run"), 0u);
    EXPECT_GT(recs[1].counters.at("engine.group.sm0.ticks_run"), 0u);
    EXPECT_GT(recs[2].counters.at("engine.group.sm1.ticks_run"), 0u);
}

// --------------------------------------- per-SM request-id pools

TEST(RequestIdPools, SumMatchesAcrossGroupingsAndLaunches)
{
    // The watchdog's activity signature now sums the per-SM pools;
    // the sum must be schedule-independent (it equals the value
    // the old shared counter would have had) and must keep growing
    // across launches so the signature keeps moving.
    auto runOnce = [](std::size_t group_size, std::size_t jobs) {
        GpuConfig cfg = makeConfig("gf106");
        cfg.numSms = 4;
        cfg.deviceMemBytes = 32 * 1024 * 1024;
        cfg.engine.smGroupSize = group_size;
        cfg.engine.tickJobs = jobs;
        Gpu gpu(cfg);

        KernelBuilder b("touch");
        b.s2r(0, SpecialReg::Tid)
            .s2r(1, SpecialReg::Ctaid)
            .s2r(2, SpecialReg::Ntid)
            .imad(0, 1, 2, 0)
            .aluImm(Opcode::SHL, 3, 0, 3)
            .movParam(4, 0)
            .alu(Opcode::IADD, 4, 4, 3)
            .ld(MemSpace::Global, 5, 4)
            .alu(Opcode::IADD, 5, 5, 5)
            .st(MemSpace::Global, 4, 5)
            .exit();
        const Kernel kernel = b.finalize();
        const Addr base = gpu.alloc(64 * 1024);

        std::vector<std::uint64_t> totals;
        std::uint64_t sum = 0;
        for (int launch = 0; launch < 2; ++launch) {
            gpu.launch(kernel, 8, 128, {base});
            sum = 0;
            for (unsigned s = 0; s < cfg.numSms; ++s)
                sum += gpu.sm(s).requestsIssued();
            totals.push_back(sum);
        }
        EXPECT_GT(totals[0], 0u);
        EXPECT_GT(totals[1], totals[0]); // signature keeps moving
        return totals;
    };

    const auto baseline = runOnce(0, 1);
    EXPECT_EQ(runOnce(1, 1), baseline);
    EXPECT_EQ(runOnce(1, 8), baseline);
    EXPECT_EQ(runOnce(2, 8), baseline);
}

// --------------------------------- work stealing on uneven groups

/** Ticks into component-private state only (group-parallel safe). */
struct PrivateLogComponent : Clocked
{
    void tick(Cycle now) override { log.push_back(now); }
    Cycle nextEventAt(Cycle now) const override { return now; }
    std::vector<Cycle> log;
};

TEST(WorkStealing, UnevenGroupsMatchSerialTicking)
{
    // Many groups of very different sizes: the shared-cursor pool
    // claims guided chunks, so fast workers steal the tail batches
    // from slow ones. Logs and per-group tick counters must still
    // match the serial schedule exactly.
    constexpr unsigned kGroups = 24;
    auto run = [](std::size_t tick_jobs) {
        TickEngine engine;
        engine.setMode(IdleFastForward::PerDomain);
        engine.setTickJobs(tick_jobs);
        ClockDomain &core =
            engine.addDomain("core", ClockRatio{1, 1});
        std::vector<std::unique_ptr<PrivateLogComponent>> comps;
        for (unsigned g = 0; g < kGroups; ++g) {
            const unsigned group = engine.addGroup(
                std::string("g") + std::to_string(g));
            // group g holds 1 + (g % 5) components: batch costs
            // differ by 5x across the section.
            for (unsigned m = 0; m <= g % 5; ++m) {
                comps.push_back(
                    std::make_unique<PrivateLogComponent>());
                engine.add(core, *comps.back(), group);
            }
        }
        for (int i = 0; i < 64; ++i)
            engine.step();

        std::vector<std::vector<Cycle>> logs;
        for (const auto &comp : comps)
            logs.push_back(comp->log);
        std::vector<std::uint64_t> ticks;
        for (unsigned g = 0; g < engine.numGroups(); ++g)
            ticks.push_back(engine.groupTicksRun(g));
        return std::make_pair(logs, ticks);
    };

    const auto serial = run(1);
    for (std::size_t jobs : {2u, 4u, 8u}) {
        const auto parallel = run(jobs);
        EXPECT_EQ(serial.first, parallel.first) << jobs;
        EXPECT_EQ(serial.second, parallel.second) << jobs;
    }
}

/** Appends to a log shared with other components: only safe when
 *  the engine serializes every appender on one thread. */
struct SharedLogComponent : Clocked
{
    SharedLogComponent(int n, std::vector<int> *l) : id(n), log(l) {}
    void tick(Cycle) override { log->push_back(id); }
    Cycle nextEventAt(Cycle now) const override { return now; }
    int id;
    std::vector<int> *log;
};

TEST(WorkStealing, SetSerializedPinsGroupsToCoordinator)
{
    // Two groups whose components secretly share a log: unsafe to
    // run on the pool, so a launch-time setSerialized() must pin
    // them to the coordinator (registration order), while the
    // declared-group tick counters keep counting as if nothing
    // happened. A third, private group stays parallel.
    TickEngine engine;
    engine.setMode(IdleFastForward::PerDomain);
    engine.setTickJobs(4);
    ClockDomain &core = engine.addDomain("core", ClockRatio{1, 1});
    const unsigned g1 = engine.addGroup("g1");
    const unsigned g2 = engine.addGroup("g2");
    const unsigned g3 = engine.addGroup("g3");

    std::vector<int> shared_log;
    SharedLogComponent a(1, &shared_log);
    SharedLogComponent b(2, &shared_log);
    PrivateLogComponent c;
    engine.add(core, a, g1);
    engine.add(core, b, g2);
    engine.add(core, c, g3);
    engine.setSerialized(a, true);
    engine.setSerialized(b, true);

    const int cycles = 64;
    for (int i = 0; i < cycles; ++i)
        engine.step();

    ASSERT_EQ(shared_log.size(),
              static_cast<std::size_t>(2 * cycles));
    for (int i = 0; i < cycles; ++i) {
        EXPECT_EQ(shared_log[2 * i], 1) << i;
        EXPECT_EQ(shared_log[2 * i + 1], 2) << i;
    }
    EXPECT_EQ(engine.groupTicksRun(g1),
              static_cast<std::uint64_t>(cycles));
    EXPECT_EQ(engine.groupTicksRun(g2),
              static_cast<std::uint64_t>(cycles));
    EXPECT_EQ(engine.groupTicksRun(g3),
              static_cast<std::uint64_t>(cycles));

    // Lifting a's pin returns it to the pool; b stays pinned, and
    // as a coordinator component it is a barrier that flushes a's
    // batch first — so the shared log must keep its registration
    // order even though a ticks on a worker again.
    engine.setSerialized(a, false);
    for (int i = 0; i < cycles; ++i)
        engine.step();
    ASSERT_EQ(shared_log.size(),
              static_cast<std::size_t>(4 * cycles));
    for (int i = 0; i < 2 * cycles; ++i) {
        EXPECT_EQ(shared_log[2 * i], 1) << i;
        EXPECT_EQ(shared_log[2 * i + 1], 2) << i;
    }
    EXPECT_EQ(engine.groupTicksRun(g3),
              static_cast<std::uint64_t>(2 * cycles));
}

} // namespace
} // namespace gpulat
