#include "engine/clock_domain.hh"

#include <algorithm>

#include "common/log.hh"

namespace gpulat {

namespace {

using Wide = unsigned __int128;

/**
 * Narrow a 128-bit tick/cycle value back to Cycle, saturating at
 * kNoCycle. Promises near 2^64 (a buggy or drained component one
 * off from kNoCycle) land on slow grids whose arithmetic exceeds
 * 64 bits; wrapping would hand fastForward() a *past* cycle and
 * time-travel the engine, while kNoCycle correctly reads "never".
 */
Cycle
narrow(Wide v)
{
    return v >= Wide{kNoCycle} ? kNoCycle : static_cast<Cycle>(v);
}

} // namespace

ClockDomain::ClockDomain(std::string name, ClockRatio ratio)
    : name_(std::move(name)), ratio_(ratio)
{
    GPULAT_ASSERT(ratio_.mul > 0 && ratio_.div > 0,
                  "clock ratio must be positive");
}

Cycle
ClockDomain::tickCycle(Cycle k, ClockRatio ratio)
{
    // A saturated tick index means "never": on a fast grid
    // (mul > div) the division below would otherwise shrink the
    // sentinel back into a finite — and bogus — cycle.
    if (k == kNoCycle)
        return kNoCycle;
    return narrow((Wide{k} * ratio.div + ratio.mul - 1) / ratio.mul);
}

Cycle
ClockDomain::ticksThrough(Cycle c, ClockRatio ratio)
{
    // Tick k lands on ceil(k * div / mul), so ticks with
    // k * div <= c * mul have happened by the end of cycle c:
    // floor(c * mul / div) of them with k >= 1, plus tick 0.
    return narrow(Wide{c} * ratio.mul / ratio.div + 1);
}

Cycle
ClockDomain::firstTickAtOrAfter(Cycle e, ClockRatio ratio)
{
    // ceil(k * div / mul) >= e  <=>  k * div > (e - 1) * mul
    //                           <=>  k > (e - 1) * mul / div.
    if (e == 0)
        return 0;
    return narrow(Wide{e - 1} * ratio.mul / ratio.div + 1);
}

Cycle
ClockDomain::ticksThrough(Cycle c) const
{
    return ticksThrough(c, ratio_);
}

unsigned
ClockDomain::dueTicks(Cycle c) const
{
    const Cycle through = ticksThrough(c);
    GPULAT_ASSERT(through >= ticks_, "domain ticked past schedule");
    return static_cast<unsigned>(through - ticks_);
}

void
ClockDomain::skipTo(Cycle c)
{
    GPULAT_ASSERT(c > 0, "cannot skip to cycle 0");
    ticks_ = std::max(ticks_, ticksThrough(c - 1));
}

Cycle
ClockDomain::nextTickAtOrAfter(Cycle e) const
{
    // Smallest unperformed tick index whose time is >= e.
    const Cycle k =
        std::max(firstTickAtOrAfter(e, ratio_), ticks_);
    return tickCycle(k, ratio_);
}

} // namespace gpulat
