#include "engine/tick_engine.hh"

#include <algorithm>

#include "common/log.hh"

namespace gpulat {

ClockDomain &
TickEngine::addDomain(std::string name, ClockRatio ratio)
{
    domains_.push_back(
        std::make_unique<ClockDomain>(std::move(name), ratio));
    due_.push_back(0);
    return *domains_.back();
}

void
TickEngine::add(ClockDomain &domain, Clocked &component)
{
    std::size_t idx = domains_.size();
    for (std::size_t d = 0; d < domains_.size(); ++d)
        if (domains_[d].get() == &domain)
            idx = d;
    GPULAT_ASSERT(idx < domains_.size(),
                  "domain not owned by this engine");
    for (const auto &reg : order_)
        GPULAT_ASSERT(reg.component != &component,
                      "component registered twice");
    order_.push_back(Registration{&domain, idx, &component});
}

void
TickEngine::step()
{
    for (std::size_t d = 0; d < domains_.size(); ++d)
        due_[d] = domains_[d]->dueTicks(now_);

    for (const auto &reg : order_) {
        const unsigned n = due_[reg.domainIdx];
        for (unsigned i = 0; i < n; ++i)
            reg.component->tick(now_);
    }

    for (std::size_t d = 0; d < domains_.size(); ++d)
        domains_[d]->retire(due_[d]);

    ++now_;
    ++steps_;
}

Cycle
TickEngine::fastForward()
{
    Cycle target = kNoCycle;
    for (const auto &reg : order_) {
        Cycle event = reg.component->nextEventAt(now_);
        if (event == kNoCycle)
            continue;
        event = std::max(event, now_);
        target = std::min(target,
                          reg.domain->nextTickAtOrAfter(event));
        if (target <= now_)
            return 0; // something is active right now
    }
    if (target == kNoCycle || target <= now_)
        return 0;

    for (const auto &reg : order_)
        reg.component->fastForward(now_, target);
    for (const auto &domain : domains_)
        domain->skipTo(target);

    const Cycle skipped = target - now_;
    now_ = target;
    skippedCycles_ += skipped;
    ++ffWindows_;
    return skipped;
}

} // namespace gpulat
