#include "engine/tick_engine.hh"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/log.hh"

namespace gpulat {

namespace {

/** Scheduled ticks of @p ratio landing in the window [from, to). */
Cycle
ticksIn(Cycle from, Cycle to, ClockRatio ratio)
{
    GPULAT_ASSERT(to > from, "empty tick window");
    const Cycle upto = ClockDomain::ticksThrough(to - 1, ratio);
    if (from == 0)
        return upto;
    return upto - ClockDomain::ticksThrough(from - 1, ratio);
}

} // namespace

/**
 * Persistent spinning worker pool for intra-cycle batch dispatch.
 *
 * Barrier-free by design: publishing a section is one release
 * store of a fresh (epoch, index=0) cursor word, workers claim
 * batch indices by CAS on that same word, and completion is an
 * atomic counter the coordinator spins on — no mutex or condition
 * variable is ever touched on the per-cycle path, which is what
 * keeps dispatch cost in the nanosecond range across millions of
 * simulated cycles.
 *
 * The epoch lives in the cursor's upper bits so every claim
 * atomically validates "this index belongs to the section I
 * joined": a straggler worker that wakes up late can never consume
 * (or double-run) a slot of a newer section — its CAS fails the
 * moment the epoch bits moved on. The coordinator participates in
 * its own sections, so on an oversubscribed or single-core host
 * the simulation still makes full progress even if the workers are
 * never scheduled; idle workers yield between epochs rather than
 * burning their whole quantum.
 */
class TickEngine::WorkerPool
{
  public:
    WorkerPool(TickEngine &owner, std::size_t workers)
        : owner_(owner)
    {
        threads_.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w)
            threads_.emplace_back([this] { workerLoop(); });
    }

    ~WorkerPool()
    {
        stop_.store(true, std::memory_order_release);
        {
            // Lock-then-notify: a worker is either before its
            // predicate check (sees stop_) or inside wait().
            std::lock_guard<std::mutex> lock(parkMu_);
        }
        parkCv_.notify_all();
        for (std::thread &t : threads_)
            t.join();
    }

    /** Execute owner_.runBatch(0 .. count-1); returns when all are
     *  done. Caller (the coordinator) participates. */
    void
    run(std::size_t count)
    {
        GPULAT_ASSERT(count < (std::uint64_t{1} << kIdxBits),
                      "section batch count exceeds cursor width");
        // Close the cursor under its own epoch *before* staging
        // the new section: a straggler still holding the previous
        // section's exhausted cursor word must see its CAS target
        // vanish before count_ can grow, or it could claim a
        // phantom batch in the staging window (index = old count,
        // which the new, larger count would declare valid). The
        // closed word's index is kIdxMask, which no count can
        // exceed, so it admits no claims under either count value.
        const std::uint64_t closed = ++epochSeq_;
        cursor_.store(closed << kIdxBits | kIdxMask,
                      std::memory_order_release);
        // Release on count_, acquire at its load: a straggler that
        // observes the new count is thereby guaranteed to also see
        // the close above — a relaxed store could sink past the
        // close on weakly-ordered hardware, reviving the phantom
        // claim against the old cursor word.
        count_.store(count, std::memory_order_release);
        done_.store(0, std::memory_order_relaxed);
        // The open store publishes the epoch, the reset index, and
        // (transitively) count_ plus all section data written
        // above: claimers acquire the cursor first. A distinct
        // epoch from `closed`, so a worker that probed the closed
        // word still wakes for the open one.
        const std::uint64_t epoch = ++epochSeq_;
        cursor_.store(epoch << kIdxBits, std::memory_order_release);
        if (parked_.load(std::memory_order_acquire) > 0) {
            {
                std::lock_guard<std::mutex> lock(parkMu_);
            }
            parkCv_.notify_all();
        }
        drain(epoch);
        while (done_.load(std::memory_order_acquire) < count)
            std::this_thread::yield();
    }

    std::size_t workers() const { return threads_.size(); }

  private:
    /** Claim and run batches of section @p epoch until it is
     *  exhausted or a newer section replaces it. Claims are guided
     *  self-scheduling: each CAS takes a chunk proportional to the
     *  remaining batches over the thread count, so sections with
     *  many small batches (one per SM group) cost O(threads) CAS
     *  round-trips instead of one per batch, while the final
     *  chunks shrink to single batches and an uneven tail can
     *  still be stolen one group at a time. */
    void
    drain(std::uint64_t epoch)
    {
        const std::size_t threads = threads_.size() + 1;
        std::uint64_t cur = cursor_.load(std::memory_order_acquire);
        while (true) {
            if ((cur >> kIdxBits) != epoch)
                return; // a newer section owns the cursor
            const std::size_t idx =
                static_cast<std::size_t>(cur & kIdxMask);
            // A matching-epoch cursor acquire makes this epoch's
            // count visible. A stale worker may pair an old epoch
            // with a newer count, but run() closes the cursor
            // (fresh epoch, index = kIdxMask) before publishing
            // that count (release/acquire on count_ keeps the
            // order on weak hardware), so the stale CAS target no
            // longer exists and the worst case is one wasted loop.
            const std::size_t count =
                count_.load(std::memory_order_acquire);
            if (idx >= count)
                return; // exhausted
            const std::size_t take =
                std::max<std::size_t>(1,
                                      (count - idx) / (2 * threads));
            if (cursor_.compare_exchange_weak(
                    cur, cur + take, std::memory_order_acq_rel,
                    std::memory_order_acquire)) {
                for (std::size_t b = 0; b < take; ++b)
                    owner_.runBatch(idx + b);
                done_.fetch_add(take, std::memory_order_release);
                cur = cursor_.load(std::memory_order_acquire);
            }
            // CAS failure reloaded cur: revalidate epoch + index.
        }
    }

    void
    workerLoop()
    {
        std::uint64_t seen = 0;
        unsigned idle_polls = 0;
        while (true) {
            const std::uint64_t epoch =
                cursor_.load(std::memory_order_acquire) >> kIdxBits;
            if (epoch == seen) {
                if (stop_.load(std::memory_order_acquire))
                    return;
                // Spin-yield while sections are streaming (they
                // arrive every active cycle, far apart only during
                // fast-forward jumps and serial phases), then park
                // — a standing spin would tax every core of the
                // host for the whole life of the simulation.
                if (++idle_polls < kPollsBeforePark) {
                    std::this_thread::yield();
                    continue;
                }
                std::unique_lock<std::mutex> lock(parkMu_);
                parked_.fetch_add(1, std::memory_order_acq_rel);
                parkCv_.wait(lock, [&] {
                    return (cursor_.load(std::memory_order_acquire)
                            >> kIdxBits) != seen ||
                        stop_.load(std::memory_order_acquire);
                });
                parked_.fetch_sub(1, std::memory_order_acq_rel);
                idle_polls = 0;
                continue;
            }
            seen = epoch;
            idle_polls = 0;
            drain(epoch);
        }
    }

    /** 2^20 batches per section is far beyond any group count;
     *  44 epoch bits outlast any simulation. */
    static constexpr unsigned kIdxBits = 20;
    static constexpr std::uint64_t kIdxMask =
        (std::uint64_t{1} << kIdxBits) - 1;
    /** Idle polls before a worker parks on the condvar. */
    static constexpr unsigned kPollsBeforePark = 256;

    TickEngine &owner_;
    std::vector<std::thread> threads_;
    std::atomic<bool> stop_{false};
    std::mutex parkMu_;
    std::condition_variable parkCv_;
    std::atomic<unsigned> parked_{0};
    /** (epoch << kIdxBits) | next unclaimed batch index. */
    std::atomic<std::uint64_t> cursor_{0};
    std::atomic<std::size_t> done_{0};
    std::uint64_t epochSeq_ = 0; ///< coordinator-only
    /** Batches in the current section; written before the epoch
     *  publish, atomic because stale-epoch workers may still probe
     *  it while the next section is being staged. */
    std::atomic<std::size_t> count_{0};
};

TickEngine::TickEngine()
{
    groups_.push_back(TickGroup{"main", 0, nullptr});
}

TickEngine::~TickEngine() = default;

ClockDomain &
TickEngine::addDomain(std::string name, ClockRatio ratio)
{
    domains_.push_back(
        std::make_unique<ClockDomain>(std::move(name), ratio));
    due_.push_back(0);
    return *domains_.back();
}

ClockDomain *
TickEngine::findDomain(const std::string &name)
{
    for (const auto &domain : domains_) {
        if (domain->name() == name)
            return domain.get();
    }
    return nullptr;
}

unsigned
TickEngine::addGroup(std::string name)
{
    groups_.push_back(TickGroup{std::move(name), 0, nullptr});
    scheduleDirty_ = true;
    return static_cast<unsigned>(groups_.size() - 1);
}

void
TickEngine::add(ClockDomain &domain, Clocked &component,
                unsigned group)
{
    std::size_t idx = domains_.size();
    for (std::size_t d = 0; d < domains_.size(); ++d)
        if (domains_[d].get() == &domain)
            idx = d;
    GPULAT_ASSERT(idx < domains_.size(),
                  "domain not owned by this engine");
    GPULAT_ASSERT(group < groups_.size(),
                  "tick group not created via addGroup()");
    for (const auto &reg : order_)
        GPULAT_ASSERT(reg.component != &component,
                      "component registered twice");
    Registration reg;
    reg.domain = &domain;
    reg.domainIdx = idx;
    reg.component = &component;
    reg.group = group;
    reg.effGroup = group;
    order_.push_back(std::move(reg));
    scheduleDirty_ = true;
}

std::size_t
TickEngine::indexOf(const Clocked &component) const
{
    for (std::size_t i = 0; i < order_.size(); ++i)
        if (order_[i].component == &component)
            return i;
    GPULAT_ASSERT(false, "component not registered");
    return order_.size();
}

void
TickEngine::link(Clocked &producer, Clocked &consumer)
{
    const std::size_t src = indexOf(producer);
    const std::size_t dst = indexOf(consumer);
    auto &edges = order_[src].consumers;
    if (std::find(edges.begin(), edges.end(), dst) == edges.end())
        edges.push_back(dst);
    scheduleDirty_ = true;
}

void
TickEngine::setTickJobs(std::size_t jobs)
{
    tickJobs_ = resolveTickJobs(jobs);
    scheduleDirty_ = true;
}

void
TickEngine::setSerialized(Clocked &component, bool serialized)
{
    Registration &reg = order_[indexOf(component)];
    if (reg.forceSerial == serialized)
        return;
    reg.forceSerial = serialized;
    scheduleDirty_ = true;
}

std::size_t
TickEngine::resolveTickJobs(std::size_t jobs)
{
    if (jobs != 0)
        return jobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

void
TickEngine::finalizeSchedule()
{
    scheduleDirty_ = false;

    // A wake edge between two *different* non-coordinator groups
    // means those components interact within a cycle, so ticking
    // their groups concurrently could reorder a delivery against a
    // tick — demote both endpoints to the coordinator, where the
    // registration-order walk serializes them exactly like the
    // tickJobs == 1 path. Demotion is computed from the declared
    // groups in one pass: a demoted component keeps acting as a
    // barrier for every batch around it, which is always safe.
    for (auto &reg : order_)
        reg.effGroup = reg.forceSerial ? 0 : reg.group;
    for (std::size_t i = 0; i < order_.size(); ++i) {
        for (const std::size_t c : order_[i].consumers) {
            if (order_[i].group != order_[c].group &&
                order_[i].group != 0 && order_[c].group != 0) {
                order_[i].effGroup = 0;
                order_[c].effGroup = 0;
            }
        }
    }

    // Parallel stepping pays off only when at least two distinct
    // groups can actually be in flight together.
    std::vector<bool> seen(groups_.size(), false);
    std::size_t runnable = 0;
    for (const auto &reg : order_) {
        if (reg.effGroup != 0 && !seen[reg.effGroup]) {
            seen[reg.effGroup] = true;
            ++runnable;
        }
    }
    parallelActive_ = tickJobs_ > 1 && runnable >= 2;

    if (!parallelActive_) {
        pool_.reset();
        return;
    }

    groupPending_.resize(groups_.size());
    sectionErrors_.reserve(runnable);

    // Workers beyond (groups - 1) could never find a batch: the
    // coordinator always takes one itself.
    const std::size_t workers =
        std::min(tickJobs_, runnable) - 1;
    if (!pool_ || pool_->workers() != workers)
        pool_ = std::make_unique<WorkerPool>(*this, workers);
}

void
TickEngine::bindStats(StatRegistry &stats)
{
    for (auto &domain : domains_)
        domain->bindStats(stats);
    for (auto &group : groups_) {
        group.counter = &stats.counter(
            "engine.group." + group.name + ".ticks_run");
    }
}

void
TickEngine::account(Registration &reg, Cycle to)
{
    if (reg.accountedThrough >= to)
        return;
    const Cycle from = reg.accountedThrough;
    reg.accountedThrough = to;
    reg.component->fastForward(from, to);
    reg.domain->noteSkipped(ticksIn(from, to, reg.domain->ratio()));
}

bool
TickEngine::bookkeepTick(Registration &reg, unsigned n,
                         bool selective)
{
    if (selective && reg.cacheValid && reg.cachedEvent > now_) {
        // Promised dead through every scheduled tick before
        // cachedEvent: sleep, account the window lazily.
        return false;
    }
    // Close idle windows before anything observes per-cycle
    // statistics: the component's own (idle-cumulative reads
    // during its tick), then every consumer's — this tick may
    // deliver into them, and delivery paths read the consumer's
    // counters (e.g. load-exposure accounting).
    account(reg, now_);
    if (selective) {
        for (const std::size_t c : reg.consumers)
            account(order_[c], now_);
    }
    reg.accountedThrough = now_ + 1;
    reg.domain->noteRun(n);
    noteGroupTicks(reg.group, n);
    reg.refreshDue = true;
    if (selective) {
        // The tick may deliver input: a consumer later in the
        // order must run its scheduled tick this very cycle (naive
        // ticking would have), so its stale promise is discarded;
        // consumers whose slot already passed are simply
        // re-queried after the cycle.
        for (const std::size_t c : reg.consumers) {
            order_[c].cacheValid = false;
            order_[c].refreshDue = true;
        }
    }
    return true;
}

void
TickEngine::stepSerial(bool selective)
{
    for (auto &reg : order_) {
        const unsigned n = due_[reg.domainIdx];
        if (n == 0)
            continue;
        if (!bookkeepTick(reg, n, selective))
            continue;
        for (unsigned i = 0; i < n; ++i)
            reg.component->tick(now_);
    }
}

void
TickEngine::runBatch(std::size_t batch)
{
    const Batch &b = sectionBatches_[batch];
    try {
        for (std::size_t s = b.begin; s < b.end; ++s) {
            Registration &reg = order_[sectionRegs_[s]];
            const unsigned n = due_[reg.domainIdx];
            for (unsigned i = 0; i < n; ++i)
                reg.component->tick(now_);
        }
    } catch (...) {
        // Deterministic propagation: the coordinator rethrows the
        // lowest-indexed batch's failure after the join.
        sectionErrors_[batch] = std::current_exception();
    }
}

void
TickEngine::flushSection()
{
    if (pendingGroups_.empty())
        return;

    sectionRegs_.clear();
    sectionBatches_.clear();
    for (const unsigned g : pendingGroups_) {
        auto &pending = groupPending_[g];
        const std::size_t begin = sectionRegs_.size();
        sectionRegs_.insert(sectionRegs_.end(), pending.begin(),
                            pending.end());
        sectionBatches_.push_back(Batch{begin, sectionRegs_.size()});
        pending.clear();
    }
    pendingGroups_.clear();

    sectionErrors_.assign(sectionBatches_.size(), nullptr);
    if (sectionBatches_.size() == 1) {
        // One group: nothing to overlap, skip the dispatch (this
        // is the common shape for the SM group's slice of a cycle).
        runBatch(0);
    } else {
        pool_->run(sectionBatches_.size());
        ++parSections_;
    }
    for (const std::exception_ptr &err : sectionErrors_) {
        if (err)
            std::rethrow_exception(err);
    }
    sectionErrors_.clear();
}

void
TickEngine::stepParallel(bool selective)
{
    // The coordinator walks the identical registration order with
    // the identical bookkeepTick() the serial path uses — sleep
    // checks, idle-window accounting, promise invalidation, run
    // counters all happen here, serially, in order (decisions
    // depend only on engine-side flags, never on tick side
    // effects). Only the ticks themselves differ: bookkeeping runs
    // before a component's ticks in both paths, and consumer
    // windows are closed before any producer's tick can deliver
    // into them, so deferring a batch's ticks to the section flush
    // leaves every account-before-tick ordering intact.
    //
    // Coordinator-group components tick inline, flushing the
    // accumulated parallel batches first, so every cross-group
    // interaction (which by construction passes through a
    // coordinator component or a demoted endpoint) sees its
    // operands in registration order.
    for (std::size_t i = 0; i < order_.size(); ++i) {
        Registration &reg = order_[i];
        const unsigned n = due_[reg.domainIdx];
        if (n == 0)
            continue;
        if (!bookkeepTick(reg, n, selective))
            continue;

        if (reg.effGroup == 0) {
            flushSection();
            for (unsigned t = 0; t < n; ++t)
                reg.component->tick(now_);
        } else {
            if (groupPending_[reg.effGroup].empty())
                pendingGroups_.push_back(reg.effGroup);
            groupPending_[reg.effGroup].push_back(i);
        }
    }
    flushSection();
}

void
TickEngine::step()
{
    if (scheduleDirty_)
        finalizeSchedule();

    for (std::size_t d = 0; d < domains_.size(); ++d)
        due_[d] = domains_[d]->dueTicks(now_);

    const bool selective = mode_ == IdleFastForward::PerDomain;
    if (parallelActive_)
        stepParallel(selective);
    else
        stepSerial(selective);

    for (std::size_t d = 0; d < domains_.size(); ++d)
        domains_[d]->retire(due_[d]);

    ++now_;
    ++steps_;

    // Refresh the promise of everything that ticked or was
    // delivered into, exactly once, after the whole cycle — the
    // O(changed components) path. Promises reflect all deliveries
    // at query time (see Clocked), so a quiet consumer re-queried
    // after a producer's no-op tick keeps its old event and stays
    // asleep: wake waves die out instead of cascading. Only the
    // per-domain mode caches: Off never consults promises, and
    // Full re-queries everything fresh on each fastForward() call
    // (it has no wake edges to keep a cache honest with).
    if (selective) {
        for (auto &reg : order_) {
            if (!reg.refreshDue)
                continue;
            reg.refreshDue = false;
            reg.cachedEvent = reg.component->nextEventAt(now_);
            reg.cacheValid = true;
        }
    }
}

Cycle
TickEngine::fastForward()
{
    if (mode_ == IdleFastForward::Off)
        return 0;

    const bool selective = mode_ == IdleFastForward::PerDomain;
    Cycle target = kNoCycle;
    for (const auto &reg : order_) {
        // PerDomain trusts the event cache (wake edges keep it
        // honest; a component without a fresh post-tick promise is
        // assumed active at its next scheduled tick). Full has no
        // edges, so it must re-query every component fresh.
        Cycle event;
        if (selective)
            event = reg.cacheValid ? reg.cachedEvent : now_;
        else
            event = reg.component->nextEventAt(now_);
        if (event == kNoCycle)
            continue;
        event = std::max(event, now_);
        // nextTickAtOrAfter() saturates to kNoCycle instead of
        // wrapping, so a promise near 2^64 on a slow grid reads as
        // "never" rather than time-travelling the engine.
        target = std::min(target,
                          reg.domain->nextTickAtOrAfter(event));
        if (target <= now_)
            return 0; // something is due right now
    }
    // Every component drained (all promises kNoCycle), or nothing
    // strictly ahead: no jump. The drained case matters — there is
    // no event to aim at, so attempting arithmetic on kNoCycle
    // would overflow the grid math.
    if (target == kNoCycle || target <= now_)
        return 0;

    for (auto &reg : order_)
        account(reg, target);
    for (const auto &domain : domains_)
        domain->skipTo(target);

    const Cycle skipped = target - now_;
    now_ = target;
    skippedCycles_ += skipped;
    ++ffWindows_;
    return skipped;
}

void
TickEngine::wakeAll()
{
    for (auto &reg : order_) {
        reg.cacheValid = false;
        reg.refreshDue = false;
    }
}

void
TickEngine::settle()
{
    for (auto &reg : order_)
        account(reg, now_);
}

std::uint64_t
TickEngine::componentTicksSkipped() const
{
    std::uint64_t sum = 0;
    for (const auto &domain : domains_)
        sum += domain->componentTicksSkipped();
    return sum;
}

} // namespace gpulat
