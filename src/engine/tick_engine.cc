#include "engine/tick_engine.hh"

#include <algorithm>

#include "common/log.hh"

namespace gpulat {

namespace {

/** Scheduled ticks of @p ratio landing in the window [from, to). */
Cycle
ticksIn(Cycle from, Cycle to, ClockRatio ratio)
{
    GPULAT_ASSERT(to > from, "empty tick window");
    const Cycle upto = ClockDomain::ticksThrough(to - 1, ratio);
    if (from == 0)
        return upto;
    return upto - ClockDomain::ticksThrough(from - 1, ratio);
}

} // namespace

ClockDomain &
TickEngine::addDomain(std::string name, ClockRatio ratio)
{
    domains_.push_back(
        std::make_unique<ClockDomain>(std::move(name), ratio));
    due_.push_back(0);
    return *domains_.back();
}

void
TickEngine::add(ClockDomain &domain, Clocked &component)
{
    std::size_t idx = domains_.size();
    for (std::size_t d = 0; d < domains_.size(); ++d)
        if (domains_[d].get() == &domain)
            idx = d;
    GPULAT_ASSERT(idx < domains_.size(),
                  "domain not owned by this engine");
    for (const auto &reg : order_)
        GPULAT_ASSERT(reg.component != &component,
                      "component registered twice");
    Registration reg;
    reg.domain = &domain;
    reg.domainIdx = idx;
    reg.component = &component;
    order_.push_back(std::move(reg));
}

std::size_t
TickEngine::indexOf(const Clocked &component) const
{
    for (std::size_t i = 0; i < order_.size(); ++i)
        if (order_[i].component == &component)
            return i;
    GPULAT_ASSERT(false, "component not registered");
    return order_.size();
}

void
TickEngine::link(Clocked &producer, Clocked &consumer)
{
    const std::size_t src = indexOf(producer);
    const std::size_t dst = indexOf(consumer);
    auto &edges = order_[src].consumers;
    if (std::find(edges.begin(), edges.end(), dst) == edges.end())
        edges.push_back(dst);
}

void
TickEngine::bindStats(StatRegistry &stats)
{
    for (auto &domain : domains_)
        domain->bindStats(stats);
}

void
TickEngine::account(Registration &reg, Cycle to)
{
    if (reg.accountedThrough >= to)
        return;
    const Cycle from = reg.accountedThrough;
    reg.accountedThrough = to;
    reg.component->fastForward(from, to);
    reg.domain->noteSkipped(ticksIn(from, to, reg.domain->ratio()));
}

void
TickEngine::step()
{
    for (std::size_t d = 0; d < domains_.size(); ++d)
        due_[d] = domains_[d]->dueTicks(now_);

    const bool selective = mode_ == IdleFastForward::PerDomain;
    for (auto &reg : order_) {
        const unsigned n = due_[reg.domainIdx];
        if (n == 0)
            continue;
        if (selective && reg.cacheValid && reg.cachedEvent > now_) {
            // Promised dead through every scheduled tick before
            // cachedEvent: sleep, account the window lazily.
            continue;
        }
        // Close idle windows before anything observes per-cycle
        // statistics: the component's own (idle-cumulative reads
        // during its tick), then every consumer's — this tick may
        // deliver into them, and delivery paths read the
        // consumer's counters (e.g. load-exposure accounting).
        account(reg, now_);
        if (selective) {
            for (const std::size_t c : reg.consumers)
                account(order_[c], now_);
        }
        for (unsigned i = 0; i < n; ++i)
            reg.component->tick(now_);
        reg.accountedThrough = now_ + 1;
        reg.domain->noteRun(n);
        reg.refreshDue = true;
        if (selective) {
            // The tick may have delivered input: a consumer later
            // in the order must run its scheduled tick this very
            // cycle (naive ticking would have), so its stale
            // promise is discarded; consumers whose slot already
            // passed are simply re-queried after the cycle.
            for (const std::size_t c : reg.consumers) {
                order_[c].cacheValid = false;
                order_[c].refreshDue = true;
            }
        }
    }

    for (std::size_t d = 0; d < domains_.size(); ++d)
        domains_[d]->retire(due_[d]);

    ++now_;
    ++steps_;

    // Refresh the promise of everything that ticked or was
    // delivered into, exactly once, after the whole cycle — the
    // O(changed components) path. Promises reflect all deliveries
    // at query time (see Clocked), so a quiet consumer re-queried
    // after a producer's no-op tick keeps its old event and stays
    // asleep: wake waves die out instead of cascading. Only the
    // per-domain mode caches: Off never consults promises, and
    // Full re-queries everything fresh on each fastForward() call
    // (it has no wake edges to keep a cache honest with).
    if (selective) {
        for (auto &reg : order_) {
            if (!reg.refreshDue)
                continue;
            reg.refreshDue = false;
            reg.cachedEvent = reg.component->nextEventAt(now_);
            reg.cacheValid = true;
        }
    }
}

Cycle
TickEngine::fastForward()
{
    if (mode_ == IdleFastForward::Off)
        return 0;

    const bool selective = mode_ == IdleFastForward::PerDomain;
    Cycle target = kNoCycle;
    for (const auto &reg : order_) {
        // PerDomain trusts the event cache (wake edges keep it
        // honest; a component without a fresh post-tick promise is
        // assumed active at its next scheduled tick). Full has no
        // edges, so it must re-query every component fresh.
        Cycle event;
        if (selective)
            event = reg.cacheValid ? reg.cachedEvent : now_;
        else
            event = reg.component->nextEventAt(now_);
        if (event == kNoCycle)
            continue;
        event = std::max(event, now_);
        target = std::min(target,
                          reg.domain->nextTickAtOrAfter(event));
        if (target <= now_)
            return 0; // something is due right now
    }
    if (target == kNoCycle || target <= now_)
        return 0;

    for (auto &reg : order_)
        account(reg, target);
    for (const auto &domain : domains_)
        domain->skipTo(target);

    const Cycle skipped = target - now_;
    now_ = target;
    skippedCycles_ += skipped;
    ++ffWindows_;
    return skipped;
}

void
TickEngine::wakeAll()
{
    for (auto &reg : order_) {
        reg.cacheValid = false;
        reg.refreshDue = false;
    }
}

void
TickEngine::settle()
{
    for (auto &reg : order_)
        account(reg, now_);
}

std::uint64_t
TickEngine::componentTicksSkipped() const
{
    std::uint64_t sum = 0;
    for (const auto &domain : domains_)
        sum += domain->componentTicksSkipped();
    return sum;
}

} // namespace gpulat
