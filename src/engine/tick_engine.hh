/**
 * @file
 * The tick engine: owns the clock domains, advances every
 * registered component in deterministic ratio-correct order, and
 * fast-forwards over windows where all components report idle.
 *
 * Ordering rules (what makes multi-rate simulation reproducible):
 *  - within one core cycle, components tick in registration order,
 *    regardless of domain — so at unity ratios the engine replays
 *    exactly the hand-written orchestration it replaced;
 *  - a faster-than-core domain owes several ticks on some core
 *    cycles; a component runs all its due ticks consecutively at
 *    its position in the registration order;
 *  - a slower-than-core domain is simply skipped on the core
 *    cycles it is not scheduled on.
 *
 * Fast-forward: after each step the owner may call fastForward(),
 * which queries every component's next event, aligns each to its
 * domain's tick grid, and jumps to the earliest. Components are
 * notified so per-cycle statistics stay bit-identical to naive
 * ticking. This turns the drain tail of a launch (one real loop
 * iteration per simulated cycle in the old code) into a single
 * arithmetic step.
 */

#ifndef GPULAT_ENGINE_TICK_ENGINE_HH
#define GPULAT_ENGINE_TICK_ENGINE_HH

#include <memory>
#include <string>
#include <vector>

#include "engine/clock_domain.hh"
#include "engine/clocked.hh"

namespace gpulat {

class TickEngine
{
  public:
    /** Create a domain; the engine owns it. */
    ClockDomain &addDomain(std::string name, ClockRatio ratio);

    /**
     * Register @p component in @p domain. Components tick in
     * registration order within a core cycle; a component may be
     * registered only once.
     */
    void add(ClockDomain &domain, Clocked &component);

    /** Current core cycle. */
    Cycle now() const { return now_; }

    /** Tick every due component at now(), then advance one cycle. */
    void step();

    /**
     * If every component is idle, jump to the earliest upcoming
     * event (aligned to its domain's tick grid).
     * @return cycles skipped (0 when anything is active).
     */
    Cycle fastForward();

    /** @name Fast-forward effectiveness (for benches/reports) @{ */
    Cycle skippedCycles() const { return skippedCycles_; }
    std::uint64_t fastForwardWindows() const { return ffWindows_; }
    std::uint64_t steps() const { return steps_; }
    /** @} */

    const std::vector<std::unique_ptr<ClockDomain>> &domains() const
    {
        return domains_;
    }

  private:
    struct Registration
    {
        ClockDomain *domain;
        std::size_t domainIdx;
        Clocked *component;
    };

    std::vector<std::unique_ptr<ClockDomain>> domains_;
    std::vector<Registration> order_;
    std::vector<unsigned> due_; ///< per-domain scratch for step()

    Cycle now_ = 0;
    Cycle skippedCycles_ = 0;
    std::uint64_t ffWindows_ = 0;
    std::uint64_t steps_ = 0;
};

} // namespace gpulat

#endif // GPULAT_ENGINE_TICK_ENGINE_HH
