/**
 * @file
 * The tick engine: owns the clock domains and advances every
 * registered component in deterministic ratio-correct order, as an
 * event-scheduled stepper — each component carries a cached
 * next-event promise, and the engine only performs the ticks that
 * might do work, advancing each clock domain independently to its
 * earliest pending event.
 *
 * Ordering rules (what makes multi-rate simulation reproducible):
 *  - within one core cycle, components tick in registration order,
 *    regardless of domain — so at unity ratios the engine replays
 *    exactly the hand-written orchestration it replaced;
 *  - a faster-than-core domain owes several ticks on some core
 *    cycles; a component runs all its due ticks consecutively at
 *    its position in the registration order;
 *  - a slower-than-core domain is simply skipped on the core
 *    cycles it is not scheduled on.
 *
 * Event cache: after a component ticks, its nextEventAt() promise
 * is queried exactly once and cached. The cache is discarded when
 * the component ticks again or when one of its declared producers
 * (link()) ticks — a producer's tick may deliver input, and a
 * promise is only required to be valid right after the component's
 * own tick. A component whose cache says "nothing before cycle E"
 * is not ticked before E; its scheduled-but-dead ticks are
 * accounted lazily through fastForward() windows, which keeps
 * per-cycle statistics bit-identical to naive ticking. The no-skip
 * path is O(components that changed): a sleeping component's
 * promise is never re-consulted without an intervening tick.
 *
 * Modes (IdleFastForward):
 *  - Off: tick everything, never consult promises (naive reference);
 *  - Full: tick everything each visited cycle, jump only windows
 *    where every component is idle;
 *  - PerDomain: also let individual components sleep through
 *    cycles the engine visits for some other domain's event, so a
 *    long DRAM bank wait no longer drags the core/icnt/L2
 *    components through per-cycle no-op ticks (and core drain
 *    tails no longer tick DRAM refresh state cycle by cycle).
 */

#ifndef GPULAT_ENGINE_TICK_ENGINE_HH
#define GPULAT_ENGINE_TICK_ENGINE_HH

#include <memory>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "engine/clock_domain.hh"
#include "engine/clocked.hh"

namespace gpulat {

class TickEngine
{
  public:
    /** Create a domain; the engine owns it. */
    ClockDomain &addDomain(std::string name, ClockRatio ratio);

    /**
     * Register @p component in @p domain. Components tick in
     * registration order within a core cycle; a component may be
     * registered only once.
     */
    void add(ClockDomain &domain, Clocked &component);

    /**
     * Declare a wake edge: a performed tick of @p producer may
     * deliver input to @p consumer (push a packet, dispatch a
     * block), invalidating the consumer's cached promise. Both
     * must already be add()ed. PerDomain mode is only cycle-exact
     * when every delivery path is declared; Off/Full ignore edges.
     */
    void link(Clocked &producer, Clocked &consumer);

    /** Select the fast-forward policy (default Full). */
    void setMode(IdleFastForward mode) { mode_ = mode; }
    IdleFastForward mode() const { return mode_; }

    /** Mirror per-domain tick counters into @p stats. */
    void bindStats(StatRegistry &stats);

    /** Current core cycle. */
    Cycle now() const { return now_; }

    /**
     * Tick every due component that might do work at now(), then
     * advance one cycle. In PerDomain mode a component whose cached
     * promise says it is dead at now() is skipped (and accounted
     * lazily); Off/Full tick everything due.
     */
    void step();

    /**
     * Jump to the earliest upcoming event over all components
     * (each aligned to its domain's tick grid). In Off mode this
     * is a no-op.
     * @return cycles skipped (0 when anything is due right now).
     */
    Cycle fastForward();

    /**
     * Discard every cached promise. Call after mutating component
     * state from outside the engine (arming a dispatcher, loading
     * warps, resetting DRAM): cached promises cannot see external
     * writes.
     */
    void wakeAll();

    /**
     * Flush lazy idle accounting: every component's fastForward()
     * windows are closed through now(). Call before reading
     * per-cycle statistics (end of a launch).
     */
    void settle();

    /** @name Fast-forward effectiveness (for benches/reports) @{ */
    Cycle skippedCycles() const { return skippedCycles_; }
    std::uint64_t fastForwardWindows() const { return ffWindows_; }
    std::uint64_t steps() const { return steps_; }
    /** Component ticks skipped, summed over all domains. */
    std::uint64_t componentTicksSkipped() const;
    /** @} */

    const std::vector<std::unique_ptr<ClockDomain>> &domains() const
    {
        return domains_;
    }

  private:
    struct Registration
    {
        ClockDomain *domain;
        std::size_t domainIdx;
        Clocked *component;

        /** Raw promise from the last post-tick query (kNoCycle =
         *  fully drained); meaningless while !cacheValid. */
        Cycle cachedEvent = 0;
        bool cacheValid = false;
        /** Scheduled ticks before this core cycle have all been
         *  performed or fastForward()-accounted. */
        Cycle accountedThrough = 0;
        /** Ticked or delivered into during the current step():
         *  promise re-query due after the cycle completes. */
        bool refreshDue = false;
        /** Registration indices this component can deliver into. */
        std::vector<std::size_t> consumers;
    };

    std::size_t indexOf(const Clocked &component) const;

    /** Close the lazy idle window [accountedThrough, to). */
    void account(Registration &reg, Cycle to);

    std::vector<std::unique_ptr<ClockDomain>> domains_;
    std::vector<Registration> order_;
    std::vector<unsigned> due_; ///< per-domain scratch for step()

    IdleFastForward mode_ = IdleFastForward::Full;

    Cycle now_ = 0;
    Cycle skippedCycles_ = 0;
    std::uint64_t ffWindows_ = 0;
    std::uint64_t steps_ = 0;
};

} // namespace gpulat

#endif // GPULAT_ENGINE_TICK_ENGINE_HH
