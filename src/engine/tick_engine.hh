/**
 * @file
 * The tick engine: owns the clock domains and advances every
 * registered component in deterministic ratio-correct order, as an
 * event-scheduled stepper — each component carries a cached
 * next-event promise, and the engine only performs the ticks that
 * might do work, advancing each clock domain independently to its
 * earliest pending event.
 *
 * Ordering rules (what makes multi-rate simulation reproducible):
 *  - within one core cycle, components tick in registration order,
 *    regardless of domain — so at unity ratios the engine replays
 *    exactly the hand-written orchestration it replaced;
 *  - a faster-than-core domain owes several ticks on some core
 *    cycles; a component runs all its due ticks consecutively at
 *    its position in the registration order;
 *  - a slower-than-core domain is simply skipped on the core
 *    cycles it is not scheduled on.
 *
 * Event cache: after a component ticks, its nextEventAt() promise
 * is queried exactly once and cached. The cache is discarded when
 * the component ticks again or when one of its declared producers
 * (link()) ticks — a producer's tick may deliver input, and a
 * promise is only required to be valid right after the component's
 * own tick. A component whose cache says "nothing before cycle E"
 * is not ticked before E; its scheduled-but-dead ticks are
 * accounted lazily through fastForward() windows, which keeps
 * per-cycle statistics bit-identical to naive ticking. The no-skip
 * path is O(components that changed): a sleeping component's
 * promise is never re-consulted without an intervening tick.
 *
 * Modes (IdleFastForward):
 *  - Off: tick everything, never consult promises (naive reference);
 *  - Full: tick everything each visited cycle, jump only windows
 *    where every component is idle;
 *  - PerDomain: also let individual components sleep through
 *    cycles the engine visits for some other domain's event, so a
 *    long DRAM bank wait no longer drags the core/icnt/L2
 *    components through per-cycle no-op ticks (and core drain
 *    tails no longer tick DRAM refresh state cycle by cycle).
 *
 * Tick groups (intra-simulation parallelism): every component is
 * assigned to a tick group at add() time; group 0 is the
 * *coordinator* group. With setTickJobs(N > 1), the due components
 * of *different* non-coordinator groups tick concurrently on a
 * small persistent worker pool, while coordinator-group components
 * tick inline at their position in the registration order and act
 * as ordering barriers for the parallel batches around them.
 *
 * What keeps this bit-identical to serial ticking:
 *  - assigning two components to different non-coordinator groups
 *    is the wiring code's *assertion* that their tick() functions
 *    touch disjoint state (each memory partition only mutates its
 *    own queues, banks and pre-resolved counters; each SM core
 *    appends to its own collector shards and request-id pool) —
 *    components that do share ordered mutable state must share one
 *    group, which keeps them in registration order on a single
 *    worker, and a group can be forced onto the coordinator per
 *    launch via setSerialized() when the safety of concurrent
 *    ticking depends on the running kernel;
 *  - a wake edge (link()) between two different non-coordinator
 *    groups contradicts that assertion, so both endpoints are
 *    demoted to the coordinator and tick in registration order on
 *    the coordinating thread;
 *  - all engine bookkeeping (idle-window accounting, skip
 *    counters, promise-cache invalidation) is replayed by the
 *    coordinator in exact registration order *before* the batch is
 *    dispatched, so workers only call tick() — the one operation
 *    that commutes across groups by the disjointness assertion;
 *  - per-cycle dispatch is barrier-free work stealing: workers
 *    claim batches from a shared atomic epoch-tagged cursor (no
 *    mutex/condvar on the active-cycle path; they park on a
 *    condvar after an idle-spin threshold so serial and
 *    fast-forward phases don't tax the host), claims are guided —
 *    a thread grabs a shrinking chunk of the remaining batches per
 *    CAS, so many small per-SM batches don't degrade into one CAS
 *    per batch while uneven tails still split one batch at a time
 *    — the coordinator steals from the same cursor, and completion
 *    is a plain atomic counter: on an oversubscribed host the
 *    coordinator simply ends up ticking every batch itself.
 */

#ifndef GPULAT_ENGINE_TICK_ENGINE_HH
#define GPULAT_ENGINE_TICK_ENGINE_HH

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "engine/clock_domain.hh"
#include "engine/clocked.hh"

namespace gpulat {

class TickEngine
{
  public:
    TickEngine();
    ~TickEngine();

    /** Create a domain; the engine owns it. */
    ClockDomain &addDomain(std::string name, ClockRatio ratio);

    /**
     * Create a tick group for add(). Group 0 ("main") pre-exists
     * and is the coordinator group. Assigning components to a
     * shared non-zero group asserts they may tick concurrently
     * with every *other* non-zero group (disjoint mutable state);
     * within one group registration order is always preserved.
     */
    unsigned addGroup(std::string name);

    /**
     * Register @p component in @p domain, assigned to tick group
     * @p group (default: coordinator). Components tick in
     * registration order within a core cycle; a component may be
     * registered only once.
     */
    void add(ClockDomain &domain, Clocked &component,
             unsigned group = 0);

    /**
     * Declare a wake edge: a performed tick of @p producer may
     * deliver input to @p consumer (push a packet, dispatch a
     * block), invalidating the consumer's cached promise. Both
     * must already be add()ed. PerDomain mode is only cycle-exact
     * when every delivery path is declared; Off/Full ignore edges.
     * An edge between two different non-zero tick groups demotes
     * both endpoints to the coordinator group (they interact, so
     * they must not tick concurrently).
     */
    void link(Clocked &producer, Clocked &consumer);

    /**
     * Force @p component to tick on the coordinator thread (in
     * registration order) regardless of its declared group, or lift
     * that force again. The wiring layer uses this as a per-launch
     * safety valve: SM cores live in per-SM groups, but a kernel
     * whose ticks touch cross-SM shared state (atomics, data-
     * dependent stores) must serialize. Tick *counting* stays with
     * the declared group, so `engine.group.*.ticks_run` counters
     * are identical for every tickJobs value and both scheduling
     * shapes.
     */
    void setSerialized(Clocked &component, bool serialized);

    /** Select the fast-forward policy (default Full). */
    void setMode(IdleFastForward mode) { mode_ = mode; }
    IdleFastForward mode() const { return mode_; }

    /**
     * Worker threads ticking non-coordinator groups inside step():
     * 1 (default) is the serial path, 0 resolves to the hardware
     * concurrency. Purely an execution knob — cycles, traces and
     * counters are bit-identical for every value.
     */
    void setTickJobs(std::size_t jobs);
    std::size_t tickJobs() const { return tickJobs_; }

    /**
     * Map a tick-jobs request to a worker count: 0 becomes the
     * hardware concurrency, clamped to >= 1 —
     * std::thread::hardware_concurrency() may legitimately return
     * 0 ("unknown"), which must mean serial, never zero workers.
     */
    static std::size_t resolveTickJobs(std::size_t jobs);

    /** Mirror per-domain and per-group tick counters into @p stats. */
    void bindStats(StatRegistry &stats);

    /** Current core cycle. */
    Cycle now() const { return now_; }

    /**
     * Tick every due component that might do work at now(), then
     * advance one cycle. In PerDomain mode a component whose cached
     * promise says it is dead at now() is skipped (and accounted
     * lazily); Off/Full tick everything due.
     */
    void step();

    /**
     * Jump to the earliest upcoming event over all components
     * (each aligned to its domain's tick grid). In Off mode, or
     * when every component is fully drained (all promises
     * kNoCycle), this is a no-op.
     * @return cycles skipped (0 when anything is due right now).
     */
    Cycle fastForward();

    /**
     * Discard every cached promise. Call after mutating component
     * state from outside the engine (arming a dispatcher, loading
     * warps, resetting DRAM): cached promises cannot see external
     * writes.
     */
    void wakeAll();

    /**
     * Flush lazy idle accounting: every component's fastForward()
     * windows are closed through now(). Call before reading
     * per-cycle statistics (end of a launch, stall reports).
     */
    void settle();

    /** @name Fast-forward effectiveness (for benches/reports) @{ */
    Cycle skippedCycles() const { return skippedCycles_; }
    std::uint64_t fastForwardWindows() const { return ffWindows_; }
    std::uint64_t steps() const { return steps_; }
    /** Component ticks skipped, summed over all domains. */
    std::uint64_t componentTicksSkipped() const;
    /** @} */

    /** @name Tick-group introspection (for benches/reports) @{ */
    std::size_t numGroups() const { return groups_.size(); }
    const std::string &groupName(unsigned g) const
    {
        return groups_[g].name;
    }
    /** Performed component ticks of group @p g (identical for
     *  every tickJobs value; mirrored into stats as
     *  `engine.group.<name>.ticks_run`). */
    std::uint64_t groupTicksRun(unsigned g) const
    {
        return groups_[g].ticksRun;
    }
    /** Parallel batch dispatches performed (wall-clock metadata:
     *  0 on the serial path, so never mirrored into stats). */
    std::uint64_t parallelSections() const { return parSections_; }
    /** @} */

    const std::vector<std::unique_ptr<ClockDomain>> &domains() const
    {
        return domains_;
    }

    /**
     * Domain by name, for registering components after the initial
     * wiring (the serving layer adds its LaunchQueueScheduler to an
     * already-constructed Gpu's "core" domain); nullptr if unknown.
     * add() stays legal at any time — the schedule is refinalized
     * lazily on the next step().
     */
    ClockDomain *findDomain(const std::string &name);

  private:
    struct Registration
    {
        ClockDomain *domain;
        std::size_t domainIdx;
        Clocked *component;
        /** Declared tick group (counting, reports). */
        unsigned group = 0;
        /** Scheduling group after edge demotion (0 = coordinator). */
        unsigned effGroup = 0;
        /** setSerialized(): tick on the coordinator regardless of
         *  the declared group (per-launch safety fallback). */
        bool forceSerial = false;

        /** Raw promise from the last post-tick query (kNoCycle =
         *  fully drained); meaningless while !cacheValid. */
        Cycle cachedEvent = 0;
        bool cacheValid = false;
        /** Scheduled ticks before this core cycle have all been
         *  performed or fastForward()-accounted. */
        Cycle accountedThrough = 0;
        /** Ticked or delivered into during the current step():
         *  promise re-query due after the cycle completes. */
        bool refreshDue = false;
        /** Registration indices this component can deliver into. */
        std::vector<std::size_t> consumers;
    };

    struct TickGroup
    {
        std::string name;
        std::uint64_t ticksRun = 0;
        Counter *counter = nullptr;
    };

    class WorkerPool;

    /** One contiguous slice of sectionRegs_ = one group's due
     *  components of the current parallel section. */
    struct Batch
    {
        std::size_t begin;
        std::size_t end;
    };

    std::size_t indexOf(const Clocked &component) const;

    /** Close the lazy idle window [accountedThrough, to). */
    void account(Registration &reg, Cycle to);

    /**
     * The per-component bookkeeping slice of one step() walk,
     * shared verbatim by the serial and parallel paths so their
     * bit-identity is structural rather than copy-discipline:
     * sleep decision from the cached promise, idle-window
     * accounting for the component and (selective) its consumers,
     * run/group counters, and promise-cache invalidation.
     * @return false when the component sleeps this cycle; the
     * caller performs (or defers) the @p n ticks themselves.
     */
    bool bookkeepTick(Registration &reg, unsigned n,
                      bool selective);

    /** Serial walk body of step() (the tickJobs == 1 path). */
    void stepSerial(bool selective);
    /** Coordinator walk + worker dispatch (tickJobs > 1 path). */
    void stepParallel(bool selective);
    /** Run one section batch (worker or coordinator thread). */
    void runBatch(std::size_t batch);
    /** Dispatch the pending section's batches and join. */
    void flushSection();

    /** Apply edge demotion, decide parallel eligibility, size the
     *  pool. Re-run lazily after add()/link()/setTickJobs(). */
    void finalizeSchedule();

    void
    noteGroupTicks(unsigned group, std::uint64_t n)
    {
        auto &g = groups_[group];
        g.ticksRun += n;
        if (g.counter)
            g.counter->inc(n);
    }

    std::vector<std::unique_ptr<ClockDomain>> domains_;
    std::vector<Registration> order_;
    std::vector<unsigned> due_; ///< per-domain scratch for step()
    std::vector<TickGroup> groups_;

    IdleFastForward mode_ = IdleFastForward::Full;

    std::size_t tickJobs_ = 1;
    /** True once finalizeSchedule() found >= 2 distinct runnable
     *  non-coordinator groups and tickJobs_ > 1. */
    bool parallelActive_ = false;
    bool scheduleDirty_ = true;
    std::unique_ptr<WorkerPool> pool_;

    /** @name stepParallel() scratch (capacity reused per cycle) @{ */
    std::vector<std::vector<std::size_t>> groupPending_;
    std::vector<unsigned> pendingGroups_;
    std::vector<std::size_t> sectionRegs_;
    std::vector<Batch> sectionBatches_;
    std::vector<std::exception_ptr> sectionErrors_;
    /** @} */

    Cycle now_ = 0;
    Cycle skippedCycles_ = 0;
    std::uint64_t ffWindows_ = 0;
    std::uint64_t steps_ = 0;
    std::uint64_t parSections_ = 0;
};

} // namespace gpulat

#endif // GPULAT_ENGINE_TICK_ENGINE_HH
