/**
 * @file
 * A clock domain: schedules component ticks onto the global
 * core-cycle axis at a rational frequency ratio.
 *
 * Domain tick k (k = 0, 1, 2, ...) lands on core cycle
 * ceil(k * div / mul), so a {1,1} domain ticks every core cycle
 * starting at 0, a {1,2} domain ticks on even cycles, and a {2,1}
 * domain ticks twice per core cycle. All arithmetic is exact
 * integer math, which keeps multi-rate interleaving deterministic
 * and reproducible across runs and platforms.
 */

#ifndef GPULAT_ENGINE_CLOCK_DOMAIN_HH
#define GPULAT_ENGINE_CLOCK_DOMAIN_HH

#include <cstdint>
#include <string>

#include "common/stats.hh"
#include "engine/clocked.hh"

namespace gpulat {

class ClockDomain
{
  public:
    ClockDomain(std::string name, ClockRatio ratio);

    const std::string &name() const { return name_; }
    ClockRatio ratio() const { return ratio_; }

    /** @name Tick-grid arithmetic (shared with domain-aware models)
     * All helpers saturate at kNoCycle instead of wrapping, so an
     * event promise near 2^64 reads as "never" on any grid.
     * @{ */

    /** Core cycle tick @p k (k = 0, 1, ...) of @p ratio lands on. */
    static Cycle tickCycle(Cycle k, ClockRatio ratio);

    /** Ticks of @p ratio scheduled through the end of cycle @p c. */
    static Cycle ticksThrough(Cycle c, ClockRatio ratio);

    /** Index of the first tick of @p ratio landing at or after @p e. */
    static Cycle firstTickAtOrAfter(Cycle e, ClockRatio ratio);

    /** @} */

    /** Total ticks scheduled through the end of core cycle @p c. */
    Cycle ticksThrough(Cycle c) const;

    /** Ticks this domain owes at core cycle @p c (0 if not due). */
    unsigned dueTicks(Cycle c) const;

    /** Mark @p n scheduled ticks as performed. */
    void retire(unsigned n) { ticks_ += n; }

    /**
     * Jump over the dead window ending at core cycle @p c: all
     * ticks scheduled before @p c are retired unperformed (the
     * engine guaranteed they were no-ops).
     */
    void skipTo(Cycle c);

    /** First core cycle >= @p e on which this domain ticks. */
    Cycle nextTickAtOrAfter(Cycle e) const;

    /** Domain-local cycle count (ticks performed so far). */
    Cycle localCycles() const { return ticks_; }

    /**
     * @name Fast-forward effectiveness
     * Component-tick accounting, summed over every component
     * registered in this domain: a component that performs one of
     * its scheduled domain ticks notes it run; a tick provably
     * dead (slept through or jumped) is noted skipped. The ratio
     * skipped / (run + skipped) is the share of this domain's
     * simulator work the engine avoided. When bound, the totals
     * mirror into StatRegistry counters
     * `engine.<domain>.ticks_run` / `engine.<domain>.ticks_skipped`
     * so experiment records pick them up as epoch deltas.
     * @{
     */
    void
    noteRun(std::uint64_t n)
    {
        ticksRun_ += n;
        if (runCounter_)
            runCounter_->inc(n);
    }

    void
    noteSkipped(std::uint64_t n)
    {
        ticksSkipped_ += n;
        if (skipCounter_)
            skipCounter_->inc(n);
    }

    std::uint64_t componentTicksRun() const { return ticksRun_; }
    std::uint64_t componentTicksSkipped() const { return ticksSkipped_; }

    /** Mirror the note counters into @p stats (idempotent names). */
    void
    bindStats(StatRegistry &stats)
    {
        runCounter_ = &stats.counter("engine." + name_ + ".ticks_run");
        skipCounter_ =
            &stats.counter("engine." + name_ + ".ticks_skipped");
    }
    /** @} */

  private:
    std::string name_;
    ClockRatio ratio_;
    Cycle ticks_ = 0;

    std::uint64_t ticksRun_ = 0;
    std::uint64_t ticksSkipped_ = 0;
    Counter *runCounter_ = nullptr;
    Counter *skipCounter_ = nullptr;
};

} // namespace gpulat

#endif // GPULAT_ENGINE_CLOCK_DOMAIN_HH
