/**
 * @file
 * The clocked-component interface every ticking model implements.
 *
 * Time is kept on one global axis measured in core ("hot") clock
 * cycles — the unit every latency in the paper is reported in. A
 * component never advances itself: the TickEngine calls tick() at
 * the cycles its clock domain is scheduled on, so a component in a
 * half-rate domain simply sees tick() every other core cycle, and a
 * double-rate one sees it twice per core cycle. Because all
 * timestamps (LatencyTrace, queue ready-times) live on the shared
 * core-cycle axis, cross-domain handoffs need no unit conversion.
 *
 * Idle fast-forward contract: nextEventAt() is a *promise* that
 * tick() is a pure no-op — no state change, no statistics beyond
 * what fastForward() reproduces — at every scheduled tick before
 * the returned cycle, PROVIDED no other component delivers input in
 * the meantime. The engine tracks delivery paths as wake edges
 * (TickEngine::link()) and re-queries a consumer's promise after a
 * producer ticks, so nextEventAt() must reflect delivered state at
 * *any* query time: timestamps read from queue heads do so
 * naturally; state a delivery changes without leaving a queue
 * entry behind (e.g. a load response completing a warp's register
 * dependency) must raise a woke flag that forces "active now"
 * until the next tick observes it. fastForward() then lets a
 * component account for the skipped cycles (per-cycle idle
 * statistics) so results are bit-identical to naive ticking; it
 * must be additive, i.e. fastForward(a, b) + fastForward(b, c) must
 * leave the same state as fastForward(a, c), because the
 * per-domain stepper splits one dead window at every cycle it
 * visits for some *other* domain's event.
 */

#ifndef GPULAT_ENGINE_CLOCKED_HH
#define GPULAT_ENGINE_CLOCKED_HH

#include "common/types.hh"

namespace gpulat {

/**
 * Frequency of a clock domain relative to the core clock:
 * f_domain = f_core * mul / div. {1,1} is the core clock itself;
 * {1,2} runs at half rate, {2,1} at double rate.
 */
struct ClockRatio
{
    unsigned mul = 1;
    unsigned div = 1;

    bool isUnity() const { return mul == div; }

    /** Relative frequency as a double (for reports only). */
    double
    frequency() const
    {
        return static_cast<double>(mul) / static_cast<double>(div);
    }
};

/**
 * Idle fast-forward policy of the TickEngine (see GpuConfig's
 * `idleFastForward` knob; every mode is cycle-exact by
 * construction, they differ only in how much simulator work they
 * avoid):
 *  - Off: naive reference — every component ticks on every
 *    scheduled cycle and no promises are ever consulted;
 *  - Full: jump only windows where *every* component is idle (the
 *    pre-PR4 behaviour, e.g. the post-grid drain tail);
 *  - PerDomain: event-scheduled — each component sleeps through to
 *    its own cached next-event promise, so the DRAM domain ticks
 *    through a long bank wait while core/icnt/L2 components sleep,
 *    and vice versa.
 */
enum class IdleFastForward
{
    Off,
    Full,
    PerDomain,
};

/** A component the TickEngine advances. */
class Clocked
{
  public:
    virtual ~Clocked() = default;

    /**
     * Advance one domain cycle. @p now is the global core-cycle
     * time of this tick (a half-rate component sees gaps in @p now;
     * a double-rate one sees repeats).
     */
    virtual void tick(Cycle now) = 0;

    /**
     * Earliest core cycle >= @p now at which tick() might do any
     * work. Return @p now when active or unsure (always safe);
     * return kNoCycle when fully drained with nothing scheduled.
     */
    virtual Cycle nextEventAt(Cycle now) const = 0;

    /**
     * The engine skipped the window [@p from, @p to) because every
     * component promised it dead. Account for the elapsed cycles
     * (bulk idle statistics); must not change simulation behaviour.
     */
    virtual void
    fastForward(Cycle from, Cycle to)
    {
        (void)from;
        (void)to;
    }
};

} // namespace gpulat

#endif // GPULAT_ENGINE_CLOCKED_HH
