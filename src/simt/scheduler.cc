#include "simt/scheduler.hh"

namespace gpulat {

const char *
toString(SchedPolicy policy)
{
    switch (policy) {
      case SchedPolicy::LRR: return "LRR";
      case SchedPolicy::GTO: return "GTO";
    }
    return "?";
}

WarpScheduler::WarpScheduler(SchedPolicy policy,
                             std::vector<unsigned> warp_slots)
    : policy_(policy), slots_(std::move(warp_slots))
{
}

int
WarpScheduler::pick(const std::function<bool(unsigned)> &is_ready,
                    const std::function<std::uint64_t(unsigned)> &age)
{
    if (slots_.empty())
        return -1;

    if (policy_ == SchedPolicy::LRR) {
        // Start one past the last issuer and take the first ready.
        for (std::size_t k = 0; k < slots_.size(); ++k) {
            const std::size_t i = (rrNext_ + k) % slots_.size();
            if (is_ready(slots_[i])) {
                rrNext_ = (i + 1) % slots_.size();
                return static_cast<int>(slots_[i]);
            }
        }
        return -1;
    }

    // GTO: stay on the greedy warp while it issues; on a stall,
    // switch to the oldest ready warp.
    if (greedySlot_ >= 0 &&
        is_ready(static_cast<unsigned>(greedySlot_))) {
        return greedySlot_;
    }
    int best = -1;
    std::uint64_t best_age = ~0ull;
    for (unsigned slot : slots_) {
        if (!is_ready(slot))
            continue;
        const std::uint64_t a = age(slot);
        if (a < best_age) {
            best_age = a;
            best = static_cast<int>(slot);
        }
    }
    greedySlot_ = best;
    return best;
}

} // namespace gpulat
