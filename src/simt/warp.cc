#include "simt/warp.hh"

namespace gpulat {

void
Warp::init(unsigned warp_slot, unsigned warp_in_block,
           unsigned block_slot, LaneMask live, int num_regs,
           std::uint64_t dispatch_seq)
{
    slot_ = warp_slot;
    warpInBlock_ = warp_in_block;
    blockSlot_ = block_slot;
    dispatchSeq_ = dispatch_seq;
    state_ = WarpState::Ready;
    live_ = live;
    stack_.clear();
    stack_.push_back(StackEntry{0, kNoReconv, live});
    numRegs_ = num_regs;
    regs_.assign(static_cast<std::size_t>(kWarpSize) *
                 static_cast<std::size_t>(num_regs), 0);
    preds_.fill(0);
    pendingRegs_ = 0;
    pendingMemRegs_ = 0;
    pendingPreds_ = 0;
}

void
Warp::reconverge()
{
    while (stack_.size() > 1 &&
           stack_.back().pc == stack_.back().rpc) {
        stack_.pop_back();
    }
}

void
Warp::diverge(std::uint32_t target, std::uint32_t reconv,
              LaneMask taken, LaneMask fall)
{
    GPULAT_ASSERT((taken & fall) == 0, "taken/fall lanes overlap");
    GPULAT_ASSERT(taken != 0 && fall != 0,
                  "diverge() requires both paths populated");
    StackEntry &tos = stack_.back();
    const std::uint32_t fall_pc = tos.pc + 1;

    // The current entry becomes the reconvergence continuation.
    tos.pc = reconv;

    if (fall_pc != reconv)
        stack_.push_back(StackEntry{fall_pc, reconv, fall});
    if (target != reconv)
        stack_.push_back(StackEntry{target, reconv, taken});

    GPULAT_ASSERT(stack_.size() <= kMaxStackDepth,
                  "SIMT stack overflow (non-reconverging kernel?)");
}

bool
Warp::exitLanes(LaneMask lanes)
{
    live_ &= ~lanes;
    for (auto &entry : stack_)
        entry.mask &= ~lanes;
    while (stack_.size() > 1 && (stack_.back().mask & live_) == 0)
        stack_.pop_back();
    if (live_ == 0) {
        state_ = WarpState::Done;
        return true;
    }
    // If lanes remain, execution continues after the exit point.
    return false;
}

LaneMask
Warp::guardMask(LaneMask mask, int pred, bool neg) const
{
    if (pred == kNoReg)
        return mask;
    LaneMask out = 0;
    for (unsigned lane = 0; lane < kWarpSize; ++lane) {
        if (!(mask >> lane & 1))
            continue;
        if (predBit(lane, pred) != neg)
            out |= 1u << lane;
    }
    return out;
}

} // namespace gpulat
