/**
 * @file
 * Per-warp architectural and micro-architectural state: SIMT
 * reconvergence stack, register file slice, predicate file and
 * scoreboard bits.
 */

#ifndef GPULAT_SIMT_WARP_HH
#define GPULAT_SIMT_WARP_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"
#include "isa/isa.hh"

namespace gpulat {

/** Reconvergence pc meaning "paths only meet at exit". */
inline constexpr std::uint32_t kNoReconv = UINT32_MAX;

/** Maximum SIMT stack depth before we call the kernel malformed. */
inline constexpr std::size_t kMaxStackDepth = 64;

/** One SIMT stack entry. */
struct StackEntry
{
    std::uint32_t pc;
    std::uint32_t rpc;
    LaneMask mask;
};

/** Scheduling state of a warp. */
enum class WarpState : std::uint8_t {
    Invalid,   ///< slot unoccupied
    Ready,     ///< may issue
    AtBarrier, ///< waiting at a BAR
    Done,      ///< all lanes exited
};

class Warp
{
  public:
    Warp() = default;

    /**
     * (Re)initialize this slot for a fresh warp.
     *
     * @param warp_slot hardware slot index within the SM.
     * @param warp_in_block warp index within its thread block.
     * @param block_slot resident-block slot within the SM.
     * @param live initially live lanes (partial last warp).
     * @param num_regs architectural registers per thread.
     * @param dispatch_seq global age for GTO scheduling.
     */
    void init(unsigned warp_slot, unsigned warp_in_block,
              unsigned block_slot, LaneMask live, int num_regs,
              std::uint64_t dispatch_seq);

    /** @name Identity @{ */
    unsigned slot() const { return slot_; }
    unsigned warpInBlock() const { return warpInBlock_; }
    unsigned blockSlot() const { return blockSlot_; }
    std::uint64_t dispatchSeq() const { return dispatchSeq_; }
    /** @} */

    WarpState state() const { return state_; }
    void setState(WarpState s) { state_ = s; }

    /** Lanes that have not exited. */
    LaneMask live() const { return live_; }

    /** Current pc (top of stack), after lazy reconvergence pops. */
    std::uint32_t
    pc()
    {
        reconverge();
        return stack_.back().pc;
    }

    /** Lanes that execute the next instruction. */
    LaneMask
    activeMask()
    {
        reconverge();
        return stack_.back().mask & live_;
    }

    /** Advance the current entry's pc by one. */
    void
    advance()
    {
        reconverge();
        stack_.back().pc += 1;
    }

    /** Uniform jump of the current entry's active lanes. */
    void
    jump(std::uint32_t target)
    {
        reconverge();
        stack_.back().pc = target;
    }

    /**
     * Divergent branch: @p taken lanes go to @p target, the rest fall
     * through to pc+1, everyone meets at @p reconv.
     */
    void diverge(std::uint32_t target, std::uint32_t reconv,
                 LaneMask taken, LaneMask fall);

    /**
     * Retire @p lanes (EXIT). Removes them from the live mask and
     * every stack entry; pops exhausted entries.
     * @return true if the warp is now finished.
     */
    bool exitLanes(LaneMask lanes);

    /** Stack depth (tests/diagnostics). */
    std::size_t stackDepth() const { return stack_.size(); }

    /** @name Register file access @{ */
    RegValue
    reg(unsigned lane, int r) const
    {
        return regs_[lane * static_cast<unsigned>(numRegs_) +
                     static_cast<unsigned>(r)];
    }

    void
    setReg(unsigned lane, int r, RegValue v)
    {
        regs_[lane * static_cast<unsigned>(numRegs_) +
              static_cast<unsigned>(r)] = v;
    }

    bool
    predBit(unsigned lane, int p) const
    {
        return preds_[lane] >> p & 1;
    }

    void
    setPredBit(unsigned lane, int p, bool v)
    {
        if (v)
            preds_[lane] |= static_cast<std::uint8_t>(1u << p);
        else
            preds_[lane] &= static_cast<std::uint8_t>(~(1u << p));
    }
    /** @} */

    /** @name Scoreboard @{ */
    bool regPending(int r) const { return pendingRegs_ >> r & 1; }
    /** True if the pending producer of r is a memory load. */
    bool
    regPendingOnMemory(int r) const
    {
        return pendingMemRegs_ >> r & 1;
    }
    void
    markRegPending(int r, bool from_memory = false)
    {
        pendingRegs_ |= 1ull << r;
        if (from_memory)
            pendingMemRegs_ |= 1ull << r;
    }
    void
    clearRegPending(int r)
    {
        pendingRegs_ &= ~(1ull << r);
        pendingMemRegs_ &= ~(1ull << r);
    }
    bool predPending(int p) const { return pendingPreds_ >> p & 1; }
    void markPredPending(int p)
    {
        pendingPreds_ |= static_cast<std::uint8_t>(1u << p);
    }
    void clearPredPending(int p)
    {
        pendingPreds_ &= static_cast<std::uint8_t>(~(1u << p));
    }
    bool anyPending() const { return pendingRegs_ || pendingPreds_; }
    /** @} */

    /** Lanes of @p mask whose guard (pred, neg) evaluates true. */
    LaneMask guardMask(LaneMask mask, int pred, bool neg) const;

  private:
    /** Pop stack entries whose pc reached their reconvergence pc. */
    void reconverge();

    unsigned slot_ = 0;
    unsigned warpInBlock_ = 0;
    unsigned blockSlot_ = 0;
    std::uint64_t dispatchSeq_ = 0;
    WarpState state_ = WarpState::Invalid;

    LaneMask live_ = 0;
    std::vector<StackEntry> stack_;

    int numRegs_ = 0;
    std::vector<RegValue> regs_;
    std::array<std::uint8_t, kWarpSize> preds_{};

    std::uint64_t pendingRegs_ = 0;
    std::uint64_t pendingMemRegs_ = 0;
    std::uint8_t pendingPreds_ = 0;
};

} // namespace gpulat

#endif // GPULAT_SIMT_WARP_HH
