/**
 * @file
 * Warp schedulers: loose round-robin (LRR) and greedy-then-oldest
 * (GTO). Each SM instantiates one scheduler object per issue slot;
 * a scheduler owns the warp slots with slot % numSchedulers == id.
 */

#ifndef GPULAT_SIMT_SCHEDULER_HH
#define GPULAT_SIMT_SCHEDULER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hh"

namespace gpulat {

/** Warp scheduling policies. */
enum class SchedPolicy : std::uint8_t { LRR, GTO };

const char *toString(SchedPolicy policy);

/**
 * Picks which of its warps issues next. The scheduler only orders
 * candidates; the core supplies an `is_ready` oracle (scoreboard,
 * barrier and resource checks).
 */
class WarpScheduler
{
  public:
    /**
     * @param policy LRR or GTO.
     * @param warp_slots slot indices this scheduler owns.
     */
    WarpScheduler(SchedPolicy policy,
                  std::vector<unsigned> warp_slots);

    /**
     * Choose a warp to issue.
     *
     * @param is_ready slot -> can issue right now.
     * @param age slot -> dispatch sequence number (older = smaller).
     * @return chosen slot, or -1 if none ready.
     */
    int pick(const std::function<bool(unsigned)> &is_ready,
             const std::function<std::uint64_t(unsigned)> &age);

    const std::vector<unsigned> &slots() const { return slots_; }

  private:
    SchedPolicy policy_;
    std::vector<unsigned> slots_;
    std::size_t rrNext_ = 0;  ///< LRR rotation index (into slots_)
    int greedySlot_ = -1;     ///< GTO sticky warp
};

} // namespace gpulat

#endif // GPULAT_SIMT_SCHEDULER_HH
