/**
 * @file
 * The streaming multiprocessor (SM) model.
 *
 * Functional-directed timing: instructions execute functionally at
 * issue; timing comes from the scoreboard (dest registers stay
 * pending until the modelled pipeline latency or the memory system
 * writes back). The SM contains the warp schedulers, ALU/FP
 * pipelines, shared memory, the LSU with its coalescer, the L1 data
 * cache with MSHRs, and the miss queue feeding the interconnect —
 * i.e. everything "left of the ICNT" in the paper's Figure 1.
 */

#ifndef GPULAT_SIMT_CORE_HH
#define GPULAT_SIMT_CORE_HH

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "cache/mshr.hh"
#include "common/queue.hh"
#include "common/stats.hh"
#include "engine/clocked.hh"
#include "icnt/crossbar.hh"
#include "isa/kernel.hh"
#include "latency/collector.hh"
#include "mem/device_memory.hh"
#include "mem/request.hh"
#include "simt/coalescer.hh"
#include "simt/scheduler.hh"
#include "simt/warp.hh"

namespace gpulat {

/** Static configuration of one SM. */
struct SmParams
{
    unsigned smId = 0;
    unsigned warpSlots = 48;
    unsigned numSchedulers = 2;
    SchedPolicy schedPolicy = SchedPolicy::GTO;
    unsigned maxBlocksPerSm = 8;
    /** Architectural registers per SM (64-bit each in this ISA). */
    unsigned regsPerSm = 32768;
    std::uint32_t smemPerSm = 48 * 1024;

    Cycle aluLatency = 10;
    Cycle fpLatency = 12;
    Cycle smemLatency = 24;
    unsigned smemBanks = 32;
    Cycle smemConflictPenalty = 2;

    std::size_t lsuQueueSize = 8;
    /** Issue -> L1 access minimum (address gen / LSU pipe). */
    Cycle smBaseLatency = 10;
    std::uint32_t lineBytes = 128;

    bool l1Enabled = true;
    bool l1CachesGlobal = true;
    bool l1CachesLocal = true;
    CacheParams l1Cache;
    Cycle l1HitLatency = 30;
    /** Miss detect -> ready to enter the interconnect. */
    Cycle l1MissLatency = 4;
    unsigned l1MshrEntries = 32;
    unsigned l1MshrMaxMerge = 8;
    std::size_t l1MissQueueSize = 8;
};

/** Grid-wide launch state shared by all SMs (owned by the Gpu). */
struct LaunchContext
{
    const Kernel *kernel = nullptr;
    unsigned numBlocks = 0;
    unsigned threadsPerBlock = 0;
    std::array<RegValue, kMaxParams> params{};
    /** Base of the interleaved local-memory backing store. */
    Addr localBase = 0;
    std::uint64_t totalThreads = 0;
    std::uint64_t localBytesPerThread = 0;
    /**
     * Forward atomic RMWs to the owning partition's accept() hook
     * instead of executing them functionally at issue. Set by the
     * Gpu launch paths (it is what lets atomics tick SM-parallel);
     * defaults off so directly-driven SmCore tests keep the
     * issue-time semantics.
     */
    bool forwardAtomics = false;
};

class SmCore : public Clocked
{
  public:
    /**
     * @param params static configuration.
     * @param dmem functional device memory.
     * @param stats registry ("smN.*" counters).
     * @param lat_collector completed-request traces (may be null).
     * @param exp_collector per-load exposure records (may be null).
     * @param req_net request network (SM -> partition).
     * @param partition_of line address -> partition index.
     *
     * Request ids are drawn from a per-SM pool (smId in the high
     * bits, a private sequence below), and trace/exposure records
     * go to this SM's private collector shards — the SM shares no
     * mutable collector or counter state with its siblings, so SMs
     * in different tick groups may tick concurrently.
     */
    SmCore(const SmParams &params, DeviceMemory *dmem,
           StatRegistry *stats, LatencyCollector *lat_collector,
           ExposureCollector *exp_collector,
           Crossbar<MemRequest> *req_net,
           std::function<unsigned(Addr)> partition_of);

    /** Bind the SM to the current launch (invalidates nothing). */
    void startLaunch(const LaunchContext *ctx);

    /** True if a block of the bound kernel fits right now. */
    bool canAcceptBlock() const;

    /** Dispatch grid block @p block_id onto this SM. */
    void dispatchBlock(unsigned block_id);

    /** Advance one cycle. */
    void tick(Cycle now) override;

    /**
     * Earliest cycle tick() might do work again. Valid at any
     * query time: if the last tick issued nothing, issueability can
     * next change at the earliest wheel/queue event — or the moment
     * another component delivers into the SM (a load response
     * completing a warp's dependency, a freshly dispatched block),
     * which raises wokeSinceTick_ so the promise reports "active
     * now" until the next tick observes the delivery.
     */
    Cycle nextEventAt(Cycle now) const override;

    /** Bulk-account idle statistics for a skipped window. */
    void fastForward(Cycle from, Cycle to) override;

    /** Deliver a response ejected from the return network. */
    void acceptResponse(Cycle now, MemRequest req);

    /** True while any warp is resident. */
    bool busy() const { return residentWarps_ > 0; }

    /** True when every internal queue/table is empty. */
    bool drained() const;

    /** Invalidate the L1 (between experiments). */
    void invalidateL1();

    Cache *l1() { return l1_.get(); }
    const SmParams &params() const { return params_; }

    /** Cumulative cycles with resident warps but zero issue. */
    std::uint64_t idleCycles() const { return idleCum_; }

    /** Loads issued but not yet written back. */
    unsigned inflightLoads() const { return inflightCount_; }

    /** Memory requests this SM has created (local id pool size);
     *  the sum over SMs equals the old shared-counter value, so
     *  progress signatures stay numerically identical. */
    std::uint64_t requestsIssued() const { return reqSeq_; }

    /** Request-id layout: smId above, per-SM sequence below. */
    static constexpr unsigned kReqIdSmShift = 48;

    /** One-line queue-occupancy summary (for stall reports). */
    std::string occupancySummary() const;

  private:
    struct ResidentBlock
    {
        bool valid = false;
        unsigned blockId = 0;
        unsigned numWarps = 0;
        unsigned warpsDone = 0;
        unsigned warpsAtBarrier = 0;
        std::vector<unsigned> warpSlots;
        std::vector<std::uint8_t> sharedMem;
    };

    struct InflightLoad
    {
        bool valid = false;
        unsigned warpSlot = 0;
        int destReg = kNoReg;
        unsigned pendingTxns = 0;
        Cycle issueCycle = 0;
        std::uint64_t idleAtIssue = 0;
    };

    /** Per-lane payload of a forwarded atomic (parallel to txns). */
    struct AtomLane
    {
        Addr addr = kNoAddr;
        std::uint64_t arg = 0;
        unsigned lane = 0;
    };

    struct LsuOp
    {
        bool isLoad = false;
        bool isAtomic = false;
        MemSpace space = MemSpace::Global;
        LoadToken token = kNoToken;
        std::vector<Transaction> txns;
        std::size_t nextTxn = 0;
        Cycle issueCycle = 0;
        AtomOp atomOp = AtomOp::Add;
        std::vector<AtomLane> atomLanes;
    };

    /** Pending scoreboard writeback. */
    struct RegWb
    {
        unsigned warpSlot;
        int reg;
        bool isPred;
    };

    /** L1 hit completion. */
    struct HitDone
    {
        LoadToken token;
        LatencyTrace trace;
    };

    /** @name tick() phases @{ */
    void tickWriteback(Cycle now);
    void tickInject(Cycle now);
    void tickLsu(Cycle now);
    bool tickIssue(Cycle now);
    /** @} */

    bool canIssue(Warp &warp, Cycle now);
    /** Counter the current dead cycle attributes to (may be null). */
    Counter *idleCauseCounter();
    void issueWarp(Warp &warp, Cycle now);
    void execAlu(Warp &warp, const Instruction &inst, LaneMask guard,
                 Cycle now);
    void execSharedMem(Warp &warp, const Instruction &inst,
                       LaneMask guard, Cycle now);
    void execGlobalMem(Warp &warp, const Instruction &inst,
                       LaneMask guard, Cycle now);
    void execBranch(Warp &warp, const Instruction &inst,
                    LaneMask active, LaneMask guard);
    void execExit(Warp &warp, LaneMask active, LaneMask guard);
    void execBarrier(Warp &warp);

    RegValue operandB(const Warp &warp, const Instruction &inst,
                      unsigned lane) const;
    std::uint64_t globalThreadId(const Warp &warp, unsigned lane) const;
    Addr localPhys(Addr offset, std::uint64_t gtid) const;
    void scheduleRegWb(Cycle at, unsigned warp_slot, int reg,
                       bool is_pred);
    LoadToken allocToken(unsigned warp_slot, int dest, unsigned txns,
                         Cycle now);
    void completeLoadTxn(LoadToken token, Cycle now);
    void finishWarp(Warp &warp);
    void releaseBarrierIfReady(ResidentBlock &block);
    bool l1Caches(MemSpace space) const;

    SmParams params_;
    DeviceMemory *dmem_;
    StatRegistry *stats_;
    LatencyCollector *latCollector_;
    ExposureCollector *expCollector_;
    /** This SM's private append shards (null iff collector null). */
    LatencyCollector::Shard *latShard_ = nullptr;
    ExposureCollector::Shard *expShard_ = nullptr;
    Crossbar<MemRequest> *reqNet_;
    std::function<unsigned(Addr)> partitionOf_;
    /** Next value of this SM's private request-id pool. */
    std::uint64_t reqSeq_ = 0;
    /** @name Collector merge tag of the current entry point @{
     * Phase 0: acceptResponse() (the return port ticks before every
     * SM); phase 1: the SM's own tick. Together with the cycle they
     * order shard records exactly as a shared collector would see
     * them under serial ticking. */
    Cycle tagCycle_ = 0;
    unsigned tagPhase_ = 1;
    /** @} */

    const LaunchContext *ctx_ = nullptr;

    std::vector<Warp> warps_;
    std::vector<ResidentBlock> blocks_;
    std::vector<WarpScheduler> schedulers_;
    unsigned residentWarps_ = 0;
    unsigned residentBlocks_ = 0;
    unsigned regsUsed_ = 0;
    std::uint32_t smemUsed_ = 0;
    std::uint64_t dispatchSeq_ = 0;

    std::unique_ptr<Cache> l1_;
    MshrTable<LoadToken> l1Mshr_;
    TimedQueue<LsuOp> lsuQueue_;
    TimedQueue<MemRequest> missQueue_;

    std::vector<InflightLoad> inflight_;
    std::vector<LoadToken> freeTokens_;
    unsigned inflightCount_ = 0;

    std::multimap<Cycle, RegWb> regWheel_;
    std::multimap<Cycle, HitDone> hitWheel_;

    std::uint64_t idleCum_ = 0;
    /** Whether the most recent tick issued any instruction — the
     *  idle-skip guard in nextEventAt() (true = assume active). */
    bool issuedLastTick_ = true;
    /** An external delivery (response, block dispatch) changed
     *  warp state since the last tick: the next scheduled tick may
     *  issue even though every wheel/queue looks quiet. */
    bool wokeSinceTick_ = false;

    Counter *issued_;
    Counter *memInstrs_;
    Counter *idleStat_;
    Counter *activeStat_;
    Counter *loadsCompleted_;
    Counter *idleMemStat_;
    Counter *idleAluStat_;
    Counter *idleLsuStat_;
    Counter *idleBarrierStat_;
};

} // namespace gpulat

#endif // GPULAT_SIMT_CORE_HH
