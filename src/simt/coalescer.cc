#include "simt/coalescer.hh"

#include <algorithm>

#include "common/log.hh"

namespace gpulat {

std::vector<Transaction>
coalesce(const std::array<Addr, kWarpSize> &addrs, LaneMask active,
         std::uint32_t line_bytes)
{
    GPULAT_ASSERT(line_bytes > 0 && (line_bytes & (line_bytes - 1)) == 0,
                  "line size must be a power of two");
    std::vector<Transaction> txns;
    for (unsigned lane = 0; lane < kWarpSize; ++lane) {
        if (!(active >> lane & 1))
            continue;
        const Addr line = addrs[lane] & ~static_cast<Addr>(line_bytes - 1);
        auto it = std::find_if(txns.begin(), txns.end(),
                               [line](const Transaction &t) {
                                   return t.lineAddr == line;
                               });
        if (it == txns.end())
            txns.push_back(Transaction{line, 1u << lane});
        else
            it->lanes |= 1u << lane;
    }
    return txns;
}

unsigned
bankConflictDegree(const std::array<Addr, kWarpSize> &addrs,
                   LaneMask active, unsigned banks)
{
    GPULAT_ASSERT(banks > 0, "need at least one bank");
    // For each bank, count distinct 8-byte word addresses.
    unsigned worst = active ? 1 : 0;
    for (unsigned b = 0; b < banks; ++b) {
        std::vector<Addr> words;
        for (unsigned lane = 0; lane < kWarpSize; ++lane) {
            if (!(active >> lane & 1))
                continue;
            const Addr word = addrs[lane] / 8;
            if (word % banks != b)
                continue;
            if (std::find(words.begin(), words.end(), word) ==
                words.end())
                words.push_back(word);
        }
        worst = std::max(worst, static_cast<unsigned>(words.size()));
    }
    return worst;
}

} // namespace gpulat
