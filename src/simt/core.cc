#include "simt/core.hh"

#include <algorithm>
#include <bit>
#include <cstring>
#include <sstream>

#include "common/log.hh"

namespace gpulat {

namespace {

double
asDouble(RegValue v)
{
    return std::bit_cast<double>(v);
}

RegValue
fromDouble(double d)
{
    return std::bit_cast<RegValue>(d);
}

std::int64_t
asInt(RegValue v)
{
    return static_cast<std::int64_t>(v);
}

} // namespace

SmCore::SmCore(const SmParams &params, DeviceMemory *dmem,
               StatRegistry *stats, LatencyCollector *lat_collector,
               ExposureCollector *exp_collector,
               Crossbar<MemRequest> *req_net,
               std::function<unsigned(Addr)> partition_of)
    : params_(params),
      dmem_(dmem),
      stats_(stats),
      latCollector_(lat_collector),
      expCollector_(exp_collector),
      reqNet_(req_net),
      partitionOf_(std::move(partition_of)),
      l1Mshr_(params.l1MshrEntries, params.l1MshrMaxMerge),
      lsuQueue_(params.lsuQueueSize, params.smBaseLatency),
      missQueue_(params.l1MissQueueSize, params.l1MissLatency)
{
    GPULAT_ASSERT(dmem_ && stats_, "SM needs memory and stats");
    GPULAT_ASSERT(params_.numSchedulers > 0, "SM needs a scheduler");
    if (latCollector_)
        latShard_ = &latCollector_->shard(params_.smId);
    if (expCollector_)
        expShard_ = &expCollector_->shard(params_.smId);

    warps_.resize(params_.warpSlots);
    blocks_.resize(params_.maxBlocksPerSm);

    const std::string prefix = "sm" + std::to_string(params_.smId);
    if (params_.l1Enabled) {
        l1_ = std::make_unique<Cache>(prefix + ".l1", params_.l1Cache,
                                      stats_);
    }

    for (unsigned s = 0; s < params_.numSchedulers; ++s) {
        std::vector<unsigned> slots;
        for (unsigned w = s; w < params_.warpSlots;
             w += params_.numSchedulers)
            slots.push_back(w);
        schedulers_.emplace_back(params_.schedPolicy, std::move(slots));
    }

    issued_ = &stats_->counter(prefix + ".issued");
    memInstrs_ = &stats_->counter(prefix + ".mem_instrs");
    idleStat_ = &stats_->counter(prefix + ".idle_cycles");
    activeStat_ = &stats_->counter(prefix + ".active_cycles");
    loadsCompleted_ = &stats_->counter(prefix + ".loads_completed");
    idleMemStat_ = &stats_->counter(prefix + ".idle_on_memory");
    idleAluStat_ = &stats_->counter(prefix + ".idle_on_alu");
    idleLsuStat_ = &stats_->counter(prefix + ".idle_on_lsu");
    idleBarrierStat_ = &stats_->counter(prefix + ".idle_on_barrier");
}

void
SmCore::startLaunch(const LaunchContext *ctx)
{
    GPULAT_ASSERT(residentWarps_ == 0, "launch while SM busy");
    ctx_ = ctx;
    // Binding a context is a delivery that leaves no queue entry
    // behind: raise the woke flag so the promise reads "active
    // now" until the next tick observes it. (Not issuedLastTick_:
    // that would poison the lazy idle-window flush when a serving
    // scheduler starts a launch mid-run on a sleeping SM.)
    wokeSinceTick_ = true;
}

bool
SmCore::l1Caches(MemSpace space) const
{
    if (!params_.l1Enabled)
        return false;
    switch (space) {
      case MemSpace::Global: return params_.l1CachesGlobal;
      case MemSpace::Local: return params_.l1CachesLocal;
      case MemSpace::Shared: return false;
    }
    return false;
}

bool
SmCore::canAcceptBlock() const
{
    GPULAT_ASSERT(ctx_ && ctx_->kernel, "no launch bound");
    if (residentBlocks_ >= params_.maxBlocksPerSm)
        return false;
    const unsigned warps_needed =
        (ctx_->threadsPerBlock + kWarpSize - 1) / kWarpSize;
    // Done warps still belong to their block until the whole block
    // retires, so only Invalid slots are reusable.
    unsigned free_warps = 0;
    for (const auto &w : warps_)
        if (w.state() == WarpState::Invalid)
            ++free_warps;
    if (free_warps < warps_needed)
        return false;
    const unsigned regs_needed = warps_needed * kWarpSize *
        static_cast<unsigned>(ctx_->kernel->numRegs);
    if (regsUsed_ + regs_needed > params_.regsPerSm)
        return false;
    if (smemUsed_ + ctx_->kernel->sharedBytes > params_.smemPerSm)
        return false;
    return true;
}

void
SmCore::dispatchBlock(unsigned block_id)
{
    GPULAT_ASSERT(canAcceptBlock(), "dispatch without room");
    wokeSinceTick_ = true;

    unsigned block_slot = 0;
    while (blocks_[block_slot].valid)
        ++block_slot;

    ResidentBlock &block = blocks_[block_slot];
    block.valid = true;
    block.blockId = block_id;
    block.warpsDone = 0;
    block.warpsAtBarrier = 0;
    block.warpSlots.clear();
    block.sharedMem.assign(ctx_->kernel->sharedBytes, 0);

    const unsigned tpb = ctx_->threadsPerBlock;
    const unsigned warps_needed = (tpb + kWarpSize - 1) / kWarpSize;
    block.numWarps = warps_needed;

    unsigned next_slot = 0;
    for (unsigned w = 0; w < warps_needed; ++w) {
        while (warps_[next_slot].state() != WarpState::Invalid)
            ++next_slot;
        const unsigned lanes_left = tpb - w * kWarpSize;
        const LaneMask live = lanes_left >= kWarpSize
            ? kFullMask
            : (1u << lanes_left) - 1;
        warps_[next_slot].init(next_slot, w, block_slot, live,
                               ctx_->kernel->numRegs, dispatchSeq_++);
        block.warpSlots.push_back(next_slot);
        ++next_slot;
        ++residentWarps_;
    }

    regsUsed_ += warps_needed * kWarpSize *
        static_cast<unsigned>(ctx_->kernel->numRegs);
    smemUsed_ += ctx_->kernel->sharedBytes;
    ++residentBlocks_;
}

std::uint64_t
SmCore::globalThreadId(const Warp &warp, unsigned lane) const
{
    const ResidentBlock &block = blocks_[warp.blockSlot()];
    return static_cast<std::uint64_t>(block.blockId) *
               ctx_->threadsPerBlock +
           warp.warpInBlock() * kWarpSize + lane;
}

Addr
SmCore::localPhys(Addr offset, std::uint64_t gtid) const
{
    if (offset + 8 > ctx_->localBytesPerThread)
        fatal("local memory access at offset ", offset,
              " exceeds per-thread allocation of ",
              ctx_->localBytesPerThread);
    // Word-interleaved so that lanes accessing the same local offset
    // produce consecutive physical addresses (hardware does this so
    // local traffic coalesces).
    const std::uint64_t word = offset / 8;
    return ctx_->localBase +
           (word * ctx_->totalThreads + gtid) * 8;
}

RegValue
SmCore::operandB(const Warp &warp, const Instruction &inst,
                 unsigned lane) const
{
    return inst.useImm ? static_cast<RegValue>(inst.imm)
                       : warp.reg(lane, inst.srcB);
}

void
SmCore::scheduleRegWb(Cycle at, unsigned warp_slot, int reg,
                      bool is_pred)
{
    regWheel_.emplace(at, RegWb{warp_slot, reg, is_pred});
}

LoadToken
SmCore::allocToken(unsigned warp_slot, int dest, unsigned txns,
                   Cycle now)
{
    LoadToken token;
    if (!freeTokens_.empty()) {
        token = freeTokens_.back();
        freeTokens_.pop_back();
    } else {
        token = static_cast<LoadToken>(inflight_.size());
        inflight_.emplace_back();
    }
    InflightLoad &load = inflight_[static_cast<std::size_t>(token)];
    load.valid = true;
    load.warpSlot = warp_slot;
    load.destReg = dest;
    load.pendingTxns = txns;
    load.issueCycle = now;
    load.idleAtIssue = idleCum_;
    ++inflightCount_;
    return token;
}

void
SmCore::completeLoadTxn(LoadToken token, Cycle now)
{
    GPULAT_ASSERT(token != kNoToken, "completing an untracked load");
    InflightLoad &load = inflight_[static_cast<std::size_t>(token)];
    GPULAT_ASSERT(load.valid && load.pendingTxns > 0,
                  "double completion of load token");
    if (--load.pendingTxns > 0)
        return;

    warps_[load.warpSlot].clearRegPending(load.destReg);
    loadsCompleted_->inc();
    if (expShard_) {
        const Cycle total = now - load.issueCycle;
        const Cycle exposed =
            static_cast<Cycle>(idleCum_ - load.idleAtIssue);
        expShard_->record(tagCycle_, tagPhase_, total,
                          std::min(exposed, total));
    }
    load.valid = false;
    freeTokens_.push_back(token);
    --inflightCount_;
}

void
SmCore::finishWarp(Warp &warp)
{
    ResidentBlock &block = blocks_[warp.blockSlot()];
    ++block.warpsDone;
    --residentWarps_;
    releaseBarrierIfReady(block);
    if (block.warpsDone == block.numWarps) {
        regsUsed_ -= block.numWarps * kWarpSize *
            static_cast<unsigned>(ctx_->kernel->numRegs);
        smemUsed_ -= ctx_->kernel->sharedBytes;
        block.valid = false;
        --residentBlocks_;
        for (unsigned slot : block.warpSlots)
            warps_[slot].setState(WarpState::Invalid);
    }
}

void
SmCore::releaseBarrierIfReady(ResidentBlock &block)
{
    if (block.warpsAtBarrier == 0)
        return;
    if (block.warpsAtBarrier + block.warpsDone < block.numWarps)
        return;
    for (unsigned slot : block.warpSlots) {
        if (warps_[slot].state() == WarpState::AtBarrier)
            warps_[slot].setState(WarpState::Ready);
    }
    block.warpsAtBarrier = 0;
}

void
SmCore::execBarrier(Warp &warp)
{
    warp.advance();
    warp.setState(WarpState::AtBarrier);
    ResidentBlock &block = blocks_[warp.blockSlot()];
    ++block.warpsAtBarrier;
    releaseBarrierIfReady(block);
}

void
SmCore::execBranch(Warp &warp, const Instruction &inst,
                   LaneMask active, LaneMask guard)
{
    if (inst.pred == kNoReg) {
        warp.jump(inst.target);
        return;
    }
    const LaneMask taken = guard;
    const LaneMask fall = active & ~guard;
    if (taken == 0) {
        warp.advance();
    } else if (fall == 0) {
        warp.jump(inst.target);
    } else {
        warp.diverge(inst.target, inst.reconv, taken, fall);
    }
}

void
SmCore::execExit(Warp &warp, LaneMask active, LaneMask guard)
{
    if (guard == 0) {
        warp.advance();
        return;
    }
    const bool tos_survives = (active & ~guard) != 0;
    const bool done = warp.exitLanes(guard);
    if (done) {
        finishWarp(warp);
    } else if (tos_survives) {
        warp.advance();
    }
}

void
SmCore::execAlu(Warp &warp, const Instruction &inst, LaneMask guard,
                Cycle now)
{
    Cycle latency = inst.isFloat() ? params_.fpLatency
                                   : params_.aluLatency;

    for (unsigned lane = 0; lane < kWarpSize; ++lane) {
        if (!(guard >> lane & 1))
            continue;
        RegValue result = 0;
        switch (inst.op) {
          case Opcode::MOV:
            if (inst.param != kNoReg)
                result = ctx_->params[static_cast<std::size_t>(
                    inst.param)];
            else
                result = operandB(warp, inst, lane);
            break;
          case Opcode::S2R:
            switch (inst.sreg) {
              case SpecialReg::Tid:
                result = warp.warpInBlock() * kWarpSize + lane;
                break;
              case SpecialReg::Ctaid:
                result = blocks_[warp.blockSlot()].blockId;
                break;
              case SpecialReg::Ntid:
                result = ctx_->threadsPerBlock;
                break;
              case SpecialReg::Nctaid:
                result = ctx_->numBlocks;
                break;
              case SpecialReg::LaneId:
                result = lane;
                break;
              case SpecialReg::WarpId:
                result = warp.warpInBlock();
                break;
              case SpecialReg::SmId:
                result = params_.smId;
                break;
            }
            break;
          case Opcode::CLOCK:
            result = now;
            break;
          case Opcode::IADD:
            result = warp.reg(lane, inst.srcA) +
                     operandB(warp, inst, lane);
            break;
          case Opcode::ISUB:
            result = warp.reg(lane, inst.srcA) -
                     operandB(warp, inst, lane);
            break;
          case Opcode::IMUL:
            result = warp.reg(lane, inst.srcA) *
                     operandB(warp, inst, lane);
            break;
          case Opcode::IMAD:
            result = warp.reg(lane, inst.srcA) *
                         warp.reg(lane, inst.srcB) +
                     warp.reg(lane, inst.srcC);
            break;
          case Opcode::SHL:
            result = warp.reg(lane, inst.srcA)
                     << (operandB(warp, inst, lane) & 63);
            break;
          case Opcode::SHR:
            result = warp.reg(lane, inst.srcA) >>
                     (operandB(warp, inst, lane) & 63);
            break;
          case Opcode::AND:
            result = warp.reg(lane, inst.srcA) &
                     operandB(warp, inst, lane);
            break;
          case Opcode::OR:
            result = warp.reg(lane, inst.srcA) |
                     operandB(warp, inst, lane);
            break;
          case Opcode::XOR:
            result = warp.reg(lane, inst.srcA) ^
                     operandB(warp, inst, lane);
            break;
          case Opcode::IMIN:
            result = static_cast<RegValue>(
                std::min(asInt(warp.reg(lane, inst.srcA)),
                         asInt(operandB(warp, inst, lane))));
            break;
          case Opcode::IMAX:
            result = static_cast<RegValue>(
                std::max(asInt(warp.reg(lane, inst.srcA)),
                         asInt(operandB(warp, inst, lane))));
            break;
          case Opcode::FADD:
            result = fromDouble(asDouble(warp.reg(lane, inst.srcA)) +
                                asDouble(operandB(warp, inst, lane)));
            break;
          case Opcode::FMUL:
            result = fromDouble(asDouble(warp.reg(lane, inst.srcA)) *
                                asDouble(operandB(warp, inst, lane)));
            break;
          case Opcode::FFMA:
            result = fromDouble(
                asDouble(warp.reg(lane, inst.srcA)) *
                    asDouble(warp.reg(lane, inst.srcB)) +
                asDouble(warp.reg(lane, inst.srcC)));
            break;
          case Opcode::I2F:
            result = fromDouble(static_cast<double>(
                asInt(warp.reg(lane, inst.srcA))));
            break;
          case Opcode::F2I:
            result = static_cast<RegValue>(static_cast<std::int64_t>(
                asDouble(warp.reg(lane, inst.srcA))));
            break;
          case Opcode::SETP: {
            const std::int64_t a = asInt(warp.reg(lane, inst.srcA));
            const std::int64_t b = asInt(operandB(warp, inst, lane));
            bool v = false;
            switch (inst.cmp) {
              case CmpOp::EQ: v = a == b; break;
              case CmpOp::NE: v = a != b; break;
              case CmpOp::LT: v = a < b; break;
              case CmpOp::LE: v = a <= b; break;
              case CmpOp::GT: v = a > b; break;
              case CmpOp::GE: v = a >= b; break;
            }
            warp.setPredBit(lane, inst.predDst, v);
            continue; // no register result
          }
          default:
            panic("execAlu on non-ALU opcode ", toString(inst.op));
        }
        warp.setReg(lane, inst.dst, result);
    }

    if (inst.op == Opcode::SETP) {
        warp.markPredPending(inst.predDst);
        scheduleRegWb(now + latency, warp.slot(), inst.predDst, true);
    } else if (inst.dst != kNoReg) {
        warp.markRegPending(inst.dst);
        scheduleRegWb(now + latency, warp.slot(), inst.dst, false);
    }
    warp.advance();
}

void
SmCore::execSharedMem(Warp &warp, const Instruction &inst,
                      LaneMask guard, Cycle now)
{
    ResidentBlock &block = blocks_[warp.blockSlot()];
    std::array<Addr, kWarpSize> addrs{};
    for (unsigned lane = 0; lane < kWarpSize; ++lane) {
        if (!(guard >> lane & 1))
            continue;
        const Addr addr = warp.reg(lane, inst.srcA) +
                          static_cast<Addr>(inst.imm);
        if (addr + 8 > block.sharedMem.size())
            fatal("shared memory access at ", addr, " exceeds ",
                  block.sharedMem.size(), " bytes");
        addrs[lane] = addr;
    }

    const unsigned degree =
        bankConflictDegree(addrs, guard, params_.smemBanks);
    const Cycle latency = params_.smemLatency +
        (degree > 1 ? (degree - 1) * params_.smemConflictPenalty : 0);

    if (inst.isLoad()) {
        for (unsigned lane = 0; lane < kWarpSize; ++lane) {
            if (!(guard >> lane & 1))
                continue;
            std::uint64_t v;
            std::memcpy(&v, &block.sharedMem[addrs[lane]], 8);
            warp.setReg(lane, inst.dst, v);
        }
        warp.markRegPending(inst.dst);
        scheduleRegWb(now + latency, warp.slot(), inst.dst, false);
    } else {
        for (unsigned lane = 0; lane < kWarpSize; ++lane) {
            if (!(guard >> lane & 1))
                continue;
            const std::uint64_t v = warp.reg(lane, inst.srcB);
            std::memcpy(&block.sharedMem[addrs[lane]], &v, 8);
        }
    }
    warp.advance();
}

void
SmCore::execGlobalMem(Warp &warp, const Instruction &inst,
                      LaneMask guard, Cycle now)
{
    if (guard == 0) {
        warp.advance();
        return;
    }

    std::array<Addr, kWarpSize> addrs{};
    for (unsigned lane = 0; lane < kWarpSize; ++lane) {
        if (!(guard >> lane & 1))
            continue;
        Addr addr = warp.reg(lane, inst.srcA) +
                    static_cast<Addr>(inst.imm);
        if (inst.space == MemSpace::Local)
            addr = localPhys(addr, globalThreadId(warp, lane));
        addrs[lane] = addr;
    }

    // Functional access happens at issue. Atomics RMW in lane
    // order, which serializes intra-warp conflicts exactly like the
    // hardware's ROP units do.
    if (inst.isLoad()) {
        for (unsigned lane = 0; lane < kWarpSize; ++lane) {
            if (guard >> lane & 1)
                warp.setReg(lane, inst.dst, dmem_->read64(addrs[lane]));
        }
    } else if (inst.isAtomic() && !ctx_->forwardAtomics) {
        for (unsigned lane = 0; lane < kWarpSize; ++lane) {
            if (!(guard >> lane & 1))
                continue;
            const RegValue old = dmem_->read64(addrs[lane]);
            const RegValue arg = warp.reg(lane, inst.srcB);
            RegValue next = 0;
            switch (inst.atomOp) {
              case AtomOp::Add:
                next = old + arg;
                break;
              case AtomOp::Max:
                next = static_cast<RegValue>(
                    std::max(asInt(old), asInt(arg)));
                break;
              case AtomOp::Exch:
                next = arg;
                break;
            }
            dmem_->write64(addrs[lane], next);
            warp.setReg(lane, inst.dst, old);
        }
    } else if (inst.isAtomic()) {
        // Forwarded: the partition performs the RMW at accept() and
        // the pre-RMW value is written back on response. The dst
        // register is scoreboarded below like any load, so no lane
        // can observe it before the writeback.
    } else {
        for (unsigned lane = 0; lane < kWarpSize; ++lane) {
            if (guard >> lane & 1)
                dmem_->write64(addrs[lane], warp.reg(lane, inst.srcB));
        }
    }

    LsuOp op;
    op.isLoad = inst.isLoad() || inst.isAtomic();
    op.isAtomic = inst.isAtomic();
    op.space = inst.space;
    if (op.isAtomic) {
        // Atomics do not coalesce: one transaction per active lane.
        op.atomOp = inst.atomOp;
        for (unsigned lane = 0; lane < kWarpSize; ++lane) {
            if (guard >> lane & 1) {
                op.txns.push_back(Transaction{
                    addrs[lane] & ~static_cast<Addr>(
                        params_.lineBytes - 1),
                    1u << lane});
                op.atomLanes.push_back(AtomLane{
                    addrs[lane], warp.reg(lane, inst.srcB), lane});
            }
        }
    } else {
        op.txns = coalesce(addrs, guard, params_.lineBytes);
    }
    op.issueCycle = now;
    if (op.isLoad) {
        op.token = allocToken(warp.slot(), inst.dst,
                              static_cast<unsigned>(op.txns.size()),
                              now);
        warp.markRegPending(inst.dst, true);
    }
    const bool pushed = lsuQueue_.push(now, std::move(op));
    GPULAT_ASSERT(pushed, "LSU queue full at issue (checked earlier)");
    memInstrs_->inc();
    warp.advance();
}

bool
SmCore::canIssue(Warp &warp, Cycle now)
{
    (void)now;
    if (warp.state() != WarpState::Ready)
        return false;
    const std::uint32_t pc = warp.pc();
    GPULAT_ASSERT(pc < ctx_->kernel->code.size(),
                  "warp pc ", pc, " past end of kernel");
    const Instruction &inst = ctx_->kernel->code[pc];

    // Scoreboard: every register the instruction touches must be
    // idle (reads for correctness of timing, writes for WAW order).
    if (inst.srcA != kNoReg && warp.regPending(inst.srcA))
        return false;
    if (!inst.useImm && inst.srcB != kNoReg &&
        warp.regPending(inst.srcB))
        return false;
    if (inst.srcC != kNoReg && warp.regPending(inst.srcC))
        return false;
    if (inst.dst != kNoReg && warp.regPending(inst.dst))
        return false;
    if (inst.pred != kNoReg && warp.predPending(inst.pred))
        return false;
    if (inst.op == Opcode::SETP && warp.predPending(inst.predDst))
        return false;

    // Structural: LSU slot for non-shared memory ops.
    if (inst.isMemory() && inst.space != MemSpace::Shared &&
        lsuQueue_.full())
        return false;

    return true;
}

void
SmCore::issueWarp(Warp &warp, Cycle now)
{
    const Instruction &inst = ctx_->kernel->code[warp.pc()];
    const LaneMask active = warp.activeMask();
    const LaneMask guard =
        warp.guardMask(active, inst.pred, inst.predNeg);

    issued_->inc();

    switch (inst.op) {
      case Opcode::NOP:
        warp.advance();
        break;
      case Opcode::EXIT:
        execExit(warp, active, guard);
        break;
      case Opcode::BAR:
        execBarrier(warp);
        break;
      case Opcode::BRA:
        execBranch(warp, inst, active, guard);
        break;
      case Opcode::LD:
      case Opcode::ST:
      case Opcode::ATOM:
        if (inst.space == MemSpace::Shared)
            execSharedMem(warp, inst, guard, now);
        else
            execGlobalMem(warp, inst, guard, now);
        break;
      default:
        execAlu(warp, inst, guard, now);
        break;
    }
}

void
SmCore::tickWriteback(Cycle now)
{
    while (!regWheel_.empty() && regWheel_.begin()->first <= now) {
        const RegWb wb = regWheel_.begin()->second;
        regWheel_.erase(regWheel_.begin());
        if (wb.isPred)
            warps_[wb.warpSlot].clearPredPending(wb.reg);
        else
            warps_[wb.warpSlot].clearRegPending(wb.reg);
    }
    while (!hitWheel_.empty() && hitWheel_.begin()->first <= now) {
        const Cycle at = hitWheel_.begin()->first;
        HitDone done = hitWheel_.begin()->second;
        hitWheel_.erase(hitWheel_.begin());
        done.trace.complete = at;
        if (latShard_ && latCollector_->enabled())
            latShard_->record(now, tagPhase_, done.trace);
        completeLoadTxn(done.token, at);
    }
}

void
SmCore::tickInject(Cycle now)
{
    if (!missQueue_.headReady(now) || !reqNet_->canInject(params_.smId))
        return;
    MemRequest req = missQueue_.pop();
    req.trace.icntInject = now;
    req.partition = partitionOf_(req.lineAddr);
    const bool ok =
        reqNet_->inject(now, params_.smId, req.partition,
                        std::move(req));
    GPULAT_ASSERT(ok, "inject must succeed after canInject");
}

void
SmCore::tickLsu(Cycle now)
{
    if (!lsuQueue_.headReady(now))
        return;
    LsuOp &op = lsuQueue_.front();
    GPULAT_ASSERT(op.nextTxn < op.txns.size(), "empty LSU op");
    const Transaction &txn = op.txns[op.nextTxn];
    const bool cached = l1Caches(op.space) && !op.isAtomic;

    auto make_request = [&]() {
        MemRequest req;
        // Per-SM id pool: globally unique without shared state. Ids
        // are only ever compared for equality (MSHR primary-marker
        // matching), never used for ordering or arbitration, so the
        // value change versus a shared sequence is timing-neutral.
        req.id = (static_cast<std::uint64_t>(params_.smId)
                  << kReqIdSmShift) |
            reqSeq_++;
        req.lineAddr = txn.lineAddr;
        req.isWrite = !op.isLoad;
        req.isAtomic = op.isAtomic;
        req.space = op.space;
        req.smId = params_.smId;
        req.token = op.token;
        req.trace.issue = op.issueCycle;
        req.trace.l1Access = now;
        if (op.isAtomic && ctx_->forwardAtomics) {
            const AtomLane &al = op.atomLanes[op.nextTxn];
            req.forwardAtomic = true;
            req.atomAddr = al.addr;
            req.atomArg = al.arg;
            req.atomLane = al.lane;
            req.atomOp = op.atomOp;
        }
        return req;
    };

    if (!op.isLoad) {
        if (missQueue_.full())
            return; // retry next cycle
        if (cached) {
            // Write-through, no-allocate: update the line if present
            // and always forward the write downstream.
            l1_->access(txn.lineAddr, true, now);
        }
        const bool ok = missQueue_.push(now, make_request());
        GPULAT_ASSERT(ok, "miss queue push checked above");
    } else if (cached) {
        const auto outcome = l1_->access(txn.lineAddr, false, now);
        if (outcome == CacheOutcome::Hit) {
            LatencyTrace trace;
            trace.issue = op.issueCycle;
            trace.l1Access = now;
            trace.hitLevel = HitLevel::L1;
            hitWheel_.emplace(now + params_.l1HitLatency,
                              HitDone{op.token, trace});
        } else if (l1Mshr_.pending(txn.lineAddr)) {
            const auto mshr = l1Mshr_.allocate(txn.lineAddr, op.token);
            if (mshr == MshrOutcome::FullMerges)
                return; // retry next cycle
            GPULAT_ASSERT(mshr == MshrOutcome::Merged, "merge");
        } else {
            if (l1Mshr_.inFlight() >= l1Mshr_.capacity() ||
                missQueue_.full())
                return; // structural stall
            const auto mshr = l1Mshr_.allocate(txn.lineAddr, op.token);
            GPULAT_ASSERT(mshr == MshrOutcome::NewEntry, "primary");
            const bool ok = missQueue_.push(now, make_request());
            GPULAT_ASSERT(ok, "miss queue push checked above");
        }
    } else {
        // Uncached load: every transaction is its own request.
        if (missQueue_.full())
            return;
        const bool ok = missQueue_.push(now, make_request());
        GPULAT_ASSERT(ok, "miss queue push checked above");
    }

    if (++op.nextTxn == op.txns.size())
        lsuQueue_.pop();
}

bool
SmCore::tickIssue(Cycle now)
{
    bool issued_any = false;
    for (auto &sched : schedulers_) {
        const int slot = sched.pick(
            [&](unsigned s) { return canIssue(warps_[s], now); },
            [&](unsigned s) { return warps_[s].dispatchSeq(); });
        if (slot < 0)
            continue;
        issueWarp(warps_[static_cast<unsigned>(slot)], now);
        issued_any = true;
    }
    return issued_any;
}

void
SmCore::tick(Cycle now)
{
    // Records appended from inside the tick merge after this
    // cycle's port deliveries (phase 0), in SM order.
    tagCycle_ = now;
    tagPhase_ = 1;
    tickWriteback(now);
    tickInject(now);
    tickLsu(now);
    const bool issued_any = tickIssue(now);
    issuedLastTick_ = issued_any;
    wokeSinceTick_ = false; // this tick observed all deliveries

    if (residentWarps_ > 0) {
        activeStat_->inc();
        if (!issued_any) {
            ++idleCum_;
            idleStat_->inc();
            if (Counter *cause = idleCauseCounter())
                cause->inc();
        }
    }
}

Cycle
SmCore::nextEventAt(Cycle now) const
{
    // The last tick issued (dependent state may cascade next
    // cycle), or a delivery landed since: assume active.
    if (issuedLastTick_ || wokeSinceTick_)
        return now;
    Cycle e = kNoCycle;
    if (!regWheel_.empty())
        e = std::min(e, regWheel_.begin()->first);
    if (!hitWheel_.empty())
        e = std::min(e, hitWheel_.begin()->first);
    e = std::min(e, lsuQueue_.headReadyAt());
    e = std::min(e, missQueue_.headReadyAt());
    return e;
}

void
SmCore::fastForward(Cycle from, Cycle to)
{
    if (residentWarps_ == 0)
        return;
    // The engine only skips windows this SM reported dead, which
    // (with warps resident) requires that the last tick issued
    // nothing — so every skipped cycle is an idle cycle.
    GPULAT_ASSERT(!issuedLastTick_, "fast-forward through active SM");
    const std::uint64_t delta = to - from;
    activeStat_->inc(delta);
    idleCum_ += delta;
    idleStat_->inc(delta);
    // Nothing changes inside a dead window, so the per-cycle idle
    // classification is constant across it: classify once, scale.
    if (Counter *cause = idleCauseCounter())
        cause->inc(delta);
}

Counter *
SmCore::idleCauseCounter()
{
    // Attribute the dead cycle to the most actionable cause seen
    // across resident warps: memory dependency > LSU backpressure >
    // barrier > ALU dependency.
    bool saw_mem = false;
    bool saw_lsu = false;
    bool saw_barrier = false;
    bool saw_alu = false;
    for (Warp &warp : warps_) {
        if (warp.state() == WarpState::AtBarrier) {
            saw_barrier = true;
            continue;
        }
        if (warp.state() != WarpState::Ready)
            continue;
        const Instruction &inst = ctx_->kernel->code[warp.pc()];
        bool dep_mem = false;
        bool dep_any = false;
        auto check = [&](int r) {
            if (r == kNoReg || !warp.regPending(r))
                return;
            dep_any = true;
            dep_mem |= warp.regPendingOnMemory(r);
        };
        check(inst.srcA);
        if (!inst.useImm)
            check(inst.srcB);
        check(inst.srcC);
        check(inst.dst);
        if (inst.pred != kNoReg && warp.predPending(inst.pred))
            dep_any = true;
        if (dep_any) {
            (dep_mem ? saw_mem : saw_alu) = true;
        } else if (inst.isMemory() &&
                   inst.space != MemSpace::Shared &&
                   lsuQueue_.full()) {
            saw_lsu = true;
        }
    }
    if (saw_mem)
        return idleMemStat_;
    if (saw_lsu)
        return idleLsuStat_;
    if (saw_barrier)
        return idleBarrierStat_;
    if (saw_alu)
        return idleAluStat_;
    return nullptr;
}

std::string
SmCore::occupancySummary() const
{
    std::ostringstream oss;
    oss << "sm" << params_.smId << "{warps=" << residentWarps_
        << " lsu=" << lsuQueue_.size()
        << " missq=" << missQueue_.size()
        << " mshr=" << l1Mshr_.inFlight()
        << " loads=" << inflightCount_
        << " regwb=" << regWheel_.size()
        << " hitwb=" << hitWheel_.size() << "}";
    return oss.str();
}

void
SmCore::acceptResponse(Cycle now, MemRequest req)
{
    // Phase 0: the return port ticks (and delivers) before every
    // SM's own tick within a cycle, in ascending smId order — the
    // merge tag reproduces exactly that interleaving.
    tagCycle_ = now;
    tagPhase_ = 0;
    wokeSinceTick_ = true;
    req.trace.complete = now;
    if (latShard_ && latCollector_->enabled() && !req.isWrite)
        latShard_->record(now, tagPhase_, req.trace);

    if (l1Caches(req.space) && !req.isAtomic) {
        // Allocate-on-fill; L1 is write-through so victims are
        // never dirty.
        l1_->fill(req.lineAddr, now);
        for (LoadToken token : l1Mshr_.release(req.lineAddr))
            completeLoadTxn(token, now);
    } else {
        if (req.forwardAtomic && req.token != kNoToken) {
            // Deliver the pre-RMW value the partition captured to
            // the issuing lane (acceptResponse runs in phase 0,
            // before any SM group ticks this cycle).
            const InflightLoad &load =
                inflight_[static_cast<std::size_t>(req.token)];
            if (load.valid)
                warps_[load.warpSlot].setReg(req.atomLane,
                                             load.destReg,
                                             req.atomResult);
        }
        completeLoadTxn(req.token, now);
    }
}

bool
SmCore::drained() const
{
    return lsuQueue_.empty() && missQueue_.empty() &&
           hitWheel_.empty() && regWheel_.empty() &&
           inflightCount_ == 0 && l1Mshr_.empty();
}

void
SmCore::invalidateL1()
{
    GPULAT_ASSERT(l1Mshr_.empty(), "invalidate with misses in flight");
    if (l1_)
        l1_->invalidateAll();
}

} // namespace gpulat
