/**
 * @file
 * Memory access coalescer: collapses the per-lane addresses of one
 * warp memory instruction into the minimal set of line transactions,
 * exactly as GPU load/store units do since compute capability 2.x.
 */

#ifndef GPULAT_SIMT_COALESCER_HH
#define GPULAT_SIMT_COALESCER_HH

#include <array>
#include <vector>

#include "common/types.hh"

namespace gpulat {

/** One coalesced line transaction. */
struct Transaction
{
    Addr lineAddr;
    LaneMask lanes; ///< lanes serviced by this transaction
};

/**
 * Coalesce the active lanes' byte addresses into line transactions.
 *
 * Transactions are emitted in first-appearance (lane) order, which
 * keeps the simulation deterministic.
 *
 * @param addrs per-lane byte addresses (only active lanes read).
 * @param active lanes participating.
 * @param line_bytes cache line size (power of two).
 */
std::vector<Transaction>
coalesce(const std::array<Addr, kWarpSize> &addrs, LaneMask active,
         std::uint32_t line_bytes);

/**
 * Shared-memory bank conflict degree: the maximum number of distinct
 * word addresses mapping to the same bank (1 = conflict-free;
 * broadcasts of the same address don't conflict).
 *
 * @param addrs per-lane byte addresses.
 * @param active lanes participating.
 * @param banks number of banks (word-interleaved, 8-byte words).
 */
unsigned
bankConflictDegree(const std::array<Addr, kWarpSize> &addrs,
                   LaneMask active, unsigned banks);

} // namespace gpulat

#endif // GPULAT_SIMT_COALESCER_HH
