/**
 * @file
 * Bounded FIFO queues with minimum-residency timing, the basic
 * building block of every memory-pipeline hop in the simulator.
 *
 * A TimedQueue models a hardware queue/latch pipe: an entry pushed at
 * cycle t with latency L becomes visible at the head no earlier than
 * t + L. Capacity is finite; a full queue exerts backpressure (the
 * producer must retry). Occupancy statistics are tracked so loaded
 * behaviour (the paper's "queueing" latency component) can be
 * reported.
 */

#ifndef GPULAT_COMMON_QUEUE_HH
#define GPULAT_COMMON_QUEUE_HH

#include <cstddef>
#include <deque>
#include <utility>

#include "common/log.hh"
#include "common/types.hh"

namespace gpulat {

/**
 * Bounded FIFO with per-entry ready times.
 *
 * @tparam T payload type (moved in/out).
 */
template <typename T>
class TimedQueue
{
  public:
    /**
     * @param capacity maximum number of in-flight entries (0 = panic).
     * @param min_latency cycles an entry must stay before it can pop.
     */
    TimedQueue(std::size_t capacity, Cycle min_latency)
        : capacity_(capacity), minLatency_(min_latency)
    {
        GPULAT_ASSERT(capacity > 0, "queue capacity must be positive");
    }

    /** True if another entry can be accepted this cycle. */
    bool full() const { return entries_.size() >= capacity_; }

    /** True if no entries are in flight. */
    bool empty() const { return entries_.empty(); }

    /** Number of in-flight entries. */
    std::size_t size() const { return entries_.size(); }

    /** Configured capacity. */
    std::size_t capacity() const { return capacity_; }

    /** Configured minimum residency in cycles. */
    Cycle minLatency() const { return minLatency_; }

    /**
     * Push an entry at cycle @p now.
     * @return false (and leave @p value untouched) if full.
     */
    bool
    push(Cycle now, T value)
    {
        if (full())
            return false;
        entries_.push_back(Entry{now + minLatency_, std::move(value)});
        sumOccupancy_ += entries_.size();
        ++pushes_;
        maxOccupancy_ = std::max(maxOccupancy_, entries_.size());
        return true;
    }

    /** True if the head entry exists and its residency has elapsed. */
    bool
    headReady(Cycle now) const
    {
        return !entries_.empty() && entries_.front().readyAt <= now;
    }

    /** Peek the head payload; undefined if empty. */
    const T &front() const { return entries_.front().value; }
    T &front() { return entries_.front().value; }

    /** Cycle at which the head becomes poppable; kNoCycle if empty. */
    Cycle
    headReadyAt() const
    {
        return entries_.empty() ? kNoCycle : entries_.front().readyAt;
    }

    /** Pop and return the head payload; undefined if !headReady. */
    T
    pop()
    {
        GPULAT_ASSERT(!entries_.empty(), "pop from empty queue");
        T v = std::move(entries_.front().value);
        entries_.pop_front();
        return v;
    }

    /** Total pushes observed (for average-occupancy statistics). */
    std::uint64_t pushes() const { return pushes_; }

    /** Mean occupancy observed immediately after each push. */
    double
    meanOccupancy() const
    {
        return pushes_ == 0
            ? 0.0
            : static_cast<double>(sumOccupancy_) / pushes_;
    }

    /** High-water mark of the occupancy. */
    std::size_t maxOccupancy() const { return maxOccupancy_; }

    /** Drop all entries (used between kernel launches). */
    void clear() { entries_.clear(); }

  private:
    struct Entry
    {
        Cycle readyAt;
        T value;
    };

    std::size_t capacity_;
    Cycle minLatency_;
    std::deque<Entry> entries_;

    std::uint64_t pushes_ = 0;
    std::uint64_t sumOccupancy_ = 0;
    std::size_t maxOccupancy_ = 0;
};

} // namespace gpulat

#endif // GPULAT_COMMON_QUEUE_HH
