/**
 * @file
 * Text rendering helpers for benches and examples: aligned tables
 * (Table I style) and horizontal stacked-bar charts (Figure 1/2
 * style), plus CSV emission for downstream plotting.
 */

#ifndef GPULAT_COMMON_TABLE_HH
#define GPULAT_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace gpulat {

/** Column-aligned text table with a header row. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Append one row; must have the same arity as the header. */
    void addRow(std::vector<std::string> row);

    /** Render with padded columns and a rule under the header. */
    void print(std::ostream &os) const;

    /** Render as CSV (no padding, RFC-4180 quoting via csvField). */
    void printCsv(std::ostream &os) const;

    std::size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Horizontal stacked percentage bars: one row per bucket, one glyph
 * run per series — the terminal version of the paper's Figures 1/2.
 */
class StackedBarChart
{
  public:
    /**
     * @param series_names legend entries, in stacking order.
     * @param width total glyph width of a 100% bar.
     */
    StackedBarChart(std::vector<std::string> series_names,
                    std::size_t width = 60);

    /**
     * Append one bar.
     * @param label row label (e.g. "153-190").
     * @param parts one value per series; rendered as % of their sum.
     * @param annotation free text appended after the bar.
     */
    void addBar(const std::string &label, std::vector<double> parts,
                const std::string &annotation = "");

    /** Render bars plus a legend mapping glyphs to series names. */
    void print(std::ostream &os) const;

  private:
    std::vector<std::string> seriesNames_;
    std::size_t width_;

    struct Bar
    {
        std::string label;
        std::vector<double> parts;
        std::string annotation;
    };
    std::vector<Bar> bars_;

    static char glyphFor(std::size_t series);
};

/** Format a double with fixed precision into a string. */
std::string formatDouble(double v, int precision = 1);

/**
 * RFC-4180 CSV field: returned verbatim unless it contains the
 * delimiter, a double quote or a line break, in which case it is
 * wrapped in double quotes with embedded quotes doubled — so a
 * param value like `label=a,"b"` can no longer shear a row apart
 * (and silently break byte-diff gates on the emitted files).
 */
std::string csvField(const std::string &s);

} // namespace gpulat

#endif // GPULAT_COMMON_TABLE_HH
