/**
 * @file
 * Deterministic, seedable PRNG (xoshiro256**) used by workload and
 * graph generators so every experiment is bit-reproducible across
 * platforms (std::mt19937 distributions are not portable).
 */

#ifndef GPULAT_COMMON_RANDOM_HH
#define GPULAT_COMMON_RANDOM_HH

#include <cstdint>

namespace gpulat {

/** xoshiro256** by Blackman & Vigna; public-domain reference algo. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // SplitMix64 seeding as recommended by the xoshiro authors.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free variant is overkill
        // here; plain modulo bias is negligible for simulator inputs,
        // but use the widening trick anyway for uniformity.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * 0x1.0p-53;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace gpulat

#endif // GPULAT_COMMON_RANDOM_HH
