/**
 * @file
 * Fundamental scalar types shared by every gpulat module.
 */

#ifndef GPULAT_COMMON_TYPES_HH
#define GPULAT_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace gpulat {

/** Simulated time, measured in core ("hot") clock cycles. */
using Cycle = std::uint64_t;

/** A byte address in the simulated device address space. */
using Addr = std::uint64_t;

/** 64-bit architectural register value (int or bit-cast double). */
using RegValue = std::uint64_t;

/** Sentinel for "not a valid cycle" / "event never happened". */
inline constexpr Cycle kNoCycle = std::numeric_limits<Cycle>::max();

/** Sentinel for "not a valid address". */
inline constexpr Addr kNoAddr = std::numeric_limits<Addr>::max();

/** Number of threads in a warp. Fixed at 32 across all NVIDIA gens. */
inline constexpr unsigned kWarpSize = 32;

/** Lane activity mask within a warp; bit i = lane i active. */
using LaneMask = std::uint32_t;

/** Mask with all kWarpSize lanes active. */
inline constexpr LaneMask kFullMask = 0xffffffffu;

/** Memory spaces visible to the ISA. */
enum class MemSpace : std::uint8_t {
    Global, ///< device memory, possibly cached in L1/L2
    Local,  ///< per-thread private (spills/stack), interleaved in DRAM
    Shared, ///< on-chip per-SM scratchpad
};

/** Printable name of a memory space. */
const char *toString(MemSpace space);

} // namespace gpulat

#endif // GPULAT_COMMON_TYPES_HH
