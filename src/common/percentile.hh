/**
 * @file
 * Shared percentile estimation for latency reports and serving
 * metrics.
 *
 * One convention, everywhere: nearest-rank on the sorted sample,
 * `index = floor(p * (n - 1))` — exact for every n we keep samples
 * for (the collectors retain full traces, so there is no need for a
 * streaming P² approximation yet; if a future workload outgrows
 * memory, swap the storage and keep this interface). The index
 * formula is the one the latency summary has always used, so
 * migrating callers onto this header changes no golden output.
 */

#ifndef GPULAT_COMMON_PERCENTILE_HH
#define GPULAT_COMMON_PERCENTILE_HH

#include <algorithm>
#include <cstddef>
#include <vector>

namespace gpulat {

/**
 * Percentile @p p in [0, 1] of an ascending-sorted sample.
 * Returns T{} for an empty sample; the single element for n == 1;
 * `sorted[floor(p * (n - 1))]` otherwise (p is clamped to [0, 1]).
 */
template <typename T>
T
percentileSorted(const std::vector<T> &sorted, double p)
{
    if (sorted.empty())
        return T{};
    if (p <= 0.0)
        return sorted.front();
    if (p >= 1.0)
        return sorted.back();
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(sorted.size() - 1));
    return sorted[idx];
}

/** percentileSorted() over an unsorted sample (copies and sorts). */
template <typename T>
T
percentile(std::vector<T> values, double p)
{
    std::sort(values.begin(), values.end());
    return percentileSorted(values, p);
}

} // namespace gpulat

#endif // GPULAT_COMMON_PERCENTILE_HH
