#include "common/table.hh"

#include <algorithm>
#include <iomanip>
#include <numeric>
#include <sstream>

#include "common/log.hh"

namespace gpulat {

std::string
formatDouble(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return oss.str();
}

std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n\r") == std::string::npos)
        return s;
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
    GPULAT_ASSERT(!header_.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> row)
{
    GPULAT_ASSERT(row.size() == header_.size(),
                  "row arity ", row.size(), " != header arity ",
                  header_.size());
    rows_.push_back(std::move(row));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left
               << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
        }
        os << "\n";
    };

    emit_row(header_);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emit_row(row);
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ",";
            os << csvField(row[c]);
        }
        os << "\n";
    };
    emit(header_);
    for (const auto &row : rows_)
        emit(row);
}

StackedBarChart::StackedBarChart(std::vector<std::string> series_names,
                                 std::size_t width)
    : seriesNames_(std::move(series_names)), width_(width)
{
    GPULAT_ASSERT(!seriesNames_.empty(), "chart needs >= 1 series");
}

void
StackedBarChart::addBar(const std::string &label,
                        std::vector<double> parts,
                        const std::string &annotation)
{
    GPULAT_ASSERT(parts.size() == seriesNames_.size(),
                  "bar arity mismatch");
    bars_.push_back(Bar{label, std::move(parts), annotation});
}

char
StackedBarChart::glyphFor(std::size_t series)
{
    // Distinct single-char glyphs; wraps for >16 series. Returned
    // by value: charts from concurrent experiment jobs must not
    // share a scratch buffer.
    static constexpr char glyphs[] = "#@=+*o.:%&xsdqwz";
    return glyphs[series % 16];
}

void
StackedBarChart::print(std::ostream &os) const
{
    std::size_t label_w = 0;
    for (const auto &bar : bars_)
        label_w = std::max(label_w, bar.label.size());

    for (const auto &bar : bars_) {
        const double total = std::accumulate(
            bar.parts.begin(), bar.parts.end(), 0.0);
        os << std::left << std::setw(static_cast<int>(label_w) + 1)
           << bar.label << "|";
        std::size_t used = 0;
        if (total > 0) {
            for (std::size_t s = 0; s < bar.parts.size(); ++s) {
                auto glyphs = static_cast<std::size_t>(
                    bar.parts[s] / total * width_ + 0.5);
                glyphs = std::min(glyphs, width_ - used);
                for (std::size_t g = 0; g < glyphs; ++g)
                    os << glyphFor(s);
                used += glyphs;
            }
        }
        for (; used < width_; ++used)
            os << " ";
        os << "|";
        if (!bar.annotation.empty())
            os << " " << bar.annotation;
        os << "\n";
    }

    os << "legend:";
    for (std::size_t s = 0; s < seriesNames_.size(); ++s)
        os << "  " << glyphFor(s) << "=" << seriesNames_[s];
    os << "\n";
}

} // namespace gpulat
