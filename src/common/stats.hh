/**
 * @file
 * Lightweight statistics package: named counters, scalar averages and
 * linear/log histograms, grouped per hardware unit and dumpable as
 * text. Modeled loosely on gem5's Stats but kept dependency-free.
 */

#ifndef GPULAT_COMMON_STATS_HH
#define GPULAT_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/log.hh"

namespace gpulat {

/** Monotonic event counter. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Running scalar statistic: count / sum / min / max / mean. */
class ScalarStat
{
  public:
    void
    sample(double v)
    {
        if (count_ == 0) {
            min_ = max_ = v;
        } else {
            if (v < min_) min_ = v;
            if (v > max_) max_ = v;
        }
        sum_ += v;
        ++count_;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    void reset() { *this = ScalarStat(); }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Fixed-width linear histogram over [lo, hi); out-of-range samples go
 * to saturated edge buckets.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets)
        : lo_(lo), hi_(hi), counts_(buckets, 0)
    {
        GPULAT_ASSERT(hi > lo && buckets > 0, "bad histogram shape");
    }

    void
    sample(double v)
    {
        std::size_t idx;
        if (v < lo_) {
            idx = 0;
        } else if (v >= hi_) {
            idx = counts_.size() - 1;
        } else {
            idx = static_cast<std::size_t>(
                (v - lo_) / (hi_ - lo_) * counts_.size());
            if (idx >= counts_.size())
                idx = counts_.size() - 1;
        }
        ++counts_[idx];
        scalar_.sample(v);
    }

    std::size_t buckets() const { return counts_.size(); }
    std::uint64_t bucketCount(std::size_t i) const { return counts_[i]; }
    double bucketLo(std::size_t i) const
    {
        return lo_ + (hi_ - lo_) * i / counts_.size();
    }
    double bucketHi(std::size_t i) const { return bucketLo(i + 1); }
    const ScalarStat &scalar() const { return scalar_; }

  private:
    double lo_, hi_;
    std::vector<std::uint64_t> counts_;
    ScalarStat scalar_;
};

/**
 * Hierarchical registry of named statistics for one simulation.
 *
 * Units register counters/scalars under dotted names
 * (e.g. "sm0.l1.hits"); dump() renders them sorted.
 */
class StatRegistry
{
  public:
    /** Create-or-get a counter by dotted name. */
    Counter &counter(const std::string &name) { return counters_[name]; }

    /** Create-or-get a scalar statistic by dotted name. */
    ScalarStat &scalar(const std::string &name) { return scalars_[name]; }

    /** All counters (sorted by name, map order). */
    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }

    const std::map<std::string, ScalarStat> &scalars() const
    {
        return scalars_;
    }

    /** Value of a counter, 0 if absent. */
    std::uint64_t counterValue(const std::string &name) const;

    /**
     * Snapshot every counter and scalar, starting a new experiment
     * epoch. The statistics themselves keep accumulating;
     * counterSinceEpoch()/scalarSinceEpoch() read the deltas, so
     * back-to-back experiments in one process can be compared
     * without leaking each other's totals.
     */
    void markEpoch();

    /** Counter delta since the last markEpoch() (0 if absent). */
    std::uint64_t counterSinceEpoch(const std::string &name) const;

    /** Scalar sum/count accumulated since the last markEpoch(). */
    struct ScalarDelta
    {
        double sum = 0.0;
        std::uint64_t count = 0;

        double mean() const
        {
            return count ? sum / static_cast<double>(count) : 0.0;
        }
    };
    ScalarDelta scalarSinceEpoch(const std::string &name) const;

    /** Render all statistics as aligned text. */
    void dump(std::ostream &os) const;

    /** Zero everything (between kernels, if desired). */
    void reset();

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, ScalarStat> scalars_;
    std::map<std::string, std::uint64_t> epoch_;
    std::map<std::string, ScalarDelta> scalarEpoch_;
};

} // namespace gpulat

#endif // GPULAT_COMMON_STATS_HH
