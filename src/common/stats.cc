#include "common/stats.hh"

#include <iomanip>

namespace gpulat {

std::uint64_t
StatRegistry::counterValue(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

void
StatRegistry::markEpoch()
{
    epoch_.clear();
    for (const auto &[name, c] : counters_)
        epoch_[name] = c.value();
    scalarEpoch_.clear();
    for (const auto &[name, s] : scalars_)
        scalarEpoch_[name] = ScalarDelta{s.sum(), s.count()};
}

std::uint64_t
StatRegistry::counterSinceEpoch(const std::string &name) const
{
    const std::uint64_t value = counterValue(name);
    auto it = epoch_.find(name);
    return it == epoch_.end() ? value : value - it->second;
}

StatRegistry::ScalarDelta
StatRegistry::scalarSinceEpoch(const std::string &name) const
{
    ScalarDelta delta;
    auto it = scalars_.find(name);
    if (it == scalars_.end())
        return delta;
    delta.sum = it->second.sum();
    delta.count = it->second.count();
    auto epoch = scalarEpoch_.find(name);
    if (epoch != scalarEpoch_.end()) {
        delta.sum -= epoch->second.sum;
        delta.count -= epoch->second.count;
    }
    return delta;
}

void
StatRegistry::dump(std::ostream &os) const
{
    std::size_t width = 0;
    for (const auto &[name, c] : counters_)
        width = std::max(width, name.size());
    for (const auto &[name, s] : scalars_)
        width = std::max(width, name.size());

    for (const auto &[name, c] : counters_) {
        os << std::left << std::setw(static_cast<int>(width + 2)) << name
           << c.value() << "\n";
    }
    for (const auto &[name, s] : scalars_) {
        os << std::left << std::setw(static_cast<int>(width + 2)) << name
           << "mean=" << s.mean() << " min=" << s.min()
           << " max=" << s.max() << " n=" << s.count() << "\n";
    }
}

void
StatRegistry::reset()
{
    for (auto &[name, c] : counters_)
        c.reset();
    for (auto &[name, s] : scalars_)
        s.reset();
    epoch_.clear();
}

} // namespace gpulat
