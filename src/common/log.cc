#include "common/log.hh"

#include <cstdio>

#include "common/types.hh"

namespace gpulat {

void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

const char *
toString(MemSpace space)
{
    switch (space) {
      case MemSpace::Global: return "global";
      case MemSpace::Local: return "local";
      case MemSpace::Shared: return "shared";
    }
    return "?";
}

} // namespace gpulat
