/**
 * @file
 * Error reporting helpers in the spirit of gem5's panic()/fatal().
 *
 * panic()  — simulator bug, should never happen regardless of input.
 * fatal()  — unrecoverable user error (bad config, bad kernel, ...).
 * warn()   — something suspicious but survivable.
 */

#ifndef GPULAT_COMMON_LOG_HH
#define GPULAT_COMMON_LOG_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace gpulat {

/** Thrown by fatal(): the *user's* input made continuing impossible. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg) {}
};

/** Thrown by panic(): an internal invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg) {}
};

namespace detail {

/** Concatenate stream-formattable parts into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/** Report an internal simulator bug; throws PanicError. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    throw PanicError(
        detail::concat("panic: ", std::forward<Args>(args)...));
}

/** Report an unrecoverable user/config error; throws FatalError. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    throw FatalError(
        detail::concat("fatal: ", std::forward<Args>(args)...));
}

/** Print a non-fatal warning to stderr. */
void warn(const std::string &msg);

/** panic() unless cond holds. */
#define GPULAT_ASSERT(cond, ...)                                          \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::gpulat::panic("assertion '" #cond "' failed: ",             \
                            ##__VA_ARGS__);                               \
        }                                                                 \
    } while (0)

} // namespace gpulat

#endif // GPULAT_COMMON_LOG_HH
