/**
 * @file
 * The gpulat mini SIMT ISA.
 *
 * A deliberately small, SASS-flavoured register ISA that is rich
 * enough to express the paper's workloads (pointer chases, BFS,
 * streaming and irregular kernels): 64-bit integer ALU ops, bit-cast
 * double FP ops, predicated execution, divergent branches with
 * post-dominator reconvergence, per-space loads/stores, block
 * barriers and a clock-register read for microbenchmark timing.
 */

#ifndef GPULAT_ISA_ISA_HH
#define GPULAT_ISA_ISA_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace gpulat {

/** Machine operations. */
enum class Opcode : std::uint8_t {
    NOP,   ///< no operation
    EXIT,  ///< terminate the thread (must be unpredicated)
    BAR,   ///< block-wide barrier
    MOV,   ///< rd = reg | imm | kernel parameter
    S2R,   ///< rd = special register (tid, ctaid, ...)
    CLOCK, ///< rd = current cycle; optional srcA creates a timing dep
    IADD, ISUB, IMUL,
    IMAD,  ///< rd = ra * rb + rc
    SHL, SHR,
    AND, OR, XOR,
    IMIN, IMAX,
    FADD, FMUL,
    FFMA,  ///< rd = ra * rb + rc (double)
    I2F,   ///< rd = double(int64(ra))
    F2I,   ///< rd = int64(double(ra))
    SETP,  ///< pd = compare(ra, b)
    BRA,   ///< (possibly predicated/divergent) branch
    LD,    ///< rd = mem[ra + imm]  (8 bytes)
    ST,    ///< mem[ra + imm] = rb  (8 bytes)
    ATOM,  ///< rd = atomic-op(mem[ra + imm], rb), serviced at the L2
};

/** Atomic read-modify-write operations. */
enum class AtomOp : std::uint8_t { Add, Max, Exch };

/** SETP comparison operators (signed 64-bit). */
enum class CmpOp : std::uint8_t { EQ, NE, LT, LE, GT, GE };

/** Special (read-only) registers readable via S2R. */
enum class SpecialReg : std::uint8_t {
    Tid,    ///< thread index within the block (x)
    Ctaid,  ///< block index within the grid (x)
    Ntid,   ///< threads per block
    Nctaid, ///< blocks per grid
    LaneId, ///< lane within warp
    WarpId, ///< warp within block
    SmId,   ///< SM executing this thread
};

/** Architectural limits of the ISA. */
inline constexpr int kNumRegs = 64;
inline constexpr int kNumPreds = 8;
inline constexpr int kMaxParams = 16;
inline constexpr int kNoReg = -1;

/**
 * One decoded machine instruction. Flat POD: fields are valid or not
 * depending on the opcode (documented per field).
 */
struct Instruction
{
    Opcode op = Opcode::NOP;

    /** Guard predicate index, or kNoReg for unpredicated. */
    int pred = kNoReg;
    /** If true the guard is @!p rather than @p. */
    bool predNeg = false;

    /** Destination register (MOV/S2R/CLOCK/ALU/LD), else kNoReg. */
    int dst = kNoReg;
    /** First source register; LD/ST address base. */
    int srcA = kNoReg;
    /** Second source register; ST data register. kNoReg if imm used. */
    int srcB = kNoReg;
    /** Third source register (IMAD/FFMA). */
    int srcC = kNoReg;

    /** Immediate: ALU second operand, or LD/ST address offset. */
    std::int64_t imm = 0;
    /** True if srcB position holds `imm` instead of a register. */
    bool useImm = false;

    /** MOV from kernel parameter index, or kNoReg. */
    int param = kNoReg;

    /** S2R source. */
    SpecialReg sreg = SpecialReg::Tid;

    /** SETP comparison and destination predicate. */
    CmpOp cmp = CmpOp::EQ;
    int predDst = kNoReg;

    /** LD/ST/ATOM memory space. */
    MemSpace space = MemSpace::Global;

    /** ATOM sub-operation. */
    AtomOp atomOp = AtomOp::Add;

    /** BRA target pc (instruction index). */
    std::uint32_t target = 0;
    /**
     * BRA reconvergence pc (immediate post-dominator); filled in by
     * KernelBuilder::finalize() for predicated branches.
     */
    std::uint32_t reconv = 0;

    /** True for LD/ST/ATOM. */
    bool
    isMemory() const
    {
        return op == Opcode::LD || op == Opcode::ST ||
               op == Opcode::ATOM;
    }
    /** True for LD (produces a register from memory). */
    bool isLoad() const { return op == Opcode::LD; }
    bool isStore() const { return op == Opcode::ST; }
    bool isAtomic() const { return op == Opcode::ATOM; }
    bool isBranch() const { return op == Opcode::BRA; }
    bool isExit() const { return op == Opcode::EXIT; }
    bool isBarrier() const { return op == Opcode::BAR; }

    /** True if the FP pipeline executes this op. */
    bool
    isFloat() const
    {
        switch (op) {
          case Opcode::FADD: case Opcode::FMUL: case Opcode::FFMA:
          case Opcode::I2F: case Opcode::F2I:
            return true;
          default:
            return false;
        }
    }
};

/** Mnemonic for an opcode ("iadd", "ld", ...). */
const char *toString(Opcode op);
/** Mnemonic for a comparison ("eq", ...). */
const char *toString(CmpOp cmp);
/** Mnemonic for an atomic op ("add", ...). */
const char *toString(AtomOp op);
/** Mnemonic for a special register ("tid", ...). */
const char *toString(SpecialReg sreg);

/** Render one instruction as assembler-like text (for tests/debug). */
std::string disassemble(const Instruction &inst);

} // namespace gpulat

#endif // GPULAT_ISA_ISA_HH
