/**
 * @file
 * Kernel container and programmatic KernelBuilder.
 *
 * A Kernel is a finalized instruction sequence plus launch metadata
 * (register/shared-memory footprint). KernelBuilder provides a fluent
 * API used both by generated microbenchmarks and by the text
 * assembler; finalize() performs control-flow analysis (basic blocks,
 * post-dominators) to annotate divergent branches with their
 * reconvergence pc.
 */

#ifndef GPULAT_ISA_KERNEL_HH
#define GPULAT_ISA_KERNEL_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/isa.hh"

namespace gpulat {

/** An immutable, analysis-annotated instruction sequence. */
struct Kernel
{
    std::string name;
    std::vector<Instruction> code;

    /** Architectural registers used per thread (occupancy input). */
    int numRegs = 16;
    /** Static shared memory per block, bytes. */
    std::uint32_t sharedBytes = 0;

    std::size_t size() const { return code.size(); }
};

/**
 * Incrementally assembles a Kernel.
 *
 * Branch targets may be forward label references; finalize() patches
 * them, builds the CFG, computes immediate post-dominators and fills
 * Instruction::reconv for every predicated branch.
 */
class KernelBuilder
{
  public:
    explicit KernelBuilder(std::string name);

    /** @name Guard for the next emitted instruction. @{ */
    KernelBuilder &pred(int p, bool negate = false);
    /** @} */

    /** @name Instruction emitters (each returns *this). @{ */
    KernelBuilder &nop();
    KernelBuilder &exit();
    KernelBuilder &bar();
    KernelBuilder &movImm(int rd, std::int64_t imm);
    KernelBuilder &movReg(int rd, int rs);
    KernelBuilder &movParam(int rd, int param_idx);
    KernelBuilder &s2r(int rd, SpecialReg sr);
    KernelBuilder &clock(int rd, int dep = kNoReg);
    KernelBuilder &alu(Opcode op, int rd, int ra, int rb);
    KernelBuilder &aluImm(Opcode op, int rd, int ra, std::int64_t imm);
    KernelBuilder &imad(int rd, int ra, int rb, int rc);
    KernelBuilder &ffma(int rd, int ra, int rb, int rc);
    KernelBuilder &cvt(Opcode op, int rd, int ra);
    KernelBuilder &setp(CmpOp cmp, int pd, int ra, int rb);
    KernelBuilder &setpImm(CmpOp cmp, int pd, int ra, std::int64_t imm);
    KernelBuilder &bra(const std::string &label);
    KernelBuilder &ld(MemSpace space, int rd, int ra,
                      std::int64_t offset = 0);
    KernelBuilder &st(MemSpace space, int ra, int rb,
                      std::int64_t offset = 0);
    KernelBuilder &atom(AtomOp op, int rd, int ra, int rb,
                        std::int64_t offset = 0);
    /** @} */

    /** Bind @p name to the next emitted instruction's pc. */
    KernelBuilder &label(const std::string &name);

    /** Declare shared-memory usage (bytes). */
    KernelBuilder &shared(std::uint32_t bytes);

    /** Declare per-thread register usage (defaults to max reg + 1). */
    KernelBuilder &regs(int n);

    /** Number of instructions emitted so far (== next pc). */
    std::uint32_t pc() const;

    /**
     * Resolve labels, verify operands, run reconvergence analysis and
     * return the finished kernel. The builder must not be reused.
     */
    Kernel finalize();

    /** Label → pc map (valid after finalize; for tests/disasm). */
    const std::map<std::string, std::uint32_t> &labels() const
    {
        return labels_;
    }

  private:
    Instruction &emit(Opcode op);
    void validate() const;
    void computeReconvergence();

    std::string name_;
    std::vector<Instruction> code_;
    std::map<std::string, std::uint32_t> labels_;
    /** pc → unresolved label, patched at finalize. */
    std::vector<std::pair<std::uint32_t, std::string>> fixups_;

    int pendingPred_ = kNoReg;
    bool pendingPredNeg_ = false;
    int numRegs_ = -1;
    std::uint32_t sharedBytes_ = 0;
    int maxRegSeen_ = -1;
    bool finalized_ = false;

    friend class KernelBuilderTestPeer;
};

} // namespace gpulat

#endif // GPULAT_ISA_KERNEL_HH
