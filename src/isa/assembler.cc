#include "isa/assembler.hh"

#include <cctype>
#include <optional>
#include <sstream>
#include <vector>

#include "common/log.hh"

namespace gpulat {

namespace {

/** Tokenized view of one source line. */
struct Line
{
    int number;
    std::vector<std::string> tokens;
};

[[noreturn]] void
syntaxError(int line, const std::string &msg)
{
    fatal("asm line ", line, ": ", msg);
}

/** Strip comments, split on whitespace/commas/brackets. */
std::vector<std::string>
tokenize(std::string text)
{
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (text[i] == ';' || text[i] == '#' ||
            (text[i] == '/' && i + 1 < text.size() &&
             text[i + 1] == '/')) {
            text.resize(i);
            break;
        }
    }

    std::vector<std::string> tokens;
    std::string cur;
    auto flush = [&] {
        if (!cur.empty()) {
            tokens.push_back(cur);
            cur.clear();
        }
    };
    for (char ch : text) {
        if (std::isspace(static_cast<unsigned char>(ch)) || ch == ',') {
            flush();
        } else if (ch == '[' || ch == ']') {
            flush();
            tokens.emplace_back(1, ch);
        } else {
            cur += ch;
        }
    }
    flush();
    return tokens;
}

/** Parse "rN" -> N. */
std::optional<int>
parseReg(const std::string &tok)
{
    if (tok.size() < 2 || tok[0] != 'r' ||
        !std::isdigit(static_cast<unsigned char>(tok[1])))
        return std::nullopt;
    int v = 0;
    for (std::size_t i = 1; i < tok.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(tok[i])))
            return std::nullopt;
        v = v * 10 + (tok[i] - '0');
    }
    return v;
}

/** Parse "pN" -> N. */
std::optional<int>
parsePred(const std::string &tok)
{
    if (tok.size() < 2 || tok[0] != 'p')
        return std::nullopt;
    int v = 0;
    for (std::size_t i = 1; i < tok.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(tok[i])))
            return std::nullopt;
        v = v * 10 + (tok[i] - '0');
    }
    return v;
}

/** Parse "paramN" -> N. */
std::optional<int>
parseParam(const std::string &tok)
{
    if (tok.rfind("param", 0) != 0 || tok.size() == 5)
        return std::nullopt;
    int v = 0;
    for (std::size_t i = 5; i < tok.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(tok[i])))
            return std::nullopt;
        v = v * 10 + (tok[i] - '0');
    }
    return v;
}

/** Parse decimal or 0x-hex immediate, with optional leading '-'. */
std::optional<std::int64_t>
parseImm(const std::string &tok)
{
    if (tok.empty())
        return std::nullopt;
    std::size_t pos = 0;
    bool neg = tok[0] == '-';
    if (neg)
        pos = 1;
    if (pos >= tok.size())
        return std::nullopt;
    int base = 10;
    if (tok.compare(pos, 2, "0x") == 0 || tok.compare(pos, 2, "0X") == 0)
    {
        base = 16;
        pos += 2;
        if (pos >= tok.size())
            return std::nullopt;
    }
    std::int64_t v = 0;
    for (; pos < tok.size(); ++pos) {
        char ch = static_cast<char>(
            std::tolower(static_cast<unsigned char>(tok[pos])));
        int digit;
        if (ch >= '0' && ch <= '9')
            digit = ch - '0';
        else if (base == 16 && ch >= 'a' && ch <= 'f')
            digit = ch - 'a' + 10;
        else
            return std::nullopt;
        v = v * base + digit;
    }
    return neg ? -v : v;
}

std::optional<SpecialReg>
parseSreg(const std::string &tok)
{
    if (tok == "tid") return SpecialReg::Tid;
    if (tok == "ctaid") return SpecialReg::Ctaid;
    if (tok == "ntid") return SpecialReg::Ntid;
    if (tok == "nctaid") return SpecialReg::Nctaid;
    if (tok == "laneid") return SpecialReg::LaneId;
    if (tok == "warpid") return SpecialReg::WarpId;
    if (tok == "smid") return SpecialReg::SmId;
    return std::nullopt;
}

std::optional<CmpOp>
parseCmp(const std::string &tok)
{
    if (tok == "eq") return CmpOp::EQ;
    if (tok == "ne") return CmpOp::NE;
    if (tok == "lt") return CmpOp::LT;
    if (tok == "le") return CmpOp::LE;
    if (tok == "gt") return CmpOp::GT;
    if (tok == "ge") return CmpOp::GE;
    return std::nullopt;
}

std::optional<AtomOp>
parseAtomOp(const std::string &tok)
{
    if (tok == "add") return AtomOp::Add;
    if (tok == "max") return AtomOp::Max;
    if (tok == "exch") return AtomOp::Exch;
    return std::nullopt;
}

std::optional<MemSpace>
parseSpace(const std::string &tok)
{
    if (tok == "global") return MemSpace::Global;
    if (tok == "local") return MemSpace::Local;
    if (tok == "shared") return MemSpace::Shared;
    return std::nullopt;
}

std::optional<Opcode>
parseAluOp(const std::string &tok)
{
    if (tok == "iadd") return Opcode::IADD;
    if (tok == "isub") return Opcode::ISUB;
    if (tok == "imul") return Opcode::IMUL;
    if (tok == "shl") return Opcode::SHL;
    if (tok == "shr") return Opcode::SHR;
    if (tok == "and") return Opcode::AND;
    if (tok == "or") return Opcode::OR;
    if (tok == "xor") return Opcode::XOR;
    if (tok == "imin") return Opcode::IMIN;
    if (tok == "imax") return Opcode::IMAX;
    if (tok == "fadd") return Opcode::FADD;
    if (tok == "fmul") return Opcode::FMUL;
    return std::nullopt;
}

/** Split "op.suffix" into (op, suffix). */
std::pair<std::string, std::string>
splitDot(const std::string &tok)
{
    auto dot = tok.find('.');
    if (dot == std::string::npos)
        return {tok, ""};
    return {tok.substr(0, dot), tok.substr(dot + 1)};
}

/** Parser driving a KernelBuilder. */
class Parser
{
  public:
    Parser(const std::string &source, const std::string &default_name)
        : name_(default_name), source_(source)
    {
    }

    Kernel
    run()
    {
        // First scan for the .kernel directive so the builder gets
        // the right name from the start.
        splitLines();
        for (const auto &line : lines_) {
            if (line.tokens.size() >= 2 &&
                line.tokens[0] == ".kernel") {
                name_ = line.tokens[1];
            }
        }

        KernelBuilder builder(name_);
        for (const auto &line : lines_)
            parseLine(builder, line);
        return builder.finalize();
    }

  private:
    void
    splitLines()
    {
        std::istringstream iss(source_);
        std::string text;
        int number = 0;
        while (std::getline(iss, text)) {
            ++number;
            auto tokens = tokenize(text);
            if (!tokens.empty())
                lines_.push_back(Line{number, std::move(tokens)});
        }
    }

    int
    expectReg(const Line &line, const std::string &tok)
    {
        auto r = parseReg(tok);
        if (!r)
            syntaxError(line.number, "expected register, got '" + tok +
                                     "'");
        return *r;
    }

    std::int64_t
    expectImm(const Line &line, const std::string &tok)
    {
        auto v = parseImm(tok);
        if (!v)
            syntaxError(line.number, "expected immediate, got '" + tok +
                                     "'");
        return *v;
    }

    /**
     * Parse "[rN]" or "[rN+imm]" / "[rN-imm]" starting at tokens[i]
     * (which must be "["). Returns (reg, offset) and advances i past
     * the "]".
     */
    std::pair<int, std::int64_t>
    parseAddress(const Line &line, std::size_t &i)
    {
        const auto &toks = line.tokens;
        if (i >= toks.size() || toks[i] != "[")
            syntaxError(line.number, "expected '['");
        ++i;
        if (i >= toks.size())
            syntaxError(line.number, "truncated address");

        // The address expression was tokenized as a single token
        // ("r4+8") because +/- don't split.
        std::string expr = toks[i++];
        if (i >= toks.size() || toks[i] != "]")
            syntaxError(line.number, "expected ']'");
        ++i;

        auto plus = expr.find_first_of("+-", 1);
        std::string reg_part = expr.substr(0, plus);
        auto reg = parseReg(reg_part);
        if (!reg)
            syntaxError(line.number,
                        "bad address base '" + reg_part + "'");
        std::int64_t off = 0;
        if (plus != std::string::npos) {
            // "+8" -> "8"; "-8" keeps its sign.
            auto v = parseImm(expr[plus] == '+'
                                  ? expr.substr(plus + 1)
                                  : expr.substr(plus));
            if (!v)
                syntaxError(line.number, "bad address offset in '" +
                                         expr + "'");
            off = *v;
        }
        return {*reg, off};
    }

    void
    parseLine(KernelBuilder &builder, const Line &line)
    {
        const auto &toks = line.tokens;
        std::size_t i = 0;

        // Directives.
        if (toks[0][0] == '.') {
            if (toks[0] == ".kernel") {
                // handled in run()
            } else if (toks[0] == ".regs") {
                if (toks.size() != 2)
                    syntaxError(line.number, ".regs needs one arg");
                builder.regs(static_cast<int>(
                    expectImm(line, toks[1])));
            } else if (toks[0] == ".shared") {
                if (toks.size() != 2)
                    syntaxError(line.number, ".shared needs one arg");
                builder.shared(static_cast<std::uint32_t>(
                    expectImm(line, toks[1])));
            } else {
                syntaxError(line.number,
                            "unknown directive '" + toks[0] + "'");
            }
            return;
        }

        // Labels (possibly followed by an instruction on same line).
        if (toks[0].back() == ':') {
            builder.label(toks[0].substr(0, toks[0].size() - 1));
            if (toks.size() == 1)
                return;
            i = 1;
        }

        // Guard.
        if (toks[i][0] == '@') {
            std::string g = toks[i].substr(1);
            bool neg = !g.empty() && g[0] == '!';
            if (neg)
                g = g.substr(1);
            auto p = parsePred(g);
            if (!p)
                syntaxError(line.number, "bad guard '" + toks[i] + "'");
            builder.pred(*p, neg);
            ++i;
            if (i >= toks.size())
                syntaxError(line.number, "guard without instruction");
        }

        auto [op, suffix] = splitDot(toks[i]);
        ++i;
        auto remaining = [&] { return toks.size() - i; };

        if (op == "nop") {
            builder.nop();
        } else if (op == "exit") {
            builder.exit();
        } else if (op == "bar") {
            builder.bar();
        } else if (op == "mov") {
            if (remaining() != 2)
                syntaxError(line.number, "mov rd, src");
            int rd = expectReg(line, toks[i]);
            const std::string &src = toks[i + 1];
            if (auto param = parseParam(src)) {
                builder.movParam(rd, *param);
            } else if (auto rs = parseReg(src)) {
                builder.movReg(rd, *rs);
            } else if (auto imm = parseImm(src)) {
                builder.movImm(rd, *imm);
            } else {
                syntaxError(line.number, "bad mov source '" + src + "'");
            }
        } else if (op == "s2r") {
            if (remaining() != 2)
                syntaxError(line.number, "s2r rd, sreg");
            int rd = expectReg(line, toks[i]);
            auto sr = parseSreg(toks[i + 1]);
            if (!sr)
                syntaxError(line.number,
                            "bad special register '" + toks[i + 1] +
                            "'");
            builder.s2r(rd, *sr);
        } else if (op == "clock") {
            if (remaining() != 1 && remaining() != 2)
                syntaxError(line.number, "clock rd [, rdep]");
            int rd = expectReg(line, toks[i]);
            int dep = kNoReg;
            if (remaining() == 2)
                dep = expectReg(line, toks[i + 1]);
            builder.clock(rd, dep);
        } else if (op == "imad" || op == "ffma") {
            if (remaining() != 4)
                syntaxError(line.number, op + " rd, ra, rb, rc");
            int rd = expectReg(line, toks[i]);
            int ra = expectReg(line, toks[i + 1]);
            int rb = expectReg(line, toks[i + 2]);
            int rc = expectReg(line, toks[i + 3]);
            if (op == "imad")
                builder.imad(rd, ra, rb, rc);
            else
                builder.ffma(rd, ra, rb, rc);
        } else if (op == "i2f" || op == "f2i") {
            if (remaining() != 2)
                syntaxError(line.number, op + " rd, ra");
            builder.cvt(op == "i2f" ? Opcode::I2F : Opcode::F2I,
                        expectReg(line, toks[i]),
                        expectReg(line, toks[i + 1]));
        } else if (op == "setp") {
            auto cmp = parseCmp(suffix);
            if (!cmp)
                syntaxError(line.number,
                            "setp needs .eq/.ne/.lt/.le/.gt/.ge");
            if (remaining() != 3)
                syntaxError(line.number, "setp.cc pd, ra, b");
            auto pd = parsePred(toks[i]);
            if (!pd)
                syntaxError(line.number,
                            "bad predicate '" + toks[i] + "'");
            int ra = expectReg(line, toks[i + 1]);
            if (auto rb = parseReg(toks[i + 2]))
                builder.setp(*cmp, *pd, ra, *rb);
            else
                builder.setpImm(*cmp, *pd, ra,
                                expectImm(line, toks[i + 2]));
        } else if (op == "bra") {
            if (remaining() != 1)
                syntaxError(line.number, "bra label");
            builder.bra(toks[i]);
        } else if (op == "ld") {
            auto space = parseSpace(suffix);
            if (!space)
                syntaxError(line.number,
                            "ld needs .global/.local/.shared");
            if (remaining() < 2)
                syntaxError(line.number, "ld.space rd, [ra+off]");
            int rd = expectReg(line, toks[i]);
            ++i;
            auto [ra, off] = parseAddress(line, i);
            builder.ld(*space, rd, ra, off);
        } else if (op == "atom") {
            auto aop = parseAtomOp(suffix);
            if (!aop)
                syntaxError(line.number, "atom needs .add/.max/.exch");
            if (remaining() < 3)
                syntaxError(line.number, "atom.op rd, [ra+off], rb");
            int rd = expectReg(line, toks[i]);
            ++i;
            auto [ra, off] = parseAddress(line, i);
            if (i >= toks.size())
                syntaxError(line.number, "atom.op rd, [ra+off], rb");
            int rb = expectReg(line, toks[i]);
            builder.atom(*aop, rd, ra, rb, off);
        } else if (op == "st") {
            auto space = parseSpace(suffix);
            if (!space)
                syntaxError(line.number,
                            "st needs .global/.local/.shared");
            auto [ra, off] = parseAddress(line, i);
            if (i >= toks.size())
                syntaxError(line.number, "st.space [ra+off], rb");
            int rb = expectReg(line, toks[i]);
            builder.st(*space, ra, rb, off);
        } else if (auto alu_op = parseAluOp(op)) {
            if (remaining() != 3)
                syntaxError(line.number, op + " rd, ra, b");
            int rd = expectReg(line, toks[i]);
            int ra = expectReg(line, toks[i + 1]);
            if (auto rb = parseReg(toks[i + 2]))
                builder.alu(*alu_op, rd, ra, *rb);
            else
                builder.aluImm(*alu_op, rd, ra,
                               expectImm(line, toks[i + 2]));
        } else {
            syntaxError(line.number, "unknown mnemonic '" + op + "'");
        }
    }

    std::string name_;
    const std::string &source_;
    std::vector<Line> lines_;
};

} // namespace

Kernel
assemble(const std::string &source, const std::string &default_name)
{
    return Parser(source, default_name).run();
}

} // namespace gpulat
