#include "isa/isa.hh"

#include <sstream>

namespace gpulat {

const char *
toString(Opcode op)
{
    switch (op) {
      case Opcode::NOP: return "nop";
      case Opcode::EXIT: return "exit";
      case Opcode::BAR: return "bar";
      case Opcode::MOV: return "mov";
      case Opcode::S2R: return "s2r";
      case Opcode::CLOCK: return "clock";
      case Opcode::IADD: return "iadd";
      case Opcode::ISUB: return "isub";
      case Opcode::IMUL: return "imul";
      case Opcode::IMAD: return "imad";
      case Opcode::SHL: return "shl";
      case Opcode::SHR: return "shr";
      case Opcode::AND: return "and";
      case Opcode::OR: return "or";
      case Opcode::XOR: return "xor";
      case Opcode::IMIN: return "imin";
      case Opcode::IMAX: return "imax";
      case Opcode::FADD: return "fadd";
      case Opcode::FMUL: return "fmul";
      case Opcode::FFMA: return "ffma";
      case Opcode::I2F: return "i2f";
      case Opcode::F2I: return "f2i";
      case Opcode::SETP: return "setp";
      case Opcode::BRA: return "bra";
      case Opcode::LD: return "ld";
      case Opcode::ST: return "st";
      case Opcode::ATOM: return "atom";
    }
    return "?";
}

const char *
toString(CmpOp cmp)
{
    switch (cmp) {
      case CmpOp::EQ: return "eq";
      case CmpOp::NE: return "ne";
      case CmpOp::LT: return "lt";
      case CmpOp::LE: return "le";
      case CmpOp::GT: return "gt";
      case CmpOp::GE: return "ge";
    }
    return "?";
}

const char *
toString(AtomOp op)
{
    switch (op) {
      case AtomOp::Add: return "add";
      case AtomOp::Max: return "max";
      case AtomOp::Exch: return "exch";
    }
    return "?";
}

const char *
toString(SpecialReg sreg)
{
    switch (sreg) {
      case SpecialReg::Tid: return "tid";
      case SpecialReg::Ctaid: return "ctaid";
      case SpecialReg::Ntid: return "ntid";
      case SpecialReg::Nctaid: return "nctaid";
      case SpecialReg::LaneId: return "laneid";
      case SpecialReg::WarpId: return "warpid";
      case SpecialReg::SmId: return "smid";
    }
    return "?";
}

std::string
disassemble(const Instruction &inst)
{
    std::ostringstream oss;
    if (inst.pred != kNoReg)
        oss << "@" << (inst.predNeg ? "!" : "") << "p" << inst.pred
            << " ";

    switch (inst.op) {
      case Opcode::NOP:
      case Opcode::EXIT:
      case Opcode::BAR:
        oss << toString(inst.op);
        break;
      case Opcode::MOV:
        oss << "mov r" << inst.dst << ", ";
        if (inst.param != kNoReg)
            oss << "param" << inst.param;
        else if (inst.useImm)
            oss << inst.imm;
        else
            oss << "r" << inst.srcB;
        break;
      case Opcode::S2R:
        oss << "s2r r" << inst.dst << ", " << toString(inst.sreg);
        break;
      case Opcode::CLOCK:
        oss << "clock r" << inst.dst;
        if (inst.srcA != kNoReg)
            oss << ", r" << inst.srcA;
        break;
      case Opcode::IMAD:
      case Opcode::FFMA:
        oss << toString(inst.op) << " r" << inst.dst << ", r"
            << inst.srcA << ", r" << inst.srcB << ", r" << inst.srcC;
        break;
      case Opcode::I2F:
      case Opcode::F2I:
        oss << toString(inst.op) << " r" << inst.dst << ", r"
            << inst.srcA;
        break;
      case Opcode::SETP:
        oss << "setp." << toString(inst.cmp) << " p" << inst.predDst
            << ", r" << inst.srcA << ", ";
        if (inst.useImm)
            oss << inst.imm;
        else
            oss << "r" << inst.srcB;
        break;
      case Opcode::BRA:
        oss << "bra " << inst.target;
        if (inst.pred != kNoReg)
            oss << " (reconv " << inst.reconv << ")";
        break;
      case Opcode::LD:
        oss << "ld." << toString(inst.space) << " r" << inst.dst
            << ", [r" << inst.srcA;
        if (inst.imm)
            oss << "+" << inst.imm;
        oss << "]";
        break;
      case Opcode::ST:
        oss << "st." << toString(inst.space) << " [r" << inst.srcA;
        if (inst.imm)
            oss << "+" << inst.imm;
        oss << "], r" << inst.srcB;
        break;
      case Opcode::ATOM:
        oss << "atom." << toString(inst.atomOp) << " r" << inst.dst
            << ", [r" << inst.srcA;
        if (inst.imm)
            oss << "+" << inst.imm;
        oss << "], r" << inst.srcB;
        break;
      default:
        oss << toString(inst.op) << " r" << inst.dst << ", r"
            << inst.srcA << ", ";
        if (inst.useImm)
            oss << inst.imm;
        else
            oss << "r" << inst.srcB;
        break;
    }
    return oss.str();
}

} // namespace gpulat
