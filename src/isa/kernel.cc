#include "isa/kernel.hh"

#include <algorithm>
#include <set>

#include "common/log.hh"

namespace gpulat {

namespace {

/** Simple dynamic bitset sized at construction. */
class BitSet
{
  public:
    explicit BitSet(std::size_t n, bool ones = false)
        : n_(n), words_((n + 63) / 64, ones ? ~0ull : 0ull)
    {
        trim();
    }

    void set(std::size_t i) { words_[i / 64] |= 1ull << (i % 64); }
    void clearBit(std::size_t i)
    {
        words_[i / 64] &= ~(1ull << (i % 64));
    }
    bool test(std::size_t i) const
    {
        return words_[i / 64] >> (i % 64) & 1;
    }

    /** this &= other; returns true if changed. */
    bool
    intersectWith(const BitSet &other)
    {
        bool changed = false;
        for (std::size_t w = 0; w < words_.size(); ++w) {
            auto nv = words_[w] & other.words_[w];
            changed |= nv != words_[w];
            words_[w] = nv;
        }
        return changed;
    }

    bool operator==(const BitSet &other) const
    {
        return words_ == other.words_;
    }

    std::size_t
    count() const
    {
        std::size_t c = 0;
        for (auto w : words_)
            c += static_cast<std::size_t>(__builtin_popcountll(w));
        return c;
    }

  private:
    void
    trim()
    {
        if (n_ % 64)
            words_.back() &= (1ull << (n_ % 64)) - 1;
    }

    std::size_t n_;
    std::vector<std::uint64_t> words_;
};

} // namespace

KernelBuilder::KernelBuilder(std::string name) : name_(std::move(name)) {}

Instruction &
KernelBuilder::emit(Opcode op)
{
    GPULAT_ASSERT(!finalized_, "builder reused after finalize");
    code_.emplace_back();
    Instruction &inst = code_.back();
    inst.op = op;
    inst.pred = pendingPred_;
    inst.predNeg = pendingPredNeg_;
    pendingPred_ = kNoReg;
    pendingPredNeg_ = false;
    return inst;
}

KernelBuilder &
KernelBuilder::pred(int p, bool negate)
{
    GPULAT_ASSERT(p >= 0 && p < kNumPreds, "bad predicate p", p);
    pendingPred_ = p;
    pendingPredNeg_ = negate;
    return *this;
}

KernelBuilder &
KernelBuilder::nop()
{
    emit(Opcode::NOP);
    return *this;
}

KernelBuilder &
KernelBuilder::exit()
{
    emit(Opcode::EXIT);
    return *this;
}

KernelBuilder &
KernelBuilder::bar()
{
    emit(Opcode::BAR);
    return *this;
}

KernelBuilder &
KernelBuilder::movImm(int rd, std::int64_t imm)
{
    Instruction &i = emit(Opcode::MOV);
    i.dst = rd;
    i.imm = imm;
    i.useImm = true;
    maxRegSeen_ = std::max(maxRegSeen_, rd);
    return *this;
}

KernelBuilder &
KernelBuilder::movReg(int rd, int rs)
{
    Instruction &i = emit(Opcode::MOV);
    i.dst = rd;
    i.srcB = rs;
    maxRegSeen_ = std::max({maxRegSeen_, rd, rs});
    return *this;
}

KernelBuilder &
KernelBuilder::movParam(int rd, int param_idx)
{
    GPULAT_ASSERT(param_idx >= 0 && param_idx < kMaxParams,
                  "bad param index ", param_idx);
    Instruction &i = emit(Opcode::MOV);
    i.dst = rd;
    i.param = param_idx;
    maxRegSeen_ = std::max(maxRegSeen_, rd);
    return *this;
}

KernelBuilder &
KernelBuilder::s2r(int rd, SpecialReg sr)
{
    Instruction &i = emit(Opcode::S2R);
    i.dst = rd;
    i.sreg = sr;
    maxRegSeen_ = std::max(maxRegSeen_, rd);
    return *this;
}

KernelBuilder &
KernelBuilder::clock(int rd, int dep)
{
    Instruction &i = emit(Opcode::CLOCK);
    i.dst = rd;
    i.srcA = dep;
    maxRegSeen_ = std::max({maxRegSeen_, rd, dep});
    return *this;
}

KernelBuilder &
KernelBuilder::alu(Opcode op, int rd, int ra, int rb)
{
    Instruction &i = emit(op);
    i.dst = rd;
    i.srcA = ra;
    i.srcB = rb;
    maxRegSeen_ = std::max({maxRegSeen_, rd, ra, rb});
    return *this;
}

KernelBuilder &
KernelBuilder::aluImm(Opcode op, int rd, int ra, std::int64_t imm)
{
    Instruction &i = emit(op);
    i.dst = rd;
    i.srcA = ra;
    i.imm = imm;
    i.useImm = true;
    maxRegSeen_ = std::max({maxRegSeen_, rd, ra});
    return *this;
}

KernelBuilder &
KernelBuilder::imad(int rd, int ra, int rb, int rc)
{
    Instruction &i = emit(Opcode::IMAD);
    i.dst = rd;
    i.srcA = ra;
    i.srcB = rb;
    i.srcC = rc;
    maxRegSeen_ = std::max({maxRegSeen_, rd, ra, rb, rc});
    return *this;
}

KernelBuilder &
KernelBuilder::ffma(int rd, int ra, int rb, int rc)
{
    Instruction &i = emit(Opcode::FFMA);
    i.dst = rd;
    i.srcA = ra;
    i.srcB = rb;
    i.srcC = rc;
    maxRegSeen_ = std::max({maxRegSeen_, rd, ra, rb, rc});
    return *this;
}

KernelBuilder &
KernelBuilder::cvt(Opcode op, int rd, int ra)
{
    GPULAT_ASSERT(op == Opcode::I2F || op == Opcode::F2I,
                  "cvt expects I2F/F2I");
    Instruction &i = emit(op);
    i.dst = rd;
    i.srcA = ra;
    maxRegSeen_ = std::max({maxRegSeen_, rd, ra});
    return *this;
}

KernelBuilder &
KernelBuilder::setp(CmpOp cmp, int pd, int ra, int rb)
{
    Instruction &i = emit(Opcode::SETP);
    i.cmp = cmp;
    i.predDst = pd;
    i.srcA = ra;
    i.srcB = rb;
    maxRegSeen_ = std::max({maxRegSeen_, ra, rb});
    return *this;
}

KernelBuilder &
KernelBuilder::setpImm(CmpOp cmp, int pd, int ra, std::int64_t imm)
{
    Instruction &i = emit(Opcode::SETP);
    i.cmp = cmp;
    i.predDst = pd;
    i.srcA = ra;
    i.imm = imm;
    i.useImm = true;
    maxRegSeen_ = std::max(maxRegSeen_, ra);
    return *this;
}

KernelBuilder &
KernelBuilder::bra(const std::string &label)
{
    emit(Opcode::BRA);
    fixups_.emplace_back(static_cast<std::uint32_t>(code_.size() - 1),
                         label);
    return *this;
}

KernelBuilder &
KernelBuilder::ld(MemSpace space, int rd, int ra, std::int64_t offset)
{
    Instruction &i = emit(Opcode::LD);
    i.space = space;
    i.dst = rd;
    i.srcA = ra;
    i.imm = offset;
    maxRegSeen_ = std::max({maxRegSeen_, rd, ra});
    return *this;
}

KernelBuilder &
KernelBuilder::st(MemSpace space, int ra, int rb, std::int64_t offset)
{
    Instruction &i = emit(Opcode::ST);
    i.space = space;
    i.srcA = ra;
    i.srcB = rb;
    i.imm = offset;
    maxRegSeen_ = std::max({maxRegSeen_, ra, rb});
    return *this;
}

KernelBuilder &
KernelBuilder::atom(AtomOp op, int rd, int ra, int rb,
                    std::int64_t offset)
{
    Instruction &i = emit(Opcode::ATOM);
    i.atomOp = op;
    i.space = MemSpace::Global;
    i.dst = rd;
    i.srcA = ra;
    i.srcB = rb;
    i.imm = offset;
    maxRegSeen_ = std::max({maxRegSeen_, rd, ra, rb});
    return *this;
}

KernelBuilder &
KernelBuilder::label(const std::string &name)
{
    GPULAT_ASSERT(!labels_.count(name), "duplicate label '", name, "'");
    labels_[name] = static_cast<std::uint32_t>(code_.size());
    return *this;
}

KernelBuilder &
KernelBuilder::shared(std::uint32_t bytes)
{
    sharedBytes_ = bytes;
    return *this;
}

KernelBuilder &
KernelBuilder::regs(int n)
{
    numRegs_ = n;
    return *this;
}

std::uint32_t
KernelBuilder::pc() const
{
    return static_cast<std::uint32_t>(code_.size());
}

void
KernelBuilder::validate() const
{
    GPULAT_ASSERT(!code_.empty(), "empty kernel '", name_, "'");
    const Instruction &last = code_.back();
    if (!last.isExit() && !(last.isBranch() && last.pred == kNoReg))
        fatal("kernel '", name_, "' does not end in exit/bra");

    auto check_reg = [&](int r, bool allow_none) {
        if (r == kNoReg) {
            GPULAT_ASSERT(allow_none, "missing register operand");
            return;
        }
        if (r < 0 || r >= kNumRegs)
            fatal("kernel '", name_, "': register r", r,
                  " out of range");
    };

    for (const auto &inst : code_) {
        check_reg(inst.dst, true);
        check_reg(inst.srcA, true);
        check_reg(inst.srcB, true);
        check_reg(inst.srcC, true);
        if (inst.isBranch() && inst.target >= code_.size())
            fatal("kernel '", name_, "': branch target ", inst.target,
                  " out of range");
        if (inst.op == Opcode::SETP &&
            (inst.predDst < 0 || inst.predDst >= kNumPreds))
            fatal("kernel '", name_, "': bad setp destination");
    }
}

void
KernelBuilder::computeReconvergence()
{
    const std::size_t n = code_.size();

    // Basic-block leaders: entry, branch targets, post-branch/exit pcs.
    std::set<std::uint32_t> leaders;
    leaders.insert(0);
    for (std::size_t pc = 0; pc < n; ++pc) {
        const Instruction &inst = code_[pc];
        if (inst.isBranch()) {
            leaders.insert(inst.target);
            if (pc + 1 < n)
                leaders.insert(static_cast<std::uint32_t>(pc + 1));
        } else if (inst.isExit() && pc + 1 < n) {
            leaders.insert(static_cast<std::uint32_t>(pc + 1));
        }
    }

    std::vector<std::uint32_t> starts(leaders.begin(), leaders.end());
    const std::size_t nblocks = starts.size();
    // pc -> block index
    std::vector<std::size_t> block_of(n);
    for (std::size_t b = 0; b < nblocks; ++b) {
        std::uint32_t end = b + 1 < nblocks
            ? starts[b + 1] : static_cast<std::uint32_t>(n);
        for (std::uint32_t pc = starts[b]; pc < end; ++pc)
            block_of[pc] = b;
    }

    // Successor lists. An unpredicated EXIT ends control flow; a
    // predicated EXIT behaves like a conditional lane kill and falls
    // through.
    std::vector<std::vector<std::size_t>> succ(nblocks);
    for (std::size_t b = 0; b < nblocks; ++b) {
        std::uint32_t last = (b + 1 < nblocks
            ? starts[b + 1] : static_cast<std::uint32_t>(n)) - 1;
        const Instruction &inst = code_[last];
        if (inst.isBranch()) {
            succ[b].push_back(block_of[inst.target]);
            if (inst.pred != kNoReg && last + 1 < n)
                succ[b].push_back(block_of[last + 1]);
        } else if (inst.isExit() && inst.pred == kNoReg) {
            // no successors
        } else if (last + 1 < n) {
            succ[b].push_back(block_of[last + 1]);
        }
    }

    // Post-dominator sets over nblocks + 1 nodes (virtual exit at
    // index nblocks). Iterative dataflow to a fixpoint.
    const std::size_t universe = nblocks + 1;
    std::vector<BitSet> pdom(universe, BitSet(universe, true));
    BitSet virt_only(universe);
    virt_only.set(nblocks);
    pdom[nblocks] = virt_only;

    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t b = nblocks; b-- > 0;) {
            BitSet nv(universe, true);
            if (succ[b].empty()) {
                nv = virt_only;
            } else {
                for (std::size_t s : succ[b])
                    nv.intersectWith(pdom[s]);
            }
            nv.set(b);
            if (!(nv == pdom[b])) {
                pdom[b] = nv;
                changed = true;
            }
        }
    }

    // Immediate post-dominator: the strict post-dominator with the
    // largest pdom set (post-dominators of a node form a chain).
    auto ipdom_pc = [&](std::size_t b) -> std::uint32_t {
        std::size_t best = universe;
        std::size_t best_count = 0;
        for (std::size_t c = 0; c < nblocks; ++c) {
            if (c == b || !pdom[b].test(c))
                continue;
            std::size_t cnt = pdom[c].count();
            if (cnt > best_count) {
                best_count = cnt;
                best = c;
            }
        }
        if (best == universe)
            return UINT32_MAX; // paths never reconverge (exit-only)
        return starts[best];
    };

    for (std::size_t pc = 0; pc < n; ++pc) {
        Instruction &inst = code_[pc];
        if (inst.isBranch() && inst.pred != kNoReg)
            inst.reconv = ipdom_pc(block_of[pc]);
    }
}

Kernel
KernelBuilder::finalize()
{
    GPULAT_ASSERT(!finalized_, "finalize called twice");
    finalized_ = true;

    for (const auto &[pc, label] : fixups_) {
        auto it = labels_.find(label);
        if (it == labels_.end())
            fatal("kernel '", name_, "': undefined label '", label,
                  "'");
        if (it->second >= code_.size())
            fatal("kernel '", name_, "': label '", label,
                  "' points past the end");
        code_[pc].target = it->second;
    }

    validate();
    computeReconvergence();

    Kernel k;
    k.name = name_;
    k.code = std::move(code_);
    k.sharedBytes = sharedBytes_;
    k.numRegs = numRegs_ > 0 ? numRegs_ : maxRegSeen_ + 1;
    if (k.numRegs <= 0)
        k.numRegs = 1;
    if (k.numRegs > kNumRegs)
        fatal("kernel '", name_, "' uses ", k.numRegs,
              " registers; ISA max is ", kNumRegs);
    return k;
}

} // namespace gpulat
