#include "isa/cfg.hh"

#include <algorithm>

namespace gpulat {

namespace {

/** Successor pcs of the instruction at @p pc (terminator view). */
void
successorPcs(const Kernel &kernel, std::uint32_t pc,
             std::vector<std::uint32_t> &out)
{
    out.clear();
    const Instruction &inst = kernel.code[pc];
    const std::uint32_t next = pc + 1;
    if (inst.isExit())
        return; // EXIT is unpredicated in this ISA: thread ends.
    if (inst.isBranch()) {
        out.push_back(inst.target);
        if (inst.pred != kNoReg && next < kernel.code.size())
            out.push_back(next);
        return;
    }
    if (next < kernel.code.size())
        out.push_back(next);
}

} // namespace

Cfg
Cfg::build(const Kernel &kernel)
{
    Cfg cfg;
    const std::uint32_t n =
        static_cast<std::uint32_t>(kernel.code.size());
    if (n == 0)
        return cfg;

    // Leaders: pc 0, every branch target, every pc after a BRA or
    // EXIT (the latter so dead code after an exit forms its own
    // unreachable block instead of merging into a live one).
    std::vector<bool> leader(n, false);
    leader[0] = true;
    for (std::uint32_t pc = 0; pc < n; ++pc) {
        const Instruction &inst = kernel.code[pc];
        if (inst.isBranch()) {
            if (inst.target < n)
                leader[inst.target] = true;
            if (pc + 1 < n)
                leader[pc + 1] = true;
        } else if (inst.isExit()) {
            if (pc + 1 < n)
                leader[pc + 1] = true;
        }
    }

    cfg.blockOf.assign(n, 0);
    for (std::uint32_t pc = 0; pc < n; ++pc) {
        if (leader[pc]) {
            CfgBlock block;
            block.first = pc;
            cfg.blocks.push_back(block);
        }
        cfg.blockOf[pc] =
            static_cast<std::uint32_t>(cfg.blocks.size() - 1);
        cfg.blocks.back().last = pc;
    }

    std::vector<std::uint32_t> succ_pcs;
    for (std::uint32_t b = 0; b < cfg.blocks.size(); ++b) {
        successorPcs(kernel, cfg.blocks[b].last, succ_pcs);
        for (const std::uint32_t pc : succ_pcs) {
            const std::uint32_t s = cfg.blockOf[pc];
            cfg.blocks[b].succs.push_back(s);
            cfg.blocks[s].preds.push_back(b);
        }
    }

    // Iterative DFS from the entry: post-order + retreating edges.
    // An edge u -> v with v still on the DFS stack is retreating; its
    // target is a widening point. KernelBuilder's structured output
    // is reducible, so these are the natural-loop headers.
    std::vector<int> state(cfg.blocks.size(), 0); // 0 new 1 open 2 done
    std::vector<std::uint32_t> post;
    struct Frame
    {
        std::uint32_t block;
        std::size_t nextSucc;
    };
    std::vector<Frame> stack{{0, 0}};
    state[0] = 1;
    cfg.blocks[0].reachable = true;
    while (!stack.empty()) {
        Frame &frame = stack.back();
        CfgBlock &block = cfg.blocks[frame.block];
        if (frame.nextSucc < block.succs.size()) {
            const std::uint32_t s = block.succs[frame.nextSucc++];
            if (state[s] == 0) {
                state[s] = 1;
                cfg.blocks[s].reachable = true;
                stack.push_back({s, 0});
            } else if (state[s] == 1) {
                cfg.blocks[s].loopHead = true;
            }
        } else {
            state[frame.block] = 2;
            post.push_back(frame.block);
            stack.pop_back();
        }
    }

    cfg.rpo.assign(post.rbegin(), post.rend());
    cfg.rpoIndex.assign(cfg.blocks.size(),
                        static_cast<std::uint32_t>(cfg.blocks.size()));
    for (std::uint32_t i = 0; i < cfg.rpo.size(); ++i)
        cfg.rpoIndex[cfg.rpo[i]] = i;
    for (const CfgBlock &block : cfg.blocks)
        cfg.numLoopHeads += block.loopHead ? 1 : 0;
    return cfg;
}

} // namespace gpulat
