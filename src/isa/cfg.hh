/**
 * @file
 * Control-flow graph extraction over a finalized Kernel.
 *
 * The SM-parallel safety analysis (src/gpu/kernel_analysis.cc)
 * interprets kernels per basic block with a worklist fixpoint, so it
 * needs leaders, successor edges, a reverse post-order and loop-head
 * marks. The rules mirror the execution model:
 *
 *  - a BRA target starts a block, as does the instruction after any
 *    BRA (the fall-through path of a predicated branch);
 *  - an unpredicated BRA has a single successor (its target), a
 *    predicated BRA has two (target + fall-through);
 *  - EXIT terminates a block with no successors (EXIT must be
 *    unpredicated in this ISA; divergent exits are built from
 *    predicated branches around it);
 *  - BAR is *not* a block boundary: it synchronizes lanes but does
 *    not redirect control flow.
 *
 * Loop heads are the targets of retreating edges in a depth-first
 * order (for the reducible CFGs KernelBuilder emits these are
 * exactly the natural-loop headers); the analysis widens there.
 */

#ifndef GPULAT_ISA_CFG_HH
#define GPULAT_ISA_CFG_HH

#include <cstdint>
#include <vector>

#include "isa/kernel.hh"

namespace gpulat {

/** One basic block: the inclusive pc range [first, last]. */
struct CfgBlock
{
    std::uint32_t first = 0;
    std::uint32_t last = 0;
    std::vector<std::uint32_t> succs; ///< successor block ids
    std::vector<std::uint32_t> preds; ///< predecessor block ids
    /** Target of a retreating edge: widening point. */
    bool loopHead = false;
    /** Reachable from the entry block. */
    bool reachable = false;
};

/** CFG of one kernel. Block 0 is the entry (pc 0). */
struct Cfg
{
    std::vector<CfgBlock> blocks;
    /** pc -> owning block id. */
    std::vector<std::uint32_t> blockOf;
    /** Reachable block ids in reverse post-order (entry first). */
    std::vector<std::uint32_t> rpo;
    /** rpo position per block id (blocks.size() if unreachable). */
    std::vector<std::uint32_t> rpoIndex;
    unsigned numLoopHeads = 0;

    /** Extract the CFG of @p kernel (empty kernels yield no blocks). */
    static Cfg build(const Kernel &kernel);
};

} // namespace gpulat

#endif // GPULAT_ISA_CFG_HH
