/**
 * @file
 * Text assembler for the gpulat mini ISA.
 *
 * Syntax (one instruction per line; ';', '#' and '//' start comments):
 *
 *     .kernel bfs_level        ; kernel name (optional, arg to parse)
 *     .regs 16                 ; per-thread register count (optional)
 *     .shared 4096             ; shared memory bytes (optional)
 *     start:                   ; labels end with ':'
 *         s2r   r0, tid
 *         mov   r1, param0     ; kernel parameter 0
 *         iadd  r2, r0, 5      ; immediates in decimal or 0x hex
 *         setp.lt p0, r2, r1
 *         @p0 bra start        ; guards: @p0 / @!p0
 *         ld.global r3, [r1+8]
 *         st.shared [r0], r3
 *         clock r4, r3         ; clock read with timing dependency
 *         bar
 *         exit
 */

#ifndef GPULAT_ISA_ASSEMBLER_HH
#define GPULAT_ISA_ASSEMBLER_HH

#include <string>

#include "isa/kernel.hh"

namespace gpulat {

/**
 * Assemble @p source into a Kernel.
 *
 * @param source full assembler text.
 * @param default_name kernel name if no .kernel directive appears.
 * @throws FatalError on any syntax or semantic error, with line info.
 */
Kernel assemble(const std::string &source,
                const std::string &default_name = "kernel");

} // namespace gpulat

#endif // GPULAT_ISA_ASSEMBLER_HH
