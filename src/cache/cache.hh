/**
 * @file
 * Set-associative cache tag-array model used for both the per-SM L1
 * data caches and the per-partition L2 slices.
 *
 * Only tags/state are modelled; data is functional (held in
 * DeviceMemory). Timing comes from the surrounding pipeline, so the
 * cache itself answers hit/miss and tracks dirtiness/evictions.
 */

#ifndef GPULAT_CACHE_CACHE_HH
#define GPULAT_CACHE_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace gpulat {

/** Replacement policies. */
enum class ReplPolicy : std::uint8_t { LRU, FIFO };

/** Write policies. */
enum class WritePolicy : std::uint8_t {
    /** Write-through, no write-allocate (GPU L1 style): writes
     *  update a present line and always propagate downstream. */
    WriteThrough,
    /** Write-back, write-allocate-on-fill (GPU L2 style). */
    WriteBack,
};

/** Geometry + policies of one cache. */
struct CacheParams
{
    std::uint64_t capacityBytes = 16 * 1024;
    std::uint32_t lineBytes = 128;
    std::uint32_t ways = 4;
    ReplPolicy repl = ReplPolicy::LRU;
    WritePolicy write = WritePolicy::WriteThrough;

    std::uint64_t sets() const
    {
        return capacityBytes / lineBytes / ways;
    }
};

/** Result of a cache access. */
enum class CacheOutcome : std::uint8_t {
    Hit,
    Miss,
    /** Write miss under write-through/no-allocate: nothing to do in
     *  the array, the write simply goes downstream. */
    WriteNoAllocate,
};

/**
 * The tag array. All addresses passed in must be line-aligned.
 */
class Cache
{
  public:
    /**
     * @param name stats prefix ("sm0.l1").
     * @param params geometry.
     * @param stats registry the hit/miss counters live in.
     */
    Cache(std::string name, const CacheParams &params,
          StatRegistry *stats);

    /**
     * Perform a read or write lookup at cycle @p now (used as the
     * LRU timestamp).
     *
     * Read miss does NOT allocate; the line is installed later via
     * fill() when the downstream response arrives (allocate-on-fill,
     * as GPGPU-Sim models Fermi).
     */
    CacheOutcome access(Addr line_addr, bool is_write, Cycle now);

    /**
     * Install @p line_addr (a returning fill).
     * @return the address of an evicted *dirty* line that must be
     *         written downstream, if any.
     */
    std::optional<Addr> fill(Addr line_addr, Cycle now);

    /** Pure lookup without side effects. */
    bool contains(Addr line_addr) const;

    /** Mark a present line dirty (atomic RMW at this level). */
    void markDirty(Addr line_addr);

    /** Drop everything (clean); dirty data is functional anyway. */
    void invalidateAll();

    const CacheParams &params() const { return params_; }

    std::uint64_t hits() const { return hits_->value(); }
    std::uint64_t misses() const { return misses_->value(); }

  private:
    struct Line
    {
        Addr tag = kNoAddr; ///< full line address (simple, unique)
        bool valid = false;
        bool dirty = false;
        Cycle lastUse = 0;  ///< LRU: touch time; FIFO: fill time
    };

    Line *findLine(Addr line_addr);
    const Line *findLine(Addr line_addr) const;
    std::size_t setIndex(Addr line_addr) const;
    Line &victimIn(std::size_t set, Cycle now);

    std::string name_;
    CacheParams params_;
    std::vector<Line> lines_; ///< sets * ways, set-major

    Counter *hits_;
    Counter *misses_;
    Counter *evictions_;
    Counter *dirtyEvictions_;
};

} // namespace gpulat

#endif // GPULAT_CACHE_CACHE_HH
