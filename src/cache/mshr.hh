/**
 * @file
 * Miss Status Holding Register table.
 *
 * Tracks outstanding misses per cache line and merges secondary
 * misses onto the primary so only one downstream request is in
 * flight per line. Generic over the payload attached to each miss
 * (the L1 attaches load-instruction tokens, the L2 attaches whole
 * requests awaiting DRAM).
 */

#ifndef GPULAT_CACHE_MSHR_HH
#define GPULAT_CACHE_MSHR_HH

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace gpulat {

/** Outcome of trying to register a miss. */
enum class MshrOutcome : std::uint8_t {
    NewEntry,   ///< first miss on this line: send a request downstream
    Merged,     ///< merged onto an in-flight miss: no new request
    FullEntries,///< structural stall: no free MSHR entry
    FullMerges, ///< structural stall: merge capacity exhausted
};

template <typename Payload>
class MshrTable
{
  public:
    /**
     * @param entries distinct lines trackable at once.
     * @param max_merge max payloads (incl. primary) per line.
     */
    MshrTable(std::size_t entries, std::size_t max_merge)
        : entries_(entries), maxMerge_(max_merge)
    {
        GPULAT_ASSERT(entries > 0 && max_merge > 0, "bad MSHR shape");
    }

    /** Try to record a miss on @p line carrying @p payload. */
    MshrOutcome
    allocate(Addr line, Payload payload)
    {
        auto it = table_.find(line);
        if (it != table_.end()) {
            if (it->second.size() >= maxMerge_)
                return MshrOutcome::FullMerges;
            it->second.push_back(std::move(payload));
            return MshrOutcome::Merged;
        }
        if (table_.size() >= entries_)
            return MshrOutcome::FullEntries;
        table_[line].push_back(std::move(payload));
        return MshrOutcome::NewEntry;
    }

    /** True if a miss on @p line is already in flight. */
    bool pending(Addr line) const { return table_.count(line) != 0; }

    /** Number of payloads parked on @p line (0 if none). */
    std::size_t
    peekCount(Addr line) const
    {
        auto it = table_.find(line);
        return it == table_.end() ? 0 : it->second.size();
    }

    /**
     * The downstream fill for @p line arrived: release the entry and
     * return all merged payloads (primary first).
     */
    std::vector<Payload>
    release(Addr line)
    {
        auto it = table_.find(line);
        GPULAT_ASSERT(it != table_.end(),
                      "MSHR release of untracked line");
        std::vector<Payload> payloads = std::move(it->second);
        table_.erase(it);
        return payloads;
    }

    std::size_t inFlight() const { return table_.size(); }
    bool empty() const { return table_.empty(); }
    std::size_t capacity() const { return entries_; }

  private:
    std::size_t entries_;
    std::size_t maxMerge_;
    std::unordered_map<Addr, std::vector<Payload>> table_;
};

} // namespace gpulat

#endif // GPULAT_CACHE_MSHR_HH
