/**
 * @file
 * Miss Status Holding Register table with a banked front-end.
 *
 * Tracks outstanding misses per cache line and merges secondary
 * misses onto the primary so only one downstream request is in
 * flight per line. Generic over the payload attached to each miss
 * (the L1 attaches load-instruction tokens, the L2 attaches whole
 * requests awaiting DRAM).
 *
 * The table can be split into banks (esesc's HierMSHR style): each
 * line hashes to one bank, and a primary miss needs a free entry in
 * *that* bank, not just anywhere — so hot address regions create
 * structural stalls even while the table has global headroom. The
 * default single-bank shape with a whole-table entry budget behaves
 * exactly like the original flat table.
 */

#ifndef GPULAT_CACHE_MSHR_HH
#define GPULAT_CACHE_MSHR_HH

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace gpulat {

/** Outcome of trying to register a miss. */
enum class MshrOutcome : std::uint8_t {
    NewEntry,   ///< first miss on this line: send a request downstream
    Merged,     ///< merged onto an in-flight miss: no new request
    FullEntries,///< structural stall: no free MSHR entry
    FullMerges, ///< structural stall: merge capacity exhausted
};

template <typename Payload>
class MshrTable
{
  public:
    /**
     * @param entries distinct lines trackable at once (whole table).
     * @param max_merge max payloads (incl. primary) per line.
     * @param banks line-hash banks the entry budget is split over.
     * @param bank_entries per-bank entry budget (0: entries/banks).
     * @param bank_merges per-line merge cap override (0: max_merge).
     * @param line_bytes line size feeding the line -> bank hash.
     */
    MshrTable(std::size_t entries, std::size_t max_merge,
              unsigned banks = 1, std::size_t bank_entries = 0,
              std::size_t bank_merges = 0,
              std::uint32_t line_bytes = 1)
        : entries_(entries),
          maxMerge_(bank_merges ? bank_merges : max_merge),
          banks_(banks ? banks : 1),
          bankEntries_(bank_entries ? bank_entries
                                    : entries / (banks ? banks : 1)),
          lineBytes_(line_bytes ? line_bytes : 1),
          bankInFlight_(banks_, 0)
    {
        GPULAT_ASSERT(entries > 0 && max_merge > 0, "bad MSHR shape");
        GPULAT_ASSERT(bankEntries_ > 0, "MSHR banks (", banks_,
                      ") leave no entries per bank");
    }

    /** Bank the line hashes to. */
    unsigned
    bankOf(Addr line) const
    {
        return static_cast<unsigned>((line / lineBytes_) % banks_);
    }

    /**
     * True if a *primary* miss on @p line could allocate right now:
     * a free entry in the line's bank and in the whole table. With
     * one bank this is exactly the flat inFlight() < capacity()
     * check. (Merges are governed by allocate() itself.)
     */
    bool
    canAllocate(Addr line) const
    {
        return table_.size() < entries_ &&
               bankInFlight_[bankOf(line)] < bankEntries_;
    }

    /** Try to record a miss on @p line carrying @p payload. */
    MshrOutcome
    allocate(Addr line, Payload payload)
    {
        auto it = table_.find(line);
        if (it != table_.end()) {
            if (it->second.size() >= maxMerge_)
                return MshrOutcome::FullMerges;
            it->second.push_back(std::move(payload));
            return MshrOutcome::Merged;
        }
        if (!canAllocate(line))
            return MshrOutcome::FullEntries;
        table_[line].push_back(std::move(payload));
        ++bankInFlight_[bankOf(line)];
        return MshrOutcome::NewEntry;
    }

    /** True if a miss on @p line is already in flight. */
    bool pending(Addr line) const { return table_.count(line) != 0; }

    /** Number of payloads parked on @p line (0 if none). */
    std::size_t
    peekCount(Addr line) const
    {
        auto it = table_.find(line);
        return it == table_.end() ? 0 : it->second.size();
    }

    /**
     * The downstream fill for @p line arrived: release the entry and
     * return all merged payloads (primary first).
     */
    std::vector<Payload>
    release(Addr line)
    {
        auto it = table_.find(line);
        GPULAT_ASSERT(it != table_.end(),
                      "MSHR release of untracked line");
        std::vector<Payload> payloads = std::move(it->second);
        table_.erase(it);
        --bankInFlight_[bankOf(line)];
        return payloads;
    }

    std::size_t inFlight() const { return table_.size(); }
    bool empty() const { return table_.empty(); }
    std::size_t capacity() const { return entries_; }
    unsigned banks() const { return banks_; }
    std::size_t bankCapacity() const { return bankEntries_; }

    /** Lines in flight in one bank. */
    std::size_t
    bankInFlight(unsigned bank) const
    {
        return bankInFlight_[bank];
    }

  private:
    std::size_t entries_;
    std::size_t maxMerge_;
    unsigned banks_;
    std::size_t bankEntries_;
    std::uint32_t lineBytes_;
    std::vector<std::size_t> bankInFlight_;
    std::unordered_map<Addr, std::vector<Payload>> table_;
};

} // namespace gpulat

#endif // GPULAT_CACHE_MSHR_HH
