#include "cache/cache.hh"

#include <bit>

#include "common/log.hh"

namespace gpulat {

Cache::Cache(std::string name, const CacheParams &params,
             StatRegistry *stats)
    : name_(std::move(name)), params_(params)
{
    GPULAT_ASSERT(params_.lineBytes > 0 &&
                  std::has_single_bit(params_.lineBytes),
                  "line size must be a power of two");
    GPULAT_ASSERT(params_.ways > 0, "cache needs >= 1 way");
    const auto sets = params_.sets();
    GPULAT_ASSERT(sets > 0 && std::has_single_bit(sets),
                  "cache '", name_, "': set count ", sets,
                  " must be a power of two (capacity ",
                  params_.capacityBytes, " line ", params_.lineBytes,
                  " ways ", params_.ways, ")");
    lines_.resize(sets * params_.ways);

    GPULAT_ASSERT(stats != nullptr, "cache needs a stat registry");
    hits_ = &stats->counter(name_ + ".hits");
    misses_ = &stats->counter(name_ + ".misses");
    evictions_ = &stats->counter(name_ + ".evictions");
    dirtyEvictions_ = &stats->counter(name_ + ".dirty_evictions");
}

std::size_t
Cache::setIndex(Addr line_addr) const
{
    return (line_addr / params_.lineBytes) % params_.sets();
}

Cache::Line *
Cache::findLine(Addr line_addr)
{
    const std::size_t set = setIndex(line_addr);
    Line *base = &lines_[set * params_.ways];
    for (std::uint32_t w = 0; w < params_.ways; ++w) {
        if (base[w].valid && base[w].tag == line_addr)
            return &base[w];
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr line_addr) const
{
    return const_cast<Cache *>(this)->findLine(line_addr);
}

bool
Cache::contains(Addr line_addr) const
{
    return findLine(line_addr) != nullptr;
}

void
Cache::markDirty(Addr line_addr)
{
    if (Line *line = findLine(line_addr))
        line->dirty = true;
}

CacheOutcome
Cache::access(Addr line_addr, bool is_write, Cycle now)
{
    GPULAT_ASSERT(line_addr % params_.lineBytes == 0,
                  "unaligned line address");
    Line *line = findLine(line_addr);
    if (line) {
        hits_->inc();
        if (params_.repl == ReplPolicy::LRU)
            line->lastUse = now;
        if (is_write) {
            if (params_.write == WritePolicy::WriteBack)
                line->dirty = true;
            // Write-through: line stays clean; the caller forwards
            // the write downstream regardless.
        }
        return CacheOutcome::Hit;
    }

    if (is_write && params_.write == WritePolicy::WriteThrough) {
        // No-allocate on write miss; not counted as a demand miss
        // since nothing waits on it.
        return CacheOutcome::WriteNoAllocate;
    }

    misses_->inc();
    return CacheOutcome::Miss;
}

Cache::Line &
Cache::victimIn(std::size_t set, Cycle now)
{
    (void)now;
    Line *base = &lines_[set * params_.ways];
    Line *victim = base;
    for (std::uint32_t w = 0; w < params_.ways; ++w) {
        if (!base[w].valid)
            return base[w];
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    return *victim;
}

std::optional<Addr>
Cache::fill(Addr line_addr, Cycle now)
{
    GPULAT_ASSERT(line_addr % params_.lineBytes == 0,
                  "unaligned line address");
    if (findLine(line_addr))
        return std::nullopt; // already present (merged fill)

    Line &victim = victimIn(setIndex(line_addr), now);
    std::optional<Addr> writeback;
    if (victim.valid) {
        evictions_->inc();
        if (victim.dirty) {
            dirtyEvictions_->inc();
            writeback = victim.tag;
        }
    }
    victim.valid = true;
    victim.dirty = false;
    victim.tag = line_addr;
    victim.lastUse = now; // fill time doubles as FIFO order
    return writeback;
}

void
Cache::invalidateAll()
{
    for (auto &line : lines_)
        line = Line{};
}

} // namespace gpulat
