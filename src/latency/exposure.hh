/**
 * @file
 * Figure-2 analysis: per latency bucket, which fraction of global
 * load latency was exposed (the SM issued nothing) versus hidden
 * (covered by other warps' work).
 */

#ifndef GPULAT_LATENCY_EXPOSURE_HH
#define GPULAT_LATENCY_EXPOSURE_HH

#include <ostream>
#include <vector>

#include "latency/collector.hh"

namespace gpulat {

/** One bucket of the exposure breakdown. */
struct ExposureBucket
{
    Cycle lo = 0;
    Cycle hi = 0;
    std::uint64_t count = 0;
    std::uint64_t totalCycles = 0;
    std::uint64_t exposedCycles = 0;

    double
    exposedPct() const
    {
        return totalCycles == 0
            ? 0.0
            : 100.0 * static_cast<double>(exposedCycles) /
                  static_cast<double>(totalCycles);
    }

    double hiddenPct() const { return 100.0 - exposedPct(); }
};

/** The full exposure breakdown (the data behind Figure 2). */
struct ExposureBreakdown
{
    std::vector<ExposureBucket> buckets;
    Cycle minLatency = 0;
    Cycle maxLatency = 0;
    std::uint64_t loads = 0;

    /** Aggregate exposed share over every load, percent. */
    double overallExposedPct() const;

    /** Loads (weighted by count) whose bucket is >50% exposed. */
    double fractionOfLoadsMostlyExposed() const;

    std::string bucketLabel(std::size_t i) const;
    void printChart(std::ostream &os, std::size_t width = 60) const;
    void printCsv(std::ostream &os) const;
};

/** Bucket per-load exposure records (48 linear buckets, like Fig 2). */
ExposureBreakdown
computeExposure(const std::vector<ExposureRecord> &records,
                std::size_t num_buckets = 48);

} // namespace gpulat

#endif // GPULAT_LATENCY_EXPOSURE_HH
