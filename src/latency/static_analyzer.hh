/**
 * @file
 * Table-I analysis: turn a measured latency-vs-footprint pointer-
 * chase curve into discrete hierarchy levels (plateau detection,
 * after Wong et al., "Demystifying GPU Microarchitecture through
 * Microbenchmarking", ISPASS 2010).
 */

#ifndef GPULAT_LATENCY_STATIC_ANALYZER_HH
#define GPULAT_LATENCY_STATIC_ANALYZER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace gpulat {

/** One point of a measured latency curve. */
struct LatencyCurvePoint
{
    std::uint64_t footprintBytes;
    double latency; ///< mean cycles per access
};

/** One detected hierarchy level (plateau of the curve). */
struct LatencyLevel
{
    double latency;            ///< median latency of the plateau
    std::uint64_t minFootprint; ///< smallest footprint on the plateau
    std::uint64_t maxFootprint; ///< largest footprint on the plateau
};

/**
 * Detect plateaus in a latency curve.
 *
 * Points must be sorted by footprint. A new level starts whenever
 * the latency rises by more than @p jump_threshold relative to the
 * current plateau's running median. Noise below the threshold is
 * absorbed into the current plateau.
 *
 * @return detected levels, smallest footprint first (i.e. closest
 *         cache level first; the last level is backing DRAM).
 */
std::vector<LatencyLevel>
detectPlateaus(const std::vector<LatencyCurvePoint> &curve,
               double jump_threshold = 0.15);

/** One point of a latency-vs-stride curve. */
struct StrideCurvePoint
{
    std::uint64_t strideBytes;
    double latency; ///< mean cycles per access
};

/**
 * Infer the cache line size from a latency-vs-stride sweep taken at
 * a footprint larger than the cache: for stride < lineBytes a
 * fraction (stride / lineBytes) of accesses miss, so mean latency
 * rises with stride and saturates once stride reaches the line
 * size. Returns the smallest stride whose latency is within
 * @p saturation of the curve's maximum.
 *
 * @param curve points sorted by stride.
 * @return inferred line size in bytes, or 0 if the curve is flat
 *         (no cache present).
 */
std::uint64_t
detectLineSize(const std::vector<StrideCurvePoint> &curve,
               double saturation = 0.05);

} // namespace gpulat

#endif // GPULAT_LATENCY_STATIC_ANALYZER_HH
