/**
 * @file
 * Collectors the simulator feeds during execution; analyzers consume
 * them afterwards to produce the paper's figures.
 */

#ifndef GPULAT_LATENCY_COLLECTOR_HH
#define GPULAT_LATENCY_COLLECTOR_HH

#include <vector>

#include "common/types.hh"
#include "latency/stages.hh"

namespace gpulat {

/**
 * Completed per-request (cache-line transaction) latency traces —
 * the raw data behind Figure 1.
 */
class LatencyCollector
{
  public:
    void record(const LatencyTrace &trace) { traces_.push_back(trace); }
    const std::vector<LatencyTrace> &traces() const { return traces_; }
    std::size_t count() const { return traces_.size(); }
    void clear() { traces_.clear(); }

    /** Enable/disable recording (microbenchmark warm-up rounds). */
    void setEnabled(bool enabled) { enabled_ = enabled; }
    bool enabled() const { return enabled_; }

  private:
    std::vector<LatencyTrace> traces_;
    bool enabled_ = true;
};

/** Per-load-instruction exposure record — the raw data of Fig. 2. */
struct ExposureRecord
{
    Cycle total;   ///< load lifetime, issue -> writeback
    Cycle exposed; ///< cycles of that lifetime the SM issued nothing
};

class ExposureCollector
{
  public:
    void
    record(Cycle total, Cycle exposed)
    {
        records_.push_back(ExposureRecord{total, exposed});
    }

    const std::vector<ExposureRecord> &records() const
    {
        return records_;
    }
    std::size_t count() const { return records_.size(); }
    void clear() { records_.clear(); }

  private:
    std::vector<ExposureRecord> records_;
};

} // namespace gpulat

#endif // GPULAT_LATENCY_COLLECTOR_HH
