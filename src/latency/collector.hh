/**
 * @file
 * Collectors the simulator feeds during execution; analyzers consume
 * them afterwards to produce the paper's figures.
 *
 * Both collectors are *sharded*: every SM appends to its own private
 * shard, so SM cores assigned to different tick groups can record
 * concurrently without sharing mutable state. Each append carries a
 * merge tag — the core cycle it happened on plus a phase bit
 * (phase 0: a response delivered by the return-network port, which
 * ticks before every SM; phase 1: the SM's own tick) — and readers
 * see a lazily merged view ordered by (cycle, phase, shard). That
 * key reproduces the exact append order a single shared collector
 * sees under serial ticking: within a core cycle the return port
 * delivers into SMs in ascending smId order first, then the SMs
 * tick in registration (= smId) order. Per shard the tag sequence
 * is nondecreasing by construction, so a stable k-way merge suffices
 * and the merged view is byte-identical for every tickJobs value.
 *
 * Readers (reports, record aggregation) run on the host thread
 * after the engine settles; shards are only appended to from inside
 * ticks. The merged view is rebuilt when the shard totals outgrow
 * it, so no cross-thread dirty flag is needed.
 */

#ifndef GPULAT_LATENCY_COLLECTOR_HH
#define GPULAT_LATENCY_COLLECTOR_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "latency/stages.hh"

namespace gpulat {

namespace detail {

/** (cycle << 1) | phase — cycles stay far below 2^63. */
inline std::uint64_t
mergeTag(Cycle cycle, unsigned phase)
{
    return (cycle << 1) | (phase & 1u);
}

/**
 * Stable k-way merge of per-shard (tag, record) sequences into
 * @p merged. Each shard's tags are nondecreasing (appends happen in
 * cycle order, phase 0 before phase 1 within a cycle), so repeated
 * min-selection with the shard index as tie-breaker reproduces the
 * serial shared-collector append order.
 */
template <typename Shard, typename Record>
void
mergeShards(const std::vector<Shard> &shards,
            std::vector<Record> &merged)
{
    merged.clear();
    std::size_t total = 0;
    for (const Shard &shard : shards)
        total += shard.records.size();
    merged.reserve(total);

    std::vector<std::size_t> next(shards.size(), 0);
    while (merged.size() < total) {
        std::size_t best = shards.size();
        std::uint64_t best_tag = ~std::uint64_t{0};
        for (std::size_t s = 0; s < shards.size(); ++s) {
            if (next[s] >= shards[s].records.size())
                continue;
            const std::uint64_t tag = shards[s].tags[next[s]];
            if (best == shards.size() || tag < best_tag) {
                best = s;
                best_tag = tag;
            }
        }
        merged.push_back(shards[best].records[next[best]++]);
    }
}

} // namespace detail

/**
 * Completed per-request (cache-line transaction) latency traces —
 * the raw data behind Figure 1.
 */
class LatencyCollector
{
  public:
    /** Per-SM append handle; pointers stay valid after resize(). */
    class Shard
    {
      public:
        void
        record(Cycle cycle, unsigned phase, const LatencyTrace &trace)
        {
            tags.push_back(detail::mergeTag(cycle, phase));
            records.push_back(trace);
        }

        std::vector<std::uint64_t> tags;
        std::vector<LatencyTrace> records;
    };

    /** Size the shard array (once, before handing out shards). */
    void
    resize(std::size_t shards)
    {
        shards_.resize(shards ? shards : 1);
    }

    Shard &shard(std::size_t i) { return shards_[i]; }

    /** Merged traces in serial append order (lazily rebuilt). */
    const std::vector<LatencyTrace> &
    traces() const
    {
        if (merged_.size() != count())
            detail::mergeShards(shards_, merged_);
        return merged_;
    }

    std::size_t
    count() const
    {
        std::size_t total = 0;
        for (const Shard &shard : shards_)
            total += shard.records.size();
        return total;
    }

    void
    clear()
    {
        for (Shard &shard : shards_) {
            shard.tags.clear();
            shard.records.clear();
        }
        merged_.clear();
    }

    /** Enable/disable recording (microbenchmark warm-up rounds). */
    void setEnabled(bool enabled) { enabled_ = enabled; }
    bool enabled() const { return enabled_; }

  private:
    std::vector<Shard> shards_{1};
    mutable std::vector<LatencyTrace> merged_;
    bool enabled_ = true;
};

/** Per-load-instruction exposure record — the raw data of Fig. 2. */
struct ExposureRecord
{
    Cycle total;   ///< load lifetime, issue -> writeback
    Cycle exposed; ///< cycles of that lifetime the SM issued nothing
};

class ExposureCollector
{
  public:
    /** Per-SM append handle; pointers stay valid after resize(). */
    class Shard
    {
      public:
        void
        record(Cycle cycle, unsigned phase, Cycle total, Cycle exposed)
        {
            tags.push_back(detail::mergeTag(cycle, phase));
            records.push_back(ExposureRecord{total, exposed});
        }

        std::vector<std::uint64_t> tags;
        std::vector<ExposureRecord> records;
    };

    /** Size the shard array (once, before handing out shards). */
    void
    resize(std::size_t shards)
    {
        shards_.resize(shards ? shards : 1);
    }

    Shard &shard(std::size_t i) { return shards_[i]; }

    /** Merged records in serial append order (lazily rebuilt). */
    const std::vector<ExposureRecord> &
    records() const
    {
        if (merged_.size() != count())
            detail::mergeShards(shards_, merged_);
        return merged_;
    }

    std::size_t
    count() const
    {
        std::size_t total = 0;
        for (const Shard &shard : shards_)
            total += shard.records.size();
        return total;
    }

    void
    clear()
    {
        for (Shard &shard : shards_) {
            shard.tags.clear();
            shard.records.clear();
        }
        merged_.clear();
    }

  private:
    std::vector<Shard> shards_{1};
    mutable std::vector<ExposureRecord> merged_;
};

} // namespace gpulat

#endif // GPULAT_LATENCY_COLLECTOR_HH
