/**
 * @file
 * Per-hit-level latency summary: min/mean/percentiles of request
 * latency split by where the request was serviced (L1/L2/DRAM).
 * The loaded ("dynamic") counterpart of Table I: the same three
 * rows, but measured under real traffic instead of idle chases.
 */

#ifndef GPULAT_LATENCY_SUMMARY_HH
#define GPULAT_LATENCY_SUMMARY_HH

#include <array>
#include <ostream>
#include <vector>

#include "latency/stages.hh"

namespace gpulat {

/** Summary statistics for one hit level. */
struct LevelSummary
{
    std::uint64_t count = 0;
    Cycle min = 0;
    Cycle max = 0;
    double mean = 0.0;
    Cycle p50 = 0;
    Cycle p90 = 0;
    Cycle p99 = 0;
};

/** Loaded-latency summary across the three service levels. */
struct LatencySummary
{
    std::array<LevelSummary, 3> levels; ///< indexed by HitLevel

    const LevelSummary &
    at(HitLevel level) const
    {
        return levels[static_cast<std::size_t>(level)];
    }

    /** Aligned text table, one row per level. */
    void print(std::ostream &os) const;
};

/** Compute the summary from completed request traces. */
LatencySummary
computeSummary(const std::vector<LatencyTrace> &traces);

} // namespace gpulat

#endif // GPULAT_LATENCY_SUMMARY_HH
