/**
 * @file
 * Memory-pipeline stage taxonomy and per-request latency traces.
 *
 * The stages mirror the legend of Figure 1 in the paper (and the
 * GPGPU-Sim memory pipeline the authors instrumented):
 *
 *   SM Base       issue -> L1 access (address gen + LSU queueing)
 *   L1toICNT      L1 miss detect -> injected into interconnect
 *   ICNTtoROP     crossbar traversal + arbitration -> ROP queue
 *   ROPtoL2Q      ROP pipeline -> L2 queue entry
 *   L2QtoDRAMQ    L2 queue wait + L2 access (ends here on L2 hit)
 *   DRAM(QtoSch)  DRAM queue wait until the scheduler selects it
 *   DRAM(SchToA)  DRAM bank timing until data is available
 *   Fetch2SM      return network + fill + writeback
 */

#ifndef GPULAT_LATENCY_STAGES_HH
#define GPULAT_LATENCY_STAGES_HH

#include <array>
#include <cstdint>

#include "common/types.hh"

namespace gpulat {

/** Pipeline stages a memory fetch's lifetime decomposes into. */
enum class Stage : std::uint8_t {
    SmBase,
    L1ToIcnt,
    IcntToRop,
    RopToL2Q,
    L2QToDramQ,
    DramQToSched,
    DramSchedToData,
    FetchToSm,
    NumStages,
};

inline constexpr std::size_t kNumStages =
    static_cast<std::size_t>(Stage::NumStages);

/** Paper-style printable stage name. */
const char *toString(Stage stage);

/** Where in the hierarchy a request was serviced. */
enum class HitLevel : std::uint8_t { L1, L2, Dram };

const char *toString(HitLevel level);

/**
 * Absolute event timestamps for one memory request. Events that a
 * request skips (e.g. everything past L1 for an L1 hit) stay at
 * kNoCycle. stageCycles() converts to per-stage durations; by
 * convention (matching the paper's figure) an L1 hit attributes its
 * entire latency to SM Base.
 */
struct LatencyTrace
{
    Cycle issue = kNoCycle;      ///< warp issued the load
    Cycle l1Access = kNoCycle;   ///< L1 lookup performed
    Cycle icntInject = kNoCycle; ///< entered interconnect input queue
    Cycle ropEnq = kNoCycle;     ///< accepted into ROP queue
    Cycle l2Enq = kNoCycle;      ///< entered L2 access queue
    Cycle l2Done = kNoCycle;     ///< L2 hit data available
    Cycle dramEnq = kNoCycle;    ///< entered DRAM scheduler queue
    Cycle dramSched = kNoCycle;  ///< selected by DRAM scheduler
    Cycle dramData = kNoCycle;   ///< DRAM data available
    Cycle complete = kNoCycle;   ///< writeback at the SM

    HitLevel hitLevel = HitLevel::L1;

    /** Total lifetime in cycles (complete - issue). */
    Cycle
    total() const
    {
        return complete - issue;
    }

    /** Duration attributed to each stage; sums to total(). */
    std::array<Cycle, kNumStages> stageCycles() const;
};

} // namespace gpulat

#endif // GPULAT_LATENCY_STAGES_HH
