#include "latency/static_analyzer.hh"

#include <algorithm>

#include "common/log.hh"

namespace gpulat {

namespace {

double
medianOf(std::vector<double> values)
{
    GPULAT_ASSERT(!values.empty(), "median of nothing");
    std::sort(values.begin(), values.end());
    const std::size_t n = values.size();
    return n % 2 ? values[n / 2]
                 : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

} // namespace

std::vector<LatencyLevel>
detectPlateaus(const std::vector<LatencyCurvePoint> &curve,
               double jump_threshold)
{
    std::vector<LatencyLevel> levels;
    if (curve.empty())
        return levels;

    for (std::size_t i = 1; i < curve.size(); ++i) {
        GPULAT_ASSERT(curve[i].footprintBytes >
                      curve[i - 1].footprintBytes,
                      "curve must be sorted by footprint");
    }

    std::vector<double> plateau{curve.front().latency};
    std::uint64_t lo = curve.front().footprintBytes;
    std::uint64_t hi = lo;

    auto flush = [&]() {
        levels.push_back(LatencyLevel{medianOf(plateau), lo, hi});
    };

    for (std::size_t i = 1; i < curve.size(); ++i) {
        const double ref = medianOf(plateau);
        const bool jump =
            curve[i].latency > ref * (1.0 + jump_threshold);
        if (jump) {
            flush();
            plateau.clear();
            lo = curve[i].footprintBytes;
        }
        plateau.push_back(curve[i].latency);
        hi = curve[i].footprintBytes;
    }
    flush();
    return levels;
}

std::uint64_t
detectLineSize(const std::vector<StrideCurvePoint> &curve,
               double saturation)
{
    GPULAT_ASSERT(!curve.empty(), "empty stride curve");
    for (std::size_t i = 1; i < curve.size(); ++i) {
        GPULAT_ASSERT(curve[i].strideBytes > curve[i - 1].strideBytes,
                      "curve must be sorted by stride");
    }

    double lo = curve.front().latency;
    double hi = lo;
    for (const auto &point : curve) {
        lo = std::min(lo, point.latency);
        hi = std::max(hi, point.latency);
    }
    // Flat curve: no cache level between the strides probed.
    if (hi <= lo * 1.10)
        return 0;

    for (const auto &point : curve) {
        if (point.latency >= hi * (1.0 - saturation))
            return point.strideBytes;
    }
    return curve.back().strideBytes;
}

} // namespace gpulat
