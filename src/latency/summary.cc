#include "latency/summary.hh"

#include <algorithm>

#include "common/percentile.hh"
#include "common/table.hh"

namespace gpulat {

LatencySummary
computeSummary(const std::vector<LatencyTrace> &traces)
{
    std::array<std::vector<Cycle>, 3> totals;
    for (const auto &t : traces)
        totals[static_cast<std::size_t>(t.hitLevel)].push_back(
            t.total());

    LatencySummary summary;
    for (std::size_t lvl = 0; lvl < 3; ++lvl) {
        auto &values = totals[lvl];
        LevelSummary &out = summary.levels[lvl];
        out.count = values.size();
        if (values.empty())
            continue;
        std::sort(values.begin(), values.end());
        out.min = values.front();
        out.max = values.back();
        double sum = 0.0;
        for (const Cycle v : values)
            sum += static_cast<double>(v);
        out.mean = sum / static_cast<double>(values.size());
        out.p50 = percentileSorted(values, 0.50);
        out.p90 = percentileSorted(values, 0.90);
        out.p99 = percentileSorted(values, 0.99);
    }
    return summary;
}

void
LatencySummary::print(std::ostream &os) const
{
    TextTable table({"level", "count", "min", "mean", "p50", "p90",
                     "p99", "max"});
    for (std::size_t lvl = 0; lvl < 3; ++lvl) {
        const LevelSummary &s = levels[lvl];
        table.addRow({toString(static_cast<HitLevel>(lvl)),
                      std::to_string(s.count),
                      std::to_string(s.min),
                      formatDouble(s.mean, 1),
                      std::to_string(s.p50),
                      std::to_string(s.p90),
                      std::to_string(s.p99),
                      std::to_string(s.max)});
    }
    table.print(os);
}

} // namespace gpulat
