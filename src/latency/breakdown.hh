/**
 * @file
 * Figure-1 analysis: bucket completed memory requests by total
 * latency and break each bucket down into pipeline-stage
 * percentages.
 */

#ifndef GPULAT_LATENCY_BREAKDOWN_HH
#define GPULAT_LATENCY_BREAKDOWN_HH

#include <array>
#include <ostream>
#include <vector>

#include "latency/stages.hh"

namespace gpulat {

/** One latency bucket of the breakdown. */
struct BreakdownBucket
{
    Cycle lo = 0; ///< inclusive
    Cycle hi = 0; ///< exclusive (inclusive for the last bucket)
    std::uint64_t count = 0;
    /** Total cycles spent in each stage by this bucket's requests. */
    std::array<std::uint64_t, kNumStages> stageSum{};

    /** Stage share in percent of the bucket's total latency. */
    double
    stagePct(Stage s) const
    {
        std::uint64_t total = 0;
        for (auto v : stageSum)
            total += v;
        if (total == 0)
            return 0.0;
        return 100.0 *
               static_cast<double>(
                   stageSum[static_cast<std::size_t>(s)]) /
               static_cast<double>(total);
    }
};

/** The full per-bucket breakdown (the data behind Figure 1). */
struct Breakdown
{
    std::vector<BreakdownBucket> buckets;
    Cycle minLatency = 0;
    Cycle maxLatency = 0;
    std::uint64_t requests = 0;
    /** Aggregate cycles per stage across all requests. */
    std::array<std::uint64_t, kNumStages> totalByStage{};

    /**
     * Stages ranked by aggregate contribution, heaviest first —
     * used to reproduce the paper's "queueing and arbitration are
     * the two key latency contributors" claim.
     */
    std::vector<Stage> rankedStages() const;

    /** Paper-style "lo-hi" label for bucket @p i. */
    std::string bucketLabel(std::size_t i) const;

    /** Render as an ASCII stacked-bar chart (Figure 1 lookalike). */
    void printChart(std::ostream &os, std::size_t width = 60) const;

    /** Render as a CSV table (one row per bucket, one col/stage). */
    void printCsv(std::ostream &os) const;
};

/**
 * Compute the breakdown.
 *
 * @param traces completed request traces.
 * @param num_buckets linear buckets between observed min and max
 *        total latency (the paper uses 48).
 */
Breakdown computeBreakdown(const std::vector<LatencyTrace> &traces,
                           std::size_t num_buckets = 48);

} // namespace gpulat

#endif // GPULAT_LATENCY_BREAKDOWN_HH
