#include "latency/exposure.hh"

#include <algorithm>
#include <sstream>

#include "common/log.hh"
#include "common/table.hh"

namespace gpulat {

ExposureBreakdown
computeExposure(const std::vector<ExposureRecord> &records,
                std::size_t num_buckets)
{
    GPULAT_ASSERT(num_buckets > 0, "need at least one bucket");
    ExposureBreakdown eb;
    eb.loads = records.size();
    if (records.empty())
        return eb;

    Cycle lo = records.front().total;
    Cycle hi = lo;
    for (const auto &r : records) {
        lo = std::min(lo, r.total);
        hi = std::max(hi, r.total);
    }
    eb.minLatency = lo;
    eb.maxLatency = hi;

    const double span = hi > lo ? static_cast<double>(hi - lo) : 1.0;
    eb.buckets.resize(num_buckets);
    for (std::size_t b = 0; b < num_buckets; ++b) {
        eb.buckets[b].lo = lo + static_cast<Cycle>(
            span * static_cast<double>(b) /
            static_cast<double>(num_buckets));
        eb.buckets[b].hi = lo + static_cast<Cycle>(
            span * static_cast<double>(b + 1) /
            static_cast<double>(num_buckets));
    }

    for (const auto &r : records) {
        auto idx = static_cast<std::size_t>(
            static_cast<double>(r.total - lo) / span *
            static_cast<double>(num_buckets));
        if (idx >= num_buckets)
            idx = num_buckets - 1;
        ExposureBucket &bucket = eb.buckets[idx];
        ++bucket.count;
        bucket.totalCycles += r.total;
        bucket.exposedCycles += r.exposed;
    }
    return eb;
}

double
ExposureBreakdown::overallExposedPct() const
{
    std::uint64_t total = 0;
    std::uint64_t exposed = 0;
    for (const auto &bucket : buckets) {
        total += bucket.totalCycles;
        exposed += bucket.exposedCycles;
    }
    return total == 0 ? 0.0
                      : 100.0 * static_cast<double>(exposed) /
                            static_cast<double>(total);
}

double
ExposureBreakdown::fractionOfLoadsMostlyExposed() const
{
    std::uint64_t n = 0;
    std::uint64_t mostly = 0;
    for (const auto &bucket : buckets) {
        n += bucket.count;
        if (bucket.exposedPct() > 50.0)
            mostly += bucket.count;
    }
    return n == 0 ? 0.0
                  : static_cast<double>(mostly) /
                        static_cast<double>(n);
}

std::string
ExposureBreakdown::bucketLabel(std::size_t i) const
{
    std::ostringstream oss;
    oss << buckets[i].lo << "-" << buckets[i].hi;
    return oss.str();
}

void
ExposureBreakdown::printChart(std::ostream &os,
                              std::size_t width) const
{
    StackedBarChart chart({"exposed latency", "hidden latency"},
                          width);
    for (std::size_t b = 0; b < buckets.size(); ++b) {
        if (buckets[b].count == 0)
            continue;
        chart.addBar(bucketLabel(b),
                     {buckets[b].exposedPct(), buckets[b].hiddenPct()},
                     "n=" + std::to_string(buckets[b].count));
    }
    chart.print(os);
}

void
ExposureBreakdown::printCsv(std::ostream &os) const
{
    TextTable table({"bucket_lo", "bucket_hi", "count", "exposed_pct",
                     "hidden_pct"});
    for (const auto &bucket : buckets) {
        table.addRow({std::to_string(bucket.lo),
                      std::to_string(bucket.hi),
                      std::to_string(bucket.count),
                      formatDouble(bucket.exposedPct(), 2),
                      formatDouble(bucket.hiddenPct(), 2)});
    }
    table.printCsv(os);
}

} // namespace gpulat
