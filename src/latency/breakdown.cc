#include "latency/breakdown.hh"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "common/log.hh"
#include "common/table.hh"

namespace gpulat {

Breakdown
computeBreakdown(const std::vector<LatencyTrace> &traces,
                 std::size_t num_buckets)
{
    GPULAT_ASSERT(num_buckets > 0, "need at least one bucket");
    Breakdown bd;
    bd.requests = traces.size();
    if (traces.empty())
        return bd;

    Cycle lo = traces.front().total();
    Cycle hi = lo;
    for (const auto &t : traces) {
        lo = std::min(lo, t.total());
        hi = std::max(hi, t.total());
    }
    bd.minLatency = lo;
    bd.maxLatency = hi;

    const double span = hi > lo ? static_cast<double>(hi - lo) : 1.0;
    bd.buckets.resize(num_buckets);
    for (std::size_t b = 0; b < num_buckets; ++b) {
        bd.buckets[b].lo = lo + static_cast<Cycle>(
            span * static_cast<double>(b) /
            static_cast<double>(num_buckets));
        bd.buckets[b].hi = lo + static_cast<Cycle>(
            span * static_cast<double>(b + 1) /
            static_cast<double>(num_buckets));
    }

    for (const auto &t : traces) {
        auto idx = static_cast<std::size_t>(
            static_cast<double>(t.total() - lo) / span *
            static_cast<double>(num_buckets));
        if (idx >= num_buckets)
            idx = num_buckets - 1;
        BreakdownBucket &bucket = bd.buckets[idx];
        ++bucket.count;
        const auto stages = t.stageCycles();
        for (std::size_t s = 0; s < kNumStages; ++s) {
            bucket.stageSum[s] += stages[s];
            bd.totalByStage[s] += stages[s];
        }
    }
    return bd;
}

std::vector<Stage>
Breakdown::rankedStages() const
{
    std::vector<Stage> stages;
    for (std::size_t s = 0; s < kNumStages; ++s)
        stages.push_back(static_cast<Stage>(s));
    std::sort(stages.begin(), stages.end(),
              [this](Stage a, Stage b) {
                  return totalByStage[static_cast<std::size_t>(a)] >
                         totalByStage[static_cast<std::size_t>(b)];
              });
    return stages;
}

std::string
Breakdown::bucketLabel(std::size_t i) const
{
    std::ostringstream oss;
    oss << buckets[i].lo << "-" << buckets[i].hi;
    return oss.str();
}

void
Breakdown::printChart(std::ostream &os, std::size_t width) const
{
    std::vector<std::string> names;
    for (std::size_t s = 0; s < kNumStages; ++s)
        names.emplace_back(toString(static_cast<Stage>(s)));
    StackedBarChart chart(names, width);

    for (std::size_t b = 0; b < buckets.size(); ++b) {
        if (buckets[b].count == 0)
            continue;
        std::vector<double> parts;
        for (std::size_t s = 0; s < kNumStages; ++s)
            parts.push_back(static_cast<double>(buckets[b].stageSum[s]));
        chart.addBar(bucketLabel(b), std::move(parts),
                     "n=" + std::to_string(buckets[b].count));
    }
    chart.print(os);
}

void
Breakdown::printCsv(std::ostream &os) const
{
    std::vector<std::string> header{"bucket_lo", "bucket_hi", "count"};
    for (std::size_t s = 0; s < kNumStages; ++s)
        header.emplace_back(toString(static_cast<Stage>(s)));
    TextTable table(header);
    for (const auto &bucket : buckets) {
        std::vector<std::string> row{std::to_string(bucket.lo),
                                     std::to_string(bucket.hi),
                                     std::to_string(bucket.count)};
        for (std::size_t s = 0; s < kNumStages; ++s)
            row.push_back(formatDouble(
                bucket.stagePct(static_cast<Stage>(s)), 2));
        table.addRow(std::move(row));
    }
    table.printCsv(os);
}

} // namespace gpulat
