#include "latency/stages.hh"

#include "common/log.hh"

namespace gpulat {

const char *
toString(Stage stage)
{
    switch (stage) {
      case Stage::SmBase: return "SM Base";
      case Stage::L1ToIcnt: return "L1toICNT";
      case Stage::IcntToRop: return "ICNTtoROP";
      case Stage::RopToL2Q: return "ROPtoL2Q";
      case Stage::L2QToDramQ: return "L2QtoDRAMQ";
      case Stage::DramQToSched: return "DRAM(QtoSch)";
      case Stage::DramSchedToData: return "DRAM(SchToA)";
      case Stage::FetchToSm: return "Fetch2SM";
      case Stage::NumStages: break;
    }
    return "?";
}

const char *
toString(HitLevel level)
{
    switch (level) {
      case HitLevel::L1: return "L1";
      case HitLevel::L2: return "L2";
      case HitLevel::Dram: return "DRAM";
    }
    return "?";
}

std::array<Cycle, kNumStages>
LatencyTrace::stageCycles() const
{
    std::array<Cycle, kNumStages> out{};
    auto at = [&out](Stage s) -> Cycle & {
        return out[static_cast<std::size_t>(s)];
    };

    GPULAT_ASSERT(issue != kNoCycle && complete != kNoCycle,
                  "incomplete latency trace");

    if (hitLevel == HitLevel::L1) {
        // The L1 lives inside the SM; the paper shows hits as pure
        // "SM base" time.
        at(Stage::SmBase) = complete - issue;
        return out;
    }

    at(Stage::SmBase) = l1Access - issue;
    at(Stage::L1ToIcnt) = icntInject - l1Access;
    at(Stage::IcntToRop) = ropEnq - icntInject;
    at(Stage::RopToL2Q) = l2Enq - ropEnq;

    if (hitLevel == HitLevel::L2) {
        at(Stage::L2QToDramQ) = l2Done - l2Enq;
        at(Stage::FetchToSm) = complete - l2Done;
        return out;
    }

    at(Stage::L2QToDramQ) = dramEnq - l2Enq;
    at(Stage::DramQToSched) = dramSched - dramEnq;
    at(Stage::DramSchedToData) = dramData - dramSched;
    at(Stage::FetchToSm) = complete - dramData;
    return out;
}

} // namespace gpulat
