/**
 * @file
 * SM <-> memory-partition interconnect, modelled as a single-stage
 * crossbar with bounded per-port queues.
 *
 * Each source port accepts at most one packet per cycle; each
 * destination port delivers at most one packet per cycle, selected
 * by round-robin arbitration over contending sources. Packets incur
 * a fixed traversal latency plus whatever queueing the load induces
 * — which is exactly the "queueing and arbitration" behaviour the
 * paper identifies as a key dynamic latency contributor.
 */

#ifndef GPULAT_ICNT_CROSSBAR_HH
#define GPULAT_ICNT_CROSSBAR_HH

#include <algorithm>
#include <vector>

#include "common/log.hh"
#include "common/queue.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "engine/clocked.hh"

namespace gpulat {

template <typename T>
class Crossbar : public Clocked
{
  public:
    /**
     * @param name stats prefix.
     * @param num_src source ports.
     * @param num_dst destination ports.
     * @param latency fixed traversal latency (cycles).
     * @param in_capacity per-source input queue depth.
     * @param out_capacity per-destination output queue depth.
     * @param stats registry for arbitration statistics.
     */
    Crossbar(std::string name, unsigned num_src, unsigned num_dst,
             Cycle latency, std::size_t in_capacity,
             std::size_t out_capacity, StatRegistry *stats)
        : name_(std::move(name)), latency_(latency)
    {
        GPULAT_ASSERT(num_src > 0 && num_dst > 0, "bad crossbar shape");
        inputs_.reserve(num_src);
        for (unsigned s = 0; s < num_src; ++s)
            inputs_.emplace_back(in_capacity, latency_);
        outputs_.reserve(num_dst);
        for (unsigned d = 0; d < num_dst; ++d)
            outputs_.emplace_back(out_capacity, Cycle{0});
        rrPtr_.assign(num_dst, 0);
        GPULAT_ASSERT(stats != nullptr, "crossbar needs stats");
        transferred_ = &stats->counter(name_ + ".transferred");
        arbStalls_ = &stats->counter(name_ + ".arb_stalls");
    }

    unsigned numSrc() const
    {
        return static_cast<unsigned>(inputs_.size());
    }
    unsigned numDst() const
    {
        return static_cast<unsigned>(outputs_.size());
    }

    /** True if source port @p src can accept a packet this cycle. */
    bool
    canInject(unsigned src) const
    {
        return !inputs_[src].queue.full();
    }

    /**
     * Inject a packet at @p src headed to @p dst.
     * @return false if the input queue is full.
     */
    bool
    inject(Cycle now, unsigned src, unsigned dst, T payload)
    {
        GPULAT_ASSERT(dst < numDst(), "bad crossbar destination");
        return inputs_[src].queue.push(
            now, Packet{dst, std::move(payload)});
    }

    /**
     * Advance one cycle: move up to one ready packet to each
     * destination output queue, arbitrating round-robin among
     * sources whose head packet targets that destination.
     */
    void
    tick(Cycle now) override
    {
        const unsigned nsrc = numSrc();
        for (unsigned d = 0; d < numDst(); ++d) {
            if (outputs_[d].full())
                continue;
            bool contended = false;
            const unsigned start = rrPtr_[d];
            for (unsigned k = 0; k < nsrc; ++k) {
                unsigned s = (start + k) % nsrc;
                auto &in = inputs_[s];
                if (!in.queue.headReady(now) || in.poppedThisCycle)
                    continue;
                if (in.queue.front().dst != d) {
                    continue;
                }
                if (contended) {
                    arbStalls_->inc();
                    continue;
                }
                Packet pkt = in.queue.pop();
                in.poppedThisCycle = true;
                bool ok = outputs_[d].push(now, std::move(pkt.payload));
                GPULAT_ASSERT(ok, "output push must succeed");
                transferred_->inc();
                rrPtr_[d] = (s + 1) % nsrc;
                contended = true; // this dst is served; count losers
            }
        }
        for (auto &in : inputs_)
            in.poppedThisCycle = false;
    }

    /**
     * Earliest cycle an input-queue head becomes movable — the only
     * work tick() itself performs (output drain belongs to the
     * ejecting port, see nextDeliveryAt()).
     */
    Cycle
    nextEventAt(Cycle now) const override
    {
        (void)now;
        Cycle e = kNoCycle;
        for (const auto &in : inputs_)
            e = std::min(e, in.queue.headReadyAt());
        return e;
    }

    /** Earliest cycle any output head becomes deliverable. */
    Cycle
    nextDeliveryAt() const
    {
        Cycle e = kNoCycle;
        for (const auto &out : outputs_)
            e = std::min(e, out.headReadyAt());
        return e;
    }

    /** Packets anywhere inside the crossbar (for stall reports). */
    std::size_t
    inFlight() const
    {
        std::size_t n = 0;
        for (const auto &in : inputs_)
            n += in.queue.size();
        for (const auto &out : outputs_)
            n += out.size();
        return n;
    }

    /** True if @p dst has a deliverable packet. */
    bool
    deliverable(unsigned dst, Cycle now) const
    {
        return outputs_[dst].headReady(now);
    }

    /** Peek the deliverable packet at @p dst. */
    const T &peek(unsigned dst) const { return outputs_[dst].front(); }

    /** Pop the deliverable packet at @p dst. */
    T eject(unsigned dst) { return outputs_[dst].pop(); }

    /** True when no packet is anywhere in the crossbar. */
    bool
    empty() const
    {
        for (const auto &in : inputs_)
            if (!in.queue.empty())
                return false;
        for (const auto &out : outputs_)
            if (!out.empty())
                return false;
        return true;
    }

    void
    clear()
    {
        for (auto &in : inputs_)
            in.queue.clear();
        for (auto &out : outputs_)
            out.clear();
    }

  private:
    struct Packet
    {
        unsigned dst;
        T payload;
    };

    struct InputPort
    {
        InputPort(std::size_t capacity, Cycle latency)
            : queue(capacity, latency)
        {
        }
        TimedQueue<Packet> queue;
        bool poppedThisCycle = false;
    };

    std::string name_;
    Cycle latency_;
    std::vector<InputPort> inputs_;
    std::vector<TimedQueue<T>> outputs_;
    std::vector<unsigned> rrPtr_;

    Counter *transferred_;
    Counter *arbStalls_;
};

} // namespace gpulat

#endif // GPULAT_ICNT_CROSSBAR_HH
