#include "gpu/ports.hh"

namespace gpulat {

void
BlockDispatcher::tick(Cycle now)
{
    (void)now;
    const unsigned num_sms = static_cast<unsigned>(sms_.size());
    for (unsigned k = 0;
         k < num_sms && nextBlock_ < numBlocks_; ++k) {
        const unsigned s = (rr_ + k) % num_sms;
        if (sms_[s]->canAcceptBlock()) {
            sms_[s]->dispatchBlock(nextBlock_++);
        }
    }
    rr_ = (rr_ + 1) % num_sms;
}

Cycle
BlockDispatcher::nextEventAt(Cycle now) const
{
    if (allDispatched())
        return kNoCycle;
    // Blocks remain: dispatch happens the moment an SM has room.
    // If none has, room only appears when a resident block retires
    // — an SM-side event, so it is safe to report idle here (the
    // Gpu declares an SM -> dispatcher wake edge, so a retirement
    // discards this promise before it could go stale).
    for (const auto &sm : sms_)
        if (sm->canAcceptBlock())
            return now;
    return kNoCycle;
}

void
BlockDispatcher::fastForward(Cycle from, Cycle to)
{
    // The rotor advances once per core cycle in tick(); keep it
    // spinning through the skipped window for bit-identical
    // round-robin state afterwards.
    const unsigned num_sms = static_cast<unsigned>(sms_.size());
    rr_ = static_cast<unsigned>((rr_ + (to - from)) % num_sms);
}

} // namespace gpulat
