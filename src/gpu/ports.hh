/**
 * @file
 * Timed-port adapters: the small Clocked components that move
 * packets between the big models (crossbars, partitions, SMs) and
 * dispatch thread blocks.
 *
 * Each adapter is registered in the *consumer's* clock domain — a
 * packet crosses into a domain when that domain clocks it in, which
 * is how hardware synchronizers behave. Because every queue
 * timestamp lives on the global core-cycle axis, the latency a
 * packet accumulates while waiting for a slow consumer clock lands
 * in its LatencyTrace in core cycles automatically — no unit
 * conversion at the boundary.
 *
 * The partition's two clock sides (ROP/L2 vs DRAM) get their own
 * adapter types so one MemPartition can straddle two domains.
 *
 * Every adapter reports an *accurate per-side* nextEventAt()
 * promise (the earliest absolute core cycle its own tick could
 * move anything), never a whole-component busy/idle bit: the
 * per-domain fast-forward caches these promises and lets each side
 * sleep independently, so the DRAM side of a partition can probe a
 * bank wait while its L2 side — and every SM — sleeps. The promise
 * only needs to be valid right after the adapter's own tick; the
 * owning Gpu declares the delivery paths as TickEngine wake edges.
 */

#ifndef GPULAT_GPU_PORTS_HH
#define GPULAT_GPU_PORTS_HH

#include <memory>
#include <vector>

#include "engine/clocked.hh"
#include "icnt/crossbar.hh"
#include "mem/partition.hh"
#include "mem/request.hh"
#include "simt/core.hh"

namespace gpulat {

/** Ejects request-network packets into partition ROP queues. */
class NetToPartitionPort : public Clocked
{
  public:
    NetToPartitionPort(
        Crossbar<MemRequest> &net,
        std::vector<std::unique_ptr<MemPartition>> &partitions)
        : net_(net), partitions_(partitions)
    {
    }

    void
    tick(Cycle now) override
    {
        for (unsigned p = 0; p < net_.numDst(); ++p) {
            if (net_.deliverable(p, now) &&
                partitions_[p]->canAccept()) {
                partitions_[p]->accept(now, net_.eject(p));
            }
        }
    }

    Cycle
    nextEventAt(Cycle now) const override
    {
        (void)now;
        return net_.nextDeliveryAt();
    }

  private:
    Crossbar<MemRequest> &net_;
    std::vector<std::unique_ptr<MemPartition>> &partitions_;
};

/** Injects ready partition responses into the response network. */
class PartitionToNetPort : public Clocked
{
  public:
    PartitionToNetPort(
        std::vector<std::unique_ptr<MemPartition>> &partitions,
        Crossbar<MemRequest> &net)
        : partitions_(partitions), net_(net)
    {
    }

    void
    tick(Cycle now) override
    {
        for (unsigned p = 0; p < partitions_.size(); ++p) {
            if (!partitions_[p]->responseReady(now))
                continue;
            const unsigned dst = partitions_[p]->peekResponseSm();
            if (!net_.canInject(p))
                continue;
            MemRequest resp = partitions_[p]->popResponse();
            const bool ok = net_.inject(now, p, dst, std::move(resp));
            GPULAT_ASSERT(ok, "response inject after canInject");
        }
    }

    Cycle
    nextEventAt(Cycle now) const override
    {
        (void)now;
        Cycle e = kNoCycle;
        for (const auto &part : partitions_)
            e = std::min(e, part->nextResponseAt());
        return e;
    }

  private:
    std::vector<std::unique_ptr<MemPartition>> &partitions_;
    Crossbar<MemRequest> &net_;
};

/** Ejects response-network packets into their SM's writeback path. */
class NetToSmPort : public Clocked
{
  public:
    NetToSmPort(Crossbar<MemRequest> &net,
                std::vector<std::unique_ptr<SmCore>> &sms)
        : net_(net), sms_(sms)
    {
    }

    void
    tick(Cycle now) override
    {
        for (unsigned s = 0; s < net_.numDst(); ++s) {
            if (net_.deliverable(s, now))
                sms_[s]->acceptResponse(now, net_.eject(s));
        }
    }

    Cycle
    nextEventAt(Cycle now) const override
    {
        (void)now;
        return net_.nextDeliveryAt();
    }

  private:
    Crossbar<MemRequest> &net_;
    std::vector<std::unique_ptr<SmCore>> &sms_;
};

/** DRAM-side view of a partition (completions + scheduling). */
class PartitionMemSide : public Clocked
{
  public:
    explicit PartitionMemSide(MemPartition &part) : part_(part) {}
    void tick(Cycle now) override { part_.tickMemSide(now); }
    Cycle
    nextEventAt(Cycle now) const override
    {
        return part_.nextMemEventAt(now);
    }
    void
    fastForward(Cycle from, Cycle to) override
    {
        part_.skipMemSide(from, to);
    }

  private:
    MemPartition &part_;
};

/** ROP/L2-side view of a partition (front queues + pipes). */
class PartitionL2Side : public Clocked
{
  public:
    explicit PartitionL2Side(MemPartition &part) : part_(part) {}
    void tick(Cycle now) override { part_.tickL2Side(now); }
    Cycle
    nextEventAt(Cycle now) const override
    {
        return part_.nextL2EventAt(now);
    }

  private:
    MemPartition &part_;
};

/**
 * Grid dispatcher: up to one block per SM per core cycle,
 * round-robin over SMs. The rotor advances every core cycle
 * (dispatched or not, grid exhausted or not) exactly like the
 * hand-written loop it replaced, so launch-to-launch state is
 * bit-identical — fastForward() keeps it rotating through skipped
 * windows.
 */
class BlockDispatcher : public Clocked
{
  public:
    explicit BlockDispatcher(
        std::vector<std::unique_ptr<SmCore>> &sms)
        : sms_(sms)
    {
    }

    /** Arm the dispatcher for a new grid (the rotor persists). */
    void
    beginGrid(unsigned num_blocks)
    {
        numBlocks_ = num_blocks;
        nextBlock_ = 0;
    }

    bool allDispatched() const { return nextBlock_ >= numBlocks_; }
    unsigned nextBlock() const { return nextBlock_; }
    unsigned numBlocks() const { return numBlocks_; }

    void tick(Cycle now) override;
    Cycle nextEventAt(Cycle now) const override;
    void fastForward(Cycle from, Cycle to) override;

  private:
    std::vector<std::unique_ptr<SmCore>> &sms_;
    unsigned numBlocks_ = 0;
    unsigned nextBlock_ = 0;
    unsigned rr_ = 0;
};

} // namespace gpulat

#endif // GPULAT_GPU_PORTS_HH
