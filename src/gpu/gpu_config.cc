#include "gpu/gpu_config.hh"

#include <cctype>

#include "common/log.hh"

namespace gpulat {

namespace {

/** Baseline every preset starts from. */
GpuConfig
baseConfig()
{
    GpuConfig cfg;
    cfg.sm.lineBytes = 128;
    cfg.sm.l1Cache.lineBytes = 128;
    cfg.partition.lineBytes = 128;
    cfg.partition.l2Cache.lineBytes = 128;
    cfg.partition.l2Cache.write = WritePolicy::WriteBack;
    cfg.sm.l1Cache.write = WritePolicy::WriteThrough;
    return cfg;
}

} // namespace

GpuConfig
makeGF106()
{
    GpuConfig cfg = baseConfig();
    cfg.name = "gf106";
    cfg.numSms = 4;
    cfg.numPartitions = 2;

    cfg.sm.warpSlots = 48;
    cfg.sm.numSchedulers = 2;
    cfg.sm.maxBlocksPerSm = 8;

    // Idle-path calibration targets (Table I, Fermi column):
    //   L1 hit 45, L2 hit 310, DRAM 685 measured cycles.
    cfg.sm.smBaseLatency = 12;
    cfg.sm.l1HitLatency = 33;
    cfg.sm.l1MissLatency = 4;
    cfg.sm.l1Enabled = true;
    cfg.sm.l1CachesGlobal = true;
    cfg.sm.l1CachesLocal = true;
    cfg.sm.l1Cache.capacityBytes = 16 * 1024;
    cfg.sm.l1Cache.ways = 4;

    cfg.icntLatency = 40;

    cfg.partition.ropLatency = 24;
    cfg.partition.l2QueueLatency = 2;
    cfg.partition.l2HitLatency = 186;
    cfg.partition.l2MissLatency = 30;
    cfg.partition.l2Cache.capacityBytes = 128 * 1024;
    cfg.partition.l2Cache.ways = 8;
    cfg.partition.returnQueueLatency = 2;

    cfg.partition.dram.timing.tRCD = 60;
    cfg.partition.dram.timing.tRP = 60;
    cfg.partition.dram.timing.tCAS = 60;
    cfg.partition.dram.timing.tBurst = 4;
    cfg.partition.dram.timing.tExtra = 457;
    cfg.partition.dramCmdInterval = 2;

    return cfg;
}

GpuConfig
makeGT200()
{
    GpuConfig cfg = baseConfig();
    cfg.name = "gt200";
    cfg.numSms = 4;
    cfg.numPartitions = 4;

    cfg.sm.warpSlots = 32;
    cfg.sm.numSchedulers = 1;
    cfg.sm.maxBlocksPerSm = 8;

    // Tesla: global/local accesses are uncached; the only plateau is
    // DRAM at ~440 cycles.
    cfg.sm.l1Enabled = false;
    cfg.sm.smBaseLatency = 14;
    cfg.sm.l1MissLatency = 6;

    cfg.icntLatency = 48;

    cfg.partition.l2Enabled = false;
    cfg.partition.ropLatency = 24;
    cfg.partition.returnQueueLatency = 2;

    cfg.partition.dram.timing.tRCD = 50;
    cfg.partition.dram.timing.tRP = 50;
    cfg.partition.dram.timing.tCAS = 50;
    cfg.partition.dram.timing.tBurst = 4;
    cfg.partition.dram.timing.tExtra = 236;
    cfg.partition.dramCmdInterval = 2;

    return cfg;
}

GpuConfig
makeGK104()
{
    GpuConfig cfg = baseConfig();
    cfg.name = "gk104";
    cfg.numSms = 8;
    cfg.numPartitions = 4;

    cfg.sm.warpSlots = 64;
    cfg.sm.numSchedulers = 4;
    cfg.sm.maxBlocksPerSm = 16;

    // Kepler: the L1 serves *only* local accesses (Table I: L1 30
    // via local chase); global loads go straight to the L2 (175) /
    // DRAM (300).
    cfg.sm.l1Enabled = true;
    cfg.sm.l1CachesGlobal = false;
    cfg.sm.l1CachesLocal = true;
    cfg.sm.smBaseLatency = 8;
    cfg.sm.l1HitLatency = 22;
    cfg.sm.l1MissLatency = 3;
    cfg.sm.l1Cache.capacityBytes = 16 * 1024;
    cfg.sm.l1Cache.ways = 4;

    cfg.icntLatency = 24;

    cfg.partition.ropLatency = 16;
    cfg.partition.l2QueueLatency = 2;
    cfg.partition.l2HitLatency = 96;
    cfg.partition.l2MissLatency = 16;
    cfg.partition.l2Cache.capacityBytes = 128 * 1024;
    cfg.partition.l2Cache.ways = 8;
    cfg.partition.returnQueueLatency = 2;

    cfg.partition.dram.timing.tRCD = 24;
    cfg.partition.dram.timing.tRP = 24;
    cfg.partition.dram.timing.tCAS = 24;
    cfg.partition.dram.timing.tBurst = 4;
    cfg.partition.dram.timing.tExtra = 173;
    cfg.partition.dramCmdInterval = 2;

    return cfg;
}

GpuConfig
makeGM107()
{
    GpuConfig cfg = baseConfig();
    cfg.name = "gm107";
    cfg.numSms = 5;
    cfg.numPartitions = 2;

    cfg.sm.warpSlots = 64;
    cfg.sm.numSchedulers = 4;
    cfg.sm.maxBlocksPerSm = 16;

    // Maxwell: the classic L1 data cache is gone entirely; both
    // global and local start at the L2 (194) / DRAM (350), slower
    // than Kepler on every level.
    cfg.sm.l1Enabled = false;
    cfg.sm.smBaseLatency = 10;
    cfg.sm.l1MissLatency = 4;

    cfg.icntLatency = 28;

    cfg.partition.ropLatency = 18;
    cfg.partition.l2QueueLatency = 2;
    cfg.partition.l2HitLatency = 102;
    cfg.partition.l2MissLatency = 18;
    cfg.partition.l2Cache.capacityBytes = 1024 * 1024;
    cfg.partition.l2Cache.ways = 16;
    cfg.partition.returnQueueLatency = 2;

    cfg.partition.dram.timing.tRCD = 30;
    cfg.partition.dram.timing.tRP = 30;
    cfg.partition.dram.timing.tCAS = 30;
    cfg.partition.dram.timing.tBurst = 4;
    cfg.partition.dram.timing.tExtra = 201;
    cfg.partition.dramCmdInterval = 2;

    return cfg;
}

GpuConfig
makeGF100Sim()
{
    // Start from the calibrated Fermi latencies and scale the
    // machine up to the GPGPU-Sim GF100 configuration the paper
    // used: 15 SMs, 48 warps/SM, 6 memory partitions, FR-FCFS.
    GpuConfig cfg = makeGF106();
    cfg.name = "gf100-sim";
    cfg.numSms = 15;
    cfg.numPartitions = 6;
    cfg.sm.warpSlots = 48;
    cfg.sm.schedPolicy = SchedPolicy::GTO;
    cfg.partition.sched = DramSchedPolicy::FRFCFS;
    cfg.partition.dramQueueSize = 64;
    cfg.deviceMemBytes = 512ull * 1024 * 1024;
    return cfg;
}

const std::vector<std::string> &
configNames()
{
    static const std::vector<std::string> names{
        "gt200", "gf106", "gk104", "gm107", "gf100-sim"};
    return names;
}

namespace {

/** Lowercase with '-'/'_' stripped, so CLI spellings like
 *  "gf100sim" and "GF100-sim" resolve to the same preset. */
std::string
canonicalName(const std::string &name)
{
    std::string out;
    for (const char c : name) {
        if (c == '-' || c == '_')
            continue;
        out += static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    }
    return out;
}

} // namespace

GpuConfig
makeConfig(const std::string &name)
{
    const std::string wanted = canonicalName(name);
    if (wanted == "gt200") return makeGT200();
    if (wanted == "gf106") return makeGF106();
    if (wanted == "gk104") return makeGK104();
    if (wanted == "gm107") return makeGM107();
    if (wanted == "gf100sim") return makeGF100Sim();
    std::string known;
    for (const auto &n : configNames())
        known += (known.empty() ? "" : ", ") + n;
    fatal("unknown GPU config '", name, "' (known: ", known, ")");
}

} // namespace gpulat
