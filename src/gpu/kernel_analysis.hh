/**
 * @file
 * Launch-time safety analysis for SM-parallel ticking.
 *
 * SMs execute instructions *functionally at issue*, so two SMs in
 * different tick groups may race on device memory if their blocks'
 * global stores can touch the same lines a sibling block loads or
 * stores. This analysis proves, per launch, that they cannot: it
 * abstractly interprets the kernel over affine values
 * `tidCoeff*tid + ctaCoeff*ctaid + base` (parameters are concrete at
 * launch, so array bases fold into `base`) and checks that every
 * global store footprint is injective across blocks and disjoint
 * from — or block-private w.r.t. — every global load.
 *
 * The verdict gates TickEngine::setSerialized() on the SM cores:
 * kernels that pass tick SM-parallel, kernels that don't (loops,
 * atomics, data-dependent addressing) fall back to coordinator
 * ticking for that launch. Either way results are byte-identical to
 * the serial schedule; the analysis only decides how much
 * parallelism is safe to use.
 */

#ifndef GPULAT_GPU_KERNEL_ANALYSIS_HH
#define GPULAT_GPU_KERNEL_ANALYSIS_HH

#include <array>
#include <string>

#include "isa/isa.hh"
#include "isa/kernel.hh"

namespace gpulat {

/** Outcome of the launch-time SM-parallel safety analysis. */
struct SmParallelVerdict
{
    /** True if SMs may tick concurrently during this launch. */
    bool safe = false;
    /** Human-readable justification (stall reports / tests). */
    std::string reason;
};

/**
 * Decide whether a launch can tick its SMs concurrently.
 *
 * Conservative: any construct the affine domain cannot model
 * (backward branches, atomics, data-dependent or post-reconvergence
 * addressing, non-affine store addresses, potentially overlapping
 * cross-block footprints) yields `safe == false`. Local and shared
 * accesses are always block/thread-private and never serialize.
 */
SmParallelVerdict
analyzeSmParallelSafety(const Kernel &kernel, unsigned numBlocks,
                        unsigned threadsPerBlock,
                        const std::array<RegValue, kMaxParams> &params);

} // namespace gpulat

#endif // GPULAT_GPU_KERNEL_ANALYSIS_HH
