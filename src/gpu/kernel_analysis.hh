/**
 * @file
 * Launch-time safety analysis for SM-parallel ticking.
 *
 * SMs execute instructions *functionally at issue*, so two SMs in
 * different tick groups may race on device memory if their blocks'
 * global stores can touch the same bytes a sibling block loads or
 * stores. This pass proves, per launch, that they cannot: it runs a
 * worklist abstract interpretation over the kernel's CFG in a
 * stride-interval affine domain — per register a sum of terms
 * `coeff * ((tid|ctaid >> shift) & mask)` plus a stride-interval
 * constant part — with widening at loop heads, so loops with affine
 * induction variables (reduction trees, tiled gemm, grid-stride
 * loops) analyze precisely instead of failing on the backward
 * branch.
 *
 * Cross-block disjointness of two accesses is decided by (1) plain
 * whole-grid range disjointness, or (2) a mixed-radix digit
 * argument: if the access form's digits (byte offset, each term,
 * the stride-interval part) nest — each coefficient at least the
 * previous digit's span — then a byte address uniquely determines
 * every digit, and if the ctaid bit-slices cover every bit ctaid
 * can set, equal cta digits force equal blocks. Interval arithmetic
 * is checked/saturating int64 (±inf sentinels); any overflow
 * degrades to an unbounded interval, so huge grids can only lose
 * precision, never "prove" disjointness by wrapping.
 *
 * Atomics pass the analysis unconditionally: their functional
 * read-modify-write is forwarded to the owning partition's accept
 * hook (they are already "serviced at the L2" in the timing model),
 * which runs under the coordinator barrier, so their order — and
 * therefore every verdict — is schedule-invariant.
 *
 * The verdict gates TickEngine::setSerialized() on the SM cores:
 * kernels that pass tick SM-parallel, kernels that don't
 * (data-dependent store addressing, provably overlapping footprints)
 * fall back to coordinator ticking for that launch. Either way
 * results are byte-identical to the serial schedule; the analysis
 * only decides how much parallelism is safe to use.
 */

#ifndef GPULAT_GPU_KERNEL_ANALYSIS_HH
#define GPULAT_GPU_KERNEL_ANALYSIS_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "isa/isa.hh"
#include "isa/kernel.hh"

namespace gpulat {

/** @name Checked/saturating int64 helpers
 *
 * INT64_MIN/INT64_MAX double as -inf/+inf sentinels. A sentinel
 * operand propagates; a fresh overflow saturates to the sentinel of
 * the overflow direction. Interval transfer functions additionally
 * degrade the whole interval to unbounded on any fresh overflow
 * (see StrideInterval), because a wrapped concrete value is *not*
 * inside a one-sided-saturated interval.
 * @{
 */
inline constexpr std::int64_t kNegInf = INT64_MIN;
inline constexpr std::int64_t kPosInf = INT64_MAX;

std::int64_t satAdd(std::int64_t a, std::int64_t b);
std::int64_t satSub(std::int64_t a, std::int64_t b);
std::int64_t satMul(std::int64_t a, std::int64_t b);
/** @} */

/**
 * The numeric lattice of the analysis: the set
 * `{lo + k*stride : k >= 0} ∩ [lo, hi]` (stride 0 means the
 * singleton `lo == hi`). `lo > hi` encodes the empty set (an
 * unreachable refinement). Bounds use the ±inf sentinels.
 */
struct StrideInterval
{
    std::int64_t lo = 0;
    std::int64_t hi = 0;
    std::uint64_t stride = 0;

    static StrideInterval constant(std::int64_t v)
    {
        return StrideInterval{v, v, 0};
    }
    /** The unbounded interval (top of the lattice). */
    static StrideInterval full()
    {
        return StrideInterval{kNegInf, kPosInf, 1};
    }

    bool empty() const { return lo > hi; }
    bool singleton() const { return lo == hi; }
    bool bounded() const { return lo != kNegInf && hi != kPosInf; }

    /** Clamp `hi` onto the stride grid anchored at `lo`. */
    StrideInterval normalized() const;

    static StrideInterval add(const StrideInterval &a,
                              const StrideInterval &b);
    static StrideInterval sub(const StrideInterval &a,
                              const StrideInterval &b);
    static StrideInterval mulConst(const StrideInterval &a,
                                   std::int64_t m);
    /** Logical shift right by @p k (uint64 semantics). */
    static StrideInterval shrConst(const StrideInterval &a,
                                   unsigned k);
    static StrideInterval andConst(const StrideInterval &a,
                                   std::int64_t mask);
    /** Least upper bound. */
    static StrideInterval join(const StrideInterval &a,
                               const StrideInterval &b);
    /** Widening: escaping bounds jump straight to ±inf. */
    static StrideInterval widen(const StrideInterval &prev,
                                const StrideInterval &next);
    /** Intersect with `value cmp rhs` (may come back empty). */
    static StrideInterval meetCmp(const StrideInterval &a, CmpOp cmp,
                                  std::int64_t rhs);

    bool operator==(const StrideInterval &o) const
    {
        return lo == o.lo && hi == o.hi && stride == o.stride;
    }
};

/** Whole-grid byte range one global access can touch. */
struct FootprintRange
{
    std::int64_t lo = 0; ///< inclusive (kNegInf = unbounded)
    std::int64_t hi = 0; ///< exclusive (kPosInf = unbounded)
    bool store = false;
    /** Forwarded atomic: never a schedule hazard (see file header). */
    bool atomic = false;
};

/** One global access site, for reports and `gpulat analyze`. */
struct AccessFootprint
{
    std::uint32_t pc = 0;
    bool store = false;
    bool atomic = false;
    /** Address was resolved by the affine domain. */
    bool affine = false;
    /** Printable affine form, e.g. "8*tid + 2048*(ctaid>>2) + c". */
    std::string form;
    /** Byte interval of block 0 (cta terms pinned to 0). */
    std::int64_t blockLo = 0;
    std::int64_t blockHi = 0;
    /** Whole-grid byte interval. */
    std::int64_t gridLo = 0;
    std::int64_t gridHi = 0;
};

/** Outcome of the launch-time SM-parallel safety analysis. */
struct SmParallelVerdict
{
    /** True if SMs may tick concurrently during this launch. */
    bool safe = false;
    /** Human-readable justification (stall reports / tests). */
    std::string reason;
    /** Step-by-step derivation (printed by `gpulat analyze`). */
    std::vector<std::string> reasonChain;

    /**
     * @name Whole-grid global footprint (cross-launch composition)
     *
     * When `footprintKnown`, @p footprint holds a superset byte
     * range for every non-atomic global access the launch can
     * perform, across its whole grid. The serving layer composes
     * verdicts of concurrently resident launches with
     * launchesMayConflict(): launches whose stores provably miss
     * each other's accesses may tick SM-parallel side by side.
     * Defaults are the conservative direction (unknown footprint,
     * assume stores), which is what every early-unsafe path leaves
     * in place. Forwarded atomics are excluded: their functional
     * execution happens under the coordinator barrier in arrival
     * order, which no tick schedule can perturb.
     * @{
     */
    bool footprintKnown = false;
    bool hasStore = true;
    std::vector<FootprintRange> footprint;
    /** @} */

    /** Kernel contains atomics (forwarded to the partition tick). */
    bool atomicsForwarded = false;

    /** @name Analysis introspection (tests, `gpulat analyze`) @{ */
    std::vector<AccessFootprint> accesses;
    unsigned cfgBlocks = 0;
    unsigned loopHeads = 0;
    unsigned fixpointIterations = 0;
    /** @} */
};

/**
 * Can two concurrently resident launches race on device memory?
 * True unless both are store-free, or both footprints are known and
 * neither's stores overlap any access of the other. Forwarded
 * atomics never conflict. Symmetric.
 */
bool launchesMayConflict(const SmParallelVerdict &a,
                         const SmParallelVerdict &b);

/**
 * Decide whether a launch can tick its SMs concurrently.
 *
 * Conservative: any construct the domain cannot model
 * (data-dependent store addresses, potentially overlapping
 * cross-block footprints, a non-converging fixpoint) yields
 * `safe == false`. Local and shared accesses are always
 * block/thread-private and never serialize; atomics are exempt via
 * partition forwarding.
 */
SmParallelVerdict
analyzeSmParallelSafety(const Kernel &kernel, unsigned numBlocks,
                        unsigned threadsPerBlock,
                        const std::array<RegValue, kMaxParams> &params);

} // namespace gpulat

#endif // GPULAT_GPU_KERNEL_ANALYSIS_HH
