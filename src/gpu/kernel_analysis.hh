/**
 * @file
 * Launch-time safety analysis for SM-parallel ticking.
 *
 * SMs execute instructions *functionally at issue*, so two SMs in
 * different tick groups may race on device memory if their blocks'
 * global stores can touch the same lines a sibling block loads or
 * stores. This analysis proves, per launch, that they cannot: it
 * abstractly interprets the kernel over affine values
 * `tidCoeff*tid + ctaCoeff*ctaid + base` (parameters are concrete at
 * launch, so array bases fold into `base`) and checks that every
 * global store footprint is injective across blocks and disjoint
 * from — or block-private w.r.t. — every global load.
 *
 * The verdict gates TickEngine::setSerialized() on the SM cores:
 * kernels that pass tick SM-parallel, kernels that don't (loops,
 * atomics, data-dependent addressing) fall back to coordinator
 * ticking for that launch. Either way results are byte-identical to
 * the serial schedule; the analysis only decides how much
 * parallelism is safe to use.
 */

#ifndef GPULAT_GPU_KERNEL_ANALYSIS_HH
#define GPULAT_GPU_KERNEL_ANALYSIS_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "isa/isa.hh"
#include "isa/kernel.hh"

namespace gpulat {

/** Whole-grid byte range one global access can touch. */
struct FootprintRange
{
    std::int64_t lo = 0; ///< inclusive
    std::int64_t hi = 0; ///< exclusive
    bool store = false;
};

/** Outcome of the launch-time SM-parallel safety analysis. */
struct SmParallelVerdict
{
    /** True if SMs may tick concurrently during this launch. */
    bool safe = false;
    /** Human-readable justification (stall reports / tests). */
    std::string reason;

    /**
     * @name Whole-grid global footprint (cross-launch composition)
     *
     * When `footprintKnown`, @p footprint holds a superset byte
     * range for every global access the launch can perform, across
     * its whole grid. The serving layer composes verdicts of
     * concurrently resident launches with launchesMayConflict():
     * launches whose stores provably miss each other's accesses may
     * tick SM-parallel side by side. Defaults are the conservative
     * direction (unknown footprint, assume stores), which is what
     * every early-unsafe path leaves in place.
     * @{
     */
    bool footprintKnown = false;
    bool hasStore = true;
    std::vector<FootprintRange> footprint;
    /** @} */
};

/**
 * Can two concurrently resident launches race on device memory?
 * True unless both are store-free, or both footprints are known and
 * neither's stores overlap any access of the other. Symmetric.
 */
bool launchesMayConflict(const SmParallelVerdict &a,
                         const SmParallelVerdict &b);

/**
 * Decide whether a launch can tick its SMs concurrently.
 *
 * Conservative: any construct the affine domain cannot model
 * (backward branches, atomics, data-dependent or post-reconvergence
 * addressing, non-affine store addresses, potentially overlapping
 * cross-block footprints) yields `safe == false`. Local and shared
 * accesses are always block/thread-private and never serialize.
 */
SmParallelVerdict
analyzeSmParallelSafety(const Kernel &kernel, unsigned numBlocks,
                        unsigned threadsPerBlock,
                        const std::array<RegValue, kMaxParams> &params);

} // namespace gpulat

#endif // GPULAT_GPU_KERNEL_ANALYSIS_HH
