#include "gpu/kernel_analysis.hh"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <numeric>
#include <set>
#include <sstream>
#include <vector>

#include "isa/cfg.hh"

namespace gpulat {

// ------------------------------------------------------ checked int64

namespace {

bool
addOv(std::int64_t a, std::int64_t b, std::int64_t &out)
{
    return __builtin_add_overflow(a, b, &out);
}

bool
mulOv(std::int64_t a, std::int64_t b, std::int64_t &out)
{
    return __builtin_mul_overflow(a, b, &out);
}

bool
isInf(std::int64_t v)
{
    return v == kNegInf || v == kPosInf;
}

} // namespace

std::int64_t
satAdd(std::int64_t a, std::int64_t b)
{
    if (a == kNegInf || b == kNegInf)
        return kNegInf;
    if (a == kPosInf || b == kPosInf)
        return kPosInf;
    std::int64_t out;
    if (addOv(a, b, out))
        return (a > 0) ? kPosInf : kNegInf;
    return out;
}

std::int64_t
satSub(std::int64_t a, std::int64_t b)
{
    if (b == kNegInf)
        return a == kNegInf ? 0 : kPosInf;
    if (b == kPosInf)
        return a == kPosInf ? 0 : kNegInf;
    return satAdd(a, -b); // b finite, so -b cannot overflow
}

std::int64_t
satMul(std::int64_t a, std::int64_t b)
{
    if (a == 0 || b == 0)
        return 0;
    const bool neg = (a < 0) != (b < 0);
    if (isInf(a) || isInf(b))
        return neg ? kNegInf : kPosInf;
    std::int64_t out;
    if (mulOv(a, b, out))
        return neg ? kNegInf : kPosInf;
    return out;
}

// ------------------------------------------------------ StrideInterval

namespace {

const StrideInterval kEmptyInterval{1, 0, 0};

std::uint64_t
gcdU(std::uint64_t a, std::uint64_t b)
{
    return std::gcd(a, b);
}

/** |a - b| for finite a, b; ~0 on overflow (forces stride 1). */
std::uint64_t
absDist(std::int64_t a, std::int64_t b)
{
    if (isInf(a) || isInf(b))
        return ~std::uint64_t{0};
    std::int64_t d;
    if (__builtin_sub_overflow(a, b, &d))
        return ~std::uint64_t{0};
    return d < 0 ? static_cast<std::uint64_t>(-(d + 1)) + 1
                 : static_cast<std::uint64_t>(d);
}

} // namespace

StrideInterval
StrideInterval::normalized() const
{
    StrideInterval r = *this;
    if (r.empty())
        return r;
    if (r.lo == r.hi) {
        r.stride = 0;
        return r;
    }
    if (r.stride == 0) {
        r.stride = 1;
        return r;
    }
    if (r.bounded()) {
        std::int64_t span;
        if (!__builtin_sub_overflow(r.hi, r.lo, &span)) {
            const auto s = static_cast<std::int64_t>(r.stride);
            r.hi = r.lo + (span / s) * s;
            if (r.lo == r.hi)
                r.stride = 0;
        }
    }
    return r;
}

StrideInterval
StrideInterval::add(const StrideInterval &a, const StrideInterval &b)
{
    if (a.empty() || b.empty())
        return kEmptyInterval;
    StrideInterval r;
    if (a.lo == kNegInf || b.lo == kNegInf) {
        r.lo = kNegInf;
    } else if (addOv(a.lo, b.lo, r.lo)) {
        return full(); // wrapped concrete values escape either bound
    }
    if (a.hi == kPosInf || b.hi == kPosInf) {
        r.hi = kPosInf;
    } else if (addOv(a.hi, b.hi, r.hi)) {
        return full();
    }
    r.stride = gcdU(a.stride, b.stride);
    return r.normalized();
}

StrideInterval
StrideInterval::sub(const StrideInterval &a, const StrideInterval &b)
{
    if (b.empty())
        return kEmptyInterval;
    // Negate b (swapping bounds) then add. -kPosInf == kNegInf+1 is
    // close enough for a sentinel; keep it a sentinel instead.
    StrideInterval nb;
    nb.lo = b.hi == kPosInf ? kNegInf
                            : (b.hi == kNegInf ? kPosInf : -b.hi);
    nb.hi = b.lo == kNegInf ? kPosInf
                            : (b.lo == kPosInf ? kNegInf : -b.lo);
    nb.stride = b.stride;
    return add(a, nb);
}

StrideInterval
StrideInterval::mulConst(const StrideInterval &a, std::int64_t m)
{
    if (a.empty())
        return kEmptyInterval;
    if (m == 0)
        return constant(0);
    const auto scale = [&](std::int64_t v, bool &ov) -> std::int64_t {
        if (isInf(v))
            return (m > 0) == (v == kPosInf) ? kPosInf : kNegInf;
        std::int64_t out;
        ov = ov || mulOv(v, m, out);
        return ov ? 0 : out;
    };
    bool ov = false;
    StrideInterval r;
    if (m > 0) {
        r.lo = scale(a.lo, ov);
        r.hi = scale(a.hi, ov);
    } else {
        r.lo = scale(a.hi, ov);
        r.hi = scale(a.lo, ov);
    }
    if (ov)
        return full();
    const std::uint64_t am =
        m < 0 ? static_cast<std::uint64_t>(-(m + 1)) + 1
              : static_cast<std::uint64_t>(m);
    std::uint64_t stride;
    if (__builtin_mul_overflow(a.stride, am, &stride))
        return full();
    r.stride = stride;
    return r.normalized();
}

StrideInterval
StrideInterval::shrConst(const StrideInterval &a, unsigned k)
{
    if (a.empty())
        return kEmptyInterval;
    k &= 63;
    if (k == 0)
        return a;
    // Logical uint64 shift: a negative int64 comes back huge and
    // positive, so all we know without a sign bound is "non-negative"
    // (k >= 1 clears the sign bit).
    if (a.lo < 0)
        return StrideInterval{0, kPosInf, 1};
    StrideInterval r;
    r.lo = a.lo >> k;
    r.hi = a.hi == kPosInf ? kPosInf : (a.hi >> k);
    // (lo + j*s) >> k == (lo >> k) + j*(s >> k) iff 2^k divides s.
    if (a.stride != 0 && (a.stride & ((std::uint64_t{1} << k) - 1)) == 0)
        r.stride = a.stride >> k;
    else
        r.stride = r.lo == r.hi ? 0 : 1;
    return r.normalized();
}

StrideInterval
StrideInterval::andConst(const StrideInterval &a, std::int64_t mask)
{
    if (a.empty())
        return kEmptyInterval;
    if (mask == 0)
        return constant(0);
    if (mask == -1)
        return a;
    if (mask > 0) {
        // Identity when the value provably has no bits above the
        // (contiguous) mask.
        const bool contiguous = (mask & (mask + 1)) == 0;
        if (contiguous && a.lo >= 0 && a.hi != kPosInf && a.hi <= mask)
            return a;
        std::int64_t hi = mask;
        if (a.lo >= 0 && a.hi != kPosInf)
            hi = std::min(a.hi, mask); // x & m <= x for x >= 0
        return StrideInterval{0, hi, hi == 0 ? 0u : 1u}.normalized();
    }
    // Negative mask (top bits set): only useful with a sign bound.
    if (a.lo >= 0)
        return StrideInterval{0, a.hi, a.lo == a.hi ? 0u : 1u}
            .normalized();
    return full();
}

StrideInterval
StrideInterval::join(const StrideInterval &a, const StrideInterval &b)
{
    if (a.empty())
        return b;
    if (b.empty())
        return a;
    StrideInterval r;
    r.lo = std::min(a.lo, b.lo);
    r.hi = std::max(a.hi, b.hi);
    if (isInf(a.lo) || isInf(b.lo)) {
        r.stride = r.lo == r.hi ? 0 : 1;
    } else {
        r.stride =
            gcdU(gcdU(a.stride, b.stride), absDist(a.lo, b.lo));
    }
    return r.normalized();
}

StrideInterval
StrideInterval::widen(const StrideInterval &prev,
                      const StrideInterval &next)
{
    if (prev.empty())
        return next;
    if (next.empty())
        return prev;
    const StrideInterval j = join(prev, next);
    StrideInterval r;
    r.lo = next.lo < prev.lo ? kNegInf : prev.lo;
    r.hi = next.hi > prev.hi ? kPosInf : prev.hi;
    // The stride grid is anchored at lo; once lo escapes to -inf
    // there is no anchor left and only stride 1 stays sound.
    r.stride = r.lo == kNegInf ? 1 : j.stride;
    return r.normalized();
}

StrideInterval
StrideInterval::meetCmp(const StrideInterval &a, CmpOp cmp,
                        std::int64_t rhs)
{
    if (a.empty())
        return a;
    StrideInterval r = a;
    switch (cmp) {
      case CmpOp::EQ:
        if (rhs < a.lo || rhs > a.hi)
            return kEmptyInterval;
        if (a.stride > 1 && !isInf(a.lo) &&
            absDist(rhs, a.lo) % a.stride != 0)
            return kEmptyInterval;
        return constant(rhs);
      case CmpOp::NE:
        if (a.singleton() && a.lo == rhs)
            return kEmptyInterval;
        if (a.lo == rhs && !isInf(a.lo))
            r.lo = satAdd(a.lo, a.stride ? std::int64_t(a.stride) : 1);
        if (a.hi == rhs && !isInf(a.hi))
            r.hi = satSub(a.hi, a.stride ? std::int64_t(a.stride) : 1);
        break;
      case CmpOp::LT:
        if (rhs == kNegInf)
            return kEmptyInterval;
        r.hi = std::min(r.hi, rhs - 1);
        break;
      case CmpOp::LE:
        r.hi = std::min(r.hi, rhs);
        break;
      case CmpOp::GT:
        if (rhs == kPosInf)
            return kEmptyInterval;
        r.lo = std::max(r.lo, rhs + 1);
        break;
      case CmpOp::GE:
        r.lo = std::max(r.lo, rhs);
        break;
    }
    return r.normalized();
}

// ------------------------------------------------------ affine domain

namespace {

/** Access width of every LD/ST/ATOM in this ISA. */
constexpr std::int64_t kAccessBytes = 8;

/** Cap on tracked footprint ranges: more falls back to unknown
 *  (conflict checks are pairwise over two launches' lists). */
constexpr std::size_t kMaxFootprintRanges = 16;

/** Cap on terms per abstract value before degrading to top. */
constexpr std::size_t kMaxTerms = 6;

/** One bit-sliced grid variable: coeff * ((var >> shift) & mask).
 *  mask is contiguous-from-zero (2^w - 1, or ~0 for "no mask"). */
struct Term
{
    enum class Var : std::uint8_t { Tid, Cta };
    Var var = Var::Tid;
    std::uint8_t shift = 0;
    std::uint64_t mask = ~std::uint64_t{0};
    std::int64_t coeff = 0;

    bool sameSlice(const Term &o) const
    {
        return var == o.var && shift == o.shift && mask == o.mask;
    }
    bool operator==(const Term &o) const
    {
        return sameSlice(o) && coeff == o.coeff;
    }
    bool
    sliceLess(const Term &o) const
    {
        if (var != o.var)
            return var < o.var;
        if (shift != o.shift)
            return shift < o.shift;
        return mask < o.mask;
    }
};

/** Abstract register value: sum of terms plus a stride-interval. */
struct AbsVal
{
    bool known = false;
    std::vector<Term> terms; ///< sorted by slice, no zero coeffs
    StrideInterval c = StrideInterval::constant(0);
};

AbsVal
top()
{
    return AbsVal{};
}

AbsVal
constant(std::int64_t v)
{
    AbsVal r;
    r.known = true;
    r.c = StrideInterval::constant(v);
    return r;
}

AbsVal
gridVar(Term::Var var)
{
    AbsVal r;
    r.known = true;
    r.terms.push_back(Term{var, 0, ~std::uint64_t{0}, 1});
    return r;
}

bool
isConstVal(const AbsVal &v)
{
    return v.known && v.terms.empty() && v.c.singleton();
}

bool
isPureInterval(const AbsVal &v)
{
    return v.known && v.terms.empty();
}

AbsVal
addVals(const AbsVal &a, const AbsVal &b)
{
    if (!a.known || !b.known)
        return top();
    AbsVal r;
    r.known = true;
    std::size_t i = 0, j = 0;
    while (i < a.terms.size() || j < b.terms.size()) {
        if (j == b.terms.size() ||
            (i < a.terms.size() && a.terms[i].sliceLess(b.terms[j]))) {
            r.terms.push_back(a.terms[i++]);
        } else if (i == a.terms.size() ||
                   b.terms[j].sliceLess(a.terms[i])) {
            r.terms.push_back(b.terms[j++]);
        } else {
            Term t = a.terms[i++];
            std::int64_t coeff;
            if (addOv(t.coeff, b.terms[j++].coeff, coeff))
                return top();
            t.coeff = coeff;
            if (t.coeff != 0)
                r.terms.push_back(t);
        }
    }
    if (r.terms.size() > kMaxTerms)
        return top();
    r.c = StrideInterval::add(a.c, b.c);
    if (r.c.empty())
        return top();
    return r;
}

AbsVal
mulValConst(const AbsVal &a, std::int64_t m)
{
    if (!a.known)
        return top();
    if (m == 0)
        return constant(0);
    AbsVal r;
    r.known = true;
    for (Term t : a.terms) {
        if (mulOv(t.coeff, m, t.coeff))
            return top();
        r.terms.push_back(t);
    }
    r.c = StrideInterval::mulConst(a.c, m);
    return r;
}

AbsVal
subVals(const AbsVal &a, const AbsVal &b)
{
    return addVals(a, mulValConst(b, -1));
}

AbsVal
mulVals(const AbsVal &a, const AbsVal &b)
{
    if (!a.known || !b.known)
        return top();
    if (isConstVal(a))
        return mulValConst(b, a.c.lo);
    if (isConstVal(b))
        return mulValConst(a, b.c.lo);
    return top();
}

AbsVal
shlVal(const AbsVal &a, std::int64_t k)
{
    if (k < 0 || k > 62)
        return top();
    return mulValConst(a, std::int64_t{1} << k);
}

AbsVal
shrVal(const AbsVal &a, std::int64_t k)
{
    if (!a.known || k < 0 || k > 63)
        return top();
    if (a.terms.empty()) {
        AbsVal r;
        r.known = true;
        r.c = StrideInterval::shrConst(a.c, unsigned(k));
        return r;
    }
    // (var >> s) >> k == var >> (s + k); masks shift along.
    if (a.terms.size() == 1 && a.terms[0].coeff == 1 &&
        a.c.singleton() && a.c.lo == 0) {
        Term t = a.terms[0];
        const unsigned s = t.shift + unsigned(k);
        if (s > 63)
            return constant(0);
        t.shift = static_cast<std::uint8_t>(s);
        t.mask = t.mask >> k;
        if (t.mask == 0)
            return constant(0);
        AbsVal r;
        r.known = true;
        r.terms.push_back(t);
        return r;
    }
    return top();
}

AbsVal
andVal(const AbsVal &a, std::int64_t mask)
{
    if (!a.known)
        return top();
    if (a.terms.empty()) {
        AbsVal r;
        r.known = true;
        r.c = StrideInterval::andConst(a.c, mask);
        return r;
    }
    const bool contiguous = mask > 0 && (mask & (mask + 1)) == 0;
    if (contiguous && a.terms.size() == 1 && a.terms[0].coeff == 1 &&
        a.c.singleton() && a.c.lo == 0) {
        Term t = a.terms[0];
        t.mask &= static_cast<std::uint64_t>(mask);
        if (t.mask == 0)
            return constant(0);
        AbsVal r;
        r.known = true;
        r.terms.push_back(t);
        return r;
    }
    return top();
}

AbsVal
joinVals(const AbsVal &a, const AbsVal &b)
{
    if (!a.known || !b.known)
        return top();
    if (a.terms != b.terms)
        return top();
    AbsVal r;
    r.known = true;
    r.terms = a.terms;
    r.c = StrideInterval::join(a.c, b.c);
    return r;
}

AbsVal
widenVals(const AbsVal &prev, const AbsVal &next)
{
    if (!prev.known || !next.known)
        return top();
    if (prev.terms != next.terms)
        return top();
    AbsVal r;
    r.known = true;
    r.terms = prev.terms;
    r.c = StrideInterval::widen(prev.c, next.c);
    return r;
}

bool
sameVal(const AbsVal &a, const AbsVal &b)
{
    if (a.known != b.known)
        return false;
    if (!a.known)
        return true;
    return a.terms == b.terms && a.c == b.c;
}

// ----------------------------------------------- per-block state

/** Register slot: value plus the guard tag of the writing
 *  instruction (block-local; cleared at block exit). A read under a
 *  mismatched guard sees a lane mixture and degrades to top. */
struct RegState
{
    AbsVal v;
    int tagPred = kNoReg;
    bool tagNeg = false;
};

/** `pred <=> (reg cmp rhs)`, established by an unguarded SETP whose
 *  rhs folded to a constant. Invalidated when reg is rewritten. */
struct PredFact
{
    bool valid = false;
    int reg = kNoReg;
    CmpOp cmp = CmpOp::EQ;
    std::int64_t rhs = 0;

    bool operator==(const PredFact &o) const
    {
        if (valid != o.valid)
            return false;
        if (!valid)
            return true;
        return reg == o.reg && cmp == o.cmp && rhs == o.rhs;
    }
};

struct BlockState
{
    bool reachable = false;
    std::array<RegState, kNumRegs> regs{};
    std::array<PredFact, kNumPreds> facts{};
};

bool
sameState(const BlockState &a, const BlockState &b)
{
    if (a.reachable != b.reachable)
        return false;
    for (int r = 0; r < kNumRegs; ++r) {
        if (!sameVal(a.regs[r].v, b.regs[r].v) ||
            a.regs[r].tagPred != b.regs[r].tagPred ||
            a.regs[r].tagNeg != b.regs[r].tagNeg)
            return false;
    }
    for (int p = 0; p < kNumPreds; ++p) {
        if (!(a.facts[p] == b.facts[p]))
            return false;
    }
    return true;
}

BlockState
joinStates(const BlockState &a, const BlockState &b, bool widening)
{
    if (!a.reachable)
        return b;
    if (!b.reachable)
        return a;
    BlockState r;
    r.reachable = true;
    for (int i = 0; i < kNumRegs; ++i) {
        // Tags are block-local; states arriving at a join carry none.
        r.regs[i].v = widening ? widenVals(a.regs[i].v, b.regs[i].v)
                               : joinVals(a.regs[i].v, b.regs[i].v);
    }
    for (int p = 0; p < kNumPreds; ++p) {
        if (a.facts[p] == b.facts[p])
            r.facts[p] = a.facts[p];
    }
    return r;
}

CmpOp
negateCmp(CmpOp cmp)
{
    switch (cmp) {
      case CmpOp::EQ: return CmpOp::NE;
      case CmpOp::NE: return CmpOp::EQ;
      case CmpOp::LT: return CmpOp::GE;
      case CmpOp::LE: return CmpOp::GT;
      case CmpOp::GT: return CmpOp::LE;
      case CmpOp::GE: return CmpOp::LT;
    }
    return CmpOp::EQ;
}

// ------------------------------------------------------ the analyzer

/** One recorded global-space access site. */
struct GlobalAccess
{
    AbsVal addr;
    bool isStore = false;
    bool isAtomic = false;
    std::uint32_t pc = 0;

    /**
     * Guard constraint: the access only executes on lanes where
     * `guardTerms + guardC cmp rhs` holds (captured from the access
     * instruction's predicate fact). Used to tighten the grid range
     * when the address is a positive scalar multiple of the guarded
     * value — the `@p0 ld [base + 8*gid]` with `p0 = gid < n` idiom.
     */
    bool guarded = false;
    std::vector<Term> guardTerms;
    StrideInterval guardC = StrideInterval::constant(0);
    CmpOp guardCmp = CmpOp::LT;
    std::int64_t guardRhs = 0;
};

class Analyzer
{
  public:
    Analyzer(const Kernel &kernel, unsigned num_blocks,
             unsigned threads_per_block,
             const std::array<RegValue, kMaxParams> &params)
        : kernel_(kernel), numBlocks_(num_blocks),
          threadsPerBlock_(threads_per_block), params_(params),
          tidMax_(threads_per_block ? threads_per_block - 1 : 0),
          ctaMax_(num_blocks ? num_blocks - 1 : 0)
    {
    }

    SmParallelVerdict run();

  private:
    /** Max value a term's digit can take over the whole grid. */
    std::int64_t
    digitMax(const Term &t) const
    {
        const std::uint64_t var_max =
            t.var == Term::Var::Tid ? tidMax_ : ctaMax_;
        const std::uint64_t raw = var_max >> t.shift;
        const std::uint64_t m = std::min<std::uint64_t>(raw, t.mask);
        return m > std::uint64_t(kPosInf) ? kPosInf
                                          : std::int64_t(m);
    }

    /** Whole-grid [lo, hi) byte range of an access (sentinel bounds
     *  when any product/sum leaves int64). */
    FootprintRange
    gridRange(const GlobalAccess &a, bool cta_at_zero = false) const
    {
        const AbsVal &addr = a.addr;
        std::int64_t lo = addr.c.lo;
        std::int64_t hi = satAdd(addr.c.hi, kAccessBytes);
        for (const Term &t : addr.terms) {
            if (cta_at_zero && t.var == Term::Var::Cta)
                continue;
            const std::int64_t ext = satMul(t.coeff, digitMax(t));
            if (t.coeff >= 0)
                hi = satAdd(hi, ext);
            else
                lo = satAdd(lo, ext);
        }

        // Guard refinement: when the address terms are a positive
        // scalar multiple m of the guard value's terms, the guard
        // bounds the whole term sum. For `terms + c cmp K` a lane can
        // only reach terms <= K' - c.lo (upper guards) or
        // terms >= K' - c.hi (lower guards), so the address stays
        // within m * bound + addr.c + access width.
        if (!cta_at_zero && a.guarded && !a.guardTerms.empty() &&
            addr.known && addr.terms.size() == a.guardTerms.size()) {
            std::int64_t m = 0;
            bool ok = true;
            for (std::size_t i = 0; i < addr.terms.size(); ++i) {
                const Term &at = addr.terms[i];
                const Term &gt = a.guardTerms[i];
                if (!at.sameSlice(gt) || gt.coeff == 0 ||
                    at.coeff % gt.coeff != 0) {
                    ok = false;
                    break;
                }
                const std::int64_t ratio = at.coeff / gt.coeff;
                if (ratio <= 0 || (m != 0 && ratio != m)) {
                    ok = false;
                    break;
                }
                m = ratio;
            }
            if (ok && m > 0) {
                const bool upper = a.guardCmp == CmpOp::LT ||
                                   a.guardCmp == CmpOp::LE ||
                                   a.guardCmp == CmpOp::EQ;
                const bool lower = a.guardCmp == CmpOp::GT ||
                                   a.guardCmp == CmpOp::GE ||
                                   a.guardCmp == CmpOp::EQ;
                if (upper) {
                    std::int64_t bound = a.guardRhs;
                    if (a.guardCmp == CmpOp::LT)
                        bound = satSub(bound, 1);
                    bound = satSub(bound, a.guardC.lo);
                    const std::int64_t hi2 = satAdd(
                        satAdd(satMul(m, bound), addr.c.hi),
                        kAccessBytes);
                    hi = std::min(hi, hi2);
                }
                if (lower) {
                    std::int64_t bound = a.guardRhs;
                    if (a.guardCmp == CmpOp::GT)
                        bound = satAdd(bound, 1);
                    bound = satSub(bound, a.guardC.hi);
                    const std::int64_t lo2 =
                        satAdd(satMul(m, bound), addr.c.lo);
                    lo = std::max(lo, lo2);
                }
                if (lo > hi)
                    hi = lo; // guard proves the access never fires
            }
        }
        return FootprintRange{lo, hi, false, false};
    }

    bool crossBlockDisjoint(const GlobalAccess &a,
                            const GlobalAccess &b) const;
    bool digitRuleDisjoint(const GlobalAccess &a,
                           const GlobalAccess &b) const;

    AbsVal readReg(const BlockState &state, int reg,
                   const Instruction &inst) const
    {
        if (reg < 0 || reg >= kNumRegs)
            return top();
        const RegState &rs = state.regs[reg];
        if (rs.tagPred != kNoReg &&
            (inst.pred != rs.tagPred || inst.predNeg != rs.tagNeg))
            return top();
        return rs.v;
    }

    void
    writeReg(BlockState &state, const Instruction &inst, AbsVal v) const
    {
        if (inst.dst == kNoReg)
            return;
        RegState &rs = state.regs[inst.dst];
        rs.v = std::move(v);
        rs.tagPred = inst.pred;
        rs.tagNeg = inst.predNeg;
        for (PredFact &f : state.facts) {
            if (f.valid && f.reg == inst.dst)
                f.valid = false;
        }
    }

    AbsVal
    operandB(const BlockState &state, const Instruction &inst) const
    {
        if (inst.useImm)
            return constant(inst.imm);
        return readReg(state, inst.srcB, inst);
    }

    /** Interpret one block; optionally record global accesses. */
    BlockState transferBlock(std::uint32_t block, BlockState state,
                             std::vector<GlobalAccess> *record) const;

    /** Refine @p state along a branch edge where pred @p p is
     *  @p truth. Returns false if the edge is unreachable. */
    bool refineEdge(BlockState &state, int p, bool truth) const;

    const Kernel &kernel_;
    unsigned numBlocks_;
    unsigned threadsPerBlock_;
    const std::array<RegValue, kMaxParams> &params_;
    std::uint64_t tidMax_;
    std::uint64_t ctaMax_;

    Cfg cfg_;
};

BlockState
Analyzer::transferBlock(std::uint32_t block, BlockState state,
                        std::vector<GlobalAccess> *record) const
{
    const CfgBlock &bb = cfg_.blocks[block];
    for (std::uint32_t pc = bb.first; pc <= bb.last; ++pc) {
        const Instruction &inst = kernel_.code[pc];

        if (inst.isMemory() && inst.space == MemSpace::Global &&
            record) {
            GlobalAccess access;
            access.addr = addVals(readReg(state, inst.srcA, inst),
                                  constant(inst.imm));
            access.isStore = inst.isStore();
            access.isAtomic = inst.isAtomic();
            access.pc = pc;
            if (inst.pred >= 0 && inst.pred < kNumPreds &&
                state.facts[inst.pred].valid) {
                const PredFact &fact = state.facts[inst.pred];
                const RegState &src = state.regs[fact.reg];
                if (src.tagPred == kNoReg && src.v.known &&
                    !src.v.c.empty()) {
                    access.guarded = true;
                    access.guardTerms = src.v.terms;
                    access.guardC = src.v.c;
                    access.guardCmp = inst.predNeg
                                          ? negateCmp(fact.cmp)
                                          : fact.cmp;
                    access.guardRhs = fact.rhs;
                }
            }
            record->push_back(std::move(access));
        }

        switch (inst.op) {
          case Opcode::MOV:
            if (inst.param != kNoReg)
                writeReg(state, inst,
                         constant(std::int64_t(params_[inst.param])));
            else if (inst.useImm)
                writeReg(state, inst, constant(inst.imm));
            else
                writeReg(state, inst, readReg(state, inst.srcA, inst));
            break;
          case Opcode::S2R:
            switch (inst.sreg) {
              case SpecialReg::Tid:
                writeReg(state, inst, gridVar(Term::Var::Tid));
                break;
              case SpecialReg::Ctaid:
                writeReg(state, inst, gridVar(Term::Var::Cta));
                break;
              case SpecialReg::Ntid:
                writeReg(state, inst, constant(threadsPerBlock_));
                break;
              case SpecialReg::Nctaid:
                writeReg(state, inst, constant(numBlocks_));
                break;
              case SpecialReg::LaneId:
                // Warps are formed from consecutive tids.
                writeReg(state, inst,
                         andVal(gridVar(Term::Var::Tid), 31));
                break;
              case SpecialReg::WarpId:
                writeReg(state, inst,
                         shrVal(gridVar(Term::Var::Tid), 5));
                break;
              default: // SmId: dispatch-schedule dependent.
                writeReg(state, inst, top());
            }
            break;
          case Opcode::IADD:
            writeReg(state, inst,
                     addVals(readReg(state, inst.srcA, inst),
                             operandB(state, inst)));
            break;
          case Opcode::ISUB:
            writeReg(state, inst,
                     subVals(readReg(state, inst.srcA, inst),
                             operandB(state, inst)));
            break;
          case Opcode::IMUL:
            writeReg(state, inst,
                     mulVals(readReg(state, inst.srcA, inst),
                             operandB(state, inst)));
            break;
          case Opcode::IMAD:
            writeReg(state, inst,
                     addVals(mulVals(readReg(state, inst.srcA, inst),
                                     operandB(state, inst)),
                             readReg(state, inst.srcC, inst)));
            break;
          case Opcode::SHL: {
            const AbsVal sh = operandB(state, inst);
            writeReg(state, inst,
                     isConstVal(sh)
                         ? shlVal(readReg(state, inst.srcA, inst),
                                  sh.c.lo)
                         : top());
            break;
          }
          case Opcode::SHR: {
            const AbsVal sh = operandB(state, inst);
            writeReg(state, inst,
                     isConstVal(sh) && sh.c.lo >= 0 && sh.c.lo <= 63
                         ? shrVal(readReg(state, inst.srcA, inst),
                                  sh.c.lo)
                         : top());
            break;
          }
          case Opcode::AND: {
            const AbsVal a = readReg(state, inst.srcA, inst);
            const AbsVal b = operandB(state, inst);
            if (isConstVal(b))
                writeReg(state, inst, andVal(a, b.c.lo));
            else if (isConstVal(a))
                writeReg(state, inst, andVal(b, a.c.lo));
            else
                writeReg(state, inst, top());
            break;
          }
          case Opcode::IMIN:
          case Opcode::IMAX: {
            const AbsVal a = readReg(state, inst.srcA, inst);
            const AbsVal b = operandB(state, inst);
            if (isPureInterval(a) && isPureInterval(b)) {
                StrideInterval c;
                if (inst.op == Opcode::IMIN) {
                    c.lo = std::min(a.c.lo, b.c.lo);
                    c.hi = std::min(a.c.hi, b.c.hi);
                } else {
                    c.lo = std::max(a.c.lo, b.c.lo);
                    c.hi = std::max(a.c.hi, b.c.hi);
                }
                c.stride = c.lo == c.hi ? 0 : 1;
                AbsVal r;
                r.known = true;
                r.c = c.normalized();
                writeReg(state, inst, r);
            } else {
                writeReg(state, inst, top());
            }
            break;
          }
          case Opcode::SETP: {
            PredFact fact;
            const AbsVal rhs = operandB(state, inst);
            if (inst.pred == kNoReg && inst.srcA != kNoReg &&
                state.regs[inst.srcA].tagPred == kNoReg &&
                isConstVal(rhs)) {
                fact.valid = true;
                fact.reg = inst.srcA;
                fact.cmp = inst.cmp;
                fact.rhs = rhs.c.lo;
            }
            if (inst.predDst >= 0 && inst.predDst < kNumPreds)
                state.facts[inst.predDst] = fact;
            break;
          }
          case Opcode::LD:
          case Opcode::ATOM:
          case Opcode::CLOCK:
            writeReg(state, inst, top());
            break;
          case Opcode::NOP:
          case Opcode::EXIT:
          case Opcode::BAR:
          case Opcode::BRA:
          case Opcode::ST:
            break;
          default:
            // FP ops, OR/XOR and anything else the domain cannot
            // track: the destination becomes unknown.
            writeReg(state, inst, top());
        }
    }

    // Guard tags are block-local: a tagged value is a per-lane
    // mixture of old and new, which the next block cannot tell apart
    // (and carrying versioned tags through the fixpoint would keep
    // out-states unstable). Drop them to top at block exit.
    for (RegState &rs : state.regs) {
        if (rs.tagPred != kNoReg) {
            rs.v = top();
            rs.tagPred = kNoReg;
            rs.tagNeg = false;
        }
    }
    return state;
}

bool
Analyzer::refineEdge(BlockState &state, int p, bool truth) const
{
    if (p < 0 || p >= kNumPreds)
        return true;
    const PredFact &fact = state.facts[p];
    if (!fact.valid)
        return true;
    RegState &rs = state.regs[fact.reg];
    if (!rs.v.known || rs.v.c.empty())
        return true;
    const CmpOp cmp = truth ? fact.cmp : negateCmp(fact.cmp);

    // Lanes on this edge satisfy `terms(lane) + c cmp rhs`. Shift
    // the bound through the term extremes: c < K - min(terms), etc.
    std::int64_t term_min = 0;
    std::int64_t term_max = 0;
    for (const Term &t : rs.v.terms) {
        const std::int64_t ext = satMul(t.coeff, digitMax(t));
        if (t.coeff >= 0)
            term_max = satAdd(term_max, ext);
        else
            term_min = satAdd(term_min, ext);
    }
    std::int64_t rhs = fact.rhs;
    switch (cmp) {
      case CmpOp::LT:
      case CmpOp::LE:
        rhs = satSub(rhs, term_min);
        break;
      case CmpOp::GT:
      case CmpOp::GE:
        rhs = satSub(rhs, term_max);
        break;
      case CmpOp::EQ:
      case CmpOp::NE:
        // Exact facts only transfer when the value is term-free.
        if (!rs.v.terms.empty())
            return true;
        break;
    }
    if (isInf(rhs))
        return true;
    const StrideInterval met = StrideInterval::meetCmp(rs.v.c, cmp,
                                                       rhs);
    if (met.empty())
        return false; // edge can carry no lanes
    rs.v.c = met;
    return true;
}

bool
Analyzer::digitRuleDisjoint(const GlobalAccess &a,
                            const GlobalAccess &b) const
{
    // Identical term structure is what makes the two addresses the
    // same digit function.
    if (a.addr.terms != b.addr.terms)
        return false;
    const StrideInterval &ca = a.addr.c;
    const StrideInterval &cb = b.addr.c;
    if (ca.empty() || cb.empty())
        return true;
    if (!ca.bounded() || !cb.bounded())
        return false;

    // Fold both constant parts into one shared digit on the gcd grid.
    const std::uint64_t g =
        gcdU(gcdU(ca.stride, cb.stride), absDist(ca.lo, cb.lo));
    const std::int64_t c_lo = std::min(ca.lo, cb.lo);
    const std::int64_t c_hi = std::max(ca.hi, cb.hi);
    std::int64_t c_span;
    if (__builtin_sub_overflow(c_hi, c_lo, &c_span))
        return false;

    struct Digit
    {
        std::int64_t coeff;
        std::int64_t max;
    };
    std::vector<Digit> digits;
    digits.push_back({1, kAccessBytes - 1});
    if (g != 0) {
        if (g > std::uint64_t(kPosInf))
            return false;
        digits.push_back({std::int64_t(g), c_span / std::int64_t(g)});
    }
    bool cta_bits[64] = {false};
    bool has_cta_term = false;
    for (const Term &t : a.addr.terms) {
        std::int64_t coeff = t.coeff;
        if (coeff == kNegInf)
            return false;
        coeff = coeff < 0 ? -coeff : coeff;
        digits.push_back({coeff, digitMax(t)});
        if (t.var == Term::Var::Cta) {
            has_cta_term = true;
            const unsigned width =
                t.mask == ~std::uint64_t{0}
                    ? 64u - t.shift
                    : unsigned(std::popcount(t.mask));
            for (unsigned b2 = t.shift;
                 b2 < std::min(64u, t.shift + width); ++b2)
                cta_bits[b2] = true;
        }
    }
    std::sort(digits.begin(), digits.end(),
              [](const Digit &x, const Digit &y) {
                  return x.coeff < y.coeff;
              });

    // Mixed-radix nesting: each coefficient must exceed the maximum
    // value representable by all lower digits, so a byte address
    // determines every digit uniquely.
    std::int64_t cum = 0;
    for (const Digit &d : digits) {
        if (d.coeff <= cum)
            return false;
        std::int64_t ext;
        if (mulOv(d.coeff, d.max, ext))
            return false;
        if (addOv(cum, ext, cum))
            return false;
    }

    // Equal digits must force equal blocks: the cta slices together
    // must cover every bit a ctaid below numBlocks can set.
    if (!has_cta_term)
        return false;
    for (unsigned bit = 0; bit < 64; ++bit) {
        if ((ctaMax_ >> bit) == 0)
            break;
        if (!cta_bits[bit])
            return false;
    }
    return true;
}

bool
Analyzer::crossBlockDisjoint(const GlobalAccess &a,
                             const GlobalAccess &b) const
{
    if (numBlocks_ <= 1)
        return true;
    const FootprintRange ra = gridRange(a);
    const FootprintRange rb = gridRange(b);
    const bool bounded = ra.lo != kNegInf && ra.hi != kPosInf &&
                         rb.lo != kNegInf && rb.hi != kPosInf;
    if (bounded && (ra.hi <= rb.lo || rb.hi <= ra.lo))
        return true;
    return digitRuleDisjoint(a, b);
}

std::string
formatInterval(const StrideInterval &c)
{
    if (c.singleton())
        return std::to_string(c.lo);
    std::ostringstream os;
    os << "[";
    if (c.lo == kNegInf)
        os << "-inf";
    else
        os << c.lo;
    os << "..";
    if (c.hi == kPosInf)
        os << "+inf";
    else
        os << c.hi;
    if (c.stride > 1)
        os << " step " << c.stride;
    os << "]";
    return os.str();
}

std::string
formatForm(const AbsVal &addr)
{
    if (!addr.known)
        return "(unknown)";
    std::ostringstream os;
    bool first = true;
    for (const Term &t : addr.terms) {
        if (!first)
            os << " + ";
        first = false;
        if (t.coeff != 1)
            os << t.coeff << "*";
        const char *var = t.var == Term::Var::Tid ? "tid" : "ctaid";
        // A mask of all remaining bits after the shift is just the
        // shift (the `~0 >> k` slices shrVal produces).
        const bool masked =
            t.mask != (~std::uint64_t{0} >> t.shift);
        if (t.shift == 0 && !masked) {
            os << var;
        } else if (t.shift == 0) {
            os << "(" << var << "&" << t.mask << ")";
        } else if (!masked) {
            os << "(" << var << ">>" << unsigned(t.shift) << ")";
        } else {
            os << "((" << var << ">>" << unsigned(t.shift) << ")&"
               << t.mask << ")";
        }
    }
    if (!first)
        os << " + ";
    os << formatInterval(addr.c);
    return os.str();
}

SmParallelVerdict
Analyzer::run()
{
    SmParallelVerdict v;
    const bool single_block = numBlocks_ <= 1;

    cfg_ = Cfg::build(kernel_);
    v.cfgBlocks = static_cast<unsigned>(cfg_.blocks.size());
    v.loopHeads = cfg_.numLoopHeads;
    {
        std::ostringstream os;
        os << "cfg: " << v.cfgBlocks << " block(s), " << v.loopHeads
           << " loop head(s)";
        v.reasonChain.push_back(os.str());
    }

    const auto finishUnsafe = [&](std::string reason) {
        v.safe = single_block;
        v.reason = single_block ? "single block occupies one SM"
                                : reason;
        v.reasonChain.push_back("blocking: " + reason);
        if (single_block)
            v.reasonChain.push_back(
                "verdict: safe (single block occupies one SM)");
        else
            v.reasonChain.push_back("verdict: serialized");
        return v;
    };

    if (cfg_.blocks.empty()) {
        v.safe = true;
        v.reason = "store-free global footprint";
        v.hasStore = false;
        v.footprintKnown = true;
        v.reasonChain.push_back("verdict: safe (empty kernel)");
        return v;
    }

    // Worklist fixpoint over the CFG in reverse post-order, widening
    // at loop heads once a head has been merged into twice.
    std::vector<BlockState> in(cfg_.blocks.size());
    std::vector<unsigned> merges(cfg_.blocks.size(), 0);
    in[0].reachable = true;
    std::set<std::uint32_t> worklist; // rpo indices
    worklist.insert(0);

    const unsigned cap =
        1000 + 50 * static_cast<unsigned>(cfg_.blocks.size());
    unsigned iterations = 0;
    bool converged = true;
    while (!worklist.empty()) {
        if (++iterations > cap) {
            converged = false;
            break;
        }
        const std::uint32_t block = cfg_.rpo[*worklist.begin()];
        worklist.erase(worklist.begin());

        const BlockState out = transferBlock(block, in[block], nullptr);
        const CfgBlock &bb = cfg_.blocks[block];
        const Instruction &term = kernel_.code[bb.last];
        const bool branch = term.isBranch() && term.pred != kNoReg;

        for (std::size_t s = 0; s < bb.succs.size(); ++s) {
            const std::uint32_t succ = bb.succs[s];
            BlockState edge = out;
            if (branch) {
                // succs[0] is the taken edge, succs[1] fall-through.
                const bool taken = s == 0;
                const bool truth = taken != term.predNeg;
                if (!refineEdge(edge, term.pred, truth))
                    continue; // refinement proved the edge dead
            }
            const bool widening =
                cfg_.blocks[succ].loopHead && merges[succ] >= 2;
            BlockState merged = joinStates(in[succ], edge, widening);
            ++merges[succ];
            if (!sameState(merged, in[succ])) {
                in[succ] = std::move(merged);
                if (cfg_.rpoIndex[succ] < cfg_.rpo.size())
                    worklist.insert(cfg_.rpoIndex[succ]);
            }
        }
    }
    v.fixpointIterations = iterations;
    {
        std::ostringstream os;
        os << "fixpoint: " << (converged ? "converged" : "DIVERGED")
           << " after " << iterations << " block transfer(s)";
        v.reasonChain.push_back(os.str());
    }
    if (!converged)
        return finishUnsafe("fixpoint did not converge");

    // Collection pass: re-run each reachable block against its fixed
    // in-state, recording every global access.
    std::vector<GlobalAccess> accesses;
    for (const std::uint32_t block : cfg_.rpo) {
        if (in[block].reachable)
            transferBlock(block, in[block], &accesses);
    }

    bool have_store = false;   // non-atomic global stores
    unsigned num_atomics = 0;
    for (const GlobalAccess &a : accesses) {
        have_store |= a.isStore;
        num_atomics += a.isAtomic ? 1 : 0;

        AccessFootprint fp;
        fp.pc = a.pc;
        fp.store = a.isStore;
        fp.atomic = a.isAtomic;
        fp.affine = a.addr.known;
        fp.form = formatForm(a.addr);
        if (a.addr.known) {
            const FootprintRange grid = gridRange(a);
            const FootprintRange blk = gridRange(a, true);
            fp.gridLo = grid.lo;
            fp.gridHi = grid.hi;
            fp.blockLo = blk.lo;
            fp.blockHi = blk.hi;
        }
        v.accesses.push_back(std::move(fp));
    }
    v.hasStore = have_store;
    v.atomicsForwarded = num_atomics > 0;
    if (num_atomics > 0) {
        std::ostringstream os;
        os << "atomics: " << num_atomics
           << " site(s) forwarded to the owning partition's tick "
              "(schedule-invariant)";
        v.reasonChain.push_back(os.str());
    }

    // The whole-grid footprint for cross-launch composition: known
    // only when every non-atomic access has an affine address (a
    // non-affine load is fine for *intra*-launch safety of a
    // store-free kernel, but its reach across another launch's
    // stores cannot be bounded). Forwarded atomics are excluded:
    // their functional execution is schedule-invariant either way.
    const auto fillFootprint = [&]() {
        std::size_t tracked = 0;
        bool known = true;
        for (const GlobalAccess &a : accesses) {
            if (a.isAtomic)
                continue;
            ++tracked;
            known &= a.addr.known;
        }
        v.footprintKnown = known && tracked <= kMaxFootprintRanges;
        if (!v.footprintKnown) {
            v.footprint.clear();
            return;
        }
        for (const GlobalAccess &a : accesses) {
            if (a.isAtomic)
                continue;
            FootprintRange r = gridRange(a);
            r.store = a.isStore;
            v.footprint.push_back(r);
        }
    };
    fillFootprint();

    // Intra-launch safety: every pair of non-atomic accesses with at
    // least one store must be provably cross-block disjoint.
    std::string blocking;
    for (const GlobalAccess &a : accesses) {
        if (a.isAtomic)
            continue;
        if (a.isStore && !a.addr.known) {
            blocking = "non-affine store address at pc " +
                       std::to_string(a.pc);
            break;
        }
        if (!a.isStore && !a.addr.known && have_store) {
            blocking = "non-affine load with live stores at pc " +
                       std::to_string(a.pc);
            break;
        }
    }
    if (blocking.empty() && have_store && !single_block) {
        for (std::size_t i = 0;
             i < accesses.size() && blocking.empty(); ++i) {
            for (std::size_t j = i; j < accesses.size(); ++j) {
                const GlobalAccess &a = accesses[i];
                const GlobalAccess &b = accesses[j];
                if (a.isAtomic || b.isAtomic)
                    continue;
                if (!a.isStore && !b.isStore)
                    continue; // load/load pairs never race
                if (!crossBlockDisjoint(a, b)) {
                    blocking =
                        "possible cross-block overlap between pc " +
                        std::to_string(a.pc) + " and pc " +
                        std::to_string(b.pc);
                    break;
                }
            }
        }
    }

    if (!blocking.empty())
        return finishUnsafe(blocking);

    v.safe = true;
    if (single_block) {
        v.reason = "single block occupies one SM";
    } else if (!have_store) {
        v.reason = "store-free global footprint";
    } else {
        v.reason = "affine cross-block-disjoint global footprint";
    }
    v.reasonChain.push_back("verdict: safe (" + v.reason + ")");
    return v;
}

} // namespace

SmParallelVerdict
analyzeSmParallelSafety(const Kernel &kernel, unsigned num_blocks,
                        unsigned threads_per_block,
                        const std::array<RegValue, kMaxParams> &params)
{
    Analyzer analyzer(kernel, num_blocks, threads_per_block, params);
    return analyzer.run();
}

bool
launchesMayConflict(const SmParallelVerdict &a,
                    const SmParallelVerdict &b)
{
    if (!a.hasStore && !b.hasStore)
        return false;
    if (!a.footprintKnown || !b.footprintKnown)
        return true;
    for (const FootprintRange &ra : a.footprint) {
        for (const FootprintRange &rb : b.footprint) {
            if (ra.atomic || rb.atomic)
                continue; // forwarded: schedule-invariant anyway
            if (!ra.store && !rb.store)
                continue;
            if (ra.lo < rb.hi && rb.lo < ra.hi)
                return true;
        }
    }
    return false;
}

} // namespace gpulat
