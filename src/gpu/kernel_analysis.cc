#include "gpu/kernel_analysis.hh"

#include <algorithm>
#include <cstdlib>
#include <vector>

namespace gpulat {

namespace {

/**
 * Abstract register value: `tidCoeff*tid + ctaCoeff*ctaid + base`
 * when `known`, else unknown. Constants are affine values with zero
 * coefficients. Arithmetic is evaluated in signed 64-bit; the
 * workload kernels stay far from overflow (device memory is tens of
 * MiB), and an overflowing kernel would merely risk a spurious
 * "unsafe", never a spurious "safe", because every unmodellable
 * construct already falls to unknown.
 */
struct AbsVal
{
    bool known = false;
    std::int64_t tidCoeff = 0;
    std::int64_t ctaCoeff = 0;
    std::int64_t base = 0;
};

AbsVal
constant(std::int64_t v)
{
    return AbsVal{true, 0, 0, v};
}

bool
isConst(const AbsVal &v)
{
    return v.known && v.tidCoeff == 0 && v.ctaCoeff == 0;
}

AbsVal
add(const AbsVal &a, const AbsVal &b)
{
    if (!a.known || !b.known)
        return AbsVal{};
    return AbsVal{true, a.tidCoeff + b.tidCoeff,
                  a.ctaCoeff + b.ctaCoeff, a.base + b.base};
}

AbsVal
sub(const AbsVal &a, const AbsVal &b)
{
    if (!a.known || !b.known)
        return AbsVal{};
    return AbsVal{true, a.tidCoeff - b.tidCoeff,
                  a.ctaCoeff - b.ctaCoeff, a.base - b.base};
}

AbsVal
mul(const AbsVal &a, const AbsVal &b)
{
    if (!a.known || !b.known)
        return AbsVal{};
    // Affine * affine stays affine only when one side is constant.
    if (isConst(a))
        return AbsVal{true, b.tidCoeff * a.base, b.ctaCoeff * a.base,
                      b.base * a.base};
    if (isConst(b))
        return AbsVal{true, a.tidCoeff * b.base, a.ctaCoeff * b.base,
                      a.base * b.base};
    return AbsVal{};
}

/** One global LD/ST with an affine address (op address + imm). */
struct GlobalAccess
{
    AbsVal addr;
    bool isStore = false;
    std::uint32_t pc = 0;
};

/** Access width of every LD/ST in this ISA. */
constexpr std::int64_t kAccessBytes = 8;

/**
 * Inclusive-exclusive byte range an affine access can touch across
 * the whole grid (tid in [0,T), ctaid in [0,B)). A superset of the
 * real footprint when guards mask tail lanes — safe direction.
 */
struct ByteRange
{
    std::int64_t lo;
    std::int64_t hi;
};

ByteRange
footprint(const AbsVal &addr, unsigned num_blocks,
          unsigned threads_per_block)
{
    const std::int64_t t_span =
        addr.tidCoeff * std::int64_t(threads_per_block - 1);
    const std::int64_t b_span =
        addr.ctaCoeff * std::int64_t(num_blocks - 1);
    std::int64_t lo = addr.base + std::min<std::int64_t>(t_span, 0) +
                      std::min<std::int64_t>(b_span, 0);
    std::int64_t hi = addr.base + std::max<std::int64_t>(t_span, 0) +
                      std::max<std::int64_t>(b_span, 0) + kAccessBytes;
    return ByteRange{lo, hi};
}

bool
disjoint(const ByteRange &a, const ByteRange &b)
{
    return a.hi <= b.lo || b.hi <= a.lo;
}

/**
 * True if accesses @p a and @p b can never touch the same bytes from
 * *different blocks*. Same-block overlap is harmless: a block lives
 * on one SM, and intra-SM ordering is identical under every tick
 * schedule. Two cases prove cross-block disjointness:
 *
 *  1. Whole-grid footprints never intersect (different arrays).
 *  2. Identical affine form: equal coefficients and a block stride
 *     wide enough that any two distinct ctaids are farther apart
 *     than the full tid span plus the base offset between the two
 *     accesses plus the access width.
 */
bool
crossBlockDisjoint(const GlobalAccess &a, const GlobalAccess &b,
                   unsigned num_blocks, unsigned threads_per_block)
{
    if (num_blocks <= 1)
        return true;
    if (disjoint(footprint(a.addr, num_blocks, threads_per_block),
                 footprint(b.addr, num_blocks, threads_per_block)))
        return true;
    if (a.addr.tidCoeff != b.addr.tidCoeff ||
        a.addr.ctaCoeff != b.addr.ctaCoeff)
        return false;
    const std::int64_t tid_span =
        std::abs(a.addr.tidCoeff) *
        std::int64_t(threads_per_block - 1);
    const std::int64_t base_delta =
        std::abs(a.addr.base - b.addr.base);
    return std::abs(a.addr.ctaCoeff) >=
           tid_span + base_delta + kAccessBytes;
}

SmParallelVerdict
unsafe(std::string reason)
{
    return SmParallelVerdict{false, std::move(reason)};
}

/** Cap on tracked footprint ranges: more falls back to unknown
 *  (conflict checks are pairwise over two launches' lists). */
constexpr std::size_t kMaxFootprintRanges = 16;

} // namespace

SmParallelVerdict
analyzeSmParallelSafety(const Kernel &kernel, unsigned num_blocks,
                        unsigned threads_per_block,
                        const std::array<RegValue, kMaxParams> &params)
{
    // A single-block launch occupies one SM, so it is always safe
    // *within itself*; the analysis still runs so the footprint is
    // available for cross-launch composition. Constructs the affine
    // domain cannot model keep the conservative default footprint
    // (unknown, assume stores) on both the safe single-block verdict
    // and the unsafe multi-block one.
    const bool single_block = num_blocks <= 1;
    const auto fail = [&](std::string reason) {
        if (single_block)
            return SmParallelVerdict{
                true, "single block occupies one SM"};
        return unsafe(std::move(reason));
    };

    // Pass 1: control flow. Loops would require a fixpoint; any
    // memory access at/after a reconvergence point may read
    // registers whose value depends on which lanes took the branch.
    std::uint32_t first_join = kernel.code.size();
    for (std::uint32_t pc = 0; pc < kernel.code.size(); ++pc) {
        const Instruction &inst = kernel.code[pc];
        if (inst.isAtomic())
            return fail("atomic at pc " + std::to_string(pc));
        if (inst.isBranch()) {
            if (inst.target <= pc)
                return fail("backward branch at pc " +
                            std::to_string(pc));
            first_join = std::min(first_join, inst.target);
        }
    }

    // Pass 2: abstract interpretation over the straight-line order.
    // Between a forward branch and its target the state is exact for
    // the fall-through lanes (the only ones executing there).
    std::array<AbsVal, kNumRegs> regs{};
    std::vector<GlobalAccess> accesses;
    bool have_store = false;

    for (std::uint32_t pc = 0; pc < kernel.code.size(); ++pc) {
        const Instruction &inst = kernel.code[pc];

        if (inst.isMemory() && inst.space == MemSpace::Global) {
            if (pc >= first_join)
                return fail("global access after reconvergence "
                            "at pc " + std::to_string(pc));
            const AbsVal addr =
                add(regs[inst.srcA], constant(inst.imm));
            if (inst.isStore()) {
                if (!addr.known)
                    return fail("non-affine store address at pc " +
                                std::to_string(pc));
                have_store = true;
                accesses.push_back({addr, true, pc});
            } else {
                // Loads may be non-affine (pointer chase) as long as
                // the kernel is store-free; record the gap instead
                // of the access and check at the end.
                accesses.push_back({addr, false, pc});
            }
        }

        const auto setDst = [&](AbsVal v) {
            // A guarded write makes the register lane-dependent.
            if (inst.pred != kNoReg)
                v = AbsVal{};
            if (inst.dst != kNoReg)
                regs[inst.dst] = v;
        };
        const auto srcOrImm = [&](int reg) {
            return inst.useImm ? constant(inst.imm)
                               : (reg != kNoReg ? regs[reg] : AbsVal{});
        };

        switch (inst.op) {
          case Opcode::MOV:
            if (inst.param != kNoReg)
                setDst(constant(std::int64_t(params[inst.param])));
            else if (inst.useImm)
                setDst(constant(inst.imm));
            else
                setDst(regs[inst.srcA]);
            break;
          case Opcode::S2R:
            switch (inst.sreg) {
              case SpecialReg::Tid:
                setDst(AbsVal{true, 1, 0, 0});
                break;
              case SpecialReg::Ctaid:
                setDst(AbsVal{true, 0, 1, 0});
                break;
              case SpecialReg::Ntid:
                setDst(constant(threads_per_block));
                break;
              case SpecialReg::Nctaid:
                setDst(constant(num_blocks));
                break;
              default: // LaneId/WarpId/SmId: schedule-dependent.
                setDst(AbsVal{});
            }
            break;
          case Opcode::IADD:
            setDst(add(regs[inst.srcA], srcOrImm(inst.srcB)));
            break;
          case Opcode::ISUB:
            setDst(sub(regs[inst.srcA], srcOrImm(inst.srcB)));
            break;
          case Opcode::IMUL:
            setDst(mul(regs[inst.srcA], srcOrImm(inst.srcB)));
            break;
          case Opcode::IMAD:
            setDst(add(mul(regs[inst.srcA], srcOrImm(inst.srcB)),
                       regs[inst.srcC]));
            break;
          case Opcode::SHL: {
            const AbsVal sh = srcOrImm(inst.srcB);
            if (isConst(sh) && sh.base >= 0 && sh.base < 63)
                setDst(mul(regs[inst.srcA],
                           constant(std::int64_t{1} << sh.base)));
            else
                setDst(AbsVal{});
            break;
          }
          default:
            // Everything else either writes nothing (SETP, BRA, BAR,
            // EXIT, NOP, ST) or produces a value the affine domain
            // cannot track (FP ops, shifts right, logic ops, CLOCK,
            // LD results).
            setDst(AbsVal{});
        }
    }

    // The whole-grid footprint for cross-launch composition: known
    // only when every global access has an affine address (a
    // non-affine load is fine for *intra*-launch safety of a
    // store-free kernel, but its reach across another launch's
    // stores cannot be bounded).
    const auto fillFootprint = [&](SmParallelVerdict v) {
        v.hasStore = have_store;
        v.footprintKnown = accesses.size() <= kMaxFootprintRanges;
        for (const GlobalAccess &a : accesses) {
            if (!a.addr.known) {
                v.footprintKnown = false;
                break;
            }
        }
        if (v.footprintKnown) {
            for (const GlobalAccess &a : accesses) {
                const ByteRange r = footprint(a.addr, num_blocks,
                                              threads_per_block);
                v.footprint.push_back({r.lo, r.hi, a.isStore});
            }
        }
        return v;
    };

    if (single_block)
        return fillFootprint(
            SmParallelVerdict{true, "single block occupies one SM"});
    if (!have_store)
        return fillFootprint(
            SmParallelVerdict{true, "store-free global footprint"});

    for (std::size_t i = 0; i < accesses.size(); ++i) {
        for (std::size_t j = i; j < accesses.size(); ++j) {
            if (!accesses[i].isStore && !accesses[j].isStore)
                continue; // load/load pairs never race
            if (!accesses[i].addr.known || !accesses[j].addr.known)
                return unsafe("non-affine load with live stores at "
                              "pc " + std::to_string(
                                  accesses[i].addr.known
                                      ? accesses[j].pc
                                      : accesses[i].pc));
            if (!crossBlockDisjoint(accesses[i], accesses[j],
                                    num_blocks, threads_per_block))
                return unsafe(
                    "possible cross-block overlap between pc " +
                    std::to_string(accesses[i].pc) + " and pc " +
                    std::to_string(accesses[j].pc));
        }
    }
    return fillFootprint(
        SmParallelVerdict{true, "affine cross-block-disjoint "
                                "global footprint"});
}

bool
launchesMayConflict(const SmParallelVerdict &a,
                    const SmParallelVerdict &b)
{
    if (!a.hasStore && !b.hasStore)
        return false;
    if (!a.footprintKnown || !b.footprintKnown)
        return true;
    for (const FootprintRange &ra : a.footprint) {
        for (const FootprintRange &rb : b.footprint) {
            if (!ra.store && !rb.store)
                continue;
            if (ra.lo < rb.hi && rb.lo < ra.hi)
                return true;
        }
    }
    return false;
}

} // namespace gpulat
