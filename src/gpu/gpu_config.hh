/**
 * @file
 * Whole-GPU configuration and the per-generation presets used by the
 * paper's experiments.
 *
 * The static-latency presets (GT200 / GF106 / GK104 / GM107) are
 * calibrated so the *measured* idle pointer-chase latencies match
 * Table I of the paper; the GF100 preset mirrors the GPGPU-Sim
 * Fermi configuration used for the dynamic analysis (Figures 1, 2).
 */

#ifndef GPULAT_GPU_GPU_CONFIG_HH
#define GPULAT_GPU_GPU_CONFIG_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "engine/clocked.hh"
#include "mem/partition.hh"
#include "simt/core.hh"

namespace gpulat {

/** Launch-queue admission policy of the serving layer
 *  (src/serving/). Dotted override key `serving.policy`. */
enum class ServePolicy : std::uint8_t
{
    Fifo,      ///< strict arrival order, head-of-line blocking
    Rr,        ///< round-robin over tenants (work-conserving)
    SjfEst,    ///< smallest estimated cost first
    FairShare, ///< least attained weighted service first
};

/** How the serving layer carves SMs for concurrent launches.
 *  Dotted override key `serving.partition`. */
enum class ServePartition : std::uint8_t
{
    Static,  ///< MPS-style fixed per-tenant SM shares
    Dynamic, ///< best-effort: grab free SMs at admission
};

struct GpuConfig
{
    std::string name = "gpu";

    unsigned numSms = 1;
    unsigned numPartitions = 2;

    /**
     * @name Clock domains
     * Frequency of each domain relative to the core ("hot") clock.
     * The defaults (1:1:1:1) reproduce the single-clock simulator
     * bit-for-bit. A domain's fixed latencies (icntLatency, the
     * partition's ROP/L2 latencies, the DRAM timing parameters) are
     * counts of *its own* cycles — numerically equal to core cycles
     * at the calibrated 1:1 defaults — so dramClock = {1, 2} both
     * halves the DRAM side's tick cadence and doubles its service
     * latencies as seen from the core, exactly like underclocking
     * the memory of a real part. (dramCmdInterval is counted in
     * DRAM-domain ticks, so it rides the same scaling.)
     * @{
     */
    ClockRatio icntClock{1, 1};
    ClockRatio l2Clock{1, 1};
    ClockRatio dramClock{1, 1};
    /** @} */

    /**
     * Idle fast-forward policy (cycle-exact by construction in
     * every mode; see IdleFastForward in engine/clocked.hh):
     * `Off` ticks naively, `Full` jumps only all-idle windows
     * (e.g. the drain tail of a launch), `PerDomain` (default)
     * event-schedules each component independently so a long DRAM
     * bank wait no longer drags sleeping core/icnt/L2 components
     * through per-cycle no-op ticks. Dotted override key:
     * `idleFastForward=off|full|perDomain` (legacy booleans map to
     * off/full).
     */
    IdleFastForward idleFastForward = IdleFastForward::PerDomain;

    /**
     * Engine *execution* knobs: wall-clock behaviour of the
     * simulator process only — by construction they never change
     * simulated cycles, traces or counters, and `engine.tickJobs`
     * is therefore excluded from the overrides an ExperimentRecord
     * reports (the CI determinism gate byte-diffs output across
     * its values). `engine.smGroupSize` *is* reported: it renames
     * the `engine.group.sm*` tick counters, so records taken at
     * different groupings are honestly distinguishable even though
     * cycles and traces stay identical.
     */
    struct EngineParams
    {
        /**
         * Worker threads ticking independent partition and SM
         * groups *inside* one simulation (TickEngine::setTickJobs):
         * 1 = today's serial path (default), 0 = hardware
         * concurrency (clamped to >= 1). Dotted override key
         * `engine.tickJobs`; the CLI also accepts `--tick-jobs N`.
         */
        std::size_t tickJobs = 1;

        /**
         * SMs per tick group: each cluster of this many SM cores
         * forms one tick group ("sm0", "sm1", ...) that may tick
         * concurrently with the other clusters and the partition
         * groups, subject to the per-launch kernel safety analysis
         * (kernel_analysis.hh). 0 fuses every SM into a single
         * "sm" group (the pre-per-SM-sharding shape); 1 (default)
         * gives every SM its own group. Dotted override key
         * `engine.smGroupSize`.
         */
        std::size_t smGroupSize = 1;

        /**
         * Launch watchdog: panic with a per-layer stall report
         * after this many *performed engine steps*
         * (TickEngine::steps()) without any activity-signature
         * change. Counted in steps, never core cycles — idle
         * fast-forward can jump millions of legitimate idle cycles
         * in a single step. 0 disables the watchdog.
         */
        std::uint64_t watchdogStallSteps = 2'000'000;
    };
    EngineParams engine;

    /** Per-SM template (smId overwritten per instance). */
    SmParams sm;
    /** Per-partition template. */
    PartitionParams partition;

    /** Request/response network traversal latency. */
    Cycle icntLatency = 32;
    std::size_t icntInQueue = 8;
    std::size_t icntOutQueue = 8;

    std::uint64_t deviceMemBytes = 256ull * 1024 * 1024;
    std::uint64_t localBytesPerThread = 1024;

    /**
     * Base seed for everything an experiment randomizes
     * deterministically on this device: the per-Gpu Rng
     * (Gpu::rng(), workload input data) and the serving layer's
     * per-tenant arrival streams. Dotted override key `seed`, so
     * cells are reproducible and sweepable over seeds.
     */
    std::uint64_t seed = 1;

    /**
     * Multi-tenant serving knobs (src/serving/): how the
     * LaunchQueueScheduler admits concurrent kernel launches. Only
     * read by the `serve.*` workloads; single-launch experiments
     * ignore them.
     */
    struct ServingParams
    {
        ServePolicy policy = ServePolicy::Fifo;
        ServePartition partition = ServePartition::Dynamic;
        /** Admission slots: max concurrently resident launches. */
        unsigned maxConcurrent = 4;
        /** Dynamic mode: SMs granted per launch
         *  (0 = numSms / maxConcurrent, clamped to >= 1). */
        unsigned smsPerLaunch = 0;
    };
    ServingParams serving;

    /** Line address -> memory partition. */
    unsigned
    partitionOf(Addr line_addr) const
    {
        return static_cast<unsigned>(
            (line_addr / sm.lineBytes) % numPartitions);
    }

    /** Total L2 capacity across partitions (plateau prediction). */
    std::uint64_t
    totalL2Bytes() const
    {
        return partition.l2Enabled
            ? partition.l2Cache.capacityBytes * numPartitions
            : 0;
    }
};

/** @name Paper configurations @{ */

/** Tesla GT200: no L1/L2 on the global path; DRAM ~440 cycles. */
GpuConfig makeGT200();

/** Fermi GF106: L1 45 / L2 310 / DRAM 685 cycles. */
GpuConfig makeGF106();

/**
 * Kepler GK104: L1 serves only local (30 cycles); global memory
 * starts at the L2 (175); DRAM 300.
 */
GpuConfig makeGK104();

/** Maxwell GM107: no L1 at all; L2 194; DRAM 350. */
GpuConfig makeGM107();

/**
 * GF100-like simulation config for the dynamic analysis: 15 SMs,
 * 48 warps/SM, 6 partitions, FR-FCFS. Fermi-family latencies.
 */
GpuConfig makeGF100Sim();

/** Canonical preset names, in Table-I order. */
const std::vector<std::string> &configNames();

/**
 * Look up a preset by name ("gt200", "gf106", ...). Matching
 * ignores '-' and '_', so "gf100sim" and "gf100-sim" are the same
 * preset.
 */
GpuConfig makeConfig(const std::string &name);

/** @} */

} // namespace gpulat

#endif // GPULAT_GPU_GPU_CONFIG_HH
