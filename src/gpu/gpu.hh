/**
 * @file
 * Top-level GPU device: owns the SMs, interconnect and memory
 * partitions, and drives them through a TickEngine with four clock
 * domains (core, icnt, L2, DRAM). Host code allocates device
 * memory, copies data, launches kernels and reads the
 * collectors/statistics afterwards.
 *
 * Component layering (registration order = intra-cycle tick order):
 *
 *   icnt : reqNet, respNet
 *   l2   : reqNet -> ROP ports, partition L2 sides
 *   dram : partition DRAM sides
 *   icnt : partition -> respNet port
 *   core : respNet -> SM port, SMs, block dispatcher
 *
 * At the default 1:1:1:1 ratios this replays the original
 * hand-ordered tick() bit-for-bit; non-unity ratios slow or speed
 * whole domains, and the engine fast-forwards windows where every
 * component reports idle (e.g. the post-grid drain tail).
 */

#ifndef GPULAT_GPU_GPU_HH
#define GPULAT_GPU_GPU_HH

#include <memory>
#include <string>
#include <vector>

#include "common/random.hh"
#include "engine/tick_engine.hh"
#include "gpu/gpu_config.hh"
#include "gpu/kernel_analysis.hh"
#include "gpu/ports.hh"
#include "icnt/crossbar.hh"
#include "isa/kernel.hh"
#include "latency/collector.hh"
#include "mem/device_memory.hh"
#include "mem/partition.hh"
#include "simt/core.hh"

namespace gpulat {

/** What a kernel launch reports back. */
struct LaunchResult
{
    Cycle cycles = 0;        ///< wall-clock cycles of this launch
    Cycle startCycle = 0;
    Cycle endCycle = 0;
    std::uint64_t instructions = 0; ///< warp instructions issued
};

class Gpu
{
  public:
    explicit Gpu(GpuConfig config);

    /** @name Host-side memory API @{ */
    DeviceMemory &memory() { return dmem_; }
    Addr alloc(std::uint64_t bytes, std::uint64_t align = 256);
    void copyToDevice(Addr dst, const void *src, std::uint64_t bytes);
    void copyFromDevice(void *dst, Addr src, std::uint64_t bytes) const;
    /** @} */

    /**
     * Launch a kernel and simulate to completion (drained pipelines).
     *
     * @param kernel finalized kernel.
     * @param num_blocks 1-D grid size.
     * @param threads_per_block 1-D block size (<= warpSlots * 32).
     * @param params kernel parameters (<= kMaxParams).
     */
    LaunchResult launch(const Kernel &kernel, unsigned num_blocks,
                        unsigned threads_per_block,
                        const std::vector<RegValue> &params);

    /**
     * @name Concurrent (partitioned) kernel launches
     *
     * The serving layer's path: several kernels resident at once,
     * each restricted to its own set of SMs, driven by an external
     * run loop (the caller steps the engine; launch() keeps its
     * one-kernel-at-a-time semantics untouched). A launch is begun,
     * its blocks are dispatched from a Clocked tick via
     * tickPartitionedDispatch(), completion is polled with
     * partitionedLaunchDone(), and retirePartitionedLaunch() frees
     * the SMs for the next admission. The per-launch safety verdict
     * (kernel_analysis.hh) is composed against every other active
     * launch's footprint, and setSerialized() pins only *this*
     * launch's SMs when it is unsafe or the footprints may overlap
     * — an unsafe tenant never costs its neighbours their SM
     * parallelism. Kernels and param vectors must outlive the
     * launch; local-memory kernels are rejected (the single backing
     * store cannot be shared between concurrent grids).
     * @{
     */
    using LaunchId = std::uint32_t;

    /** Begin a launch on @p sm_ids (must be idle and unowned). */
    LaunchId beginPartitionedLaunch(const Kernel &kernel,
                                    unsigned num_blocks,
                                    unsigned threads_per_block,
                                    const std::vector<RegValue> &params,
                                    std::vector<unsigned> sm_ids);

    /** All blocks dispatched and every owned SM idle and drained? */
    bool partitionedLaunchDone(LaunchId id) const;

    /** Release a done launch's SMs (and its serialization pin). */
    void retirePartitionedLaunch(LaunchId id);

    /**
     * Dispatch up to one block per owned SM per active launch for
     * this cycle. Called from the scheduler component's tick; the
     * per-launch rotation offset derives from @p now, not a
     * tick-counted rotor, so dispatch decisions are identical in
     * every idle-fast-forward mode.
     */
    void tickPartitionedDispatch(Cycle now);

    /** Any active launch with undispatched blocks and SM room? */
    bool partitionedDispatchReady() const;

    bool anyPartitionedActive() const { return !partActive_.empty(); }

    /** This launch's composed setSerialized() decision (tests). */
    bool partitionedSerialized(LaunchId id) const;
    /** @} */

    /** @name Instrumentation @{ */
    /** SM-parallel safety verdict of the most recent launch (either
     *  flavour); default-constructed before any launch. */
    const SmParallelVerdict &lastVerdict() const { return verdict_; }
    StatRegistry &stats() { return stats_; }
    LatencyCollector &latencies() { return latCollector_; }
    ExposureCollector &exposure() { return expCollector_; }
    /** Engine introspection (fast-forward effectiveness, domains). */
    const TickEngine &engine() const { return engine_; }
    /** Mutable engine access for post-construction wiring: the
     *  serving layer registers its scheduler as a Clocked component
     *  and links wake edges to the SMs. */
    TickEngine &engine() { return engine_; }
    /** Per-device RNG, seeded from GpuConfig::seed (the `seed`
     *  override key): workload input data, arrival streams. */
    Rng &rng() { return rng_; }
    /** @} */

    /** @name External-run-loop support (serving sessions) @{ */
    /** Every SM, network and partition empty and idle. */
    bool allDrained() const;
    /** Watchdog progress signature: changes whenever any packet
     *  moves or any instruction issues anywhere on the device. */
    std::uint64_t activitySignature() const;
    /** Per-layer diagnostics for a watchdog panic; settles the
     *  engine first so idle/occupancy cycle totals are current. */
    std::string stallReport(const std::string &kernel_name);
    /** @} */

    Cycle now() const { return engine_.now(); }
    const GpuConfig &config() const { return config_; }
    SmCore &sm(unsigned i) { return *sms_[i]; }
    MemPartition &partition(unsigned i) { return *partitions_[i]; }

    /**
     * Reset experiment-visible device state between back-to-back
     * experiments in one process: invalidate all L1s/L2s, drop DRAM
     * open-row/bus state, clear the latency and exposure
     * collectors, and mark a new stat epoch (read per-experiment
     * counters via StatRegistry::counterSinceEpoch()). Requires all
     * pipelines drained; launch() guarantees that on return.
     */
    void invalidateCaches();

  private:
    /** Shape/resource checks shared by both launch paths. */
    void validateLaunchShape(const Kernel &kernel,
                             unsigned num_blocks,
                             unsigned threads_per_block,
                             std::size_t num_params) const;

    /** One concurrent launch: address-stable context (SMs keep a
     *  raw pointer), owned SMs, dispatch cursor, safety verdict. */
    struct PartLaunch
    {
        LaunchContext ctx;
        std::vector<unsigned> smIds;
        unsigned nextBlock = 0;
        bool active = false;
        bool serialized = false;
        SmParallelVerdict verdict;
    };

    GpuConfig config_;
    StatRegistry stats_;
    LatencyCollector latCollector_;
    ExposureCollector expCollector_;
    DeviceMemory dmem_;

    Crossbar<MemRequest> reqNet_;
    Crossbar<MemRequest> respNet_;
    std::vector<std::unique_ptr<MemPartition>> partitions_;
    std::vector<std::unique_ptr<SmCore>> sms_;

    /** @name Engine wiring @{ */
    TickEngine engine_;
    NetToPartitionPort reqEject_;
    PartitionToNetPort respInject_;
    NetToSmPort respEject_;
    BlockDispatcher dispatcher_;
    std::vector<std::unique_ptr<PartitionMemSide>> partMemSides_;
    std::vector<std::unique_ptr<PartitionL2Side>> partL2Sides_;
    /** @} */

    /** Declared tick group of each SM core (stall reports). */
    std::vector<unsigned> smGroupOf_;
    /** Verdict of the current launch's SM-parallel safety analysis
     *  (kernel_analysis.hh); shown in watchdog stall reports. */
    std::string smParallelNote_;
    /** Full verdict of the most recent launch (record metrics). */
    SmParallelVerdict verdict_;

    LaunchContext ctx_;

    /** All partitioned launches ever begun (ids are indices; never
     *  reused, so contexts stay address-stable) and the ids of the
     *  currently active ones in admission order. */
    std::vector<std::unique_ptr<PartLaunch>> partLaunches_;
    std::vector<LaunchId> partActive_;

    Rng rng_;

    /** Local-memory backing store, reused across launches with the
     *  same shape so successive kernels see the same local data. */
    Addr localBase_ = kNoAddr;
    std::uint64_t localAllocThreads_ = 0;
    std::uint64_t localAllocBytes_ = 0;
};

} // namespace gpulat

#endif // GPULAT_GPU_GPU_HH
