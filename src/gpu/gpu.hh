/**
 * @file
 * Top-level GPU device: owns the SMs, interconnect and memory
 * partitions, dispatches thread blocks and runs the clock loop.
 * This is the public entry point of the library — host code
 * allocates device memory, copies data, launches kernels and reads
 * the collectors/statistics afterwards.
 */

#ifndef GPULAT_GPU_GPU_HH
#define GPULAT_GPU_GPU_HH

#include <memory>
#include <vector>

#include "gpu/gpu_config.hh"
#include "icnt/crossbar.hh"
#include "isa/kernel.hh"
#include "latency/collector.hh"
#include "mem/device_memory.hh"
#include "mem/partition.hh"
#include "simt/core.hh"

namespace gpulat {

/** What a kernel launch reports back. */
struct LaunchResult
{
    Cycle cycles = 0;        ///< wall-clock cycles of this launch
    Cycle startCycle = 0;
    Cycle endCycle = 0;
    std::uint64_t instructions = 0; ///< warp instructions issued
};

class Gpu
{
  public:
    explicit Gpu(GpuConfig config);

    /** @name Host-side memory API @{ */
    DeviceMemory &memory() { return dmem_; }
    Addr alloc(std::uint64_t bytes, std::uint64_t align = 256);
    void copyToDevice(Addr dst, const void *src, std::uint64_t bytes);
    void copyFromDevice(void *dst, Addr src, std::uint64_t bytes) const;
    /** @} */

    /**
     * Launch a kernel and simulate to completion (drained pipelines).
     *
     * @param kernel finalized kernel.
     * @param num_blocks 1-D grid size.
     * @param threads_per_block 1-D block size (<= warpSlots * 32).
     * @param params kernel parameters (<= kMaxParams).
     */
    LaunchResult launch(const Kernel &kernel, unsigned num_blocks,
                        unsigned threads_per_block,
                        const std::vector<RegValue> &params);

    /** @name Instrumentation @{ */
    StatRegistry &stats() { return stats_; }
    LatencyCollector &latencies() { return latCollector_; }
    ExposureCollector &exposure() { return expCollector_; }
    /** @} */

    Cycle now() const { return cycle_; }
    const GpuConfig &config() const { return config_; }
    SmCore &sm(unsigned i) { return *sms_[i]; }
    MemPartition &partition(unsigned i) { return *partitions_[i]; }

    /** Invalidate all L1s and L2s (between experiments). */
    void invalidateCaches();

  private:
    void tick();
    bool allDrained() const;
    std::uint64_t activitySignature() const;

    GpuConfig config_;
    StatRegistry stats_;
    LatencyCollector latCollector_;
    ExposureCollector expCollector_;
    DeviceMemory dmem_;

    Crossbar<MemRequest> reqNet_;
    Crossbar<MemRequest> respNet_;
    std::vector<std::unique_ptr<MemPartition>> partitions_;
    std::vector<std::unique_ptr<SmCore>> sms_;

    Cycle cycle_ = 0;
    std::uint64_t nextReqId_ = 0;
    LaunchContext ctx_;
    unsigned nextBlock_ = 0;
    unsigned dispatchRr_ = 0;

    /** Local-memory backing store, reused across launches with the
     *  same shape so successive kernels see the same local data. */
    Addr localBase_ = kNoAddr;
    std::uint64_t localAllocThreads_ = 0;
    std::uint64_t localAllocBytes_ = 0;
};

} // namespace gpulat

#endif // GPULAT_GPU_GPU_HH
