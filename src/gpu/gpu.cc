#include "gpu/gpu.hh"

#include <algorithm>

#include "common/log.hh"

namespace gpulat {

Gpu::Gpu(GpuConfig config)
    : config_(std::move(config)),
      dmem_(config_.deviceMemBytes),
      reqNet_("icnt.req", config_.numSms, config_.numPartitions,
              config_.icntLatency, config_.icntInQueue,
              config_.icntOutQueue, &stats_),
      respNet_("icnt.resp", config_.numPartitions, config_.numSms,
               config_.icntLatency, config_.icntInQueue,
               config_.icntOutQueue, &stats_)
{
    PartitionParams part_params = config_.partition;
    part_params.interleaveDivisor = config_.numPartitions;
    for (unsigned p = 0; p < config_.numPartitions; ++p) {
        partitions_.push_back(std::make_unique<MemPartition>(
            p, part_params, &stats_));
    }

    auto partition_of = [this](Addr line) {
        return config_.partitionOf(line);
    };
    for (unsigned s = 0; s < config_.numSms; ++s) {
        SmParams sm = config_.sm;
        sm.smId = s;
        sms_.push_back(std::make_unique<SmCore>(
            sm, &dmem_, &stats_, &latCollector_, &expCollector_,
            &reqNet_, partition_of, &nextReqId_));
    }
}

Addr
Gpu::alloc(std::uint64_t bytes, std::uint64_t align)
{
    return dmem_.alloc(bytes, align);
}

void
Gpu::copyToDevice(Addr dst, const void *src, std::uint64_t bytes)
{
    dmem_.copyIn(dst, src, bytes);
}

void
Gpu::copyFromDevice(void *dst, Addr src, std::uint64_t bytes) const
{
    dmem_.copyOut(src, dst, bytes);
}

void
Gpu::invalidateCaches()
{
    for (auto &sm : sms_)
        sm->invalidateL1();
    for (auto &part : partitions_) {
        GPULAT_ASSERT(part->drained(),
                      "cache invalidate while requests in flight");
        if (part->l2())
            part->l2()->invalidateAll();
    }
}

bool
Gpu::allDrained() const
{
    for (const auto &sm : sms_)
        if (sm->busy() || !sm->drained())
            return false;
    if (!reqNet_.empty() || !respNet_.empty())
        return false;
    for (const auto &part : partitions_)
        if (!part->drained())
            return false;
    return true;
}

std::uint64_t
Gpu::activitySignature() const
{
    std::uint64_t sig = nextReqId_ + nextBlock_;
    for (unsigned s = 0; s < config_.numSms; ++s) {
        sig += stats_.counterValue("sm" + std::to_string(s) +
                                   ".issued");
        sig += stats_.counterValue("sm" + std::to_string(s) +
                                   ".loads_completed");
    }
    return sig;
}

void
Gpu::tick()
{
    // Interconnect moves first so this cycle's ejections are last
    // cycle's traversals.
    reqNet_.tick(cycle_);
    respNet_.tick(cycle_);

    // Requests leaving the network enter their partition's ROP queue.
    for (unsigned p = 0; p < config_.numPartitions; ++p) {
        if (reqNet_.deliverable(p, cycle_) &&
            partitions_[p]->canAccept()) {
            partitions_[p]->accept(cycle_, reqNet_.eject(p));
        }
    }

    for (auto &part : partitions_)
        part->tick(cycle_);

    // Responses enter the return network (one per partition/cycle).
    for (unsigned p = 0; p < config_.numPartitions; ++p) {
        if (!partitions_[p]->responseReady(cycle_))
            continue;
        const unsigned dst = partitions_[p]->peekResponseSm();
        if (!respNet_.canInject(p))
            continue;
        MemRequest resp = partitions_[p]->popResponse();
        const bool ok = respNet_.inject(cycle_, p, dst,
                                        std::move(resp));
        GPULAT_ASSERT(ok, "response inject after canInject");
    }

    // Responses leaving the return network write back at their SM.
    for (unsigned s = 0; s < config_.numSms; ++s) {
        if (respNet_.deliverable(s, cycle_))
            sms_[s]->acceptResponse(cycle_, respNet_.eject(s));
    }

    for (auto &sm : sms_)
        sm->tick(cycle_);

    // Block dispatch: one block per SM per cycle, round-robin.
    for (unsigned k = 0;
         k < config_.numSms && nextBlock_ < ctx_.numBlocks; ++k) {
        const unsigned s = (dispatchRr_ + k) % config_.numSms;
        if (sms_[s]->canAcceptBlock()) {
            sms_[s]->dispatchBlock(nextBlock_++);
        }
    }
    dispatchRr_ = (dispatchRr_ + 1) % config_.numSms;

    ++cycle_;
}

LaunchResult
Gpu::launch(const Kernel &kernel, unsigned num_blocks,
            unsigned threads_per_block,
            const std::vector<RegValue> &params)
{
    if (num_blocks == 0 || threads_per_block == 0)
        fatal("launch of '", kernel.name, "' with empty grid/block");
    if (threads_per_block > config_.sm.warpSlots * kWarpSize)
        fatal("block of ", threads_per_block,
              " threads exceeds SM capacity");
    if (params.size() > kMaxParams)
        fatal("too many kernel parameters");
    if (kernel.sharedBytes > config_.sm.smemPerSm)
        fatal("kernel shared memory ", kernel.sharedBytes,
              " exceeds SM capacity ", config_.sm.smemPerSm);

    // The declared register count bounds each thread's register
    // file slice; code touching a register beyond it would corrupt
    // neighbouring state.
    int max_reg = -1;
    for (const auto &inst : kernel.code) {
        max_reg = std::max({max_reg, inst.dst, inst.srcA,
                            inst.useImm ? kNoReg : inst.srcB,
                            inst.srcC});
        if (inst.isStore() || inst.isAtomic())
            max_reg = std::max(max_reg, inst.srcB);
    }
    if (max_reg >= kernel.numRegs)
        fatal("kernel '", kernel.name, "' declares ", kernel.numRegs,
              " registers but uses r", max_reg);

    ctx_ = LaunchContext{};
    ctx_.kernel = &kernel;
    ctx_.numBlocks = num_blocks;
    ctx_.threadsPerBlock = threads_per_block;
    for (std::size_t i = 0; i < params.size(); ++i)
        ctx_.params[i] = params[i];
    ctx_.totalThreads =
        static_cast<std::uint64_t>(num_blocks) * threads_per_block;
    ctx_.localBytesPerThread = config_.localBytesPerThread;

    // Back the local space only if the kernel touches it.
    bool uses_local = false;
    for (const auto &inst : kernel.code)
        if (inst.isMemory() && inst.space == MemSpace::Local)
            uses_local = true;
    if (uses_local) {
        if (localBase_ == kNoAddr ||
            localAllocThreads_ != ctx_.totalThreads ||
            localAllocBytes_ != ctx_.localBytesPerThread) {
            localBase_ = dmem_.alloc(
                ctx_.totalThreads * ctx_.localBytesPerThread,
                config_.sm.lineBytes);
            localAllocThreads_ = ctx_.totalThreads;
            localAllocBytes_ = ctx_.localBytesPerThread;
        }
        ctx_.localBase = localBase_;
    }

    nextBlock_ = 0;
    for (auto &sm : sms_)
        sm->startLaunch(&ctx_);

    const Cycle start = cycle_;
    const std::uint64_t instr_before =
        [&] {
            std::uint64_t sum = 0;
            for (unsigned s = 0; s < config_.numSms; ++s)
                sum += stats_.counterValue(
                    "sm" + std::to_string(s) + ".issued");
            return sum;
        }();

    std::uint64_t last_sig = activitySignature();
    Cycle last_progress = cycle_;

    while (nextBlock_ < num_blocks || !allDrained()) {
        tick();

        // Watchdog: a whole-pipeline stall for this long is a bug.
        if ((cycle_ & 0x3fff) == 0) {
            const std::uint64_t sig = activitySignature();
            if (sig != last_sig) {
                last_sig = sig;
                last_progress = cycle_;
            } else if (cycle_ - last_progress > 2'000'000) {
                panic("no forward progress since cycle ",
                      last_progress, " (kernel '", kernel.name,
                      "', block ", nextBlock_, "/", num_blocks, ")");
            }
        }
    }

    LaunchResult result;
    result.startCycle = start;
    result.endCycle = cycle_;
    result.cycles = cycle_ - start;
    std::uint64_t instr_after = 0;
    for (unsigned s = 0; s < config_.numSms; ++s)
        instr_after += stats_.counterValue(
            "sm" + std::to_string(s) + ".issued");
    result.instructions = instr_after - instr_before;
    return result;
}

} // namespace gpulat
