#include "gpu/gpu.hh"

#include <algorithm>
#include <sstream>

#include "common/log.hh"
#include "gpu/kernel_analysis.hh"

namespace gpulat {

namespace {

void
validateRatio(const char *what, ClockRatio ratio)
{
    if (ratio.mul == 0 || ratio.div == 0)
        fatal(what, " clock ratio must be positive (got ", ratio.mul,
              ":", ratio.div, ")");
    if (ratio.mul > 64 || ratio.div > 64)
        fatal(what, " clock ratio ", ratio.mul, ":", ratio.div,
              " out of the supported [1/64, 64] range");
}

/**
 * Convert a latency configured in domain cycles to core cycles: a
 * domain at mul/div of the core frequency stretches each of its
 * cycles by div/mul core cycles (identity at 1:1, so calibrated
 * configs are untouched). Rounded up — hardware can't act on a
 * fraction of an edge.
 */
Cycle
toCoreCycles(Cycle domain_cycles, ClockRatio ratio)
{
    // A latency of n domain cycles spans the same core cycles as n
    // ticks of that domain's grid.
    return ClockDomain::tickCycle(domain_cycles, ratio);
}

/**
 * Validate the clock ratios before anything derives values from
 * them — runs on the config as the very first member initializer,
 * ahead of the toCoreCycles() uses in the init list.
 */
GpuConfig
validatedConfig(GpuConfig config)
{
    validateRatio("icnt", config.icntClock);
    validateRatio("l2", config.l2Clock);
    validateRatio("dram", config.dramClock);
    return config;
}

/** Scale every L2/ROP-domain latency of a partition config. */
void
scalePartitionLatencies(PartitionParams &p, ClockRatio l2,
                        ClockRatio dram)
{
    p.ropLatency = toCoreCycles(p.ropLatency, l2);
    p.l2QueueLatency = toCoreCycles(p.l2QueueLatency, l2);
    p.l2HitLatency = toCoreCycles(p.l2HitLatency, l2);
    p.l2MissLatency = toCoreCycles(p.l2MissLatency, l2);
    p.returnQueueLatency = toCoreCycles(p.returnQueueLatency, l2);

    p.dram.timing.tRCD = toCoreCycles(p.dram.timing.tRCD, dram);
    p.dram.timing.tRP = toCoreCycles(p.dram.timing.tRP, dram);
    p.dram.timing.tCAS = toCoreCycles(p.dram.timing.tCAS, dram);
    p.dram.timing.tBurst = toCoreCycles(p.dram.timing.tBurst, dram);
    p.dram.timing.tExtra = toCoreCycles(p.dram.timing.tExtra, dram);

    p.dram.ddr.tRAS = toCoreCycles(p.dram.ddr.tRAS, dram);
    p.dram.ddr.tRRDS = toCoreCycles(p.dram.ddr.tRRDS, dram);
    p.dram.ddr.tRRDL = toCoreCycles(p.dram.ddr.tRRDL, dram);
    p.dram.ddr.tFAW = toCoreCycles(p.dram.ddr.tFAW, dram);
    p.dram.ddr.tWTR = toCoreCycles(p.dram.ddr.tWTR, dram);
    p.dram.ddr.tRTW = toCoreCycles(p.dram.ddr.tRTW, dram);
    p.dram.ddr.tREFI = toCoreCycles(p.dram.ddr.tREFI, dram);
    p.dram.ddr.tRFC = toCoreCycles(p.dram.ddr.tRFC, dram);
}

} // namespace

Gpu::Gpu(GpuConfig config)
    : config_(validatedConfig(std::move(config))),
      dmem_(config_.deviceMemBytes),
      reqNet_("icnt.req", config_.numSms, config_.numPartitions,
              toCoreCycles(config_.icntLatency, config_.icntClock),
              config_.icntInQueue, config_.icntOutQueue, &stats_),
      respNet_("icnt.resp", config_.numPartitions, config_.numSms,
               toCoreCycles(config_.icntLatency, config_.icntClock),
               config_.icntInQueue, config_.icntOutQueue, &stats_),
      reqEject_(reqNet_, partitions_),
      respInject_(partitions_, respNet_),
      respEject_(respNet_, sms_),
      dispatcher_(sms_),
      rng_(config_.seed)
{
    PartitionParams part_params = config_.partition;
    part_params.interleaveDivisor = config_.numPartitions;
    part_params.dramClock = config_.dramClock;
    scalePartitionLatencies(part_params, config_.l2Clock,
                            config_.dramClock);
    for (unsigned p = 0; p < config_.numPartitions; ++p) {
        partitions_.push_back(std::make_unique<MemPartition>(
            p, part_params, &stats_, &dmem_));
    }

    // One collector shard per SM — shards must exist before the SM
    // constructors grab their append handles.
    latCollector_.resize(config_.numSms);
    expCollector_.resize(config_.numSms);

    auto partition_of = [this](Addr line) {
        return config_.partitionOf(line);
    };
    for (unsigned s = 0; s < config_.numSms; ++s) {
        SmParams sm = config_.sm;
        sm.smId = s;
        sms_.push_back(std::make_unique<SmCore>(
            sm, &dmem_, &stats_, &latCollector_, &expCollector_,
            &reqNet_, partition_of));
    }

    // Wire the engine. Registration order is intra-cycle tick order
    // and replays the pre-engine hand-written orchestration exactly
    // at unity ratios: networks move first (this cycle's ejections
    // are last cycle's traversals), then requests sink toward DRAM,
    // responses rise back, SMs consume them, and new blocks land.
    ClockDomain &core = engine_.addDomain("core", ClockRatio{1, 1});
    ClockDomain &icnt = engine_.addDomain("icnt", config_.icntClock);
    ClockDomain &l2 = engine_.addDomain("l2", config_.l2Clock);
    ClockDomain &dram = engine_.addDomain("dram", config_.dramClock);

    // Tick groups (engine.tickJobs > 1 ticks distinct groups
    // concurrently): each partition's two sides form one group —
    // tickMemSide()/tickL2Side() touch only that partition's
    // queues, banks and pre-resolved counters, so partitions
    // commute with each other and with the SM groups. SM cores
    // append only to per-SM state (their own collector shards,
    // their own request-id pool, per-source crossbar inject
    // queues), so clusters of engine.smGroupSize SMs get their own
    // groups — subject to the per-launch kernel safety analysis in
    // launch(), which serializes SMs whose kernel could race on
    // device memory (functional execution happens at issue).
    // smGroupSize == 0 restores the single fused "sm" group. Ports,
    // crossbars and the dispatcher move packets *between* groups,
    // so they stay on the coordinator (group 0) and act as ordering
    // barriers around the parallel batches.
    const std::size_t cluster = config_.engine.smGroupSize;
    smGroupOf_.resize(config_.numSms);
    if (cluster == 0) {
        const unsigned fused = engine_.addGroup("sm");
        std::fill(smGroupOf_.begin(), smGroupOf_.end(), fused);
    } else {
        unsigned group = 0;
        for (unsigned s = 0; s < config_.numSms; ++s) {
            if (s % cluster == 0)
                group = engine_.addGroup(
                    "sm" + std::to_string(s / cluster));
            smGroupOf_[s] = group;
        }
    }
    engine_.add(icnt, reqNet_);
    engine_.add(icnt, respNet_);
    engine_.add(l2, reqEject_);
    for (auto &part : partitions_) {
        const unsigned part_group = engine_.addGroup(
            "part" + std::to_string(partMemSides_.size()));
        partMemSides_.push_back(
            std::make_unique<PartitionMemSide>(*part));
        partL2Sides_.push_back(
            std::make_unique<PartitionL2Side>(*part));
        engine_.add(dram, *partMemSides_.back(), part_group);
        engine_.add(l2, *partL2Sides_.back(), part_group);
    }
    engine_.add(icnt, respInject_);
    engine_.add(core, respEject_);
    for (unsigned s = 0; s < config_.numSms; ++s)
        engine_.add(core, *sms_[s], smGroupOf_[s]);
    engine_.add(core, dispatcher_);

    // Wake edges: every path a performed tick can deliver input
    // through, so per-domain fast-forward knows whose cached
    // promise a tick may have invalidated. A consumer stalled on
    // back-pressure keeps *itself* awake through its own ready
    // queue heads, so releasing back-pressure needs no edge — in
    // particular the DRAM side never enqueues L2-side front-queue
    // work (completions go to the return queue), so there is no
    // mem-side -> L2-side edge.
    engine_.link(reqNet_, reqEject_);
    engine_.link(respNet_, respEject_);
    engine_.link(respInject_, respNet_);
    for (std::size_t p = 0; p < partitions_.size(); ++p) {
        engine_.link(reqEject_, *partL2Sides_[p]);
        engine_.link(*partL2Sides_[p], *partMemSides_[p]);
        engine_.link(*partL2Sides_[p], respInject_);
        engine_.link(*partMemSides_[p], respInject_);
    }
    for (auto &sm : sms_) {
        engine_.link(respEject_, *sm);
        engine_.link(dispatcher_, *sm);
        engine_.link(*sm, reqNet_);
        engine_.link(*sm, dispatcher_);
    }

    engine_.setMode(config_.idleFastForward);
    engine_.setTickJobs(config_.engine.tickJobs);
    engine_.bindStats(stats_);
}

Addr
Gpu::alloc(std::uint64_t bytes, std::uint64_t align)
{
    return dmem_.alloc(bytes, align);
}

void
Gpu::copyToDevice(Addr dst, const void *src, std::uint64_t bytes)
{
    dmem_.copyIn(dst, src, bytes);
}

void
Gpu::copyFromDevice(void *dst, Addr src, std::uint64_t bytes) const
{
    dmem_.copyOut(src, dst, bytes);
}

void
Gpu::invalidateCaches()
{
    for (auto &sm : sms_) {
        GPULAT_ASSERT(!sm->busy() && sm->drained(),
                      "experiment reset while SM busy");
        sm->invalidateL1();
    }
    GPULAT_ASSERT(reqNet_.empty() && respNet_.empty(),
                  "experiment reset while packets in the icnt");
    for (auto &part : partitions_) {
        GPULAT_ASSERT(part->drained(),
                      "cache invalidate while requests in flight");
        if (part->l2())
            part->l2()->invalidateAll();
        // Open rows and bus-busy state would hand the next
        // experiment's first accesses stale row hits.
        part->dram().reset();
    }
    latCollector_.clear();
    expCollector_.clear();
    stats_.markEpoch();
    // DRAM open-row/bus state changed behind the engine's back.
    engine_.wakeAll();
}

bool
Gpu::allDrained() const
{
    for (const auto &sm : sms_)
        if (sm->busy() || !sm->drained())
            return false;
    if (!reqNet_.empty() || !respNet_.empty())
        return false;
    for (const auto &part : partitions_)
        if (!part->drained())
            return false;
    return true;
}

std::uint64_t
Gpu::activitySignature() const
{
    // Any packet movement or instruction progress perturbs this;
    // equality across a long window means a genuine stall. The
    // per-SM request pools sum to the old shared counter's value,
    // so the signature is numerically unchanged by the sharding.
    std::uint64_t sig = dispatcher_.nextBlock();
    for (const LaunchId id : partActive_)
        sig += partLaunches_[id]->nextBlock;
    for (const auto &sm : sms_)
        sig += sm->requestsIssued();
    for (unsigned s = 0; s < config_.numSms; ++s) {
        const std::string prefix = "sm" + std::to_string(s);
        sig += stats_.counterValue(prefix + ".issued");
        sig += stats_.counterValue(prefix + ".loads_completed");
    }
    for (unsigned p = 0; p < config_.numPartitions; ++p) {
        const std::string prefix = "part" + std::to_string(p);
        sig += stats_.counterValue(prefix + ".l2_accesses");
        sig += stats_.counterValue(prefix + ".dram_reads");
        sig += stats_.counterValue(prefix + ".dram_writes");
    }
    sig += stats_.counterValue("icnt.req.transferred");
    sig += stats_.counterValue("icnt.resp.transferred");
    return sig;
}

std::string
Gpu::stallReport(const std::string &kernel_name)
{
    // Close every lazy idle-accounting window first: under
    // perDomain fast-forward, sleeping components carry
    // fastForward() windows that are still open when the watchdog
    // fires, so an un-settled report shows stale idle/occupancy
    // cycle totals (an SM asleep since cycle 100 would report ~100
    // idle cycles at a cycle-50000 stall).
    engine_.settle();

    std::ostringstream oss;
    oss << "no forward progress at cycle " << engine_.now()
        << " (kernel '" << kernel_name << "', dispatched "
        << dispatcher_.nextBlock() << "/" << dispatcher_.numBlocks()
        << " blocks)\n";
    oss << "  engine: now=" << engine_.now()
        << " steps=" << engine_.steps()
        << " ff_skipped=" << engine_.skippedCycles() << "\n";
    for (const auto &domain : engine_.domains()) {
        oss << "  engine." << domain->name()
            << ": ticks_run=" << domain->componentTicksRun()
            << " ticks_skipped=" << domain->componentTicksSkipped()
            << " local_cycles=" << domain->localCycles() << "\n";
    }
    // Per-tick-group progress: group tick totals are invariant
    // across tickJobs, so a group whose ticks_run froze is stalled
    // in every schedule. SM groups also aggregate member idle.
    for (unsigned g = 1; g < engine_.numGroups(); ++g) {
        oss << "  engine.group." << engine_.groupName(g)
            << ": ticks_run=" << engine_.groupTicksRun(g);
        std::uint64_t idle = 0;
        bool any_sm = false;
        for (unsigned s = 0; s < config_.numSms; ++s) {
            if (smGroupOf_[s] != g)
                continue;
            any_sm = true;
            idle += stats_.counterValue(
                "sm" + std::to_string(s) + ".idle_cycles");
        }
        if (any_sm)
            oss << " idle=" << idle;
        oss << "\n";
    }
    if (!smParallelNote_.empty())
        oss << "  sm-parallel: " << smParallelNote_ << "\n";
    for (const LaunchId id : partActive_) {
        const PartLaunch &pl = *partLaunches_[id];
        oss << "  launch " << id << " ('" << pl.ctx.kernel->name
            << "'): " << pl.nextBlock << "/" << pl.ctx.numBlocks
            << " blocks on " << pl.smIds.size() << " SMs"
            << (pl.serialized ? " [serialized]" : "") << "\n";
    }
    oss << "  icnt: req=" << reqNet_.inFlight()
        << " resp=" << respNet_.inFlight() << " in flight\n";
    for (unsigned s = 0; s < config_.numSms; ++s) {
        oss << "  " << sms_[s]->occupancySummary() << " idle="
            << stats_.counterValue("sm" + std::to_string(s) +
                                   ".idle_cycles")
            << (sms_[s]->drained() ? "" : " [not drained]") << "\n";
    }
    for (const auto &part : partitions_)
        oss << "  " << part->occupancySummary()
            << (part->drained() ? "" : " [not drained]") << "\n";
    return oss.str();
}

void
Gpu::validateLaunchShape(const Kernel &kernel, unsigned num_blocks,
                         unsigned threads_per_block,
                         std::size_t num_params) const
{
    if (num_blocks == 0 || threads_per_block == 0)
        fatal("launch of '", kernel.name, "' with empty grid/block");
    if (threads_per_block > config_.sm.warpSlots * kWarpSize)
        fatal("block of ", threads_per_block,
              " threads exceeds SM capacity");
    if (num_params > kMaxParams)
        fatal("too many kernel parameters");
    if (kernel.sharedBytes > config_.sm.smemPerSm)
        fatal("kernel shared memory ", kernel.sharedBytes,
              " exceeds SM capacity ", config_.sm.smemPerSm);

    // The declared register count bounds each thread's register
    // file slice; code touching a register beyond it would corrupt
    // neighbouring state.
    int max_reg = -1;
    for (const auto &inst : kernel.code) {
        max_reg = std::max({max_reg, inst.dst, inst.srcA,
                            inst.useImm ? kNoReg : inst.srcB,
                            inst.srcC});
        if (inst.isStore() || inst.isAtomic())
            max_reg = std::max(max_reg, inst.srcB);
    }
    if (max_reg >= kernel.numRegs)
        fatal("kernel '", kernel.name, "' declares ", kernel.numRegs,
              " registers but uses r", max_reg);
}

LaunchResult
Gpu::launch(const Kernel &kernel, unsigned num_blocks,
            unsigned threads_per_block,
            const std::vector<RegValue> &params)
{
    validateLaunchShape(kernel, num_blocks, threads_per_block,
                        params.size());
    GPULAT_ASSERT(partActive_.empty(),
                  "launch() while partitioned launches active");

    ctx_ = LaunchContext{};
    ctx_.kernel = &kernel;
    ctx_.numBlocks = num_blocks;
    ctx_.threadsPerBlock = threads_per_block;
    for (std::size_t i = 0; i < params.size(); ++i)
        ctx_.params[i] = params[i];
    ctx_.totalThreads =
        static_cast<std::uint64_t>(num_blocks) * threads_per_block;
    ctx_.localBytesPerThread = config_.localBytesPerThread;

    // Back the local space only if the kernel touches it.
    bool uses_local = false;
    for (const auto &inst : kernel.code)
        if (inst.isMemory() && inst.space == MemSpace::Local)
            uses_local = true;
    if (uses_local) {
        if (localBase_ == kNoAddr ||
            localAllocThreads_ != ctx_.totalThreads ||
            localAllocBytes_ != ctx_.localBytesPerThread) {
            localBase_ = dmem_.alloc(
                ctx_.totalThreads * ctx_.localBytesPerThread,
                config_.sm.lineBytes);
            localAllocThreads_ = ctx_.totalThreads;
            localAllocBytes_ = ctx_.localBytesPerThread;
        }
        ctx_.localBase = localBase_;
    }

    // Atomics forward their functional RMW to the owning partition
    // in every mode (not just when SM groups are on): the fused
    // smGroupSize == 0 shape must produce byte-identical results to
    // the grouped shapes, so the functional semantics cannot depend
    // on the grouping.
    ctx_.forwardAtomics = true;

    // Decide whether this launch may tick SMs concurrently. With
    // per-cluster SM groups the analysis gates concurrency; an
    // unsafe kernel (data-dependent stores, potentially overlapping
    // cross-block footprints) pins every SM to the coordinator for
    // this launch. Group tick *counters* stay with the declared
    // groups either way, so records are identical across tickJobs
    // regardless of the verdict. The fused smGroupSize == 0 shape
    // keeps SMs in registration order within their single group and
    // needs no gating — but the verdict is still computed so every
    // ExperimentRecord carries it.
    verdict_ = analyzeSmParallelSafety(kernel, num_blocks,
                                       threads_per_block, ctx_.params);
    smParallelNote_ = std::string(verdict_.safe ? "parallel ("
                                                : "serialized (") +
                      verdict_.reason + ")";
    if (config_.engine.smGroupSize != 0) {
        for (auto &sm : sms_)
            engine_.setSerialized(*sm, !verdict_.safe);
    }

    dispatcher_.beginGrid(num_blocks);
    for (auto &sm : sms_)
        sm->startLaunch(&ctx_);
    // Arming the dispatcher and loading warps happened outside the
    // engine: cached promises cannot have seen it.
    engine_.wakeAll();

    const Cycle start = engine_.now();
    const std::uint64_t instr_before =
        [&] {
            std::uint64_t sum = 0;
            for (unsigned s = 0; s < config_.numSms; ++s)
                sum += stats_.counterValue(
                    "sm" + std::to_string(s) + ".issued");
            return sum;
        }();

    // Watchdog: the no-progress window is measured in *performed
    // engine steps* (TickEngine::steps()), never in core cycles —
    // fastForward() can jump millions of legitimate idle cycles in
    // one step(), so a cycle-measured window would flag a long but
    // healthy DRAM wait as a hang. A genuine stall keeps stepping
    // (the stuck component stays "due") with a frozen signature,
    // so it is still caught in every mode, including Off, where
    // steps and cycles coincide. Panics with a per-layer report.
    const std::uint64_t stall_steps = config_.engine.watchdogStallSteps;
    std::uint64_t last_sig = activitySignature();
    std::uint64_t last_progress_step = engine_.steps();
    std::uint64_t iters = 0;

    while (!dispatcher_.allDispatched() || !allDrained()) {
        engine_.step();
        engine_.fastForward(); // no-op in IdleFastForward::Off

        if ((++iters & 0x3fffu) == 0) {
            const std::uint64_t sig = activitySignature();
            if (sig != last_sig) {
                last_sig = sig;
                last_progress_step = engine_.steps();
            } else if (stall_steps != 0 &&
                       engine_.steps() - last_progress_step >
                           stall_steps) {
                panic(stallReport(kernel.name));
            }
        }
    }

    // Close every component's lazy idle-accounting window before
    // anything reads per-cycle statistics.
    engine_.settle();

    LaunchResult result;
    result.startCycle = start;
    result.endCycle = engine_.now();
    result.cycles = engine_.now() - start;
    std::uint64_t instr_after = 0;
    for (unsigned s = 0; s < config_.numSms; ++s)
        instr_after += stats_.counterValue(
            "sm" + std::to_string(s) + ".issued");
    result.instructions = instr_after - instr_before;
    return result;
}

Gpu::LaunchId
Gpu::beginPartitionedLaunch(const Kernel &kernel, unsigned num_blocks,
                            unsigned threads_per_block,
                            const std::vector<RegValue> &params,
                            std::vector<unsigned> sm_ids)
{
    validateLaunchShape(kernel, num_blocks, threads_per_block,
                        params.size());
    if (sm_ids.empty())
        fatal("partitioned launch of '", kernel.name,
              "' with no SMs");
    for (std::size_t i = 0; i < sm_ids.size(); ++i) {
        const unsigned s = sm_ids[i];
        if (s >= config_.numSms)
            fatal("partitioned launch of '", kernel.name,
                  "' names SM ", s, " of ", config_.numSms);
        for (std::size_t j = i + 1; j < sm_ids.size(); ++j)
            if (sm_ids[j] == s)
                fatal("partitioned launch of '", kernel.name,
                      "' names SM ", s, " twice");
        for (const LaunchId other : partActive_)
            for (const unsigned t : partLaunches_[other]->smIds)
                if (t == s)
                    fatal("SM ", s, " already owned by active "
                          "launch ", other);
        GPULAT_ASSERT(!sms_[s]->busy() && sms_[s]->drained(),
                      "partitioned launch on a busy SM");
    }
    // Concurrent grids would have to share the single local-memory
    // backing store; no serving kernel needs local space.
    for (const auto &inst : kernel.code)
        if (inst.isMemory() && inst.space == MemSpace::Local)
            fatal("kernel '", kernel.name, "' uses local memory; "
                  "unsupported for concurrent launches");

    auto pl = std::make_unique<PartLaunch>();
    pl->ctx.kernel = &kernel;
    pl->ctx.numBlocks = num_blocks;
    pl->ctx.threadsPerBlock = threads_per_block;
    for (std::size_t i = 0; i < params.size(); ++i)
        pl->ctx.params[i] = params[i];
    pl->ctx.totalThreads =
        static_cast<std::uint64_t>(num_blocks) * threads_per_block;
    pl->ctx.localBytesPerThread = config_.localBytesPerThread;
    pl->ctx.forwardAtomics = true;
    pl->smIds = std::move(sm_ids);
    pl->active = true;

    // Per-launch safety, composed across the resident set: this
    // launch serializes when its own kernel is unsafe *or* its
    // footprint may race with any active launch's. Only this
    // launch's SMs are pinned — the coordinator joins every
    // parallel section before ticking a serialized component
    // inline, so one conservative tenant never races with (or slows
    // the verdict of) its SM-parallel neighbours. The pin is
    // conservative across the launch's whole lifetime: it is not
    // re-evaluated when a conflicting neighbour retires first.
    pl->verdict = analyzeSmParallelSafety(
        kernel, num_blocks, threads_per_block, pl->ctx.params);
    verdict_ = pl->verdict;
    if (config_.engine.smGroupSize != 0) {
        bool serial = !pl->verdict.safe;
        for (const LaunchId other : partActive_)
            if (launchesMayConflict(pl->verdict,
                                    partLaunches_[other]->verdict))
                serial = true;
        pl->serialized = serial;
        for (const unsigned s : pl->smIds)
            engine_.setSerialized(*sms_[s], serial);
        smParallelNote_ = "launch '" + kernel.name + "' " +
                          (serial ? "serialized (" : "parallel (") +
                          pl->verdict.reason + ")";
    }

    for (const unsigned s : pl->smIds)
        sms_[s]->startLaunch(&pl->ctx);
    // Binding contexts happened outside the engine: cached promises
    // cannot have seen it.
    engine_.wakeAll();

    const auto id = static_cast<LaunchId>(partLaunches_.size());
    partLaunches_.push_back(std::move(pl));
    partActive_.push_back(id);
    return id;
}

bool
Gpu::partitionedLaunchDone(LaunchId id) const
{
    const PartLaunch &pl = *partLaunches_[id];
    GPULAT_ASSERT(pl.active, "done query on a retired launch");
    if (pl.nextBlock < pl.ctx.numBlocks)
        return false;
    for (const unsigned s : pl.smIds)
        if (sms_[s]->busy() || !sms_[s]->drained())
            return false;
    return true;
}

void
Gpu::retirePartitionedLaunch(LaunchId id)
{
    GPULAT_ASSERT(partitionedLaunchDone(id),
                  "retiring an unfinished launch");
    PartLaunch &pl = *partLaunches_[id];
    pl.active = false;
    if (config_.engine.smGroupSize != 0)
        for (const unsigned s : pl.smIds)
            engine_.setSerialized(*sms_[s], false);
    partActive_.erase(
        std::find(partActive_.begin(), partActive_.end(), id));
}

void
Gpu::tickPartitionedDispatch(Cycle now)
{
    for (const LaunchId id : partActive_) {
        PartLaunch &pl = *partLaunches_[id];
        if (pl.nextBlock >= pl.ctx.numBlocks)
            continue;
        // Up to one block per owned SM per cycle, like the
        // single-launch BlockDispatcher. The rotation offset is
        // `now % n` rather than a tick-counted rotor so skipped
        // scheduler cycles (which can never dispatch — no SM had
        // room) do not shift later dispatch decisions between
        // fast-forward modes.
        const std::size_t n = pl.smIds.size();
        const auto start = static_cast<std::size_t>(now % n);
        for (std::size_t k = 0;
             k < n && pl.nextBlock < pl.ctx.numBlocks; ++k) {
            SmCore &sm = *sms_[pl.smIds[(start + k) % n]];
            if (sm.canAcceptBlock())
                sm.dispatchBlock(pl.nextBlock++);
        }
    }
}

bool
Gpu::partitionedDispatchReady() const
{
    for (const LaunchId id : partActive_) {
        const PartLaunch &pl = *partLaunches_[id];
        if (pl.nextBlock >= pl.ctx.numBlocks)
            continue;
        for (const unsigned s : pl.smIds)
            if (sms_[s]->canAcceptBlock())
                return true;
    }
    return false;
}

bool
Gpu::partitionedSerialized(LaunchId id) const
{
    return partLaunches_[id]->serialized;
}

} // namespace gpulat
