#include "mem/dram_sched.hh"

#include "common/log.hh"

namespace gpulat {

const char *
toString(DramSchedPolicy policy)
{
    switch (policy) {
      case DramSchedPolicy::FCFS: return "FCFS";
      case DramSchedPolicy::FRFCFS: return "FR-FCFS";
    }
    return "?";
}

std::optional<std::size_t>
pickDramRequest(DramSchedPolicy policy,
                const std::deque<MemRequest> &queue,
                const DramChannel &channel, Cycle now,
                Cycle starvation_limit)
{
    if (queue.empty())
        return std::nullopt;

    if (policy == DramSchedPolicy::FCFS) {
        // Strictly oldest-first; wait for its bank if necessary.
        return channel.bankReady(queue.front().dramAddr(), now)
            ? std::optional<std::size_t>(0)
            : std::nullopt;
    }

    // Anti-starvation: when the oldest request has been bypassed for
    // too long, stop preferring row hits over it. An unstamped
    // enqueue cycle would silently disable this forever, so it is a
    // bug in the producer (pushDram() stamps every request).
    const Cycle head_enq = queue.front().trace.dramEnq;
    GPULAT_ASSERT(head_enq != kNoCycle,
                  "DRAM request reached the scheduler without a "
                  "dramEnq stamp: anti-starvation would be disabled");
    const bool starving = now - head_enq > starvation_limit;

    // FR-FCFS: oldest ready row-hit first, then oldest ready request.
    std::optional<std::size_t> oldest_ready;
    for (std::size_t i = 0; i < queue.size(); ++i) {
        if (!channel.bankReady(queue[i].dramAddr(), now))
            continue;
        if (!starving && channel.rowHit(queue[i].dramAddr()))
            return i;
        if (!oldest_ready)
            oldest_ready = i;
        if (starving)
            break; // serve strictly oldest-ready
    }
    return oldest_ready;
}

} // namespace gpulat
