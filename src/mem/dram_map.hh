/**
 * @file
 * Pluggable DRAM address mapping: line address -> (rank, bank
 * group, bank, row).
 *
 * The mapping decides which banks a streaming access pattern
 * exercises and therefore which activate-to-activate timing rules
 * (tRRD_S across bank groups vs the slower tRRD_L inside one) it
 * pays — making the map a first-class ablation axis for the
 * paper-style latency breakdown. The `Row` map reproduces the
 * original flat model's bankOf()/rowOf() arithmetic bit-for-bit,
 * so `mem.dram.model=simple` timings are untouched by this layer.
 */

#ifndef GPULAT_MEM_DRAM_MAP_HH
#define GPULAT_MEM_DRAM_MAP_HH

#include <cstdint>

#include "common/types.hh"

namespace gpulat {

/** Which DRAM timing model the channel runs. */
enum class DramModel : std::uint8_t {
    Simple, ///< flat open-row check (the original calibrated model)
    Ddr,    ///< per-bank command FSM: tRAS/tRRD/tFAW/refresh/...
};

/** Line address -> bank placement policy. */
enum class DramAddrMap : std::uint8_t {
    Row,       ///< row-interleave: consecutive rows walk banks of
               ///< one bank group before moving to the next group
    BankGroup, ///< bank-group-interleave: consecutive rows alternate
               ///< bank groups (exploits the faster tRRD_S)
    Xor,       ///< Row placement with the bank index XOR-hashed by
               ///< the row, breaking power-of-two stride conflicts
};

/** Row-buffer management after a column access (ddr model only). */
enum class DramPagePolicy : std::uint8_t {
    Open,   ///< leave the row open (bet on locality)
    Closed, ///< auto-precharge after every access
};

const char *toString(DramModel model);
const char *toString(DramAddrMap map);
const char *toString(DramPagePolicy page);

/** Everything the mapper needs to know about the channel shape. */
struct DramGeometry
{
    unsigned banks = 8;      ///< banks per rank
    unsigned bankGroups = 4; ///< bank groups per rank (divides banks)
    unsigned ranks = 1;
    std::uint64_t rowBytes = 2048;
    DramAddrMap map = DramAddrMap::Row;
};

/** Where a line address lands inside the channel. */
struct DramCoord
{
    unsigned flatBank = 0;   ///< rank * banks + bankInRank
    unsigned rank = 0;
    unsigned bankInRank = 0;
    unsigned group = 0;      ///< bank group within the rank
    std::uint64_t row = 0;
};

/**
 * Map a line address. For every map policy, flatBank and row agree
 * with the original flat model's bankOf()/rowOf() when map == Row
 * (the group/rank decomposition merely annotates the same bank
 * index); Xor permutes the bank index per row; BankGroup keeps the
 * Row bank index but renumbers which group each bank belongs to.
 */
DramCoord mapDramAddress(const DramGeometry &geom, Addr line_addr);

} // namespace gpulat

#endif // GPULAT_MEM_DRAM_MAP_HH
