/**
 * @file
 * Functional device memory: flat byte store + bump allocator.
 *
 * Timing lives entirely in the caches/interconnect/DRAM models; this
 * class is the architectural state kernels actually read and write.
 */

#ifndef GPULAT_MEM_DEVICE_MEMORY_HH
#define GPULAT_MEM_DEVICE_MEMORY_HH

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace gpulat {

class DeviceMemory
{
  public:
    explicit DeviceMemory(std::uint64_t bytes) : data_(bytes, 0) {}

    /**
     * Allocate @p bytes with @p align alignment (bump allocator;
     * there is no free(), experiments create a fresh Gpu instead).
     */
    Addr
    alloc(std::uint64_t bytes, std::uint64_t align = 256)
    {
        GPULAT_ASSERT(align > 0 && (align & (align - 1)) == 0,
                      "alignment must be a power of two");
        Addr base = (brk_ + align - 1) & ~(align - 1);
        if (base + bytes > data_.size())
            fatal("device memory exhausted: want ", bytes,
                  " bytes at ", base, ", have ", data_.size());
        brk_ = base + bytes;
        return base;
    }

    std::uint64_t
    read64(Addr addr) const
    {
        checkRange(addr, 8);
        std::uint64_t v;
        std::memcpy(&v, &data_[addr], 8);
        return v;
    }

    void
    write64(Addr addr, std::uint64_t value)
    {
        checkRange(addr, 8);
        std::memcpy(&data_[addr], &value, 8);
    }

    void
    copyIn(Addr addr, const void *src, std::uint64_t bytes)
    {
        checkRange(addr, bytes);
        std::memcpy(&data_[addr], src, bytes);
    }

    void
    copyOut(Addr addr, void *dst, std::uint64_t bytes) const
    {
        checkRange(addr, bytes);
        std::memcpy(dst, &data_[addr], bytes);
    }

    std::uint64_t size() const { return data_.size(); }
    std::uint64_t allocated() const { return brk_; }

  private:
    void
    checkRange(Addr addr, std::uint64_t bytes) const
    {
        if (addr + bytes > data_.size())
            fatal("device memory access out of range: [", addr, ", ",
                  addr + bytes, ") of ", data_.size());
    }

    std::vector<std::uint8_t> data_;
    Addr brk_ = 0;
};

} // namespace gpulat

#endif // GPULAT_MEM_DEVICE_MEMORY_HH
