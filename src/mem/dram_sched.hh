/**
 * @file
 * DRAM request schedulers.
 *
 * The paper singles out "DRAM access scheduling" as one of the two
 * dominant dynamic latency components and suggests the scheduling
 * algorithm as a latency lever; we therefore implement both the
 * throughput-oriented FR-FCFS (first-ready, row-hit-first) policy
 * GPUs ship and a plain FCFS baseline for the ablation bench.
 */

#ifndef GPULAT_MEM_DRAM_SCHED_HH
#define GPULAT_MEM_DRAM_SCHED_HH

#include <cstddef>
#include <deque>
#include <optional>

#include "mem/dram.hh"
#include "mem/request.hh"

namespace gpulat {

/** Available scheduling policies. */
enum class DramSchedPolicy : std::uint8_t { FCFS, FRFCFS };

const char *toString(DramSchedPolicy policy);

/**
 * Select which queued request the channel should service next.
 *
 * @param policy scheduling policy.
 * @param queue pending requests in arrival order.
 * @param channel bank state (row-hit queries).
 * @param now current cycle.
 * @param starvation_limit FR-FCFS only: once the oldest request has
 *        waited this long, fall back to oldest-first so a stream of
 *        row hits cannot starve a row conflict indefinitely.
 * @return index into @p queue, or nullopt if nothing is serviceable
 *         (all target banks busy).
 */
std::optional<std::size_t>
pickDramRequest(DramSchedPolicy policy,
                const std::deque<MemRequest> &queue,
                const DramChannel &channel, Cycle now,
                Cycle starvation_limit = 768);

} // namespace gpulat

#endif // GPULAT_MEM_DRAM_SCHED_HH
