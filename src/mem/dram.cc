#include "mem/dram.hh"

#include "common/log.hh"

namespace gpulat {

DramChannel::DramChannel(std::string name, const DramParams &params,
                         StatRegistry *stats)
    : name_(std::move(name)), params_(params)
{
    GPULAT_ASSERT(params_.banks > 0, "channel needs banks");
    GPULAT_ASSERT(params_.rowBytes > 0, "rows need a size");
    banks_.resize(params_.banks);
    GPULAT_ASSERT(stats != nullptr, "dram needs stats");
    rowHits_ = &stats->counter(name_ + ".row_hits");
    rowMisses_ = &stats->counter(name_ + ".row_misses");
    rowClosed_ = &stats->counter(name_ + ".row_closed");
}

unsigned
DramChannel::bankOf(Addr line_addr) const
{
    // Rows are contiguous within a bank; banks interleave at row
    // granularity so streaming accesses spread across banks.
    return static_cast<unsigned>(
        (line_addr / params_.rowBytes) % params_.banks);
}

std::uint64_t
DramChannel::rowOf(Addr line_addr) const
{
    return line_addr / params_.rowBytes / params_.banks;
}

bool
DramChannel::rowHit(Addr line_addr) const
{
    const Bank &bank = banks_[bankOf(line_addr)];
    return bank.rowOpen && bank.openRow == rowOf(line_addr);
}

bool
DramChannel::bankReady(Addr line_addr, Cycle now) const
{
    return banks_[bankOf(line_addr)].readyAt <= now;
}

Cycle
DramChannel::schedule(Addr line_addr, bool is_write, Cycle now)
{
    (void)is_write; // reads/writes share timing in this model
    Bank &bank = banks_[bankOf(line_addr)];
    const std::uint64_t row = rowOf(line_addr);
    const DramTiming &t = params_.timing;

    Cycle start = std::max(now, bank.readyAt);
    Cycle first_data;
    if (bank.rowOpen && bank.openRow == row) {
        rowHits_->inc();
        first_data = start + t.tCAS;
    } else if (bank.rowOpen) {
        rowMisses_->inc();
        first_data = start + t.tRP + t.tRCD + t.tCAS;
    } else {
        rowClosed_->inc();
        first_data = start + t.tRCD + t.tCAS;
    }

    // The burst must win the shared data bus.
    Cycle burst_start = std::max(first_data, busFreeAt_);
    Cycle done = burst_start + t.tBurst + t.tExtra;
    busFreeAt_ = burst_start + t.tBurst;

    bank.rowOpen = true;
    bank.openRow = row;
    // The bank can take its next column command once the burst is
    // off the sense amps; approximating with the burst end keeps
    // banks pipelined but serialized per bank.
    bank.readyAt = burst_start + t.tBurst;
    return done;
}

void
DramChannel::reset()
{
    for (auto &bank : banks_)
        bank = Bank{};
    busFreeAt_ = 0;
}

} // namespace gpulat
