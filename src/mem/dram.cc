#include "mem/dram.hh"

#include <algorithm>

#include "common/log.hh"

namespace gpulat {

DramChannel::DramChannel(std::string name, const DramParams &params,
                         StatRegistry *stats)
    : name_(std::move(name)), params_(params)
{
    GPULAT_ASSERT(params_.banks > 0, "channel needs banks");
    GPULAT_ASSERT(params_.rowBytes > 0, "rows need a size");
    GPULAT_ASSERT(params_.ranks > 0, "channel needs >= 1 rank");
    if (params_.model == DramModel::Ddr) {
        GPULAT_ASSERT(params_.bankGroups > 0 &&
                      params_.banks % params_.bankGroups == 0,
                      "ddr model: bankGroups (", params_.bankGroups,
                      ") must divide banks (", params_.banks, ")");
        GPULAT_ASSERT(params_.ddr.tREFI == 0 ||
                      params_.ddr.tRFC < params_.ddr.tREFI,
                      "ddr model: tRFC must be shorter than tREFI");
    }
    banks_.resize(static_cast<std::size_t>(params_.ranks) *
                  params_.banks);
    ranks_.resize(params_.ranks);
    for (Rank &r : ranks_) {
        r.groupActAt.assign(params_.bankGroups, 0);
        r.groupActValid.assign(params_.bankGroups, false);
    }

    GPULAT_ASSERT(stats != nullptr, "dram needs stats");
    rowHits_ = &stats->counter(name_ + ".row_hits");
    rowMisses_ = &stats->counter(name_ + ".row_misses");
    rowClosed_ = &stats->counter(name_ + ".row_closed");
    static const char *const kOutcome[3] = {"row_hits", "row_misses",
                                           "row_closed"};
    for (int o = 0; o < 3; ++o) {
        rdOutcome_[o] =
            &stats->counter(name_ + ".rd_" + kOutcome[o]);
        wrOutcome_[o] =
            &stats->counter(name_ + ".wr_" + kOutcome[o]);
    }
    if (params_.model == DramModel::Ddr) {
        for (int o = 0; o < 3; ++o) {
            for (unsigned g = 0; g < params_.bankGroups; ++g) {
                bgOutcome_[o].push_back(&stats->counter(
                    name_ + ".bg" + std::to_string(g) + "." +
                    kOutcome[o]));
            }
        }
        refreshes_ = &stats->counter(name_ + ".refreshes");
        refreshStall_ =
            &stats->counter(name_ + ".refresh_stall_cycles");
    }
}

DramCoord
DramChannel::coordOf(Addr line_addr) const
{
    return mapDramAddress(params_.geometry(), line_addr);
}

unsigned
DramChannel::bankOf(Addr line_addr) const
{
    return coordOf(line_addr).flatBank;
}

std::uint64_t
DramChannel::rowOf(Addr line_addr) const
{
    return coordOf(line_addr).row;
}

bool
DramChannel::rowHit(Addr line_addr) const
{
    const DramCoord c = coordOf(line_addr);
    const Bank &bank = banks_[c.flatBank];
    return bank.rowOpen && bank.openRow == c.row;
}

bool
DramChannel::bankReady(Addr line_addr, Cycle now) const
{
    // Refresh deliberately does not gate readiness: a request
    // issued into a mid-refresh rank is clamped past the window by
    // scheduleDdr(), which charges the wait to refresh_stall_cycles
    // — blocking it here would hide that wait inside generic queue
    // time (and cost extra scheduler retries).
    return banks_[coordOf(line_addr).flatBank].readyAt <= now;
}

std::uint64_t
DramChannel::refreshStallCycles() const
{
    return refreshStall_ ? refreshStall_->value() : 0;
}

DramChannel::RowOutcome
DramChannel::classify(const Bank &bank, const DramCoord &c,
                      bool is_write)
{
    RowOutcome outcome;
    if (bank.rowOpen && bank.openRow == c.row) {
        outcome = RowOutcome::Hit;
        rowHits_->inc();
    } else if (bank.rowOpen) {
        outcome = RowOutcome::Conflict;
        rowMisses_->inc();
    } else {
        outcome = RowOutcome::Closed;
        rowClosed_->inc();
    }
    const int o = static_cast<int>(outcome);
    (is_write ? wrOutcome_[o] : rdOutcome_[o])->inc();
    if (!bgOutcome_[o].empty())
        bgOutcome_[o][c.group]->inc();
    return outcome;
}

Cycle
DramChannel::scheduleSimple(const DramCoord &c, bool is_write,
                            Cycle now)
{
    Bank &bank = banks_[c.flatBank];
    const DramTiming &t = params_.timing;

    const Cycle start = std::max(now, bank.readyAt);
    Cycle first_data;
    switch (classify(bank, c, is_write)) {
      case RowOutcome::Hit:
        first_data = start + t.tCAS;
        break;
      case RowOutcome::Conflict:
        first_data = start + t.tRP + t.tRCD + t.tCAS;
        break;
      default: // Closed
        first_data = start + t.tRCD + t.tCAS;
        break;
    }

    // The burst must win the shared data bus.
    const Cycle burst_start = std::max(first_data, busFreeAt_);
    const Cycle done = burst_start + t.tBurst + t.tExtra;
    busFreeAt_ = burst_start + t.tBurst;

    bank.rowOpen = true;
    bank.openRow = c.row;
    // The bank can take its next column command once the burst is
    // off the sense amps; approximating with the burst end keeps
    // banks pipelined but serialized per bank.
    bank.readyAt = burst_start + t.tBurst;
    return done;
}

void
DramChannel::catchUpRefresh(unsigned rank_id, Cycle now)
{
    const Cycle trefi = params_.ddr.tREFI;
    if (trefi == 0)
        return;
    Rank &rank = ranks_[rank_id];
    const std::uint64_t due = now / trefi; // epochs started by now
    if (due <= rank.refreshEpochs)
        return;

    // All banks precharge for refresh: every row in the rank closes
    // and the first access afterwards pays a fresh activate.
    const std::size_t base =
        static_cast<std::size_t>(rank_id) * params_.banks;
    for (unsigned b = 0; b < params_.banks; ++b)
        banks_[base + b].rowOpen = false;

    refreshes_->inc(due - rank.refreshEpochs);
    rank.refreshEpochs = due;
    rank.refreshBusyUntil =
        std::max(rank.refreshBusyUntil, due * trefi + params_.ddr.tRFC);
}

Cycle
DramChannel::scheduleDdr(const DramCoord &c, bool is_write,
                         Cycle now)
{
    Bank &bank = banks_[c.flatBank];
    Rank &rank = ranks_[c.rank];
    const DramTiming &t = params_.timing;
    const DdrTiming &d = params_.ddr;

    catchUpRefresh(c.rank, now);

    // Earliest cycle the bank could take a command ignoring
    // refresh; the refresh clamp on top of that is the stall the
    // REF command caused.
    const Cycle nominal = std::max(now, bank.readyAt);
    const Cycle start = std::max(nominal, rank.refreshBusyUntil);
    if (start > nominal)
        refreshStall_->inc(start - nominal);

    Cycle first_data;
    if (classify(bank, c, is_write) == RowOutcome::Hit) {
        // Open row: the column command issues immediately.
        first_data = start + t.tCAS;
    } else {
        // PRE (if a row is open) then ACT then the column command.
        Cycle act_ready = start;
        if (bank.rowOpen) {
            // The open row must have been active for tRAS before it
            // may be precharged.
            Cycle pre_at = start;
            if (bank.actValid)
                pre_at = std::max(pre_at, bank.actAt + d.tRAS);
            act_ready = pre_at + t.tRP;
        }

        // ACT-to-ACT spacing: tRRD_S to any bank of the rank,
        // tRRD_L within the same bank group, and at most four
        // activates per rank inside any tFAW window.
        Cycle act_at = act_ready;
        if (rank.lastActValid)
            act_at = std::max(act_at, rank.lastActAt + d.tRRDS);
        if (rank.groupActValid[c.group]) {
            act_at = std::max(act_at,
                              rank.groupActAt[c.group] + d.tRRDL);
        }
        if (rank.actWindow.size() >= 4) {
            act_at = std::max(
                act_at,
                rank.actWindow[rank.actWindow.size() - 4] + d.tFAW);
        }

        bank.actAt = act_at;
        bank.actValid = true;
        rank.lastActAt = act_at;
        rank.lastActValid = true;
        rank.groupActAt[c.group] = act_at;
        rank.groupActValid[c.group] = true;
        rank.actWindow.push_back(act_at);
        if (rank.actWindow.size() > 4)
            rank.actWindow.pop_front();

        first_data = act_at + t.tRCD + t.tCAS;
    }

    // Shared data bus + read/write turnaround: switching the bus
    // direction costs tWTR (write -> read) or tRTW (read -> write)
    // measured from the previous burst's end.
    Cycle burst_start = std::max(first_data, busFreeAt_);
    if (is_write && lastReadValid_)
        burst_start = std::max(burst_start, lastReadEnd_ + d.tRTW);
    if (!is_write && lastWriteValid_)
        burst_start = std::max(burst_start, lastWriteEnd_ + d.tWTR);

    const Cycle burst_end = burst_start + t.tBurst;
    const Cycle done = burst_end + t.tExtra;
    busFreeAt_ = burst_end;
    if (is_write) {
        lastWriteEnd_ = burst_end;
        lastWriteValid_ = true;
    } else {
        lastReadEnd_ = burst_end;
        lastReadValid_ = true;
    }

    if (params_.page == DramPagePolicy::Closed) {
        // Auto-precharge: the row closes once the burst is done and
        // tRAS is satisfied; the bank re-opens with a fresh ACT.
        Cycle pre_at = burst_end;
        if (bank.actValid)
            pre_at = std::max(pre_at, bank.actAt + d.tRAS);
        bank.rowOpen = false;
        bank.readyAt = pre_at + t.tRP;
    } else {
        bank.rowOpen = true;
        bank.openRow = c.row;
        bank.readyAt = burst_end;
    }
    return done;
}

Cycle
DramChannel::schedule(Addr line_addr, bool is_write, Cycle now)
{
    const DramCoord c = coordOf(line_addr);
    return params_.model == DramModel::Ddr
        ? scheduleDdr(c, is_write, now)
        : scheduleSimple(c, is_write, now);
}

void
DramChannel::reset()
{
    for (auto &bank : banks_)
        bank = Bank{};
    for (Rank &rank : ranks_) {
        rank.refreshEpochs = 0;
        rank.refreshBusyUntil = 0;
        rank.actWindow.clear();
        rank.lastActAt = 0;
        rank.lastActValid = false;
        std::fill(rank.groupActAt.begin(), rank.groupActAt.end(), 0);
        rank.groupActValid.assign(rank.groupActValid.size(), false);
    }
    busFreeAt_ = 0;
    lastReadEnd_ = 0;
    lastReadValid_ = false;
    lastWriteEnd_ = 0;
    lastWriteValid_ = false;
}

} // namespace gpulat
