/**
 * @file
 * The memory request (one cache-line transaction) that travels
 * SM -> L1 -> interconnect -> memory partition -> DRAM and back.
 */

#ifndef GPULAT_MEM_REQUEST_HH
#define GPULAT_MEM_REQUEST_HH

#include <cstdint>

#include "common/types.hh"
#include "isa/isa.hh"
#include "latency/stages.hh"

namespace gpulat {

/** Token linking a request back to its issuing load instruction. */
using LoadToken = std::int32_t;
inline constexpr LoadToken kNoToken = -1;

/** One line-sized memory transaction. */
struct MemRequest
{
    std::uint64_t id = 0;     ///< unique (for debug/determinism)
    Addr lineAddr = kNoAddr;  ///< line-aligned address
    bool isWrite = false;
    /** Atomic RMW: read-like (gets a response) but dirties the L2. */
    bool isAtomic = false;
    MemSpace space = MemSpace::Global;

    unsigned smId = 0;        ///< issuing SM (response routing)
    unsigned partition = 0;   ///< destination memory partition
    LoadToken token = kNoToken; ///< issuing load instr, or kNoToken

    /**
     * Slice-local address: the global line address with the
     * partition-interleave bits squeezed out, so L2 sets and DRAM
     * rows inside one partition see a dense address space (set by
     * MemPartition::accept()).
     */
    Addr sliceAddr = kNoAddr;

    /** Address the partition's L2/DRAM should operate on. */
    Addr
    dramAddr() const
    {
        return sliceAddr != kNoAddr ? sliceAddr : lineAddr;
    }

    /** If true this is an L2 dirty-line writeback, not an
     *  instruction-generated request (excluded from Fig. 1, exactly
     *  as the paper excludes eviction traffic). */
    bool isWriteback = false;

    /**
     * @name Forwarded atomic (one lane per request)
     *
     * When set, the functional read-modify-write is performed by the
     * owning MemPartition::accept() — which runs under the
     * coordinator barrier, so the RMW order is the crossbar's
     * schedule-invariant arrival order — instead of at SM issue.
     * This is what lets kernels with atomics tick SM-parallel.
     * The partition fills @p atomResult with the pre-RMW value; the
     * SM writes it to the destination register lane on response.
     * @{
     */
    bool forwardAtomic = false;
    Addr atomAddr = kNoAddr;       ///< exact byte address of the RMW
    AtomOp atomOp = AtomOp::Add;
    unsigned atomLane = 0;         ///< issuing lane in the warp
    std::uint64_t atomArg = 0;     ///< the lane's source operand
    std::uint64_t atomResult = 0;  ///< pre-RMW value (response)
    /** @} */

    LatencyTrace trace;
};

} // namespace gpulat

#endif // GPULAT_MEM_REQUEST_HH
