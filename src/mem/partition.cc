#include "mem/partition.hh"

#include <algorithm>
#include <sstream>

#include "common/log.hh"
#include "engine/clock_domain.hh"
#include "mem/device_memory.hh"

namespace gpulat {

MemPartition::MemPartition(unsigned id, const PartitionParams &params,
                           StatRegistry *stats, DeviceMemory *dmem)
    : id_(id),
      params_(params),
      stats_(stats),
      dmem_(dmem),
      ropQueue_(params.ropQueueSize, params.ropLatency),
      l2Queue_(params.l2QueueSize, params.l2QueueLatency),
      l2HitPipe_(params.l2QueueSize + params.l2HitLatency,
                 params.l2HitLatency),
      l2MissPipe_(params.l2QueueSize + params.l2MissLatency,
                  params.l2MissLatency),
      l2Mshr_(params.l2MshrEntries, params.l2MshrMaxMerge,
              params.l2MshrBanks, params.l2MshrBankEntries,
              params.l2MshrBankMerges, params.lineBytes),
      dram_("part" + std::to_string(id) + ".dram", params.dram, stats),
      returnQueue_(params.returnQueueSize, params.returnQueueLatency)
{
    const std::string prefix = "part" + std::to_string(id);
    if (params_.l2Enabled) {
        l2_ = std::make_unique<Cache>(prefix + ".l2", params_.l2Cache,
                                      stats);
    }
    l2Accesses_ = &stats->counter(prefix + ".l2_accesses");
    mshrBankConflicts_ =
        &stats->counter(prefix + ".l2_mshr_bank_conflicts");
    dramReads_ = &stats->counter(prefix + ".dram_reads");
    dramWrites_ = &stats->counter(prefix + ".dram_writes");
    writebacks_ = &stats->counter(prefix + ".l2_writebacks");
    dramQueueWait_ = &stats->scalar(prefix + ".dram_queue_wait");
}

void
MemPartition::accept(Cycle now, MemRequest req)
{
    // Forwarded atomics RMW here, not at SM issue: accept() runs
    // while the coordinator group drains the request network, and
    // the crossbar's per-source FIFOs + per-destination round-robin
    // make the arrival order schedule-invariant — so the functional
    // outcome cannot depend on how SMs are grouped into tick jobs.
    if (req.forwardAtomic && req.isAtomic && dmem_) {
        const std::uint64_t old = dmem_->read64(req.atomAddr);
        std::uint64_t next = 0;
        switch (req.atomOp) {
          case AtomOp::Add:
            next = old + req.atomArg;
            break;
          case AtomOp::Max:
            next = static_cast<std::uint64_t>(
                std::max(static_cast<std::int64_t>(old),
                         static_cast<std::int64_t>(req.atomArg)));
            break;
          case AtomOp::Exch:
            next = req.atomArg;
            break;
        }
        dmem_->write64(req.atomAddr, next);
        req.atomResult = old;
    }

    req.trace.ropEnq = now;
    // Dense slice-local address for L2 sets / DRAM rows.
    const Addr line_no = req.lineAddr / params_.lineBytes;
    req.sliceAddr =
        line_no / params_.interleaveDivisor * params_.lineBytes;
    bool ok = ropQueue_.push(now, std::move(req));
    GPULAT_ASSERT(ok, "accept() called on full ROP queue");
}

void
MemPartition::respond(Cycle now, MemRequest req)
{
    bool ok = returnQueue_.push(now, std::move(req));
    GPULAT_ASSERT(ok, "return queue overflow (caller must check)");
}

void
MemPartition::pushDram(Cycle now, MemRequest req)
{
    // Dirty-line writebacks may exceed the configured capacity so the
    // fill path can never deadlock against its own evictions.
    GPULAT_ASSERT(req.isWriteback || dramQueue_.size() <
                  params_.dramQueueSize, "DRAM queue overflow");
    req.trace.dramEnq = now;
    dramQueue_.push_back(std::move(req));
}

void
MemPartition::tickDramSchedule(Cycle now)
{
    auto pick = pickDramRequest(params_.sched, dramQueue_, dram_, now,
                                params_.dramStarvationLimit);
    if (!pick)
        return;
    MemRequest req = std::move(dramQueue_[*pick]);
    dramQueue_.erase(dramQueue_.begin() +
                     static_cast<std::ptrdiff_t>(*pick));
    if (!req.isWrite) {
        req.trace.dramSched = now;
        dramQueueWait_->sample(
            static_cast<double>(now - req.trace.dramEnq));
    }
    const Cycle done = dram_.schedule(req.dramAddr(), req.isWrite, now);
    GPULAT_ASSERT(dramInService_.empty() ||
                  dramInService_.back().first <= done,
                  "DRAM completions must be ordered");
    if (!req.isWrite)
        dramReads_->inc();
    dramInService_.emplace_back(done, std::move(req));
}

void
MemPartition::tickL2MissPipe(Cycle now)
{
    if (!l2MissPipe_.headReady(now))
        return;
    MemRequest &head = l2MissPipe_.front();

    if (head.isWrite) {
        if (dramQueue_.size() >= params_.dramQueueSize)
            return; // stall
        pushDram(now, l2MissPipe_.pop());
        return;
    }

    head.trace.hitLevel = HitLevel::Dram;
    if (l2Mshr_.pending(head.dramAddr())) {
        // Secondary miss: merge; no new DRAM request.
        auto outcome = l2Mshr_.allocate(head.dramAddr(), head);
        if (outcome == MshrOutcome::FullMerges)
            return; // stall until the fill returns
        GPULAT_ASSERT(outcome == MshrOutcome::Merged, "expected merge");
        l2MissPipe_.pop();
        return;
    }

    if (!l2Mshr_.canAllocate(head.dramAddr())) {
        // With one bank this is the old whole-table check; with
        // more, the line's bank may be full while the table still
        // has room — a conflict only the banked shape can produce.
        if (l2Mshr_.inFlight() < l2Mshr_.capacity())
            mshrBankConflicts_->inc();
        return; // structural stall
    }
    if (dramQueue_.size() >= params_.dramQueueSize)
        return; // structural stall

    // Primary miss: track the line (payload unused for the primary;
    // the authoritative request travels through DRAM) and go to DRAM.
    MemRequest req = l2MissPipe_.pop();
    MemRequest marker = req;
    marker.token = kNoToken; // primary marker, identified by id
    auto outcome = l2Mshr_.allocate(req.dramAddr(), std::move(marker));
    GPULAT_ASSERT(outcome == MshrOutcome::NewEntry, "expected primary");
    pushDram(now, std::move(req));
}

void
MemPartition::tickL2HitPipe(Cycle now)
{
    if (!l2HitPipe_.headReady(now) || returnQueue_.full())
        return;
    MemRequest req = l2HitPipe_.pop();
    req.trace.l2Done = now;
    req.trace.hitLevel = HitLevel::L2;
    respond(now, std::move(req));
}

void
MemPartition::tickL2Queue(Cycle now)
{
    if (!l2Queue_.headReady(now))
        return;
    MemRequest &head = l2Queue_.front();
    l2Accesses_->inc();
    // Atomics read-modify-write the line at the L2: the access
    // dirties it like a write but produces a response like a read.
    const auto outcome = l2_->access(
        head.dramAddr(), head.isWrite || head.isAtomic, now);

    if (head.isWrite) {
        if (outcome == CacheOutcome::Hit) {
            // Write-back hit: absorbed by the L2 (dirty bit set).
            l2Queue_.pop();
            return;
        }
        // Write miss, no write-allocate: forward to DRAM.
        if (l2MissPipe_.full())
            return;
        l2MissPipe_.push(now, l2Queue_.pop());
        return;
    }

    if (outcome == CacheOutcome::Hit) {
        if (l2HitPipe_.full())
            return;
        l2HitPipe_.push(now, l2Queue_.pop());
    } else {
        if (l2MissPipe_.full())
            return;
        l2MissPipe_.push(now, l2Queue_.pop());
    }
}

void
MemPartition::tickRopQueue(Cycle now)
{
    if (!ropQueue_.headReady(now))
        return;

    if (params_.l2Enabled) {
        if (l2Queue_.full())
            return;
        MemRequest req = ropQueue_.pop();
        req.trace.l2Enq = now;
        l2Queue_.push(now, std::move(req));
        return;
    }

    // No L2 (Tesla-style): the request goes straight to DRAM; the
    // L2 stages collapse to zero-width in the trace.
    if (dramQueue_.size() >= params_.dramQueueSize)
        return;
    MemRequest req = ropQueue_.pop();
    req.trace.l2Enq = now;
    req.trace.hitLevel = HitLevel::Dram;
    pushDram(now, std::move(req));
}

void
MemPartition::tickMemSide(Cycle now)
{
    // Scheduling-decision cadence, counted in DRAM-domain ticks so
    // it rides the dramClock scaling like every other DRAM timing
    // (identical to the old now-modulo gate at 1:1, where the tick
    // index equals the core cycle).
    const bool sched_due =
        memTicks_ % params_.dramCmdInterval == 0;
    ++memTicks_;

    // 1. DRAM completions -> L2 fill + responses.
    while (!dramInService_.empty() &&
           dramInService_.front().first <= now) {
        MemRequest &head = dramInService_.front().second;
        const Cycle done = dramInService_.front().first;

        if (head.isWrite) {
            dramWrites_->inc();
            dramInService_.pop_front();
            continue;
        }

        // Responses this completion fans out to: primary + merged.
        std::size_t merged_count = 0;
        const bool tracked =
            params_.l2Enabled && l2Mshr_.pending(head.dramAddr());
        std::size_t needed = 1;
        if (tracked) {
            // Entry holds the primary marker + merged secondaries.
            // (Query size without draining: release below.)
            needed = l2Mshr_.peekCount(head.dramAddr());
        }
        if (returnQueue_.capacity() - returnQueue_.size() < needed)
            break; // retry next cycle

        MemRequest req = std::move(head);
        dramInService_.pop_front();
        req.trace.dramData = done;

        if (params_.l2Enabled) {
            if (req.isAtomic)
                l2_->markDirty(req.dramAddr());
            if (auto victim = l2_->fill(req.dramAddr(), now)) {
                writebacks_->inc();
                MemRequest wb;
                wb.lineAddr = *victim;
                wb.sliceAddr = *victim;
                wb.isWrite = true;
                wb.isWriteback = true;
                wb.partition = id_;
                pushDram(now, std::move(wb));
            }
            if (tracked) {
                for (MemRequest &m : l2Mshr_.release(req.dramAddr())) {
                    if (m.id == req.id)
                        continue; // the primary marker
                    // Secondaries share the primary's DRAM phase.
                    m.trace.dramEnq = req.trace.dramEnq;
                    m.trace.dramSched = req.trace.dramSched;
                    m.trace.dramData = done;
                    m.trace.hitLevel = HitLevel::Dram;
                    respond(now, std::move(m));
                    ++merged_count;
                }
            }
        }
        (void)merged_count;
        respond(now, std::move(req));
    }

    // 2. DRAM scheduling decision.
    if (sched_due)
        tickDramSchedule(now);
}

void
MemPartition::skipMemSide(Cycle from, Cycle to)
{
    GPULAT_ASSERT(from > 0 && to > from, "bad skip window");
    // Every DRAM-side tick in the dead window was a no-op, but it
    // still counts toward the scheduling cadence.
    memTicks_ +=
        ClockDomain::ticksThrough(to - 1, params_.dramClock) -
        ClockDomain::ticksThrough(from - 1, params_.dramClock);
}

void
MemPartition::tickL2Side(Cycle now)
{
    // 3..6. L2 pipes and front queues, downstream-most first so a
    // request moves at most one hop per cycle.
    tickL2MissPipe(now);
    tickL2HitPipe(now);
    if (params_.l2Enabled)
        tickL2Queue(now);
    tickRopQueue(now);
}

void
MemPartition::tick(Cycle now)
{
    tickMemSide(now);
    tickL2Side(now);
}

Cycle
MemPartition::nextMemEventAt(Cycle now) const
{
    Cycle e = kNoCycle;
    if (!dramInService_.empty())
        e = std::min(e, dramInService_.front().first);
    if (!dramQueue_.empty()) {
        // Next scheduling decision: the first upcoming tick whose
        // index is a multiple of the command interval (a pick may
        // still fail on busy banks; the next boundary is probed
        // then). memTicks_ is the index of the next tick.
        const Cycle interval = params_.dramCmdInterval;
        const Cycle next_due =
            (memTicks_ + interval - 1) / interval * interval;
        e = std::min(e, std::max(now, ClockDomain::tickCycle(
                                          next_due,
                                          params_.dramClock)));
    }
    return e;
}

Cycle
MemPartition::nextL2EventAt(Cycle now) const
{
    (void)now;
    Cycle e = std::min(ropQueue_.headReadyAt(),
                       l2Queue_.headReadyAt());
    e = std::min(e, l2HitPipe_.headReadyAt());
    e = std::min(e, l2MissPipe_.headReadyAt());
    return e;
}

bool
MemPartition::drained() const
{
    return ropQueue_.empty() && l2Queue_.empty() &&
           l2HitPipe_.empty() && l2MissPipe_.empty() &&
           l2Mshr_.empty() && dramQueue_.empty() &&
           dramInService_.empty() && returnQueue_.empty();
}

std::size_t
MemPartition::inFlight() const
{
    return ropQueue_.size() + l2Queue_.size() + l2HitPipe_.size() +
           l2MissPipe_.size() + l2Mshr_.inFlight() +
           dramQueue_.size() + dramInService_.size() +
           returnQueue_.size();
}

std::string
MemPartition::occupancySummary() const
{
    std::ostringstream oss;
    oss << "part" << id_ << "{rop=" << ropQueue_.size()
        << " l2q=" << l2Queue_.size()
        << " hit=" << l2HitPipe_.size()
        << " miss=" << l2MissPipe_.size()
        << " mshr=" << l2Mshr_.inFlight()
        << " dramq=" << dramQueue_.size()
        << " dram=" << dramInService_.size()
        << " ret=" << returnQueue_.size() << "}";
    return oss.str();
}

} // namespace gpulat
