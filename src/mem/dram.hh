/**
 * @file
 * Banked GDDR/DDR-style DRAM channel timing model.
 *
 * One channel per memory partition, selectable fidelity
 * (`mem.dram.model`):
 *
 *  - `simple` (default): the original flat open-row check — the
 *    service time of a request depends only on whether it hits the
 *    open row (CAS + burst), conflicts with another row
 *    (precharge + activate + CAS + burst) or targets a closed bank
 *    (activate + CAS + burst), with a shared data bus serializing
 *    bursts. Calibrated against the paper's Table I; bit-identical
 *    to the seed goldens.
 *
 *  - `ddr`: a per-bank command state machine (ACT/PRE/RD/WR/REF)
 *    that additionally honors tRAS (activate -> precharge),
 *    tRRD_S/tRRD_L (activate-to-activate across / within bank
 *    groups), tFAW (sliding four-activate window per rank),
 *    tWTR/tRTW read-write bus turnaround, configurable ranks,
 *    open- vs closed-page policy and periodic refresh (tREFI/tRFC)
 *    that blocks the whole rank and closes its rows. Refresh is
 *    applied lazily as a pure function of the current cycle, so
 *    idle fast-forward (any mode) can never skip over one.
 *
 * All parameters are in DRAM-domain ("hot" at 1:1) clock cycles,
 * like every latency the paper reports.
 */

#ifndef GPULAT_MEM_DRAM_HH
#define GPULAT_MEM_DRAM_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/dram_map.hh"

namespace gpulat {

/** DRAM timing parameters shared by both models (core cycles). */
struct DramTiming
{
    Cycle tRCD = 40;  ///< activate -> column command
    Cycle tRP = 40;   ///< precharge
    Cycle tCAS = 40;  ///< column command -> first data
    Cycle tBurst = 8; ///< data transfer occupancy per request
    /** Fixed pad modelling command/clock-domain crossing overheads
     *  (lets a config match a measured end-to-end DRAM latency
     *  without distorting the relative bank timings). */
    Cycle tExtra = 0;
};

/** Extra timing constraints only the `ddr` model enforces. */
struct DdrTiming
{
    Cycle tRAS = 68;    ///< activate -> precharge (row open minimum)
    Cycle tRRDS = 8;    ///< activate -> activate, other bank group
    Cycle tRRDL = 12;   ///< activate -> activate, same bank group
    Cycle tFAW = 40;    ///< window holding at most four activates
    Cycle tWTR = 16;    ///< write burst end -> read burst start
    Cycle tRTW = 12;    ///< read burst end -> write burst start
    Cycle tREFI = 3900; ///< refresh command interval (per rank)
    Cycle tRFC = 260;   ///< refresh cycle time (rank blocked)
};

/** Geometry + policy of one DRAM channel. */
struct DramParams
{
    DramModel model = DramModel::Simple;
    DramAddrMap map = DramAddrMap::Row;
    DramPagePolicy page = DramPagePolicy::Open;
    DramTiming timing;
    DdrTiming ddr;
    unsigned banks = 8;      ///< banks per rank
    unsigned bankGroups = 4; ///< bank groups per rank (ddr model)
    unsigned ranks = 1;      ///< ranks sharing the channel bus
    /** Bytes per row per bank (row-buffer locality granularity). */
    std::uint64_t rowBytes = 2048;

    DramGeometry
    geometry() const
    {
        return DramGeometry{banks, bankGroups, ranks, rowBytes, map};
    }
};

/**
 * One DRAM channel: bank state + data-bus serialization. The
 * scheduler (mem/dram_sched.hh) picks a queued request; schedule()
 * resolves all timing constraints and returns its completion time.
 */
class DramChannel
{
  public:
    DramChannel(std::string name, const DramParams &params,
                StatRegistry *stats);

    /** Full coordinates of a line address (mapper output). */
    DramCoord coordOf(Addr line_addr) const;

    /** Bank index a line address maps to (rank-flattened). */
    unsigned bankOf(Addr line_addr) const;
    /** Row (within its bank) a line address maps to. */
    std::uint64_t rowOf(Addr line_addr) const;

    /** True if the request would hit the currently open row. */
    bool rowHit(Addr line_addr) const;

    /** True if the bank can accept a new command at @p now. A
     *  mid-refresh rank does not block here — schedule() clamps the
     *  command past the window and charges refresh_stall_cycles. */
    bool bankReady(Addr line_addr, Cycle now) const;

    /**
     * Issue the request to its bank at cycle @p now (the scheduler
     * has selected it). Updates bank/bus state.
     * @return the cycle at which the data burst completes.
     */
    Cycle schedule(Addr line_addr, bool is_write, Cycle now);

    const DramParams &params() const { return params_; }

    /** Refresh stall cycles charged so far (ddr model). */
    std::uint64_t refreshStallCycles() const;

    /** Drop open rows / busy state (between experiments). */
    void reset();

  private:
    struct Bank
    {
        bool rowOpen = false;
        std::uint64_t openRow = 0;
        Cycle readyAt = 0; ///< earliest next command
        Cycle actAt = 0;   ///< last ACT issue time (tRAS anchor)
        bool actValid = false;
    };

    /** Per-rank ddr bookkeeping (refresh + activate windows). */
    struct Rank
    {
        /** Refresh epochs already applied (rows closed, stall
         *  window recorded); epoch k occupies
         *  [k*tREFI, k*tREFI + tRFC). */
        std::uint64_t refreshEpochs = 0;
        Cycle refreshBusyUntil = 0;
        /** Issue times of the most recent activates (tFAW window,
         *  at most 4 entries kept). */
        std::deque<Cycle> actWindow;
        Cycle lastActAt = 0;
        bool lastActValid = false;
        /** Last activate per bank group (tRRD_L). */
        std::vector<Cycle> groupActAt;
        std::vector<bool> groupActValid;
    };

    Cycle scheduleSimple(const DramCoord &c, bool is_write,
                         Cycle now);
    Cycle scheduleDdr(const DramCoord &c, bool is_write, Cycle now);

    /** Apply all refresh epochs that started by @p now to @p rank:
     *  close its rows and extend its busy window. */
    void catchUpRefresh(unsigned rank, Cycle now);

    /** Classify the access against the bank's row state and bump
     *  the aggregate + rd/wr (+ per-bank-group) counters. */
    enum class RowOutcome : std::uint8_t { Hit, Conflict, Closed };
    RowOutcome classify(const Bank &bank, const DramCoord &c,
                        bool is_write);

    std::string name_;
    DramParams params_;
    std::vector<Bank> banks_;  ///< ranks * banks entries
    std::vector<Rank> ranks_;
    Cycle busFreeAt_ = 0;
    Cycle lastReadEnd_ = 0;
    bool lastReadValid_ = false;
    Cycle lastWriteEnd_ = 0;
    bool lastWriteValid_ = false;

    Counter *rowHits_;
    Counter *rowMisses_;
    Counter *rowClosed_;
    /** Read/write split of the same three outcomes (satellite of
     *  the fidelity refactor: the simple model counts them too, so
     *  the ddr model's turnaround stats have a baseline). */
    Counter *rdOutcome_[3];
    Counter *wrOutcome_[3];
    /** Per-bank-group outcome counters (ddr model only). */
    std::vector<Counter *> bgOutcome_[3];
    Counter *refreshes_ = nullptr;
    Counter *refreshStall_ = nullptr;
};

} // namespace gpulat

#endif // GPULAT_MEM_DRAM_HH
