/**
 * @file
 * Banked GDDR-style DRAM channel timing model.
 *
 * One channel per memory partition. Banks keep an open row
 * (open-page policy); the service time of a request depends on
 * whether it hits the open row (CAS + burst), conflicts with
 * another row (precharge + activate + CAS + burst) or targets a
 * closed bank (activate + CAS + burst). A shared data bus
 * serializes bursts. All parameters are in core ("hot") clock
 * cycles, like every latency the paper reports.
 */

#ifndef GPULAT_MEM_DRAM_HH
#define GPULAT_MEM_DRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace gpulat {

/** DRAM timing parameters (core cycles). */
struct DramTiming
{
    Cycle tRCD = 40;  ///< activate -> column command
    Cycle tRP = 40;   ///< precharge
    Cycle tCAS = 40;  ///< column command -> first data
    Cycle tBurst = 8; ///< data transfer occupancy per request
    /** Fixed pad modelling command/clock-domain crossing overheads
     *  (lets a config match a measured end-to-end DRAM latency
     *  without distorting the relative bank timings). */
    Cycle tExtra = 0;
};

/** Geometry of one DRAM channel. */
struct DramParams
{
    DramTiming timing;
    unsigned banks = 8;
    /** Bytes per row per bank (row-buffer locality granularity). */
    std::uint64_t rowBytes = 2048;
};

/**
 * One DRAM channel: bank state + data-bus serialization.
 */
class DramChannel
{
  public:
    DramChannel(std::string name, const DramParams &params,
                StatRegistry *stats);

    /** Bank index a line address maps to. */
    unsigned bankOf(Addr line_addr) const;
    /** Row (within its bank) a line address maps to. */
    std::uint64_t rowOf(Addr line_addr) const;

    /** True if the request would hit the currently open row. */
    bool rowHit(Addr line_addr) const;

    /** True if the bank can accept a new command at @p now. */
    bool bankReady(Addr line_addr, Cycle now) const;

    /**
     * Issue the request to its bank at cycle @p now (the scheduler
     * has selected it). Updates bank/bus state.
     * @return the cycle at which the data burst completes.
     */
    Cycle schedule(Addr line_addr, bool is_write, Cycle now);

    const DramParams &params() const { return params_; }

    /** Drop open rows / busy state (between experiments). */
    void reset();

  private:
    struct Bank
    {
        bool rowOpen = false;
        std::uint64_t openRow = 0;
        Cycle readyAt = 0; ///< earliest next command
    };

    std::string name_;
    DramParams params_;
    std::vector<Bank> banks_;
    Cycle busFreeAt_ = 0;

    Counter *rowHits_;
    Counter *rowMisses_;
    Counter *rowClosed_;
};

} // namespace gpulat

#endif // GPULAT_MEM_DRAM_HH
