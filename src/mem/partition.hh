/**
 * @file
 * Memory partition: the per-slice backend of the global memory
 * pipeline (GPGPU-Sim's "ROP -> L2 -> DRAM" path).
 *
 * Request flow per cycle (downstream-most first so a request moves
 * at most one hop per cycle):
 *
 *   icnt ejект -> [ROP queue] -> [L2 queue] -> L2 tags
 *        hit  -> [L2 hit pipe] ----------------------\
 *        miss -> [L2 miss pipe] -> MSHR/[DRAM queue]  +-> [return
 *   DRAM sched -> banks -> completion -> L2 fill ----/    queue]
 *                                                          -> icnt
 *
 * Every hop stamps the request's LatencyTrace; those stamps are what
 * Figure 1's breakdown is computed from.
 */

#ifndef GPULAT_MEM_PARTITION_HH
#define GPULAT_MEM_PARTITION_HH

#include <deque>
#include <memory>
#include <optional>
#include <string>

#include "cache/cache.hh"
#include "cache/mshr.hh"
#include "common/queue.hh"
#include "common/stats.hh"
#include "engine/clocked.hh"
#include "mem/dram.hh"
#include "mem/dram_sched.hh"
#include "mem/request.hh"

namespace gpulat {

/** Everything a partition needs to know about itself. */
struct PartitionParams
{
    std::uint32_t lineBytes = 128;

    /** Number of partitions interleaving the address space (used to
     *  derive dense slice-local addresses). */
    unsigned interleaveDivisor = 1;

    std::size_t ropQueueSize = 16;
    Cycle ropLatency = 16;

    bool l2Enabled = true;
    CacheParams l2Cache;
    std::size_t l2QueueSize = 16;
    Cycle l2QueueLatency = 1;
    Cycle l2HitLatency = 100;
    /** Tag-check time before a miss is forwarded to DRAM. */
    Cycle l2MissLatency = 20;
    std::size_t l2MshrEntries = 32;
    std::size_t l2MshrMaxMerge = 8;
    /** Banked MSHR front-end (esesc-style); 1 = the flat table. */
    unsigned l2MshrBanks = 1;
    /** Entries per bank (0: l2MshrEntries / l2MshrBanks). */
    std::size_t l2MshrBankEntries = 0;
    /** Per-line merge cap override (0: l2MshrMaxMerge). */
    std::size_t l2MshrBankMerges = 0;

    std::size_t dramQueueSize = 32;
    DramSchedPolicy sched = DramSchedPolicy::FRFCFS;
    /** FR-FCFS anti-starvation age (cycles). */
    Cycle dramStarvationLimit = 768;
    DramParams dram;
    /** DRAM-domain ticks between scheduling decisions (== core
     *  cycles at the default 1:1 DRAM clock). */
    Cycle dramCmdInterval = 2;
    /** DRAM clock relative to core (set by the owning Gpu; maps
     *  tick counts back to core cycles for event queries). */
    ClockRatio dramClock{1, 1};

    std::size_t returnQueueSize = 32;
    Cycle returnQueueLatency = 1;
};

/**
 * One memory partition (L2 slice + DRAM channel). The owning Gpu
 * moves requests between the crossbars and the partition.
 */
class DeviceMemory;

class MemPartition
{
  public:
    /**
     * @param dmem functional device memory for forwarded atomic
     *        RMWs (may be null: unit tests and configurations that
     *        never forward atomics).
     */
    MemPartition(unsigned id, const PartitionParams &params,
                 StatRegistry *stats, DeviceMemory *dmem = nullptr);

    /** True if the ROP queue can take a request this cycle. */
    bool canAccept() const { return !ropQueue_.full(); }

    /** Hand over a request ejected from the request network. */
    void accept(Cycle now, MemRequest req);

    /**
     * Advance all internal pipelines by one cycle (both clock
     * sides; kept for single-domain callers such as unit tests).
     */
    void tick(Cycle now);

    /** @name Clock-domain views (engine-driven ticking) @{ */

    /** DRAM-side cycle: completions drain, scheduler decides. */
    void tickMemSide(Cycle now);

    /** Account DRAM-side ticks skipped over the dead [from, to). */
    void skipMemSide(Cycle from, Cycle to);

    /** L2-side cycle: miss/hit pipes, L2 queue, ROP queue. */
    void tickL2Side(Cycle now);

    /** Earliest cycle tickMemSide() might do work (kNoCycle: none). */
    Cycle nextMemEventAt(Cycle now) const;

    /** Earliest cycle tickL2Side() might do work (kNoCycle: none). */
    Cycle nextL2EventAt(Cycle now) const;

    /** Earliest cycle a response becomes ready (kNoCycle: none). */
    Cycle nextResponseAt() const { return returnQueue_.headReadyAt(); }

    /** @} */

    /** True if a read response is ready to enter the return network. */
    bool responseReady(Cycle now) const
    {
        return returnQueue_.headReady(now);
    }

    /** SM the ready response routes back to. */
    unsigned peekResponseSm() const { return returnQueue_.front().smId; }

    /** Pop the ready response. */
    MemRequest popResponse() { return returnQueue_.pop(); }

    /** True when no request is anywhere inside the partition. */
    bool drained() const;

    /** Requests anywhere inside the partition (for stall reports). */
    std::size_t inFlight() const;

    /** One-line queue-occupancy summary (for stall reports). */
    std::string occupancySummary() const;

    Cache *l2() { return l2_.get(); }
    DramChannel &dram() { return dram_; }
    const PartitionParams &params() const { return params_; }

  private:
    void tickDramSchedule(Cycle now);
    void tickL2MissPipe(Cycle now);
    void tickL2HitPipe(Cycle now);
    void tickL2Queue(Cycle now);
    void tickRopQueue(Cycle now);

    void respond(Cycle now, MemRequest req);
    void pushDram(Cycle now, MemRequest req);

    unsigned id_;
    PartitionParams params_;
    StatRegistry *stats_;
    DeviceMemory *dmem_ = nullptr;

    TimedQueue<MemRequest> ropQueue_;
    TimedQueue<MemRequest> l2Queue_;
    TimedQueue<MemRequest> l2HitPipe_;
    TimedQueue<MemRequest> l2MissPipe_;
    std::unique_ptr<Cache> l2_;
    MshrTable<MemRequest> l2Mshr_;

    /** DRAM-side ticks performed (scheduling-cadence counter). */
    Cycle memTicks_ = 0;
    /** Pending DRAM requests, arrival order (scheduler scans). */
    std::deque<MemRequest> dramQueue_;
    /** In-service DRAM requests; completion times non-decreasing. */
    std::deque<std::pair<Cycle, MemRequest>> dramInService_;
    DramChannel dram_;

    TimedQueue<MemRequest> returnQueue_;

    Counter *l2Accesses_;
    /** Primary miss stalled on its MSHR bank while the table as a
     *  whole still had room (banked front-end only). */
    Counter *mshrBankConflicts_;
    Counter *dramReads_;
    Counter *dramWrites_;
    Counter *writebacks_;
    ScalarStat *dramQueueWait_;
};

} // namespace gpulat

#endif // GPULAT_MEM_PARTITION_HH
