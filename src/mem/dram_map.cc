#include "mem/dram_map.hh"

#include "common/log.hh"

namespace gpulat {

const char *
toString(DramModel model)
{
    switch (model) {
      case DramModel::Simple: return "simple";
      case DramModel::Ddr: return "ddr";
    }
    return "?";
}

const char *
toString(DramAddrMap map)
{
    switch (map) {
      case DramAddrMap::Row: return "row";
      case DramAddrMap::BankGroup: return "bg";
      case DramAddrMap::Xor: return "xor";
    }
    return "?";
}

const char *
toString(DramPagePolicy page)
{
    switch (page) {
      case DramPagePolicy::Open: return "open";
      case DramPagePolicy::Closed: return "closed";
    }
    return "?";
}

DramCoord
mapDramAddress(const DramGeometry &geom, Addr line_addr)
{
    GPULAT_ASSERT(geom.banks > 0 && geom.ranks > 0 &&
                  geom.bankGroups > 0 && geom.rowBytes > 0,
                  "bad DRAM geometry");
    GPULAT_ASSERT(geom.banks % geom.bankGroups == 0,
                  "bankGroups (", geom.bankGroups,
                  ") must divide banks (", geom.banks, ")");

    const unsigned total = geom.ranks * geom.banks;
    const std::uint64_t linear = line_addr / geom.rowBytes;

    DramCoord c;
    c.row = linear / total;
    c.flatBank = static_cast<unsigned>(linear % total);

    if (geom.map == DramAddrMap::Xor) {
        // Permute the bank per row so a power-of-two row stride
        // (pchase ladders, matrix columns) doesn't pin one bank.
        // Power-of-two bank counts use a cheap XOR fold; others an
        // additive rotation — both are bijective per row.
        if ((total & (total - 1)) == 0) {
            c.flatBank = static_cast<unsigned>(
                (c.flatBank ^ c.row) & (total - 1));
        } else {
            c.flatBank = static_cast<unsigned>(
                (c.flatBank + c.row % total) % total);
        }
    }

    c.rank = c.flatBank / geom.banks;
    c.bankInRank = c.flatBank % geom.banks;

    const unsigned per_group = geom.banks / geom.bankGroups;
    if (geom.map == DramAddrMap::BankGroup) {
        // Group-fastest renumbering: adjacent bank indices sit in
        // different groups, so a streaming sweep pays the cheap
        // cross-group tRRD_S between activates.
        c.group = c.bankInRank % geom.bankGroups;
    } else {
        // Contiguous runs of banks share a group: a streaming sweep
        // issues per_group same-group activates (tRRD_L) before it
        // reaches the next group.
        c.group = c.bankInRank / per_group;
    }
    return c;
}

} // namespace gpulat
