#include "serving/metrics.hh"

#include <algorithm>

#include "common/percentile.hh"

namespace gpulat {

namespace {

double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double sum = 0.0;
    for (const double x : v)
        sum += x;
    return sum / static_cast<double>(v.size());
}

} // namespace

std::map<std::string, double>
ServingMetrics::finalize(Cycle start, Cycle end,
                         const std::vector<double> &weights) const
{
    std::map<std::string, double> m;
    const double elapsed =
        end > start ? static_cast<double>(end - start) : 1.0;

    std::vector<double> e2e;
    std::vector<double> queueing;
    std::vector<double> exec;
    e2e.reserve(records_.size());
    for (const auto &r : records_) {
        e2e.push_back(static_cast<double>(r.done - r.arrival));
        queueing.push_back(static_cast<double>(r.admit - r.arrival));
        exec.push_back(static_cast<double>(r.done - r.admit));
    }

    m["serving.launches"] = static_cast<double>(records_.size());
    std::sort(e2e.begin(), e2e.end());
    m["serving.p50_latency"] = percentileSorted(e2e, 0.50);
    m["serving.p99_latency"] = percentileSorted(e2e, 0.99);
    m["serving.p999_latency"] = percentileSorted(e2e, 0.999);
    m["serving.mean_e2e_cycles"] = mean(e2e);
    m["serving.mean_queue_cycles"] = mean(queueing);
    m["serving.mean_exec_cycles"] = mean(exec);
    m["serving.throughput_lpmc"] =
        static_cast<double>(records_.size()) * 1e6 / elapsed;

    // Per-tenant breakdown + Jain fairness over attained weighted
    // service x_t = sum(exec * smCount) / weight_t.
    const std::size_t num_tenants = weights.size();
    std::vector<std::vector<double>> tenant_e2e(num_tenants);
    std::vector<double> x(num_tenants, 0.0);
    for (const auto &r : records_) {
        if (r.tenant >= num_tenants)
            continue;
        tenant_e2e[r.tenant].push_back(
            static_cast<double>(r.done - r.arrival));
        const double w =
            weights[r.tenant] > 0.0 ? weights[r.tenant] : 1.0;
        x[r.tenant] += static_cast<double>(r.done - r.admit) *
                       static_cast<double>(r.smCount) / w;
    }
    for (std::size_t t = 0; t < num_tenants; ++t) {
        auto &lat = tenant_e2e[t];
        std::sort(lat.begin(), lat.end());
        const std::string p = "serving.t" + std::to_string(t) + ".";
        m[p + "launches"] = static_cast<double>(lat.size());
        m[p + "p99_latency"] = percentileSorted(lat, 0.99);
        m[p + "mean_e2e"] = mean(lat);
        m[p + "throughput_lpmc"] =
            static_cast<double>(lat.size()) * 1e6 / elapsed;
    }
    double sum_x = 0.0;
    double sum_x2 = 0.0;
    for (const double v : x) {
        sum_x += v;
        sum_x2 += v * v;
    }
    m["serving.fairness_jain"] =
        sum_x2 > 0.0 ? (sum_x * sum_x) /
                           (static_cast<double>(num_tenants) * sum_x2)
                     : 1.0;
    return m;
}

} // namespace gpulat
