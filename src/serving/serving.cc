#include "serving/serving.hh"

#include <bit>
#include <cmath>

#include "common/log.hh"
#include "isa/kernel.hh"

namespace gpulat {

namespace {

/** FMA coefficient shared by every serving kernel. */
constexpr double kCoef = 0.5;

/**
 * Compute-stream-style kernel: y[i] = fma-chain(x[i]). Affine
 * addressing end to end, so analyzeSmParallelSafety() proves it
 * SM-parallel and derives a whole-grid footprint for cross-launch
 * conflict composition.
 */
Kernel
buildServeKernel(const std::string &name, unsigned fma_depth)
{
    KernelBuilder b(name);
    b.s2r(0, SpecialReg::Tid);
    b.s2r(1, SpecialReg::Ctaid);
    b.s2r(2, SpecialReg::Ntid);
    b.imad(0, 1, 2, 0);          // gid
    b.movParam(3, 3);            // n
    b.setp(CmpOp::GE, 0, 0, 3);
    b.pred(0).bra("done");
    b.aluImm(Opcode::SHL, 4, 0, 3);
    b.movParam(5, 0);            // x
    b.alu(Opcode::IADD, 5, 5, 4);
    b.ld(MemSpace::Global, 6, 5);
    b.movParam(7, 2);            // coefficient (double bits)
    for (unsigned i = 0; i < fma_depth; ++i)
        b.ffma(6, 6, 7, 7);      // v = v * c + c (dependent chain)
    b.movParam(8, 1);            // y
    b.alu(Opcode::IADD, 8, 8, 4);
    b.st(MemSpace::Global, 8, 6);
    b.label("done");
    b.exit();
    return b.finalize();
}

double
expectedValue(double x, unsigned fma_depth)
{
    double v = x;
    for (unsigned k = 0; k < fma_depth; ++k)
        v = v * kCoef + kCoef;
    return v;
}

} // namespace

ServingSession::ServingSession(Gpu &gpu,
                               std::vector<TenantSpec> specs)
    : gpu_(gpu), specs_(std::move(specs))
{
    GPULAT_ASSERT(!specs_.empty(), "serving session with no tenants");

    std::vector<TenantPlan> plans;
    std::vector<ArrivalStream> streams;
    for (unsigned t = 0; t < specs_.size(); ++t) {
        const TenantSpec &spec = specs_[t];
        GPULAT_ASSERT(spec.n > 0 && spec.buffers > 0 &&
                          spec.threadsPerBlock > 0,
                      "malformed tenant spec");
        kernels_.push_back(std::make_unique<Kernel>(buildServeKernel(
            "serve_t" + std::to_string(t), spec.fmaDepth)));

        const std::uint64_t bytes = spec.n * 8;
        deviceX_.push_back(gpu_.alloc(bytes));
        std::vector<double> x(spec.n);
        for (auto &v : x)
            v = gpu_.rng().uniform();
        gpu_.copyToDevice(deviceX_.back(), x.data(), bytes);
        hostX_.push_back(std::move(x));

        deviceY_.emplace_back();
        for (unsigned j = 0; j < spec.buffers; ++j)
            deviceY_.back().push_back(gpu_.alloc(bytes));

        const unsigned tpb = spec.threadsPerBlock;
        const auto blocks = static_cast<unsigned>(
            (spec.n + tpb - 1) / tpb);
        TenantPlan plan;
        plan.weight = spec.weight;
        for (unsigned j = 0; j < spec.buffers; ++j) {
            LaunchShape shape;
            shape.kernel = kernels_.back().get();
            shape.numBlocks = blocks;
            shape.threadsPerBlock = tpb;
            shape.params = {deviceX_.back(), deviceY_.back()[j],
                            std::bit_cast<RegValue>(kCoef), spec.n};
            // Work estimate for sjf-est: threads x chain length
            // (+ fixed per-thread overhead).
            shape.estCost = static_cast<double>(blocks) * tpb *
                            (spec.fmaDepth + 8.0);
            plan.shapes.push_back(std::move(shape));
        }
        plans.push_back(std::move(plan));
        streams.emplace_back(spec.traffic, gpu_.config().seed, t);
    }

    sched_ = std::make_unique<LaunchQueueScheduler>(
        gpu_, std::move(plans), std::move(streams), metrics_);

    // Register on the core clock in the coordinator group (the
    // scheduler mutates cross-SM state, exactly like the block
    // dispatcher), with wake edges both ways: its tick dispatches
    // blocks into SMs, and an SM's tick can complete a launch the
    // scheduler must reap.
    ClockDomain *core = gpu_.engine().findDomain("core");
    GPULAT_ASSERT(core, "gpu engine has no core domain");
    gpu_.engine().add(*core, *sched_);
    for (unsigned s = 0; s < gpu_.config().numSms; ++s) {
        gpu_.engine().link(*sched_, gpu_.sm(s));
        gpu_.engine().link(gpu_.sm(s), *sched_);
    }
}

WorkloadResult
ServingSession::run()
{
    TickEngine &engine = gpu_.engine();
    const Cycle start = engine.now();
    const auto issued = [&] {
        std::uint64_t sum = 0;
        for (unsigned s = 0; s < gpu_.config().numSms; ++s)
            sum += gpu_.stats().counterValue(
                "sm" + std::to_string(s) + ".issued");
        return sum;
    };
    const std::uint64_t instr_before = issued();

    // Same watchdog shape as Gpu::launch(): progress is measured in
    // performed engine steps, and the signature folds in scheduler
    // progress so a long but healthy queue drain never trips it.
    const std::uint64_t stall_steps =
        gpu_.config().engine.watchdogStallSteps;
    const auto signature = [&] {
        return gpu_.activitySignature() +
               0x9e3779b97f4a7c15ull * sched_->progressSignature();
    };
    std::uint64_t last_sig = signature();
    std::uint64_t last_progress_step = engine.steps();
    std::uint64_t iters = 0;

    while (!sched_->finished() || !gpu_.allDrained()) {
        engine.step();
        engine.fastForward();
        if ((++iters & 0x3fffu) == 0) {
            const std::uint64_t sig = signature();
            if (sig != last_sig) {
                last_sig = sig;
                last_progress_step = engine.steps();
            } else if (stall_steps != 0 &&
                       engine.steps() - last_progress_step >
                           stall_steps) {
                panic(gpu_.stallReport("serving"));
            }
        }
    }
    engine.settle();

    WorkloadResult result;
    result.cycles = engine.now() - start;
    result.instructions = issued() - instr_before;
    result.launches =
        static_cast<unsigned>(sched_->completed());
    std::vector<double> weights;
    for (const auto &spec : specs_)
        weights.push_back(spec.weight);
    result.metrics = metrics_.finalize(start, engine.now(), weights);
    result.correct = verify();
    return result;
}

bool
ServingSession::verify() const
{
    for (unsigned t = 0; t < specs_.size(); ++t) {
        const TenantSpec &spec = specs_[t];
        // Shape j serves arrivals j, j+buffers, ...; with every
        // arrival served by run()'s drain condition, buffer j was
        // written iff j < min(buffers, launches). Writes are
        // idempotent (same input, same chain), so repeated or
        // serialized-vs-parallel service leaves identical bytes.
        const unsigned used = std::min(
            spec.buffers, spec.traffic.launches);
        std::vector<double> y(spec.n);
        for (unsigned j = 0; j < used; ++j) {
            gpu_.copyFromDevice(y.data(), deviceY_[t][j], spec.n * 8);
            for (std::uint64_t i = 0; i < spec.n; ++i)
                if (y[i] != expectedValue(hostX_[t][i], spec.fmaDepth))
                    return false;
        }
    }
    return true;
}

std::string
ServingWorkload::name() const
{
    switch (opts_.profile) {
    case Profile::Mixed: return "serve.mixed";
    case Profile::Uniform: return "serve.uniform";
    case Profile::Closed: return "serve.closed";
    }
    return "serve";
}

WorkloadResult
ServingWorkload::run(Gpu &gpu)
{
    if (opts_.tenants == 0 || opts_.launches == 0)
        fatal(name(), ": tenants and launches must be positive");
    if (opts_.load <= 0.0)
        fatal(name(), ": load must be positive");

    std::vector<ServingSession::TenantSpec> specs;
    for (unsigned t = 0; t < opts_.tenants; ++t) {
        ServingSession::TenantSpec spec;
        spec.buffers = opts_.buffers;
        spec.traffic.launches = opts_.launches;
        switch (opts_.profile) {
        case Profile::Mixed:
            // Three launch classes cycled over the tenants; higher
            // load shrinks the inter-arrival gaps.
            switch (t % 3) {
            case 0: // small
                spec.n = 1024;
                spec.fmaDepth = 8;
                spec.threadsPerBlock = 128;
                spec.traffic.meanGapCycles = 2500.0 / opts_.load;
                break;
            case 1: // medium
                spec.n = 4096;
                spec.fmaDepth = 16;
                spec.threadsPerBlock = 128;
                spec.traffic.meanGapCycles = 6000.0 / opts_.load;
                break;
            default: // heavy, double fair-share weight
                spec.n = 8192;
                spec.fmaDepth = 24;
                spec.threadsPerBlock = 256;
                spec.weight = 2.0;
                spec.traffic.meanGapCycles = 14000.0 / opts_.load;
                break;
            }
            spec.traffic.kind = ArrivalKind::Poisson;
            break;
        case Profile::Uniform:
            spec.traffic.kind = ArrivalKind::Fixed;
            spec.traffic.meanGapCycles = 5000.0 / opts_.load;
            break;
        case Profile::Closed:
            spec.traffic.kind = ArrivalKind::ClosedLoop;
            spec.traffic.thinkCycles = opts_.thinkCycles;
            break;
        }
        specs.push_back(spec);
    }

    ServingSession session(gpu, std::move(specs));
    return session.run();
}

} // namespace gpulat
