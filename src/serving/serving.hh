/**
 * @file
 * The serving session and its registry workloads: a multi-tenant
 * "inference serving" scenario driving one Gpu with an arrival
 * stream of kernel launches. Each tenant owns a private input
 * buffer and a small rotation of output buffers; its launches are
 * compute-stream-style FMA kernels (affine addressing, so the
 * launch-time safety analysis can prove concurrent launches with
 * disjoint footprints SM-parallel). The ServingSession wires a
 * LaunchQueueScheduler into the Gpu's core clock domain, runs the
 * engine until every arrival is served and the device drains, and
 * verifies every touched output buffer against a CPU reference.
 *
 * Registry workloads (`serve.*`, all on-demand rather than
 * bench-suite):
 *  - serve.mixed:   heterogeneous tenants (small/medium/heavy
 *                   launch classes), Poisson arrivals;
 *  - serve.uniform: homogeneous tenants, fixed-rate arrivals;
 *  - serve.closed:  homogeneous tenants, closed loop with think
 *                   time (one outstanding launch per tenant).
 */

#ifndef GPULAT_SERVING_SERVING_HH
#define GPULAT_SERVING_SERVING_HH

#include <memory>
#include <vector>

#include "serving/scheduler.hh"
#include "workloads/workload.hh"

namespace gpulat {

class ServingSession
{
  public:
    /** One tenant: kernel shape, buffer rotation, traffic. */
    struct TenantSpec
    {
        std::uint64_t n = 4096;       ///< elements per buffer
        unsigned fmaDepth = 16;       ///< dependent FMA chain length
        unsigned threadsPerBlock = 128;
        unsigned buffers = 3;         ///< rotating output buffers
        double weight = 1.0;          ///< fair-share weight
        TenantTraffic traffic;
    };

    /**
     * Builds kernels and buffers (input data drawn from gpu.rng(),
     * i.e. the `seed` override key), constructs the per-tenant
     * arrival streams, and registers the scheduler on the engine's
     * core domain with wake edges to and from every SM. One
     * session per Gpu: the scheduler stays registered for the
     * Gpu's lifetime.
     */
    ServingSession(Gpu &gpu, std::vector<TenantSpec> specs);

    /** Serve every arrival to completion, then verify. */
    WorkloadResult run();

    const ServingMetrics &metrics() const { return metrics_; }
    LaunchQueueScheduler &scheduler() { return *sched_; }

  private:
    bool verify() const;

    Gpu &gpu_;
    std::vector<TenantSpec> specs_;
    /** unique_ptr: LaunchShape holds raw Kernel pointers. */
    std::vector<std::unique_ptr<Kernel>> kernels_;
    std::vector<Addr> deviceX_;
    std::vector<std::vector<Addr>> deviceY_;
    std::vector<std::vector<double>> hostX_;
    ServingMetrics metrics_;
    std::unique_ptr<LaunchQueueScheduler> sched_;
};

/** Registry workload wrapper around ServingSession. */
class ServingWorkload : public Workload
{
  public:
    enum class Profile
    {
        Mixed,
        Uniform,
        Closed,
    };

    struct Options
    {
        Profile profile = Profile::Mixed;
        unsigned tenants = 3;
        unsigned launches = 12;  ///< per tenant
        double load = 1.0;       ///< arrival-rate multiplier
        double thinkCycles = 2000.0;  ///< closed loop only
        unsigned buffers = 3;
    };

    explicit ServingWorkload(Options opts) : opts_(opts) {}

    std::string name() const override;
    WorkloadResult run(Gpu &gpu) override;

  private:
    Options opts_;
};

} // namespace gpulat

#endif // GPULAT_SERVING_SERVING_HH
