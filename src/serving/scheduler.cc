#include "serving/scheduler.hh"

#include <algorithm>

#include "common/log.hh"

namespace gpulat {

std::size_t
pickNextLaunch(ServePolicy policy,
               const std::vector<QueuedLaunch> &queue,
               const std::vector<TenantSchedState> &tenants,
               unsigned rr_cursor)
{
    if (queue.empty())
        return kNoPick;
    switch (policy) {
    case ServePolicy::Fifo:
        // Strict arrival order: an inadmissible head blocks the line.
        return queue.front().admissible ? 0 : kNoPick;

    case ServePolicy::Rr: {
        const auto num_tenants = static_cast<unsigned>(tenants.size());
        for (unsigned step = 0; step < num_tenants; ++step) {
            const unsigned t = (rr_cursor + step) % num_tenants;
            for (std::size_t i = 0; i < queue.size(); ++i) {
                if (queue[i].tenant != t)
                    continue;
                if (queue[i].admissible)
                    return i;
                break; // head-of-line within the tenant
            }
        }
        return kNoPick;
    }

    case ServePolicy::SjfEst: {
        std::size_t best = kNoPick;
        for (std::size_t i = 0; i < queue.size(); ++i) {
            if (!queue[i].admissible)
                continue;
            // Strict < keeps the earliest entry on cost ties.
            if (best == kNoPick ||
                queue[i].estCost < queue[best].estCost)
                best = i;
        }
        return best;
    }

    case ServePolicy::FairShare: {
        std::size_t best = kNoPick;
        double best_key = 0.0;
        std::vector<bool> seen(tenants.size(), false);
        for (std::size_t i = 0; i < queue.size(); ++i) {
            const QueuedLaunch &q = queue[i];
            if (seen[q.tenant])
                continue; // head-of-line within the tenant
            seen[q.tenant] = true;
            if (!q.admissible)
                continue;
            const TenantSchedState &t = tenants[q.tenant];
            const double key =
                t.attained / std::max(t.weight, 1e-12);
            // Strict < keeps the earliest entry on attained ties.
            if (best == kNoPick || key < best_key) {
                best = i;
                best_key = key;
            }
        }
        return best;
    }
    }
    return kNoPick;
}

LaunchQueueScheduler::LaunchQueueScheduler(
    Gpu &gpu, std::vector<TenantPlan> plans,
    std::vector<ArrivalStream> streams, ServingMetrics &metrics)
    : gpu_(gpu), plans_(std::move(plans)),
      streams_(std::move(streams)), metrics_(metrics)
{
    GPULAT_ASSERT(plans_.size() == streams_.size(),
                  "one arrival stream per tenant plan");
    GPULAT_ASSERT(!plans_.empty(), "serving needs at least one tenant");
    for (const auto &p : plans_) {
        GPULAT_ASSERT(!p.shapes.empty(), "tenant with no launch shapes");
        GPULAT_ASSERT(p.weight > 0.0, "tenant weight must be positive");
    }
    const GpuConfig &cfg = gpu_.config();
    if (cfg.serving.partition == ServePartition::Static &&
        plans_.size() > cfg.numSms)
        fatal("static partitioning needs >= 1 SM per tenant (",
              plans_.size(), " tenants, ", cfg.numSms, " SMs)");
    tenants_.resize(plans_.size());
    for (std::size_t t = 0; t < plans_.size(); ++t)
        tenants_[t].weight = plans_[t].weight;
    tenantArrivals_.assign(plans_.size(), 0);
    smBusy_.assign(cfg.numSms, false);
}

std::vector<unsigned>
LaunchQueueScheduler::candidateSms(unsigned tenant) const
{
    const auto &sv = gpu_.config().serving;
    const unsigned num_sms = gpu_.config().numSms;
    std::vector<unsigned> out;
    if (sv.partition == ServePartition::Static) {
        // MPS-style static share: the tenant's fixed SM slice,
        // available only as a whole (so a tenant runs one launch
        // at a time and never touches a neighbour's slice).
        const auto t_count = static_cast<unsigned>(plans_.size());
        const unsigned lo = tenant * num_sms / t_count;
        const unsigned hi = (tenant + 1) * num_sms / t_count;
        for (unsigned s = lo; s < hi; ++s) {
            if (smBusy_[s])
                return {};
            out.push_back(s);
        }
        return out;
    }
    // Dynamic best effort: lowest-indexed free SMs, a fixed demand
    // per launch so admission never depends on queue contents.
    const unsigned cap = std::max(1u, sv.maxConcurrent);
    const unsigned demand =
        sv.smsPerLaunch != 0 ? std::min(sv.smsPerLaunch, num_sms)
                             : std::max(1u, num_sms / cap);
    for (unsigned s = 0; s < num_sms && out.size() < demand; ++s)
        if (!smBusy_[s])
            out.push_back(s);
    if (out.size() < demand)
        return {};
    return out;
}

void
LaunchQueueScheduler::refreshAdmissibility(
    std::vector<QueuedLaunch> &queue) const
{
    for (auto &q : queue)
        q.admissible = !candidateSms(q.tenant).empty();
}

void
LaunchQueueScheduler::reapCompletions(Cycle now)
{
    for (std::size_t i = 0; i < active_.size();) {
        if (!gpu_.partitionedLaunchDone(active_[i].id)) {
            ++i;
            continue;
        }
        const ActiveLaunch al = std::move(active_[i]);
        active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(i));
        gpu_.retirePartitionedLaunch(al.id);
        for (const unsigned s : al.sms)
            smBusy_[s] = false;
        tenants_[al.tenant].attained +=
            static_cast<double>(now - al.admit) *
            static_cast<double>(al.sms.size());
        metrics_.record({al.tenant, al.seq, al.arrival, al.admit, now,
                         static_cast<unsigned>(al.sms.size())});
        streams_[al.tenant].onCompletion(now);
        ++completed_;
    }
}

void
LaunchQueueScheduler::collectArrivals(Cycle now)
{
    for (unsigned t = 0; t < streams_.size(); ++t) {
        // kNoCycle (all-ones) is never <= now.
        while (streams_[t].nextArrivalAt() <= now) {
            QueuedLaunch q;
            q.tenant = t;
            q.seq = nextSeq_++;
            q.arrival = streams_[t].pop();
            q.shape = tenantArrivals_[t]++;
            const auto &shapes = plans_[t].shapes;
            q.estCost = shapes[q.shape % shapes.size()].estCost;
            queue_.push_back(q);
            ++arrivals_;
        }
    }
}

void
LaunchQueueScheduler::admitLaunches(Cycle now)
{
    const auto &sv = gpu_.config().serving;
    const unsigned cap = std::max(1u, sv.maxConcurrent);
    while (active_.size() < cap && !queue_.empty()) {
        refreshAdmissibility(queue_);
        const std::size_t pick =
            pickNextLaunch(sv.policy, queue_, tenants_, rrCursor_);
        if (pick == kNoPick)
            break;
        const QueuedLaunch q = queue_[pick];
        std::vector<unsigned> sms = candidateSms(q.tenant);
        GPULAT_ASSERT(!sms.empty(), "picked an inadmissible launch");
        for (const unsigned s : sms)
            smBusy_[s] = true;
        const auto &shapes = plans_[q.tenant].shapes;
        const LaunchShape &sh = shapes[q.shape % shapes.size()];
        ActiveLaunch al;
        al.tenant = q.tenant;
        al.seq = q.seq;
        al.arrival = q.arrival;
        al.admit = now;
        al.sms = sms;
        al.id = gpu_.beginPartitionedLaunch(*sh.kernel, sh.numBlocks,
                                            sh.threadsPerBlock,
                                            sh.params, std::move(sms));
        active_.push_back(std::move(al));
        if (sv.policy == ServePolicy::Rr)
            rrCursor_ = (q.tenant + 1) %
                        static_cast<unsigned>(plans_.size());
        queue_.erase(queue_.begin() +
                     static_cast<std::ptrdiff_t>(pick));
        ++admitted_;
    }
}

void
LaunchQueueScheduler::tick(Cycle now)
{
    reapCompletions(now);
    collectArrivals(now);
    // Dispatch before admitting: a launch admitted this tick only
    // receives blocks from the next tick on, after its SMs have
    // performed a real tick with the bound context. Dispatching
    // into an SM whose scheduled tick this cycle was skipped would
    // make the lazily-flushed idle window non-idle, diverging
    // per-cycle statistics between fast-forward modes.
    gpu_.tickPartitionedDispatch(now);
    admitLaunches(now);
}

Cycle
LaunchQueueScheduler::nextEventAt(Cycle now) const
{
    // Reap/dispatch work pending right now?
    for (const auto &al : active_)
        if (gpu_.partitionedLaunchDone(al.id))
            return now;
    if (gpu_.partitionedDispatchReady())
        return now;
    // Next arrival over all streams (kNoCycle when dry/waiting).
    Cycle next = kNoCycle;
    for (const auto &s : streams_)
        next = std::min(next, s.nextArrivalAt());
    if (next <= now)
        return now;
    // Could an already-queued launch be admitted right now? Mirror
    // the actual pick on a snapshot so the promise and the tick
    // agree in every fast-forward mode.
    const auto &sv = gpu_.config().serving;
    if (!queue_.empty() &&
        active_.size() < std::max(1u, sv.maxConcurrent)) {
        std::vector<QueuedLaunch> snapshot = queue_;
        refreshAdmissibility(snapshot);
        if (pickNextLaunch(sv.policy, snapshot, tenants_,
                           rrCursor_) != kNoPick)
            return now;
    }
    // Otherwise sleep to the next arrival; in-flight completions
    // re-wake us through the SM wake edges. kNoCycle when dry.
    return next;
}

bool
LaunchQueueScheduler::finished() const
{
    if (!queue_.empty() || !active_.empty())
        return false;
    for (const auto &s : streams_)
        if (!s.exhausted())
            return false;
    return true;
}

} // namespace gpulat
