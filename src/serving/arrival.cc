#include "serving/arrival.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace gpulat {

namespace {

/** Round a gap to cycles, never shorter than one cycle. */
Cycle
gapCycles(double gap)
{
    return static_cast<Cycle>(std::max<long long>(1, std::llround(gap)));
}

} // namespace

ArrivalStream::ArrivalStream(const TenantTraffic &traffic,
                             std::uint64_t gpu_seed, unsigned tenant)
    : traffic_(traffic)
{
    if (traffic_.meanGapCycles <= 0.0)
        fatal("tenant ", tenant, ": meanGapCycles must be positive");
    // Decorrelate tenants with a golden-ratio stride; SplitMix64
    // seeding inside Rng scrambles the rest.
    Rng rng(gpu_seed +
            0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(tenant) + 1));

    switch (traffic_.kind) {
    case ArrivalKind::Fixed: {
        Cycle t = 0;
        for (unsigned i = 0; i < traffic_.launches; ++i) {
            t += gapCycles(traffic_.meanGapCycles);
            schedule_.push_back(t);
        }
        break;
    }
    case ArrivalKind::Poisson: {
        Cycle t = 0;
        for (unsigned i = 0; i < traffic_.launches; ++i) {
            // Inverse-CDF exponential gap; uniform() < 1 keeps the
            // log argument positive.
            const double u = rng.uniform();
            t += gapCycles(-std::log(1.0 - u) *
                           traffic_.meanGapCycles);
            schedule_.push_back(t);
        }
        break;
    }
    case ArrivalKind::ClosedLoop:
        // Stagger first arrivals so tenants do not all hit cycle 1.
        if (traffic_.launches > 0)
            pending_ = 1 + tenant;
        break;
    }
}

bool
ArrivalStream::exhausted() const
{
    if (traffic_.kind == ArrivalKind::ClosedLoop)
        return emitted_ >= traffic_.launches;
    return nextIdx_ >= schedule_.size();
}

Cycle
ArrivalStream::nextArrivalAt() const
{
    if (traffic_.kind == ArrivalKind::ClosedLoop)
        return pending_;
    return nextIdx_ < schedule_.size() ? schedule_[nextIdx_]
                                       : kNoCycle;
}

Cycle
ArrivalStream::pop()
{
    if (traffic_.kind == ArrivalKind::ClosedLoop) {
        GPULAT_ASSERT(pending_ != kNoCycle,
                      "pop() with no pending closed-loop arrival");
        const Cycle at = pending_;
        pending_ = kNoCycle;
        ++emitted_;
        return at;
    }
    GPULAT_ASSERT(nextIdx_ < schedule_.size(),
                  "pop() past the end of an open-loop schedule");
    return schedule_[nextIdx_++];
}

void
ArrivalStream::onCompletion(Cycle now)
{
    if (traffic_.kind != ArrivalKind::ClosedLoop)
        return;
    if (emitted_ >= traffic_.launches)
        return;
    GPULAT_ASSERT(pending_ == kNoCycle,
                  "closed-loop completion with an arrival pending");
    pending_ = now + gapCycles(traffic_.thinkCycles);
}

} // namespace gpulat
