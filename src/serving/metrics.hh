/**
 * @file
 * Serving metrics: per-launch latency records collected by the
 * LaunchQueueScheduler and collapsed into the schema-stable metric
 * map merged into every ExperimentRecord — tail latency
 * percentiles, queueing-vs-execution breakdown, overall and
 * per-tenant throughput, and the Jain fairness index over attained
 * weighted service. Per-launch invariant: queue + execution equals
 * end-to-end latency exactly ((admit-arrival) + (done-admit) ==
 * (done-arrival)); a golden test asserts it on every record.
 */

#ifndef GPULAT_SERVING_METRICS_HH
#define GPULAT_SERVING_METRICS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"

namespace gpulat {

/** One completed launch, as the scheduler saw it. */
struct LaunchRecord
{
    unsigned tenant = 0;
    std::uint64_t seq = 0;  ///< global arrival sequence number
    Cycle arrival = 0;      ///< entered the launch queue
    Cycle admit = 0;        ///< admitted onto SMs
    Cycle done = 0;         ///< retired (all blocks drained)
    unsigned smCount = 0;   ///< SMs the launch ran on
};

class ServingMetrics
{
  public:
    void record(const LaunchRecord &r) { records_.push_back(r); }

    const std::vector<LaunchRecord> &records() const
    {
        return records_;
    }

    /**
     * Collapse into the metric map (keys prefixed `serving.`).
     * @p weights per tenant (fairness is over attained SM-cycles
     * divided by weight); its size fixes the per-tenant key count,
     * so sweep columns are stable even for an idle tenant.
     * Latencies are end-to-end (done - arrival) core cycles;
     * throughput is launches per million core cycles over
     * [@p start, @p end].
     */
    std::map<std::string, double>
    finalize(Cycle start, Cycle end,
             const std::vector<double> &weights) const;

  private:
    std::vector<LaunchRecord> records_;
};

} // namespace gpulat

#endif // GPULAT_SERVING_METRICS_HH
