/**
 * @file
 * Launch-queue scheduling for the multi-tenant serving layer.
 *
 * The policy core is a pure function, pickNextLaunch(), over a
 * snapshot of the queue and per-tenant scheduling state, so every
 * policy is unit-testable on a toy queue without a Gpu. The
 * LaunchQueueScheduler wraps it as a Clocked component on the
 * TickEngine's core domain: each tick it (1) reaps completed
 * partitioned launches, (2) collects due arrivals from the
 * per-tenant ArrivalStreams, (3) admits queued launches while
 * capacity lasts — static MPS-style SM shares or dynamic
 * best-effort SM allocation, per GpuConfig::serving — and
 * (4) drives the per-launch block dispatch. Every decision is a
 * pure function of simulated time and device state, so serving
 * runs are byte-identical across `--jobs` and `--tick-jobs`.
 *
 * Policies (the `serving.policy` override key):
 *  - fifo:       strict arrival order; head-of-line blocking.
 *  - rr:         round-robin over tenants; work-conserving (a
 *                tenant with nothing admissible is skipped), the
 *                cursor advances past a tenant only when it admits.
 *  - sjf-est:    smallest estimated cost first, over all queued
 *                launches (may reorder within a tenant).
 *  - fair-share: least attained weighted service first
 *                (attained SM-cycles / weight); starvation-free
 *                because service monotonically raises the served
 *                tenant's key above the starved one's.
 */

#ifndef GPULAT_SERVING_SCHEDULER_HH
#define GPULAT_SERVING_SCHEDULER_HH

#include <cstdint>
#include <vector>

#include "engine/clocked.hh"
#include "gpu/gpu.hh"
#include "serving/arrival.hh"
#include "serving/metrics.hh"

namespace gpulat {

/** pickNextLaunch(): nothing admissible. */
inline constexpr std::size_t kNoPick = static_cast<std::size_t>(-1);

/** One queued (arrived, not yet admitted) launch. */
struct QueuedLaunch
{
    unsigned tenant = 0;
    /** Global arrival sequence number (unique, monotonic). */
    std::uint64_t seq = 0;
    Cycle arrival = 0;
    /** Policy-visible cost estimate (sjf-est). */
    double estCost = 0.0;
    /** Enough free SMs (or a free static share) right now? */
    bool admissible = false;
    /** Index into the tenant's launch-shape rotation. */
    unsigned shape = 0;
};

/** Per-tenant scheduling state the policies read. */
struct TenantSchedState
{
    double weight = 1.0;
    /** Attained service in SM-cycles (completed launches). */
    double attained = 0.0;
};

/**
 * Pick the queue index to admit next under @p policy, or kNoPick.
 * @p queue must be in arrival order (seq ascending). Only a
 * tenant's earliest queued entry is eligible under fifo/rr/
 * fair-share (per-tenant FIFO); sjf-est considers every entry.
 * @p rr_cursor is the round-robin scan origin (tenant index).
 */
std::size_t pickNextLaunch(ServePolicy policy,
                           const std::vector<QueuedLaunch> &queue,
                           const std::vector<TenantSchedState> &tenants,
                           unsigned rr_cursor);

/** One launch shape a tenant cycles through. */
struct LaunchShape
{
    const Kernel *kernel = nullptr;
    unsigned numBlocks = 1;
    unsigned threadsPerBlock = 32;
    std::vector<RegValue> params;
    double estCost = 0.0;
};

/** One tenant's serving plan: shapes cycled per arrival + weight. */
struct TenantPlan
{
    std::vector<LaunchShape> shapes;
    double weight = 1.0;
};

class LaunchQueueScheduler : public Clocked
{
  public:
    /**
     * @p plans and @p streams are indexed by tenant and must have
     * equal size. Policy/partition/capacity come from
     * gpu.config().serving. The caller registers the scheduler on
     * the engine (ServingSession does this).
     */
    LaunchQueueScheduler(Gpu &gpu, std::vector<TenantPlan> plans,
                         std::vector<ArrivalStream> streams,
                         ServingMetrics &metrics);

    void tick(Cycle now) override;
    Cycle nextEventAt(Cycle now) const override;

    /** Streams dry, queue empty, nothing in flight. */
    bool finished() const;

    /** Watchdog signature: changes with any scheduling progress. */
    std::uint64_t progressSignature() const
    {
        return arrivals_ + (admitted_ << 20) + (completed_ << 40);
    }

    std::uint64_t arrivals() const { return arrivals_; }
    std::uint64_t admitted() const { return admitted_; }
    std::uint64_t completed() const { return completed_; }

  private:
    struct ActiveLaunch
    {
        Gpu::LaunchId id = 0;
        unsigned tenant = 0;
        std::uint64_t seq = 0;
        Cycle arrival = 0;
        Cycle admit = 0;
        std::vector<unsigned> sms;
    };

    void reapCompletions(Cycle now);
    void collectArrivals(Cycle now);
    void admitLaunches(Cycle now);

    /** SMs a launch of @p tenant would run on right now; empty if
     *  not admissible under the configured partition mode. */
    std::vector<unsigned> candidateSms(unsigned tenant) const;
    /** Refresh QueuedLaunch::admissible against current SM state. */
    void refreshAdmissibility(std::vector<QueuedLaunch> &queue) const;

    Gpu &gpu_;
    std::vector<TenantPlan> plans_;
    std::vector<ArrivalStream> streams_;
    ServingMetrics &metrics_;

    std::vector<QueuedLaunch> queue_;
    std::vector<TenantSchedState> tenants_;
    std::vector<ActiveLaunch> active_;
    /** Per-tenant arrival count (shape rotation index). */
    std::vector<unsigned> tenantArrivals_;
    /** Busy map over SM ids (owned by an active launch). */
    std::vector<bool> smBusy_;
    unsigned rrCursor_ = 0;
    std::uint64_t nextSeq_ = 0;

    std::uint64_t arrivals_ = 0;
    std::uint64_t admitted_ = 0;
    std::uint64_t completed_ = 0;
};

} // namespace gpulat

#endif // GPULAT_SERVING_SCHEDULER_HH
