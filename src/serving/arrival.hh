/**
 * @file
 * Per-tenant kernel-launch arrival streams for the serving layer:
 * open-loop fixed-rate and Poisson processes (the whole schedule is
 * precomputed at construction from a per-tenant RNG, so arrivals
 * are independent of scheduling decisions) and a closed-loop mode
 * where each completion re-arms the next arrival after a think
 * time. Every stream derives its RNG from the device seed plus the
 * tenant index, so a cell's arrival pattern is a pure function of
 * the `seed` override key — byte-identical across `--jobs` and
 * `--tick-jobs`.
 */

#ifndef GPULAT_SERVING_ARRIVAL_HH
#define GPULAT_SERVING_ARRIVAL_HH

#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"

namespace gpulat {

enum class ArrivalKind : std::uint8_t
{
    Fixed,      ///< open loop, constant inter-arrival gap
    Poisson,    ///< open loop, exponential inter-arrival gaps
    ClosedLoop, ///< next arrival armed by onCompletion() + think
};

/** Traffic description of one tenant. */
struct TenantTraffic
{
    ArrivalKind kind = ArrivalKind::Poisson;
    /** Mean inter-arrival gap in core cycles (open-loop kinds). */
    double meanGapCycles = 4000.0;
    /** Completion-to-next-arrival think time (closed loop). */
    double thinkCycles = 2000.0;
    /** Total launches this tenant submits. */
    unsigned launches = 12;
};

class ArrivalStream
{
  public:
    /**
     * @param traffic the tenant's traffic shape.
     * @param gpu_seed GpuConfig::seed (the `seed` override key).
     * @param tenant tenant index; decorrelates tenant RNGs.
     */
    ArrivalStream(const TenantTraffic &traffic,
                  std::uint64_t gpu_seed, unsigned tenant);

    /** No further arrivals will ever be produced. */
    bool exhausted() const;

    /**
     * Cycle of the next pending arrival; kNoCycle when exhausted
     * or (closed loop) waiting for a completion. May be in the
     * past if the caller has not collected yet.
     */
    Cycle nextArrivalAt() const;

    /** Consume the pending arrival; returns its scheduled cycle. */
    Cycle pop();

    /** Closed loop: a launch of this tenant completed at @p now. */
    void onCompletion(Cycle now);

    unsigned totalLaunches() const { return traffic_.launches; }

  private:
    TenantTraffic traffic_;
    /** Open loop: full precomputed schedule. */
    std::vector<Cycle> schedule_;
    std::size_t nextIdx_ = 0;
    /** Closed loop: the one pending arrival, or kNoCycle. */
    Cycle pending_ = kNoCycle;
    unsigned emitted_ = 0;
};

} // namespace gpulat

#endif // GPULAT_SERVING_ARRIVAL_HH
