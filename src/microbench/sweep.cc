#include "microbench/sweep.hh"

#include "common/log.hh"

namespace gpulat {

std::vector<std::uint64_t>
footprintLadder(std::uint64_t lo, std::uint64_t hi)
{
    GPULAT_ASSERT(lo > 0 && lo <= hi, "bad ladder bounds");
    std::vector<std::uint64_t> ladder;
    for (std::uint64_t fp = lo; fp <= hi; fp *= 2) {
        ladder.push_back(fp);
        const std::uint64_t mid = fp + fp / 2;
        if (mid <= hi)
            ladder.push_back(mid);
    }
    return ladder;
}

std::vector<LatencyCurvePoint>
sweepFootprints(const GpuConfig &cfg,
                const std::vector<std::uint64_t> &footprints,
                const SweepOptions &opts)
{
    std::vector<LatencyCurvePoint> curve;
    for (const std::uint64_t fp : footprints) {
        GpuConfig point_cfg = cfg;
        if (opts.space == MemSpace::Local)
            point_cfg.localBytesPerThread = fp;

        Gpu gpu(point_cfg);
        PChaseConfig pc;
        pc.space = opts.space;
        pc.footprintBytes = fp;
        pc.strideBytes = opts.strideBytes;
        pc.timedAccesses = opts.timedAccesses;
        pc.warmup = fp <= opts.warmupMaxFootprint;
        const PChaseResult r = runPointerChase(gpu, pc);
        curve.push_back(LatencyCurvePoint{fp, r.cyclesPerAccess});
    }
    return curve;
}

std::vector<StrideCurvePoint>
sweepStrides(const GpuConfig &cfg, std::uint64_t footprint_bytes,
             const std::vector<std::uint64_t> &strides,
             const SweepOptions &opts)
{
    std::vector<StrideCurvePoint> curve;
    for (const std::uint64_t stride : strides) {
        GpuConfig point_cfg = cfg;
        if (opts.space == MemSpace::Local)
            point_cfg.localBytesPerThread = footprint_bytes;

        Gpu gpu(point_cfg);
        PChaseConfig pc;
        pc.space = opts.space;
        pc.footprintBytes = footprint_bytes;
        pc.strideBytes = stride;
        pc.timedAccesses = opts.timedAccesses;
        pc.warmup = footprint_bytes <= opts.warmupMaxFootprint;
        const PChaseResult r = runPointerChase(gpu, pc);
        curve.push_back(StrideCurvePoint{stride, r.cyclesPerAccess});
    }
    return curve;
}

} // namespace gpulat
