/**
 * @file
 * Table-I harness: per GPU generation, decide which memory space
 * reveals which hierarchy level (e.g. Kepler's L1 is local-only),
 * run the sweeps, detect plateaus and assemble the paper's table.
 */

#ifndef GPULAT_MICROBENCH_TABLE1_HH
#define GPULAT_MICROBENCH_TABLE1_HH

#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "gpu/gpu_config.hh"
#include "microbench/sweep.hh"

namespace gpulat {

/** One measured column of Table I. */
struct Table1Column
{
    std::string gpu;                 ///< e.g. "GF106"
    std::optional<double> l1;        ///< nullopt renders as "x"
    std::optional<double> l2;
    std::optional<double> dram;
};

/** Sweep effort knob: quick (tests) vs full (bench). */
struct Table1Options
{
    std::uint64_t timedAccesses = 512;
    /** Extra footprint points per plateau (>=1). */
    bool fullLadder = false;
};

/**
 * Measure one generation. The probe plan is derived from the
 * config: if the L1 caches global accesses, a global sweep exposes
 * all three levels; if it only caches local (Kepler), the L1 row
 * comes from a local-space sweep; with no L1 (Tesla/Maxwell) the L1
 * row is absent; with no L2 (Tesla) only DRAM remains.
 */
Table1Column measureGeneration(const GpuConfig &cfg,
                               const Table1Options &opts = {});

/** Measure all four generations of the paper. */
std::vector<Table1Column> measureTable1(const Table1Options &opts = {});

/** Render the table exactly like the paper (rows L1/L2/DRAM). */
void printTable1(std::ostream &os,
                 const std::vector<Table1Column> &columns);

} // namespace gpulat

#endif // GPULAT_MICROBENCH_TABLE1_HH
