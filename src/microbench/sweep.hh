/**
 * @file
 * Footprint/stride sweep harness: runs the pointer chase across a
 * footprint ladder (fresh GPU per point so caches start cold and
 * device memory is plentiful) and returns the latency curve that
 * plateau detection consumes.
 */

#ifndef GPULAT_MICROBENCH_SWEEP_HH
#define GPULAT_MICROBENCH_SWEEP_HH

#include <cstdint>
#include <vector>

#include "gpu/gpu_config.hh"
#include "latency/static_analyzer.hh"
#include "microbench/pchase.hh"

namespace gpulat {

/** Sweep options shared by every point. */
struct SweepOptions
{
    MemSpace space = MemSpace::Global;
    std::uint64_t strideBytes = 128;
    std::uint64_t timedAccesses = 1024;
    /** Footprints above this skip the warm-up traversal (beyond all
     *  cache capacities a cold sweep misses everywhere anyway). */
    std::uint64_t warmupMaxFootprint = UINT64_MAX;
};

/**
 * Footprint ladder: powers of two from @p lo to @p hi with 1.5x
 * midpoints, so every plateau gets at least two samples.
 */
std::vector<std::uint64_t> footprintLadder(std::uint64_t lo,
                                           std::uint64_t hi);

/**
 * Measure one latency-vs-footprint curve on configuration @p cfg.
 * A fresh Gpu is constructed per point.
 */
std::vector<LatencyCurvePoint>
sweepFootprints(const GpuConfig &cfg,
                const std::vector<std::uint64_t> &footprints,
                const SweepOptions &opts);

/**
 * Measure a latency-vs-stride curve at a fixed footprint (the
 * paper's "varying both the stride as well as footprint"); with the
 * footprint above a cache's capacity the curve saturates at the
 * line size (see detectLineSize()).
 */
std::vector<StrideCurvePoint>
sweepStrides(const GpuConfig &cfg, std::uint64_t footprint_bytes,
             const std::vector<std::uint64_t> &strides,
             const SweepOptions &opts);

} // namespace gpulat

#endif // GPULAT_MICROBENCH_SWEEP_HH
