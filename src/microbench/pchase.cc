#include "microbench/pchase.hh"

#include <vector>

#include "common/log.hh"

namespace gpulat {

namespace {

// Register conventions for the generated kernels.
constexpr int kRegStart = 1; ///< chase start (address or offset)
constexpr int kRegChase = 4; ///< chase pointer
constexpr int kRegT0 = 8;
constexpr int kRegT1 = 9;
constexpr int kRegDelta = 10;
constexpr int kRegOut = 11;

} // namespace

Kernel
buildChaseKernel(MemSpace space, std::uint64_t warmup_accesses,
                 std::uint64_t timed_accesses)
{
    GPULAT_ASSERT(space == MemSpace::Global || space == MemSpace::Local,
                  "chase runs in global or local space");
    GPULAT_ASSERT(timed_accesses > 0, "nothing to time");

    KernelBuilder b("pchase");
    if (space == MemSpace::Global)
        b.movParam(kRegStart, 0);
    else
        b.movImm(kRegStart, 0);
    b.movReg(kRegChase, kRegStart);

    for (std::uint64_t i = 0; i < warmup_accesses; ++i)
        b.ld(space, kRegChase, kRegChase);

    b.clock(kRegT0, kRegChase);
    for (std::uint64_t i = 0; i < timed_accesses; ++i)
        b.ld(space, kRegChase, kRegChase);
    b.clock(kRegT1, kRegChase);
    // One more (untimed) load so the stored pointer sits at chain
    // position warmup+timed+1: when warmup+timed is a multiple of
    // the chain length the final pointer would equal the start and
    // a chase that executed zero loads would verify vacuously.
    b.ld(space, kRegChase, kRegChase);

    b.alu(Opcode::ISUB, kRegDelta, kRegT1, kRegT0);
    b.movParam(kRegOut, 1);
    b.st(MemSpace::Global, kRegOut, kRegDelta);
    // Also store the final chase pointer so the chain provably ran.
    b.st(MemSpace::Global, kRegOut, kRegChase, 8);
    b.exit();
    return b.finalize();
}

Kernel
buildLocalChainInitKernel(std::uint64_t elems, std::uint64_t stride)
{
    KernelBuilder b("pchase_local_init");
    for (std::uint64_t i = 0; i < elems; ++i) {
        const std::uint64_t next = (i + 1) % elems * stride;
        b.movImm(2, static_cast<std::int64_t>(next));
        b.movImm(3, static_cast<std::int64_t>(i * stride));
        b.st(MemSpace::Local, 3, 2);
    }
    b.exit();
    return b.finalize();
}

PChaseResult
runPointerChase(Gpu &gpu, const PChaseConfig &cfg)
{
    GPULAT_ASSERT(cfg.strideBytes >= 8 && cfg.strideBytes % 8 == 0,
                  "stride must be a multiple of 8 bytes");
    GPULAT_ASSERT(cfg.footprintBytes >= cfg.strideBytes,
                  "footprint smaller than stride");
    const std::uint64_t elems = cfg.footprintBytes / cfg.strideBytes;
    const std::uint64_t warmup =
        cfg.warmup ? std::min(elems, cfg.maxWarmupAccesses) : 0;

    const Addr out = gpu.alloc(16);

    PChaseResult result;
    std::vector<RegValue> params{0, out};
    Addr buf = kNoAddr;
    if (cfg.space == MemSpace::Global) {
        buf = gpu.alloc(cfg.footprintBytes, cfg.strideBytes);
        std::vector<std::uint64_t> chain(elems);
        for (std::uint64_t i = 0; i < elems; ++i)
            chain[i] = buf + (i + 1) % elems * cfg.strideBytes;
        // Scatter the next-pointers at stride spacing.
        for (std::uint64_t i = 0; i < elems; ++i) {
            gpu.copyToDevice(buf + i * cfg.strideBytes, &chain[i], 8);
        }
        params[0] = buf;
    } else {
        if (gpu.config().localBytesPerThread < cfg.footprintBytes)
            fatal("localBytesPerThread (",
                  gpu.config().localBytesPerThread,
                  ") smaller than chase footprint (",
                  cfg.footprintBytes, ")");
        const Kernel init =
            buildLocalChainInitKernel(elems, cfg.strideBytes);
        const LaunchResult lr = gpu.launch(init, 1, 1, {});
        result.cycles += lr.cycles;
        result.instructions += lr.instructions;
        ++result.launches;
    }

    // Don't let the (uninteresting) warm-up and chain-init traffic
    // pollute the dynamic-latency collectors.
    gpu.latencies().setEnabled(false);
    const Kernel chase =
        buildChaseKernel(cfg.space, warmup, cfg.timedAccesses);
    const LaunchResult lr = gpu.launch(chase, 1, 1, params);
    result.cycles += lr.cycles;
    result.instructions += lr.instructions;
    ++result.launches;
    gpu.latencies().setEnabled(true);

    std::uint64_t delta = 0;
    gpu.copyFromDevice(&delta, out, 8);

    // The chase kernel stores its final pointer next to the delta;
    // check it landed exactly where the circular chain predicts
    // (the +1 is the kernel's trailing untimed load).
    std::uint64_t final_ptr = 0;
    gpu.copyFromDevice(&final_ptr, out + 8, 8);
    const std::uint64_t steps =
        (warmup + cfg.timedAccesses + 1) % elems;
    const std::uint64_t expected = cfg.space == MemSpace::Global
        ? buf + steps * cfg.strideBytes
        : steps * cfg.strideBytes;
    result.chainOk = final_ptr == expected && delta > 0;

    result.timedAccesses = cfg.timedAccesses;
    result.timedCycles = delta;
    result.cyclesPerAccess = static_cast<double>(delta) /
                             static_cast<double>(cfg.timedAccesses);
    return result;
}

} // namespace gpulat
