#include "microbench/table1.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"
#include "common/table.hh"

namespace gpulat {

namespace {

/** Footprints spanning [first plateau .. beyond the last cache]. */
std::vector<std::uint64_t>
globalFootprints(const GpuConfig &cfg, bool full_ladder)
{
    const bool l1_global = cfg.sm.l1Enabled && cfg.sm.l1CachesGlobal;
    const std::uint64_t l1 = cfg.sm.l1Cache.capacityBytes;
    const std::uint64_t l2 = cfg.totalL2Bytes();

    std::vector<std::uint64_t> fps;
    if (l1_global) {
        fps.push_back(l1 / 4);
        fps.push_back(l1 / 2);
        fps.push_back(l1);
    }
    if (l2 > 0) {
        const std::uint64_t lo = l1_global ? l1 * 2 : l2 / 8;
        if (full_ladder) {
            for (std::uint64_t fp : footprintLadder(lo, l2))
                fps.push_back(fp);
        } else {
            fps.push_back(lo);
            fps.push_back(l2 / 2);
            fps.push_back(l2);
        }
        fps.push_back(l2 * 2);
        fps.push_back(l2 * 3);
    } else {
        // No caches at all: any footprints land on DRAM.
        fps = {64 * 1024, 256 * 1024, 1024 * 1024};
    }
    return fps;
}

std::vector<std::uint64_t>
localFootprints(const GpuConfig &cfg)
{
    const std::uint64_t l1 = cfg.sm.l1Cache.capacityBytes;
    return {l1 / 4, l1 / 2, l1};
}

double
round1(double v)
{
    return std::round(v * 10.0) / 10.0;
}

} // namespace

Table1Column
measureGeneration(const GpuConfig &cfg, const Table1Options &opts)
{
    Table1Column col;
    col.gpu = cfg.name;

    const bool has_l1 = cfg.sm.l1Enabled;
    const bool l1_global = has_l1 && cfg.sm.l1CachesGlobal;
    const bool has_l2 = cfg.partition.l2Enabled;

    SweepOptions sweep;
    sweep.space = MemSpace::Global;
    sweep.strideBytes = cfg.sm.lineBytes;
    sweep.timedAccesses = opts.timedAccesses;
    // Beyond the last cache level a cold chase misses everywhere;
    // skipping the (large) warm-up there keeps sweeps fast.
    sweep.warmupMaxFootprint = std::max(
        cfg.totalL2Bytes(),
        cfg.sm.l1Enabled ? cfg.sm.l1Cache.capacityBytes
                         : std::uint64_t{0});

    const auto curve = sweepFootprints(
        cfg, globalFootprints(cfg, opts.fullLadder), sweep);
    const auto levels = detectPlateaus(curve);

    // Expected plateau count from the probe plan.
    const std::size_t expected =
        1 + (has_l2 ? 1 : 0) + (l1_global ? 1 : 0);
    if (levels.size() != expected) {
        fatal("config '", cfg.name, "': expected ", expected,
              " global-sweep plateaus, detected ", levels.size());
    }

    std::size_t idx = 0;
    if (l1_global)
        col.l1 = round1(levels[idx++].latency);
    if (has_l2)
        col.l2 = round1(levels[idx++].latency);
    col.dram = round1(levels[idx].latency);

    // Kepler-style L1: only visible through the local space.
    if (has_l1 && !l1_global && cfg.sm.l1CachesLocal) {
        SweepOptions lsweep = sweep;
        lsweep.space = MemSpace::Local;
        const auto lcurve =
            sweepFootprints(cfg, localFootprints(cfg), lsweep);
        const auto llevels = detectPlateaus(lcurve);
        GPULAT_ASSERT(!llevels.empty(), "local sweep found nothing");
        col.l1 = round1(llevels.front().latency);
    }
    return col;
}

std::vector<Table1Column>
measureTable1(const Table1Options &opts)
{
    return {
        measureGeneration(makeGT200(), opts),
        measureGeneration(makeGF106(), opts),
        measureGeneration(makeGK104(), opts),
        measureGeneration(makeGM107(), opts),
    };
}

void
printTable1(std::ostream &os,
            const std::vector<Table1Column> &columns)
{
    std::vector<std::string> header{"Unit"};
    for (const auto &col : columns)
        header.push_back(col.gpu);
    TextTable table(header);

    auto fmt = [](const std::optional<double> &v) {
        if (!v)
            return std::string("x");
        // Integral latencies print without the trailing ".0".
        if (*v == std::round(*v))
            return std::to_string(static_cast<long long>(*v));
        return formatDouble(*v, 1);
    };

    std::vector<std::string> l1_row{"L1 D$"};
    std::vector<std::string> l2_row{"L2 D$"};
    std::vector<std::string> dram_row{"DRAM"};
    for (const auto &col : columns) {
        l1_row.push_back(fmt(col.l1));
        l2_row.push_back(fmt(col.l2));
        dram_row.push_back(fmt(col.dram));
    }
    table.addRow(std::move(l1_row));
    table.addRow(std::move(l2_row));
    table.addRow(std::move(dram_row));
    table.print(os);
}

} // namespace gpulat
