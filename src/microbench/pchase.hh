/**
 * @file
 * Pointer-chase microbenchmark (the paper's §II methodology, after
 * Wong et al.): a single active thread chases pointers through
 * global or local memory; two clock-register reads bracket a chain
 * of dependent loads and the mean per-access latency falls out.
 */

#ifndef GPULAT_MICROBENCH_PCHASE_HH
#define GPULAT_MICROBENCH_PCHASE_HH

#include <cstdint>

#include "gpu/gpu.hh"
#include "isa/kernel.hh"

namespace gpulat {

/** Parameters of one pointer-chase measurement. */
struct PChaseConfig
{
    MemSpace space = MemSpace::Global;
    std::uint64_t footprintBytes = 64 * 1024;
    std::uint64_t strideBytes = 128;
    /** Dependent accesses inside the timed window. */
    std::uint64_t timedAccesses = 2048;
    /** Upper bound on warm-up accesses (one full traversal is used
     *  when it fits under this cap). */
    std::uint64_t maxWarmupAccesses = 64 * 1024;
    bool warmup = true;
};

/** Result of one measurement. */
struct PChaseResult
{
    double cyclesPerAccess = 0.0;
    std::uint64_t timedAccesses = 0;
    Cycle timedCycles = 0;

    /** @name Launch totals (init + chase kernels) @{ */
    Cycle cycles = 0;
    std::uint64_t instructions = 0;
    unsigned launches = 0;
    /** @} */

    /** The final chase pointer landed where the chain predicts —
     *  the measurement provably followed every dependent load. */
    bool chainOk = false;
};

/**
 * Build the unrolled chase kernel: optional warm-up traversal, a
 * clock read, @p timed dependent loads, a second clock read, and a
 * store of the delta to param1. Global chases load absolute
 * addresses from param0; local chases load local-space offsets
 * starting at offset 0.
 */
Kernel buildChaseKernel(MemSpace space, std::uint64_t warmup_accesses,
                        std::uint64_t timed_accesses);

/**
 * Build the init kernel that writes a circular offset chain of
 * @p elems entries with @p stride spacing into the local memory of
 * thread 0 (local memory cannot be initialized from the host).
 */
Kernel buildLocalChainInitKernel(std::uint64_t elems,
                                 std::uint64_t stride);

/**
 * Run one pointer-chase measurement on @p gpu.
 *
 * For MemSpace::Local the GPU config's localBytesPerThread must be
 * at least footprintBytes.
 */
PChaseResult runPointerChase(Gpu &gpu, const PChaseConfig &cfg);

} // namespace gpulat

#endif // GPULAT_MICROBENCH_PCHASE_HH
