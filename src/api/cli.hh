/**
 * @file
 * The `gpulat` command-line driver, as a library entry point so the
 * binary stays a one-line main() and tests can exercise the exact
 * code path the shipped tool runs.
 *
 *   gpulat list [workloads|gpus|keys]
 *   gpulat run   --gpu NAME --workload NAME [key=value ...]
 *                [--set path=value ...] [--scale S]
 *                [--json FILE|-] [--csv FILE|-] [--no-table]
 *                [--report summary|fig1|fig2|all] [--stats]
 *                [--jobs N]
 *   gpulat sweep same flags; comma-separated values in key=value /
 *                --set expand to the cartesian product; --jobs N
 *                runs up to N cells concurrently (0 = hardware
 *                concurrency) with output byte-identical to
 *                --jobs 1
 */

#ifndef GPULAT_API_CLI_HH
#define GPULAT_API_CLI_HH

#include <iosfwd>

namespace gpulat {

/**
 * Run the CLI. Returns the process exit code: 0 on success, 1 if
 * any workload failed verification, 2 on usage/config errors.
 */
int runCli(int argc, const char *const *argv, std::ostream &out,
           std::ostream &err);

} // namespace gpulat

#endif // GPULAT_API_CLI_HH
