/**
 * @file
 * String-named workload factories with typed parameter maps: the
 * front door every experiment driver (the `gpulat` CLI, benches,
 * sweeps) uses to construct workloads. A workload is addressed as
 * `name` + `key=value` parameters ("bfs", nodes=4096) instead of a
 * per-class Options struct, so new experiment matrix cells are data,
 * not code.
 */

#ifndef GPULAT_API_WORKLOAD_REGISTRY_HH
#define GPULAT_API_WORKLOAD_REGISTRY_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "api/param_map.hh"
#include "workloads/workload.hh"

namespace gpulat {

/** One documented parameter of a registered workload. */
struct WorkloadParamSpec
{
    std::string name;
    std::string defaultValue; ///< at bench scale (1.0)
    std::string help;
};

/** One registered workload factory. */
struct WorkloadEntry
{
    std::string name;
    std::string description;
    std::vector<WorkloadParamSpec> params;

    /** Build an instance from user parameters (defaults filled by
     *  the factory; unknown keys are rejected by create()). */
    std::function<std::unique_ptr<Workload>(const ParamMap &)> make;

    /**
     * Fill @p map with the bench-suite defaults shrunk by
     * @p scale in [0, 1] (used by makeAllWorkloads and quick CI
     * runs). Only sets keys that differ from the factory defaults.
     */
    std::function<void(ParamMap &map, double scale)> scaleDefaults;

    /**
     * Part of the multi-workload bench-suite set (makeAllWorkloads)?
     * Microbenches like "pchase" register false: they probe the
     * machine rather than exercise a kernel pattern, but stay fully
     * addressable by name through create() and the CLI.
     */
    bool benchSuite = true;
};

class WorkloadRegistry
{
  public:
    /** The process-wide registry, populated with the built-in
     *  workloads on first use. */
    static const WorkloadRegistry &instance();

    /** Registered names, in registration order. */
    std::vector<std::string> names() const;

    /** Entry by name; nullptr if unknown. */
    const WorkloadEntry *find(const std::string &name) const;

    /**
     * Construct workload @p name from @p params. fatal() on an
     * unknown name, an unknown parameter key, or a malformed value.
     */
    std::unique_ptr<Workload> create(const std::string &name,
                                     const ParamMap &params) const;

    /** create() with parameters parsed from `key=value` strings. */
    std::unique_ptr<Workload>
    create(const std::string &name,
           const std::vector<std::string> &assignments) const;

    /**
     * The bench-suite defaults for @p name at @p scale, as a
     * parameter map (what makeAllWorkloads runs).
     */
    ParamMap scaledParams(const std::string &name, double scale) const;

    void add(WorkloadEntry entry);

  private:
    std::vector<WorkloadEntry> entries_;
};

} // namespace gpulat

#endif // GPULAT_API_WORKLOAD_REGISTRY_HH
