#include "api/parallel_runner.hh"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "common/log.hh"

namespace gpulat {

std::size_t
parseJobs(const std::string &text, const char *flag)
{
    if (text.empty() || text[0] == '-' || text[0] == '+')
        fatal("'", flag, "' needs a non-negative integer, got '",
              text, "'");
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0')
        fatal("'", flag, "' needs a non-negative integer, got '",
              text, "'");
    return static_cast<std::size_t>(v);
}

std::size_t
resolveJobs(std::size_t jobs)
{
    if (jobs != 0)
        return jobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ParallelRunner::ParallelRunner(std::size_t jobs)
    : jobs_(jobs ? jobs : 1)
{
}

namespace {

/** Run one cell, trapping its exceptions into the outcome. */
JobOutcome
runOne(const ExperimentSpec &spec, std::size_t index,
       const ParallelRunner::Inspect &inspect)
{
    JobOutcome outcome;
    try {
        auto hook = inspect
            ? std::function<void(Gpu &, const ExperimentRecord &)>(
                  [&](Gpu &gpu, const ExperimentRecord &rec) {
                      inspect(index, gpu, rec);
                  })
            : std::function<void(Gpu &, const ExperimentRecord &)>{};
        outcome.record = runExperiment(spec, hook);
    } catch (const std::exception &e) {
        outcome.failed = true;
        outcome.error = e.what();
    }
    return outcome;
}

} // namespace

std::vector<JobOutcome>
ParallelRunner::run(const std::vector<ExperimentSpec> &specs,
                    const Inspect &inspect, const Commit &commit) const
{
    std::vector<JobOutcome> outcomes(specs.size());
    const std::size_t workers = std::min(jobs_, specs.size());

    if (workers <= 1) {
        for (std::size_t i = 0; i < specs.size(); ++i) {
            outcomes[i] = runOne(specs[i], i, inspect);
            if (commit)
                commit(i, outcomes[i]);
        }
        return outcomes;
    }

    // Work-stealing by index: workers pull the next unclaimed spec;
    // the caller's thread commits results in spec order as soon as
    // every earlier index has completed, so sink output streams in
    // deterministic order while later cells are still simulating.
    std::atomic<std::size_t> next{0};
    std::vector<char> done(specs.size(), 0); // guarded by mu
    std::mutex mu;
    std::condition_variable cv;

    auto worker = [&]() {
        while (true) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= specs.size())
                return;
            JobOutcome outcome = runOne(specs[i], i, inspect);
            {
                std::lock_guard<std::mutex> lock(mu);
                outcomes[i] = std::move(outcome);
                done[i] = 1;
            }
            cv.notify_one();
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w)
        pool.emplace_back(worker);

    try {
        for (std::size_t i = 0; i < specs.size(); ++i) {
            std::unique_lock<std::mutex> lock(mu);
            cv.wait(lock, [&] { return done[i] != 0; });
            if (commit) {
                // Commit without the lock: the callback may be
                // slow (file I/O) and this slot is no longer
                // written to.
                lock.unlock();
                commit(i, outcomes[i]);
            }
        }
    } catch (...) {
        // A throwing commit must not leave joinable threads behind
        // (std::terminate); workers drain the remaining indices on
        // their own, so joining here is deadlock-free.
        for (std::thread &t : pool)
            t.join();
        throw;
    }

    for (std::thread &t : pool)
        t.join();
    return outcomes;
}

} // namespace gpulat
