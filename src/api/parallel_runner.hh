/**
 * @file
 * Concurrent execution of independent experiments. A ParallelRunner
 * owns a fixed pool of worker threads; each in-flight job builds a
 * fully isolated Gpu + workload pair through runExperiment(), so two
 * simulations never share a counter, cache, collector or RNG.
 * Results are committed on the *caller's* thread in spec order
 * regardless of completion order, which makes a parallel sweep's
 * output — records, sinks, reports — byte-identical to a serial one.
 *
 * An exception inside one job (bad override, workload fatal(), ...)
 * is captured into that job's outcome and does not poison siblings;
 * the remaining cells of the sweep still run to completion.
 */

#ifndef GPULAT_API_PARALLEL_RUNNER_HH
#define GPULAT_API_PARALLEL_RUNNER_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "api/experiment.hh"

namespace gpulat {

/** What one sweep cell produced: a record, or a captured error. */
struct JobOutcome
{
    ExperimentRecord record; ///< valid iff !failed
    bool failed = false;     ///< the job threw
    std::string error;       ///< exception text when failed
};

/**
 * Parse a jobs-count value: a non-negative integer, where 0 means
 * "use the hardware concurrency". fatal() on anything else
 * (negative, fractional, empty, non-numeric, trailing junk),
 * naming @p flag — the same syntax serves `--jobs` and
 * `--tick-jobs`, and the error must point at the flag the user
 * actually passed.
 */
std::size_t parseJobs(const std::string &text,
                      const char *flag = "--jobs");

/** Map the user's jobs request to a worker count: 0 becomes the
 *  hardware concurrency (at least 1), anything else passes through. */
std::size_t resolveJobs(std::size_t jobs);

class ParallelRunner
{
  public:
    /**
     * Runs after the simulation on the *worker* thread with the
     * still-live Gpu (same contract as runExperiment's inspect).
     * Must only write state private to its index — e.g. its slot of
     * a pre-sized vector — never a shared stream or accumulator.
     */
    using Inspect =
        std::function<void(std::size_t index, Gpu &gpu,
                           const ExperimentRecord &record)>;

    /**
     * Runs on the caller's thread, strictly in spec order (outcome
     * 0, then 1, ...), as soon as every earlier job has finished.
     * The right place for sinks, streams and exit-code accounting.
     */
    using Commit =
        std::function<void(std::size_t index,
                           const JobOutcome &outcome)>;

    /** @param jobs resolved worker count (>= 1, see resolveJobs). */
    explicit ParallelRunner(std::size_t jobs);

    /**
     * Run every spec and return the outcomes in spec order. With
     * one worker (or fewer than two specs) everything executes
     * inline on the caller's thread — no threads are created, and
     * the per-cell exception capture is the same, so `--jobs 1`
     * and `--jobs N` differ only in wall-clock.
     */
    std::vector<JobOutcome> run(const std::vector<ExperimentSpec> &specs,
                                const Inspect &inspect = {},
                                const Commit &commit = {}) const;

    std::size_t jobs() const { return jobs_; }

  private:
    std::size_t jobs_;
};

} // namespace gpulat

#endif // GPULAT_API_PARALLEL_RUNNER_HH
