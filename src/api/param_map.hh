/**
 * @file
 * Typed key=value parameter maps for the experiment API. Workload
 * factories and the CLI parse user-supplied `key=value` strings
 * into a ParamMap and read them back through typed getters; keys
 * nobody consumed are reported so a typo ("ndoes=4096") is a fatal
 * error instead of a silently ignored knob.
 */

#ifndef GPULAT_API_PARAM_MAP_HH
#define GPULAT_API_PARAM_MAP_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace gpulat {

class ParamMap
{
  public:
    ParamMap() = default;

    /** Parse `key=value` assignments; fatal() on a missing '='. */
    static ParamMap parse(const std::vector<std::string> &assignments);

    /** Split one `key=value` string; fatal() on a missing '='. */
    static std::pair<std::string, std::string>
    splitAssignment(const std::string &assignment);

    void set(const std::string &key, const std::string &value);
    bool has(const std::string &key) const;

    /** @name Typed getters (mark the key consumed; fatal on a
     *  malformed value) @{ */
    std::string getString(const std::string &key,
                          const std::string &def) const;
    std::uint64_t getU64(const std::string &key,
                         std::uint64_t def) const;
    unsigned getUnsigned(const std::string &key, unsigned def) const;
    double getDouble(const std::string &key, double def) const;
    bool getBool(const std::string &key, bool def) const;
    /** @} */

    /** All entries, sorted by key. */
    const std::map<std::string, std::string> &entries() const
    {
        return entries_;
    }

    bool empty() const { return entries_.empty(); }

    /** Keys never read through a getter (likely typos). */
    std::vector<std::string> unconsumedKeys() const;

    /** Render as "k=v k=v" (sorted), for labels and sinks. */
    std::string toString() const;

  private:
    std::map<std::string, std::string> entries_;
    /** Consumption is bookkeeping, not logical state. */
    mutable std::set<std::string> consumed_;
};

} // namespace gpulat

#endif // GPULAT_API_PARAM_MAP_HH
