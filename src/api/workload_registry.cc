#include "api/workload_registry.hh"

#include <algorithm>

#include "common/log.hh"
#include "serving/serving.hh"
#include "workloads/bfs.hh"
#include "workloads/pchase.hh"
#include "workloads/compute_stream.hh"
#include "workloads/gemm.hh"
#include "workloads/histogram.hh"
#include "workloads/reduction.hh"
#include "workloads/scan.hh"
#include "workloads/spmv.hh"
#include "workloads/stencil.hh"
#include "workloads/transpose.hh"
#include "workloads/vecadd.hh"

namespace gpulat {

namespace {

/** Shrink a bench-sized default by the makeAllWorkloads scale. */
std::uint64_t
scaledSize(std::uint64_t full, std::uint64_t min, double scale)
{
    return std::max<std::uint64_t>(
        min,
        static_cast<std::uint64_t>(static_cast<double>(full) * scale));
}

std::unique_ptr<Workload>
makeBfs(const ParamMap &p)
{
    Bfs::Options opts;
    // `nodes` only applies to uniform graphs, so setting it without
    // an explicit kind implies uniform (the common CLI shorthand
    // `--workload bfs nodes=4096`).
    const std::string kind =
        p.getString("kind", p.has("nodes") ? "uniform" : "rmat");
    if (kind == "rmat") {
        opts.kind = Bfs::GraphKind::Rmat;
    } else if (kind == "uniform") {
        opts.kind = Bfs::GraphKind::Uniform;
    } else {
        fatal("bfs: kind must be rmat|uniform, got '", kind, "'");
    }
    opts.nodes = p.getU64("nodes", opts.nodes);
    opts.scale = p.getUnsigned("scale", opts.scale);
    opts.degree = p.getUnsigned("degree", opts.degree);
    opts.seed = p.getU64("seed", opts.seed);
    opts.source = p.getU64("source", opts.source);
    opts.threadsPerBlock =
        p.getUnsigned("threadsPerBlock", opts.threadsPerBlock);
    return std::make_unique<Bfs>(opts);
}

std::unique_ptr<Workload>
makeComputeStream(const ParamMap &p)
{
    ComputeStream::Options opts;
    opts.n = p.getU64("n", opts.n);
    opts.fmaDepth = p.getUnsigned("fmaDepth", opts.fmaDepth);
    opts.threadsPerBlock =
        p.getUnsigned("threadsPerBlock", opts.threadsPerBlock);
    opts.seed = p.getU64("seed", opts.seed);
    return std::make_unique<ComputeStream>(opts);
}

std::unique_ptr<Workload>
makeVecAdd(const ParamMap &p)
{
    VecAdd::Options opts;
    opts.n = p.getU64("n", opts.n);
    opts.threadsPerBlock =
        p.getUnsigned("threadsPerBlock", opts.threadsPerBlock);
    opts.seed = p.getU64("seed", opts.seed);
    return std::make_unique<VecAdd>(opts);
}

std::unique_ptr<Workload>
makeReduction(const ParamMap &p)
{
    Reduction::Options opts;
    opts.n = p.getU64("n", opts.n);
    opts.threadsPerBlock =
        p.getUnsigned("threadsPerBlock", opts.threadsPerBlock);
    opts.seed = p.getU64("seed", opts.seed);
    return std::make_unique<Reduction>(opts);
}

std::unique_ptr<Workload>
makeStencil(const ParamMap &p)
{
    Stencil2D::Options opts;
    opts.width = p.getUnsigned("width", opts.width);
    opts.height = p.getUnsigned("height", opts.height);
    opts.iterations = p.getUnsigned("iterations", opts.iterations);
    opts.seed = p.getU64("seed", opts.seed);
    return std::make_unique<Stencil2D>(opts);
}

std::unique_ptr<Workload>
makeSpMV(const ParamMap &p)
{
    SpMV::Options opts;
    opts.rows = p.getU64("rows", opts.rows);
    opts.nnzPerRow = p.getUnsigned("nnzPerRow", opts.nnzPerRow);
    opts.threadsPerBlock =
        p.getUnsigned("threadsPerBlock", opts.threadsPerBlock);
    opts.seed = p.getU64("seed", opts.seed);
    return std::make_unique<SpMV>(opts);
}

std::unique_ptr<Workload>
makeTranspose(const ParamMap &p, bool tiled)
{
    Transpose::Options opts;
    opts.n = p.getUnsigned("n", opts.n);
    opts.tiled = tiled;
    opts.seed = p.getU64("seed", opts.seed);
    return std::make_unique<Transpose>(opts);
}

std::unique_ptr<Workload>
makeHistogram(const ParamMap &p)
{
    AtomicHistogram::Options opts;
    opts.n = p.getU64("n", opts.n);
    opts.bins = p.getU64("bins", opts.bins);
    opts.threadsPerBlock =
        p.getUnsigned("threadsPerBlock", opts.threadsPerBlock);
    opts.seed = p.getU64("seed", opts.seed);
    return std::make_unique<AtomicHistogram>(opts);
}

std::unique_ptr<Workload>
makeScan(const ParamMap &p)
{
    Scan::Options opts;
    opts.n = p.getU64("n", opts.n);
    opts.blockElems = p.getUnsigned("blockElems", opts.blockElems);
    opts.seed = p.getU64("seed", opts.seed);
    return std::make_unique<Scan>(opts);
}

std::unique_ptr<Workload>
makePChase(const ParamMap &p)
{
    PChase::Options opts;
    const std::string space = p.getString("space", "global");
    if (space == "global") {
        opts.space = MemSpace::Global;
    } else if (space == "local") {
        opts.space = MemSpace::Local;
    } else {
        fatal("pchase: space must be global|local, got '", space,
              "'");
    }
    opts.footprintBytes =
        p.getU64("footprintBytes", opts.footprintBytes);
    opts.strideBytes = p.getU64("strideBytes", opts.strideBytes);
    opts.timedAccesses =
        p.getU64("timedAccesses", opts.timedAccesses);
    opts.warmup = p.getBool("warmup", opts.warmup);
    return std::make_unique<PChase>(opts);
}

std::unique_ptr<Workload>
makeServe(ServingWorkload::Profile profile, const ParamMap &p)
{
    ServingWorkload::Options opts;
    opts.profile = profile;
    opts.tenants = p.getUnsigned("tenants", opts.tenants);
    opts.launches = p.getUnsigned("launches", opts.launches);
    opts.load = p.getDouble("load", opts.load);
    opts.buffers = p.getUnsigned("buffers", opts.buffers);
    opts.thinkCycles = p.getDouble("think", opts.thinkCycles);
    return std::make_unique<ServingWorkload>(opts);
}

std::unique_ptr<Workload>
makeGemm(const ParamMap &p)
{
    Gemm::Options opts;
    opts.n = p.getUnsigned("n", opts.n);
    opts.seed = p.getU64("seed", opts.seed);
    return std::make_unique<Gemm>(opts);
}

/**
 * Register the built-in workloads. Registration is centralized
 * here (rather than self-registration statics in each workload's
 * .cc) so linking the static library can never drop an entry.
 * Registration order is the canonical bench-suite order of
 * makeAllWorkloads().
 */
WorkloadRegistry
buildRegistry()
{
    WorkloadRegistry reg;

    reg.add({
        "bfs",
        "level-synchronized BFS; scattered data-dependent loads",
        {{"kind", "rmat", "graph kind: rmat|uniform"},
         {"nodes", "16384", "node count (uniform; implies "
                            "kind=uniform unless kind given)"},
         {"scale", "14", "RMAT graphs have 2^scale nodes"},
         {"degree", "8", "uniform degree / RMAT edge factor"},
         {"seed", "1", "graph RNG seed"},
         {"source", "0", "BFS source node"},
         {"threadsPerBlock", "128", "block size"}},
        makeBfs,
        // No kind= here: the factory defaults to rmat, and setting
        // it would defeat the `nodes=N implies uniform` shorthand
        // when user params are merged over these defaults.
        [](ParamMap &m, double scale) {
            m.set("scale", scale >= 0.99 ? "14" : "11");
            m.set("degree", "8");
        },
    });

    reg.add({
        "compute_stream",
        "dependent-FMA stream; compute-bound latency hider",
        {{"n", "32768", "elements"},
         {"fmaDepth", "32", "dependent FMAs per element"},
         {"threadsPerBlock", "256", "block size"},
         {"seed", "8", "input RNG seed"}},
        makeComputeStream,
        [](ParamMap &m, double scale) {
            m.set("n",
                  std::to_string(scaledSize(1 << 15, 1 << 12, scale)));
            m.set("fmaDepth", "32");
        },
    });

    reg.add({
        "vecadd",
        "streaming c = a + b; perfectly coalesced bandwidth bound",
        {{"n", "65536", "elements"},
         {"threadsPerBlock", "256", "block size"},
         {"seed", "2", "input RNG seed"}},
        makeVecAdd,
        [](ParamMap &m, double scale) {
            m.set("n",
                  std::to_string(scaledSize(1 << 16, 1 << 12, scale)));
        },
    });

    reg.add({
        "reduction",
        "tree reduction with shared memory and barriers",
        {{"n", "65536", "elements (power of two)"},
         {"threadsPerBlock", "256", "block size (power of two)"},
         {"seed", "3", "input RNG seed"}},
        makeReduction,
        [](ParamMap &m, double scale) {
            m.set("n",
                  std::to_string(scaledSize(1 << 16, 1 << 12, scale)));
        },
    });

    reg.add({
        "stencil2d",
        "iterated 5-point stencil; neighbor reuse through caches",
        {{"width", "256", "row length == threads per block"},
         {"height", "256", "rows == blocks"},
         {"iterations", "2", "sweeps"},
         {"seed", "4", "input RNG seed"}},
        makeStencil,
        [](ParamMap &m, double scale) {
            m.set("width", "256");
            m.set("height",
                  std::to_string(scaledSize(256, 32, scale)));
            m.set("iterations", "2");
        },
    });

    reg.add({
        "spmv",
        "CSR sparse matrix-vector product; irregular gathers",
        {{"rows", "8192", "matrix rows"},
         {"nnzPerRow", "16", "nonzeros per row"},
         {"threadsPerBlock", "128", "block size"},
         {"seed", "5", "matrix RNG seed"}},
        makeSpMV,
        [](ParamMap &m, double scale) {
            m.set("rows",
                  std::to_string(scaledSize(1 << 13, 1 << 10, scale)));
            m.set("nnzPerRow", "16");
        },
    });

    reg.add({
        "transpose_naive",
        "row-major matrix transpose; uncoalesced column writes",
        {{"n", "256", "matrix dimension (power of two, multiple "
                      "of 32, <= 1024)"},
         {"seed", "6", "input RNG seed"}},
        [](const ParamMap &p) { return makeTranspose(p, false); },
        [](ParamMap &m, double scale) {
            m.set("n", scale >= 0.99 ? "256" : "128");
        },
    });

    reg.add({
        "transpose_tiled",
        "shared-memory tiled transpose; coalesced contrast case",
        {{"n", "256", "matrix dimension (power of two, multiple "
                      "of 32, <= 1024)"},
         {"seed", "6", "input RNG seed"}},
        [](const ParamMap &p) { return makeTranspose(p, true); },
        [](ParamMap &m, double scale) {
            m.set("n", scale >= 0.99 ? "256" : "128");
        },
    });

    reg.add({
        "histogram",
        "global-atomic histogram; contention scales with 1/bins",
        {{"n", "16384", "input elements"},
         {"bins", "256", "bins (power of two)"},
         {"threadsPerBlock", "128", "block size"},
         {"seed", "9", "input RNG seed"}},
        makeHistogram,
        [](ParamMap &m, double scale) {
            m.set("n",
                  std::to_string(scaledSize(1 << 14, 1 << 11, scale)));
            m.set("bins", "256");
        },
    });

    reg.add({
        "scan",
        "two-kernel exclusive prefix scan (block scan + offsets)",
        {{"n", "16384", "elements"},
         {"blockElems", "256", "elements per block == block size "
                               "(power of two)"},
         {"seed", "11", "input RNG seed"}},
        makeScan,
        [](ParamMap &m, double scale) {
            m.set("n",
                  std::to_string(scaledSize(1 << 14, 1 << 11, scale)));
        },
    });

    reg.add({
        "gemm",
        "tiled shared-memory GEMM; dense compute, hidden latency",
        {{"n", "128", "matrix dimension (power of two, multiple "
                      "of 16)"},
         {"seed", "10", "input RNG seed"}},
        makeGemm,
        [](ParamMap &m, double scale) {
            m.set("n", scale >= 0.99 ? "128" : "64");
        },
    });

    reg.add({
        "pchase",
        "single-thread pointer chase; idle-latency probe (Table I)",
        {{"space", "global", "memory space: global|local"},
         {"footprintBytes", "65536", "chain footprint in bytes"},
         {"strideBytes", "128", "chain stride (multiple of 8)"},
         {"timedAccesses", "2048", "dependent loads in the timed "
                                   "window"},
         {"warmup", "true", "traverse the chain once before "
                            "timing"}},
        makePChase,
        [](ParamMap &m, double scale) {
            m.set("timedAccesses", scale >= 0.99 ? "2048" : "256");
        },
        /*benchSuite=*/false,
    });

    // Multi-tenant serving scenarios (src/serving). On-demand, not
    // bench-suite: they exercise the serving layer, not a kernel
    // pattern. Arrival streams and input data derive from the
    // `seed` config override, not a workload parameter.
    const std::vector<WorkloadParamSpec> serve_params = {
        {"tenants", "3", "number of tenants"},
        {"launches", "12", "launches per tenant"},
        {"load", "1.0", "arrival-rate multiplier (scales gaps "
                        "down)"},
        {"buffers", "3", "rotating output buffers per tenant"},
    };
    auto serve_scale = [](ParamMap &m, double scale) {
        m.set("launches", scale >= 0.99 ? "12" : "3");
    };
    reg.add({
        "serve.mixed",
        "multi-tenant serving; small/medium/heavy tenants, "
        "Poisson arrivals",
        serve_params,
        [](const ParamMap &p) {
            return makeServe(ServingWorkload::Profile::Mixed, p);
        },
        serve_scale,
        /*benchSuite=*/false,
    });
    reg.add({
        "serve.uniform",
        "multi-tenant serving; homogeneous tenants, fixed-rate "
        "arrivals",
        serve_params,
        [](const ParamMap &p) {
            return makeServe(ServingWorkload::Profile::Uniform, p);
        },
        serve_scale,
        /*benchSuite=*/false,
    });
    {
        auto closed_params = serve_params;
        closed_params.push_back(
            {"think", "2000", "completion-to-next-arrival think "
                              "time (cycles)"});
        reg.add({
            "serve.closed",
            "multi-tenant serving; closed loop, one outstanding "
            "launch per tenant",
            closed_params,
            [](const ParamMap &p) {
                return makeServe(ServingWorkload::Profile::Closed, p);
            },
            serve_scale,
            /*benchSuite=*/false,
        });
    }

    return reg;
}

} // namespace

const WorkloadRegistry &
WorkloadRegistry::instance()
{
    static const WorkloadRegistry registry = buildRegistry();
    return registry;
}

void
WorkloadRegistry::add(WorkloadEntry entry)
{
    GPULAT_ASSERT(!find(entry.name),
                  "duplicate workload '", entry.name, "'");
    entries_.push_back(std::move(entry));
}

std::vector<std::string>
WorkloadRegistry::names() const
{
    std::vector<std::string> names;
    names.reserve(entries_.size());
    for (const auto &e : entries_)
        names.push_back(e.name);
    return names;
}

const WorkloadEntry *
WorkloadRegistry::find(const std::string &name) const
{
    for (const auto &e : entries_) {
        if (e.name == name)
            return &e;
    }
    return nullptr;
}

std::unique_ptr<Workload>
WorkloadRegistry::create(const std::string &name,
                         const ParamMap &params) const
{
    const WorkloadEntry *entry = find(name);
    if (!entry) {
        std::string known;
        for (const auto &n : names())
            known += (known.empty() ? "" : ", ") + n;
        fatal("unknown workload '", name, "' (known: ", known, ")");
    }
    auto workload = entry->make(params);
    const auto unknown = params.unconsumedKeys();
    if (!unknown.empty()) {
        std::string list;
        for (const auto &k : unknown)
            list += (list.empty() ? "" : ", ") + k;
        fatal("workload '", name, "': unknown parameter(s): ", list);
    }
    return workload;
}

std::unique_ptr<Workload>
WorkloadRegistry::create(
    const std::string &name,
    const std::vector<std::string> &assignments) const
{
    return create(name, ParamMap::parse(assignments));
}

ParamMap
WorkloadRegistry::scaledParams(const std::string &name,
                               double scale) const
{
    const WorkloadEntry *entry = find(name);
    if (!entry)
        fatal("unknown workload '", name, "'");
    scale = std::clamp(scale, 0.01, 1.0);
    ParamMap map;
    if (entry->scaleDefaults)
        entry->scaleDefaults(map, scale);
    return map;
}

} // namespace gpulat
