/**
 * @file
 * The experiment runner behind the `gpulat` CLI and the migrated
 * benches: a declarative ExperimentSpec (preset + overrides +
 * workload + params) is resolved through the config-override layer
 * and the WorkloadRegistry, simulated, and collapsed into one
 * schema-stable ExperimentRecord. Sweeps are specs whose values
 * carry comma-separated lists; expandSweep() takes the cartesian
 * product.
 */

#ifndef GPULAT_API_EXPERIMENT_HH
#define GPULAT_API_EXPERIMENT_HH

#include <functional>
#include <string>
#include <vector>

#include "api/stat_sink.hh"
#include "gpu/gpu.hh"
#include "latency/stages.hh"

namespace gpulat {

/**
 * The stable metric-key slug of a pipeline stage:
 * rec.metrics["stage_pct." + stageMetricSlug(s)] is that stage's
 * share of aggregate fetch latency ("DRAM(QtoSch)" -> "dram_qtosch").
 */
std::string stageMetricSlug(Stage stage);

/** One experiment, fully described by strings. */
struct ExperimentSpec
{
    std::string gpu = "gf100-sim";       ///< preset name/alias
    std::string workload;                ///< registry name
    std::vector<std::string> params;     ///< "key=value"
    std::vector<std::string> overrides;  ///< "dotted.path=value"
    /** Shrink workload defaults ([0,1], 1 = bench-sized); explicit
     *  params win over scaled defaults. */
    double scale = 1.0;
};

/** Preset + overrides -> concrete config (fatal on bad input). */
GpuConfig buildConfig(const ExperimentSpec &spec);

/**
 * Run one experiment: build the config, construct the workload,
 * simulate, and collect the record. @p inspect, if set, runs after
 * the simulation with the still-live Gpu (for extra reports that
 * need raw traces, e.g. Figure 1/2 charts).
 */
ExperimentRecord runExperiment(
    const ExperimentSpec &spec,
    const std::function<void(Gpu &, const ExperimentRecord &)>
        &inspect = {});

/**
 * Collapse a finished run on @p gpu into a record. Reads counters
 * via StatRegistry::counterSinceEpoch(), so benches reusing one Gpu
 * across experiments get per-experiment values as long as they
 * markEpoch() between runs.
 */
ExperimentRecord collectRecord(Gpu &gpu,
                               const ExperimentSpec &spec,
                               const WorkloadResult &result);

/**
 * Expand comma-separated values in params/overrides into the
 * cartesian product of single-valued specs, varying the *last*
 * listed axis fastest. `--set sm.warpSlots=1,2,4` yields 3 specs.
 */
std::vector<ExperimentSpec> expandSweep(const ExperimentSpec &spec);

} // namespace gpulat

#endif // GPULAT_API_EXPERIMENT_HH
