/**
 * @file
 * Machine-readable experiment output. Every run produces one
 * ExperimentRecord with a schema-stable set of fields; StatSink
 * backends render a stream of records as an aligned text table,
 * JSON (`gpulat.run.v1`) or CSV. Benches and the `gpulat` CLI feed
 * the same records to any combination of sinks, so a sweep is
 * plottable without scraping its human-readable table.
 */

#ifndef GPULAT_API_STAT_SINK_HH
#define GPULAT_API_STAT_SINK_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"
#include "workloads/workload.hh"

namespace gpulat {

/** One experiment cell: preset x workload x overrides -> results. */
struct ExperimentRecord
{
    std::string gpu;      ///< config preset name
    std::string workload; ///< registry name
    std::map<std::string, std::string> params;    ///< workload params
    std::map<std::string, std::string> overrides; ///< config paths

    bool correct = false;
    Cycle cycles = 0;
    std::uint64_t instructions = 0;
    unsigned launches = 0;

    /**
     * Derived metrics with stable names: "ipc", "requests",
     * "mean_load_latency", "exposed_pct", "l1_hit_pct",
     * "dram_row_hit_pct", "mean_dram_queue_wait", one
     * "stage_pct.<stage>" per pipeline stage, and one
     * "ff_skip_pct.<domain>" per engine clock domain — the share
     * of that domain's scheduled component ticks the idle
     * fast-forward skipped (collectRecord() in api/experiment.hh
     * fills them all, always, so columns never appear or vanish
     * between runs).
     */
    std::map<std::string, double> metrics;

    /** Selected per-epoch hardware counters (optional extras). */
    std::map<std::string, std::uint64_t> counters;

    /**
     * Human-readable justification of the SM-parallel safety
     * verdict of the run's (last) launch; the boolean verdict
     * itself is `metrics["analysis.sm_parallel"]`. Both are pure
     * functions of (kernel, grid, params) — schedule- and
     * tick-jobs-invariant — so they are safe to serialize.
     */
    std::string analysisReason;

    /**
     * Resolved intra-simulation tick workers the run executed with
     * (TickEngine::tickJobs(), >= 1). Execution metadata for
     * programmatic consumers (benches comparing wall-clock per
     * worker count) — deliberately *not* serialized by any sink,
     * and `engine.tickJobs` is filtered from `overrides`, because
     * records must be byte-identical across tick-jobs values (the
     * per-group tick counters `engine.group.<name>.ticks_run` in
     * `counters` are deterministic and do ride along).
     */
    std::size_t tickJobs = 1;

    double metric(const std::string &name) const;
};

/** Consumes a stream of records; flushes on finish(). */
class StatSink
{
  public:
    virtual ~StatSink() = default;
    virtual void write(const ExperimentRecord &record) = 0;
    /** Called once after the last record. */
    virtual void finish() {}
};

/** Aligned text table (one row per record), printed on finish(). */
class TextTableSink : public StatSink
{
  public:
    /**
     * @param extra_metrics metric names appended as columns after
     *        the standard ones (benches add their experiment's
     *        headline numbers, e.g. "dram_row_hit_pct").
     */
    explicit TextTableSink(std::ostream &os,
                           std::vector<std::string> extra_metrics = {})
        : os_(os), extraMetrics_(std::move(extra_metrics)) {}
    void write(const ExperimentRecord &record) override;
    void finish() override;

  private:
    std::ostream &os_;
    std::vector<std::string> extraMetrics_;
    std::vector<ExperimentRecord> records_;
};

/** Owns the output file of a sink constructed from a path. */
class FileBackedSink : public StatSink
{
  private:
    std::unique_ptr<std::ostream> owned_; ///< before os_: init order

  protected:
    /** Stream to @p os (path constructor: opens, fatal on error). */
    explicit FileBackedSink(std::ostream &os) : os_(os) {}
    explicit FileBackedSink(const std::string &path);

    std::ostream &os_;
};

/** JSON document {"schema": "gpulat.run.v1", "records": [...]}. */
class JsonSink : public FileBackedSink
{
  public:
    explicit JsonSink(std::ostream &os) : FileBackedSink(os) {}
    explicit JsonSink(const std::string &path)
        : FileBackedSink(path) {}
    void write(const ExperimentRecord &record) override;
    void finish() override;

  private:
    bool first_ = true;
};

/**
 * CSV with a fixed header row (params/overrides ';'-joined).
 * Fields follow RFC 4180: free-text cells containing the
 * delimiter, quotes or line breaks are quoted with embedded quotes
 * doubled; missing/non-finite metric cells are left empty (the
 * cell-level analogue of the JSON sink's null).
 */
class CsvSink : public FileBackedSink
{
  public:
    explicit CsvSink(std::ostream &os) : FileBackedSink(os) {}
    explicit CsvSink(const std::string &path)
        : FileBackedSink(path) {}
    void write(const ExperimentRecord &record) override;

  private:
    bool wroteHeader_ = false;
};

/** Fan out to several sinks (table to stdout + JSON to a file). */
class MultiSink : public StatSink
{
  public:
    void add(std::unique_ptr<StatSink> sink);
    bool empty() const { return sinks_.empty(); }
    void write(const ExperimentRecord &record) override;
    void finish() override;

  private:
    std::vector<std::unique_ptr<StatSink>> sinks_;
};

/**
 * Bench-main helper: consume `--json FILE` / `--csv FILE` pairs
 * from a bench's argv and add the matching sinks, so every bench
 * offers machine-readable output for free. When @p jobs is
 * non-null, `--jobs N` is also accepted (parseJobs semantics,
 * 0 = hardware concurrency) so multi-point benches parallelize for
 * free. fatal() on other arguments.
 */
void addOutputSinks(MultiSink &sinks, int argc,
                    const char *const *argv,
                    std::size_t *jobs = nullptr);

/** Escape and quote a string as a JSON literal. */
std::string jsonQuote(const std::string &s);

} // namespace gpulat

#endif // GPULAT_API_STAT_SINK_HH
