#include "api/param_map.hh"

#include <cstdlib>

#include "common/log.hh"

namespace gpulat {

std::pair<std::string, std::string>
ParamMap::splitAssignment(const std::string &assignment)
{
    const auto eq = assignment.find('=');
    if (eq == std::string::npos || eq == 0) {
        fatal("expected key=value, got '", assignment, "'");
    }
    return {assignment.substr(0, eq), assignment.substr(eq + 1)};
}

ParamMap
ParamMap::parse(const std::vector<std::string> &assignments)
{
    ParamMap map;
    for (const std::string &a : assignments) {
        auto [key, value] = splitAssignment(a);
        map.set(key, value);
    }
    return map;
}

void
ParamMap::set(const std::string &key, const std::string &value)
{
    entries_[key] = value;
}

bool
ParamMap::has(const std::string &key) const
{
    return entries_.count(key) != 0;
}

std::string
ParamMap::getString(const std::string &key,
                    const std::string &def) const
{
    auto it = entries_.find(key);
    if (it == entries_.end())
        return def;
    consumed_.insert(key);
    return it->second;
}

std::uint64_t
ParamMap::getU64(const std::string &key, std::uint64_t def) const
{
    auto it = entries_.find(key);
    if (it == entries_.end())
        return def;
    consumed_.insert(key);
    const std::string &s = it->second;
    char *end = nullptr;
    const std::uint64_t v = std::strtoull(s.c_str(), &end, 0);
    // strtoull wraps a leading '-' instead of failing.
    if (s.empty() || s[0] == '-' || end == s.c_str() ||
        *end != '\0') {
        fatal("parameter '", key, "': '", s,
              "' is not a non-negative integer");
    }
    return v;
}

unsigned
ParamMap::getUnsigned(const std::string &key, unsigned def) const
{
    return static_cast<unsigned>(getU64(key, def));
}

double
ParamMap::getDouble(const std::string &key, double def) const
{
    auto it = entries_.find(key);
    if (it == entries_.end())
        return def;
    consumed_.insert(key);
    const std::string &s = it->second;
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str() || *end != '\0') {
        fatal("parameter '", key, "': '", s, "' is not a number");
    }
    return v;
}

bool
ParamMap::getBool(const std::string &key, bool def) const
{
    auto it = entries_.find(key);
    if (it == entries_.end())
        return def;
    consumed_.insert(key);
    const std::string &s = it->second;
    if (s == "1" || s == "true" || s == "on" || s == "yes")
        return true;
    if (s == "0" || s == "false" || s == "off" || s == "no")
        return false;
    fatal("parameter '", key, "': '", s, "' is not a boolean");
}

std::vector<std::string>
ParamMap::unconsumedKeys() const
{
    std::vector<std::string> keys;
    for (const auto &[key, value] : entries_) {
        if (!consumed_.count(key))
            keys.push_back(key);
    }
    return keys;
}

std::string
ParamMap::toString() const
{
    std::string out;
    for (const auto &[key, value] : entries_) {
        if (!out.empty())
            out += ' ';
        out += key + '=' + value;
    }
    return out;
}

} // namespace gpulat
