#include "api/stat_sink.hh"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "api/parallel_runner.hh"
#include "common/log.hh"
#include "common/table.hh"

namespace gpulat {

double
ExperimentRecord::metric(const std::string &name) const
{
    auto it = metrics.find(name);
    return it == metrics.end() ? 0.0 : it->second;
}

namespace {

std::string
joinPairs(const std::map<std::string, std::string> &map,
          const char *sep)
{
    std::string out;
    for (const auto &[k, v] : map) {
        if (!out.empty())
            out += sep;
        out += k + '=' + v;
    }
    return out;
}

/** JSON number: finite doubles only (NaN/inf have no literal). */
std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    std::ostringstream oss;
    oss.precision(12);
    oss << v;
    return oss.str();
}

/**
 * A metric cell: missing and non-finite values render as the
 * sink's null marker instead of a locale-dependent "nan"/"inf"
 * token (or a fabricated 0.0) — the cell-level analogue of
 * jsonNumber's null.
 */
std::string
metricCell(const ExperimentRecord &rec, const std::string &name,
           int precision, const char *null_marker)
{
    const auto it = rec.metrics.find(name);
    if (it == rec.metrics.end() || !std::isfinite(it->second))
        return null_marker;
    return formatDouble(it->second, precision);
}

} // namespace

std::string
jsonQuote(const std::string &s)
{
    std::string out = "\"";
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

// ------------------------------------------------------- TextTableSink

void
TextTableSink::write(const ExperimentRecord &record)
{
    records_.push_back(record);
}

void
TextTableSink::finish()
{
    std::vector<std::string> header{
        "gpu", "workload", "params", "overrides", "correct",
        "cycles", "instrs", "IPC", "mean load lat", "exposed %"};
    for (const std::string &m : extraMetrics_)
        header.push_back(m);
    TextTable table(std::move(header));
    for (const ExperimentRecord &r : records_) {
        std::vector<std::string> row{
            r.gpu, r.workload, joinPairs(r.params, " "),
            joinPairs(r.overrides, " "),
            r.correct ? "yes" : "NO",
            std::to_string(r.cycles),
            std::to_string(r.instructions),
            metricCell(r, "ipc", 2, "-"),
            metricCell(r, "mean_load_latency", 1, "-"),
            metricCell(r, "exposed_pct", 1, "-")};
        for (const std::string &m : extraMetrics_)
            row.push_back(metricCell(r, m, 1, "-"));
        table.addRow(std::move(row));
    }
    table.print(os_);
}

// ------------------------------------------------------ FileBackedSink

FileBackedSink::FileBackedSink(const std::string &path)
    : owned_(std::make_unique<std::ofstream>(path)), os_(*owned_)
{
    if (!os_)
        fatal("cannot open '", path, "' for writing");
}

// ------------------------------------------------------------ JsonSink

void
JsonSink::write(const ExperimentRecord &record)
{
    os_ << (first_ ? "{\n  \"schema\": \"gpulat.run.v1\",\n"
                     "  \"records\": [\n"
                   : ",\n");
    first_ = false;

    os_ << "    {\n      \"gpu\": " << jsonQuote(record.gpu)
        << ",\n      \"workload\": " << jsonQuote(record.workload)
        << ",\n      \"params\": {";
    bool first = true;
    for (const auto &[k, v] : record.params) {
        os_ << (first ? "" : ", ") << jsonQuote(k) << ": "
            << jsonQuote(v);
        first = false;
    }
    os_ << "},\n      \"overrides\": {";
    first = true;
    for (const auto &[k, v] : record.overrides) {
        os_ << (first ? "" : ", ") << jsonQuote(k) << ": "
            << jsonQuote(v);
        first = false;
    }
    os_ << "},\n      \"correct\": "
        << (record.correct ? "true" : "false")
        << ",\n      \"analysis_reason\": "
        << jsonQuote(record.analysisReason)
        << ",\n      \"cycles\": " << record.cycles
        << ",\n      \"instructions\": " << record.instructions
        << ",\n      \"launches\": " << record.launches
        << ",\n      \"metrics\": {";
    first = true;
    for (const auto &[k, v] : record.metrics) {
        os_ << (first ? "" : ", ") << jsonQuote(k) << ": "
            << jsonNumber(v);
        first = false;
    }
    os_ << "},\n      \"counters\": {";
    first = true;
    for (const auto &[k, v] : record.counters) {
        os_ << (first ? "" : ", ") << jsonQuote(k) << ": " << v;
        first = false;
    }
    os_ << "}\n    }";
}

void
JsonSink::finish()
{
    if (first_) {
        // No records: still emit a schema-complete document.
        os_ << "{\n  \"schema\": \"gpulat.run.v1\",\n"
               "  \"records\": [\n";
    }
    os_ << "\n  ]\n}\n";
}

// ------------------------------------------------------------- CsvSink

void
CsvSink::write(const ExperimentRecord &record)
{
    if (!wroteHeader_) {
        // New columns append at the end: downstream consumers (and
        // the API tests) index the earlier columns positionally.
        os_ << "gpu,workload,params,overrides,correct,cycles,"
               "instructions,launches,ipc,requests,"
               "mean_load_latency,exposed_pct,l1_hit_pct,"
               "dram_row_hit_pct,mean_dram_queue_wait,"
               "analysis_sm_parallel,analysis_reason\n";
        wroteHeader_ = true;
    }
    // RFC-4180: free-text fields are quoted when they carry the
    // delimiter, quotes or line breaks; numeric cells are emitted
    // by metricCell/formatDouble and never need quoting.
    os_ << csvField(record.gpu) << ',' << csvField(record.workload)
        << ',' << csvField(joinPairs(record.params, ";")) << ','
        << csvField(joinPairs(record.overrides, ";")) << ','
        << (record.correct ? "true" : "false") << ','
        << record.cycles << ',' << record.instructions << ','
        << record.launches << ','
        << metricCell(record, "ipc", 4, "") << ','
        << metricCell(record, "requests", 0, "") << ','
        << metricCell(record, "mean_load_latency", 2, "") << ','
        << metricCell(record, "exposed_pct", 2, "") << ','
        << metricCell(record, "l1_hit_pct", 2, "") << ','
        << metricCell(record, "dram_row_hit_pct", 2, "") << ','
        << metricCell(record, "mean_dram_queue_wait", 2, "") << ','
        << metricCell(record, "analysis.sm_parallel", 0, "") << ','
        << csvField(record.analysisReason) << '\n';
}

// ----------------------------------------------------------- MultiSink

void
MultiSink::add(std::unique_ptr<StatSink> sink)
{
    sinks_.push_back(std::move(sink));
}

void
MultiSink::write(const ExperimentRecord &record)
{
    for (auto &sink : sinks_)
        sink->write(record);
}

void
MultiSink::finish()
{
    for (auto &sink : sinks_)
        sink->finish();
}

void
addOutputSinks(MultiSink &sinks, int argc,
               const char *const *argv, std::size_t *jobs)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--jobs" && jobs) {
            if (i + 1 >= argc)
                fatal("'--jobs' needs a value");
            *jobs = parseJobs(argv[++i]);
            continue;
        }
        if (arg != "--json" && arg != "--csv")
            fatal("unknown bench argument '", arg,
                  "' (benches take --json FILE / --csv FILE",
                  jobs ? " / --jobs N)" : ")");
        if (i + 1 >= argc)
            fatal("'", arg, "' needs a file path");
        const std::string path = argv[++i];
        if (arg == "--json")
            sinks.add(std::make_unique<JsonSink>(path));
        else
            sinks.add(std::make_unique<CsvSink>(path));
    }
}

} // namespace gpulat
