/**
 * @file
 * Dotted-path configuration overrides: apply `sm.warpSlots=16` /
 * `dramClock=1/2` style assignments on top of a named GpuConfig
 * preset, so any ablation point is expressible as preset +
 * overrides without a hand-written bench. Every overridable key is
 * also readable, which gives tests a parse/format round trip and
 * the CLI a self-describing `gpulat list keys`.
 */

#ifndef GPULAT_API_CONFIG_OVERRIDE_HH
#define GPULAT_API_CONFIG_OVERRIDE_HH

#include <functional>
#include <string>
#include <vector>

#include "gpu/gpu_config.hh"

namespace gpulat {

/** One overridable dotted-path key of GpuConfig. */
struct ConfigKey
{
    std::string path;     ///< e.g. "partition.dram.timing.tRCD"
    const char *type;     ///< human-readable value type
    std::function<void(GpuConfig &, const std::string &)> set;
    std::function<std::string(const GpuConfig &)> get;
};

/** All overridable keys, sorted by path. */
const std::vector<ConfigKey> &configKeys();

/** Apply one `path=value` assignment; fatal() on an unknown path
 *  or malformed value. */
void applyOverride(GpuConfig &cfg, const std::string &assignment);

/** Apply a list of `path=value` assignments in order. */
void applyOverrides(GpuConfig &cfg,
                    const std::vector<std::string> &assignments);

/** Current value of @p path formatted the way applyOverride parses
 *  it; fatal() on an unknown path. */
std::string readOverride(const GpuConfig &cfg,
                         const std::string &path);

/** @name Value codecs (exposed for tests) @{ */
ClockRatio parseClockRatio(const std::string &text);
std::string formatClockRatio(ClockRatio ratio);
/** @} */

} // namespace gpulat

#endif // GPULAT_API_CONFIG_OVERRIDE_HH
