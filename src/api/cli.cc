#include "api/cli.hh"

#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "api/config_override.hh"
#include "api/experiment.hh"
#include "api/parallel_runner.hh"
#include "api/workload_registry.hh"
#include "common/log.hh"
#include "common/table.hh"
#include "latency/breakdown.hh"
#include "latency/exposure.hh"
#include "latency/summary.hh"

namespace gpulat {

namespace {

int
usage(std::ostream &err)
{
    err << "usage: gpulat <command> [options]\n"
           "\n"
           "commands:\n"
           "  list [workloads|gpus|keys]   what can be run/overridden\n"
           "  run    run one experiment\n"
           "  sweep  run a sweep (comma-separated values expand to\n"
           "         the cartesian product)\n"
           "  analyze  run the SM-parallel footprint analysis for a\n"
           "           workload (or a --set sweep of it) and print\n"
           "           each launch verdict, reason chain and\n"
           "           per-access footprints; exits nonzero when any\n"
           "           analysis diverges or any cell crashes\n"
           "\n"
           "run/sweep options:\n"
           "  --gpu NAME         config preset (default gf100-sim)\n"
           "  --workload NAME    registered workload (or the first\n"
           "                     bare argument: `gpulat run vecadd`)\n"
           "  key=value          workload parameter (positional)\n"
           "  --set path=value   config override (repeatable)\n"
           "  --scale S          shrink workload defaults, (0,1]\n"
           "  --json FILE|-      write JSON records\n"
           "  --csv FILE|-       write CSV records\n"
           "  --no-table         suppress the text table\n"
           "  --jobs N           run up to N experiments "
           "concurrently (default 1;\n"
           "                     0 = hardware concurrency; output "
           "is byte-identical\n"
           "                     to --jobs 1, committed in sweep "
           "order)\n"
           "  --tick-jobs N      worker threads ticking partition "
           "and SM groups\n"
           "                     *inside* each simulation (default "
           "1 = serial; 0 = hardware\n"
           "                     concurrency; output is "
           "byte-identical to\n"
           "                     --tick-jobs 1; same as --set "
           "engine.tickJobs=N)\n"
           "  --report KIND      summary|fig1|fig2|all per-run "
           "latency reports\n"
           "  --buckets N        report latency buckets "
           "(default 48)\n"
           "  --stats            dump raw per-unit counters per "
           "run\n"
           "\n"
           "examples:\n"
           "  gpulat run --gpu gf100sim --workload bfs scale=12\n"
           "  gpulat run --workload vecadd n=4096 "
           "--set sm.warpSlots=16 --json out.json\n"
           "  gpulat sweep --workload bfs "
           "--set sm.warpSlots=1,2,4,8,16,32,48\n"
           "  gpulat analyze reduction n=65536\n"
           "  gpulat analyze gemm --set sm.warpSlots=8,16\n";
    return 2;
}

/**
 * The verdict tag shown by `gpulat list`: the analysis outcome of
 * the workload's registry defaults shrunk to a quick probe scale.
 * The verdict is a pure function of (kernel, grid, params), so the
 * probe must actually run the workload to obtain its launches —
 * kept cheap with a small scale (the same mechanism the quick-CI
 * suites use). Workloads whose verdict is shape-dependent report
 * the probe shape's verdict; `gpulat analyze` gives the full story
 * at any size.
 */
const char *
workloadVerdictTag(const std::string &name)
{
    try {
        ExperimentSpec spec;
        spec.workload = name;
        spec.scale = 0.05;
        // The probe only needs the grid to exist; a small device
        // memory keeps 15 back-to-back Gpu constructions out of
        // the listing's critical path (buffer *addresses* shift,
        // footprint disjointness does not).
        spec.overrides = {"deviceMemBytes=" +
                          std::to_string(64 * 1024 * 1024)};
        SmParallelVerdict verdict;
        runExperiment(spec,
                      [&](Gpu &gpu, const ExperimentRecord &) {
                          verdict = gpu.lastVerdict();
                      });
        return verdict.safe ? " [sm-parallel]" : " [serialized]";
    } catch (const FatalError &) {
        return " [analysis-failed]";
    }
}

void
listWorkloads(std::ostream &out)
{
    out << "workloads:\n";
    const WorkloadRegistry &reg = WorkloadRegistry::instance();
    for (const std::string &name : reg.names()) {
        const WorkloadEntry *entry = reg.find(name);
        out << "  " << name
            << (entry->benchSuite ? " [bench-suite]" : " [on-demand]")
            << workloadVerdictTag(name)
            << " — " << entry->description << "\n";
        for (const WorkloadParamSpec &p : entry->params) {
            out << "      " << p.name << " (default "
                << p.defaultValue << "): " << p.help << "\n";
        }
    }
}

void
listGpus(std::ostream &out)
{
    out << "gpu presets:\n";
    for (const std::string &name : configNames()) {
        const GpuConfig cfg = makeConfig(name);
        out << "  " << name << " — " << cfg.numSms << " SMs, "
            << cfg.numPartitions << " partitions, "
            << cfg.sm.warpSlots << " warps/SM\n";
    }
}

void
listKeys(std::ostream &out)
{
    out << "config override keys (--set path=value):\n";
    const GpuConfig defaults = makeConfig("gf100-sim");
    for (const ConfigKey &key : configKeys()) {
        out << "  " << key.path << " (" << key.type
            << ", gf100-sim: " << key.get(defaults) << ")\n";
    }
}

double
parseDouble(const std::string &flag, const std::string &text)
{
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0')
        fatal("'", flag, "' needs a number, got '", text, "'");
    return v;
}

std::size_t
parseSize(const std::string &flag, const std::string &text)
{
    char *end = nullptr;
    const unsigned long long v =
        std::strtoull(text.c_str(), &end, 10);
    if (text.empty() || text[0] == '-' || end == text.c_str() ||
        *end != '\0')
        fatal("'", flag, "' needs a non-negative integer, got '",
              text, "'");
    return static_cast<std::size_t>(v);
}

struct CliOptions
{
    ExperimentSpec spec;
    std::vector<std::string> jsonOuts;
    std::vector<std::string> csvOuts;
    bool table = true;
    std::string report;
    std::size_t buckets = 48;
    bool dumpStats = false;
    std::size_t jobs = 1; ///< 0 = hardware concurrency
};

/** Parse run/sweep arguments; returns false after printing usage. */
bool
parseRunArgs(const std::vector<std::string> &args, CliOptions &opts,
             std::ostream &err)
{
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        auto next = [&]() -> const std::string & {
            if (i + 1 >= args.size())
                fatal("option '", arg, "' needs a value");
            return args[++i];
        };
        if (arg == "--gpu") {
            opts.spec.gpu = next();
        } else if (arg == "--workload") {
            opts.spec.workload = next();
        } else if (arg == "--set") {
            opts.spec.overrides.push_back(next());
        } else if (arg == "--scale") {
            opts.spec.scale = parseDouble(arg, next());
        } else if (arg == "--json") {
            opts.jsonOuts.push_back(next());
        } else if (arg == "--csv") {
            opts.csvOuts.push_back(next());
        } else if (arg == "--no-table") {
            opts.table = false;
        } else if (arg == "--report") {
            opts.report = next();
        } else if (arg == "--buckets") {
            opts.buckets = parseSize(arg, next());
        } else if (arg == "--jobs") {
            opts.jobs = parseJobs(next());
        } else if (arg == "--tick-jobs") {
            // Sugar for the config override (same parse rules as
            // --jobs); collectRecord() keeps it out of the record.
            opts.spec.overrides.push_back(
                "engine.tickJobs=" +
                std::to_string(parseJobs(next(), "--tick-jobs")));
        } else if (arg == "--stats") {
            opts.dumpStats = true;
        } else if (arg.rfind("--", 0) == 0) {
            err << "unknown option '" << arg << "'\n";
            return false;
        } else if (arg.find('=') != std::string::npos) {
            opts.spec.params.push_back(arg);
        } else if (opts.spec.workload.empty()) {
            // First bare token names the workload, so
            // `gpulat run serve.mixed load=2` works without
            // --workload.
            opts.spec.workload = arg;
        } else {
            err << "expected key=value or an option, got '" << arg
                << "'\n";
            return false;
        }
    }
    return true;
}

int
runOrSweep(const CliOptions &opts, bool allow_sweep,
           std::ostream &out, std::ostream &err)
{
    if (opts.spec.workload.empty()) {
        err << "run/sweep needs a workload (--workload NAME or the "
               "first bare argument; see `gpulat list`)\n";
        return 2;
    }

    const auto runs = expandSweep(opts.spec);
    if (!allow_sweep && runs.size() > 1) {
        err << "`gpulat run` runs one experiment; comma-separated "
               "values expand to " << runs.size()
            << " runs — use `gpulat sweep`\n";
        return 2;
    }

    MultiSink sinks;
    bool stdoutTaken = false;
    for (const std::string &path : opts.jsonOuts) {
        if (path == "-") {
            sinks.add(std::make_unique<JsonSink>(out));
            stdoutTaken = true;
        } else {
            sinks.add(std::make_unique<JsonSink>(path));
        }
    }
    for (const std::string &path : opts.csvOuts) {
        if (path == "-") {
            sinks.add(std::make_unique<CsvSink>(out));
            stdoutTaken = true;
        } else {
            sinks.add(std::make_unique<CsvSink>(path));
        }
    }
    // The human-readable table is on by default but must not
    // corrupt machine-readable output already claimed on stdout.
    if (opts.table && !stdoutTaken)
        sinks.add(std::make_unique<TextTableSink>(out));

    const bool wantsReport = !opts.report.empty() || opts.dumpStats;
    if (wantsReport && stdoutTaken) {
        fatal("--report/--stats write to stdout; use a file for "
              "--json/--csv");
    }

    // Reports need the still-live Gpu, so they render on the worker
    // thread into an index-private slot; the commit below prints
    // them in sweep order, keeping --jobs N output byte-identical
    // to --jobs 1.
    std::vector<std::string> reports(runs.size());
    auto inspect = [&](std::size_t index, Gpu &gpu,
                       const ExperimentRecord &rec) {
        if (!wantsReport)
            return;
        std::ostringstream ros;
        ros << "=== " << rec.gpu << " x " << rec.workload;
        for (const auto &[k, v] : rec.overrides)
            ros << " " << k << "=" << v;
        ros << " ===\n";
        const bool all = opts.report == "all";
        if (opts.report == "summary" || all) {
            computeSummary(gpu.latencies().traces()).print(ros);
            ros << "\n";
        }
        if (opts.report == "fig1" || all) {
            computeBreakdown(gpu.latencies().traces(), opts.buckets)
                .printChart(ros);
            ros << "\n";
        }
        if (opts.report == "fig2" || all) {
            computeExposure(gpu.exposure().records(), opts.buckets)
                .printChart(ros);
            ros << "\n";
        }
        if (opts.dumpStats)
            gpu.stats().dump(ros);
        reports[index] = ros.str();
    };

    bool allCorrect = true;
    bool anyFailed = false;
    auto commit = [&](std::size_t index, const JobOutcome &outcome) {
        if (outcome.failed) {
            const ExperimentSpec &spec = runs[index];
            err << "run " << index << " (" << spec.gpu << " x "
                << spec.workload << "): " << outcome.error << "\n";
            anyFailed = true;
            return;
        }
        out << reports[index];
        allCorrect = allCorrect && outcome.record.correct;
        sinks.write(outcome.record);
    };

    const std::size_t jobs = resolveJobs(opts.jobs);
    const auto t0 = std::chrono::steady_clock::now();
    ParallelRunner runner(jobs);
    runner.run(runs, inspect, commit);
    sinks.finish();

    // Wall-clock goes to stderr only: record streams carry no
    // timing, so --jobs 1 and --jobs N stdout/file output diffs
    // clean (the CI determinism gate relies on this).
    if (runs.size() > 1) {
        const std::chrono::duration<double, std::milli> wall =
            std::chrono::steady_clock::now() - t0;
        err << runs.size() << " experiments, " << jobs
            << (jobs == 1 ? " job, " : " jobs, ") << std::fixed
            << std::setprecision(0) << wall.count() << " ms\n";
    }

    if (anyFailed)
        return 2;
    if (!allCorrect)
        err << "FAILED: at least one workload did not verify\n";
    return allCorrect ? 0 : 1;
}

// ------------------------------------------------------------- analyze

/** Footprint bound with the +-inf sentinels spelt out. */
std::string
boundText(std::int64_t v)
{
    if (v == kNegInf)
        return "-inf";
    if (v == kPosInf)
        return "+inf";
    return std::to_string(v);
}

/**
 * One launch verdict, in full: headline, derivation chain, every
 * global access site with its affine form and block/grid byte
 * intervals, and the composable whole-grid footprint.
 */
void
printVerdict(std::ostream &out, const SmParallelVerdict &v)
{
    out << "verdict: "
        << (v.safe ? "sm-parallel" : "serialized") << " — "
        << v.reason << "\n";
    for (const std::string &step : v.reasonChain)
        out << "  | " << step << "\n";
    if (!v.accesses.empty()) {
        out << "global accesses:\n";
        for (const AccessFootprint &a : v.accesses) {
            out << "  pc " << a.pc << "  "
                << (a.atomic ? "atom" : a.store ? "st  " : "ld  ");
            if (a.affine) {
                out << "  " << a.form << "  block0=["
                    << boundText(a.blockLo) << ", "
                    << boundText(a.blockHi) << ")  grid=["
                    << boundText(a.gridLo) << ", "
                    << boundText(a.gridHi) << ")";
            } else {
                out << "  (non-affine)";
            }
            out << "\n";
        }
    }
    if (v.footprintKnown) {
        out << "grid footprint (" << v.footprint.size()
            << " range(s), " << (v.hasStore ? "has stores" : "loads only")
            << (v.atomicsForwarded
                    ? ", atomics partition-forwarded"
                    : "")
            << "):\n";
        for (const FootprintRange &r : v.footprint) {
            out << "  [" << boundText(r.lo) << ", "
                << boundText(r.hi) << ") "
                << (r.atomic ? "atom" : r.store ? "store" : "load")
                << "\n";
        }
    } else {
        out << "grid footprint: unknown\n";
    }
}

/**
 * `gpulat analyze`: run each expanded cell (the verdict is a pure
 * function of the kernel and launch shape, but obtaining those
 * requires executing the workload — e.g. bfs launches until its
 * frontier drains) and print the last launch's verdict per cell.
 * Exit 2 when a cell crashes, 1 when any analysis failed to
 * converge (its verdict is "unknown" rather than a sound
 * serialized/parallel call), else 0.
 */
int
runAnalyze(const CliOptions &opts, std::ostream &out,
           std::ostream &err)
{
    if (opts.spec.workload.empty()) {
        err << "analyze needs a workload (--workload NAME or the "
               "first bare argument; see `gpulat list`)\n";
        return 2;
    }

    const auto runs = expandSweep(opts.spec);
    std::vector<SmParallelVerdict> verdicts(runs.size());
    std::vector<unsigned> launchCounts(runs.size(), 0);
    auto inspect = [&](std::size_t index, Gpu &gpu,
                       const ExperimentRecord &rec) {
        verdicts[index] = gpu.lastVerdict();
        launchCounts[index] = rec.launches;
    };

    bool anyFailed = false;
    bool anyUnknown = false;
    auto commit = [&](std::size_t index, const JobOutcome &outcome) {
        const ExperimentSpec &spec = runs[index];
        out << "=== " << spec.gpu << " x " << spec.workload;
        for (const std::string &p : spec.params)
            out << " " << p;
        for (const std::string &o : spec.overrides) {
            // engine.tickJobs is an execution knob, filtered from
            // record overrides for the same reason: analyze output
            // must be identical across --tick-jobs values.
            if (o.rfind("engine.tickJobs=", 0) == 0)
                continue;
            out << " " << o;
        }
        out << " ===\n";
        if (outcome.failed) {
            out << "verdict: crash — " << outcome.error << "\n";
            anyFailed = true;
            return;
        }
        if (launchCounts[index] > 1) {
            out << "(" << launchCounts[index]
                << " launches; verdict of the last)\n";
        }
        printVerdict(out, verdicts[index]);
        // The one verdict that is neither "safe" nor a sound
        // serialization argument: the fixpoint gave up, so the
        // footprint story is unknown (reason string is part of the
        // stable verdict vocabulary, see kernel_analysis.cc).
        if (verdicts[index].reason == "fixpoint did not converge")
            anyUnknown = true;
    };

    ParallelRunner runner(resolveJobs(opts.jobs));
    runner.run(runs, inspect, commit);
    if (anyFailed)
        return 2;
    return anyUnknown ? 1 : 0;
}

} // namespace

int
runCli(int argc, const char *const *argv, std::ostream &out,
       std::ostream &err)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty())
        return usage(err);

    const std::string command = args.front();
    args.erase(args.begin());

    try {
        if (command == "list") {
            const std::string what = args.empty() ? "" : args.front();
            if (what.empty() || what == "workloads")
                listWorkloads(out);
            if (what.empty() || what == "gpus")
                listGpus(out);
            if (what.empty() || what == "keys")
                listKeys(out);
            if (!what.empty() && what != "workloads" &&
                what != "gpus" && what != "keys") {
                err << "unknown list section '" << what
                    << "' (workloads|gpus|keys)\n";
                return 2;
            }
            return 0;
        }
        if (command == "run" || command == "sweep") {
            CliOptions opts;
            if (!parseRunArgs(args, opts, err))
                return usage(err);
            return runOrSweep(opts, command == "sweep", out, err);
        }
        if (command == "analyze") {
            CliOptions opts;
            if (!parseRunArgs(args, opts, err))
                return usage(err);
            return runAnalyze(opts, out, err);
        }
        if (command == "--help" || command == "-h" ||
            command == "help") {
            usage(out);
            return 0;
        }
        err << "unknown command '" << command << "'\n";
        return usage(err);
    } catch (const FatalError &e) {
        err << e.what() << "\n";
        return 2;
    }
}

} // namespace gpulat
