#include "api/config_override.hh"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <numeric>
#include <type_traits>

#include "api/param_map.hh"
#include "common/log.hh"

namespace gpulat {

ClockRatio
parseClockRatio(const std::string &text)
{
    // Accept "M/D", "M:D" or a bare "M" (meaning M/1).
    auto sep = text.find('/');
    if (sep == std::string::npos)
        sep = text.find(':');
    const std::string mul_s =
        sep == std::string::npos ? text : text.substr(0, sep);
    const std::string div_s =
        sep == std::string::npos ? "1" : text.substr(sep + 1);
    // strtoul wraps a leading '-' instead of failing.
    char *end = nullptr;
    const unsigned long mul = std::strtoul(mul_s.c_str(), &end, 10);
    const bool mul_ok = !mul_s.empty() && mul_s[0] != '-' &&
        end != mul_s.c_str() && *end == '\0';
    const unsigned long div = std::strtoul(div_s.c_str(), &end, 10);
    const bool div_ok = !div_s.empty() && div_s[0] != '-' &&
        end != div_s.c_str() && *end == '\0';
    if (!mul_ok || !div_ok || mul == 0 || div == 0) {
        fatal("'", text, "' is not a clock ratio (expected M/D, ",
              "M:D or M with M,D > 0)");
    }
    // gcd-normalize: "2/4" means the same frequency as "1/2", so it
    // must format and round-trip identically (and pass the same
    // range validation) — the parsed ratio is canonical.
    const unsigned long g = std::gcd(mul, div);
    return ClockRatio{static_cast<unsigned>(mul / g),
                      static_cast<unsigned>(div / g)};
}

std::string
formatClockRatio(ClockRatio ratio)
{
    return std::to_string(ratio.mul) + "/" + std::to_string(ratio.div);
}

namespace {

std::uint64_t
parseU64(const std::string &path, const std::string &text)
{
    char *end = nullptr;
    const std::uint64_t v = std::strtoull(text.c_str(), &end, 0);
    // strtoull wraps a leading '-' instead of failing.
    if (text.empty() || text[0] == '-' || end == text.c_str() ||
        *end != '\0')
        fatal(path, ": '", text, "' is not a non-negative integer");
    return v;
}

template <typename T>
void
parseValue(const std::string &path, const std::string &text, T &dst)
{
    if constexpr (std::is_same_v<T, bool>) {
        if (text == "1" || text == "true" || text == "on") {
            dst = true;
        } else if (text == "0" || text == "false" || text == "off") {
            dst = false;
        } else {
            fatal(path, ": '", text, "' is not a boolean");
        }
    } else if constexpr (std::is_same_v<T, std::string>) {
        dst = text;
    } else if constexpr (std::is_same_v<T, ClockRatio>) {
        dst = parseClockRatio(text);
    } else if constexpr (std::is_same_v<T, IdleFastForward>) {
        // Legacy boolean spellings keep pre-enum sweeps working:
        // "on"/true was the whole-pipeline skip, now called full.
        if (text == "off" || text == "0" || text == "false") {
            dst = IdleFastForward::Off;
        } else if (text == "full" || text == "on" || text == "1" ||
                   text == "true") {
            dst = IdleFastForward::Full;
        } else if (text == "perDomain" || text == "perdomain" ||
                   text == "per-domain") {
            dst = IdleFastForward::PerDomain;
        } else {
            fatal(path, ": '", text, "' is not off|full|perDomain");
        }
    } else if constexpr (std::is_same_v<T, SchedPolicy>) {
        if (text == "lrr") dst = SchedPolicy::LRR;
        else if (text == "gto") dst = SchedPolicy::GTO;
        else fatal(path, ": '", text, "' is not lrr|gto");
    } else if constexpr (std::is_same_v<T, DramSchedPolicy>) {
        if (text == "fcfs") dst = DramSchedPolicy::FCFS;
        else if (text == "frfcfs") dst = DramSchedPolicy::FRFCFS;
        else fatal(path, ": '", text, "' is not fcfs|frfcfs");
    } else if constexpr (std::is_same_v<T, DramModel>) {
        if (text == "simple") dst = DramModel::Simple;
        else if (text == "ddr") dst = DramModel::Ddr;
        else fatal(path, ": '", text, "' is not simple|ddr");
    } else if constexpr (std::is_same_v<T, DramAddrMap>) {
        if (text == "row") dst = DramAddrMap::Row;
        else if (text == "bg") dst = DramAddrMap::BankGroup;
        else if (text == "xor") dst = DramAddrMap::Xor;
        else fatal(path, ": '", text, "' is not row|bg|xor");
    } else if constexpr (std::is_same_v<T, DramPagePolicy>) {
        if (text == "open") dst = DramPagePolicy::Open;
        else if (text == "closed") dst = DramPagePolicy::Closed;
        else fatal(path, ": '", text, "' is not open|closed");
    } else if constexpr (std::is_same_v<T, WritePolicy>) {
        if (text == "writethrough") dst = WritePolicy::WriteThrough;
        else if (text == "writeback") dst = WritePolicy::WriteBack;
        else fatal(path, ": '", text,
                   "' is not writethrough|writeback");
    } else if constexpr (std::is_same_v<T, ReplPolicy>) {
        if (text == "lru") dst = ReplPolicy::LRU;
        else if (text == "fifo") dst = ReplPolicy::FIFO;
        else fatal(path, ": '", text, "' is not lru|fifo");
    } else if constexpr (std::is_same_v<T, ServePolicy>) {
        if (text == "fifo") dst = ServePolicy::Fifo;
        else if (text == "rr") dst = ServePolicy::Rr;
        else if (text == "sjf-est") dst = ServePolicy::SjfEst;
        else if (text == "fair-share") dst = ServePolicy::FairShare;
        else fatal(path, ": '", text,
                   "' is not fifo|rr|sjf-est|fair-share");
    } else if constexpr (std::is_same_v<T, ServePartition>) {
        if (text == "static") dst = ServePartition::Static;
        else if (text == "dynamic") dst = ServePartition::Dynamic;
        else fatal(path, ": '", text, "' is not static|dynamic");
    } else {
        static_assert(std::is_unsigned_v<T>,
                      "unsupported override type");
        const std::uint64_t v = parseU64(path, text);
        if (v > std::numeric_limits<T>::max())
            fatal(path, ": ", v, " out of range");
        dst = static_cast<T>(v);
    }
}

template <typename T>
std::string
formatValue(const T &v)
{
    if constexpr (std::is_same_v<T, bool>) {
        return v ? "true" : "false";
    } else if constexpr (std::is_same_v<T, std::string>) {
        return v;
    } else if constexpr (std::is_same_v<T, ClockRatio>) {
        return formatClockRatio(v);
    } else if constexpr (std::is_same_v<T, IdleFastForward>) {
        switch (v) {
          case IdleFastForward::Off: return "off";
          case IdleFastForward::Full: return "full";
          default: return "perDomain";
        }
    } else if constexpr (std::is_same_v<T, SchedPolicy>) {
        return v == SchedPolicy::LRR ? "lrr" : "gto";
    } else if constexpr (std::is_same_v<T, DramSchedPolicy>) {
        return v == DramSchedPolicy::FCFS ? "fcfs" : "frfcfs";
    } else if constexpr (std::is_same_v<T, DramModel> ||
                         std::is_same_v<T, DramAddrMap> ||
                         std::is_same_v<T, DramPagePolicy>) {
        return toString(v);
    } else if constexpr (std::is_same_v<T, WritePolicy>) {
        return v == WritePolicy::WriteThrough ? "writethrough"
                                              : "writeback";
    } else if constexpr (std::is_same_v<T, ReplPolicy>) {
        return v == ReplPolicy::LRU ? "lru" : "fifo";
    } else if constexpr (std::is_same_v<T, ServePolicy>) {
        switch (v) {
          case ServePolicy::Fifo: return "fifo";
          case ServePolicy::Rr: return "rr";
          case ServePolicy::SjfEst: return "sjf-est";
          default: return "fair-share";
        }
    } else if constexpr (std::is_same_v<T, ServePartition>) {
        return v == ServePartition::Static ? "static" : "dynamic";
    } else {
        return std::to_string(v);
    }
}

template <typename Ref>
ConfigKey
makeKey(std::string path, const char *type, Ref ref)
{
    ConfigKey key;
    key.path = std::move(path);
    key.type = type;
    key.set = [ref, path = key.path](GpuConfig &cfg,
                                     const std::string &text) {
        parseValue(path, text, ref(cfg));
    };
    key.get = [ref](const GpuConfig &cfg) {
        return formatValue(ref(const_cast<GpuConfig &>(cfg)));
    };
    return key;
}

/** The stringized member expression doubles as the dotted path. */
#define GPULAT_CFG_KEY(member, type)                                      \
    makeKey(#member, type,                                                \
            [](GpuConfig &c) -> auto & { return c.member; })

std::vector<ConfigKey>
buildKeys()
{
    std::vector<ConfigKey> keys = {
        GPULAT_CFG_KEY(name, "string"),
        GPULAT_CFG_KEY(numSms, "uint"),
        GPULAT_CFG_KEY(numPartitions, "uint"),
        GPULAT_CFG_KEY(icntClock, "ratio M/D"),
        GPULAT_CFG_KEY(l2Clock, "ratio M/D"),
        GPULAT_CFG_KEY(dramClock, "ratio M/D"),
        GPULAT_CFG_KEY(idleFastForward, "off|full|perDomain"),
        GPULAT_CFG_KEY(engine.tickJobs, "jobs (0 = hw)"),
        GPULAT_CFG_KEY(engine.smGroupSize, "SMs/group (0 = fused)"),
        GPULAT_CFG_KEY(engine.watchdogStallSteps, "steps (0 = off)"),
        GPULAT_CFG_KEY(icntLatency, "cycles"),
        GPULAT_CFG_KEY(icntInQueue, "uint"),
        GPULAT_CFG_KEY(icntOutQueue, "uint"),
        GPULAT_CFG_KEY(deviceMemBytes, "bytes"),
        GPULAT_CFG_KEY(localBytesPerThread, "bytes"),
        GPULAT_CFG_KEY(seed, "uint"),
        GPULAT_CFG_KEY(serving.policy, "fifo|rr|sjf-est|fair-share"),
        GPULAT_CFG_KEY(serving.partition, "static|dynamic"),
        GPULAT_CFG_KEY(serving.maxConcurrent, "launches"),
        GPULAT_CFG_KEY(serving.smsPerLaunch, "SMs (0 = auto)"),

        GPULAT_CFG_KEY(sm.warpSlots, "uint"),
        GPULAT_CFG_KEY(sm.numSchedulers, "uint"),
        GPULAT_CFG_KEY(sm.schedPolicy, "lrr|gto"),
        GPULAT_CFG_KEY(sm.maxBlocksPerSm, "uint"),
        GPULAT_CFG_KEY(sm.regsPerSm, "uint"),
        GPULAT_CFG_KEY(sm.smemPerSm, "bytes"),
        GPULAT_CFG_KEY(sm.aluLatency, "cycles"),
        GPULAT_CFG_KEY(sm.fpLatency, "cycles"),
        GPULAT_CFG_KEY(sm.smemLatency, "cycles"),
        GPULAT_CFG_KEY(sm.smemBanks, "uint"),
        GPULAT_CFG_KEY(sm.smemConflictPenalty, "cycles"),
        GPULAT_CFG_KEY(sm.lsuQueueSize, "uint"),
        GPULAT_CFG_KEY(sm.smBaseLatency, "cycles"),
        GPULAT_CFG_KEY(sm.lineBytes, "bytes"),
        GPULAT_CFG_KEY(sm.l1Enabled, "bool"),
        GPULAT_CFG_KEY(sm.l1CachesGlobal, "bool"),
        GPULAT_CFG_KEY(sm.l1CachesLocal, "bool"),
        GPULAT_CFG_KEY(sm.l1HitLatency, "cycles"),
        GPULAT_CFG_KEY(sm.l1MissLatency, "cycles"),
        GPULAT_CFG_KEY(sm.l1MshrEntries, "uint"),
        GPULAT_CFG_KEY(sm.l1MshrMaxMerge, "uint"),
        GPULAT_CFG_KEY(sm.l1MissQueueSize, "uint"),
        GPULAT_CFG_KEY(sm.l1Cache.capacityBytes, "bytes"),
        GPULAT_CFG_KEY(sm.l1Cache.lineBytes, "bytes"),
        GPULAT_CFG_KEY(sm.l1Cache.ways, "uint"),
        GPULAT_CFG_KEY(sm.l1Cache.repl, "lru|fifo"),
        GPULAT_CFG_KEY(sm.l1Cache.write, "writethrough|writeback"),

        GPULAT_CFG_KEY(partition.lineBytes, "bytes"),
        GPULAT_CFG_KEY(partition.ropQueueSize, "uint"),
        GPULAT_CFG_KEY(partition.ropLatency, "cycles"),
        GPULAT_CFG_KEY(partition.l2Enabled, "bool"),
        GPULAT_CFG_KEY(partition.l2QueueSize, "uint"),
        GPULAT_CFG_KEY(partition.l2QueueLatency, "cycles"),
        GPULAT_CFG_KEY(partition.l2HitLatency, "cycles"),
        GPULAT_CFG_KEY(partition.l2MissLatency, "cycles"),
        GPULAT_CFG_KEY(partition.l2MshrEntries, "uint"),
        GPULAT_CFG_KEY(partition.l2MshrMaxMerge, "uint"),
        GPULAT_CFG_KEY(partition.l2Cache.capacityBytes, "bytes"),
        GPULAT_CFG_KEY(partition.l2Cache.lineBytes, "bytes"),
        GPULAT_CFG_KEY(partition.l2Cache.ways, "uint"),
        GPULAT_CFG_KEY(partition.l2Cache.repl, "lru|fifo"),
        GPULAT_CFG_KEY(partition.l2Cache.write,
                       "writethrough|writeback"),
        GPULAT_CFG_KEY(partition.dramQueueSize, "uint"),
        GPULAT_CFG_KEY(partition.sched, "fcfs|frfcfs"),
        GPULAT_CFG_KEY(partition.dramStarvationLimit, "cycles"),
        GPULAT_CFG_KEY(partition.dramCmdInterval, "cycles"),
        GPULAT_CFG_KEY(partition.returnQueueSize, "uint"),
        GPULAT_CFG_KEY(partition.returnQueueLatency, "cycles"),
        GPULAT_CFG_KEY(partition.dram.banks, "uint"),
        GPULAT_CFG_KEY(partition.dram.rowBytes, "bytes"),
        GPULAT_CFG_KEY(partition.dram.timing.tRCD, "cycles"),
        GPULAT_CFG_KEY(partition.dram.timing.tRP, "cycles"),
        GPULAT_CFG_KEY(partition.dram.timing.tCAS, "cycles"),
        GPULAT_CFG_KEY(partition.dram.timing.tBurst, "cycles"),
        GPULAT_CFG_KEY(partition.dram.timing.tExtra, "cycles"),

        // Memory-fidelity axes live under a stable `mem.` namespace
        // (sweep specs shouldn't depend on which struct holds the
        // knob; starveLimit also aliases the historical
        // partition.dramStarvationLimit spelling).
        makeKey("mem.dram.model", "simple|ddr",
                [](GpuConfig &c) -> auto & {
                    return c.partition.dram.model;
                }),
        makeKey("mem.dram.map", "row|bg|xor",
                [](GpuConfig &c) -> auto & {
                    return c.partition.dram.map;
                }),
        makeKey("mem.dram.pagePolicy", "open|closed",
                [](GpuConfig &c) -> auto & {
                    return c.partition.dram.page;
                }),
        makeKey("mem.dram.ranks", "uint",
                [](GpuConfig &c) -> auto & {
                    return c.partition.dram.ranks;
                }),
        makeKey("mem.dram.bankGroups", "uint",
                [](GpuConfig &c) -> auto & {
                    return c.partition.dram.bankGroups;
                }),
        makeKey("mem.dram.tRAS", "cycles",
                [](GpuConfig &c) -> auto & {
                    return c.partition.dram.ddr.tRAS;
                }),
        makeKey("mem.dram.tRRDS", "cycles",
                [](GpuConfig &c) -> auto & {
                    return c.partition.dram.ddr.tRRDS;
                }),
        makeKey("mem.dram.tRRDL", "cycles",
                [](GpuConfig &c) -> auto & {
                    return c.partition.dram.ddr.tRRDL;
                }),
        makeKey("mem.dram.tFAW", "cycles",
                [](GpuConfig &c) -> auto & {
                    return c.partition.dram.ddr.tFAW;
                }),
        makeKey("mem.dram.tWTR", "cycles",
                [](GpuConfig &c) -> auto & {
                    return c.partition.dram.ddr.tWTR;
                }),
        makeKey("mem.dram.tRTW", "cycles",
                [](GpuConfig &c) -> auto & {
                    return c.partition.dram.ddr.tRTW;
                }),
        makeKey("mem.dram.tREFI", "cycles (0 = no refresh)",
                [](GpuConfig &c) -> auto & {
                    return c.partition.dram.ddr.tREFI;
                }),
        makeKey("mem.dram.tRFC", "cycles",
                [](GpuConfig &c) -> auto & {
                    return c.partition.dram.ddr.tRFC;
                }),
        makeKey("mem.dram.starveLimit", "cycles",
                [](GpuConfig &c) -> auto & {
                    return c.partition.dramStarvationLimit;
                }),
        makeKey("mem.mshr.banks", "uint",
                [](GpuConfig &c) -> auto & {
                    return c.partition.l2MshrBanks;
                }),
        makeKey("mem.mshr.bankEntries", "uint (0 = entries/banks)",
                [](GpuConfig &c) -> auto & {
                    return c.partition.l2MshrBankEntries;
                }),
        makeKey("mem.mshr.bankMerges", "uint (0 = maxMerge)",
                [](GpuConfig &c) -> auto & {
                    return c.partition.l2MshrBankMerges;
                }),
    };

#undef GPULAT_CFG_KEY

    std::sort(keys.begin(), keys.end(),
              [](const ConfigKey &a, const ConfigKey &b) {
                  return a.path < b.path;
              });
    return keys;
}

const ConfigKey *
findKey(const std::string &path)
{
    for (const ConfigKey &key : configKeys()) {
        if (key.path == path)
            return &key;
    }
    return nullptr;
}

} // namespace

const std::vector<ConfigKey> &
configKeys()
{
    static const std::vector<ConfigKey> keys = buildKeys();
    return keys;
}

void
applyOverride(GpuConfig &cfg, const std::string &assignment)
{
    const auto [path, value] = ParamMap::splitAssignment(assignment);
    const ConfigKey *key = findKey(path);
    if (!key) {
        fatal("unknown config key '", path,
              "' (see `gpulat list keys`)");
    }
    key->set(cfg, value);
}

void
applyOverrides(GpuConfig &cfg,
               const std::vector<std::string> &assignments)
{
    for (const std::string &a : assignments)
        applyOverride(cfg, a);
}

std::string
readOverride(const GpuConfig &cfg, const std::string &path)
{
    const ConfigKey *key = findKey(path);
    if (!key)
        fatal("unknown config key '", path, "'");
    return key->get(cfg);
}

} // namespace gpulat
