#include "api/experiment.hh"

#include <cctype>

#include "api/config_override.hh"
#include "api/workload_registry.hh"
#include "common/log.hh"
#include "latency/breakdown.hh"
#include "latency/exposure.hh"

namespace gpulat {

/** "DRAM(QtoSch)" -> "dram_qtosch": stable metric-key slug. */
std::string
stageMetricSlug(Stage stage)
{
    const std::string name = toString(stage);
    std::string slug;
    for (const char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c))) {
            slug += static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
        } else if (!slug.empty() && slug.back() != '_') {
            slug += '_';
        }
    }
    while (!slug.empty() && slug.back() == '_')
        slug.pop_back();
    return slug;
}

namespace {

/** Merged effective workload parameters: scaled bench defaults
 *  under the user's explicit assignments. */
ParamMap
effectiveParams(const ExperimentSpec &spec)
{
    const WorkloadRegistry &reg = WorkloadRegistry::instance();
    ParamMap params = reg.scaledParams(spec.workload, spec.scale);
    for (const std::string &a : spec.params) {
        auto [key, value] = ParamMap::splitAssignment(a);
        params.set(key, value);
    }
    return params;
}

} // namespace

GpuConfig
buildConfig(const ExperimentSpec &spec)
{
    GpuConfig cfg = makeConfig(spec.gpu);
    applyOverrides(cfg, spec.overrides);
    return cfg;
}

ExperimentRecord
collectRecord(Gpu &gpu, const ExperimentSpec &spec,
              const WorkloadResult &result)
{
    ExperimentRecord rec;
    rec.gpu = gpu.config().name;
    rec.workload = spec.workload;
    for (const std::string &a : spec.params) {
        auto [key, value] = ParamMap::splitAssignment(a);
        rec.params[key] = value;
    }
    for (const std::string &a : spec.overrides) {
        auto [key, value] = ParamMap::splitAssignment(a);
        // engine.tickJobs is a wall-clock execution knob, like the
        // runner's --jobs: it never changes simulated results, so
        // it must not make otherwise-identical records differ (the
        // CI determinism gate byte-diffs output across its
        // values). It is surfaced as rec.tickJobs instead.
        if (key == "engine.tickJobs")
            continue;
        rec.overrides[key] = value;
    }
    rec.tickJobs = gpu.engine().tickJobs();

    rec.correct = result.correct;
    rec.cycles = result.cycles;
    rec.instructions = result.instructions;
    rec.launches = result.launches;

    // Workload-specific headline metrics ride along verbatim (the
    // workload owns their naming; see WorkloadResult::metrics).
    for (const auto &[name, value] : result.metrics)
        rec.metrics[name] = value;

    rec.metrics["ipc"] = result.cycles
        ? static_cast<double>(result.instructions) /
              static_cast<double>(result.cycles)
        : 0.0;

    // SM-parallel safety verdict (kernel_analysis.hh): computed for
    // every launch in every engine mode, invariant across tick-jobs
    // and SM groupings.
    rec.metrics["analysis.sm_parallel"] =
        gpu.lastVerdict().safe ? 1.0 : 0.0;
    rec.analysisReason = gpu.lastVerdict().reason;

    const auto &traces = gpu.latencies().traces();
    rec.metrics["requests"] =
        static_cast<double>(gpu.latencies().count());
    double lat_sum = 0.0;
    for (const auto &t : traces)
        lat_sum += static_cast<double>(t.total());
    rec.metrics["mean_load_latency"] = traces.empty()
        ? 0.0
        : lat_sum / static_cast<double>(traces.size());

    rec.metrics["exposed_pct"] =
        computeExposure(gpu.exposure().records(), 48)
            .overallExposedPct();

    const Breakdown bd = computeBreakdown(traces, 48);
    std::uint64_t stage_total = 0;
    for (const auto v : bd.totalByStage)
        stage_total += v;
    for (std::size_t s = 0; s < kNumStages; ++s) {
        rec.metrics["stage_pct." +
                    stageMetricSlug(static_cast<Stage>(s))] =
            stage_total
            ? 100.0 * static_cast<double>(bd.totalByStage[s]) /
                  static_cast<double>(stage_total)
            : 0.0;
    }

    // Aggregate unit counters across SMs/partitions under their
    // unit-relative names ("sm3.l1.hits" counts toward "l1.hits"),
    // reading per-epoch deltas so back-to-back experiments on one
    // Gpu stay separable.
    const StatRegistry &stats = gpu.stats();
    auto unitRelative = [](const std::string &name) {
        for (const char *prefix : {"sm", "part"}) {
            const std::size_t plen = std::string(prefix).size();
            if (name.rfind(prefix, 0) != 0)
                continue;
            std::size_t i = plen;
            while (i < name.size() &&
                   std::isdigit(static_cast<unsigned char>(name[i])))
                ++i;
            if (i > plen && i < name.size() && name[i] == '.')
                return name.substr(i + 1);
        }
        return name;
    };
    for (const auto &[name, counter] : stats.counters()) {
        (void)counter;
        rec.counters[unitRelative(name)] +=
            stats.counterSinceEpoch(name);
    }

    const std::uint64_t l1_hits = rec.counters.count("l1.hits")
        ? rec.counters.at("l1.hits") : 0;
    const std::uint64_t l1_misses = rec.counters.count("l1.misses")
        ? rec.counters.at("l1.misses") : 0;
    rec.metrics["l1_hit_pct"] = l1_hits + l1_misses
        ? 100.0 * static_cast<double>(l1_hits) /
              static_cast<double>(l1_hits + l1_misses)
        : 0.0;

    const std::uint64_t row_hits = rec.counters.count("dram.row_hits")
        ? rec.counters.at("dram.row_hits") : 0;
    std::uint64_t dram_total = row_hits;
    for (const char *k : {"dram.row_misses", "dram.row_closed"})
        dram_total += rec.counters.count(k) ? rec.counters.at(k) : 0;
    rec.metrics["dram_row_hit_pct"] = dram_total
        ? 100.0 * static_cast<double>(row_hits) /
              static_cast<double>(dram_total)
        : 0.0;

    // Memory-fidelity metrics (always present so the record schema
    // is stable across models; they are simply 0 on `simple` runs
    // or when the counters never fired).
    const auto counter_or_zero = [&rec](const char *k) {
        const auto it = rec.counters.find(k);
        return it == rec.counters.end()
            ? std::uint64_t{0} : it->second;
    };
    auto dir_hit_pct = [&](const char *prefix) {
        const std::uint64_t hits =
            counter_or_zero((std::string("dram.") + prefix +
                             "_row_hits").c_str());
        std::uint64_t total = hits;
        for (const char *k : {"_row_misses", "_row_closed"}) {
            total += counter_or_zero(
                (std::string("dram.") + prefix + k).c_str());
        }
        return total ? 100.0 * static_cast<double>(hits) /
                           static_cast<double>(total)
                     : 0.0;
    };
    rec.metrics["dram_rd_row_hit_pct"] = dir_hit_pct("rd");
    rec.metrics["dram_wr_row_hit_pct"] = dir_hit_pct("wr");
    const std::uint64_t row_conflicts =
        counter_or_zero("dram.row_misses");
    rec.metrics["dram_row_conflict_pct"] = dram_total
        ? 100.0 * static_cast<double>(row_conflicts) /
              static_cast<double>(dram_total)
        : 0.0;
    rec.metrics["dram_refresh_stall_cycles"] = static_cast<double>(
        counter_or_zero("dram.refresh_stall_cycles"));
    rec.metrics["mshr_bank_conflicts"] = static_cast<double>(
        counter_or_zero("l2_mshr_bank_conflicts"));

    StatRegistry::ScalarDelta wait;
    for (const auto &[name, scalar] : stats.scalars()) {
        (void)scalar;
        if (name.find(".dram_queue_wait") == std::string::npos)
            continue;
        const auto delta = stats.scalarSinceEpoch(name);
        wait.sum += delta.sum;
        wait.count += delta.count;
    }
    rec.metrics["mean_dram_queue_wait"] = wait.mean();

    // Fast-forward effectiveness: the share of each clock domain's
    // scheduled component ticks the engine provably skipped this
    // epoch (0 with idleFastForward=off; perDomain strictly beats
    // full on latency-bound runs). The raw totals ride along in
    // rec.counters as engine.<domain>.ticks_run/_skipped via the
    // generic counter loop above.
    for (const auto &domain : gpu.engine().domains()) {
        const std::string prefix = "engine." + domain->name();
        auto counter = [&](const char *suffix) -> std::uint64_t {
            const auto it = rec.counters.find(prefix + suffix);
            return it == rec.counters.end() ? 0 : it->second;
        };
        const std::uint64_t run = counter(".ticks_run");
        const std::uint64_t skipped = counter(".ticks_skipped");
        rec.metrics["ff_skip_pct." + domain->name()] = run + skipped
            ? 100.0 * static_cast<double>(skipped) /
                  static_cast<double>(run + skipped)
            : 0.0;
    }

    return rec;
}

ExperimentRecord
runExperiment(
    const ExperimentSpec &spec,
    const std::function<void(Gpu &, const ExperimentRecord &)>
        &inspect)
{
    if (spec.workload.empty())
        fatal("experiment needs a workload (see `gpulat list`)");

    const WorkloadRegistry &reg = WorkloadRegistry::instance();
    auto workload = reg.create(spec.workload, effectiveParams(spec));

    Gpu gpu(buildConfig(spec));
    const WorkloadResult result = workload->run(gpu);

    ExperimentRecord rec = collectRecord(gpu, spec, result);
    // Report the *effective* parameters (scaled defaults merged
    // with the user's), so a record is re-runnable verbatim.
    rec.params.clear();
    const ParamMap effective = effectiveParams(spec);
    for (const auto &[k, v] : effective.entries())
        rec.params[k] = v;

    if (inspect)
        inspect(gpu, rec);
    return rec;
}

std::vector<ExperimentSpec>
expandSweep(const ExperimentSpec &spec)
{
    // Collect the sweep axes: every params/overrides value with a
    // comma-list, in listing order (params first).
    struct Axis
    {
        bool isOverride;
        std::size_t index; ///< into spec.params / spec.overrides
        std::string key;
        std::vector<std::string> values;
    };
    std::vector<Axis> axes;

    auto scan = [&](const std::vector<std::string> &list,
                    bool is_override) {
        for (std::size_t i = 0; i < list.size(); ++i) {
            auto [key, value] = ParamMap::splitAssignment(list[i]);
            Axis axis{is_override, i, key, {}};
            std::size_t pos = 0;
            while (true) {
                const auto comma = value.find(',', pos);
                axis.values.push_back(
                    value.substr(pos, comma - pos));
                if (comma == std::string::npos)
                    break;
                pos = comma + 1;
            }
            if (axis.values.size() > 1)
                axes.push_back(std::move(axis));
        }
    };
    scan(spec.params, false);
    scan(spec.overrides, true);

    if (axes.empty())
        return {spec};

    std::vector<ExperimentSpec> out;
    std::vector<std::size_t> idx(axes.size(), 0);
    while (true) {
        ExperimentSpec one = spec;
        for (std::size_t a = 0; a < axes.size(); ++a) {
            auto &list = axes[a].isOverride ? one.overrides
                                           : one.params;
            list[axes[a].index] =
                axes[a].key + '=' + axes[a].values[idx[a]];
        }
        out.push_back(std::move(one));

        // Odometer: last axis varies fastest.
        std::size_t a = axes.size();
        while (a > 0) {
            --a;
            if (++idx[a] < axes[a].values.size())
                break;
            idx[a] = 0;
            if (a == 0)
                return out;
        }
    }
}

} // namespace gpulat
