/**
 * @file
 * Tiled double-precision GEMM (C = A*B) through shared memory:
 * 16x16 tiles, 256-thread blocks, double-buffered barriers. The
 * compute-dense regular workload — the opposite end of the spectrum
 * from BFS — whose latency the SM hides almost completely.
 */

#ifndef GPULAT_WORKLOADS_GEMM_HH
#define GPULAT_WORKLOADS_GEMM_HH

#include "workloads/workload.hh"

namespace gpulat {

class Gemm : public Workload
{
  public:
    struct Options
    {
        /** Matrix dimension; power of two, multiple of 16. */
        unsigned n = 64;
        std::uint64_t seed = 10;
    };

    explicit Gemm(Options opts) : opts_(opts) {}

    std::string name() const override { return "gemm"; }
    WorkloadResult run(Gpu &gpu) override;

    static Kernel buildKernel();

  private:
    Options opts_;
};

} // namespace gpulat

#endif // GPULAT_WORKLOADS_GEMM_HH
