#include "workloads/compute_stream.hh"

#include <bit>
#include <vector>

#include "common/random.hh"
#include "isa/kernel.hh"

namespace gpulat {

Kernel
ComputeStream::buildKernel(unsigned fma_depth)
{
    // Built programmatically: the FMA chain length is a parameter.
    KernelBuilder b("compute_stream");
    b.s2r(0, SpecialReg::Tid);
    b.s2r(1, SpecialReg::Ctaid);
    b.s2r(2, SpecialReg::Ntid);
    b.imad(0, 1, 2, 0);          // gid
    b.movParam(3, 3);            // n
    b.setp(CmpOp::GE, 0, 0, 3);
    b.pred(0).bra("done");
    b.aluImm(Opcode::SHL, 4, 0, 3);
    b.movParam(5, 0);            // x
    b.alu(Opcode::IADD, 5, 5, 4);
    b.ld(MemSpace::Global, 6, 5);
    b.movParam(7, 2);            // coefficient (double bits)
    for (unsigned i = 0; i < fma_depth; ++i)
        b.ffma(6, 6, 7, 7);      // v = v * c + c (dependent chain)
    b.movParam(8, 1);            // y
    b.alu(Opcode::IADD, 8, 8, 4);
    b.st(MemSpace::Global, 8, 6);
    b.label("done");
    b.exit();
    return b.finalize();
}

WorkloadResult
ComputeStream::run(Gpu &gpu)
{
    const std::uint64_t n = opts_.n;
    Rng rng(opts_.seed);
    std::vector<double> x(n);
    for (auto &v : x)
        v = rng.uniform();

    const Addr d_x = gpu.alloc(n * 8);
    const Addr d_y = gpu.alloc(n * 8);
    gpu.copyToDevice(d_x, x.data(), n * 8);

    const double c = 0.5;
    const unsigned tpb = opts_.threadsPerBlock;
    const auto blocks = static_cast<unsigned>((n + tpb - 1) / tpb);
    const LaunchResult lr = gpu.launch(
        buildKernel(opts_.fmaDepth), blocks, tpb,
        {d_x, d_y, std::bit_cast<RegValue>(c), n});

    std::vector<double> y(n);
    gpu.copyFromDevice(y.data(), d_y, n * 8);

    WorkloadResult result;
    result.cycles = lr.cycles;
    result.instructions = lr.instructions;
    result.launches = 1;
    result.correct = true;
    for (std::uint64_t i = 0; i < n; ++i) {
        double v = x[i];
        for (unsigned k = 0; k < opts_.fmaDepth; ++k)
            v = v * c + c;
        if (y[i] != v) {
            result.correct = false;
            break;
        }
    }
    return result;
}

} // namespace gpulat
