/**
 * @file
 * Matrix transpose in two flavours: naive (uncoalesced writes, one
 * transaction per lane) and tiled through shared memory with a
 * padded tile (fully coalesced, conflict-free). The pair is the
 * classic coalescing ablation for the latency benches.
 */

#ifndef GPULAT_WORKLOADS_TRANSPOSE_HH
#define GPULAT_WORKLOADS_TRANSPOSE_HH

#include "workloads/workload.hh"

namespace gpulat {

class Transpose : public Workload
{
  public:
    struct Options
    {
        /** Matrix is n x n; n must be a power of two, multiple of
         *  32, and <= 1024 (naive kernel uses one row per block). */
        unsigned n = 256;
        bool tiled = false;
        std::uint64_t seed = 6;
    };

    explicit Transpose(Options opts) : opts_(opts) {}

    std::string
    name() const override
    {
        return opts_.tiled ? "transpose_tiled" : "transpose_naive";
    }

    WorkloadResult run(Gpu &gpu) override;

    static Kernel buildNaiveKernel();
    static Kernel buildTiledKernel();

  private:
    Options opts_;
};

} // namespace gpulat

#endif // GPULAT_WORKLOADS_TRANSPOSE_HH
