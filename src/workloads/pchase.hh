/**
 * @file
 * Pointer-chase microbenchmark as a registry workload ("pchase"):
 * one idle-latency measurement (the paper's §II / Table I
 * methodology) addressable from the experiment API and the `gpulat`
 * CLI, so latency ladders are sweep specs like everything else:
 *
 *   gpulat sweep --gpu gf106 --workload pchase \
 *       footprintBytes=16384,65536,262144,4194304 --jobs 0
 *
 * Not part of the bench-suite set (makeAllWorkloads): a microbench
 * probes the machine rather than exercising a kernel pattern.
 */

#ifndef GPULAT_WORKLOADS_PCHASE_HH
#define GPULAT_WORKLOADS_PCHASE_HH

#include "microbench/pchase.hh"
#include "workloads/workload.hh"

namespace gpulat {

class PChase : public Workload
{
  public:
    using Options = PChaseConfig;

    explicit PChase(Options opts) : opts_(opts) {}

    std::string name() const override { return "pchase"; }

    /**
     * Runs one measurement; correct == the final chase pointer
     * landed exactly where the circular chain predicts. Reports
     * "pchase_cycles_per_access", "pchase_timed_cycles" and
     * "pchase_timed_accesses" as workload metrics.
     */
    WorkloadResult run(Gpu &gpu) override;

  private:
    Options opts_;
};

} // namespace gpulat

#endif // GPULAT_WORKLOADS_PCHASE_HH
