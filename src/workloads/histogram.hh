/**
 * @file
 * Histogram with global atomics: every thread atomically increments
 * a bin counter. Exercises the L2 atomic RMW path and its
 * serialization behaviour under bin contention (few bins = hot
 * lines, many bins = spread).
 */

#ifndef GPULAT_WORKLOADS_HISTOGRAM_HH
#define GPULAT_WORKLOADS_HISTOGRAM_HH

#include "workloads/workload.hh"

namespace gpulat {

class AtomicHistogram : public Workload
{
  public:
    struct Options
    {
        std::uint64_t n = 1 << 14;
        /** Power of two. */
        std::uint64_t bins = 256;
        unsigned threadsPerBlock = 128;
        std::uint64_t seed = 9;
    };

    explicit AtomicHistogram(Options opts) : opts_(opts) {}

    std::string name() const override { return "histogram"; }
    WorkloadResult run(Gpu &gpu) override;

    static Kernel buildKernel();

  private:
    Options opts_;
};

} // namespace gpulat

#endif // GPULAT_WORKLOADS_HISTOGRAM_HH
