#include "workloads/stencil.hh"

#include <bit>
#include <vector>

#include "common/random.hh"
#include "isa/assembler.hh"

namespace gpulat {

namespace {

const char *kStencilKernel = R"(
.kernel stencil5
; params: 0=in 1=out 2=quarter(double bits)
; x = tid, y = ctaid, W = ntid, H = nctaid
    s2r   r0, tid
    s2r   r1, ctaid
    s2r   r2, ntid
    s2r   r3, nctaid
    mov   r4, param0
    mov   r5, param1
    imad  r6, r1, r2, r0        ; idx = y*W + x
    shl   r7, r6, 3
    iadd  r8, r4, r7
    ld.global r9, [r8]          ; center (kept verbatim on borders)
    setp.eq p0, r0, 0
    @p0 bra border
    setp.eq p1, r1, 0
    @p1 bra border
    isub  r10, r2, 1
    setp.eq p2, r0, r10
    @p2 bra border
    isub  r11, r3, 1
    setp.eq p3, r1, r11
    @p3 bra border
    ld.global r12, [r8+8]       ; east
    ld.global r13, [r8-8]       ; west
    shl   r14, r2, 3
    iadd  r15, r8, r14
    ld.global r16, [r15]        ; south
    isub  r17, r8, r14
    ld.global r18, [r17]        ; north
    fadd  r19, r12, r13
    fadd  r20, r16, r18
    fadd  r21, r19, r20
    mov   r22, param2
    fmul  r9, r21, r22
border:
    iadd  r23, r5, r7
    st.global [r23], r9
    exit
)";

} // namespace

Kernel
Stencil2D::buildKernel()
{
    return assemble(kStencilKernel);
}

WorkloadResult
Stencil2D::run(Gpu &gpu)
{
    const std::uint64_t w = opts_.width;
    const std::uint64_t h = opts_.height;
    const std::uint64_t n = w * h;

    Rng rng(opts_.seed);
    std::vector<double> grid(n);
    for (auto &v : grid)
        v = static_cast<double>(rng.below(256));

    Addr d_a = gpu.alloc(n * 8);
    Addr d_b = gpu.alloc(n * 8);
    gpu.copyToDevice(d_a, grid.data(), n * 8);

    const RegValue quarter = std::bit_cast<RegValue>(0.25);
    const Kernel kernel = buildKernel();

    WorkloadResult result;
    for (unsigned it = 0; it < opts_.iterations; ++it) {
        const LaunchResult lr = gpu.launch(
            kernel, static_cast<unsigned>(h),
            static_cast<unsigned>(w), {d_a, d_b, quarter});
        result.cycles += lr.cycles;
        result.instructions += lr.instructions;
        ++result.launches;
        std::swap(d_a, d_b);
    }

    std::vector<double> out(n);
    gpu.copyFromDevice(out.data(), d_a, n * 8);

    // CPU reference.
    std::vector<double> ref = grid;
    std::vector<double> next(n);
    for (unsigned it = 0; it < opts_.iterations; ++it) {
        for (std::uint64_t y = 0; y < h; ++y) {
            for (std::uint64_t x = 0; x < w; ++x) {
                const std::uint64_t i = y * w + x;
                if (x == 0 || y == 0 || x == w - 1 || y == h - 1) {
                    next[i] = ref[i];
                } else {
                    next[i] = 0.25 * (ref[i - 1] + ref[i + 1] +
                                      ref[i - w] + ref[i + w]);
                }
            }
        }
        std::swap(ref, next);
    }

    result.correct = out == ref;
    return result;
}

} // namespace gpulat
