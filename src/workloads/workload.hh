/**
 * @file
 * Common workload interface: every workload prepares device data,
 * launches its kernel(s) on a caller-provided Gpu and verifies the
 * result against a CPU reference.
 */

#ifndef GPULAT_WORKLOADS_WORKLOAD_HH
#define GPULAT_WORKLOADS_WORKLOAD_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gpu/gpu.hh"

namespace gpulat {

/** Outcome of one workload run. */
struct WorkloadResult
{
    bool correct = false;   ///< matched the CPU reference
    Cycle cycles = 0;       ///< total simulated cycles
    std::uint64_t instructions = 0;
    unsigned launches = 0;  ///< kernel launches performed

    /**
     * Workload-specific headline numbers (e.g. the pointer chase's
     * "pchase_cycles_per_access"), merged verbatim into
     * ExperimentRecord::metrics by collectRecord(). Names must not
     * collide with the standard derived-metric set documented on
     * ExperimentRecord, and must be stable per workload so sweep
     * columns never appear or vanish between cells.
     */
    std::map<std::string, double> metrics;
};

class Workload
{
  public:
    virtual ~Workload() = default;

    /** Short identifier ("bfs", "vecadd", ...). */
    virtual std::string name() const = 0;

    /** Run to completion on @p gpu and verify. */
    virtual WorkloadResult run(Gpu &gpu) = 0;
};

/**
 * Construct the default-sized instance of every workload (used by
 * the multi-workload benches). @p scale in [0,1] shrinks inputs for
 * quick test runs (1.0 = bench-sized). Implemented on top of the
 * WorkloadRegistry (api/workload_registry.hh), which is the
 * preferred way to construct workloads by name.
 */
std::vector<std::unique_ptr<Workload>> makeAllWorkloads(double scale);

} // namespace gpulat

#endif // GPULAT_WORKLOADS_WORKLOAD_HH
