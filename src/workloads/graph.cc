#include "workloads/graph.hh"

#include <algorithm>
#include <deque>

#include "common/log.hh"
#include "common/random.hh"

namespace gpulat {

namespace {

CsrGraph
fromEdgeList(std::uint64_t nodes,
             std::vector<std::pair<std::uint64_t, std::uint64_t>> edges)
{
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

    CsrGraph g;
    g.numNodes = nodes;
    g.rowOffsets.assign(nodes + 1, 0);
    for (const auto &[src, dst] : edges)
        ++g.rowOffsets[src + 1];
    for (std::uint64_t v = 0; v < nodes; ++v)
        g.rowOffsets[v + 1] += g.rowOffsets[v];
    g.columns.reserve(edges.size());
    for (const auto &[src, dst] : edges)
        g.columns.push_back(dst);
    return g;
}

} // namespace

CsrGraph
makeUniformGraph(std::uint64_t nodes, unsigned degree,
                 std::uint64_t seed)
{
    GPULAT_ASSERT(nodes > 1, "graph needs nodes");
    Rng rng(seed);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> edges;
    edges.reserve(nodes * degree);
    for (std::uint64_t v = 0; v < nodes; ++v) {
        for (unsigned d = 0; d < degree; ++d) {
            const std::uint64_t u = rng.below(nodes);
            if (u != v)
                edges.emplace_back(v, u);
        }
    }
    return fromEdgeList(nodes, std::move(edges));
}

CsrGraph
makeRmatGraph(unsigned scale, unsigned edge_factor, std::uint64_t seed)
{
    GPULAT_ASSERT(scale >= 2 && scale < 30, "unreasonable RMAT scale");
    const std::uint64_t nodes = 1ull << scale;
    const std::uint64_t num_edges = nodes * edge_factor;
    Rng rng(seed);

    std::vector<std::pair<std::uint64_t, std::uint64_t>> edges;
    edges.reserve(num_edges);
    for (std::uint64_t e = 0; e < num_edges; ++e) {
        std::uint64_t src = 0;
        std::uint64_t dst = 0;
        for (unsigned bit = 0; bit < scale; ++bit) {
            const double r = rng.uniform();
            // Quadrant probabilities a=0.57, b=0.19, c=0.19, d=0.05.
            if (r < 0.57) {
                // top-left: no bits set
            } else if (r < 0.76) {
                dst |= 1ull << bit;
            } else if (r < 0.95) {
                src |= 1ull << bit;
            } else {
                src |= 1ull << bit;
                dst |= 1ull << bit;
            }
        }
        if (src != dst)
            edges.emplace_back(src, dst);
    }
    return fromEdgeList(nodes, std::move(edges));
}

std::vector<std::int64_t>
cpuBfs(const CsrGraph &graph, std::uint64_t source)
{
    std::vector<std::int64_t> level(graph.numNodes, -1);
    std::deque<std::uint64_t> frontier{source};
    level[source] = 0;
    while (!frontier.empty()) {
        const std::uint64_t v = frontier.front();
        frontier.pop_front();
        for (std::uint64_t e = graph.rowOffsets[v];
             e < graph.rowOffsets[v + 1]; ++e) {
            const std::uint64_t u = graph.columns[e];
            if (level[u] < 0) {
                level[u] = level[v] + 1;
                frontier.push_back(u);
            }
        }
    }
    return level;
}

} // namespace gpulat
