#include "workloads/scan.hh"

#include <bit>
#include <vector>

#include "common/log.hh"
#include "common/random.hh"
#include "isa/assembler.hh"

namespace gpulat {

namespace {

// Hillis-Steele inclusive scan in shared memory, converted to
// exclusive on output; the last thread emits the block total.
const char *kScanKernel = R"(
.kernel scan_block
.shared 8192
; params: 0=in 1=out 2=blockSums 3=n
    s2r   r0, tid
    s2r   r1, ctaid
    s2r   r2, ntid
    imad  r3, r1, r2, r0
    mov   r4, param3
    mov   r5, 0
    setp.lt p0, r3, r4
    @p0 shl r6, r3, 3
    @p0 mov r7, param0
    @p0 iadd r7, r7, r6
    @p0 ld.global r5, [r7]
    shl   r8, r0, 3
    st.shared [r8], r5
    bar
    mov   r9, 1
sloop:
    setp.ge p1, r9, r2
    @p1 bra sdone
    mov   r10, 0
    setp.ge p2, r0, r9
    @p2 isub r11, r0, r9
    @p2 shl r12, r11, 3
    @p2 ld.shared r10, [r12]
    bar
    @p2 ld.shared r13, [r8]
    @p2 iadd r13, r13, r10
    @p2 st.shared [r8], r13
    bar
    shl   r9, r9, 1
    bra   sloop
sdone:
    mov   r14, 0
    setp.ne p3, r0, 0
    @p3 isub r15, r0, 1
    @p3 shl r16, r15, 3
    @p3 ld.shared r14, [r16]
    setp.lt p4, r3, r4
    @p4 mov r17, param1
    @p4 shl r18, r3, 3
    @p4 iadd r17, r17, r18
    @p4 st.global [r17], r14
    isub  r19, r2, 1
    setp.ne p5, r0, r19
    @p5 bra fin
    shl   r20, r19, 3
    ld.shared r21, [r20]
    mov   r22, param2
    shl   r23, r1, 3
    iadd  r24, r22, r23
    st.global [r24], r21
fin:
    exit
)";

const char *kAddOffsetsKernel = R"(
.kernel scan_add_offsets
; params: 0=out 1=scannedBlockSums 2=n
    s2r   r0, tid
    s2r   r1, ctaid
    s2r   r2, ntid
    imad  r3, r1, r2, r0
    mov   r4, param2
    setp.ge p0, r3, r4
    @p0 bra done
    mov   r5, param1
    shl   r6, r1, 3
    iadd  r5, r5, r6
    ld.global r7, [r5]
    mov   r8, param0
    shl   r9, r3, 3
    iadd  r8, r8, r9
    ld.global r10, [r8]
    iadd  r10, r10, r7
    st.global [r8], r10
done:
    exit
)";

} // namespace

Kernel
Scan::buildScanKernel()
{
    return assemble(kScanKernel);
}

Kernel
Scan::buildAddOffsetsKernel()
{
    return assemble(kAddOffsetsKernel);
}

WorkloadResult
Scan::run(Gpu &gpu)
{
    GPULAT_ASSERT(std::has_single_bit(opts_.blockElems),
                  "scan needs a power-of-two block");
    const std::uint64_t n = opts_.n;
    const unsigned tpb = opts_.blockElems;
    const auto blocks = static_cast<unsigned>((n + tpb - 1) / tpb);

    Rng rng(opts_.seed);
    std::vector<std::uint64_t> in(n);
    for (auto &v : in)
        v = rng.below(1000);

    const Addr d_in = gpu.alloc(n * 8);
    const Addr d_out = gpu.alloc(n * 8);
    const Addr d_sums = gpu.alloc(blocks * 8);
    gpu.copyToDevice(d_in, in.data(), n * 8);

    Kernel scan_kernel = buildScanKernel();
    scan_kernel.sharedBytes = tpb * 8;

    WorkloadResult result;
    LaunchResult lr =
        gpu.launch(scan_kernel, blocks, tpb, {d_in, d_out, d_sums, n});
    result.cycles += lr.cycles;
    result.instructions += lr.instructions;
    ++result.launches;

    // Host-side second level: exclusive-scan the block totals (a
    // single small vector; a recursive device pass would add nothing
    // to the latency behaviour under study).
    std::vector<std::uint64_t> sums(blocks);
    gpu.copyFromDevice(sums.data(), d_sums, blocks * 8);
    std::uint64_t running = 0;
    for (auto &v : sums) {
        const std::uint64_t next = running + v;
        v = running;
        running = next;
    }
    gpu.copyToDevice(d_sums, sums.data(), blocks * 8);

    lr = gpu.launch(buildAddOffsetsKernel(), blocks, tpb,
                    {d_out, d_sums, n});
    result.cycles += lr.cycles;
    result.instructions += lr.instructions;
    ++result.launches;

    std::vector<std::uint64_t> out(n);
    gpu.copyFromDevice(out.data(), d_out, n * 8);

    std::uint64_t acc = 0;
    result.correct = true;
    for (std::uint64_t i = 0; i < n; ++i) {
        if (out[i] != acc) {
            result.correct = false;
            break;
        }
        acc += in[i];
    }
    return result;
}

} // namespace gpulat
