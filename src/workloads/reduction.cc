#include "workloads/reduction.hh"

#include <bit>
#include <cmath>
#include <vector>

#include "common/log.hh"
#include "common/random.hh"
#include "isa/assembler.hh"

namespace gpulat {

namespace {

const char *kReduceKernel = R"(
.kernel reduce_block
; params: 0=in 1=partials 2=n
; shared size patched by buildKernel (.shared directive below)
.shared 8192
    s2r   r0, tid
    s2r   r1, ctaid
    s2r   r2, ntid
    imad  r3, r1, r2, r0        ; gid
    mov   r4, param2
    mov   r6, 0                 ; value defaults to +0.0
    setp.lt p0, r3, r4
    @p0 shl r5, r3, 3
    @p0 mov r7, param0
    @p0 iadd r7, r7, r5
    @p0 ld.global r6, [r7]
    shl   r8, r0, 3
    st.shared [r8], r6
    bar
    shr   r9, r2, 1             ; s = ntid / 2
red_loop:
    setp.eq p1, r9, 0
    @p1 bra red_done
    setp.lt p2, r0, r9
    @!p2 bra red_skip
    ld.shared r11, [r8]
    iadd  r12, r0, r9
    shl   r13, r12, 3
    ld.shared r14, [r13]
    fadd  r15, r11, r14
    st.shared [r8], r15
red_skip:
    bar
    shr   r9, r9, 1
    bra   red_loop
red_done:
    setp.ne p3, r0, 0
    @p3 bra done
    ld.shared r16, [r8]
    mov   r17, param1
    shl   r18, r1, 3
    iadd  r19, r17, r18
    st.global [r19], r16
done:
    exit
)";

} // namespace

Kernel
Reduction::buildKernel(unsigned threads_per_block)
{
    GPULAT_ASSERT(std::has_single_bit(threads_per_block),
                  "reduction needs a power-of-two block");
    Kernel k = assemble(kReduceKernel);
    k.sharedBytes = threads_per_block * 8;
    return k;
}

WorkloadResult
Reduction::run(Gpu &gpu)
{
    const std::uint64_t n = opts_.n;
    const unsigned tpb = opts_.threadsPerBlock;
    const auto blocks = static_cast<unsigned>((n + tpb - 1) / tpb);

    Rng rng(opts_.seed);
    std::vector<double> in(n);
    // Small integers so the float sum is exact and order-independent.
    for (auto &v : in)
        v = static_cast<double>(rng.below(1024));

    const Addr d_in = gpu.alloc(n * 8);
    const Addr d_part = gpu.alloc(blocks * 8);
    gpu.copyToDevice(d_in, in.data(), n * 8);

    const LaunchResult lr = gpu.launch(buildKernel(tpb), blocks, tpb,
                                       {d_in, d_part, n});

    std::vector<double> partials(blocks);
    gpu.copyFromDevice(partials.data(), d_part, blocks * 8);
    double sum = 0.0;
    for (double p : partials)
        sum += p;

    double reference = 0.0;
    for (double v : in)
        reference += v;

    WorkloadResult result;
    result.cycles = lr.cycles;
    result.instructions = lr.instructions;
    result.launches = 1;
    result.correct = sum == reference;
    return result;
}

} // namespace gpulat
