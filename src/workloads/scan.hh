/**
 * @file
 * Exclusive prefix sum (scan): per-block Blelloch up/down-sweep in
 * shared memory, then a host-combined pass that adds block offsets —
 * a multi-launch, barrier-heavy workload with log-depth shared
 * traffic.
 */

#ifndef GPULAT_WORKLOADS_SCAN_HH
#define GPULAT_WORKLOADS_SCAN_HH

#include "workloads/workload.hh"

namespace gpulat {

class Scan : public Workload
{
  public:
    struct Options
    {
        std::uint64_t n = 1 << 14;
        /** Elements per block; power of two, == threads per block. */
        unsigned blockElems = 256;
        std::uint64_t seed = 11;
    };

    explicit Scan(Options opts) : opts_(opts) {}

    std::string name() const override { return "scan"; }
    WorkloadResult run(Gpu &gpu) override;

    /** Per-block exclusive scan kernel (also emits block sums). */
    static Kernel buildScanKernel();
    /** Adds the scanned block offsets to every element. */
    static Kernel buildAddOffsetsKernel();

  private:
    Options opts_;
};

} // namespace gpulat

#endif // GPULAT_WORKLOADS_SCAN_HH
