#include "workloads/bfs.hh"

#include "common/log.hh"
#include "isa/assembler.hh"

namespace gpulat {

namespace {

const char *kBfsKernel = R"(
.kernel bfs_level
; params: 0=rowOff 1=cols 2=levels 3=curLevel 4=changedFlag 5=numNodes
    s2r   r0, tid
    s2r   r1, ctaid
    s2r   r2, ntid
    imad  r0, r1, r2, r0        ; v = global thread id
    mov   r3, param5
    setp.ge p0, r0, r3
    @p0 bra done                ; out-of-range threads
    mov   r4, param2            ; levels base
    shl   r5, r0, 3
    iadd  r6, r4, r5
    ld.global r7, [r6]          ; level[v]
    mov   r8, param3            ; current level
    setp.ne p1, r7, r8
    @p1 bra done                ; not on the frontier
    mov   r9, param0
    iadd  r10, r9, r5
    ld.global r11, [r10]        ; edge range begin
    ld.global r12, [r10+8]      ; edge range end
    mov   r13, param1           ; columns base
loop:
    setp.ge p2, r11, r12
    @p2 bra done
    shl   r14, r11, 3
    iadd  r15, r13, r14
    ld.global r16, [r15]        ; u = columns[e]
    shl   r17, r16, 3
    iadd  r18, r4, r17
    ld.global r19, [r18]        ; level[u]
    setp.ne p3, r19, -1
    @p3 bra skip                ; already visited
    iadd  r20, r8, 1
    st.global [r18], r20        ; level[u] = cur + 1
    mov   r21, param4
    mov   r22, 1
    st.global [r21], r22        ; changed = 1
skip:
    iadd  r11, r11, 1
    bra   loop
done:
    exit
)";

} // namespace

Bfs::Bfs(Options opts) : opts_(opts)
{
    graph_ = opts_.kind == GraphKind::Rmat
        ? makeRmatGraph(opts_.scale, opts_.degree, opts_.seed)
        : makeUniformGraph(opts_.nodes, opts_.degree, opts_.seed);
    GPULAT_ASSERT(opts_.source < graph_.numNodes, "bad BFS source");
}

Kernel
Bfs::buildKernel()
{
    return assemble(kBfsKernel);
}

WorkloadResult
Bfs::run(Gpu &gpu)
{
    const Kernel kernel = buildKernel();
    const std::uint64_t n = graph_.numNodes;

    const Addr d_row = gpu.alloc((n + 1) * 8);
    const Addr d_col = gpu.alloc(std::max<std::uint64_t>(
        graph_.numEdges(), 1) * 8);
    const Addr d_lvl = gpu.alloc(n * 8);
    const Addr d_chg = gpu.alloc(8);

    gpu.copyToDevice(d_row, graph_.rowOffsets.data(), (n + 1) * 8);
    if (graph_.numEdges() > 0) {
        gpu.copyToDevice(d_col, graph_.columns.data(),
                         graph_.numEdges() * 8);
    }
    std::vector<std::int64_t> levels(n, -1);
    levels[opts_.source] = 0;
    gpu.copyToDevice(d_lvl, levels.data(), n * 8);

    const unsigned tpb = opts_.threadsPerBlock;
    const auto blocks =
        static_cast<unsigned>((n + tpb - 1) / tpb);

    WorkloadResult result;
    std::int64_t cur = 0;
    while (true) {
        const std::uint64_t zero = 0;
        gpu.copyToDevice(d_chg, &zero, 8);
        const LaunchResult lr = gpu.launch(
            kernel, blocks, tpb,
            {d_row, d_col, d_lvl, static_cast<RegValue>(cur), d_chg,
             n});
        result.cycles += lr.cycles;
        result.instructions += lr.instructions;
        ++result.launches;

        std::uint64_t changed = 0;
        gpu.copyFromDevice(&changed, d_chg, 8);
        if (!changed)
            break;
        ++cur;
        if (cur > static_cast<std::int64_t>(n))
            panic("BFS failed to converge");
    }

    gpu.copyFromDevice(levels.data(), d_lvl, n * 8);
    const auto reference = cpuBfs(graph_, opts_.source);
    result.correct = true;
    for (std::uint64_t v = 0; v < n; ++v) {
        if (levels[v] != reference[v]) {
            result.correct = false;
            break;
        }
    }
    return result;
}

} // namespace gpulat
