#include "workloads/spmv.hh"

#include <vector>

#include "common/random.hh"
#include "isa/assembler.hh"

namespace gpulat {

namespace {

const char *kSpmvKernel = R"(
.kernel spmv_csr_scalar
; params: 0=rowOff 1=cols 2=vals 3=x 4=y 5=numRows
    s2r   r0, tid
    s2r   r1, ctaid
    s2r   r2, ntid
    imad  r0, r1, r2, r0        ; row
    mov   r3, param5
    setp.ge p0, r0, r3
    @p0 bra done
    mov   r4, param0
    shl   r5, r0, 3
    iadd  r6, r4, r5
    ld.global r7, [r6]          ; begin
    ld.global r8, [r6+8]        ; end
    mov   r9, param1            ; cols
    mov   r10, param2           ; vals
    mov   r11, param3           ; x
    mov   r12, 0                ; acc = +0.0
loop:
    setp.ge p1, r7, r8
    @p1 bra store
    shl   r13, r7, 3
    iadd  r14, r9, r13
    ld.global r15, [r14]        ; col
    iadd  r16, r10, r13
    ld.global r17, [r16]        ; val
    shl   r18, r15, 3
    iadd  r19, r11, r18
    ld.global r20, [r19]        ; x[col]  (irregular gather)
    ffma  r12, r17, r20, r12
    iadd  r7, r7, 1
    bra   loop
store:
    mov   r21, param4
    iadd  r22, r21, r5
    st.global [r22], r12
done:
    exit
)";

} // namespace

Kernel
SpMV::buildKernel()
{
    return assemble(kSpmvKernel);
}

WorkloadResult
SpMV::run(Gpu &gpu)
{
    const std::uint64_t rows = opts_.rows;
    const std::uint64_t nnz =
        rows * opts_.nnzPerRow;
    Rng rng(opts_.seed);

    std::vector<std::uint64_t> row_off(rows + 1);
    std::vector<std::uint64_t> cols(nnz);
    std::vector<double> vals(nnz);
    std::vector<double> x(rows);
    for (std::uint64_t r = 0; r <= rows; ++r)
        row_off[r] = r * opts_.nnzPerRow;
    for (std::uint64_t e = 0; e < nnz; ++e) {
        cols[e] = rng.below(rows);
        vals[e] = static_cast<double>(rng.below(16));
    }
    for (auto &v : x)
        v = static_cast<double>(rng.below(16));

    const Addr d_row = gpu.alloc((rows + 1) * 8);
    const Addr d_col = gpu.alloc(nnz * 8);
    const Addr d_val = gpu.alloc(nnz * 8);
    const Addr d_x = gpu.alloc(rows * 8);
    const Addr d_y = gpu.alloc(rows * 8);
    gpu.copyToDevice(d_row, row_off.data(), (rows + 1) * 8);
    gpu.copyToDevice(d_col, cols.data(), nnz * 8);
    gpu.copyToDevice(d_val, vals.data(), nnz * 8);
    gpu.copyToDevice(d_x, x.data(), rows * 8);

    const unsigned tpb = opts_.threadsPerBlock;
    const auto blocks =
        static_cast<unsigned>((rows + tpb - 1) / tpb);
    const LaunchResult lr = gpu.launch(
        buildKernel(), blocks, tpb,
        {d_row, d_col, d_val, d_x, d_y, rows});

    std::vector<double> y(rows);
    gpu.copyFromDevice(y.data(), d_y, rows * 8);

    WorkloadResult result;
    result.cycles = lr.cycles;
    result.instructions = lr.instructions;
    result.launches = 1;
    result.correct = true;
    for (std::uint64_t r = 0; r < rows; ++r) {
        double acc = 0.0;
        for (std::uint64_t e = row_off[r]; e < row_off[r + 1]; ++e)
            acc = vals[e] * x[cols[e]] + acc;
        if (y[r] != acc) {
            result.correct = false;
            break;
        }
    }
    return result;
}

} // namespace gpulat
