/**
 * @file
 * CSR sparse matrix-vector product y = A*x (doubles, scalar-row
 * style): the irregular-gather workload — x is accessed through the
 * column indices, giving data-dependent scattered loads like BFS
 * but with FP compute attached.
 */

#ifndef GPULAT_WORKLOADS_SPMV_HH
#define GPULAT_WORKLOADS_SPMV_HH

#include "workloads/workload.hh"

namespace gpulat {

class SpMV : public Workload
{
  public:
    struct Options
    {
        std::uint64_t rows = 1 << 13;
        unsigned nnzPerRow = 16;
        unsigned threadsPerBlock = 128;
        std::uint64_t seed = 5;
    };

    explicit SpMV(Options opts) : opts_(opts) {}

    std::string name() const override { return "spmv"; }
    WorkloadResult run(Gpu &gpu) override;

    static Kernel buildKernel();

  private:
    Options opts_;
};

} // namespace gpulat

#endif // GPULAT_WORKLOADS_SPMV_HH
