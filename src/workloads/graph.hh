/**
 * @file
 * Synthetic graph generation (CSR) + CPU reference BFS.
 *
 * Substitutes for the paper's benchmark-suite BFS inputs: a uniform
 * random graph and an RMAT power-law graph; both produce the
 * scattered, data-dependent loads that make BFS latency-critical.
 */

#ifndef GPULAT_WORKLOADS_GRAPH_HH
#define GPULAT_WORKLOADS_GRAPH_HH

#include <cstdint>
#include <vector>

namespace gpulat {

/** Compressed-sparse-row directed graph. */
struct CsrGraph
{
    std::uint64_t numNodes = 0;
    /** rowOffsets[v] .. rowOffsets[v+1] index into columns. */
    std::vector<std::uint64_t> rowOffsets;
    std::vector<std::uint64_t> columns;

    std::uint64_t numEdges() const { return columns.size(); }
};

/** Uniform random digraph: each node gets ~degree random targets. */
CsrGraph makeUniformGraph(std::uint64_t nodes, unsigned degree,
                          std::uint64_t seed);

/**
 * RMAT (Kronecker) power-law digraph, the standard skewed-degree
 * generator (a=0.57 b=0.19 c=0.19).
 *
 * @param scale nodes = 2^scale.
 * @param edge_factor edges = nodes * edge_factor.
 */
CsrGraph makeRmatGraph(unsigned scale, unsigned edge_factor,
                       std::uint64_t seed);

/**
 * CPU reference BFS from @p source.
 * @return per-node level; -1 (as uint64 max) for unreachable nodes.
 */
std::vector<std::int64_t> cpuBfs(const CsrGraph &graph,
                                 std::uint64_t source);

} // namespace gpulat

#endif // GPULAT_WORKLOADS_GRAPH_HH
