#include "workloads/transpose.hh"

#include <bit>
#include <vector>

#include "common/log.hh"
#include "common/random.hh"
#include "isa/assembler.hh"

namespace gpulat {

namespace {

const char *kNaiveKernel = R"(
.kernel transpose_naive
; params: 0=in 1=out ; x=tid y=ctaid N=ntid
    s2r   r0, tid
    s2r   r1, ctaid
    s2r   r2, ntid
    imad  r3, r1, r2, r0        ; y*N + x  (coalesced read)
    shl   r4, r3, 3
    mov   r5, param0
    iadd  r6, r5, r4
    ld.global r7, [r6]
    imad  r8, r0, r2, r1        ; x*N + y  (strided write)
    shl   r9, r8, 3
    mov   r10, param1
    iadd  r11, r10, r9
    st.global [r11], r7
    exit
)";

// One warp per 32x32 tile; the tile is padded to 33 words so the
// shared-memory reads along the transposed axis are conflict-free.
const char *kTiledKernel = R"(
.kernel transpose_tiled
.shared 8448
; params: 0=in 1=out 2=N 3=log2(N/32)
    s2r   r0, tid               ; lane 0..31
    s2r   r1, ctaid
    mov   r2, param3
    shr   r3, r1, r2            ; tile row index
    mov   r4, param2            ; N
    shr   r5, r4, 5             ; tiles per row (power of two)
    isub  r6, r5, 1
    and   r7, r1, r6            ; tile column index
    shl   r8, r3, 5             ; ty0
    shl   r9, r7, 5             ; tx0
    mov   r10, param0
    mov   r11, param1
    mov   r12, 0
tload:
    setp.ge p0, r12, 32
    @p0 bra tbar
    iadd  r13, r8, r12          ; ty0 + i
    imul  r14, r13, r4
    iadd  r15, r14, r9
    iadd  r15, r15, r0          ; + lane
    shl   r16, r15, 3
    iadd  r17, r10, r16
    ld.global r18, [r17]        ; coalesced row read
    imul  r19, r12, 33
    iadd  r20, r19, r0
    shl   r21, r20, 3
    st.shared [r21], r18
    iadd  r12, r12, 1
    bra   tload
tbar:
    bar
    mov   r12, 0
tstore:
    setp.ge p1, r12, 32
    @p1 bra tdone
    imul  r22, r0, 33
    iadd  r23, r22, r12
    shl   r24, r23, 3
    ld.shared r25, [r24]        ; transposed, conflict-free
    iadd  r26, r9, r12          ; tx0 + i
    imul  r27, r26, r4
    iadd  r28, r27, r8
    iadd  r28, r28, r0
    shl   r29, r28, 3
    iadd  r30, r11, r29
    st.global [r30], r25        ; coalesced row write
    iadd  r12, r12, 1
    bra   tstore
tdone:
    exit
)";

} // namespace

Kernel
Transpose::buildNaiveKernel()
{
    return assemble(kNaiveKernel);
}

Kernel
Transpose::buildTiledKernel()
{
    return assemble(kTiledKernel);
}

WorkloadResult
Transpose::run(Gpu &gpu)
{
    const unsigned n = opts_.n;
    GPULAT_ASSERT(n >= 32 && n <= 1024 && std::has_single_bit(n),
                  "transpose needs power-of-two n in [32, 1024]");
    const std::uint64_t elems =
        static_cast<std::uint64_t>(n) * n;

    Rng rng(opts_.seed);
    std::vector<std::uint64_t> in(elems);
    for (auto &v : in)
        v = rng.next();

    const Addr d_in = gpu.alloc(elems * 8);
    const Addr d_out = gpu.alloc(elems * 8);
    gpu.copyToDevice(d_in, in.data(), elems * 8);

    LaunchResult lr;
    if (opts_.tiled) {
        const unsigned tiles_per_row = n / 32;
        const unsigned shift = static_cast<unsigned>(
            std::countr_zero(tiles_per_row));
        lr = gpu.launch(buildTiledKernel(),
                        tiles_per_row * tiles_per_row, 32,
                        {d_in, d_out, n, shift});
    } else {
        lr = gpu.launch(buildNaiveKernel(), n, n, {d_in, d_out});
    }

    std::vector<std::uint64_t> out(elems);
    gpu.copyFromDevice(out.data(), d_out, elems * 8);

    WorkloadResult result;
    result.cycles = lr.cycles;
    result.instructions = lr.instructions;
    result.launches = 1;
    result.correct = true;
    for (unsigned y = 0; y < n && result.correct; ++y) {
        for (unsigned x = 0; x < n; ++x) {
            if (out[static_cast<std::uint64_t>(x) * n + y] !=
                in[static_cast<std::uint64_t>(y) * n + x]) {
                result.correct = false;
                break;
            }
        }
    }
    return result;
}

} // namespace gpulat
