/**
 * @file
 * Streaming vector addition c = a + b (doubles): the perfectly
 * coalesced, bandwidth-bound contrast workload to BFS. With enough
 * warps in flight its latency is almost entirely hidden.
 */

#ifndef GPULAT_WORKLOADS_VECADD_HH
#define GPULAT_WORKLOADS_VECADD_HH

#include "workloads/workload.hh"

namespace gpulat {

class VecAdd : public Workload
{
  public:
    struct Options
    {
        std::uint64_t n = 1 << 16;
        unsigned threadsPerBlock = 256;
        std::uint64_t seed = 2;
    };

    explicit VecAdd(Options opts) : opts_(opts) {}

    std::string name() const override { return "vecadd"; }
    WorkloadResult run(Gpu &gpu) override;

    static Kernel buildKernel();

  private:
    Options opts_;
};

} // namespace gpulat

#endif // GPULAT_WORKLOADS_VECADD_HH
