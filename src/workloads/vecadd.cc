#include "workloads/vecadd.hh"

#include <cmath>
#include <vector>

#include "common/random.hh"
#include "isa/assembler.hh"

namespace gpulat {

namespace {

const char *kVecAddKernel = R"(
.kernel vecadd
; params: 0=a 1=b 2=c 3=n
    s2r   r0, tid
    s2r   r1, ctaid
    s2r   r2, ntid
    imad  r0, r1, r2, r0
    mov   r3, param3
    setp.ge p0, r0, r3
    @p0 bra done
    shl   r4, r0, 3
    mov   r5, param0
    iadd  r5, r5, r4
    ld.global r6, [r5]
    mov   r7, param1
    iadd  r7, r7, r4
    ld.global r8, [r7]
    fadd  r9, r6, r8
    mov   r10, param2
    iadd  r10, r10, r4
    st.global [r10], r9
done:
    exit
)";

} // namespace

Kernel
VecAdd::buildKernel()
{
    return assemble(kVecAddKernel);
}

WorkloadResult
VecAdd::run(Gpu &gpu)
{
    const std::uint64_t n = opts_.n;
    Rng rng(opts_.seed);
    std::vector<double> a(n);
    std::vector<double> b(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        a[i] = rng.uniform();
        b[i] = rng.uniform();
    }

    const Addr d_a = gpu.alloc(n * 8);
    const Addr d_b = gpu.alloc(n * 8);
    const Addr d_c = gpu.alloc(n * 8);
    gpu.copyToDevice(d_a, a.data(), n * 8);
    gpu.copyToDevice(d_b, b.data(), n * 8);

    const unsigned tpb = opts_.threadsPerBlock;
    const auto blocks = static_cast<unsigned>((n + tpb - 1) / tpb);
    const LaunchResult lr =
        gpu.launch(buildKernel(), blocks, tpb, {d_a, d_b, d_c, n});

    std::vector<double> c(n);
    gpu.copyFromDevice(c.data(), d_c, n * 8);

    WorkloadResult result;
    result.cycles = lr.cycles;
    result.instructions = lr.instructions;
    result.launches = 1;
    result.correct = true;
    for (std::uint64_t i = 0; i < n; ++i) {
        if (c[i] != a[i] + b[i]) {
            result.correct = false;
            break;
        }
    }
    return result;
}

} // namespace gpulat
