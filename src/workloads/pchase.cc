#include "workloads/pchase.hh"

namespace gpulat {

WorkloadResult
PChase::run(Gpu &gpu)
{
    const PChaseResult r = runPointerChase(gpu, opts_);

    WorkloadResult result;
    result.correct = r.chainOk;
    result.cycles = r.cycles;
    result.instructions = r.instructions;
    result.launches = r.launches;
    result.metrics["pchase_cycles_per_access"] = r.cyclesPerAccess;
    result.metrics["pchase_timed_cycles"] =
        static_cast<double>(r.timedCycles);
    result.metrics["pchase_timed_accesses"] =
        static_cast<double>(r.timedAccesses);
    return result;
}

} // namespace gpulat
