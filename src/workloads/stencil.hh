/**
 * @file
 * 2-D 5-point Jacobi stencil (doubles): regular compute-plus-memory
 * workload with reuse between neighboring threads. Grid mapping is
 * y = blockIdx, x = threadIdx (one row per block).
 */

#ifndef GPULAT_WORKLOADS_STENCIL_HH
#define GPULAT_WORKLOADS_STENCIL_HH

#include "workloads/workload.hh"

namespace gpulat {

class Stencil2D : public Workload
{
  public:
    struct Options
    {
        unsigned width = 256;  ///< threads per block (<= 1024)
        unsigned height = 256; ///< blocks
        unsigned iterations = 2;
        std::uint64_t seed = 4;
    };

    explicit Stencil2D(Options opts) : opts_(opts) {}

    std::string name() const override { return "stencil2d"; }
    WorkloadResult run(Gpu &gpu) override;

    static Kernel buildKernel();

  private:
    Options opts_;
};

} // namespace gpulat

#endif // GPULAT_WORKLOADS_STENCIL_HH
