#include "workloads/gemm.hh"

#include <bit>
#include <vector>

#include "common/log.hh"
#include "common/random.hh"
#include "isa/assembler.hh"

namespace gpulat {

namespace {

// One 16x16 tile of C per 256-thread block. shA at shared offset 0,
// shB at 2048. lx = tid & 15, ly = tid >> 4.
const char *kGemmKernel = R"(
.kernel gemm_tiled
.shared 4096
; params: 0=A 1=B 2=C 3=N 4=log2(N/16)
    s2r   r0, tid
    and   r1, r0, 15            ; lx
    shr   r2, r0, 4             ; ly
    s2r   r3, ctaid
    mov   r4, param3            ; N
    shr   r5, r4, 4             ; tiles per row
    isub  r6, r5, 1
    and   r7, r3, r6            ; tile x
    mov   r8, param4
    shr   r9, r3, r8            ; tile y
    shl   r10, r9, 4
    iadd  r10, r10, r2          ; row = ty*16 + ly
    shl   r11, r7, 4
    iadd  r11, r11, r1          ; col = tx*16 + lx
    mov   r12, 0                ; acc = +0.0
    mov   r13, 0                ; k-tile index
kloop:
    setp.ge p0, r13, r5
    @p0 bra kdone
    ; shA[ly][lx] = A[row][k0*16 + lx]
    shl   r14, r13, 4
    iadd  r15, r14, r1
    imul  r16, r10, r4
    iadd  r16, r16, r15
    shl   r17, r16, 3
    mov   r18, param0
    iadd  r18, r18, r17
    ld.global r19, [r18]
    shl   r20, r0, 3
    st.shared [r20], r19
    ; shB[ly][lx] = B[k0*16 + ly][col]
    iadd  r21, r14, r2
    imul  r22, r21, r4
    iadd  r22, r22, r11
    shl   r23, r22, 3
    mov   r24, param1
    iadd  r24, r24, r23
    ld.global r25, [r24]
    iadd  r26, r20, 2048
    st.shared [r26], r25
    bar
    ; acc += shA[ly][kk] * shB[kk][lx], kk = 0..15
    mov   r27, 0
inner:
    setp.ge p1, r27, 16
    @p1 bra inner_done
    shl   r28, r2, 4
    iadd  r28, r28, r27
    shl   r28, r28, 3
    ld.shared r29, [r28]
    shl   r30, r27, 4
    iadd  r30, r30, r1
    shl   r31, r30, 3
    ld.shared r32, [r31+2048]
    ffma  r12, r29, r32, r12
    iadd  r27, r27, 1
    bra   inner
inner_done:
    bar
    iadd  r13, r13, 1
    bra   kloop
kdone:
    imul  r33, r10, r4
    iadd  r33, r33, r11
    shl   r34, r33, 3
    mov   r35, param2
    iadd  r35, r35, r34
    st.global [r35], r12
    exit
)";

} // namespace

Kernel
Gemm::buildKernel()
{
    return assemble(kGemmKernel);
}

WorkloadResult
Gemm::run(Gpu &gpu)
{
    const unsigned n = opts_.n;
    GPULAT_ASSERT(n >= 16 && n % 16 == 0 && std::has_single_bit(n),
                  "gemm needs a power-of-two n >= 16");
    const std::uint64_t elems = static_cast<std::uint64_t>(n) * n;

    Rng rng(opts_.seed);
    std::vector<double> a(elems);
    std::vector<double> b(elems);
    // Small integral values keep double sums exact for comparison.
    for (auto &v : a)
        v = static_cast<double>(rng.below(8));
    for (auto &v : b)
        v = static_cast<double>(rng.below(8));

    const Addr d_a = gpu.alloc(elems * 8);
    const Addr d_b = gpu.alloc(elems * 8);
    const Addr d_c = gpu.alloc(elems * 8);
    gpu.copyToDevice(d_a, a.data(), elems * 8);
    gpu.copyToDevice(d_b, b.data(), elems * 8);

    const unsigned tiles = n / 16;
    const unsigned shift =
        static_cast<unsigned>(std::countr_zero(tiles));
    const LaunchResult lr = gpu.launch(
        buildKernel(), tiles * tiles, 256, {d_a, d_b, d_c, n, shift});

    std::vector<double> c(elems);
    gpu.copyFromDevice(c.data(), d_c, elems * 8);

    WorkloadResult result;
    result.cycles = lr.cycles;
    result.instructions = lr.instructions;
    result.launches = 1;
    result.correct = true;
    for (unsigned row = 0; row < n && result.correct; ++row) {
        for (unsigned col = 0; col < n; ++col) {
            double acc = 0.0;
            // Same FMA order as the kernel (k ascending).
            for (unsigned k = 0; k < n; ++k)
                acc = a[row * n + k] * b[k * n + col] + acc;
            if (c[row * n + col] != acc) {
                result.correct = false;
                break;
            }
        }
    }
    return result;
}

} // namespace gpulat
