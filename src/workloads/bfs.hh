/**
 * @file
 * Frontier-based level-synchronized BFS — the paper's exemplary
 * dynamic-latency workload. One kernel launch per BFS level; every
 * thread owns a node, threads on the current frontier walk their
 * neighbor lists and relax unvisited nodes (benign same-value
 * races, Rodinia style). The data-dependent column/level gathers
 * produce the scattered long-latency loads of Figures 1 and 2.
 */

#ifndef GPULAT_WORKLOADS_BFS_HH
#define GPULAT_WORKLOADS_BFS_HH

#include "workloads/graph.hh"
#include "workloads/workload.hh"

namespace gpulat {

class Bfs : public Workload
{
  public:
    enum class GraphKind { Uniform, Rmat };

    struct Options
    {
        GraphKind kind = GraphKind::Rmat;
        /** Uniform: node count; RMAT: 2^scale nodes. */
        std::uint64_t nodes = 1 << 14;
        unsigned scale = 14;
        unsigned degree = 8; ///< uniform degree / RMAT edge factor
        std::uint64_t seed = 1;
        std::uint64_t source = 0;
        unsigned threadsPerBlock = 128;
    };

    explicit Bfs(Options opts);

    std::string name() const override { return "bfs"; }
    WorkloadResult run(Gpu &gpu) override;

    /** The per-level kernel (exposed for tests). */
    static Kernel buildKernel();

    const CsrGraph &graph() const { return graph_; }

  private:
    Options opts_;
    CsrGraph graph_;
};

} // namespace gpulat

#endif // GPULAT_WORKLOADS_BFS_HH
