#include "workloads/histogram.hh"

#include <bit>
#include <vector>

#include "common/log.hh"
#include "common/random.hh"
#include "isa/assembler.hh"

namespace gpulat {

namespace {

const char *kHistogramKernel = R"(
.kernel histogram
; params: 0=data 1=hist 2=n 3=binMask
    s2r   r0, tid
    s2r   r1, ctaid
    s2r   r2, ntid
    imad  r0, r1, r2, r0
    mov   r3, param2
    setp.ge p0, r0, r3
    @p0 bra done
    shl   r4, r0, 3
    mov   r5, param0
    iadd  r5, r5, r4
    ld.global r6, [r5]
    mov   r7, param3
    and   r8, r6, r7            ; bin = value & mask
    shl   r9, r8, 3
    mov   r10, param1
    iadd  r10, r10, r9
    mov   r11, 1
    atom.add r12, [r10], r11
done:
    exit
)";

} // namespace

Kernel
AtomicHistogram::buildKernel()
{
    return assemble(kHistogramKernel);
}

WorkloadResult
AtomicHistogram::run(Gpu &gpu)
{
    GPULAT_ASSERT(std::has_single_bit(opts_.bins),
                  "bins must be a power of two");
    const std::uint64_t n = opts_.n;
    Rng rng(opts_.seed);
    std::vector<std::uint64_t> data(n);
    for (auto &v : data)
        v = rng.next();

    const Addr d_data = gpu.alloc(n * 8);
    const Addr d_hist = gpu.alloc(opts_.bins * 8);
    gpu.copyToDevice(d_data, data.data(), n * 8);
    const std::vector<std::uint64_t> zeros(opts_.bins, 0);
    gpu.copyToDevice(d_hist, zeros.data(), opts_.bins * 8);

    const unsigned tpb = opts_.threadsPerBlock;
    const auto blocks = static_cast<unsigned>((n + tpb - 1) / tpb);
    const LaunchResult lr = gpu.launch(
        buildKernel(), blocks, tpb,
        {d_data, d_hist, n, opts_.bins - 1});

    std::vector<std::uint64_t> hist(opts_.bins);
    gpu.copyFromDevice(hist.data(), d_hist, opts_.bins * 8);

    std::vector<std::uint64_t> reference(opts_.bins, 0);
    for (const auto v : data)
        ++reference[v & (opts_.bins - 1)];

    WorkloadResult result;
    result.cycles = lr.cycles;
    result.instructions = lr.instructions;
    result.launches = 1;
    result.correct = hist == reference;
    return result;
}

} // namespace gpulat
