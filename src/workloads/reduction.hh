/**
 * @file
 * Block-level tree reduction in shared memory with barriers: the
 * shared-memory/synchronization workload. Each block reduces its
 * chunk to a partial sum; the host adds the partials.
 */

#ifndef GPULAT_WORKLOADS_REDUCTION_HH
#define GPULAT_WORKLOADS_REDUCTION_HH

#include "workloads/workload.hh"

namespace gpulat {

class Reduction : public Workload
{
  public:
    struct Options
    {
        std::uint64_t n = 1 << 16;
        /** Must be a power of two (tree reduction). */
        unsigned threadsPerBlock = 256;
        std::uint64_t seed = 3;
    };

    explicit Reduction(Options opts) : opts_(opts) {}

    std::string name() const override { return "reduction"; }
    WorkloadResult run(Gpu &gpu) override;

    static Kernel buildKernel(unsigned threads_per_block);

  private:
    Options opts_;
};

} // namespace gpulat

#endif // GPULAT_WORKLOADS_REDUCTION_HH
