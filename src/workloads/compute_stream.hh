/**
 * @file
 * Compute-augmented streaming workload: y[i] = iterate_K(x[i]) with
 * a K-deep dependent FMA chain per element. The arithmetic gives
 * each warp work that other warps' loads can hide behind — the
 * cleanest demonstration of GPU latency hiding (and of its absence
 * at low occupancy).
 */

#ifndef GPULAT_WORKLOADS_COMPUTE_STREAM_HH
#define GPULAT_WORKLOADS_COMPUTE_STREAM_HH

#include "workloads/workload.hh"

namespace gpulat {

class ComputeStream : public Workload
{
  public:
    struct Options
    {
        std::uint64_t n = 1 << 15;
        unsigned fmaDepth = 32; ///< dependent FMAs per element
        unsigned threadsPerBlock = 256;
        std::uint64_t seed = 8;
    };

    explicit ComputeStream(Options opts) : opts_(opts) {}

    std::string name() const override { return "compute_stream"; }
    WorkloadResult run(Gpu &gpu) override;

    static Kernel buildKernel(unsigned fma_depth);

  private:
    Options opts_;
};

} // namespace gpulat

#endif // GPULAT_WORKLOADS_COMPUTE_STREAM_HH
