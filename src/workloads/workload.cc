#include "workloads/workload.hh"

#include "api/workload_registry.hh"

namespace gpulat {

std::vector<std::unique_ptr<Workload>>
makeAllWorkloads(double scale)
{
    const WorkloadRegistry &reg = WorkloadRegistry::instance();
    std::vector<std::unique_ptr<Workload>> workloads;
    for (const std::string &name : reg.names())
        workloads.push_back(
            reg.create(name, reg.scaledParams(name, scale)));
    return workloads;
}

} // namespace gpulat
