#include "workloads/workload.hh"

#include <algorithm>
#include <cmath>

#include "workloads/bfs.hh"
#include "workloads/compute_stream.hh"
#include "workloads/gemm.hh"
#include "workloads/histogram.hh"
#include "workloads/reduction.hh"
#include "workloads/scan.hh"
#include "workloads/spmv.hh"
#include "workloads/stencil.hh"
#include "workloads/transpose.hh"
#include "workloads/vecadd.hh"

namespace gpulat {

std::vector<std::unique_ptr<Workload>>
makeAllWorkloads(double scale)
{
    scale = std::clamp(scale, 0.01, 1.0);
    auto scaled = [scale](std::uint64_t full, std::uint64_t min) {
        return std::max<std::uint64_t>(
            min, static_cast<std::uint64_t>(
                     static_cast<double>(full) * scale));
    };

    std::vector<std::unique_ptr<Workload>> workloads;

    Bfs::Options bfs;
    bfs.kind = Bfs::GraphKind::Rmat;
    bfs.scale = scale >= 0.99 ? 14u : 11u;
    bfs.degree = 8;
    workloads.push_back(std::make_unique<Bfs>(bfs));

    ComputeStream::Options cs;
    cs.n = scaled(1 << 15, 1 << 12);
    cs.fmaDepth = 32;
    workloads.push_back(std::make_unique<ComputeStream>(cs));

    VecAdd::Options vec;
    vec.n = scaled(1 << 16, 1 << 12);
    workloads.push_back(std::make_unique<VecAdd>(vec));

    Reduction::Options red;
    red.n = scaled(1 << 16, 1 << 12);
    workloads.push_back(std::make_unique<Reduction>(red));

    Stencil2D::Options st;
    st.width = 256;
    st.height = static_cast<unsigned>(scaled(256, 32));
    st.iterations = 2;
    workloads.push_back(std::make_unique<Stencil2D>(st));

    SpMV::Options sp;
    sp.rows = scaled(1 << 13, 1 << 10);
    sp.nnzPerRow = 16;
    workloads.push_back(std::make_unique<SpMV>(sp));

    Transpose::Options tn;
    tn.n = scale >= 0.99 ? 256u : 128u;
    tn.tiled = false;
    workloads.push_back(std::make_unique<Transpose>(tn));

    Transpose::Options tt = tn;
    tt.tiled = true;
    workloads.push_back(std::make_unique<Transpose>(tt));

    AtomicHistogram::Options hist;
    hist.n = scaled(1 << 14, 1 << 11);
    hist.bins = 256;
    workloads.push_back(std::make_unique<AtomicHistogram>(hist));

    Scan::Options scan;
    scan.n = scaled(1 << 14, 1 << 11);
    workloads.push_back(std::make_unique<Scan>(scan));

    Gemm::Options gemm;
    gemm.n = scale >= 0.99 ? 128u : 64u;
    workloads.push_back(std::make_unique<Gemm>(gemm));

    return workloads;
}

} // namespace gpulat
