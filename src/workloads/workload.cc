#include "workloads/workload.hh"

#include "api/workload_registry.hh"

namespace gpulat {

std::vector<std::unique_ptr<Workload>>
makeAllWorkloads(double scale)
{
    const WorkloadRegistry &reg = WorkloadRegistry::instance();
    std::vector<std::unique_ptr<Workload>> workloads;
    for (const std::string &name : reg.names()) {
        // Machine-probing microbenches (pchase) are addressable by
        // name but not part of the kernel-pattern bench suite.
        if (!reg.find(name)->benchSuite)
            continue;
        workloads.push_back(
            reg.create(name, reg.scaledParams(name, scale)));
    }
    return workloads;
}

} // namespace gpulat
