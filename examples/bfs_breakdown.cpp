/**
 * @file
 * BFS latency anatomy: runs the paper's exemplary workload on the
 * GF100-like GPU and prints (a) the Figure-1-style stage breakdown
 * chart, (b) the Figure-2-style exposure chart, and (c) summary
 * statistics — all from one simulation.
 */

#include <iostream>

#include "gpu/gpu.hh"
#include "latency/breakdown.hh"
#include "latency/exposure.hh"
#include "workloads/bfs.hh"

int
main()
{
    using namespace gpulat;

    Gpu gpu(makeGF100Sim());

    Bfs::Options opts;
    opts.kind = Bfs::GraphKind::Rmat;
    opts.scale = 13;
    opts.degree = 8;
    Bfs bfs(opts);

    const WorkloadResult result = bfs.run(gpu);
    std::cout << "BFS on " << gpu.config().name << ": "
              << (result.correct ? "correct" : "WRONG") << ", "
              << result.launches << " levels in " << result.cycles
              << " cycles\n\n";

    const Breakdown bd =
        computeBreakdown(gpu.latencies().traces(), 24);
    std::cout << "--- memory fetch latency breakdown (fig. 1) ---\n";
    bd.printChart(std::cout);

    const ExposureBreakdown eb =
        computeExposure(gpu.exposure().records(), 24);
    std::cout << "\n--- exposed vs hidden load latency (fig. 2) ---\n";
    eb.printChart(std::cout);

    std::cout << "\noverall exposed: " << eb.overallExposedPct()
              << "%\n";
    return result.correct ? 0 : 1;
}
