/**
 * @file
 * BFS latency anatomy: runs the paper's exemplary workload on the
 * GF100-like GPU and prints (a) the Figure-1-style stage breakdown
 * chart, (b) the Figure-2-style exposure chart, and (c) summary
 * statistics — all from one simulation, driven through the
 * experiment API.
 */

#include <iostream>

#include "api/experiment.hh"
#include "latency/breakdown.hh"
#include "latency/exposure.hh"

int
main()
{
    using namespace gpulat;

    ExperimentSpec spec;
    spec.workload = "bfs";
    spec.params = {"kind=rmat", "scale=13", "degree=8"};

    const ExperimentRecord rec = runExperiment(
        spec, [](Gpu &gpu, const ExperimentRecord &r) {
            std::cout << "BFS on " << r.gpu << ": "
                      << (r.correct ? "correct" : "WRONG") << ", "
                      << r.launches << " levels in " << r.cycles
                      << " cycles\n\n";

            std::cout << "--- memory fetch latency breakdown "
                         "(fig. 1) ---\n";
            computeBreakdown(gpu.latencies().traces(), 24)
                .printChart(std::cout);

            std::cout << "\n--- exposed vs hidden load latency "
                         "(fig. 2) ---\n";
            computeExposure(gpu.exposure().records(), 24)
                .printChart(std::cout);
        });

    std::cout << "\noverall exposed: " << rec.metric("exposed_pct")
              << "%\n";
    return rec.correct ? 0 : 1;
}
