/**
 * @file
 * Latency hiding demo: the same streaming kernel at 1, 4, 16 and 48
 * warps per SM — watch exposed latency collapse as TLP rises, and
 * compare with BFS where it doesn't.
 */

#include <iostream>

#include "common/table.hh"
#include "gpu/gpu.hh"
#include "latency/exposure.hh"
#include "workloads/bfs.hh"
#include "workloads/vecadd.hh"

int
main()
{
    using namespace gpulat;

    TextTable table({"workload", "warps/SM", "cycles", "exposed %"});

    for (unsigned warps : {1u, 4u, 16u, 48u}) {
        GpuConfig cfg = makeGF100Sim();
        cfg.sm.warpSlots = warps;
        cfg.sm.maxBlocksPerSm = std::max(1u, warps / 4);

        {
            Gpu gpu(cfg);
            VecAdd::Options opts;
            opts.n = 1 << 15;
            VecAdd vecadd(opts);
            const WorkloadResult r = vecadd.run(gpu);
            const auto eb =
                computeExposure(gpu.exposure().records(), 24);
            table.addRow({"vecadd", std::to_string(warps),
                          std::to_string(r.cycles),
                          formatDouble(eb.overallExposedPct(), 1)});
        }
        {
            Gpu gpu(cfg);
            Bfs::Options opts;
            opts.kind = Bfs::GraphKind::Rmat;
            opts.scale = 12;
            Bfs bfs(opts);
            const WorkloadResult r = bfs.run(gpu);
            const auto eb =
                computeExposure(gpu.exposure().records(), 24);
            table.addRow({"bfs", std::to_string(warps),
                          std::to_string(r.cycles),
                          formatDouble(eb.overallExposedPct(), 1)});
        }
    }

    table.print(std::cout);
    std::cout << "\nGPUs hide latency with warps — but BFS keeps a "
                 "large exposed fraction even at full occupancy, "
                 "which is the paper's central observation.\n";
    return 0;
}
