/**
 * @file
 * Pointer-chase survey: sweeps the chase footprint on each GPU
 * generation and prints the latency-vs-footprint curve plus the
 * hierarchy levels the plateau detector recovers — the §II
 * methodology of the paper, end to end.
 */

#include <iostream>

#include "common/table.hh"
#include "latency/static_analyzer.hh"
#include "microbench/sweep.hh"

int
main()
{
    using namespace gpulat;

    for (const char *name : {"gt200", "gf106", "gk104", "gm107"}) {
        const GpuConfig cfg = makeConfig(name);
        std::cout << "=== " << cfg.name << " ===\n";

        std::vector<std::uint64_t> fps;
        const std::uint64_t l1 = cfg.sm.l1Cache.capacityBytes;
        const std::uint64_t l2 = cfg.totalL2Bytes();
        if (cfg.sm.l1Enabled && cfg.sm.l1CachesGlobal)
            for (std::uint64_t fp : {l1 / 4, l1 / 2, l1})
                fps.push_back(fp);
        if (l2 > 0)
            for (std::uint64_t fp :
                 {l2 / 8, l2 / 4, l2 / 2, l2, 2 * l2, 3 * l2})
                fps.push_back(fp);
        else
            fps = {64 * 1024, 256 * 1024, 1024 * 1024};

        SweepOptions opts;
        opts.strideBytes = cfg.sm.lineBytes;
        opts.timedAccesses = 512;
        const auto curve = sweepFootprints(cfg, fps, opts);

        TextTable table({"footprint (KB)", "cycles/access"});
        for (const auto &point : curve)
            table.addRow({std::to_string(point.footprintBytes / 1024),
                          formatDouble(point.latency, 1)});
        table.print(std::cout);

        std::cout << "detected levels:\n";
        for (const auto &level : detectPlateaus(curve)) {
            std::cout << "  " << formatDouble(level.latency, 1)
                      << " cycles up to "
                      << level.maxFootprint / 1024 << " KB\n";
        }

        // Stride sweep (the other axis of the paper's methodology):
        // saturates at the line size of the first cache level.
        if (l2 > 0) {
            const std::uint64_t fp = cfg.sm.l1Enabled &&
                                      cfg.sm.l1CachesGlobal
                ? cfg.sm.l1Cache.capacityBytes * 8
                : l2 * 2;
            SweepOptions sopts = opts;
            sopts.warmupMaxFootprint = 0; // all-miss regime
            const auto stride_curve = sweepStrides(
                cfg, fp, {8, 16, 32, 64, 128, 256}, sopts);
            std::cout << "inferred line size: "
                      << detectLineSize(stride_curve) << " B\n";
        }
        std::cout << "\n";
    }
    return 0;
}
