/**
 * @file
 * The experiment API from C++: what the `gpulat` CLI does, driven
 * programmatically — declare a spec (preset + overrides + workload
 * + params), run it, then reuse the live Gpu for custom reports
 * and fan the records out to sinks.
 *
 * For the scriptable version of this program, see the `gpulat`
 * binary: `gpulat run --gpu gf100sim --workload bfs scale=12
 * --set sm.warpSlots=16 --json out.json`.
 */

#include <iostream>

#include "api/experiment.hh"
#include "latency/summary.hh"

int
main()
{
    using namespace gpulat;

    // One experiment cell: BFS on the GF100-like machine with the
    // SM starved to 16 warp slots.
    ExperimentSpec spec;
    spec.gpu = "gf100-sim";
    spec.workload = "bfs";
    spec.params = {"kind=rmat", "scale=12"};
    spec.overrides = {"sm.warpSlots=16"};

    // The inspect hook sees the still-live Gpu after the run, for
    // reports that need raw traces.
    const ExperimentRecord rec = runExperiment(
        spec, [](Gpu &gpu, const ExperimentRecord &) {
            std::cout << "--- loaded latency summary ---\n";
            computeSummary(gpu.latencies().traces())
                .print(std::cout);
            std::cout << "\n";
        });

    // Records carry schema-stable metrics...
    std::cout << "cycles: " << rec.cycles
              << ", IPC: " << rec.metric("ipc")
              << ", exposed: " << rec.metric("exposed_pct")
              << "%\n\n";

    // ...and render through any sink (JSON here; TextTableSink and
    // CsvSink take the same records).
    JsonSink json(std::cout);
    json.write(rec);
    json.finish();

    return rec.correct ? 0 : 1;
}
