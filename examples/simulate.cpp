/**
 * @file
 * gpulat command-line driver: run any built-in workload on any GPU
 * preset and print the latency reports.
 *
 *     simulate [--config gf100-sim] [--workload bfs]
 *              [--warps N] [--dram-sched fcfs|frfcfs]
 *              [--warp-sched lrr|gto] [--icnt-latency N]
 *              [--buckets N] [--report summary|fig1|fig2|all]
 *              [--stats] [--list]
 */

#include <cstring>
#include <iostream>
#include <string>

#include "common/table.hh"
#include "gpu/gpu.hh"
#include "latency/breakdown.hh"
#include "latency/exposure.hh"
#include "latency/summary.hh"
#include "workloads/workload.hh"

namespace {

using namespace gpulat;

int
usage(const char *argv0)
{
    std::cerr
        << "usage: " << argv0 << " [options]\n"
        << "  --config NAME     gt200|gf106|gk104|gm107|gf100-sim\n"
        << "  --workload NAME   see --list\n"
        << "  --warps N         warp slots per SM\n"
        << "  --dram-sched P    fcfs|frfcfs\n"
        << "  --warp-sched P    lrr|gto\n"
        << "  --icnt-latency N  crossbar traversal cycles\n"
        << "  --buckets N       latency buckets (default 48)\n"
        << "  --report KIND     summary|fig1|fig2|all\n"
        << "  --stats           dump raw counters\n"
        << "  --list            list workloads and exit\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string config_name = "gf100-sim";
    std::string workload_name = "bfs";
    std::string report = "summary";
    unsigned warps = 0;
    unsigned icnt = 0;
    std::size_t buckets = 48;
    std::string dram_sched;
    std::string warp_sched;
    bool dump_stats = false;
    bool list = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--config") {
            config_name = next();
        } else if (arg == "--workload") {
            workload_name = next();
        } else if (arg == "--warps") {
            warps = static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--icnt-latency") {
            icnt = static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--buckets") {
            buckets = std::stoul(next());
        } else if (arg == "--dram-sched") {
            dram_sched = next();
        } else if (arg == "--warp-sched") {
            warp_sched = next();
        } else if (arg == "--report") {
            report = next();
        } else if (arg == "--stats") {
            dump_stats = true;
        } else if (arg == "--list") {
            list = true;
        } else {
            return usage(argv[0]);
        }
    }

    auto workloads = makeAllWorkloads(1.0);
    if (list) {
        for (const auto &w : workloads)
            std::cout << w->name() << "\n";
        return 0;
    }

    Workload *workload = nullptr;
    for (const auto &w : workloads)
        if (w->name() == workload_name)
            workload = w.get();
    if (!workload) {
        std::cerr << "unknown workload '" << workload_name
                  << "' (try --list)\n";
        return 2;
    }

    GpuConfig cfg;
    try {
        cfg = makeConfig(config_name);
    } catch (const FatalError &e) {
        std::cerr << e.what() << "\n";
        return 2;
    }
    if (warps)
        cfg.sm.warpSlots = warps;
    if (icnt)
        cfg.icntLatency = icnt;
    if (!dram_sched.empty()) {
        cfg.partition.sched = dram_sched == "fcfs"
            ? DramSchedPolicy::FCFS
            : DramSchedPolicy::FRFCFS;
    }
    if (!warp_sched.empty()) {
        cfg.sm.schedPolicy = warp_sched == "lrr" ? SchedPolicy::LRR
                                                 : SchedPolicy::GTO;
    }

    Gpu gpu(cfg);
    std::cout << "running '" << workload->name() << "' on "
              << cfg.name << " (" << cfg.numSms << " SMs, "
              << cfg.numPartitions << " partitions, "
              << cfg.sm.warpSlots << " warps/SM)\n";
    const WorkloadResult result = workload->run(gpu);
    const double ipc = result.cycles
        ? static_cast<double>(result.instructions) /
              static_cast<double>(result.cycles)
        : 0.0;
    std::cout << (result.correct ? "PASSED" : "FAILED") << ": "
              << result.cycles << " cycles, " << result.instructions
              << " instructions (IPC " << formatDouble(ipc, 2)
              << "), " << result.launches << " launches, "
              << gpu.latencies().count() << " memory requests\n\n";

    if (report == "summary" || report == "all") {
        std::cout << "--- loaded latency summary ---\n";
        computeSummary(gpu.latencies().traces()).print(std::cout);
        std::cout << "\n";
    }
    if (report == "fig1" || report == "all") {
        std::cout << "--- stage breakdown (paper fig. 1) ---\n";
        computeBreakdown(gpu.latencies().traces(), buckets)
            .printChart(std::cout);
        std::cout << "\n";
    }
    if (report == "fig2" || report == "all") {
        std::cout << "--- exposed vs hidden (paper fig. 2) ---\n";
        const auto eb =
            computeExposure(gpu.exposure().records(), buckets);
        eb.printChart(std::cout);
        std::cout << "overall exposed: "
                  << formatDouble(eb.overallExposedPct(), 1)
                  << "%\n\n";
    }
    if (dump_stats)
        gpu.stats().dump(std::cout);

    return result.correct ? 0 : 1;
}
