/**
 * @file
 * Quickstart: write a tiny kernel in the gpulat assembler, launch
 * it on a simulated Fermi GPU and read back results + statistics.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <iostream>
#include <vector>

#include "gpu/gpu.hh"
#include "isa/assembler.hh"

int
main()
{
    using namespace gpulat;

    // 1. A GPU. Presets model the paper's chips; GF106 is Fermi.
    Gpu gpu(makeGF106());

    // 2. A kernel: out[i] = in[i] * in[i] + 1.
    const Kernel kernel = assemble(R"(
        .kernel square_plus_one
        s2r   r0, tid
        s2r   r1, ctaid
        s2r   r2, ntid
        imad  r0, r1, r2, r0        ; global thread id
        mov   r3, param2            ; n
        setp.ge p0, r0, r3
        @p0 bra done
        shl   r4, r0, 3
        mov   r5, param0
        iadd  r5, r5, r4
        ld.global r6, [r5]
        imul  r7, r6, r6

        iadd  r7, r7, 1
        mov   r8, param1
        iadd  r8, r8, r4
        st.global [r8], r7
        done:
        exit
    )");

    // 3. Device data.
    const std::uint64_t n = 1024;
    std::vector<std::uint64_t> input(n);
    for (std::uint64_t i = 0; i < n; ++i)
        input[i] = i;
    const Addr d_in = gpu.alloc(n * 8);
    const Addr d_out = gpu.alloc(n * 8);
    gpu.copyToDevice(d_in, input.data(), n * 8);

    // 4. Launch: 8 blocks x 128 threads.
    const LaunchResult lr =
        gpu.launch(kernel, 8, 128, {d_in, d_out, n});

    // 5. Read back and check.
    std::vector<std::uint64_t> output(n);
    gpu.copyFromDevice(output.data(), d_out, n * 8);
    std::uint64_t errors = 0;
    for (std::uint64_t i = 0; i < n; ++i)
        if (output[i] != i * i + 1)
            ++errors;

    std::cout << "kernel '" << kernel.name << "' ran for "
              << lr.cycles << " cycles, issued " << lr.instructions
              << " warp instructions, " << errors << " errors\n";
    std::cout << "completed loads: "
              << gpu.latencies().count() << " memory requests, "
              << "L1 hits " << gpu.sm(0).l1()->hits()
              << " / misses " << gpu.sm(0).l1()->misses()
              << " (SM0)\n";
    return errors == 0 ? 0 : 1;
}
