/**
 * @file
 * Reproduces the paper's §III claim that "other workloads similarly
 * showed queueing and arbitration as the two key latency
 * contributors": runs every workload on the GF100-like config and
 * prints each one's aggregate stage contributions, ranked.
 *
 * Driven through the experiment API: the ranking reads the
 * record's per-stage `stage_pct.*` metrics.
 */

#include <algorithm>
#include <iostream>

#include "api/experiment.hh"
#include "api/workload_registry.hh"
#include "common/table.hh"

int
main(int argc, char **argv)
{
    using namespace gpulat;

    MultiSink sinks;
    addOutputSinks(sinks, argc, argv);

    TextTable table({"workload", "correct", "requests", "#1 stage",
                     "#2 stage", "#1 %", "#2 %"});
    bool all_correct = true;

    for (const std::string &name :
         WorkloadRegistry::instance().names()) {
        ExperimentSpec spec;
        spec.workload = name;
        const ExperimentRecord rec = runExperiment(spec);
        all_correct = all_correct && rec.correct;
        sinks.write(rec);

        // Rank the stages by their share of aggregate fetch latency.
        std::vector<std::pair<std::string, double>> stages;
        const std::string prefix = "stage_pct.";
        for (const auto &[key, value] : rec.metrics) {
            if (key.rfind(prefix, 0) == 0)
                stages.emplace_back(key.substr(prefix.size()),
                                    value);
        }
        std::sort(stages.begin(), stages.end(),
                  [](const auto &a, const auto &b) {
                      return a.second > b.second;
                  });

        table.addRow({name, rec.correct ? "yes" : "NO",
                      formatDouble(rec.metric("requests"), 0),
                      stages[0].first, stages[1].first,
                      formatDouble(stages[0].second, 1),
                      formatDouble(stages[1].second, 1)});
    }

    std::cout << "Per-workload top latency contributors "
                 "(GF100-sim)\n\n";
    table.print(std::cout);
    sinks.finish();
    std::cout << "\npaper claim: queueing (l1toicnt) and DRAM "
                 "arbitration (dram_qtosch) dominate long "
                 "latencies across workloads.\n";
    return all_correct ? 0 : 1;
}
