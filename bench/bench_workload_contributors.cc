/**
 * @file
 * Reproduces the paper's §III claim that "other workloads similarly
 * showed queueing and arbitration as the two key latency
 * contributors": runs every workload on the GF100-like config and
 * prints each one's aggregate stage contributions, ranked.
 */

#include <iostream>

#include "common/table.hh"
#include "gpu/gpu.hh"
#include "latency/breakdown.hh"
#include "workloads/workload.hh"

int
main()
{
    using namespace gpulat;

    TextTable table({"workload", "correct", "requests", "#1 stage",
                     "#2 stage", "#1 %", "#2 %"});
    bool all_correct = true;

    for (auto &workload : makeAllWorkloads(1.0)) {
        Gpu gpu(makeGF100Sim());
        const WorkloadResult result = workload->run(gpu);
        all_correct = all_correct && result.correct;

        const Breakdown bd =
            computeBreakdown(gpu.latencies().traces(), 48);
        const auto ranked = bd.rankedStages();
        std::uint64_t total = 0;
        for (auto v : bd.totalByStage)
            total += v;
        auto pct = [&](Stage s) {
            return total == 0
                ? 0.0
                : 100.0 *
                  static_cast<double>(
                      bd.totalByStage[static_cast<std::size_t>(s)]) /
                  static_cast<double>(total);
        };

        table.addRow({workload->name(),
                      result.correct ? "yes" : "NO",
                      std::to_string(bd.requests),
                      toString(ranked[0]), toString(ranked[1]),
                      formatDouble(pct(ranked[0]), 1),
                      formatDouble(pct(ranked[1]), 1)});
    }

    std::cout << "Per-workload top latency contributors "
                 "(GF100-sim)\n\n";
    table.print(std::cout);
    std::cout << "\npaper claim: queueing (L1toICNT) and DRAM "
                 "arbitration (DRAM QtoSch) dominate long "
                 "latencies across workloads.\n";
    return all_correct ? 0 : 1;
}
