/**
 * @file
 * Coalescing ablation: the same data movement performed coalesced
 * (tiled transpose, unit-stride streams) vs uncoalesced (naive
 * transpose). Uncoalesced warps issue up to 32 transactions per
 * instruction, multiplying queue pressure — one of the mechanisms
 * behind the loaded latencies of Figure 1.
 *
 * Driven through the experiment API: the matrix-size sweep is a
 * comma-listed parameter, the variants are two registry names.
 */

#include <iostream>

#include "api/experiment.hh"

int
main(int argc, char **argv)
{
    using namespace gpulat;

    MultiSink sinks;
    sinks.add(std::make_unique<TextTableSink>(
        std::cout, std::vector<std::string>{"requests"}));
    addOutputSinks(sinks, argc, argv);

    bool all_correct = true;
    for (const char *variant :
         {"transpose_naive", "transpose_tiled"}) {
        ExperimentSpec spec;
        spec.workload = variant;
        spec.params = {"n=128,256"};
        for (const ExperimentSpec &point : expandSweep(spec)) {
            const ExperimentRecord rec = runExperiment(point);
            all_correct = all_correct && rec.correct;
            sinks.write(rec);
        }
    }

    std::cout << "Coalescing ablation (GF100-sim): naive vs tiled "
                 "transpose\n\n";
    sinks.finish();
    std::cout << "\nexpected shape: the tiled variant finishes in "
                 "fewer cycles with fewer memory requests per "
                 "instruction.\n";
    return all_correct ? 0 : 1;
}
