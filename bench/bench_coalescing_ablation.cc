/**
 * @file
 * Coalescing ablation: the same data movement performed coalesced
 * (tiled transpose, unit-stride streams) vs uncoalesced (naive
 * transpose). Uncoalesced warps issue up to 32 transactions per
 * instruction, multiplying queue pressure — one of the mechanisms
 * behind the loaded latencies of Figure 1.
 */

#include <iostream>

#include "common/table.hh"
#include "gpu/gpu.hh"
#include "latency/breakdown.hh"
#include "workloads/transpose.hh"

int
main()
{
    using namespace gpulat;

    TextTable table({"variant", "n", "cycles", "requests",
                     "mean load lat", "req/instr"});

    for (unsigned n : {128u, 256u}) {
        for (bool tiled : {false, true}) {
            GpuConfig cfg = makeGF100Sim();
            Gpu gpu(cfg);
            Transpose::Options opts;
            opts.n = n;
            opts.tiled = tiled;
            Transpose workload(opts);
            const WorkloadResult result = workload.run(gpu);

            double sum = 0.0;
            for (const auto &t : gpu.latencies().traces())
                sum += static_cast<double>(t.total());
            const double mean = gpu.latencies().count()
                ? sum / static_cast<double>(gpu.latencies().count())
                : 0.0;
            const double rpi = result.instructions
                ? static_cast<double>(gpu.latencies().count()) /
                      static_cast<double>(result.instructions)
                : 0.0;

            table.addRow({workload.name() +
                              (result.correct ? "" : " (FAILED)"),
                          std::to_string(n),
                          std::to_string(result.cycles),
                          std::to_string(gpu.latencies().count()),
                          formatDouble(mean, 1),
                          formatDouble(rpi, 3)});
        }
    }

    std::cout << "Coalescing ablation (GF100-sim): naive vs tiled "
                 "transpose\n\n";
    table.print(std::cout);
    std::cout << "\nexpected shape: the tiled variant finishes in "
                 "fewer cycles with fewer memory requests per "
                 "instruction.\n";
    return 0;
}
