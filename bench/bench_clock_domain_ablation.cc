/**
 * @file
 * Clock-domain ablation: sweep the DRAM and interconnect clock
 * ratios (relative to the core clock) and decompose the resulting
 * memory latency into pipeline stages, in the spirit of the paper's
 * Figure 1 — adding the clock-ratio dimension the single-clock
 * simulator could not express.
 *
 * Three experiments:
 *   1. DRAM-clock sweep under load (BFS): per-stage latency
 *      breakdown vs DRAM frequency.
 *   2. ICNT-clock sweep under load (BFS).
 *   3. Idle pointer-chase latency vs DRAM clock (Table-I style),
 *      plus the wall-clock effect of the engine's idle
 *      fast-forward on this latency-bound microbench.
 */

#include <chrono>
#include <iomanip>
#include <iostream>
#include <vector>

#include "gpu/gpu.hh"
#include "latency/breakdown.hh"
#include "microbench/pchase.hh"
#include "workloads/bfs.hh"

using namespace gpulat;

namespace {

GpuConfig
baseConfig()
{
    GpuConfig cfg = makeGF106();
    cfg.numSms = 4;
    cfg.numPartitions = 2;
    cfg.deviceMemBytes = 64 * 1024 * 1024;
    return cfg;
}

struct SweepPoint
{
    const char *label;
    ClockRatio ratio;
};

const std::vector<SweepPoint> kDramSweep{
    {"2:1", {2, 1}}, {"1:1", {1, 1}}, {"2:3", {2, 3}},
    {"1:2", {1, 2}}, {"1:3", {1, 3}},
};

const std::vector<SweepPoint> kIcntSweep{
    {"2:1", {2, 1}}, {"1:1", {1, 1}}, {"1:2", {1, 2}},
};

double
wallMs(const std::chrono::steady_clock::time_point &t0)
{
    using ms = std::chrono::duration<double, std::milli>;
    return ms(std::chrono::steady_clock::now() - t0).count();
}

void
printHeader()
{
    std::cout << std::setw(6) << "ratio" << std::setw(12) << "cycles"
              << std::setw(9) << "mean";
    for (std::size_t s = 0; s < kNumStages; ++s)
        std::cout << std::setw(9) << toString(static_cast<Stage>(s));
    std::cout << "\n";
}

void
printPoint(const char *label, Cycle cycles, const Breakdown &bd)
{
    std::uint64_t total = 0;
    for (auto v : bd.totalByStage)
        total += v;
    const double mean = bd.requests
        ? static_cast<double>(total) / static_cast<double>(bd.requests)
        : 0.0;
    std::cout << std::setw(6) << label << std::setw(12) << cycles
              << std::setw(9) << std::fixed << std::setprecision(1)
              << mean;
    for (auto v : bd.totalByStage) {
        const double pct = total
            ? 100.0 * static_cast<double>(v) /
                  static_cast<double>(total)
            : 0.0;
        std::cout << std::setw(8) << std::setprecision(1) << pct
                  << "%";
    }
    std::cout << "\n";
}

bool
sweepUnderLoad(const char *what,
               const std::vector<SweepPoint> &sweep,
               ClockRatio GpuConfig::*knob)
{
    bool all_correct = true;
    std::cout << "\n== " << what
              << "-clock sweep under load (BFS, RMAT scale 12) ==\n"
              << "stage columns: % of aggregate fetch latency\n";
    printHeader();
    for (const SweepPoint &pt : sweep) {
        GpuConfig cfg = baseConfig();
        cfg.*knob = pt.ratio;
        Gpu gpu(cfg);

        Bfs::Options opts;
        opts.kind = Bfs::GraphKind::Rmat;
        opts.scale = 12;
        opts.degree = 8;
        Bfs bfs(opts);
        const WorkloadResult result = bfs.run(gpu);
        if (!result.correct) {
            std::cout << pt.label << ": FUNCTIONAL MISMATCH\n";
            all_correct = false;
            continue;
        }
        const Breakdown bd =
            computeBreakdown(gpu.latencies().traces(), 32);
        printPoint(pt.label, result.cycles, bd);
    }
    return all_correct;
}

void
idleLatencySweep()
{
    std::cout << "\n== idle DRAM latency vs DRAM clock "
                 "(pointer chase, Table-I style) ==\n";
    std::cout << std::setw(6) << "ratio" << std::setw(16)
              << "cycles/access" << "\n";
    for (const SweepPoint &pt : kDramSweep) {
        GpuConfig cfg = baseConfig();
        cfg.dramClock = pt.ratio;
        Gpu gpu(cfg);
        PChaseConfig pc;
        pc.footprintBytes = 4 * 1024 * 1024; // DRAM-resident
        pc.strideBytes = 512;
        pc.timedAccesses = 256;
        const PChaseResult r = runPointerChase(gpu, pc);
        std::cout << std::setw(6) << pt.label << std::setw(16)
                  << std::fixed << std::setprecision(1)
                  << r.cyclesPerAccess << "\n";
    }
}

bool
fastForwardEffect()
{
    std::cout << "\n== idle fast-forward on a latency-bound "
                 "microbench (single-warp DRAM chase) ==\n";
    std::cout << std::setw(16) << "mode" << std::setw(12) << "wall ms"
              << std::setw(14) << "loop steps" << std::setw(14)
              << "skipped cyc" << std::setw(12) << "cycles"
              << "\n";

    Cycle cycles_on = 0;
    Cycle cycles_off = 0;
    for (const bool ff : {true, false}) {
        GpuConfig cfg = baseConfig();
        cfg.idleFastForward = ff;
        Gpu gpu(cfg);
        PChaseConfig pc;
        pc.footprintBytes = 4 * 1024 * 1024;
        pc.strideBytes = 512;
        pc.timedAccesses = 2048;
        const auto t0 = std::chrono::steady_clock::now();
        runPointerChase(gpu, pc);
        const double ms = wallMs(t0);
        (ff ? cycles_on : cycles_off) = gpu.now();
        std::cout << std::setw(16)
                  << (ff ? "fast-forward" : "naive")
                  << std::setw(12) << std::fixed
                  << std::setprecision(1) << ms << std::setw(14)
                  << gpu.engine().steps() << std::setw(14)
                  << gpu.engine().skippedCycles() << std::setw(12)
                  << gpu.now() << "\n";
    }
    std::cout << (cycles_on == cycles_off
                      ? "simulated cycles identical: OK\n"
                      : "simulated cycles DIFFER: BUG\n");
    return cycles_on == cycles_off;
}

} // namespace

int
main()
{
    std::cout << "Clock-domain ablation on " << baseConfig().name
              << " (core : icnt : L2 : DRAM, default 1:1:1:1)\n";

    bool ok =
        sweepUnderLoad("DRAM", kDramSweep, &GpuConfig::dramClock);
    ok &= sweepUnderLoad("ICNT", kIcntSweep, &GpuConfig::icntClock);
    idleLatencySweep();
    ok &= fastForwardEffect();
    return ok ? 0 : 1;
}
